#include "catalog/nf_catalog.h"

#include <gtest/gtest.h>

#include "catalog/decomposition.h"

namespace unify::catalog {
namespace {

TEST(NfCatalog, RegisterAndFind) {
  NfCatalog cat;
  ASSERT_TRUE(
      cat.register_type(NfType{"fw", {2, 1024, 2}, 2, "firewall"}).ok());
  ASSERT_NE(cat.find("fw"), nullptr);
  EXPECT_EQ(cat.find("fw")->requirement.cpu, 2);
  EXPECT_EQ(cat.find("nope"), nullptr);
  EXPECT_TRUE(cat.has("fw"));
}

TEST(NfCatalog, RejectsInvalidRegistrations) {
  NfCatalog cat;
  EXPECT_EQ(cat.register_type(NfType{"", {1, 1, 1}, 2, ""}).error().code,
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(cat.register_type(NfType{"fw", {1, 1, 1}, 2, ""}).ok());
  EXPECT_EQ(cat.register_type(NfType{"fw", {1, 1, 1}, 2, ""}).error().code,
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(
      cat.register_type(NfType{"bad", {-1, 1, 1}, 2, ""}).error().code,
      ErrorCode::kInvalidArgument);
  EXPECT_EQ(cat.register_type(NfType{"bad", {1, 1, 1}, 0, ""}).error().code,
            ErrorCode::kInvalidArgument);
}

TEST(NfCatalog, FootprintPrefersOverride) {
  NfCatalog cat = default_catalog();
  auto from_catalog = cat.footprint("dpi", {});
  ASSERT_TRUE(from_catalog.ok());
  EXPECT_EQ(from_catalog->cpu, 4);
  auto overridden = cat.footprint("dpi", {1, 2, 3});
  ASSERT_TRUE(overridden.ok());
  EXPECT_EQ(*overridden, (model::Resources{1, 2, 3}));
  EXPECT_EQ(cat.footprint("ghost", {}).error().code, ErrorCode::kNotFound);
  // Override works even for unknown types (explicit resources given).
  EXPECT_TRUE(cat.footprint("ghost", {1, 1, 1}).ok());
}

TEST(NfCatalog, DecompositionRegistrationChecks) {
  NfCatalog cat;
  ASSERT_TRUE(cat.register_type(NfType{"comp", {1, 1, 1}, 2, ""}).ok());
  ASSERT_TRUE(cat.register_type(NfType{"whole", {2, 2, 2}, 2, ""}).ok());

  Decomposition missing_target;
  missing_target.id = "r1";
  missing_target.target_type = "ghost";
  missing_target.components = {{"c", "comp", 2}};
  EXPECT_EQ(cat.register_decomposition(missing_target).error().code,
            ErrorCode::kNotFound);

  Decomposition missing_comp;
  missing_comp.id = "r2";
  missing_comp.target_type = "whole";
  missing_comp.components = {{"c", "ghost", 2}};
  EXPECT_EQ(cat.register_decomposition(missing_comp).error().code,
            ErrorCode::kNotFound);

  Decomposition self_recursive;
  self_recursive.id = "r3";
  self_recursive.target_type = "whole";
  self_recursive.components = {{"c", "whole", 2}};
  EXPECT_EQ(cat.register_decomposition(self_recursive).error().code,
            ErrorCode::kInvalidArgument);

  Decomposition good;
  good.id = "r4";
  good.target_type = "whole";
  good.components = {{"c", "comp", 2}};
  good.port_map = {{0, {"c", 0}}, {1, {"c", 1}}};
  ASSERT_TRUE(cat.register_decomposition(good).ok());
  EXPECT_EQ(cat.decompositions_of("whole").size(), 1u);
  EXPECT_TRUE(cat.decompositions_of("comp").empty());

  Decomposition dup = good;
  EXPECT_EQ(cat.register_decomposition(dup).error().code,
            ErrorCode::kAlreadyExists);
}

TEST(DefaultCatalog, IsRich) {
  NfCatalog cat = default_catalog();
  EXPECT_GE(cat.types().size(), 12u);
  EXPECT_GE(cat.decomposition_count(), 4u);
  EXPECT_EQ(cat.decompositions_of("secure-gw").size(), 2u);
}

TEST(ApplyDecomposition, ExpandsFirewallInChain) {
  NfCatalog cat = default_catalog();
  sg::ServiceGraph sg =
      sg::make_chain("svc", "a", {"firewall"}, "b", 100, 50);
  const Decomposition& rule = cat.decompositions_of("firewall")[0];
  ASSERT_TRUE(apply_decomposition(sg, "firewall0", rule).ok());
  EXPECT_EQ(sg.find_nf("firewall0"), nullptr);
  ASSERT_NE(sg.find_nf("firewall0.acl"), nullptr);
  ASSERT_NE(sg.find_nf("firewall0.state"), nullptr);
  EXPECT_EQ(sg.find_nf("firewall0.acl")->type, "fw-lite");
  EXPECT_TRUE(sg.validate().empty());
  // Internal link bandwidth = factor (1.0) x max external bw (100).
  const sg::SgLink* internal = sg.find_link("firewall0.l0");
  ASSERT_NE(internal, nullptr);
  EXPECT_EQ(internal->bandwidth, 100);
  // Chain traverses both components.
  auto seq = sg.nf_sequence_for(sg.requirements()[0]);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, (std::vector<std::string>{"firewall0.acl",
                                            "firewall0.state"}));
}

TEST(ApplyDecomposition, TypeMismatchRejected) {
  NfCatalog cat = default_catalog();
  sg::ServiceGraph sg = sg::make_chain("svc", "a", {"nat"}, "b", 10, 50);
  const Decomposition& rule = cat.decompositions_of("firewall")[0];
  auto r = apply_decomposition(sg, "nat0", rule);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

TEST(ApplyDecomposition, MissingNfRejected) {
  NfCatalog cat = default_catalog();
  sg::ServiceGraph sg = sg::make_chain("svc", "a", {"firewall"}, "b", 10, 50);
  const Decomposition& rule = cat.decompositions_of("firewall")[0];
  EXPECT_EQ(apply_decomposition(sg, "ghost", rule).error().code,
            ErrorCode::kNotFound);
}

TEST(ExpandAll, RecursiveExpansionConverges) {
  NfCatalog cat = default_catalog();
  sg::ServiceGraph sg =
      sg::make_chain("svc", "a", {"secure-gw"}, "b", 100, 50);
  auto applied = expand_all(sg, cat);
  ASSERT_TRUE(applied.ok()) << applied.error().to_string();
  // secure-gw -> firewall+ids, then firewall -> acl+state: 2 applications.
  EXPECT_EQ(*applied, 2u);
  EXPECT_TRUE(sg.validate().empty());
  auto seq = sg.nf_sequence_for(sg.requirements()[0]);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, (std::vector<std::string>{
                      "secure-gw0.fw.acl", "secure-gw0.fw.state",
                      "secure-gw0.ids"}));
  // All remaining types are atomic.
  for (const auto& [id, nf] : sg.nfs()) {
    EXPECT_TRUE(cat.decompositions_of(nf.type).empty()) << nf.type;
  }
}

TEST(ExpandAll, NoDecomposablesIsNoop) {
  NfCatalog cat = default_catalog();
  sg::ServiceGraph sg = sg::make_chain("svc", "a", {"nat", "dpi"}, "b", 10, 50);
  sg::ServiceGraph before = sg;
  auto applied = expand_all(sg, cat);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 0u);
  EXPECT_EQ(sg, before);
}

TEST(ExpandAll, ChooserCanKeepAbstract) {
  NfCatalog cat = default_catalog();
  sg::ServiceGraph sg =
      sg::make_chain("svc", "a", {"firewall"}, "b", 10, 50);
  auto applied = expand_all(
      sg, cat,
      [](const sg::SgNf&, const std::vector<Decomposition>&) {
        return nullptr;  // keep everything abstract
      });
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 0u);
  EXPECT_NE(sg.find_nf("firewall0"), nullptr);
}

TEST(ExpandAll, RandomChooserIsDeterministicPerSeed) {
  NfCatalog cat = default_catalog();
  const auto run = [&cat](std::uint64_t seed) {
    Rng rng(seed);
    sg::ServiceGraph sg =
        sg::make_chain("svc", "a", {"secure-gw"}, "b", 10, 50);
    auto applied = expand_all(sg, cat, random_chooser(rng));
    EXPECT_TRUE(applied.ok());
    std::vector<std::string> ids;
    for (const auto& [id, nf] : sg.nfs()) ids.push_back(id);
    return ids;
  };
  EXPECT_EQ(run(7), run(7));
  // Both secure-gw rules are reachable across seeds.
  bool saw_vpn = false, saw_fw = false;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    for (const std::string& id : run(seed)) {
      saw_vpn |= id.find(".vpn") != std::string::npos;
      saw_fw |= id.find(".fw") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_vpn);
  EXPECT_TRUE(saw_fw);
}

TEST(ExpandAll, DepthLimitDetectsNonConvergence) {
  NfCatalog cat;
  ASSERT_TRUE(cat.register_type(NfType{"a", {1, 1, 1}, 2, ""}).ok());
  ASSERT_TRUE(cat.register_type(NfType{"b", {1, 1, 1}, 2, ""}).ok());
  // a -> b and b -> a: mutual recursion never converges.
  Decomposition ab;
  ab.id = "ab";
  ab.target_type = "a";
  ab.components = {{"x", "b", 2}};
  ab.port_map = {{0, {"x", 0}}, {1, {"x", 1}}};
  ASSERT_TRUE(cat.register_decomposition(ab).ok());
  Decomposition ba;
  ba.id = "ba";
  ba.target_type = "b";
  ba.components = {{"y", "a", 2}};
  ba.port_map = {{0, {"y", 0}}, {1, {"y", 1}}};
  ASSERT_TRUE(cat.register_decomposition(ba).ok());

  sg::ServiceGraph sg = sg::make_chain("svc", "in", {"a"}, "out", 1, 100);
  auto applied = expand_all(sg, cat, {}, 4);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.error().code, ErrorCode::kInfeasible);
}

}  // namespace
}  // namespace unify::catalog
