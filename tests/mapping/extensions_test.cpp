// Tests for the extension features: the annealing mapper, placement
// constraints (anti-affinity / pin / forbid) across all algorithms, and
// the JSON-loadable NF catalog.
#include <gtest/gtest.h>

#include "catalog/catalog_json.h"
#include "catalog/decomposition.h"
#include "infra/topologies.h"
#include "mapping/annealing_mapper.h"
#include "mapping/backtracking_mapper.h"
#include "mapping/chain_dp_mapper.h"
#include "mapping/greedy_mapper.h"
#include "model/nffg_builder.h"
#include "sg/sg_json.h"

namespace unify::mapping {
namespace {

using catalog::NfCatalog;
using model::Nffg;
using sg::ServiceGraph;

Nffg line_substrate() {
  Nffg g{"line"};
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(g.add_bisbis(model::make_bisbis("bb" + std::to_string(i),
                                                {8, 8192, 100}, 4, 0.1))
                    .ok());
  }
  model::connect(g, "bb1", 1, "bb2", 1, {1000, 1.0});
  model::connect(g, "bb2", 2, "bb3", 1, {1000, 1.0});
  model::attach_sap(g, "sap1", "bb1", 0, {1000, 0.1});
  model::attach_sap(g, "sap2", "bb3", 0, {1000, 0.1});
  return g;
}

// ------------------------------------------------------------- annealing

TEST(Annealing, ProducesVerifiableMappings) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat", "monitor"}, "sap2", 50, 100);
  const NfCatalog cat = catalog::default_catalog();
  AnnealingMapper mapper;
  auto mapping = mapper.map(sg, substrate, cat);
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  EXPECT_EQ(mapping->mapper_name, "annealing");
  EXPECT_TRUE(verify_mapping(sg, substrate, cat, *mapping).ok());
}

TEST(Annealing, NeverWorseThanGreedySeed) {
  Rng rng(31);
  const NfCatalog cat = catalog::default_catalog();
  for (int trial = 0; trial < 5; ++trial) {
    const Nffg substrate = infra::topo::random_connected(10, 3.0, 2, rng);
    const ServiceGraph sg = sg::make_chain(
        "svc", "sap1", {"fw-lite", "monitor", "nat"}, "sap2", 50, 1000);
    const auto greedy = GreedyMapper().map(sg, substrate, cat);
    AnnealingOptions options;
    options.seed = 7 + static_cast<std::uint64_t>(trial);
    const auto annealed = AnnealingMapper(options).map(sg, substrate, cat);
    if (!greedy.ok()) {
      EXPECT_FALSE(annealed.ok());  // seeding failed too
      continue;
    }
    ASSERT_TRUE(annealed.ok());
    const auto cost = [](const Mapping& m) {
      double delay = 0;
      for (const auto& [r, d] : m.requirement_delay) delay += d;
      return m.stats.bandwidth_hops + delay;
    };
    EXPECT_LE(cost(*annealed), cost(*greedy) + 1e-9) << "trial " << trial;
    EXPECT_TRUE(verify_mapping(sg, substrate, cat, *annealed).ok());
  }
}

TEST(Annealing, DeterministicPerSeed) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat", "monitor"}, "sap2", 10, 100);
  const NfCatalog cat = catalog::default_catalog();
  AnnealingOptions options;
  options.seed = 99;
  const auto a = AnnealingMapper(options).map(sg, substrate, cat);
  const auto b = AnnealingMapper(options).map(sg, substrate, cat);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->nf_host, b->nf_host);
}

// ------------------------------------------------------------ constraints

class ConstraintMappers : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Mapper> make() const {
    switch (GetParam()) {
      case 0: return std::make_unique<GreedyMapper>();
      case 1: return std::make_unique<ChainDpMapper>();
      case 2: return std::make_unique<BacktrackingMapper>();
      default: return std::make_unique<AnnealingMapper>();
    }
  }
};

TEST_P(ConstraintMappers, AntiAffinitySeparatesNfs) {
  const Nffg substrate = line_substrate();
  ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat", "nat"}, "sap2", 10, 100);
  ASSERT_TRUE(sg.add_constraint({sg::ConstraintKind::kAntiAffinity, "nat0",
                                 "nat1", ""})
                  .ok());
  const NfCatalog cat = catalog::default_catalog();
  auto mapping = make()->map(sg, substrate, cat);
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  EXPECT_NE(mapping->nf_host.at("nat0"), mapping->nf_host.at("nat1"));
  EXPECT_TRUE(verify_mapping(sg, substrate, cat, *mapping).ok());
}

TEST_P(ConstraintMappers, PinForcesHost) {
  const Nffg substrate = line_substrate();
  ServiceGraph sg = sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 100);
  ASSERT_TRUE(
      sg.add_constraint({sg::ConstraintKind::kPin, "nat0", "", "bb3"}).ok());
  auto mapping = make()->map(sg, substrate, catalog::default_catalog());
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  EXPECT_EQ(mapping->nf_host.at("nat0"), "bb3");
}

TEST_P(ConstraintMappers, ForbidExcludesHost) {
  const Nffg substrate = line_substrate();
  ServiceGraph sg = sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 100);
  // bb1 would be the natural (closest) choice; forbid it.
  ASSERT_TRUE(
      sg.add_constraint({sg::ConstraintKind::kForbid, "nat0", "", "bb1"})
          .ok());
  auto mapping = make()->map(sg, substrate, catalog::default_catalog());
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  EXPECT_NE(mapping->nf_host.at("nat0"), "bb1");
}

TEST_P(ConstraintMappers, ContradictoryConstraintsInfeasible) {
  const Nffg substrate = line_substrate();
  ServiceGraph sg = sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 100);
  ASSERT_TRUE(
      sg.add_constraint({sg::ConstraintKind::kPin, "nat0", "", "bb2"}).ok());
  ASSERT_TRUE(
      sg.add_constraint({sg::ConstraintKind::kForbid, "nat0", "", "bb2"})
          .ok());
  EXPECT_FALSE(make()->map(sg, substrate, catalog::default_catalog()).ok());
}

INSTANTIATE_TEST_SUITE_P(Mappers, ConstraintMappers,
                         ::testing::Values(0, 1, 2, 3));

TEST(Constraints, VerifierCatchesViolations) {
  const Nffg substrate = line_substrate();
  ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat", "nat"}, "sap2", 10, 100);
  const NfCatalog cat = catalog::default_catalog();
  auto mapping = GreedyMapper().map(sg, substrate, cat);
  ASSERT_TRUE(mapping.ok());
  // Force both on the same host, then add the anti-affinity afterwards.
  Mapping tampered = *mapping;
  tampered.nf_host["nat0"] = tampered.nf_host["nat1"];
  ASSERT_TRUE(sg.add_constraint({sg::ConstraintKind::kAntiAffinity, "nat0",
                                 "nat1", ""})
                  .ok());
  EXPECT_FALSE(verify_mapping(sg, substrate, cat, tampered).ok());
}

TEST(Constraints, SurviveDecompositionRewriting) {
  const NfCatalog cat = catalog::default_catalog();
  ServiceGraph sg =
      sg::make_chain("svc", "a", {"firewall", "nat"}, "b", 10, 100);
  ASSERT_TRUE(sg.add_constraint({sg::ConstraintKind::kAntiAffinity,
                                 "firewall0", "nat1", ""})
                  .ok());
  ASSERT_TRUE(
      sg.add_constraint({sg::ConstraintKind::kForbid, "firewall0", "", "bbX"})
          .ok());
  auto applied = catalog::expand_all(sg, cat);
  ASSERT_TRUE(applied.ok());
  // The firewall decomposed into acl+state: constraints follow components.
  EXPECT_TRUE(sg.validate().empty());
  int anti = 0, forbid = 0;
  for (const sg::PlacementConstraint& c : sg.constraints()) {
    if (c.kind == sg::ConstraintKind::kAntiAffinity) ++anti;
    if (c.kind == sg::ConstraintKind::kForbid) ++forbid;
    EXPECT_NE(c.nf_a, "firewall0");
  }
  EXPECT_EQ(anti, 2);    // one per component vs nat1
  EXPECT_EQ(forbid, 2);  // one per component
}

TEST(Constraints, JsonRoundTrip) {
  ServiceGraph sg =
      sg::make_chain("svc", "a", {"nat", "dpi"}, "b", 10, 100);
  ASSERT_TRUE(sg.add_constraint({sg::ConstraintKind::kAntiAffinity, "nat0",
                                 "dpi1", ""})
                  .ok());
  ASSERT_TRUE(
      sg.add_constraint({sg::ConstraintKind::kPin, "dpi1", "", "bb9"}).ok());
  auto decoded = sg::sg_from_json_string(sg::to_json_string(sg));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(*decoded, sg);
}

TEST(Constraints, RegistrationChecks) {
  ServiceGraph sg = sg::make_chain("svc", "a", {"nat"}, "b", 10, 100);
  EXPECT_EQ(sg.add_constraint({sg::ConstraintKind::kPin, "ghost", "", "bb"})
                .error()
                .code,
            ErrorCode::kNotFound);
  EXPECT_EQ(sg.add_constraint({sg::ConstraintKind::kPin, "nat0", "", ""})
                .error()
                .code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(sg.add_constraint({sg::ConstraintKind::kAntiAffinity, "nat0",
                               "nat0", ""})
                .error()
                .code,
            ErrorCode::kInvalidArgument);
}

// ----------------------------------------------------------- catalog JSON

TEST(CatalogJson, DefaultCatalogRoundTrips) {
  const NfCatalog original = catalog::default_catalog();
  const auto decoded =
      catalog::catalog_from_json_string(catalog::to_json_string(original));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->types().size(), original.types().size());
  EXPECT_EQ(decoded->decomposition_count(), original.decomposition_count());
  // A decomposition still expands correctly after the round trip.
  ServiceGraph sg = sg::make_chain("svc", "a", {"secure-gw"}, "b", 10, 100);
  auto applied = catalog::expand_all(sg, *decoded);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 2u);
}

TEST(CatalogJson, ParsesHandWrittenCatalog) {
  const char* doc = R"({
    "types": [
      {"name": "proxy", "cpu": 2, "mem": 1024, "storage": 4, "ports": 2},
      {"name": "half-proxy", "cpu": 1, "mem": 512, "storage": 2}
    ],
    "decompositions": [
      {"id": "proxy-split", "target": "proxy",
       "components": [{"suffix": "a", "type": "half-proxy"},
                      {"suffix": "b", "type": "half-proxy"}],
       "links": [{"from": "a:1", "to": "b:0", "factor": 0.5}],
       "port_map": {"0": "a:0", "1": "b:1"}}
    ]})";
  auto cat = catalog::catalog_from_json_string(doc);
  ASSERT_TRUE(cat.ok()) << cat.error().to_string();
  ASSERT_TRUE(cat->has("proxy"));
  EXPECT_EQ(cat->find("proxy")->requirement.cpu, 2);
  ASSERT_EQ(cat->decompositions_of("proxy").size(), 1u);
  const auto& rule = cat->decompositions_of("proxy")[0];
  EXPECT_EQ(rule.components.size(), 2u);
  EXPECT_EQ(rule.internal_links[0].bandwidth_factor, 0.5);
  EXPECT_EQ(rule.port_map.at(1), (model::PortRef{"b", 1}));
}

TEST(CatalogJson, RejectsMalformed) {
  EXPECT_FALSE(catalog::catalog_from_json_string("[]").ok());
  EXPECT_FALSE(catalog::catalog_from_json_string(R"({"types":3})").ok());
  // Decomposition referencing an unregistered type.
  const char* bad = R"({"types":[{"name":"a","cpu":1,"mem":1,"storage":1}],
    "decompositions":[{"id":"r","target":"a",
      "components":[{"suffix":"x","type":"ghost"}],
      "port_map":{"0":"x:0"}}]})";
  EXPECT_FALSE(catalog::catalog_from_json_string(bad).ok());
  // port_map key not a number.
  const char* bad_port = R"({"types":[{"name":"a","cpu":1,"mem":1,"storage":1},
      {"name":"b","cpu":1,"mem":1,"storage":1}],
    "decompositions":[{"id":"r","target":"a",
      "components":[{"suffix":"x","type":"b"}],
      "port_map":{"zero":"x:0"}}]})";
  EXPECT_FALSE(catalog::catalog_from_json_string(bad_port).ok());
}

}  // namespace
}  // namespace unify::mapping
