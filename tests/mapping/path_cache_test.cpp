// Coverage for the Context path cache: hits, route/unroute invalidation,
// and a property sweep asserting cached distances always equal a fresh
// Dijkstra over the live residuals.
#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "infra/topologies.h"
#include "mapping/context.h"
#include "model/nffg_builder.h"
#include "model/topology_index.h"
#include "telemetry/metrics.h"

namespace unify::mapping {
namespace {

using model::Nffg;
using sg::ServiceGraph;

/// sap1 - bb1 - bb2 - bb3 - sap2 with tight (low-bandwidth) middle links so
/// reservations visibly change shortest paths.
Nffg line_substrate(double link_bw) {
  Nffg g{"line"};
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(g.add_bisbis(model::make_bisbis("bb" + std::to_string(i),
                                                {8, 8192, 100}, 4, 0.1))
                    .ok());
  }
  model::connect(g, "bb1", 1, "bb2", 1, {link_bw, 1.0});
  model::connect(g, "bb2", 2, "bb3", 1, {link_bw, 1.0});
  model::attach_sap(g, "sap1", "bb1", 0, {link_bw, 0.1});
  model::attach_sap(g, "sap2", "bb3", 0, {link_bw, 0.1});
  return g;
}

ServiceGraph chain(double bw, double delay = 1000) {
  return sg::make_chain("svc", "sap1", {"firewall"}, "sap2", bw, delay);
}

/// Reference distance computed from scratch over the context's live
/// residuals (base minus overlay reservations): same masking and weights
/// the Context's own scan uses, but through the type-erased engine with no
/// cache in the loop.
double fresh_distance(const Context& ctx, const std::string& from,
                      const std::string& to, double min_bw) {
  if (from == to) return 0;
  const model::TopologyIndex& index = ctx.index();
  const auto from_id = index.node_of(from);
  const auto to_id = index.node_of(to);
  if (from_id == graph::kInvalidId || to_id == graph::kInvalidId) {
    return graph::kInf;
  }
  const graph::EdgeScanFn scan = [&](graph::NodeId node,
                                     const graph::EdgeVisitFn& visit) {
    for (const graph::EdgeId e : index.graph().out_edges(node)) {
      if (ctx.residual_bandwidth(e) < min_bw) continue;
      const auto& edge = index.graph().edge(e);
      visit(e, edge.to, model::TopologyIndex::edge_weight(edge.data));
    }
  };
  const auto path = graph::shortest_path(index.graph().node_capacity(),
                                         from_id, to_id, scan);
  return path.has_value() ? path->cost : graph::kInf;
}

TEST(PathCache, RepeatedDistanceHitsCache) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const ServiceGraph sg = chain(100);
  const Nffg substrate = line_substrate(1000);
  Context ctx(sg, substrate, cat);

  const double first = ctx.distance("sap1", "sap2", 100);
  EXPECT_EQ(ctx.path_cache_stats().misses, 1u);
  EXPECT_EQ(ctx.path_cache_stats().hits, 0u);
  const double second = ctx.distance("sap1", "sap2", 100);
  EXPECT_EQ(ctx.path_cache_stats().hits, 1u);
  EXPECT_EQ(first, second);
  // A different bandwidth class is a distinct entry.
  (void)ctx.distance("sap1", "sap2", 200);
  EXPECT_EQ(ctx.path_cache_stats().misses, 2u);
}

TEST(PathCache, RouteConsumesEntryCachedByDistance) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const ServiceGraph sg = chain(100);
  const Nffg substrate = line_substrate(1000);
  Context ctx(sg, substrate, cat);
  ASSERT_TRUE(ctx.place("firewall0", "bb2").ok());

  // Mapper-style probing warms the cache with exactly the (src, dst, bw)
  // keys route() asks for.
  (void)ctx.distance("sap1", "bb2", 100);
  (void)ctx.distance("bb2", "sap2", 100);
  const auto misses = ctx.path_cache_stats().misses;
  ASSERT_TRUE(ctx.route_all().ok());
  EXPECT_EQ(ctx.path_cache_stats().misses, misses);  // all from cache
  EXPECT_GE(ctx.path_cache_stats().hits, 2u);
}

TEST(PathCache, RouteInvalidatesEntriesCrossingReservedLinks) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  // Chain bandwidth 600 on 1000 Mbit/s links: one routed chain leaves 400,
  // so a 600 Mbit/s probe flips from reachable to unreachable.
  const ServiceGraph sg = chain(600);
  const Nffg substrate = line_substrate(1000);
  Context ctx(sg, substrate, cat);
  ASSERT_TRUE(ctx.place("firewall0", "bb2").ok());

  EXPECT_LT(ctx.distance("sap1", "sap2", 600), graph::kInf);
  ASSERT_TRUE(ctx.route_all().ok());
  EXPECT_GT(ctx.path_cache_stats().invalidations, 0u);

  const double after = ctx.distance("sap1", "sap2", 600);
  EXPECT_EQ(after, graph::kInf);
  EXPECT_EQ(after, fresh_distance(ctx, "sap1", "sap2", 600));
}

TEST(PathCache, UnrouteInvalidatesEntriesAboveReleasedResidual) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const ServiceGraph sg = chain(600);
  const Nffg substrate = line_substrate(1000);
  Context ctx(sg, substrate, cat);
  ASSERT_TRUE(ctx.place("firewall0", "bb2").ok());
  ASSERT_TRUE(ctx.route_all().ok());

  EXPECT_EQ(ctx.distance("sap1", "sap2", 600), graph::kInf);
  // This entry's floor (100) is below the routed links' residual (400):
  // the release cannot change its masked graph, so it must survive.
  (void)ctx.distance("sap1", "sap2", 100);
  const auto before = ctx.path_cache_stats().invalidations;
  const auto hits = ctx.path_cache_stats().hits;

  // Releasing unmasks the links only for floors above the pre-release
  // residual: the 600 entry goes stale and is evicted, the 100 entry
  // stays and keeps serving hits.
  for (const sg::SgLink& link : sg.links()) ctx.unroute(link.id);
  EXPECT_GT(ctx.path_cache_stats().invalidations, before);
  EXPECT_LT(ctx.distance("sap1", "sap2", 600), graph::kInf);
  EXPECT_EQ(ctx.distance("sap1", "sap2", 600),
            fresh_distance(ctx, "sap1", "sap2", 600));
  EXPECT_EQ(ctx.distance("sap1", "sap2", 100),
            fresh_distance(ctx, "sap1", "sap2", 100));
  EXPECT_GT(ctx.path_cache_stats().hits, hits);
}

TEST(PathCache, UnrouteSurvivesUnknownSgLink) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const ServiceGraph sg = chain(100);
  const Nffg substrate = line_substrate(1000);
  Context ctx(sg, substrate, cat);
  // Unrouting something never routed (or not an SG link at all) is a no-op.
  ctx.unroute("no-such-link");
  SUCCEED();
}

TEST(PathCache, PublishesCounters) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const ServiceGraph sg = chain(100);
  const Nffg substrate = line_substrate(1000);
  Context ctx(sg, substrate, cat);
  (void)ctx.distance("sap1", "sap2", 100);
  (void)ctx.distance("sap1", "sap2", 100);

  telemetry::Registry registry;
  ctx.publish_cache_metrics(registry);
  EXPECT_EQ(registry.counter("mapping.path_cache.misses"), 1u);
  EXPECT_EQ(registry.counter("mapping.path_cache.hits"), 1u);
}

/// Property: across random topologies and interleaved route/unroute churn,
/// a cached distance() always equals a from-scratch Dijkstra on the live
/// residual state.
TEST(PathCacheProperty, CachedDistanceEqualsFreshDijkstra) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const int n = static_cast<int>(rng.next_int(5, 16));
    const model::Nffg substrate =
        infra::topo::random_connected(n, 3.0, 2, rng);
    const double bw = rng.next_double(100, 2000);
    const ServiceGraph sg =
        sg::make_chain("svc", "sap1", {"fw-lite", "monitor"}, "sap2", bw,
                       10000);
    Context ctx(sg, substrate, cat);

    // Collect the substrate node ids once.
    std::vector<std::string> nodes;
    for (const auto& [id, bb] : ctx.work().bisbis()) nodes.push_back(id);
    for (const auto& [id, sap] : ctx.work().saps()) nodes.push_back(id);

    const auto probe_all = [&] {
      for (const std::string& from : nodes) {
        for (const std::string& to : nodes) {
          const double floor = rng.next_double(0, 3000);
          ASSERT_EQ(ctx.distance(from, to, floor),
                    fresh_distance(ctx, from, to, floor))
              << "seed " << seed << " " << from << "->" << to << " bw "
              << floor;
          // Ask again (likely a hit) and cross-check once more.
          ASSERT_EQ(ctx.distance(from, to, floor),
                    fresh_distance(ctx, from, to, floor));
        }
      }
    };

    probe_all();
    // Place and route the chain (reserves bandwidth), probe, tear it down
    // (releases bandwidth), probe again.
    const auto hosts = ctx.candidates(*sg.find_nf("fw-lite0"));
    if (hosts.empty()) continue;
    ASSERT_TRUE(ctx.place("fw-lite0", hosts.front()).ok());
    const auto hosts2 = ctx.candidates(*sg.find_nf("monitor1"));
    if (hosts2.empty()) continue;
    ASSERT_TRUE(ctx.place("monitor1", hosts2.back()).ok());
    if (ctx.route_all().ok()) {
      probe_all();
      for (const sg::SgLink& link : sg.links()) ctx.unroute(link.id);
    }
    probe_all();
    EXPECT_GT(ctx.path_cache_stats().hits, 0u);
  }
}

}  // namespace
}  // namespace unify::mapping
