// Mapper conformance: every registered embedding algorithm, heuristic or
// exact, honours the same contract over hundreds of seeded (topology,
// chain) instances —
//   - anything returned passes the independent verifier (capacity,
//     bandwidth, path continuity, max_delay);
//   - rejects are honest: a mapper either embeds the whole request or
//     fails, it never hands back a silent partial placement;
//   - stochastic mappers replay byte-identically per seed (no deadline
//     armed — the contract of DESIGN.md §15);
//   - the branch-and-bound baseline lower-bounds every other mapper's
//     canonically re-scored embedding on the instances it solves to proven
//     optimality.
#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "infra/topologies.h"
#include "mapping/annealing_mapper.h"
#include "mapping/backtracking_mapper.h"
#include "mapping/baseline_mappers.h"
#include "mapping/bnb_mapper.h"
#include "mapping/chain_dp_mapper.h"
#include "mapping/context.h"
#include "mapping/greedy_mapper.h"
#include "mapping/list_mapper.h"
#include "mapping/mapper.h"
#include "mapping/nsga2_mapper.h"
#include "util/rng.h"

namespace unify::mapping {
namespace {

const std::vector<std::string> kAtomicTypes{
    "fw-lite", "fw-stateful", "nat", "monitor", "vpn", "compressor"};

struct Instance {
  model::Nffg substrate;
  sg::ServiceGraph sg;
};

Instance make_instance(std::uint64_t seed) {
  Rng rng(seed);
  const int n = static_cast<int>(rng.next_int(4, 14));
  const double degree = rng.next_double(2.0, 4.0);
  Instance inst{infra::topo::random_connected(n, degree, 2, rng),
                sg::ServiceGraph{"unset"}};
  const int len = static_cast<int>(rng.next_int(1, 4));
  std::vector<std::string> types;
  for (int i = 0; i < len; ++i) {
    types.push_back(kAtomicTypes[rng.next_below(kAtomicTypes.size())]);
  }
  const double bw = rng.next_double(10, 200);
  const double delay = rng.next_double(10, 200);
  inst.sg = sg::make_chain("svc", "sap1", types, "sap2", bw, delay);
  return inst;
}

/// Conformance sweeps every mapper over this many seeded instances.
constexpr std::uint64_t kInstances = 500;
/// Determinism (double-mapping) and BnB bounding use a cheaper slice.
constexpr std::uint64_t kReplayInstances = 120;
constexpr std::uint64_t kBoundInstances = 150;

/// NSGA-II sized down for a 500-instance sweep: enough evolution to leave
/// the warm start, cheap enough to keep the suite in seconds.
Nsga2Options small_nsga2(std::uint64_t seed) {
  Nsga2Options options;
  options.population = 10;
  options.generations = 6;
  options.seed = seed;
  return options;
}

struct MapperCase {
  const char* label;
  bool stochastic;  ///< output depends on MapperOptions::seed
  std::unique_ptr<Mapper> (*make)(std::uint64_t seed);
};

const MapperCase kMappers[] = {
    {"greedy", false,
     [](std::uint64_t) -> std::unique_ptr<Mapper> {
       return std::make_unique<GreedyMapper>();
     }},
    {"chain_dp", false,
     [](std::uint64_t) -> std::unique_ptr<Mapper> {
       return std::make_unique<ChainDpMapper>();
     }},
    {"backtracking", false,
     [](std::uint64_t) -> std::unique_ptr<Mapper> {
       return std::make_unique<BacktrackingMapper>();
     }},
    {"first_fit", false,
     [](std::uint64_t) -> std::unique_ptr<Mapper> {
       return std::make_unique<FirstFitMapper>();
     }},
    {"random", true,
     [](std::uint64_t seed) -> std::unique_ptr<Mapper> {
       MapperOptions options;
       options.seed = seed;
       return std::make_unique<RandomMapper>(options);
     }},
    {"annealing", true,
     [](std::uint64_t seed) -> std::unique_ptr<Mapper> {
       AnnealingOptions options;
       options.iterations = 120;
       options.seed = seed;
       return std::make_unique<AnnealingMapper>(options);
     }},
    {"list_heft", false,
     [](std::uint64_t) -> std::unique_ptr<Mapper> {
       return std::make_unique<ListMapper>();
     }},
    {"nsga2", true,
     [](std::uint64_t seed) -> std::unique_ptr<Mapper> {
       return std::make_unique<Nsga2Mapper>(small_nsga2(seed));
     }},
    {"bnb", false,
     [](std::uint64_t) -> std::unique_ptr<Mapper> {
       return std::make_unique<BnbMapper>();
     }},
};

class MapperConformance : public ::testing::TestWithParam<int> {
 protected:
  const MapperCase& field() const { return kMappers[GetParam()]; }
};

TEST_P(MapperConformance, RespectsConstraintsOverSeededInstances) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  int successes = 0;
  for (std::uint64_t seed = 0; seed < kInstances; ++seed) {
    const Instance inst = make_instance(seed);
    const auto mapper = field().make(seed + 1);
    const auto mapping = mapper->map(inst.sg, inst.substrate, cat);
    if (!mapping.ok()) continue;  // an honest reject is a legal outcome
    ++successes;
    // Whole embedding or nothing: every NF placed, every SG link routed.
    EXPECT_EQ(mapping->stats.nfs_placed, inst.sg.nfs().size())
        << field().label << " seed " << seed;
    EXPECT_EQ(mapping->nf_host.size(), inst.sg.nfs().size())
        << field().label << " seed " << seed;
    EXPECT_EQ(mapping->link_paths.size(), inst.sg.links().size())
        << field().label << " seed " << seed;
    // The independent verifier re-checks capacity, bandwidth, path
    // continuity and every requirement's max_delay.
    const auto verified = verify_mapping(inst.sg, inst.substrate, cat,
                                         *mapping);
    EXPECT_TRUE(verified.ok()) << field().label << " seed " << seed << ": "
                               << verified.error().to_string();
  }
  // The generator leans generous: every algorithm must embed a healthy
  // share of the 500 instances, or it is rejecting dishonestly.
  EXPECT_GT(successes, static_cast<int>(kInstances) / 4) << field().label;
}

TEST_P(MapperConformance, SameSeedReplaysByteIdentical) {
  if (!field().stochastic) {
    GTEST_SKIP() << field().label << " takes no seed";
  }
  const catalog::NfCatalog cat = catalog::default_catalog();
  int compared = 0;
  for (std::uint64_t seed = 0; seed < kReplayInstances; ++seed) {
    const Instance inst = make_instance(seed);
    // Two independently constructed mappers — any hidden shared state
    // (statics, clock reads) would break the replay.
    const auto first = field().make(seed + 1)->map(inst.sg, inst.substrate,
                                                   cat);
    const auto second = field().make(seed + 1)->map(inst.sg, inst.substrate,
                                                    cat);
    ASSERT_EQ(first.ok(), second.ok()) << field().label << " seed " << seed;
    if (!first.ok()) continue;
    ++compared;
    EXPECT_EQ(*first, *second) << field().label << " seed " << seed;
  }
  EXPECT_GT(compared, 0) << field().label;
}

INSTANTIATE_TEST_SUITE_P(
    Field, MapperConformance,
    ::testing::Range(0, static_cast<int>(std::size(kMappers))),
    [](const ::testing::TestParamInfo<int>& info) {
      return std::string(kMappers[info.param].label);
    });

/// Re-scores another mapper's *placement* under the canonical evaluation
/// BnB proves optimality against (fresh Context, route_all in SG-link
/// order): routing order differs between algorithms, so comparing raw
/// scores would compare evaluation procedures, not placements. nullopt
/// when the placement does not survive canonical routing.
std::optional<EmbeddingScore> canonical_score(const Instance& inst,
                                              const catalog::NfCatalog& cat,
                                              const Mapping& mapping) {
  Context ctx(inst.sg, inst.substrate, cat);
  for (const auto& [nf, host] : mapping.nf_host) {
    if (!ctx.place(nf, host).ok()) return std::nullopt;
  }
  if (!ctx.route_all().ok()) return std::nullopt;
  if (!ctx.check_requirements().ok()) return std::nullopt;
  return score_mapping(ctx.finish("canonical"), inst.substrate);
}

TEST(BnbBaseline, LowerBoundsEveryMapperOnExactlySolvedInstances) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const BnbMapper bnb;
  int proven = 0;
  int dominated = 0;
  for (std::uint64_t seed = 0; seed < kBoundInstances; ++seed) {
    const Instance inst = make_instance(seed);
    if (inst.sg.nfs().size() > BnbOptions{}.max_nfs) continue;
    const auto exact = bnb.map_exact(inst.sg, inst.substrate, cat);
    if (!exact.ok() || !exact->optimal) continue;
    ++proven;
    const double best = score_mapping(exact->mapping, inst.substrate).total();
    // The root relaxation never exceeds the proven optimum.
    EXPECT_LE(exact->lower_bound, best + 1e-6) << "seed " << seed;
    for (const MapperCase& rival : kMappers) {
      const auto mapping =
          rival.make(seed + 1)->map(inst.sg, inst.substrate, cat);
      if (!mapping.ok()) continue;
      const auto rescored = canonical_score(inst, cat, *mapping);
      if (!rescored.has_value()) continue;  // placement needs its own routing
      ++dominated;
      EXPECT_LE(best, rescored->total() + 1e-6)
          << rival.label << " beat the proven optimum on seed " << seed;
    }
  }
  // The small-instance generator must give the exact baseline real work.
  EXPECT_GT(proven, 20);
  EXPECT_GT(dominated, 100);
}

TEST(BnbBaseline, RefusesOversizedInstances) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  BnbOptions options;
  options.max_nfs = 2;
  const BnbMapper bnb(options);
  Rng rng(7);
  const model::Nffg substrate = infra::topo::random_connected(10, 3, 2, rng);
  const sg::ServiceGraph sg = sg::make_chain(
      "svc", "sap1", {"nat", "monitor", "vpn"}, "sap2", 20, 500);
  const auto result = bnb.map(sg, substrate, cat);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kResourceExhausted);
}

TEST(BnbBaseline, ReportsInfeasibilityFromTheRootRelaxation) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const model::Nffg substrate = infra::topo::line(3);
  // 1 ms budget across a multi-hop line topology: provably impossible.
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat"}, "sap2", 5, 0.0001);
  const BnbMapper bnb;
  const auto result = bnb.map_exact(sg, substrate, cat);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInfeasible);
}

}  // namespace
}  // namespace unify::mapping
