// Portfolio racer: K mappers speculate in parallel, exactly one embedding
// wins, the winner is never worse than the best individual racer, and the
// per-racer telemetry drains without double counting.
#include "mapping/portfolio.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/resource_orchestrator.h"
#include "infra/topologies.h"
#include "mapping/greedy_mapper.h"
#include "model/nffg_builder.h"
#include "telemetry/metrics.h"
#include "util/rng.h"

namespace unify::mapping {
namespace {

struct Instance {
  model::Nffg substrate;
  sg::ServiceGraph sg;
};

Instance instance(std::uint64_t seed) {
  Rng rng(seed);
  return Instance{
      infra::topo::random_connected(10, 3.0, 2, rng),
      sg::make_chain("svc", "sap1", {"nat", "monitor", "vpn"}, "sap2", 40,
                     300)};
}

TEST(Portfolio, WinnerIsNeverWorseThanAnyFeasibleRacer) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const PortfolioMapper portfolio(PortfolioMapper::standard_racers());
  ASSERT_EQ(portfolio.racers().size(), 7u);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Instance inst = instance(seed);
    const auto report = portfolio.race(inst.sg, inst.substrate, cat);
    ASSERT_TRUE(report.ok()) << report.error().to_string();
    ASSERT_EQ(report->outcomes.size(), 7u);
    ASSERT_GE(report->winner, 0);
    const EmbeddingScore& won =
        report->outcomes[static_cast<std::size_t>(report->winner)].score;
    for (const RacerOutcome& outcome : report->outcomes) {
      if (!outcome.feasible) continue;
      EXPECT_LE(won.total(), outcome.score.total() + 1e-9)
          << outcome.mapper << " beat the declared winner on seed " << seed;
    }
    // The committed embedding itself survives independent verification.
    const auto verified =
        verify_mapping(inst.sg, inst.substrate, cat, report->mapping);
    EXPECT_TRUE(verified.ok()) << verified.error().to_string();
  }
}

TEST(Portfolio, MapRecordsTheWinningAlgorithm) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const PortfolioMapper portfolio(PortfolioMapper::standard_racers());
  const Instance inst = instance(3);
  const auto mapping = portfolio.map(inst.sg, inst.substrate, cat);
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  EXPECT_EQ(mapping->mapper_name.rfind("portfolio/", 0), 0u)
      << mapping->mapper_name;
}

TEST(Portfolio, RejectsAnEmptyField) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const PortfolioMapper portfolio({});
  const Instance inst = instance(4);
  const auto report = portfolio.race(inst.sg, inst.substrate, cat);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kInvalidArgument);
}

TEST(Portfolio, ReportsInfeasibilityWhenEveryRacerFails) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const PortfolioMapper portfolio(PortfolioMapper::standard_racers());
  const model::Nffg substrate = infra::topo::line(3);
  // Sub-ms budget over a multi-hop line: nothing can embed this.
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat"}, "sap2", 5, 0.0001);
  const auto report = portfolio.race(sg, substrate, cat);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kInfeasible);
}

TEST(Portfolio, DeadlineRaceStillCommitsAtMostOneWinner) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  PortfolioOptions options;
  options.deadline_us = 1;  // expire before the iterative racers finish
  const PortfolioMapper portfolio(PortfolioMapper::standard_racers(),
                                  options);
  const Instance inst = instance(5);
  const auto report = portfolio.race(inst.sg, inst.substrate, cat);
  // One-pass racers (greedy, chain-dp, list-heft) ignore the deadline, so
  // the race still lands a winner; deadline kills must be reported as
  // kTimeout outcomes, not silent partials.
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  ASSERT_GE(report->winner, 0);
  const auto verified =
      verify_mapping(inst.sg, inst.substrate, cat, report->mapping);
  EXPECT_TRUE(verified.ok()) << verified.error().to_string();
  for (const RacerOutcome& outcome : report->outcomes) {
    if (outcome.deadline_killed) {
      EXPECT_FALSE(outcome.feasible);
    }
  }
}

TEST(Portfolio, DrainMetricsMovesAndResets) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const PortfolioMapper portfolio(PortfolioMapper::standard_racers());
  const Instance inst = instance(6);
  constexpr std::uint64_t kRaces = 3;
  for (std::uint64_t i = 0; i < kRaces; ++i) {
    ASSERT_TRUE(portfolio.race(inst.sg, inst.substrate, cat).ok());
  }
  telemetry::Registry registry;
  portfolio.drain_metrics(registry);
  EXPECT_EQ(registry.counter("mapping.portfolio.races"), kRaces);
  std::uint64_t wins = 0;
  for (const auto& racer : portfolio.racers()) {
    const std::string prefix = "mapping.portfolio." + racer->name() + ".";
    EXPECT_EQ(registry.counter(prefix + "runs"), kRaces) << racer->name();
    wins += registry.counter(prefix + "wins");
    const auto* wall = registry.find_summary(prefix + "wall_us");
    ASSERT_NE(wall, nullptr) << racer->name();
    EXPECT_EQ(wall->count(), kRaces) << racer->name();
  }
  EXPECT_EQ(wins, kRaces);  // exactly one winner per race
  // Draining resets: a second drain has nothing to add.
  telemetry::Registry again;
  portfolio.drain_metrics(again);
  EXPECT_EQ(again.counter("mapping.portfolio.races"), 0u);
  EXPECT_EQ(again.counters().size(), 0u);
}

TEST(Portfolio, DeterministicWithoutADeadline) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const PortfolioMapper portfolio(PortfolioMapper::standard_racers());
  const Instance inst = instance(7);
  const auto first = portfolio.map(inst.sg, inst.substrate, cat);
  const auto second = portfolio.map(inst.sg, inst.substrate, cat);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

// -- RO integration ---------------------------------------------------------

class StubAdapter final : public adapters::DomainAdapter {
 public:
  StubAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg stub_view(const std::string& bb, const std::string& sap,
                      const std::string& stitch) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {16, 16384, 200}, 4)).ok());
  model::attach_sap(g, sap, bb, 0, {1000, 0.1});
  model::attach_sap(g, stitch, bb, 1, {1000, 0.5});
  return g;
}

TEST(Portfolio, RoRacesAndDrainsThroughDeploy) {
  core::RoOptions options;
  options.race_portfolio = true;
  // Keep the portfolio outermost (decomposition would rename the mapping
  // "decomp-aware(portfolio)"); the chain below is atomic anyway.
  options.use_decomposition = false;
  core::ResourceOrchestrator ro("ro",
                                std::make_shared<GreedyMapper>(),
                                catalog::default_catalog(), options);
  ASSERT_NE(ro.portfolio(), nullptr);
  // Injected greedy races as lane 0; the standard field's own greedy is
  // deduplicated away.
  EXPECT_EQ(ro.portfolio()->racers().size(), 7u);
  EXPECT_EQ(ro.portfolio()->racers().front()->name(), "greedy");
  ASSERT_TRUE(ro.add_domain(std::make_unique<StubAdapter>(
                                "d1", stub_view("bb1", "sap1", "xp")))
                  .ok());
  ASSERT_TRUE(ro.add_domain(std::make_unique<StubAdapter>(
                                "d2", stub_view("bb2", "sap2", "xp")))
                  .ok());
  ASSERT_TRUE(ro.initialize().ok());
  const auto deployed =
      ro.deploy(sg::make_chain("svc", "sap1", {"nat", "monitor"}, "sap2",
                               50, 100));
  ASSERT_TRUE(deployed.ok()) << deployed.error().to_string();
  // The committed deployment records which algorithm won...
  const auto& mapping = ro.deployments().at("svc").mapping;
  EXPECT_EQ(mapping.mapper_name.rfind("portfolio/", 0), 0u)
      << mapping.mapper_name;
  // ...and deploy() drained the race telemetry into the RO registry.
  EXPECT_GE(ro.metrics().counter("mapping.portfolio.races"), 1u);
}

}  // namespace
}  // namespace unify::mapping
