// Property-based sweeps over randomized substrates and service chains:
// whatever a mapper returns must satisfy the independent verifier, install
// cleanly, and uninstall back to the pristine substrate.
#include <gtest/gtest.h>

#include "catalog/decomposition.h"
#include "infra/topologies.h"
#include "mapping/backtracking_mapper.h"
#include "mapping/baseline_mappers.h"
#include "mapping/chain_dp_mapper.h"
#include "mapping/greedy_mapper.h"
#include "mapping/mapper.h"

namespace unify::mapping {
namespace {

const std::vector<std::string> kAtomicTypes{
    "fw-lite", "fw-stateful", "nat", "monitor", "vpn", "compressor"};

sg::ServiceGraph random_chain(Rng& rng, int max_len) {
  const int len = static_cast<int>(rng.next_int(1, max_len));
  std::vector<std::string> types;
  for (int i = 0; i < len; ++i) {
    types.push_back(kAtomicTypes[rng.next_below(kAtomicTypes.size())]);
  }
  const double bw = rng.next_double(10, 200);
  const double delay = rng.next_double(10, 200);
  return sg::make_chain("svc", "sap1", types, "sap2", bw, delay);
}

model::Nffg random_substrate(Rng& rng) {
  const int n = static_cast<int>(rng.next_int(4, 20));
  const double degree = rng.next_double(2.0, 4.0);
  return infra::topo::random_connected(n, degree, 2, rng);
}

class MapperProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  std::unique_ptr<Mapper> make() const {
    switch (std::get<0>(GetParam())) {
      case 0: return std::make_unique<GreedyMapper>();
      case 1: return std::make_unique<ChainDpMapper>();
      case 2: return std::make_unique<BacktrackingMapper>();
      case 3: return std::make_unique<FirstFitMapper>();
      default: return std::make_unique<RandomMapper>();
    }
  }
};

TEST_P(MapperProperty, SuccessfulMappingsVerifyInstallAndUninstall) {
  Rng rng(std::get<1>(GetParam()));
  const catalog::NfCatalog cat = catalog::default_catalog();
  const auto mapper = make();
  int successes = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const model::Nffg substrate = random_substrate(rng);
    const sg::ServiceGraph sg = random_chain(rng, 5);
    const auto mapping = mapper->map(sg, substrate, cat);
    if (!mapping.ok()) continue;  // infeasible is a legal outcome
    ++successes;

    // The independent verifier must agree.
    const auto verified = verify_mapping(sg, substrate, cat, *mapping);
    EXPECT_TRUE(verified.ok())
        << mapper->name() << " trial " << trial << ": "
        << verified.error().to_string();

    // Install produces a structurally valid configuration...
    model::Nffg configured = substrate;
    ASSERT_TRUE(install_mapping(configured, sg, cat, *mapping).ok());
    EXPECT_TRUE(configured.validate().empty());
    EXPECT_EQ(configured.stats().nf_count, sg.nfs().size());

    // ...and uninstall restores the pristine substrate exactly.
    ASSERT_TRUE(uninstall_mapping(configured, sg, *mapping).ok());
    EXPECT_EQ(configured, substrate);
  }
  // Generous substrates: most trials should succeed for every algorithm.
  EXPECT_GT(successes, 0);
}

TEST_P(MapperProperty, ReportedDelaysMatchRecomputation) {
  Rng rng(std::get<1>(GetParam()) ^ 0xABCDEF);
  const catalog::NfCatalog cat = catalog::default_catalog();
  const auto mapper = make();
  for (int trial = 0; trial < 6; ++trial) {
    const model::Nffg substrate = random_substrate(rng);
    const sg::ServiceGraph sg = random_chain(rng, 4);
    const auto mapping = mapper->map(sg, substrate, cat);
    if (!mapping.ok()) continue;
    for (const sg::E2eRequirement& req : sg.requirements()) {
      const auto chain = sg.chain_for(req);
      ASSERT_TRUE(chain.ok());
      double recomputed = 0;
      for (const sg::SgLink* link : *chain) {
        recomputed += mapping->link_paths.at(link->id).delay;
      }
      EXPECT_NEAR(mapping->requirement_delay.at(req.id), recomputed, 1e-9);
      EXPECT_LE(recomputed, req.max_delay + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapperProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(11u, 23u, 47u)));

TEST(DecompositionProperty, ExpansionPreservesChainConnectivity) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  const std::vector<std::string> composites{"firewall", "secure-gw",
                                            "cdn-edge"};
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    std::vector<std::string> types;
    const int len = static_cast<int>(rng.next_int(1, 4));
    for (int i = 0; i < len; ++i) {
      types.push_back(rng.next_bool(0.5)
                          ? composites[rng.next_below(composites.size())]
                          : kAtomicTypes[rng.next_below(kAtomicTypes.size())]);
    }
    sg::ServiceGraph sg =
        sg::make_chain("svc", "a", types, "b", 50, 1000);
    const auto before = sg.nf_sequence_for(sg.requirements()[0]);
    ASSERT_TRUE(before.ok());
    auto applied = expand_all(sg, cat, catalog::random_chooser(rng));
    ASSERT_TRUE(applied.ok()) << applied.error().to_string();
    EXPECT_TRUE(sg.validate().empty()) << "seed " << seed;
    const auto after = sg.nf_sequence_for(sg.requirements()[0]);
    ASSERT_TRUE(after.ok()) << "seed " << seed;
    // Expansion never shortens a chain.
    EXPECT_GE(after->size(), before->size());
    // Every remaining type is atomic.
    for (const auto& [id, nf] : sg.nfs()) {
      EXPECT_TRUE(cat.decompositions_of(nf.type).empty());
    }
  }
}

TEST(MappingProperty, SequentialFillNeverOvercommits) {
  // Keep installing random chains; at every step the substrate must stay
  // structurally valid (no compute or bandwidth overcommit).
  Rng rng(2026);
  const catalog::NfCatalog cat = catalog::default_catalog();
  model::Nffg substrate = infra::topo::leaf_spine(2, 4, 2);
  GreedyMapper mapper;
  int accepted = 0;
  for (int i = 0; i < 64; ++i) {
    sg::ServiceGraph sg = random_chain(rng, 3);
    // Unique ids per round (flat NF namespace).
    sg::ServiceGraph unique{"svc" + std::to_string(i)};
    for (const auto& [sap, name] : sg.saps()) {
      ASSERT_TRUE(unique.add_sap(sap, name).ok());
    }
    for (const auto& [nf_id, nf] : sg.nfs()) {
      sg::SgNf copy = nf;
      copy.id = "r" + std::to_string(i) + "." + nf_id;
      ASSERT_TRUE(unique.add_nf(copy).ok());
    }
    for (const sg::SgLink& link : sg.links()) {
      sg::SgLink copy = link;
      copy.id = "r" + std::to_string(i) + "." + link.id;
      if (!sg.has_sap(copy.from.node)) {
        copy.from.node = "r" + std::to_string(i) + "." + copy.from.node;
      }
      if (!sg.has_sap(copy.to.node)) {
        copy.to.node = "r" + std::to_string(i) + "." + copy.to.node;
      }
      ASSERT_TRUE(unique.add_link(copy).ok());
    }
    const auto mapping = mapper.map(unique, substrate, cat);
    if (!mapping.ok()) continue;
    ASSERT_TRUE(install_mapping(substrate, unique, cat, *mapping).ok());
    ++accepted;
    const auto problems = substrate.validate();
    ASSERT_TRUE(problems.empty())
        << "after " << accepted << " installs: " << problems.front();
  }
  EXPECT_GT(accepted, 4);
}

}  // namespace
}  // namespace unify::mapping
