#include "mapping/mapper.h"

#include <gtest/gtest.h>

#include "catalog/decomposition.h"
#include "mapping/annealing_mapper.h"
#include "mapping/backtracking_mapper.h"
#include "mapping/baseline_mappers.h"
#include "mapping/chain_dp_mapper.h"
#include "mapping/context.h"
#include "mapping/decomp_aware_mapper.h"
#include "mapping/greedy_mapper.h"
#include "model/nffg_builder.h"

namespace unify::mapping {
namespace {

using catalog::NfCatalog;
using model::LinkAttrs;
using model::Nffg;
using model::Resources;
using sg::ServiceGraph;

/// Line substrate: sap1 - bb1 - bb2 - bb3 - sap2, generous resources.
Nffg line_substrate(double link_bw = 1000, double cpu = 8) {
  Nffg g{"line"};
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(g.add_bisbis(model::make_bisbis("bb" + std::to_string(i),
                                                {cpu, 8192, 100}, 4, 0.1))
                    .ok());
  }
  model::connect(g, "bb1", 1, "bb2", 1, {link_bw, 1.0});
  model::connect(g, "bb2", 2, "bb3", 1, {link_bw, 1.0});
  model::attach_sap(g, "sap1", "bb1", 0, {link_bw, 0.1});
  model::attach_sap(g, "sap2", "bb3", 0, {link_bw, 0.1});
  return g;
}

ServiceGraph fw_nat_chain(double bw = 100, double delay = 50) {
  return sg::make_chain("svc", "sap1", {"firewall", "nat"}, "sap2", bw,
                        delay);
}

class AllMappers : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Mapper> make() const {
    const std::string which = GetParam();
    if (which == "greedy") return std::make_unique<GreedyMapper>();
    if (which == "chain-dp") return std::make_unique<ChainDpMapper>();
    if (which == "backtracking") return std::make_unique<BacktrackingMapper>();
    if (which == "first-fit") return std::make_unique<FirstFitMapper>();
    return std::make_unique<RandomMapper>();
  }
};

TEST_P(AllMappers, MapsChainOnLineSubstrate) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg = fw_nat_chain();
  const NfCatalog cat = catalog::default_catalog();
  auto mapping = make()->map(sg, substrate, cat);
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  EXPECT_TRUE(verify_mapping(sg, substrate, cat, *mapping).ok());
  EXPECT_EQ(mapping->nf_host.size(), 2u);
  EXPECT_EQ(mapping->link_paths.size(), 3u);
  EXPECT_LE(mapping->requirement_delay.at("e2e"), 50.0);
}

TEST_P(AllMappers, InstallProducesValidNffg) {
  Nffg substrate = line_substrate();
  const ServiceGraph sg = fw_nat_chain();
  const NfCatalog cat = catalog::default_catalog();
  auto mapping = make()->map(sg, substrate, cat);
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  ASSERT_TRUE(install_mapping(substrate, sg, cat, *mapping).ok());
  EXPECT_TRUE(substrate.validate().empty());
  const auto stats = substrate.stats();
  EXPECT_EQ(stats.nf_count, 2u);
  EXPECT_GT(stats.flowrule_count, 0u);
}

TEST_P(AllMappers, UninstallRestoresSubstrate) {
  Nffg substrate = line_substrate();
  const Nffg pristine = substrate;
  const ServiceGraph sg = fw_nat_chain();
  const NfCatalog cat = catalog::default_catalog();
  auto mapping = make()->map(sg, substrate, cat);
  ASSERT_TRUE(mapping.ok());
  ASSERT_TRUE(install_mapping(substrate, sg, cat, *mapping).ok());
  ASSERT_TRUE(uninstall_mapping(substrate, sg, *mapping).ok());
  EXPECT_EQ(substrate, pristine);
}

TEST_P(AllMappers, InfeasibleWhenNoCapacity) {
  const Nffg substrate = line_substrate(1000, 0.5);  // half a core per node
  const ServiceGraph sg = fw_nat_chain();
  auto mapping = make()->map(sg, substrate, catalog::default_catalog());
  EXPECT_FALSE(mapping.ok());
}

TEST_P(AllMappers, InfeasibleWhenNoBandwidth) {
  const Nffg substrate = line_substrate(10);  // chain wants 100 Mbit/s
  const ServiceGraph sg = fw_nat_chain();
  auto mapping = make()->map(sg, substrate, catalog::default_catalog());
  EXPECT_FALSE(mapping.ok());
}

TEST_P(AllMappers, MissingSapFails) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg =
      sg::make_chain("svc", "ghost-sap", {"nat"}, "sap2", 10, 50);
  auto mapping = make()->map(sg, substrate, catalog::default_catalog());
  EXPECT_FALSE(mapping.ok());
}

TEST_P(AllMappers, UnknownNfTypeFails) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"no-such-type"}, "sap2", 10, 50);
  auto mapping = make()->map(sg, substrate, catalog::default_catalog());
  EXPECT_FALSE(mapping.ok());
}

TEST_P(AllMappers, ResourceOverrideRespected) {
  const Nffg substrate = line_substrate();
  ServiceGraph sg{"svc"};
  ASSERT_TRUE(sg.add_sap("sap1").ok());
  ASSERT_TRUE(sg.add_sap("sap2").ok());
  // Override above any single node's capacity.
  ASSERT_TRUE(
      sg.add_nf(sg::SgNf{"big", "nat", 2, Resources{100, 1, 1}}).ok());
  ASSERT_TRUE(sg.add_link(sg::SgLink{"l1", {"sap1", 0}, {"big", 0}, 1}).ok());
  ASSERT_TRUE(sg.add_link(sg::SgLink{"l2", {"big", 1}, {"sap2", 0}, 1}).ok());
  auto mapping = make()->map(sg, substrate, catalog::default_catalog());
  EXPECT_FALSE(mapping.ok());
}

INSTANTIATE_TEST_SUITE_P(Mappers, AllMappers,
                         ::testing::Values("greedy", "chain-dp",
                                           "backtracking", "first-fit",
                                           "random"));

// ------------------------------------------------------- algorithm traits

TEST(ChainDp, FindsDelayOptimalPlacement) {
  // Two host options: bb-fast on a 1 ms detour, bb-slow on a 10 ms detour.
  Nffg g{"y"};
  ASSERT_TRUE(g.add_bisbis(model::make_bisbis("hub1", {0, 0, 0}, 4)).ok());
  ASSERT_TRUE(g.add_bisbis(model::make_bisbis("hub2", {0, 0, 0}, 4)).ok());
  ASSERT_TRUE(
      g.add_bisbis(model::make_bisbis("bb-fast", {8, 8192, 100}, 4)).ok());
  ASSERT_TRUE(
      g.add_bisbis(model::make_bisbis("bb-slow", {8, 8192, 100}, 4)).ok());
  model::connect(g, "hub1", 1, "hub2", 1, {1000, 1.0});
  model::connect(g, "hub1", 2, "bb-fast", 0, {1000, 0.5});
  model::connect(g, "bb-fast", 1, "hub2", 2, {1000, 0.5});
  model::connect(g, "hub1", 3, "bb-slow", 0, {1000, 5.0});
  model::connect(g, "bb-slow", 1, "hub2", 3, {1000, 5.0});
  model::attach_sap(g, "sap1", "hub1", 0, {1000, 0.1});
  model::attach_sap(g, "sap2", "hub2", 0, {1000, 0.1});

  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 100);
  auto mapping =
      ChainDpMapper().map(sg, g, catalog::default_catalog());
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  EXPECT_EQ(mapping->nf_host.at("nat0"), "bb-fast");
}

TEST(Backtracking, SolvesWhereGreedyFails) {
  // Capacity trap: the nearest node fits only one NF; greedy stacks the
  // first NF there... Construct: chain of two NFs, bb1 fits exactly one NF
  // (2 cpu), bb2 fits one. Greedy places both near sap1 -> fails on second,
  // backtracking distributes.
  Nffg g{"trap"};
  ASSERT_TRUE(g.add_bisbis(model::make_bisbis("bb1", {1, 512, 1}, 4)).ok());
  ASSERT_TRUE(g.add_bisbis(model::make_bisbis("bb2", {1, 512, 1}, 4)).ok());
  model::connect(g, "bb1", 1, "bb2", 1, {1000, 1.0});
  model::attach_sap(g, "sap1", "bb1", 0, {1000, 0.1});
  model::attach_sap(g, "sap2", "bb2", 0, {1000, 0.1});
  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat", "nat"}, "sap2", 10, 100);
  const NfCatalog cat = catalog::default_catalog();
  auto mapping = BacktrackingMapper().map(sg, g, cat);
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  EXPECT_TRUE(verify_mapping(sg, g, cat, *mapping).ok());
  EXPECT_NE(mapping->nf_host.at("nat0"), mapping->nf_host.at("nat1"));
}

TEST(Backtracking, SearchBudgetReported) {
  Nffg g = line_substrate();
  MapperOptions opts;
  opts.max_search_steps = 0;  // give up immediately
  const ServiceGraph sg = fw_nat_chain();
  auto mapping = BacktrackingMapper(opts).map(sg, g,
                                              catalog::default_catalog());
  ASSERT_FALSE(mapping.ok());
  EXPECT_NE(mapping.error().message.find("budget"), std::string::npos);
}

TEST(Random, DeterministicPerSeed) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg = fw_nat_chain();
  const NfCatalog cat = catalog::default_catalog();
  MapperOptions a;
  a.seed = 42;
  auto m1 = RandomMapper(a).map(sg, substrate, cat);
  auto m2 = RandomMapper(a).map(sg, substrate, cat);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m1->nf_host, m2->nf_host);
}

TEST(Greedy, ColocatesUnderOneRoof) {
  // A single big node: everything colocated, zero-hop paths between NFs.
  Nffg g{"one"};
  ASSERT_TRUE(
      g.add_bisbis(model::make_bisbis("big", {64, 65536, 1000}, 4)).ok());
  model::attach_sap(g, "sap1", "big", 0, {1000, 0.1});
  model::attach_sap(g, "sap2", "big", 1, {1000, 0.1});
  const ServiceGraph sg = fw_nat_chain();
  auto mapping = GreedyMapper().map(sg, g, catalog::default_catalog());
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  // firewall0 -> nat1 link is intra-node.
  EXPECT_TRUE(mapping->link_paths.at("cl1").links.empty());
  EXPECT_EQ(mapping->stats.nodes_used, 1u);
}

// -------------------------------------------------- health-penalty drain

/// Two equal-cost hosts behind zero-capacity hubs: bb-a and bb-b are
/// perfectly symmetric (same detour delay, same capacity), so with no
/// health bias every deterministic mapper breaks the tie by id -> bb-a.
Nffg equal_cost_pair() {
  Nffg g{"pair"};
  EXPECT_TRUE(g.add_bisbis(model::make_bisbis("hub1", {0, 0, 0}, 4)).ok());
  EXPECT_TRUE(g.add_bisbis(model::make_bisbis("hub2", {0, 0, 0}, 4)).ok());
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis("bb-a", {8, 8192, 100}, 4)).ok());
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis("bb-b", {8, 8192, 100}, 4)).ok());
  model::connect(g, "hub1", 1, "hub2", 1, {1000, 5.0});
  model::connect(g, "hub1", 2, "bb-a", 0, {1000, 0.5});
  model::connect(g, "bb-a", 1, "hub2", 2, {1000, 0.5});
  model::connect(g, "hub1", 3, "bb-b", 0, {1000, 0.5});
  model::connect(g, "bb-b", 1, "hub2", 3, {1000, 0.5});
  model::attach_sap(g, "sap1", "hub1", 0, {1000, 0.1});
  model::attach_sap(g, "sap2", "hub2", 0, {1000, 0.1});
  return g;
}

class MapperDrain : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Mapper> make() const {
    const std::string which = GetParam();
    if (which == "greedy") return std::make_unique<GreedyMapper>();
    if (which == "backtracking") return std::make_unique<BacktrackingMapper>();
    if (which == "annealing") return std::make_unique<AnnealingMapper>();
    return std::make_unique<ChainDpMapper>();
  }
};

TEST_P(MapperDrain, FlakyDomainDrainsAndRebalances) {
  // A failure streak below the trip threshold projects a health penalty
  // onto the flaky domain's nodes (ResourceOrchestrator::
  // refresh_health_penalties); new embeddings must prefer the healthy
  // equal-cost host, and re-balance once heal() clears the penalty.
  const NfCatalog cat = catalog::default_catalog();
  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 100);
  Nffg g = equal_cost_pair();

  auto baseline = make()->map(sg, g, cat);
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();
  EXPECT_EQ(baseline->nf_host.at("nat0"), "bb-a");

  g.find_bisbis("bb-a")->health_penalty = 4.0;
  auto drained = make()->map(sg, g, cat);
  ASSERT_TRUE(drained.ok()) << drained.error().to_string();
  EXPECT_EQ(drained->nf_host.at("nat0"), "bb-b");

  g.find_bisbis("bb-a")->health_penalty = 0.0;
  auto rebalanced = make()->map(sg, g, cat);
  ASSERT_TRUE(rebalanced.ok()) << rebalanced.error().to_string();
  EXPECT_EQ(rebalanced->nf_host.at("nat0"), "bb-a");
}

INSTANTIATE_TEST_SUITE_P(Drain, MapperDrain,
                         ::testing::Values("greedy", "backtracking",
                                           "annealing", "chain-dp"));

TEST(ChainDp, PenaltyBiasesSelectionButNotDelayBound) {
  // True chain delay through either host is 1.2 ms; with a 4.0 penalty the
  // biased DP cost is 5.2. A 2 ms delay budget must still be satisfiable —
  // the penalty steers selection but the bound is checked on wire delay.
  const NfCatalog cat = catalog::default_catalog();
  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 2.0);
  Nffg g = equal_cost_pair();
  g.find_bisbis("bb-a")->health_penalty = 4.0;
  auto drained = ChainDpMapper().map(sg, g, cat);
  ASSERT_TRUE(drained.ok()) << drained.error().to_string();
  EXPECT_EQ(drained->nf_host.at("nat0"), "bb-b");

  // Both hosts flaky: selection ties again (id order) and the chain must
  // still fit the budget even though every biased cost exceeds it.
  g.find_bisbis("bb-b")->health_penalty = 4.0;
  auto both = ChainDpMapper().map(sg, g, cat);
  ASSERT_TRUE(both.ok()) << both.error().to_string();
  EXPECT_EQ(both->nf_host.at("nat0"), "bb-a");
  EXPECT_LE(both->requirement_delay.at("e2e"), 2.0);
}

// ---------------------------------------------------------- verify_mapping

TEST(VerifyMapping, RejectsTamperedPlacement) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg = fw_nat_chain();
  const NfCatalog cat = catalog::default_catalog();
  auto mapping = GreedyMapper().map(sg, substrate, cat);
  ASSERT_TRUE(mapping.ok());

  Mapping bad = *mapping;
  bad.nf_host["firewall0"] = "ghost";
  EXPECT_FALSE(verify_mapping(sg, substrate, cat, bad).ok());

  Mapping missing = *mapping;
  missing.nf_host.erase("nat1");
  EXPECT_FALSE(verify_mapping(sg, substrate, cat, missing).ok());
}

TEST(VerifyMapping, RejectsBrokenPath) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg = fw_nat_chain();
  const NfCatalog cat = catalog::default_catalog();
  auto mapping = GreedyMapper().map(sg, substrate, cat);
  ASSERT_TRUE(mapping.ok());

  for (auto& [link_id, path] : mapping->link_paths) {
    if (!path.links.empty()) {
      path.links.push_back(path.links.front());  // break continuity
      break;
    }
  }
  EXPECT_FALSE(verify_mapping(sg, substrate, cat, *mapping).ok());
}

TEST(VerifyMapping, RejectsDelayViolation) {
  const Nffg substrate = line_substrate();
  ServiceGraph sg = fw_nat_chain(100, 0.001);  // impossible budget
  const NfCatalog cat = catalog::default_catalog();
  auto honest = GreedyMapper().map(sg, substrate, cat);
  EXPECT_FALSE(honest.ok());
  // Forge a mapping from a relaxed request and check it against the strict
  // one.
  const ServiceGraph relaxed = fw_nat_chain(100, 1000);
  auto mapping = GreedyMapper().map(relaxed, substrate, cat);
  ASSERT_TRUE(mapping.ok());
  EXPECT_FALSE(verify_mapping(sg, substrate, cat, *mapping).ok());
}

// ------------------------------------------------------ decomposition-aware

TEST(DecompAware, ExpandsAndMaps) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"secure-gw"}, "sap2", 50, 100);
  const NfCatalog cat = catalog::default_catalog();
  DecompAwareMapper mapper(std::make_shared<GreedyMapper>());
  auto result = mapper.map_with_decomposition(sg, substrate, cat);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->combinations_tried, 2u);  // two secure-gw rules
  EXPECT_GE(result->combinations_feasible, 1u);
  // Mapping refers to expanded NFs and verifies against the expanded SG.
  EXPECT_TRUE(
      verify_mapping(result->expanded, substrate, cat, result->mapping).ok());
  EXPECT_GE(result->mapping.nf_host.size(), 2u);
}

TEST(DecompAware, PicksCheaperRealizationUnderPressure) {
  // secure-gw-split needs firewall(acl 1cpu + state 2cpu) + ids 2cpu = 5cpu;
  // secure-gw-vpn needs vpn 2 + dpi 4 = 6cpu. With 5 cpu per node total
  // across two nodes... make one node with 5 cpu: only the split fits.
  Nffg g{"small"};
  ASSERT_TRUE(g.add_bisbis(model::make_bisbis("bb", {5, 8192, 100}, 4)).ok());
  model::attach_sap(g, "sap1", "bb", 0, {1000, 0.1});
  model::attach_sap(g, "sap2", "bb", 1, {1000, 0.1});
  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"secure-gw"}, "sap2", 10, 100);
  const NfCatalog cat = catalog::default_catalog();
  DecompAwareMapper mapper(std::make_shared<GreedyMapper>());
  auto result = mapper.map_with_decomposition(sg, g, cat);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->combinations_feasible, 1u);
  EXPECT_TRUE(result->mapping.nf_host.count("secure-gw0.fw.acl") == 1);
}

TEST(DecompAware, NoDecomposablesDelegates) {
  const Nffg substrate = line_substrate();
  const ServiceGraph sg = fw_nat_chain();  // firewall is decomposable though
  const ServiceGraph atomic =
      sg::make_chain("svc", "sap1", {"nat", "dpi"}, "sap2", 10, 100);
  const NfCatalog cat = catalog::default_catalog();
  DecompAwareMapper mapper(std::make_shared<GreedyMapper>());
  auto result = mapper.map_with_decomposition(atomic, substrate, cat);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->combinations_tried, 1u);
  EXPECT_EQ(result->expanded, atomic);
}

TEST(DecompAware, InstallUsesExpandedGraph) {
  Nffg substrate = line_substrate();
  const ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"secure-gw"}, "sap2", 50, 100);
  const NfCatalog cat = catalog::default_catalog();
  DecompAwareMapper mapper(std::make_shared<ChainDpMapper>());
  auto result = mapper.map_with_decomposition(sg, substrate, cat);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(
      install_mapping(substrate, result->expanded, cat, result->mapping)
          .ok());
  EXPECT_TRUE(substrate.validate().empty());
  EXPECT_FALSE(substrate.find_nf("secure-gw0").has_value());
}

}  // namespace
}  // namespace unify::mapping
