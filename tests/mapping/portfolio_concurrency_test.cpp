// Portfolio racing under real concurrency (run under TSan via the
// tsan-concurrency preset): many simultaneous races on one shared
// PortfolioMapper against one shared substrate view, with a deadline
// aggressive enough that iterative racers get truncated mid-search. The
// shared view must come through bit-untouched, every race commits at most
// one embedding, and deadline-killed racers leak nothing into the stats or
// the substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <vector>

#include "infra/topologies.h"
#include "mapping/portfolio.h"
#include "model/nffg_hash.h"
#include "telemetry/metrics.h"
#include "util/orchestration_pool.h"
#include "util/rng.h"

namespace unify::mapping {
namespace {

TEST(PortfolioRace, ConcurrentRacesNeverCorruptTheSharedView) {
  const catalog::NfCatalog cat = catalog::default_catalog();
  Rng rng(42);
  const model::Nffg substrate = infra::topo::random_connected(12, 3.0, 2, rng);
  const std::uint64_t pristine = model::content_hash(substrate);

  PortfolioOptions options;
  options.deadline_us = 200;  // truncates annealing/nsga2/bnb mid-search
  const PortfolioMapper portfolio(PortfolioMapper::standard_racers(),
                                  options);

  // Concurrent outer races, each fanning its racers onto the same process
  // pool the outer batch runs on (callers participate as runners, so the
  // nesting cannot deadlock).
  constexpr std::size_t kRaces = 24;
  std::vector<Result<RaceReport>> reports(
      kRaces, Result<RaceReport>(Error{ErrorCode::kInternal, "not run"}));
  std::atomic<int> winners{0};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kRaces);
  for (std::size_t i = 0; i < kRaces; ++i) {
    tasks.push_back([&, i] {
      const sg::ServiceGraph sg = sg::make_chain(
          "svc" + std::to_string(i), "sap1",
          {"nat", "monitor", "vpn"}, "sap2", 20 + static_cast<double>(i),
          400);
      reports[i] = portfolio.race(sg, substrate, cat);
      if (reports[i].ok() && reports[i]->winner >= 0) {
        winners.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  util::OrchestrationPool::process_pool().run_all(std::move(tasks));

  // The substrate no racer was allowed to touch hashes identically.
  EXPECT_EQ(model::content_hash(substrate), pristine);

  for (std::size_t i = 0; i < kRaces; ++i) {
    // One-pass racers ignore the aggressive deadline, so every race lands.
    ASSERT_TRUE(reports[i].ok())
        << "race " << i << ": " << reports[i].error().to_string();
    const RaceReport& report = *reports[i];
    ASSERT_GE(report.winner, 0);
    // At most one committed embedding per race: the winning mapping is the
    // only one the report carries, and it must verify against the pristine
    // substrate.
    const sg::ServiceGraph sg = sg::make_chain(
        "svc" + std::to_string(i), "sap1", {"nat", "monitor", "vpn"},
        "sap2", 20 + static_cast<double>(i), 400);
    const auto verified = verify_mapping(sg, substrate, cat, report.mapping);
    EXPECT_TRUE(verified.ok())
        << "race " << i << ": " << verified.error().to_string();
    // Deadline-killed lanes report kTimeout honestly — never a mapping.
    for (const RacerOutcome& outcome : report.outcomes) {
      if (outcome.deadline_killed) {
        EXPECT_FALSE(outcome.feasible);
      }
    }
  }
  EXPECT_EQ(winners.load(), static_cast<int>(kRaces));

  // Stats folded once per (race, racer) despite the concurrency; exactly
  // one win per race survived.
  telemetry::Registry registry;
  portfolio.drain_metrics(registry);
  EXPECT_EQ(registry.counter("mapping.portfolio.races"), kRaces);
  std::uint64_t runs = 0;
  std::uint64_t wins = 0;
  for (const auto& racer : portfolio.racers()) {
    const std::string prefix = "mapping.portfolio." + racer->name() + ".";
    runs += registry.counter(prefix + "runs");
    wins += registry.counter(prefix + "wins");
  }
  EXPECT_EQ(runs, kRaces * portfolio.racers().size());
  EXPECT_EQ(wins, kRaces);
}

TEST(PortfolioRace, NestedDeadlinesRestoreTheOuterBudget) {
  // A race armed inside an already-armed deadline must restore the outer
  // deadline on exit — the thread-local nests, it does not leak.
  ScopedMapDeadline outer(10'000'000);  // 10 s: effectively never expires
  EXPECT_FALSE(ScopedMapDeadline::expired());
  {
    ScopedMapDeadline inner(1);
    // Burn past the 1 us inner budget.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
    EXPECT_TRUE(ScopedMapDeadline::expired());
  }
  EXPECT_FALSE(ScopedMapDeadline::expired());
}

}  // namespace
}  // namespace unify::mapping
