// Chaos soak for the domain health subsystem: a seeded schedule of
// service waves, removals, transient fault bursts, domain kills,
// recoveries and healing passes runs against the full stack (service
// layer -> unify link -> virtualizer -> RO -> faulty domains), with
// structural invariants checked after every step. The schedule is
// deterministic per seed — each adapter sees a serial operation stream,
// so fault injection points are reproducible — and the whole soak is
// asserted to reach the same final state when replayed.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adapters/faulty_adapter.h"
#include "core/resource_orchestrator.h"
#include "core/unify_api.h"
#include "core/virtualizer.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "service/service_layer.h"
#include "support/seed_env.h"
#include "util/rng.h"

namespace unify::core {
namespace {

/// Accept-all domain that replays the last accepted slice.
class RecordingAdapter final : public adapters::DomainAdapter {
 public:
  RecordingAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override {
    if (applies_ == 0) return view_;
    return last_applied_;
  }
  Result<void> apply(const model::Nffg& desired) override {
    ++applies_;
    // Make-before-break: no slice this domain is ever asked to accept may
    // overcommit its capacity — the RO installs replacements before it
    // releases old placements, never the other way round.
    for (const auto& [bb_id, bb] : desired.bisbis()) {
      const model::Resources res = bb.residual();
      EXPECT_GE(res.cpu, -1e-9) << name_ << ": " << bb_id << " overcommitted";
      EXPECT_GE(res.mem, -1e-9) << name_ << ": " << bb_id << " overcommitted";
      EXPECT_GE(res.storage, -1e-9)
          << name_ << ": " << bb_id << " overcommitted";
    }
    last_applied_ = desired;
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return applies_;
  }

 private:
  std::string name_;
  model::Nffg view_;
  model::Nffg last_applied_;
  std::uint64_t applies_ = 0;
};

/// Domain i of an n-domain line: customer SAP sap<i>, stitch SAPs
/// x<i-1>/x<i> towards the neighbours.
model::Nffg chaos_domain_view(std::size_t i, std::size_t n) {
  const std::string bb = "bb" + std::to_string(i);
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(g.add_bisbis(model::make_bisbis(bb, {32, 32768, 400}, 6)).ok());
  model::attach_sap(g, "sap" + std::to_string(i), bb, 0, {1000, 0.1});
  if (i > 0) {
    model::attach_sap(g, "x" + std::to_string(i - 1), bb, 1, {1000, 0.5});
  }
  if (i + 1 < n) {
    model::attach_sap(g, "x" + std::to_string(i), bb, 2, {1000, 0.5});
  }
  return g;
}

struct ChaosStack {
  SimClock clock;
  std::unique_ptr<ResourceOrchestrator> ro;
  std::unique_ptr<Virtualizer> virtualizer;
  std::unique_ptr<service::ServiceLayer> layer;
  std::vector<adapters::FaultyAdapter*> faults;
  std::size_t domains = 0;
};

ChaosStack make_chaos_stack(std::size_t n) {
  ChaosStack stack;
  stack.domains = n;
  stack.ro = std::make_unique<ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  for (std::size_t i = 0; i < n; ++i) {
    auto faulty = std::make_unique<adapters::FaultyAdapter>(
        std::make_unique<RecordingAdapter>("d" + std::to_string(i),
                                           chaos_domain_view(i, n)));
    stack.faults.push_back(faulty.get());
    EXPECT_TRUE(stack.ro->add_domain(std::move(faulty)).ok());
  }
  EXPECT_TRUE(stack.ro->initialize().ok());
  stack.virtualizer =
      std::make_unique<Virtualizer>(*stack.ro, ViewPolicy::kSingleBisBis);
  stack.layer = std::make_unique<service::ServiceLayer>(
      make_unify_link(*stack.virtualizer, stack.clock, "north"));
  return stack;
}

/// Structural invariants that must hold after EVERY chaos step, whatever
/// mix of faults, kills and heals preceded it. `books_clean` says whether
/// the service layer's last configuration push landed: after a failed
/// rollback the layer itself reports (via kRollbackFailed) that its books
/// may diverge from the layers below until the next successful push, so
/// the cross-layer invariant is only enforced outside that window.
void check_invariants(ChaosStack& stack, bool books_clean) {
  const model::Nffg& view = stack.ro->global_view();
  // 1. Deployment books match the view: every mapped NF (degraded
  //    deployments included — they are kept, not torn down) is installed
  //    at its recorded host.
  for (const auto& [id, dep] : stack.ro->deployments()) {
    for (const auto& [nf_id, host] : dep.mapping.nf_host) {
      const model::BisBis* bb = view.find_bisbis(host);
      ASSERT_NE(bb, nullptr) << "deployment " << id << " host " << host;
      EXPECT_EQ(bb->nfs.count(nf_id), 1u)
          << "deployment " << id << ": NF " << nf_id << " missing on "
          << host;
    }
  }
  // 2. Mask consistency: a domain behind an open circuit advertises zero
  //    capacity, a healthy one its full capacity — independent of the
  //    order kills and recoveries interleaved.
  for (std::size_t i = 0; i < stack.domains; ++i) {
    const model::BisBis* bb =
        view.find_bisbis("bb" + std::to_string(i));
    ASSERT_NE(bb, nullptr);
    EXPECT_EQ(bb->capacity.cpu, stack.ro->health().admits(i) ? 32 : 0)
        << "domain " << i << " capacity vs circuit state";
  }
  // 3. Link reservations never go negative (double release / lost
  //    rollback would show up here first).
  for (const auto& [id, link] : view.links()) {
    EXPECT_GE(link.reserved, -1e-9) << "link " << id;
  }
  // 4. Make-before-break: surviving (admitted) domains are never
  //    overcommitted — heal installs a replacement before releasing the
  //    old placement, so residual capacity stays non-negative even with a
  //    heal pass in the step just executed.
  for (std::size_t i = 0; i < stack.domains; ++i) {
    if (!stack.ro->health().admits(i)) continue;
    const model::BisBis* bb = view.find_bisbis("bb" + std::to_string(i));
    ASSERT_NE(bb, nullptr);
    const model::Resources res = bb->residual();
    EXPECT_GE(res.cpu, -1e-9) << "domain " << i << " cpu overcommitted";
    EXPECT_GE(res.mem, -1e-9) << "domain " << i << " mem overcommitted";
    EXPECT_GE(res.storage, -1e-9)
        << "domain " << i << " storage overcommitted";
  }
  // 5. Service books point at real state: an active (deployed or
  //    degraded) request keeps all its NFs installed below.
  if (!books_clean) return;
  for (const auto& [id, request] : stack.layer->requests()) {
    if (request.state != service::RequestState::kDeployed &&
        request.state != service::RequestState::kDegraded) {
      continue;
    }
    for (const auto& [nf_id, nf] : request.graph.nfs()) {
      EXPECT_TRUE(view.find_nf(id + "." + nf_id).has_value())
          << "request " << id << ": NF " << nf_id << " lost below";
    }
  }
}

/// Fingerprint of the externally observable end state, used to assert the
/// soak is deterministic per seed.
std::string state_signature(ChaosStack& stack) {
  std::ostringstream out;
  for (const auto& [id, request] : stack.layer->requests()) {
    out << id << '=' << service::to_string(request.state) << ';';
  }
  for (std::size_t i = 0; i < stack.domains; ++i) {
    out << 'd' << i << '=' << to_string(stack.ro->health().health(i)) << ';';
  }
  out << "deployments=" << stack.ro->deployments().size();
  return out.str();
}

std::string run_soak(std::uint64_t seed, int steps) {
  ChaosStack stack = make_chaos_stack(3);
  Rng rng(seed);
  int next_id = 0;
  bool books_clean = true;
  const std::vector<std::string> nf_types{"nat", "fw-lite", "dpi"};

  for (int step = 0; step < steps; ++step) {
    switch (rng.next_below(8)) {
      case 0:
      case 1: {  // a wave of 1..3 new services
        std::vector<sg::ServiceGraph> wave;
        const std::size_t count = 1 + rng.next_below(3);
        for (std::size_t i = 0; i < count; ++i) {
          const std::string from =
              "sap" + std::to_string(rng.next_below(stack.domains));
          std::string to =
              "sap" + std::to_string(rng.next_below(stack.domains));
          if (to == from) to = "sap" + std::to_string((rng.next_below(2) + 1));
          wave.push_back(sg::make_chain(
              "svc" + std::to_string(next_id++), from,
              {nf_types[next_id % nf_types.size()]}, to, 5, 500));
        }
        const auto results = stack.layer->submit_batch(wave);
        bool any_rollback_failed = false;
        bool any_pushed = false;
        for (const auto& result : results) {
          if (result.ok()) any_pushed = true;
          if (!result.ok() &&
              result.error().code == ErrorCode::kRollbackFailed) {
            any_rollback_failed = true;
          }
        }
        // A kRollbackFailed anywhere means the layer knows its books may
        // diverge; a successful commit means the full merged config landed.
        if (any_rollback_failed) {
          books_clean = false;
        } else if (any_pushed) {
          books_clean = true;
        }
        break;
      }
      case 2: {  // remove a random active service
        std::vector<std::string> active;
        for (const auto& [id, request] : stack.layer->requests()) {
          if (request.state == service::RequestState::kDeployed ||
              request.state == service::RequestState::kDegraded) {
            active.push_back(id);
          }
        }
        if (!active.empty()) {
          const auto removed =
              stack.layer->remove(active[rng.next_below(active.size())]);
          if (removed.ok()) {
            books_clean = true;
          } else if (removed.error().code != ErrorCode::kNotFound) {
            books_clean = false;  // push failed mid-removal
          }
        }
        break;
      }
      case 3: {  // transient fault burst on one domain
        stack.faults[rng.next_below(stack.domains)]->fail_next(
            1 + static_cast<int>(rng.next_below(2)));
        break;
      }
      case 4: {  // hard-kill a domain: circuit open, probes keep failing
        const std::size_t victim = rng.next_below(stack.domains);
        stack.faults[victim]->set_failure_rate(1.0);
        (void)stack.ro->open_circuit("d" + std::to_string(victim), "chaos");
        break;
      }
      case 5: {  // a dead domain comes back to life
        stack.faults[rng.next_below(stack.domains)]->set_failure_rate(0.0);
        break;
      }
      case 6: {  // healing pass: probe, re-embed, readmit
        const std::size_t placed_before = stack.ro->deployments().size();
        const auto healed = stack.ro->heal();
        if (!healed.ok()) {
          ADD_FAILURE() << "heal: " << healed.error().to_string();
          return "aborted";
        }
        // Make-before-break: a heal pass never reduces the placed-service
        // count, and never has released-but-not-yet-replaced capacity in
        // flight.
        EXPECT_GE(stack.ro->deployments().size(), placed_before);
        EXPECT_EQ(healed->max_capacity_dip_cpu, 0.0);
        break;
      }
      case 7: {  // status reconciliation up the stack
        (void)stack.ro->sync_statuses();  // survivors only; may still fail
        const auto degraded = stack.layer->sync_health();
        if (!degraded.ok()) {
          ADD_FAILURE() << "sync_health: " << degraded.error().to_string();
          return "aborted";
        }
        break;
      }
    }
    check_invariants(stack, books_clean);
    if (::testing::Test::HasFatalFailure()) return "aborted";
  }

  // Quiesce: clear every fault and heal until all circuits close — the
  // system must always recover once the world stops burning.
  for (adapters::FaultyAdapter* fault : stack.faults) {
    fault->fail_next(0);
    fault->set_failure_rate(0.0);
  }
  for (int round = 0; round < 4 && stack.ro->health().any_open(); ++round) {
    const std::size_t placed_before = stack.ro->deployments().size();
    const auto healed = stack.ro->heal();
    if (!healed.ok()) {
      ADD_FAILURE() << "final heal: " << healed.error().to_string();
      return "aborted";
    }
    EXPECT_GE(stack.ro->deployments().size(), placed_before);
    EXPECT_EQ(healed->max_capacity_dip_cpu, 0.0);
  }
  EXPECT_FALSE(stack.ro->health().any_open());
  EXPECT_TRUE(stack.layer->sync_health().ok());
  // Reconcile: one successful push (a removal re-pushes the full merged
  // config) re-deploys anything lost in an acknowledged divergence window,
  // after which the strict cross-layer invariant must hold again.
  std::vector<std::string> active;
  for (const auto& [id, request] : stack.layer->requests()) {
    if (request.state == service::RequestState::kDeployed ||
        request.state == service::RequestState::kDegraded) {
      active.push_back(id);
    }
  }
  if (!active.empty()) {
    const auto removed = stack.layer->remove(active.front());
    EXPECT_TRUE(removed.ok()) << removed.error().to_string();
    books_clean = removed.ok();
  }
  check_invariants(stack, books_clean);
  if (::testing::Test::HasFatalFailure()) return "aborted";
  return state_signature(stack);
}

TEST(Chaos, SeededSoakHoldsInvariants) {
  for (const std::uint64_t seed :
       unify::test::soak_seeds("CHAOS_SEED", {11, 23, 47})) {
    UNIFY_SEED_TRACE("CHAOS_SEED", seed);
    const std::string signature = run_soak(seed, 80);
    ASSERT_NE(signature, "aborted") << "seed " << seed;
  }
}

TEST(Chaos, SoakIsDeterministicPerSeed) {
  const std::uint64_t seed =
      unify::test::soak_seeds("CHAOS_SEED", {7}).front();
  UNIFY_SEED_TRACE("CHAOS_SEED", seed);
  const std::string first = run_soak(seed, 60);
  ASSERT_NE(first, "aborted");
  EXPECT_EQ(first, run_soak(seed, 60));
}

}  // namespace
}  // namespace unify::core
