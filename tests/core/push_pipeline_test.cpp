// Southbound push pipeline: parallel fan-out determinism, clean-domain
// skipping, retry/backoff, partial-failure convergence and nested
// recursion on the shared pool. Lives in the concurrency_tests binary so
// it runs under `ctest -L concurrency` and a -DENABLE_TSAN=ON build.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adapters/faulty_adapter.h"
#include "core/resource_orchestrator.h"
#include "core/unify_api.h"
#include "core/virtualizer.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "model/nffg_json.h"
#include "util/orchestration_pool.h"

namespace unify::core {
namespace {

/// Fake domain that counts applies and keeps the last accepted slice.
/// fetch_view() reports every NF of that slice as kRunning, so
/// sync_statuses() has real statuses to pull north.
class CountingAdapter final : public adapters::DomainAdapter {
 public:
  CountingAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}

  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override {
    if (applies_ == 0) return view_;
    model::Nffg live = last_applied_;
    for (const auto& [bb_id, bb] : live.bisbis()) {
      for (const auto& [nf_id, nf] : bb.nfs) {
        model::BisBis* mine = live.find_bisbis(bb_id);
        mine->nfs.at(nf_id).status = model::NfStatus::kRunning;
      }
    }
    return live;
  }
  Result<void> apply(const model::Nffg& desired) override {
    ++applies_;
    last_applied_ = desired;
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return applies_;
  }

  [[nodiscard]] std::uint64_t applies() const noexcept { return applies_; }
  [[nodiscard]] const model::Nffg& last_applied() const noexcept {
    return last_applied_;
  }

 private:
  std::string name_;
  model::Nffg view_;
  model::Nffg last_applied_;
  std::uint64_t applies_ = 0;
};

/// Domain i of an n-domain line: customer SAP sap<i>, stitching SAPs
/// x<i-1> (towards the previous domain) and x<i> (towards the next).
model::Nffg line_domain_view(std::size_t i, std::size_t n) {
  const std::string bb = "bb" + std::to_string(i);
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(g.add_bisbis(model::make_bisbis(bb, {32, 32768, 400}, 6)).ok());
  model::attach_sap(g, "sap" + std::to_string(i), bb, 0, {1000, 0.1});
  if (i > 0) {
    model::attach_sap(g, "x" + std::to_string(i - 1), bb, 1, {1000, 0.5});
  }
  if (i + 1 < n) {
    model::attach_sap(g, "x" + std::to_string(i), bb, 2, {1000, 0.5});
  }
  return g;
}

struct LineStack {
  std::unique_ptr<ResourceOrchestrator> ro;
  std::vector<CountingAdapter*> domains;
  std::vector<adapters::FaultyAdapter*> faults;  // empty unless wrapped
};

LineStack make_line_ro(std::size_t n, RoOptions options,
                       bool wrap_faulty = false) {
  LineStack stack;
  stack.ro = std::make_unique<ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog(), options);
  for (std::size_t i = 0; i < n; ++i) {
    auto counting = std::make_unique<CountingAdapter>(
        "d" + std::to_string(i), line_domain_view(i, n));
    stack.domains.push_back(counting.get());
    if (wrap_faulty) {
      auto faulty =
          std::make_unique<adapters::FaultyAdapter>(std::move(counting));
      stack.faults.push_back(faulty.get());
      EXPECT_TRUE(stack.ro->add_domain(std::move(faulty)).ok());
    } else {
      EXPECT_TRUE(stack.ro->add_domain(std::move(counting)).ok());
    }
  }
  EXPECT_TRUE(stack.ro->initialize().ok());
  return stack;
}

/// NF instance ids live in a flat substrate namespace (type + index), so
/// concurrent services must use distinct NF types.
sg::ServiceGraph span_chain(const std::string& id, std::size_t from,
                            std::size_t to, const std::string& nf = "nat") {
  return sg::make_chain(id, "sap" + std::to_string(from), {nf},
                        "sap" + std::to_string(to), 10, 500);
}

// ------------------------------------------------------------ determinism

TEST(PushPipeline, ParallelPushMatchesSequential) {
  util::OrchestrationPool pool(4);
  RoOptions parallel;
  parallel.pool = &pool;
  RoOptions sequential;
  sequential.push.parallelism = 1;

  LineStack par = make_line_ro(4, parallel);
  LineStack seq = make_line_ro(4, sequential);
  for (auto* stack : {&par, &seq}) {
    ASSERT_TRUE(stack->ro->deploy(span_chain("a", 0, 3)).ok());
    ASSERT_TRUE(stack->ro->deploy(span_chain("b", 1, 2, "dpi")).ok());
    ASSERT_TRUE(stack->ro->remove("b").ok());
  }

  // Same global view, and every domain acknowledged byte-identical slices.
  EXPECT_EQ(model::to_json(par.ro->global_view()).dump(),
            model::to_json(seq.ro->global_view()).dump());
  for (std::size_t i = 0; i < par.domains.size(); ++i) {
    EXPECT_EQ(model::to_json(par.domains[i]->last_applied()).dump(),
              model::to_json(seq.domains[i]->last_applied()).dump())
        << "domain " << i;
    EXPECT_EQ(par.domains[i]->applies(), seq.domains[i]->applies())
        << "domain " << i;
  }
}

// ------------------------------------------------------- clean-domain skip

TEST(PushPipeline, CleanDomainsAreSkipped) {
  LineStack stack = make_line_ro(3, RoOptions{});
  // First deploy dirties every domain (nothing has been acked yet).
  ASSERT_TRUE(stack.ro->deploy(span_chain("a", 0, 1)).ok());
  EXPECT_EQ(stack.domains[2]->applies(), 1u);

  // The second deploy also only touches d0/d1: d2's slice is unchanged
  // and its epoch stable, so it must not be pushed again.
  ASSERT_TRUE(stack.ro->deploy(span_chain("b", 0, 1, "dpi")).ok());
  EXPECT_EQ(stack.domains[0]->applies(), 2u);
  EXPECT_EQ(stack.domains[1]->applies(), 2u);
  EXPECT_EQ(stack.domains[2]->applies(), 1u);
  EXPECT_EQ(stack.ro->metrics().counter("ro.push.skipped_clean"), 1u);
  EXPECT_EQ(stack.ro->metrics().counter("ro.push.fanout"), 5u);
  EXPECT_EQ(stack.ro->metrics().counter("ro.slice_pushes"), 5u);

  // A no-op resync touches nothing at all.
  ASSERT_TRUE(stack.ro->resync_domains().ok());
  EXPECT_EQ(stack.domains[0]->applies(), 2u);
  EXPECT_EQ(stack.ro->metrics().counter("ro.push.skipped_clean"), 4u);

  // Disabling the skip pushes everything again.
  RoOptions eager;
  eager.push.skip_clean = false;
  LineStack always = make_line_ro(3, eager);
  ASSERT_TRUE(always.ro->deploy(span_chain("a", 0, 1)).ok());
  ASSERT_TRUE(always.ro->resync_domains().ok());
  EXPECT_EQ(always.domains[2]->applies(), 2u);
  EXPECT_EQ(always.ro->metrics().counter("ro.push.skipped_clean"), 0u);
}

// --------------------------------------------------------- retry / backoff

TEST(PushPipeline, RetryRecoversTransientFault) {
  RoOptions options;
  options.push.max_attempts = 3;
  options.push.backoff_initial_us = 1;
  LineStack stack = make_line_ro(2, options, /*wrap_faulty=*/true);

  stack.faults[0]->fail_next(1, ErrorCode::kUnavailable);
  ASSERT_TRUE(stack.ro->deploy(span_chain("svc", 0, 1)).ok());
  EXPECT_EQ(stack.faults[0]->injected_failures(), 1u);
  EXPECT_EQ(stack.domains[0]->applies(), 1u);
  EXPECT_EQ(stack.ro->metrics().counter("ro.push.retries"), 1u);
}

TEST(PushPipeline, RetryExhaustionSurfacesTransientCode) {
  RoOptions options;
  options.push.max_attempts = 2;
  options.push.backoff_initial_us = 1;
  LineStack stack = make_line_ro(2, options, /*wrap_faulty=*/true);

  // Enough injected faults to outlast the deploy push AND the rollback
  // push (2 attempts each).
  stack.faults[0]->fail_next(4, ErrorCode::kUnavailable);
  const auto r = stack.ro->deploy(span_chain("svc", 0, 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(stack.faults[0]->injected_failures(), 4u);
  EXPECT_EQ(stack.ro->deployments().size(), 0u);

  // Once healthy, the next resync converges the failed domain.
  ASSERT_TRUE(stack.ro->resync_domains().ok());
  EXPECT_EQ(stack.domains[0]->last_applied().stats().nf_count, 0u);
}

TEST(PushPipeline, RejectionsAreNotRetried) {
  RoOptions options;
  options.push.max_attempts = 5;
  options.push.backoff_initial_us = 1;
  LineStack stack = make_line_ro(2, options, /*wrap_faulty=*/true);

  stack.faults[0]->fail_next(1, ErrorCode::kRejected);
  const auto r = stack.ro->deploy(span_chain("svc", 0, 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kRejected);
  // One injected failure, no retry of the rejected push (the rollback
  // push afterwards is a fresh transaction and succeeds).
  EXPECT_EQ(stack.faults[0]->injected_failures(), 1u);
  EXPECT_EQ(stack.ro->metrics().counter("ro.push.retries"), 0u);
}

TEST(PushPipeline, FlakyDomainConvergesUnderRetry) {
  RoOptions options;
  options.push.max_attempts = 2;
  options.push.backoff_initial_us = 1;
  LineStack stack = make_line_ro(2, options, /*wrap_faulty=*/true);

  // Every 2nd southbound operation fails: each push needs the retry.
  stack.faults[0]->flaky_every(2, ErrorCode::kUnavailable);
  ASSERT_TRUE(stack.ro->deploy(span_chain("a", 0, 1)).ok());
  ASSERT_TRUE(stack.ro->deploy(span_chain("b", 0, 1, "dpi")).ok());
  ASSERT_TRUE(stack.ro->remove("a").ok());
  EXPECT_GE(stack.faults[0]->injected_failures(), 1u);
  EXPECT_GE(stack.ro->metrics().counter("ro.push.retries"), 1u);
}

// --------------------------------------- partial failure / fail-fast fix

TEST(PushPipeline, HealthyDomainsConvergeWhenFirstFails) {
  LineStack stack = make_line_ro(2, RoOptions{}, /*wrap_faulty=*/true);
  ASSERT_TRUE(stack.ro->deploy(span_chain("svc", 0, 1)).ok());
  ASSERT_GT(stack.domains[1]->last_applied().stats().flowrule_count, 0u);

  // d0 (pushed first) fails the teardown push. Before the fan-out
  // redesign the push loop bailed on the first error and d1 was never
  // told — it kept forwarding a torn-down service.
  stack.faults[0]->fail_next(1, ErrorCode::kUnavailable);
  const auto r = stack.ro->remove("svc");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(stack.domains[1]->last_applied().stats().nf_count, 0u);
  EXPECT_EQ(stack.domains[1]->last_applied().stats().flowrule_count, 0u);
  EXPECT_EQ(stack.ro->metrics().counter("ro.push.partial_failures"), 1u);

  // The failed domain is dirty (unknown state) and converges on the next
  // resync; the healthy one is clean and untouched.
  const std::uint64_t healthy_applies = stack.domains[1]->applies();
  ASSERT_TRUE(stack.ro->resync_domains().ok());
  EXPECT_EQ(stack.domains[0]->last_applied().stats().nf_count, 0u);
  EXPECT_EQ(stack.domains[1]->applies(), healthy_applies);
}

TEST(PushPipeline, AllFailuresAreAggregated) {
  LineStack stack = make_line_ro(3, RoOptions{}, /*wrap_faulty=*/true);
  ASSERT_TRUE(stack.ro->deploy(span_chain("svc", 0, 2)).ok());
  stack.faults[0]->fail_next(1, ErrorCode::kUnavailable);
  stack.faults[2]->fail_next(1, ErrorCode::kTimeout);
  const auto r = stack.ro->remove("svc");
  ASSERT_FALSE(r.ok());
  // Both failing domains appear in the aggregated message; the healthy
  // middle domain converged regardless.
  EXPECT_NE(r.error().message.find("d0"), std::string::npos);
  EXPECT_NE(r.error().message.find("d2"), std::string::npos);
  EXPECT_EQ(stack.domains[1]->last_applied().stats().nf_count, 0u);
  EXPECT_EQ(stack.ro->metrics().counter("ro.push.partial_failures"), 2u);
}

// --------------------------------------- fetch fan-out (init/status sync)

TEST(PushPipeline, InitializeAndSyncStatusesMatchSequential) {
  util::OrchestrationPool pool(4);
  RoOptions parallel;
  parallel.pool = &pool;
  RoOptions sequential;
  sequential.push.parallelism = 1;

  LineStack par = make_line_ro(4, parallel);
  LineStack seq = make_line_ro(4, sequential);
  EXPECT_EQ(model::to_json(par.ro->global_view()).dump(),
            model::to_json(seq.ro->global_view()).dump());

  for (auto* stack : {&par, &seq}) {
    ASSERT_TRUE(stack->ro->deploy(span_chain("svc", 0, 3)).ok());
    ASSERT_TRUE(stack->ro->sync_statuses().ok());
  }
  EXPECT_EQ(model::to_json(par.ro->global_view()).dump(),
            model::to_json(seq.ro->global_view()).dump());
  ASSERT_TRUE(par.ro->nf_status("nat0").has_value());
  EXPECT_EQ(*par.ro->nf_status("nat0"), model::NfStatus::kRunning);
  EXPECT_EQ(*par.ro->nf_status("nat0"), *seq.ro->nf_status("nat0"));
}

// --------------------------------------------------- nested recursion

TEST(PushPipeline, NestedRecursionSharesOnePoolWithoutDeadlock) {
  // Parent RO -> UnifyClientAdapter -> child RO, both fanning out on the
  // SAME injected pool: the child's run_all() happens inside a parent
  // pool task (the caller participates as a runner, so the nesting cannot
  // deadlock even with a single worker).
  util::OrchestrationPool pool(2);
  SimClock clock;

  auto child = std::make_unique<ResourceOrchestrator>(
      "child", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog(), [&] {
        RoOptions o;
        o.pool = &pool;
        return o;
      }());
  std::vector<CountingAdapter*> leaves;
  for (std::size_t i = 0; i < 2; ++i) {
    auto leaf = std::make_unique<CountingAdapter>("leaf" + std::to_string(i),
                                                  line_domain_view(i, 2));
    leaves.push_back(leaf.get());
    ASSERT_TRUE(child->add_domain(std::move(leaf)).ok());
  }
  ASSERT_TRUE(child->initialize().ok());
  Virtualizer virt(*child, ViewPolicy::kSingleBisBis, "child.big");

  auto parent = std::make_unique<ResourceOrchestrator>(
      "parent", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog(), [&] {
        RoOptions o;
        o.pool = &pool;
        return o;
      }());
  ASSERT_TRUE(
      parent->add_domain(make_unify_link(virt, clock, "south")).ok());
  ASSERT_TRUE(parent->initialize().ok());

  const auto r = parent->deploy(
      sg::make_chain("svc", "sap0", {"nat"}, "sap1", 10, 500));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  // The push really recursed: the child deployed and fanned out to its
  // own leaves through the same pool.
  EXPECT_EQ(child->deployments().size(), 1u);
  EXPECT_EQ(leaves[0]->last_applied().stats().nf_count +
                leaves[1]->last_applied().stats().nf_count,
            1u);

  ASSERT_TRUE(parent->remove("svc").ok());
  EXPECT_EQ(child->global_view().stats().nf_count, 0u);
}

// ------------------------------------------------------------ ticket shim

TEST(PushPipeline, TicketShimRejectsOverlappingAndStaleTransactions) {
  CountingAdapter adapter("d0", line_domain_view(0, 1));
  const model::Nffg desired = line_domain_view(0, 1);

  const auto first = adapter.begin_apply(desired);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(adapter.push_in_flight());
  // Second transaction while one is open: refused.
  EXPECT_EQ(adapter.begin_apply(desired).error().code,
            ErrorCode::kUnavailable);
  // Stale ticket: refused, transaction stays open.
  EXPECT_EQ(adapter.await(adapters::PushTicket{9999}).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_TRUE(adapter.push_in_flight());

  const std::uint64_t epoch_before = adapter.view_epoch();
  ASSERT_TRUE(adapter.await(*first).ok());
  EXPECT_FALSE(adapter.push_in_flight());
  EXPECT_EQ(adapter.applies(), 1u);
  // The awaited apply bumped the epoch (domain state may have changed).
  EXPECT_GT(adapter.view_epoch(), epoch_before);
  // The ticket is single-use.
  EXPECT_EQ(adapter.await(*first).error().code, ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace unify::core
