#include "core/virtualizer.h"

#include <gtest/gtest.h>

#include "core/config_translate.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"

namespace unify::core {
namespace {

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg domain_view(const std::string& bb, const std::string& sap,
                        const std::string& stitch) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {16, 16384, 200}, 4, 0.1)).ok());
  model::attach_sap(g, sap, bb, 0, {1000, 0.1});
  if (!stitch.empty()) model::attach_sap(g, stitch, bb, 1, {1000, 0.5});
  return g;
}

struct RoFixture {
  RoFixture() {
    ro = std::make_unique<ResourceOrchestrator>(
        "ro", std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    EXPECT_TRUE(ro->add_domain(std::make_unique<AcceptAllAdapter>(
                                   "d1", domain_view("bb1", "sap1", "xp")))
                    .ok());
    EXPECT_TRUE(ro->add_domain(std::make_unique<AcceptAllAdapter>(
                                   "d2", domain_view("bb2", "sap2", "xp")))
                    .ok());
    EXPECT_TRUE(ro->initialize().ok());
  }
  std::unique_ptr<ResourceOrchestrator> ro;
};

TEST(VirtualizerSingle, RendersCollapsedView) {
  RoFixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kSingleBisBis);
  auto config = virt.get_config();
  ASSERT_TRUE(config.ok()) << config.error().to_string();
  EXPECT_EQ(config->bisbis().size(), 1u);
  const model::BisBis& big = config->bisbis().begin()->second;
  EXPECT_EQ(big.id, "ro.big");
  // Aggregate capacity of both domains.
  EXPECT_EQ(big.capacity, (model::Resources{32, 32768, 400}));
  // Both customer SAPs visible, stitching SAP hidden.
  EXPECT_EQ(config->saps().size(), 2u);
  EXPECT_NE(config->find_sap("sap1"), nullptr);
  EXPECT_EQ(config->find_sap("xp"), nullptr);
  // Advertised internal delay covers the worst transit: sap1->sap2 path is
  // 0.1 + 0.1(bb1) + 1.0(xd) + 0.1(bb2) + 0.1 minus the attachment legs.
  EXPECT_NEAR(big.internal_delay, 1.2, 1e-9);
  EXPECT_TRUE(config->validate().empty());
}

TEST(VirtualizerSingle, EditConfigDeploysThroughRo) {
  RoFixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kSingleBisBis);
  auto view = virt.get_config();
  ASSERT_TRUE(view.ok());

  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat", "dpi"}, "sap2", 50, 100);
  auto desired = service_graph_to_config(sg, *view, "ro.big");
  ASSERT_TRUE(desired.ok());
  ASSERT_TRUE(virt.edit_config(*desired).ok());

  EXPECT_EQ(fx.ro->deployments().size(), 1u);
  EXPECT_TRUE(fx.ro->global_view().find_nf("nat0").has_value());
  EXPECT_EQ(virt.active_requests().size(), 1u);
}

TEST(VirtualizerSingle, GetConfigEchoesAcceptedWithStatuses) {
  RoFixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kSingleBisBis);
  auto view = virt.get_config();
  ASSERT_TRUE(view.ok());
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"firewall"}, "sap2", 50, 100);
  auto desired = service_graph_to_config(sg, *view, "ro.big");
  ASSERT_TRUE(desired.ok());
  ASSERT_TRUE(virt.edit_config(*desired).ok());

  auto config = virt.get_config();
  ASSERT_TRUE(config.ok());
  const model::BisBis* big = config->find_bisbis("ro.big");
  ASSERT_NE(big, nullptr);
  // The client sees its abstract firewall (not the decomposed components).
  ASSERT_EQ(big->nfs.count("firewall0"), 1u);
  // Status rolled up from the components below (fake adapters never flip
  // them to running, so the aggregate is requested/deploying).
  EXPECT_NE(big->nfs.at("firewall0").status, model::NfStatus::kRunning);
}

TEST(VirtualizerSingle, IncrementalEditAddsAndRemovesServices) {
  RoFixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kSingleBisBis);
  auto view = virt.get_config();
  ASSERT_TRUE(view.ok());

  // Deploy service A.
  const sg::ServiceGraph a =
      sg::make_chain("a", "sap1", {"nat"}, "sap2", 10, 100);
  auto config_a = service_graph_to_config(a, *view, "ro.big");
  ASSERT_TRUE(config_a.ok());
  ASSERT_TRUE(virt.edit_config(*config_a).ok());
  ASSERT_EQ(fx.ro->deployments().size(), 1u);
  const std::string first_request = virt.active_requests()[0];

  // Add service B on top (config = A + B): A must stay untouched.
  model::Nffg config_ab = *config_a;
  ASSERT_TRUE(config_ab
                  .place_nf("ro.big",
                            model::make_nf("dpi0", "dpi", {4, 4096, 8}, 2),
                            true)
                  .ok());
  ASSERT_TRUE(config_ab
                  .add_flowrule("ro.big",
                                model::Flowrule{"b1", {"ro.big", 0},
                                                {"dpi0", 0}, "", "", 5})
                  .ok());
  ASSERT_TRUE(config_ab
                  .add_flowrule("ro.big",
                                model::Flowrule{"b2", {"dpi0", 1},
                                                {"ro.big", 1}, "", "", 5})
                  .ok());
  ASSERT_TRUE(virt.edit_config(config_ab).ok());
  EXPECT_EQ(fx.ro->deployments().size(), 2u);
  // Service A's RO request survived (not redeployed).
  const auto requests = virt.active_requests();
  EXPECT_NE(std::find(requests.begin(), requests.end(), first_request),
            requests.end());

  // Remove service A (config = B only).
  model::Nffg config_b = config_ab;
  ASSERT_TRUE(config_b.remove_nf("ro.big", "nat0").ok());
  // nat0's rules died with it; drop the chain rules referencing big ports.
  ASSERT_TRUE(virt.edit_config(config_b).ok());
  EXPECT_EQ(fx.ro->deployments().size(), 1u);
  EXPECT_FALSE(fx.ro->global_view().find_nf("nat0").has_value());
  EXPECT_TRUE(fx.ro->global_view().find_nf("dpi0").has_value());
}

TEST(VirtualizerSingle, ModifiedServiceRedeploys) {
  RoFixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kSingleBisBis);
  auto view = virt.get_config();
  ASSERT_TRUE(view.ok());
  const sg::ServiceGraph a =
      sg::make_chain("a", "sap1", {"nat"}, "sap2", 10, 100);
  auto config = service_graph_to_config(a, *view, "ro.big");
  ASSERT_TRUE(config.ok());
  ASSERT_TRUE(virt.edit_config(*config).ok());
  const std::string first_request = virt.active_requests()[0];

  // Raise the chain bandwidth: same elements, changed link.
  model::Nffg modified = *config;
  for (model::Flowrule& rule :
       modified.find_bisbis("ro.big")->flowrules) {
    rule.bandwidth = 20;
  }
  ASSERT_TRUE(virt.edit_config(modified).ok());
  ASSERT_EQ(virt.active_requests().size(), 1u);
  EXPECT_NE(virt.active_requests()[0], first_request);  // redeployed
}

TEST(VirtualizerSingle, EmptyConfigTearsEverythingDown) {
  RoFixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kSingleBisBis);
  auto view = virt.get_config();
  ASSERT_TRUE(view.ok());
  const sg::ServiceGraph a =
      sg::make_chain("a", "sap1", {"nat"}, "sap2", 10, 100);
  auto config = service_graph_to_config(a, *view, "ro.big");
  ASSERT_TRUE(config.ok());
  ASSERT_TRUE(virt.edit_config(*config).ok());
  ASSERT_TRUE(virt.edit_config(*view).ok());  // back to the bare skeleton
  EXPECT_TRUE(fx.ro->deployments().empty());
  EXPECT_TRUE(virt.active_requests().empty());
}

TEST(VirtualizerFull, ClientControlsPlacement) {
  RoFixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kFull);
  auto view = virt.get_config();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->bisbis().size(), 2u);  // real topology

  // Client writes an NF onto bb2 explicitly, chain sap1 -> nf -> sap2.
  model::Nffg desired = *view;
  ASSERT_TRUE(
      desired.place_nf("bb2", model::make_nf("nf", "nat", {1, 512, 1}, 2))
          .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("bb1", model::Flowrule{"c0", {"bb1", 0},
                                                       {"bb1", 1}, "",
                                                       "c0", 5})
                  .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("bb2", model::Flowrule{"c0@", {"bb2", 1},
                                                       {"nf", 0}, "c0", "-",
                                                       5})
                  .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("bb2", model::Flowrule{"c1", {"nf", 1},
                                                       {"bb2", 0}, "", "", 5})
                  .ok());
  ASSERT_TRUE(virt.edit_config(desired).ok());
  const auto placed = fx.ro->global_view().find_nf("nf");
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(placed->first, "bb2");  // the pin was honoured
}

TEST(VirtualizerFull, MovedNfRedeploys) {
  RoFixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kFull);
  auto view = virt.get_config();
  ASSERT_TRUE(view.ok());
  model::Nffg desired = *view;
  ASSERT_TRUE(
      desired.place_nf("bb1", model::make_nf("nf", "nat", {1, 512, 1}, 2))
          .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("bb1", model::Flowrule{"c0", {"bb1", 0},
                                                       {"nf", 0}, "", "", 5})
                  .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("bb1", model::Flowrule{"c1", {"nf", 1},
                                                       {"bb1", 0}, "", "", 5})
                  .ok());
  ASSERT_TRUE(virt.edit_config(desired).ok());
  ASSERT_EQ(fx.ro->global_view().find_nf("nf")->first, "bb1");

  // Move the NF to bb2 (same ids, new placement + rules).
  model::Nffg moved = *view;
  ASSERT_TRUE(
      moved.place_nf("bb2", model::make_nf("nf", "nat", {1, 512, 1}, 2))
          .ok());
  ASSERT_TRUE(moved
                  .add_flowrule("bb2", model::Flowrule{"c0", {"bb2", 0},
                                                       {"nf", 0}, "", "", 5})
                  .ok());
  ASSERT_TRUE(moved
                  .add_flowrule("bb2", model::Flowrule{"c1", {"nf", 1},
                                                       {"bb2", 0}, "", "", 5})
                  .ok());
  ASSERT_TRUE(virt.edit_config(moved).ok());
  ASSERT_EQ(fx.ro->global_view().find_nf("nf")->first, "bb2");
}

TEST(VirtualizerSingle, DisconnectedSapsStillRender) {
  // Two domains with NO stitching SAP: the merged view is disconnected;
  // the collapsed view must still render (unreachable SAP pairs simply do
  // not contribute to the advertised internal delay).
  auto ro = std::make_unique<ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  ASSERT_TRUE(ro->add_domain(std::make_unique<AcceptAllAdapter>(
                                 "d1", domain_view("bb1", "sap1", "")))
                  .ok());
  ASSERT_TRUE(ro->add_domain(std::make_unique<AcceptAllAdapter>(
                                 "d2", domain_view("bb2", "sap2", "")))
                  .ok());
  ASSERT_TRUE(ro->initialize().ok());
  Virtualizer virt(*ro, ViewPolicy::kSingleBisBis);
  auto view = virt.get_config();
  ASSERT_TRUE(view.ok()) << view.error().to_string();
  EXPECT_EQ(view->saps().size(), 2u);
  // No finite cross-SAP transit: internal delay collapses to zero.
  EXPECT_EQ(view->bisbis().begin()->second.internal_delay, 0.0);
}

TEST(Virtualizer, RequiresInitializedRo) {
  ResourceOrchestrator ro("ro", std::make_shared<mapping::ChainDpMapper>(),
                          catalog::default_catalog());
  Virtualizer virt(ro, ViewPolicy::kSingleBisBis);
  EXPECT_EQ(virt.get_config().error().code, ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace unify::core
