// Failure injection and lifecycle-evolution tests: domain faults,
// capacity re-advertisement, migration (redeploy) and service updates.
#include <gtest/gtest.h>

#include "adapters/faulty_adapter.h"
#include "core/resource_orchestrator.h"
#include "core/unify_api.h"
#include "core/virtualizer.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "service/service_layer.h"

namespace unify::core {
namespace {

/// Fake domain whose advertised view can be swapped at runtime.
class MutableAdapter final : public adapters::DomainAdapter {
 public:
  MutableAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  const std::string& domain() const noexcept override { return name_; }
  Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  std::uint64_t native_operations() const noexcept override { return 0; }

  void set_view(model::Nffg view) { view_ = std::move(view); }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg domain_view(const std::string& bb, const std::string& sap,
                        const std::string& stitch, double cpu = 16) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {cpu, 16384, 200}, 4)).ok());
  model::attach_sap(g, sap, bb, 0, {1000, 0.1});
  model::attach_sap(g, stitch, bb, 1, {1000, 0.5});
  return g;
}

struct Fixture {
  explicit Fixture(bool wrap_faulty = false) {
    ro = std::make_unique<ResourceOrchestrator>(
        "ro", std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    auto a = std::make_unique<MutableAdapter>(
        "d1", domain_view("bb1", "sap1", "xp"));
    auto b = std::make_unique<MutableAdapter>(
        "d2", domain_view("bb2", "sap2", "xp"));
    left = a.get();
    right = b.get();
    if (wrap_faulty) {
      auto faulty = std::make_unique<adapters::FaultyAdapter>(std::move(a));
      faulty_left = faulty.get();
      EXPECT_TRUE(ro->add_domain(std::move(faulty)).ok());
    } else {
      EXPECT_TRUE(ro->add_domain(std::move(a)).ok());
    }
    EXPECT_TRUE(ro->add_domain(std::move(b)).ok());
    EXPECT_TRUE(ro->initialize().ok());
  }
  std::unique_ptr<ResourceOrchestrator> ro;
  MutableAdapter* left = nullptr;
  MutableAdapter* right = nullptr;
  adapters::FaultyAdapter* faulty_left = nullptr;
};

// --------------------------------------------------------- fault injection

TEST(FaultyAdapter, InjectedApplyFailureSurfacesFromDeploy) {
  Fixture fx(/*wrap_faulty=*/true);
  fx.faulty_left->fail_next(1, ErrorCode::kUnavailable);
  const auto r =
      fx.ro->deploy(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(fx.faulty_left->injected_failures(), 1u);
  // The stack recovers once the domain is healthy again.
  EXPECT_TRUE(
      fx.ro->deploy(sg::make_chain("svc2", "sap1", {"nat"}, "sap2", 10, 50))
          .ok());
}

TEST(FaultyAdapter, FetchFailureBlocksInitialization) {
  auto ro = std::make_unique<ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  auto inner = std::make_unique<MutableAdapter>(
      "d1", domain_view("bb1", "sap1", "xp"));
  auto faulty = std::make_unique<adapters::FaultyAdapter>(std::move(inner));
  faulty->fail_next(1);
  ASSERT_TRUE(ro->add_domain(std::move(faulty)).ok());
  const auto r = ro->initialize();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kUnavailable);
}

TEST(FaultyAdapter, RandomFailureRateIsSeeded) {
  auto view = domain_view("bb1", "sap1", "xp");
  auto make = [&](std::uint64_t seed) {
    auto inner = std::make_unique<MutableAdapter>("d1", view);
    adapters::FaultyAdapter faulty(std::move(inner), seed);
    faulty.set_failure_rate(0.5);
    int failures = 0;
    for (int i = 0; i < 32; ++i) {
      if (!faulty.fetch_view().ok()) ++failures;
    }
    return failures;
  };
  EXPECT_EQ(make(7), make(7));     // deterministic
  EXPECT_GT(make(7), 4);           // rate roughly honoured
  EXPECT_LT(make(7), 28);
}

// ------------------------------------------------- migration / redeploy

TEST(Redeploy, MovesNfsAfterCapacityLoss) {
  Fixture fx;
  // ChainDp places the single NF on bb1 (closest to sap1).
  ASSERT_TRUE(
      fx.ro->deploy(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50))
          .ok());
  ASSERT_EQ(fx.ro->global_view().find_nf("nat0")->first, "bb1");

  // The domain re-advertises bb1 with no compute (maintenance drain).
  fx.left->set_view(domain_view("bb1", "sap1", "xp", /*cpu=*/0));
  ASSERT_TRUE(fx.ro->refresh_domain("d1").ok());

  // Migration moves the NF to the remaining capacity on bb2.
  ASSERT_TRUE(fx.ro->redeploy("svc").ok());
  EXPECT_EQ(fx.ro->global_view().find_nf("nat0")->first, "bb2");
  // Books stay consistent: removal still works.
  EXPECT_TRUE(fx.ro->remove("svc").ok());
  EXPECT_EQ(fx.ro->global_view().stats().nf_count, 0u);
}

TEST(Redeploy, RestoresOldPlacementWhenRemapFails) {
  Fixture fx;
  ASSERT_TRUE(
      fx.ro->deploy(sg::make_chain("svc", "sap1", {"dpi"}, "sap2", 10, 50))
          .ok());
  const std::string host_before =
      fx.ro->global_view().find_nf("dpi0")->first;

  // Drain BOTH nodes: no feasible remap exists.
  fx.left->set_view(domain_view("bb1", "sap1", "xp", 0));
  fx.right->set_view(domain_view("bb2", "sap2", "xp", 0));
  ASSERT_TRUE(fx.ro->refresh_domain("d1").ok());
  ASSERT_TRUE(fx.ro->refresh_domain("d2").ok());

  const auto r = fx.ro->redeploy("svc");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInfeasible);
  // The previous placement survived the failed migration.
  ASSERT_TRUE(fx.ro->global_view().find_nf("dpi0").has_value());
  EXPECT_EQ(fx.ro->global_view().find_nf("dpi0")->first, host_before);
  EXPECT_EQ(fx.ro->deployments().count("svc"), 1u);
}

TEST(Redeploy, UnknownRequestFails) {
  Fixture fx;
  EXPECT_EQ(fx.ro->redeploy("nope").error().code, ErrorCode::kNotFound);
}

TEST(RefreshDomain, RejectsTopologyChanges) {
  Fixture fx;
  model::Nffg grown = domain_view("bb1", "sap1", "xp");
  ASSERT_TRUE(grown.add_bisbis(model::make_bisbis("bb1b", {4, 4, 4}, 2)).ok());
  fx.left->set_view(std::move(grown));
  const auto r = fx.ro->refresh_domain("d1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("topology changes"), std::string::npos);
  EXPECT_EQ(fx.ro->refresh_domain("ghost").error().code,
            ErrorCode::kNotFound);
}

// ------------------------------------------------------- service update

TEST(ServiceUpdate, GrowsAChainInPlace) {
  Fixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kSingleBisBis);
  SimClock clock;
  service::ServiceLayer layer(make_unify_link(virt, clock, "north"));

  ASSERT_TRUE(
      layer.submit(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50))
          .ok());
  EXPECT_EQ(fx.ro->global_view().stats().nf_count, 1u);

  // Scale the service: same id, one more NF in the chain.
  ASSERT_TRUE(
      layer.update(sg::make_chain("svc", "sap1", {"nat", "monitor"}, "sap2",
                                  10, 50))
          .ok());
  EXPECT_EQ(fx.ro->global_view().stats().nf_count, 2u);
  EXPECT_TRUE(fx.ro->global_view().find_nf("svc.monitor1").has_value());

  // And shrink it back.
  ASSERT_TRUE(
      layer.update(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50))
          .ok());
  EXPECT_EQ(fx.ro->global_view().stats().nf_count, 1u);
}

TEST(ServiceUpdate, FailedUpdateKeepsOldVersion) {
  Fixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kSingleBisBis);
  SimClock clock;
  service::ServiceLayer layer(make_unify_link(virt, clock, "north"));
  ASSERT_TRUE(
      layer.submit(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50))
          .ok());

  // Impossible update: resource demand beyond any node.
  sg::ServiceGraph huge{"svc"};
  ASSERT_TRUE(huge.add_sap("sap1").ok());
  ASSERT_TRUE(huge.add_sap("sap2").ok());
  ASSERT_TRUE(
      huge.add_nf(sg::SgNf{"x", "nat", 2, model::Resources{9999, 1, 1}})
          .ok());
  ASSERT_TRUE(huge.add_link(sg::SgLink{"l1", {"sap1", 0}, {"x", 0}, 1}).ok());
  ASSERT_TRUE(huge.add_link(sg::SgLink{"l2", {"x", 1}, {"sap2", 0}, 1}).ok());
  const auto r = layer.update(huge);
  ASSERT_FALSE(r.ok());
  // Old version still running.
  EXPECT_EQ(layer.requests().at("svc").state,
            service::RequestState::kDeployed);
  EXPECT_TRUE(fx.ro->global_view().find_nf("svc.nat0").has_value());
  EXPECT_FALSE(fx.ro->global_view().find_nf("svc.x").has_value());
}

TEST(ServiceUpdate, UnknownOrRemovedRequestFails) {
  Fixture fx;
  Virtualizer virt(*fx.ro, ViewPolicy::kSingleBisBis);
  SimClock clock;
  service::ServiceLayer layer(make_unify_link(virt, clock, "north"));
  EXPECT_EQ(layer.update(sg::make_chain("nope", "sap1", {}, "sap2", 1, 9))
                .error()
                .code,
            ErrorCode::kNotFound);
}

}  // namespace
}  // namespace unify::core
