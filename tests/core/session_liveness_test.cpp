// Acceptance test for the heartbeat -> HealthManager wiring (DESIGN.md
// §14): a silently partitioned Unify domain — wire up, peer mute — trips
// its circuit breaker from heartbeat evidence alone, in O(heartbeat
// interval), without any push ever being issued; after the forced close
// the session reconnects and heal() readmits the domain.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/unify_api.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"

namespace unify::core {
namespace {

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg leaf_view(const std::string& bb, const std::string& sap1,
                      const std::string& sap2) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {16, 16384, 200}, 4, 0.05)).ok());
  model::attach_sap(g, sap1, bb, 0, {1000, 0.1});
  model::attach_sap(g, sap2, bb, 1, {1000, 0.1});
  return g;
}

struct LeafDomain {
  explicit LeafDomain(const std::string& name) {
    ro = std::make_unique<ResourceOrchestrator>(
        name, std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    EXPECT_TRUE(
        ro->add_domain(std::make_unique<AcceptAllAdapter>(
                           name + "-infra",
                           leaf_view(name + "-bb", name + "-sap", "xp")))
            .ok());
    EXPECT_TRUE(ro->initialize().ok());
    virtualizer = std::make_unique<Virtualizer>(
        *ro, ViewPolicy::kSingleBisBis, name + ".big");
  }
  std::unique_ptr<ResourceOrchestrator> ro;
  std::unique_ptr<Virtualizer> virtualizer;
};

constexpr SimTime kHeartbeatUs = 100'000;

TEST(SessionLiveness, HeartbeatTripsBreakerAndHealReadmits) {
  SimClock clock;
  proto::SimDriver driver(clock);
  LeafDomain leaf("leaf");

  // Each (re)connect builds a fresh channel + UnifyServer incarnation.
  std::vector<std::shared_ptr<proto::Endpoint>> souths;
  std::vector<std::unique_ptr<UnifyServer>> servers;
  auto factory = [&]() -> Result<std::shared_ptr<proto::Transport>> {
    auto [north, south] = proto::make_channel_pair(clock, 100);
    souths.push_back(south);
    servers.push_back(std::make_unique<UnifyServer>(
        *leaf.virtualizer, south,
        "leaf-server-" + std::to_string(servers.size())));
    return std::static_pointer_cast<proto::Transport>(north);
  };

  proto::SessionOptions options;
  options.heartbeat.interval_us = kHeartbeatUs;
  options.heartbeat.miss_threshold = 3;
  auto adapter = std::make_unique<UnifyClientAdapter>(
      "leaf", driver, factory, options, /*rpc_timeout_us=*/500'000);
  auto* session_adapter = adapter.get();

  ResourceOrchestrator ro("parent",
                          std::make_shared<mapping::ChainDpMapper>(),
                          catalog::default_catalog());
  ASSERT_TRUE(ro.add_domain(std::move(adapter)).ok());
  ASSERT_TRUE(ro.initialize().ok());
  session_adapter->on_liveness([&ro](const Result<void>& evidence) {
    (void)ro.note_domain_liveness("leaf", evidence);
  });
  ASSERT_EQ(ro.health().health(0), DomainHealth::kHealthy);

  // Silent partition: the wire stays connected but the peer goes mute —
  // every request (and every ping) vanishes. Only the heartbeat can see
  // this; no push is issued anywhere in this test.
  souths.back()->on_receive([](std::string_view) {});
  const SimTime partitioned_at = clock.now();

  for (int i = 0;
       i < 50 && ro.health().health(0) != DomainHealth::kDown; ++i) {
    clock.advance(kHeartbeatUs);
  }
  EXPECT_EQ(ro.health().health(0), DomainHealth::kDown);
  EXPECT_FALSE(ro.health().admits(0));
  EXPECT_GE(session_adapter->session().heartbeat_misses(), 3u);
  // Detection ran at heartbeat speed: a handful of intervals, not a push
  // deadline.
  EXPECT_LE(clock.now() - partitioned_at, 10 * kHeartbeatUs);

  // The miss threshold force-closed the wire; the session reconnects to a
  // fresh server on its own.
  for (int i = 0; i < 50 && !session_adapter->session().connected(); ++i) {
    clock.advance(kHeartbeatUs);
  }
  ASSERT_TRUE(session_adapter->session().connected());
  EXPECT_GE(session_adapter->session().reconnects(), 1u);
  // The stray liveness success cannot short the probe protocol...
  EXPECT_EQ(ro.health().health(0), DomainHealth::kDown);

  // ...but the healing pass probes the reconnected session and readmits.
  auto healed = ro.heal();
  ASSERT_TRUE(healed.ok()) << healed.error().to_string();
  EXPECT_EQ(healed->readmitted, std::vector<std::string>{"leaf"});
  EXPECT_EQ(ro.health().health(0), DomainHealth::kHealthy);
  EXPECT_TRUE(ro.health().admits(0));
}

TEST(SessionLiveness, UnknownDomainIsRejected) {
  ResourceOrchestrator ro("parent",
                          std::make_shared<mapping::ChainDpMapper>(),
                          catalog::default_catalog());
  auto r = ro.note_domain_liveness("ghost", Result<void>::success());
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace unify::core
