// Domain health subsystem: circuit-breaker state machine, push/fetch
// gating, view capacity masking, the healing pass (re-embedding stranded
// services onto survivors) and readmission resync (DESIGN.md §10).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "adapters/faulty_adapter.h"
#include "core/health_manager.h"
#include "core/resource_orchestrator.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "model/nffg_json.h"
#include "model/nffg_merge.h"

namespace unify::core {
namespace {

constexpr auto kUnavailable = ErrorCode::kUnavailable;

// --------------------------------------------------- HealthManager (unit)

HealthManager make_manager(HealthPolicy policy = {}) {
  HealthManager manager;
  manager.reset(policy, {"d0", "d1"});
  return manager;
}

TEST(HealthManager, TransientFailuresOpenCircuitAtThreshold) {
  HealthManager m = make_manager();
  const Error err{kUnavailable, "boom"};
  EXPECT_FALSE(m.record_failure(0, err));
  EXPECT_EQ(m.health(0), DomainHealth::kDegraded);
  EXPECT_TRUE(m.admits(0));
  EXPECT_FALSE(m.record_failure(0, err));
  // The third consecutive transient failure trips the breaker.
  EXPECT_TRUE(m.record_failure(0, err));
  EXPECT_EQ(m.health(0), DomainHealth::kDown);
  EXPECT_FALSE(m.admits(0));
  EXPECT_EQ(m.record(0).circuit_opens, 1u);
  // The other domain is untouched.
  EXPECT_EQ(m.health(1), DomainHealth::kHealthy);
  EXPECT_EQ(m.open_circuits(), std::vector<std::size_t>{0});
}

TEST(HealthManager, NonTransientErrorsProveLivenessAndResetStreak) {
  HealthManager m = make_manager();
  const Error transient{kUnavailable, "down?"};
  EXPECT_FALSE(m.record_failure(0, transient));
  EXPECT_FALSE(m.record_failure(0, transient));
  // A rejection means the domain answered: streak resets, no circuit.
  EXPECT_FALSE(m.record_failure(0, Error{ErrorCode::kRejected, "no"}));
  EXPECT_FALSE(m.record_failure(0, transient));
  EXPECT_FALSE(m.record_failure(0, transient));
  EXPECT_TRUE(m.admits(0));
  m.record_success(0);
  EXPECT_EQ(m.health(0), DomainHealth::kHealthy);
  EXPECT_EQ(m.record(0).consecutive_failures, 0);
}

TEST(HealthManager, ProbeCycleHalfOpensAndCloses) {
  HealthManager m = make_manager();
  EXPECT_TRUE(m.open_circuit(0, "operator drain"));
  EXPECT_FALSE(m.open_circuit(0, "again"));  // already open
  m.begin_probe(0);
  EXPECT_EQ(m.health(0), DomainHealth::kProbing);
  EXPECT_FALSE(m.admits(0));  // half-open still excluded from fan-outs
  m.probe_failed(0, Error{kUnavailable, "still dead"});
  EXPECT_EQ(m.health(0), DomainHealth::kDown);
  EXPECT_EQ(m.record(0).probe_failures, 1u);
  m.begin_probe(0);
  m.close_circuit(0);
  EXPECT_EQ(m.health(0), DomainHealth::kHealthy);
  EXPECT_TRUE(m.admits(0));
  EXPECT_FALSE(m.any_open());
}

TEST(HealthManager, ObservationsAgainstOpenCircuitDoNotDoubleCount) {
  HealthManager m = make_manager();
  EXPECT_TRUE(m.open_circuit(0, "dead"));
  EXPECT_FALSE(m.record_failure(0, Error{kUnavailable, "late echo"}));
  m.record_success(0);  // a stray success cannot short the probe protocol
  EXPECT_EQ(m.health(0), DomainHealth::kDown);
  EXPECT_EQ(m.record(0).circuit_opens, 1u);
}

TEST(HealthManager, ProbeBackoffEscalatesCapsAndResets) {
  HealthPolicy policy;
  policy.probe_backoff_initial = 1;
  policy.probe_backoff_multiplier = 2.0;
  policy.probe_backoff_cap = 4;
  HealthManager m = make_manager(policy);
  const Error err{kUnavailable, "flap"};

  // First transient failure arms a 1-pass cooldown: skip one heal pass,
  // then due again.
  EXPECT_FALSE(m.record_failure(0, err));
  EXPECT_EQ(m.health(0), DomainHealth::kDegraded);
  EXPECT_FALSE(m.should_probe(0));
  EXPECT_TRUE(m.should_probe(0));

  // A success while degraded resets the ladder entirely.
  m.record_success(0);
  EXPECT_EQ(m.record(0).probe_backoff, 0);
  EXPECT_TRUE(m.should_probe(0));

  // Trip the breaker, then fail probes: each failure doubles the window
  // up to the cap.
  ASSERT_TRUE(m.open_circuit(0, "dead"));
  m.begin_probe(0);
  m.probe_failed(0, err);  // backoff 1
  EXPECT_FALSE(m.should_probe(0));
  EXPECT_TRUE(m.should_probe(0));
  m.begin_probe(0);
  m.probe_failed(0, err);  // backoff 2
  EXPECT_FALSE(m.should_probe(0));
  EXPECT_FALSE(m.should_probe(0));
  EXPECT_TRUE(m.should_probe(0));
  m.begin_probe(0);
  m.probe_failed(0, err);  // backoff 4
  m.begin_probe(0);
  m.probe_failed(0, err);  // capped: stays 4
  EXPECT_EQ(m.record(0).probe_backoff, 4);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(m.should_probe(0));
  EXPECT_TRUE(m.should_probe(0));

  // Readmission (close_circuit) wipes the history.
  m.begin_probe(0);
  m.close_circuit(0);
  EXPECT_EQ(m.record(0).probe_backoff, 0);
  EXPECT_TRUE(m.should_probe(0));

  // The untouched domain never defers.
  EXPECT_TRUE(m.should_probe(1));
}

TEST(HealthManager, ProbeBackoffDisabledByDefault) {
  HealthManager m = make_manager();  // probe_backoff_initial == 0
  const Error err{kUnavailable, "flap"};
  (void)m.record_failure(0, err);
  m.probe_failed(0, err);
  // Historical behaviour: a probe on every heal pass.
  EXPECT_TRUE(m.should_probe(0));
  EXPECT_TRUE(m.should_probe(0));
  EXPECT_EQ(m.record(0).probe_backoff, 0);
}

TEST(HealthManager, DisabledPolicyNeverOpensPassively) {
  HealthPolicy policy;
  policy.enabled = false;
  HealthManager m = make_manager(policy);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(m.record_failure(0, Error{kUnavailable, "x"}));
  }
  EXPECT_TRUE(m.admits(0));
  // Forced opens still work with passive breaking disabled.
  EXPECT_TRUE(m.open_circuit(0, "drain"));
  EXPECT_FALSE(m.admits(0));
}

// ----------------------------------------------------- RO fixture helpers

/// Fake domain that counts applies and keeps the last accepted slice.
class CountingAdapter final : public adapters::DomainAdapter {
 public:
  CountingAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}

  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override {
    if (applies_ == 0) return view_;
    return last_applied_;
  }
  Result<void> apply(const model::Nffg& desired) override {
    ++applies_;
    last_applied_ = desired;
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return applies_;
  }
  [[nodiscard]] std::uint64_t applies() const noexcept { return applies_; }
  [[nodiscard]] const model::Nffg& last_applied() const noexcept {
    return last_applied_;
  }

 private:
  std::string name_;
  model::Nffg view_;
  model::Nffg last_applied_;
  std::uint64_t applies_ = 0;
};

/// Domain i of an n-domain line: customer SAP sap<i>, stitching SAPs
/// x<i-1> / x<i> towards the neighbours.
model::Nffg line_domain_view(std::size_t i, std::size_t n) {
  const std::string bb = "bb" + std::to_string(i);
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(g.add_bisbis(model::make_bisbis(bb, {32, 32768, 400}, 6)).ok());
  model::attach_sap(g, "sap" + std::to_string(i), bb, 0, {1000, 0.1});
  if (i > 0) {
    model::attach_sap(g, "x" + std::to_string(i - 1), bb, 1, {1000, 0.5});
  }
  if (i + 1 < n) {
    model::attach_sap(g, "x" + std::to_string(i), bb, 2, {1000, 0.5});
  }
  return g;
}

struct LineStack {
  std::unique_ptr<ResourceOrchestrator> ro;
  std::vector<CountingAdapter*> domains;
  std::vector<adapters::FaultyAdapter*> faults;
};

LineStack make_line_ro(std::size_t n, RoOptions options = {}) {
  LineStack stack;
  stack.ro = std::make_unique<ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog(), options);
  for (std::size_t i = 0; i < n; ++i) {
    auto counting = std::make_unique<CountingAdapter>(
        "d" + std::to_string(i), line_domain_view(i, n));
    stack.domains.push_back(counting.get());
    auto faulty = std::make_unique<adapters::FaultyAdapter>(std::move(counting));
    stack.faults.push_back(faulty.get());
    EXPECT_TRUE(stack.ro->add_domain(std::move(faulty)).ok());
  }
  EXPECT_TRUE(stack.ro->initialize().ok());
  return stack;
}

sg::ServiceGraph span_chain(const std::string& id, std::size_t from,
                            std::size_t to, const std::string& nf = "nat") {
  return sg::make_chain(id, "sap" + std::to_string(from), {nf},
                        "sap" + std::to_string(to), 10, 500);
}

// --------------------------------------------------- passive circuit open

TEST(DomainHealth, RepeatedTransientPushFailuresOpenTheCircuit) {
  LineStack stack = make_line_ro(2);
  ASSERT_TRUE(stack.ro->deploy(span_chain("svc", 0, 1)).ok());

  stack.faults[0]->fail_next(100, kUnavailable);
  // Each failed deploy counts two observations against d0 (the commit
  // push and the rollback push); the default threshold (3) trips during
  // the second deploy's commit push.
  EXPECT_FALSE(stack.ro->deploy(span_chain("b", 0, 1, "dpi")).ok());
  EXPECT_EQ(stack.ro->health().health(0), DomainHealth::kDegraded);
  EXPECT_FALSE(stack.ro->deploy(span_chain("b", 0, 1, "dpi")).ok());
  EXPECT_EQ(stack.ro->health().health(0), DomainHealth::kDown);
  EXPECT_EQ(stack.ro->metrics().counter("ro.health.circuit_opens"), 1u);

  // Masked: bb0 advertises zero capacity, links touching it carry zero
  // bandwidth, so new embeddings route around the dead domain.
  const model::BisBis* bb0 = stack.ro->global_view().find_bisbis("bb0");
  EXPECT_EQ(bb0->capacity.cpu, 0);
  for (const model::Link* link : stack.ro->global_view().links_of("bb0")) {
    EXPECT_EQ(link->attrs.bandwidth, 0.0);
  }

  // Down domains leave the fan-out: pushes succeed again (gated, no
  // retry storm), and d0 sees no further operations.
  const std::uint64_t ops_before = stack.faults[0]->operations_seen();
  ASSERT_TRUE(stack.ro->resync_domains().ok());
  EXPECT_EQ(stack.faults[0]->operations_seen(), ops_before);
  EXPECT_GE(stack.ro->metrics().counter("ro.health.pushes_gated"), 1u);
}

TEST(DomainHealth, ForcedOpenGatesFetchesAndRefresh) {
  LineStack stack = make_line_ro(2);
  ASSERT_TRUE(stack.ro->open_circuit("d0", "operator drain").ok());
  EXPECT_EQ(stack.ro->open_circuit("d0", "again").error().code,
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(stack.ro->open_circuit("nope", "x").error().code,
            ErrorCode::kNotFound);

  // sync_statuses succeeds for the survivors and never touches d0.
  const std::uint64_t ops_before = stack.faults[0]->operations_seen();
  EXPECT_TRUE(stack.ro->sync_statuses().ok());
  EXPECT_EQ(stack.faults[0]->operations_seen(), ops_before);
  // refresh_domain refuses a domain behind an open circuit.
  EXPECT_EQ(stack.ro->refresh_domain("d0").error().code, kUnavailable);
}

// ------------------------------------------------------ kill-a-domain e2e

TEST(DomainHealth, KillADomainHealsRecoverableAndDegradesStranded) {
  LineStack stack = make_line_ro(3);
  // "rec": SAPs on the survivors, NF pinned onto bb0 — recoverable once
  // bb0 dies because only its NF (not an endpoint) lives there.
  ASSERT_TRUE(stack.ro
                  ->deploy_pinned(span_chain("rec", 1, 2, "nat"),
                                  {{"nat0", "bb0"}})
                  .ok());
  // "unrec": endpoint SAP sap0 is wired to bb0 — unrecoverable while d0
  // is down, whatever host its NF got.
  ASSERT_TRUE(stack.ro->deploy(span_chain("unrec", 0, 1, "dpi")).ok());
  // "ok": lives entirely on the survivors.
  ASSERT_TRUE(stack.ro->deploy(span_chain("ok", 1, 2, "fw-lite")).ok());
  ASSERT_EQ(stack.ro->deployments().at("rec").mapping.nf_host.at("nat0"),
            "bb0");

  ASSERT_TRUE(stack.ro->open_circuit("d0", "killed by test").ok());
  stack.faults[0]->set_failure_rate(1.0);  // probes fail: domain stays dead

  const auto healed = stack.ro->heal();
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->still_down, std::vector<std::string>{"d0"});
  EXPECT_TRUE(healed->readmitted.empty());
  EXPECT_EQ(healed->healed, std::vector<std::string>{"rec"});
  EXPECT_EQ(healed->degraded, std::vector<std::string>{"unrec"});
  // Make-before-break: the replacement was mapped and installed before the
  // stranded placement was released, so capacity never dipped in flight.
  EXPECT_EQ(healed->max_capacity_dip_cpu, 0.0);

  // "rec" was re-embedded onto a survivor.
  const auto& rec = stack.ro->deployments().at("rec");
  EXPECT_NE(rec.mapping.nf_host.at("nat0"), "bb0");
  EXPECT_FALSE(rec.degraded);
  // "unrec" is kept — degraded, not torn down — and marked failed.
  const auto& unrec = stack.ro->deployments().at("unrec");
  EXPECT_TRUE(unrec.degraded);
  ASSERT_TRUE(stack.ro->nf_status("dpi0").has_value());
  EXPECT_EQ(*stack.ro->nf_status("dpi0"), model::NfStatus::kFailed);
  // "ok" never moved.
  EXPECT_FALSE(stack.ro->deployments().at("ok").degraded);
  EXPECT_EQ(stack.ro->deployments().size(), 3u);

  // The healing pass is idempotent while the domain stays dead: "rec" is
  // already safe, "unrec" is retried and stays degraded.
  const auto again = stack.ro->heal();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->healed.empty());
  EXPECT_EQ(again->degraded, std::vector<std::string>{"unrec"});
  EXPECT_EQ(stack.ro->metrics().counter("ro.health.probe_failures"), 2u);
}

TEST(DomainHealth, ReadmissionUnmasksRecoversAndResyncsByteConsistently) {
  LineStack stack = make_line_ro(3);
  ASSERT_TRUE(stack.ro->deploy(span_chain("unrec", 0, 1, "dpi")).ok());
  ASSERT_TRUE(stack.ro->open_circuit("d0", "killed").ok());
  stack.faults[0]->set_failure_rate(1.0);
  ASSERT_TRUE(stack.ro->heal().ok());  // degrades "unrec", probe fails
  ASSERT_TRUE(stack.ro->deployments().at("unrec").degraded);

  // The domain comes back: probe succeeds, capacity is unmasked, the
  // degraded service recovers (its placement was intact all along) and the
  // returned domain is resynced to a byte-consistent slice.
  stack.faults[0]->set_failure_rate(0.0);
  const auto healed = stack.ro->heal();
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->readmitted, std::vector<std::string>{"d0"});
  EXPECT_EQ(healed->recovered, std::vector<std::string>{"unrec"});
  EXPECT_FALSE(healed->resync_error.has_value());

  EXPECT_EQ(stack.ro->health().health(0), DomainHealth::kHealthy);
  EXPECT_FALSE(stack.ro->deployments().at("unrec").degraded);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb0")->capacity.cpu, 32);
  for (const model::Link* link : stack.ro->global_view().links_of("bb0")) {
    EXPECT_GT(link->attrs.bandwidth, 0.0);
  }
  // Byte-consistent readmission: what d0 acknowledged IS its slice of the
  // current global view.
  EXPECT_EQ(model::to_json(stack.domains[0]->last_applied()).dump(),
            model::to_json(
                model::slice_for_domain(stack.ro->global_view(), "d0"))
                .dump());
  EXPECT_EQ(stack.ro->metrics().counter("ro.health.circuit_closes"), 1u);
}

TEST(DomainHealth, HealWithAdjacentDomainsDownRestoresBothOnReadmission) {
  LineStack stack = make_line_ro(3);
  // Adjacent domains down: the shared inter-domain link is masked by both.
  ASSERT_TRUE(stack.ro->open_circuit("d0", "x").ok());
  ASSERT_TRUE(stack.ro->open_circuit("d1", "x").ok());
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb0")->capacity.cpu, 0);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb1")->capacity.cpu, 0);

  // Readmit in the opposite order; wholesale remasking must restore the
  // original capacities and bandwidths exactly (no mask-order corruption).
  const auto healed = stack.ro->heal();
  ASSERT_TRUE(healed.ok());
  ASSERT_EQ(healed->readmitted.size(), 2u);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb0")->capacity.cpu, 32);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb1")->capacity.cpu, 32);
  const model::Link* xd = stack.ro->global_view().find_link("xd-x0");
  ASSERT_NE(xd, nullptr);
  EXPECT_EQ(xd->attrs.bandwidth, 1000.0);
}

TEST(DomainHealth, EmbeddingRoutesAroundDownDomain) {
  LineStack stack = make_line_ro(3);
  ASSERT_TRUE(stack.ro->open_circuit("d2", "dead edge").ok());
  // sap2 hangs off the dead bb2: no path, mapping must refuse instead of
  // landing work on a domain that cannot be programmed.
  EXPECT_FALSE(stack.ro->deploy(span_chain("far", 0, 2)).ok());
  // A chain over the survivors still deploys, and never onto bb2.
  ASSERT_TRUE(stack.ro->deploy(span_chain("near", 0, 1)).ok());
  EXPECT_NE(stack.ro->deployments().at("near").mapping.nf_host.at("nat0"),
            "bb2");
}

// ------------------------------------------------- health-aware embedding

TEST(DomainHealth, FlakyDomainDrainsAndRebalancesOnRecovery) {
  LineStack stack = make_line_ro(2);
  // One transient fetch failure against d0: degraded (streak 1), circuit
  // still closed, capacity NOT masked — only the embedding cost is biased.
  stack.faults[0]->fail_next(1, kUnavailable);
  EXPECT_FALSE(stack.ro->sync_statuses().ok());
  EXPECT_EQ(stack.ro->health().health(0), DomainHealth::kDegraded);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb0")->health_penalty, 4.0);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb0")->capacity.cpu, 32);

  // A sap0->sap1 chain traverses the same links whether its NF lands on
  // bb0 or bb1 (equal true cost); the health bias drains the flaky domain.
  ASSERT_TRUE(stack.ro->deploy(span_chain("a", 0, 1, "nat")).ok());
  EXPECT_EQ(stack.ro->deployments().at("a").mapping.nf_host.at("nat0"),
            "bb1");

  // The successful push just proved d0 alive again: penalty cleared, and
  // the next equal-cost chain re-balances back onto bb0 (id tie-break).
  EXPECT_EQ(stack.ro->health().health(0), DomainHealth::kHealthy);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb0")->health_penalty, 0.0);
  ASSERT_TRUE(stack.ro->deploy(span_chain("b", 0, 1, "dpi")).ok());
  EXPECT_EQ(stack.ro->deployments().at("b").mapping.nf_host.at("dpi0"),
            "bb0");
  // The circuit never opened: draining happened strictly below the breaker.
  EXPECT_EQ(stack.ro->metrics().counter("ro.health.circuit_opens"), 0u);
}

TEST(DomainHealth, HealProbesDegradedDomainsAndClearsPenalty) {
  LineStack stack = make_line_ro(2);
  stack.faults[0]->fail_next(1, kUnavailable);
  EXPECT_FALSE(stack.ro->sync_statuses().ok());
  ASSERT_EQ(stack.ro->health().health(0), DomainHealth::kDegraded);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb0")->health_penalty, 4.0);

  // heal() liveness-probes degraded (not just down) domains: the passing
  // probe resets the streak, so the cost bias clears without waiting for
  // the next real push to d0.
  const auto healed = stack.ro->heal();
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(stack.ro->health().health(0), DomainHealth::kHealthy);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb0")->health_penalty, 0.0);
  EXPECT_EQ(stack.ro->metrics().counter("ro.health.probes"), 1u);
  EXPECT_EQ(stack.ro->metrics().counter("ro.health.probe_failures"), 0u);

  // A probe that fails transiently feeds the same streak instead.
  stack.faults[0]->fail_next(2, kUnavailable);
  EXPECT_FALSE(stack.ro->sync_statuses().ok());  // degraded again (streak 1)
  const auto again = stack.ro->heal();           // probe fails: streak 2
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(stack.ro->health().health(0), DomainHealth::kDegraded);
  EXPECT_EQ(stack.ro->global_view().find_bisbis("bb0")->health_penalty, 8.0);
  EXPECT_EQ(stack.ro->metrics().counter("ro.health.probe_failures"), 1u);
}

}  // namespace
}  // namespace unify::core
