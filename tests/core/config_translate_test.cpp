#include "core/config_translate.h"

#include <gtest/gtest.h>

#include "catalog/nf_catalog.h"
#include "mapping/greedy_mapper.h"
#include "model/nffg_builder.h"

namespace unify::core {
namespace {

/// Single-BiS-BiS view skeleton: big node with 2 SAP-facing ports.
model::Nffg single_view() {
  model::Nffg view{"view"};
  EXPECT_TRUE(
      view.add_bisbis(model::make_bisbis("big", {32, 32768, 400}, 2)).ok());
  model::attach_sap(view, "sap1", "big", 0, {1000, 0.1});
  model::attach_sap(view, "sap2", "big", 1, {1000, 0.1});
  return view;
}

TEST(SgToConfig, WritesNfsRulesAndHints) {
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"firewall", "nat"}, "sap2", 100, 30);
  const model::Nffg view = single_view();
  auto config = service_graph_to_config(sg, view, "big");
  ASSERT_TRUE(config.ok()) << config.error().to_string();
  const model::BisBis* big = config->find_bisbis("big");
  EXPECT_EQ(big->nfs.size(), 2u);
  EXPECT_EQ(big->flowrules.size(), 3u);
  ASSERT_EQ(config->hints().size(), 1u);
  EXPECT_EQ(config->hints()[0].max_delay, 30);
  // First rule: from the port facing sap1 into firewall0's port 0.
  const model::Flowrule* first = big->find_flowrule("cl0");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->in, (model::PortRef{"big", 0}));
  EXPECT_EQ(first->out, (model::PortRef{"firewall0", 0}));
  EXPECT_EQ(first->bandwidth, 100);
  EXPECT_TRUE(config->validate().empty());
}

TEST(SgToConfig, UnknownSapRejected) {
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "ghost", {"nat"}, "sap2", 10, 30);
  auto config = service_graph_to_config(sg, single_view(), "big");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.error().code, ErrorCode::kNotFound);
}

TEST(SgToConfig, UnknownBigNodeRejected) {
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {}, "sap2", 10, 30);
  auto config = service_graph_to_config(sg, single_view(), "nope");
  ASSERT_FALSE(config.ok());
}

TEST(ConfigToSg, RoundTripsThroughConfig) {
  const sg::ServiceGraph original =
      sg::make_chain("svc", "sap1", {"firewall", "nat"}, "sap2", 100, 30);
  const model::Nffg view = single_view();
  auto config = service_graph_to_config(original, view, "big");
  ASSERT_TRUE(config.ok());
  auto translated = config_to_service_graph(*config, view, "back");
  ASSERT_TRUE(translated.ok()) << translated.error().to_string();

  const sg::ServiceGraph& sg = translated->sg;
  EXPECT_EQ(sg.nfs().size(), original.nfs().size());
  EXPECT_EQ(sg.links().size(), original.links().size());
  ASSERT_EQ(sg.requirements().size(), 1u);
  EXPECT_EQ(sg.requirements()[0].max_delay, 30);
  // Chain is intact end-to-end.
  auto seq = sg.nf_sequence_for(sg.requirements()[0]);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, (std::vector<std::string>{"firewall0", "nat1"}));
  // All NFs pinned on the big node.
  for (const auto& [nf, host] : translated->pinned_hosts) {
    EXPECT_EQ(host, "big");
  }
}

TEST(ConfigToSg, ReconstructsTaggedChains) {
  // Build a multi-node substrate, map a chain onto it with a real mapper
  // (tagged rules across nodes), then translate the configured NFFG back.
  model::Nffg substrate{"s"};
  ASSERT_TRUE(
      substrate.add_bisbis(model::make_bisbis("bb1", {8, 8192, 100}, 4)).ok());
  ASSERT_TRUE(
      substrate.add_bisbis(model::make_bisbis("bb2", {8, 8192, 100}, 4)).ok());
  model::connect(substrate, "bb1", 1, "bb2", 1, {1000, 1});
  model::attach_sap(substrate, "sap1", "bb1", 0, {1000, 0.1});
  model::attach_sap(substrate, "sap2", "bb2", 0, {1000, 0.1});

  // Force the two NFs onto different nodes via tiny capacity.
  model::Nffg tight = substrate;
  tight.find_bisbis("bb1")->capacity = {1, 1024, 10};
  tight.find_bisbis("bb2")->capacity = {1, 1024, 10};
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat", "nat"}, "sap2", 50, 100);
  const catalog::NfCatalog cat = catalog::default_catalog();
  auto mapping = mapping::GreedyMapper().map(sg, tight, cat);
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  model::Nffg configured = tight;
  ASSERT_TRUE(mapping::install_mapping(configured, sg, cat, *mapping).ok());

  auto translated = config_to_service_graph(configured, tight, "back");
  ASSERT_TRUE(translated.ok()) << translated.error().to_string();
  EXPECT_EQ(translated->sg.nfs().size(), 2u);
  EXPECT_EQ(translated->sg.links().size(), 3u);
  // Placement information survives (pins point to the real hosts).
  EXPECT_EQ(translated->pinned_hosts.at("nat0"),
            mapping->nf_host.at("nat0"));
  EXPECT_EQ(translated->pinned_hosts.at("nat1"),
            mapping->nf_host.at("nat1"));
}

TEST(ConfigToSg, PartialChainBecomesSapToSapLink) {
  // A slice may carry only this domain's segment of a chain whose head and
  // strip live in sibling domains: it must translate into a SAP-to-SAP
  // transit link, not an error.
  model::Nffg view = single_view();
  ASSERT_TRUE(view
                  .add_flowrule("big", model::Flowrule{"r", {"big", 0},
                                                       {"big", 1}, "tagX",
                                                       "", 7})
                  .ok());
  auto translated = config_to_service_graph(view, single_view(), "x");
  ASSERT_TRUE(translated.ok()) << translated.error().to_string();
  ASSERT_EQ(translated->sg.links().size(), 1u);
  const sg::SgLink& link = translated->sg.links()[0];
  EXPECT_EQ(link.id, "tagX");
  EXPECT_EQ(link.from, (model::PortRef{"sap1", 0}));
  EXPECT_EQ(link.to, (model::PortRef{"sap2", 0}));
  EXPECT_EQ(link.bandwidth, 7);
}

TEST(ConfigToSg, RejectsAmbiguousChains) {
  // Two disconnected segments with the same tag inside one slice: two
  // heads, unresolvable.
  model::Nffg view = single_view();
  ASSERT_TRUE(view
                  .add_flowrule("big", model::Flowrule{"r1", {"big", 0},
                                                       {"big", 1}, "tagX",
                                                       "", 0})
                  .ok());
  ASSERT_TRUE(view
                  .add_flowrule("big", model::Flowrule{"r2", {"big", 1},
                                                       {"big", 0}, "tagX",
                                                       "", 0})
                  .ok());
  auto translated = config_to_service_graph(view, single_view(), "x");
  ASSERT_FALSE(translated.ok());
  EXPECT_NE(translated.error().message.find("two heads"),
            std::string::npos);
}

TEST(ConfigToSg, RejectsNonSapFacingEndpoint) {
  model::Nffg view{"v"};
  ASSERT_TRUE(
      view.add_bisbis(model::make_bisbis("big", {8, 8192, 100}, 4)).ok());
  model::attach_sap(view, "sap1", "big", 0, {1000, 0.1});
  // Port 2 faces nothing.
  ASSERT_TRUE(view
                  .add_flowrule("big", model::Flowrule{"r", {"big", 0},
                                                       {"big", 2}, "", "", 0})
                  .ok());
  auto translated = config_to_service_graph(view, view, "x");
  ASSERT_FALSE(translated.ok());
  EXPECT_NE(translated.error().message.find("does not face a SAP"),
            std::string::npos);
}

}  // namespace
}  // namespace unify::core
