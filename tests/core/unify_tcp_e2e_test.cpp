// End-to-end: a real resource-orchestration process served over loopback
// TCP. A server thread runs its own reactor, accepts Unify sessions and
// gives each one a UnifyServer over the shared child virtualizer; the test
// thread drives 100+ concurrent manager sessions through UnifyClientAdapter
// over a second reactor. Every result must be byte-identical to the
// in-memory-channel path — the transport concept's core promise.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/config_translate.h"
#include "core/unify_api.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "model/nffg_json.h"
#include "proto/net/tcp.h"

namespace unify::core {
namespace {

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg leaf_view(const std::string& bb, const std::string& sap1,
                      const std::string& sap2) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {64, 65536, 800}, 4, 0.05)).ok());
  model::attach_sap(g, sap1, bb, 0, {1000, 0.1});
  model::attach_sap(g, sap2, bb, 1, {1000, 0.1});
  return g;
}

/// The same leaf orchestration domain used by the in-memory tests; both
/// sides of the comparison instantiate it with identical names so the
/// JSON-serialized views can be compared byte for byte.
struct LeafDomain {
  explicit LeafDomain(const std::string& name) {
    ro = std::make_unique<ResourceOrchestrator>(
        name, std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    EXPECT_TRUE(
        ro->add_domain(std::make_unique<AcceptAllAdapter>(
                           name + "-infra",
                           leaf_view(name + "-bb", name + "-sap", "xp")))
            .ok());
    EXPECT_TRUE(ro->initialize().ok());
    virtualizer = std::make_unique<Virtualizer>(
        *ro, ViewPolicy::kSingleBisBis, name + ".big");
  }
  std::unique_ptr<ResourceOrchestrator> ro;
  std::unique_ptr<Virtualizer> virtualizer;
};

/// One RO process behind a TCP listener: every accepted connection becomes
/// an independent Unify session over the shared virtualizer, torn down on
/// hangup via the on_disconnect hook.
class RoServer {
 public:
  RoServer() {
    std::promise<std::uint16_t> port_promise;
    auto port_future = port_promise.get_future();
    thread_ = std::thread([this, &port_promise] { run(port_promise); });
    port_ = port_future.get();
  }

  ~RoServer() {
    stop_.store(true);
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t peak_sessions() const noexcept {
    return peak_sessions_.load();
  }
  [[nodiscard]] std::uint64_t live_sessions() const noexcept {
    return live_sessions_.load();
  }

 private:
  void run(std::promise<std::uint16_t>& port_promise) {
    LeafDomain leaf("leaf");
    proto::net::Reactor reactor;
    std::map<std::uint64_t, std::unique_ptr<UnifyServer>> sessions;
    std::uint64_t next_session = 0;

    auto listener = proto::net::TcpListener::listen(
        reactor, "127.0.0.1", 0,
        [&](std::shared_ptr<proto::net::TcpTransport> conn) {
          const std::uint64_t id = next_session++;
          auto server = std::make_unique<UnifyServer>(
              *leaf.virtualizer, std::move(conn),
              "session-" + std::to_string(id));
          server->on_disconnect([this, &reactor, &sessions, id] {
            // Deferred one tick: the hook runs inside the transport's
            // close callback, the session dies outside it.
            reactor.schedule(0, [this, &sessions, id] {
              sessions.erase(id);
              live_sessions_.fetch_sub(1);
            });
          });
          sessions.emplace(id, std::move(server));
          const auto live = live_sessions_.fetch_add(1) + 1;
          std::uint64_t peak = peak_sessions_.load();
          while (peak < live && !peak_sessions_.compare_exchange_weak(
                                    peak, live)) {
          }
        });
    if (!listener.ok()) {
      ADD_FAILURE() << listener.error().to_string();
      port_promise.set_value(0);  // connect() below will fail the test
      return;
    }
    port_promise.set_value((*listener)->port());
    while (!stop_.load()) reactor.poll(10);
  }

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> live_sessions_{0};
  std::atomic<std::uint64_t> peak_sessions_{0};
  std::uint16_t port_ = 0;
};

TEST(UnifyTcpE2e, HundredConcurrentSessionsMatchInMemoryByteForByte) {
  // ---- Reference run: the in-memory channel path.
  std::string expected_initial, expected_after_edit;
  model::Nffg desired{"desired"};
  {
    SimClock clock;
    LeafDomain leaf("leaf");
    auto adapter = make_unify_link(*leaf.virtualizer, clock, "leaf");
    auto view = adapter->fetch_view();
    ASSERT_TRUE(view.ok()) << view.error().to_string();
    expected_initial = model::to_json(*view).dump();

    const sg::ServiceGraph sg =
        sg::make_chain("svc", "leaf-sap", {"nat"}, "xp", 10, 100);
    auto translated = service_graph_to_config(sg, *view, "leaf.big");
    ASSERT_TRUE(translated.ok()) << translated.error().to_string();
    desired = *translated;
    ASSERT_TRUE(adapter->apply(desired).ok());
    auto after = adapter->fetch_view();
    ASSERT_TRUE(after.ok());
    expected_after_edit = model::to_json(*after).dump();
  }
  ASSERT_NE(expected_initial, expected_after_edit);

  // ---- The same RO stack served for real, over loopback TCP.
  RoServer server;
  proto::net::Reactor reactor;
  constexpr int kSessions = 100;
  std::vector<std::unique_ptr<UnifyClientAdapter>> managers;
  for (int i = 0; i < kSessions; ++i) {
    auto conn = proto::net::TcpTransport::connect(reactor, "127.0.0.1",
                                                  server.port());
    ASSERT_TRUE(conn.ok()) << conn.error().to_string();
    managers.push_back(
        std::make_unique<UnifyClientAdapter>("leaf", std::move(*conn)));
  }

  // Every manager session reads the same child config — byte-identical to
  // what the in-memory channel produced.
  for (auto& manager : managers) {
    auto view = manager->fetch_view();
    ASSERT_TRUE(view.ok()) << view.error().to_string();
    EXPECT_EQ(model::to_json(*view).dump(), expected_initial);
  }

  // All sessions push the same edit-config concurrently: the requests are
  // all on the wire before the first acknowledgment is awaited. The server
  // serializes them (first one deploys, the rest converge as no-ops), so
  // every session must succeed.
  std::vector<adapters::PushTicket> tickets;
  for (auto& manager : managers) {
    auto ticket = manager->begin_apply(desired);
    ASSERT_TRUE(ticket.ok()) << ticket.error().to_string();
    tickets.push_back(*ticket);
  }
  for (int i = 0; i < kSessions; ++i) {
    const auto pushed =
        managers[static_cast<std::size_t>(i)]->await(tickets[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(pushed.ok()) << "session " << i << ": "
                             << pushed.error().to_string();
  }

  // Post-edit state is identical across all sessions and to the reference.
  for (auto& manager : managers) {
    auto view = manager->fetch_view();
    ASSERT_TRUE(view.ok()) << view.error().to_string();
    EXPECT_EQ(model::to_json(*view).dump(), expected_after_edit);
  }

  EXPECT_GE(server.peak_sessions(), static_cast<std::uint64_t>(kSessions));

  // Hangups reap the per-connection sessions server-side.
  managers.clear();
  for (int i = 0; i < 500 && server.live_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.live_sessions(), 0u);
}

}  // namespace
}  // namespace unify::core
