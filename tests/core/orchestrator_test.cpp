#include "core/resource_orchestrator.h"

#include <gtest/gtest.h>

#include "mapping/chain_dp_mapper.h"
#include "mapping/greedy_mapper.h"
#include "model/nffg_builder.h"

namespace unify::core {
namespace {

/// Fake domain: serves a canned view, accepts every config, records the
/// slices it was asked to apply.
class FakeAdapter final : public adapters::DomainAdapter {
 public:
  FakeAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}

  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg& desired) override {
    if (fail_next_) {
      fail_next_ = false;
      return Error{ErrorCode::kRejected, name_ + " says no"};
    }
    applied_.push_back(desired);
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return applied_.size();
  }

  void fail_next() { fail_next_ = true; }
  [[nodiscard]] const std::vector<model::Nffg>& applied() const {
    return applied_;
  }

 private:
  std::string name_;
  model::Nffg view_;
  std::vector<model::Nffg> applied_;
  bool fail_next_ = false;
};

/// One-BiS-BiS domain view with a customer SAP and a stitching SAP.
model::Nffg domain_view(const std::string& bb, const std::string& sap,
                        const std::string& stitch) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {16, 16384, 200}, 4)).ok());
  model::attach_sap(g, sap, bb, 0, {1000, 0.1});
  model::attach_sap(g, stitch, bb, 1, {1000, 0.5});
  return g;
}

std::unique_ptr<ResourceOrchestrator> two_domain_ro(
    FakeAdapter** left = nullptr, FakeAdapter** right = nullptr,
    RoOptions options = {}) {
  auto ro = std::make_unique<ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog(), options);
  auto a = std::make_unique<FakeAdapter>("d1",
                                         domain_view("bb1", "sap1", "xp"));
  auto b = std::make_unique<FakeAdapter>("d2",
                                         domain_view("bb2", "sap2", "xp"));
  if (left != nullptr) *left = a.get();
  if (right != nullptr) *right = b.get();
  EXPECT_TRUE(ro->add_domain(std::move(a)).ok());
  EXPECT_TRUE(ro->add_domain(std::move(b)).ok());
  EXPECT_TRUE(ro->initialize().ok());
  return ro;
}

TEST(Ro, InitializeMergesDomains) {
  auto ro = two_domain_ro();
  const model::Nffg& view = ro->global_view();
  EXPECT_EQ(view.bisbis().size(), 2u);
  EXPECT_EQ(view.saps().size(), 2u);          // stitch SAP consumed
  EXPECT_NE(view.find_link("xd-xp"), nullptr);  // inter-domain link
  EXPECT_EQ(ro->domain_names(),
            (std::vector<std::string>{"d1", "d2"}));
}

TEST(Ro, RejectsDuplicateDomainAndLateAdd) {
  auto ro = std::make_unique<ResourceOrchestrator>(
      "ro", std::make_shared<mapping::GreedyMapper>(),
      catalog::default_catalog());
  ASSERT_TRUE(ro->add_domain(std::make_unique<FakeAdapter>(
                                 "d1", domain_view("bb1", "sap1", "xp")))
                  .ok());
  EXPECT_EQ(ro->add_domain(std::make_unique<FakeAdapter>(
                               "d1", domain_view("bbX", "sapX", "xpX")))
                .error()
                .code,
            ErrorCode::kAlreadyExists);
  EXPECT_FALSE(ro->initialized());
  EXPECT_FALSE(ro->deploy(sg::make_chain("s", "sap1", {}, "sap2", 1, 9)).ok());
}

TEST(Ro, DeploySpansDomains) {
  FakeAdapter* left = nullptr;
  FakeAdapter* right = nullptr;
  auto ro = two_domain_ro(&left, &right);
  const auto request =
      ro->deploy(sg::make_chain("svc", "sap1", {"nat", "dpi"}, "sap2", 100,
                                50));
  ASSERT_TRUE(request.ok()) << request.error().to_string();
  EXPECT_EQ(*request, "svc");
  ASSERT_EQ(ro->deployments().size(), 1u);
  // Both domains received a slice push.
  ASSERT_FALSE(left->applied().empty());
  ASSERT_FALSE(right->applied().empty());
  // Global view carries the installed NFs and rules.
  const auto stats = ro->global_view().stats();
  EXPECT_EQ(stats.nf_count, 2u);
  EXPECT_GT(stats.flowrule_count, 0u);
}

TEST(Ro, DecompositionExpandsInGlobalView) {
  auto ro = two_domain_ro();
  const auto request = ro->deploy(
      sg::make_chain("svc", "sap1", {"secure-gw"}, "sap2", 50, 100));
  ASSERT_TRUE(request.ok()) << request.error().to_string();
  // secure-gw decomposed: the abstract NF never appears, components do.
  EXPECT_FALSE(ro->global_view().find_nf("secure-gw0").has_value());
  const auto& deployment = ro->deployments().at("svc");
  EXPECT_GE(deployment.expanded.nfs().size(), 2u);
}

TEST(Ro, DecompositionDisabledPreExpands) {
  RoOptions options;
  options.use_decomposition = false;
  auto ro = two_domain_ro(nullptr, nullptr, options);
  const auto request = ro->deploy(
      sg::make_chain("svc", "sap1", {"secure-gw"}, "sap2", 50, 100));
  ASSERT_TRUE(request.ok()) << request.error().to_string();
  EXPECT_GT(ro->metrics().counter("ro.pre_expansions"), 0u);
}

TEST(Ro, RemoveRestoresView) {
  auto ro = two_domain_ro();
  const model::Nffg before = ro->global_view();
  ASSERT_TRUE(
      ro->deploy(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50))
          .ok());
  ASSERT_TRUE(ro->remove("svc").ok());
  EXPECT_EQ(ro->global_view(), before);
  EXPECT_TRUE(ro->deployments().empty());
  EXPECT_EQ(ro->remove("svc").error().code, ErrorCode::kNotFound);
}

TEST(Ro, DuplicateRequestIdRejected) {
  auto ro = two_domain_ro();
  ASSERT_TRUE(
      ro->deploy(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50))
          .ok());
  EXPECT_EQ(
      ro->deploy(sg::make_chain("svc", "sap1", {"dpi"}, "sap2", 10, 50))
          .error()
          .code,
      ErrorCode::kAlreadyExists);
}

TEST(Ro, InfeasibleRequestLeavesNoTrace) {
  auto ro = two_domain_ro();
  const model::Nffg before = ro->global_view();
  // Demands more CPU than any node offers.
  sg::ServiceGraph sg{"huge"};
  ASSERT_TRUE(sg.add_sap("sap1").ok());
  ASSERT_TRUE(sg.add_sap("sap2").ok());
  ASSERT_TRUE(
      sg.add_nf(sg::SgNf{"x", "nat", 2, model::Resources{999, 1, 1}}).ok());
  ASSERT_TRUE(sg.add_link(sg::SgLink{"l1", {"sap1", 0}, {"x", 0}, 1}).ok());
  ASSERT_TRUE(sg.add_link(sg::SgLink{"l2", {"x", 1}, {"sap2", 0}, 1}).ok());
  EXPECT_FALSE(ro->deploy(sg).ok());
  EXPECT_EQ(ro->global_view(), before);
  EXPECT_TRUE(ro->deployments().empty());
}

TEST(Ro, DeployPinnedHonoursPlacement) {
  auto ro = two_domain_ro();
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50);
  std::map<std::string, std::string> pins{{"nat0", "bb2"}};
  ASSERT_TRUE(ro->deploy_pinned(sg, pins).ok());
  const auto placed = ro->global_view().find_nf("nat0");
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(placed->first, "bb2");
}

TEST(Ro, DeployPinnedRejectsMissingPin) {
  auto ro = two_domain_ro();
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50);
  EXPECT_FALSE(ro->deploy_pinned(sg, {}).ok());
}

TEST(Ro, DomainRejectionSurfaces) {
  FakeAdapter* left = nullptr;
  auto ro = two_domain_ro(&left);
  left->fail_next();
  const auto request =
      ro->deploy(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 50));
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.error().code, ErrorCode::kRejected);
}

TEST(Ro, MetricsAccumulate) {
  auto ro = two_domain_ro();
  ASSERT_TRUE(
      ro->deploy(sg::make_chain("a", "sap1", {"nat"}, "sap2", 10, 50)).ok());
  ASSERT_TRUE(
      ro->deploy(sg::make_chain("b", "sap1", {"dpi"}, "sap2", 10, 50)).ok());
  EXPECT_EQ(ro->metrics().counter("ro.deployments"), 2u);
  EXPECT_EQ(ro->metrics().counter("ro.slice_pushes"), 4u);
}

}  // namespace
}  // namespace unify::core
