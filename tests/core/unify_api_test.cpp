#include "core/unify_api.h"

#include <gtest/gtest.h>

#include "core/config_translate.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"

namespace unify::core {
namespace {

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg leaf_view(const std::string& bb, const std::string& sap1,
                      const std::string& sap2) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {16, 16384, 200}, 4, 0.05)).ok());
  model::attach_sap(g, sap1, bb, 0, {1000, 0.1});
  model::attach_sap(g, sap2, bb, 1, {1000, 0.1});
  return g;
}

/// A leaf orchestration domain behind its own virtualizer.
struct LeafDomain {
  explicit LeafDomain(const std::string& name) {
    ro = std::make_unique<ResourceOrchestrator>(
        name, std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    EXPECT_TRUE(
        ro->add_domain(std::make_unique<AcceptAllAdapter>(
                           name + "-infra",
                           leaf_view(name + "-bb", name + "-sap", "xp")))
            .ok());
    EXPECT_TRUE(ro->initialize().ok());
    virtualizer = std::make_unique<Virtualizer>(
        *ro, ViewPolicy::kSingleBisBis, name + ".big");
  }
  std::unique_ptr<ResourceOrchestrator> ro;
  std::unique_ptr<Virtualizer> virtualizer;
};

TEST(UnifyApi, GetConfigOverRpc) {
  SimClock clock;
  LeafDomain leaf("leaf");
  auto adapter = make_unify_link(*leaf.virtualizer, clock, "child");
  auto view = adapter->fetch_view();
  ASSERT_TRUE(view.ok()) << view.error().to_string();
  EXPECT_EQ(view->bisbis().size(), 1u);
  EXPECT_NE(view->find_bisbis("leaf.big"), nullptr);
  EXPECT_NE(view->find_sap("leaf-sap"), nullptr);
  EXPECT_GT(adapter->native_operations(), 0u);
}

TEST(UnifyApi, EditConfigOverRpcDeploys) {
  SimClock clock;
  LeafDomain leaf("leaf");
  auto adapter = make_unify_link(*leaf.virtualizer, clock, "child");
  auto view = adapter->fetch_view();
  ASSERT_TRUE(view.ok());

  const sg::ServiceGraph sg =
      sg::make_chain("svc", "leaf-sap", {"nat"}, "xp", 10, 100);
  auto desired = service_graph_to_config(sg, *view, "leaf.big");
  ASSERT_TRUE(desired.ok());
  ASSERT_TRUE(adapter->apply(*desired).ok());
  // The child RO really deployed it.
  EXPECT_EQ(leaf.ro->deployments().size(), 1u);
  EXPECT_TRUE(leaf.ro->global_view().find_nf("nat0").has_value());
}

TEST(UnifyApi, ErrorsPropagateNorth) {
  SimClock clock;
  LeafDomain leaf("leaf");
  auto adapter = make_unify_link(*leaf.virtualizer, clock, "child");
  auto view = adapter->fetch_view();
  ASSERT_TRUE(view.ok());
  // Impossible demand -> child RO fails -> error crosses the RPC boundary.
  model::Nffg desired = *view;
  ASSERT_TRUE(desired
                  .place_nf("leaf.big",
                            model::make_nf("x", "nat", {9999, 1, 1}, 2),
                            true)
                  .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("leaf.big",
                                model::Flowrule{"l", {"leaf.big", 0},
                                                {"x", 0}, "", "", 1})
                  .ok());
  auto r = adapter->apply(desired);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInfeasible);
}

TEST(UnifyApi, TwoLevelRecursion) {
  // Two leaf UNIFY domains under a parent RO, service deployed at the top
  // crosses both children — the paper's stacked multi-level control
  // hierarchy.
  SimClock clock;
  LeafDomain left("left");
  LeafDomain right("right");

  auto parent = std::make_unique<ResourceOrchestrator>(
      "parent", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  ASSERT_TRUE(
      parent->add_domain(make_unify_link(*left.virtualizer, clock, "left"))
          .ok());
  ASSERT_TRUE(
      parent->add_domain(make_unify_link(*right.virtualizer, clock, "right"))
          .ok());
  ASSERT_TRUE(parent->initialize().ok());
  // The shared stitching SAP "xp" fused the two children.
  EXPECT_NE(parent->global_view().find_link("xd-xp"), nullptr);

  const auto request = parent->deploy(sg::make_chain(
      "svc", "left-sap", {"nat", "dpi"}, "right-sap", 10, 100));
  ASSERT_TRUE(request.ok()) << request.error().to_string();

  // Every NF landed in exactly one child RO (possibly both used).
  const std::size_t total = left.ro->global_view().stats().nf_count +
                            right.ro->global_view().stats().nf_count;
  EXPECT_EQ(total, 2u);

  // Teardown propagates down the hierarchy too.
  ASSERT_TRUE(parent->remove("svc").ok());
  EXPECT_EQ(left.ro->global_view().stats().nf_count, 0u);
  EXPECT_EQ(right.ro->global_view().stats().nf_count, 0u);
}

TEST(UnifyApi, ThreeLevelRecursion) {
  SimClock clock;
  LeafDomain leaf("leaf");

  auto mid = std::make_unique<ResourceOrchestrator>(
      "mid", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  ASSERT_TRUE(
      mid->add_domain(make_unify_link(*leaf.virtualizer, clock, "leaf"))
          .ok());
  ASSERT_TRUE(mid->initialize().ok());
  auto mid_virt = std::make_unique<Virtualizer>(
      *mid, ViewPolicy::kSingleBisBis, "mid.big");

  auto top = std::make_unique<ResourceOrchestrator>(
      "top", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  ASSERT_TRUE(
      top->add_domain(make_unify_link(*mid_virt, clock, "mid")).ok());
  ASSERT_TRUE(top->initialize().ok());

  const auto request = top->deploy(
      sg::make_chain("svc", "leaf-sap", {"nat"}, "xp", 10, 100));
  ASSERT_TRUE(request.ok()) << request.error().to_string();
  // The NF bubbled all the way down to the leaf's infrastructure view.
  EXPECT_EQ(leaf.ro->global_view().stats().nf_count, 1u);
}

TEST(UnifyApi, ClientTimesOutWithoutServer) {
  SimClock clock;
  auto [north, south] = proto::make_channel_pair(clock, 100);
  UnifyClientAdapter adapter("lonely", north, /*rpc_timeout_us=*/5000);
  // `south` stays alive but mute: no server will ever answer, so only the
  // rpc deadline can end the exchange.
  auto view = adapter.fetch_view();
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code, ErrorCode::kTimeout);
}

TEST(UnifyApi, ClientFailsFastOnDeadTransport) {
  SimClock clock;
  auto [north, south] = proto::make_channel_pair(clock, 100);
  UnifyClientAdapter adapter("lonely", north, /*rpc_timeout_us=*/5000);
  south.reset();  // transport torn down entirely -> immediate send failure
  auto view = adapter.fetch_view();
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error().code, ErrorCode::kUnavailable);
}

TEST(UnifyApi, AdapterKeepAliveOwnsServer) {
  SimClock clock;
  LeafDomain leaf("leaf");
  // make_unify_link ties the server lifetime to the adapter: the adapter
  // keeps working even though nothing else references the server.
  std::unique_ptr<adapters::DomainAdapter> adapter =
      make_unify_link(*leaf.virtualizer, clock, "child");
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(adapter->fetch_view().ok());
  }
}

}  // namespace
}  // namespace unify::core
