// Snapshot isolation and epoch/stamp semantics of the sharded
// copy-on-write orchestrator state (DESIGN.md §11). Lives in the
// concurrency binary: the isolation property test runs reader threads
// against a mutating control thread and must stay clean under
// ThreadSanitizer (ENABLE_TSAN builds).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/sharded_state.h"
#include "infra/topologies.h"
#include "model/nffg_hash.h"

namespace unify::core {
namespace {

TEST(ShardedState, EpochAndStampSemantics) {
  ShardedViewState view;
  view.reset(infra::topo::line(3));
  const std::uint64_t base = view.epoch();
  // reset() floors every shard, known or not.
  EXPECT_EQ(view.shard_stamp("d1"), base);
  EXPECT_EQ(view.shard_stamp(""), base);

  view.bump("d1");
  EXPECT_EQ(view.epoch(), base + 1);
  EXPECT_EQ(view.shard_stamp("d1"), base + 1);
  EXPECT_EQ(view.shard_stamp("d2"), base);

  view.bump(std::vector<std::string>{"d1", "d2"});
  EXPECT_EQ(view.epoch(), base + 2);
  EXPECT_EQ(view.shard_stamp("d1"), base + 2);
  EXPECT_EQ(view.shard_stamp("d2"), base + 2);

  view.bump_all();
  EXPECT_EQ(view.epoch(), base + 3);
  EXPECT_EQ(view.shard_stamp("d1"), base + 3);
  EXPECT_EQ(view.shard_stamp("never-bumped"), base + 3);
}

TEST(ShardedState, MutWithoutLiveSnapshotDoesNotClone) {
  ShardedViewState view;
  view.reset(infra::topo::line(3));
  {
    const model::ViewSnapshot snap = view.snapshot();
    EXPECT_EQ(snap.epoch, view.epoch());
  }  // released before the write
  (void)view.mut();
  EXPECT_EQ(view.telemetry().clones, 0u);
  // A non-topological mut() keeps the cached index: the next snapshot
  // reuses it instead of rebuilding O(N) structure.
  (void)view.snapshot();
  EXPECT_EQ(view.telemetry().index_builds, 1u);
}

TEST(ShardedState, MutTopologyDropsTheIndex) {
  ShardedViewState view;
  view.reset(infra::topo::line(3));
  (void)view.snapshot();
  EXPECT_EQ(view.telemetry().index_builds, 1u);
  (void)view.mut_topology();
  (void)view.snapshot();
  EXPECT_EQ(view.telemetry().index_builds, 2u);
}

/// Property: a reader holding a snapshot never observes writes from later
/// epochs, no matter how many mutations land while it reads — and the CoW
/// pays exactly one clone for the whole held-snapshot episode.
TEST(ShardedStateProperty, SnapshotIsolationUnderMutation) {
  constexpr int kRounds = 64;
  constexpr int kReaders = 4;
  ShardedViewState view;
  view.reset(infra::topo::line(4));

  const model::ViewSnapshot frozen = view.snapshot();
  const std::uint64_t frozen_hash = model::content_hash(*frozen.view);
  const std::uint64_t frozen_epoch = frozen.epoch;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&frozen, frozen_hash] {
      for (int i = 0; i < kRounds; ++i) {
        EXPECT_EQ(model::content_hash(*frozen.view), frozen_hash);
        for (const auto& [id, link] : frozen.view->links()) {
          EXPECT_EQ(link.reserved, 0.0);
        }
      }
    });
  }

  // Control thread: commit-style writes racing the readers. The first
  // mut() must clone (the snapshot pins the old object); later ones write
  // the already-private copy in place.
  for (int i = 0; i < kRounds; ++i) {
    model::Nffg& live = view.mut();
    for (auto& [id, link] : live.links()) link.reserved += 1;
    view.bump("d0");
  }
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(view.telemetry().clones, 1u);
  EXPECT_EQ(view.epoch(), frozen_epoch + kRounds);
  EXPECT_EQ(model::content_hash(*frozen.view), frozen_hash);
  for (const auto& [id, link] : view.read().links()) {
    EXPECT_EQ(link.reserved, static_cast<double>(kRounds));
  }
}

}  // namespace
}  // namespace unify::core
