// Tier-1 scale smoke: a 10^4-node multi-domain substrate through the
// sharded-state machinery — snapshot acquisition, one embedding against
// the shared index, a full orchestrator deploy and a clean resync. The
// 10^5/10^6 sizes and the timing claims live in bench_scale; this test
// pins that the machinery *functions* at four orders of magnitude without
// slowing the regular test run down.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/resource_orchestrator.h"
#include "core/sharded_state.h"
#include "infra/topologies.h"
#include "mapping/greedy_mapper.h"
#include "model/nffg_merge.h"
#include "service/service_layer.h"

namespace unify::core {
namespace {

constexpr int kDomains = 8;
constexpr int kNodesPerDomain = 1250;  // 10^4 total

/// 10^4-node substrate with placement restricted to one node per domain
/// ("d<k>-bb1"), so candidate scans stay O(domains) while routing still
/// crosses the full node count.
model::Nffg substrate() {
  Rng rng(7);
  model::Nffg g = infra::topo::multi_domain(kDomains, kNodesPerDomain, 3.0,
                                            2 * kDomains, rng);
  for (auto& [id, bb] : g.bisbis()) {
    if (id.substr(id.rfind("-bb") + 3) != "1") bb.nf_types = {"switch-only"};
  }
  return g;
}

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

TEST(ScaleSmoke, SnapshotAndEmbeddingAtTenThousandNodes) {
  ShardedViewState view;
  view.reset(substrate());
  ASSERT_EQ(view.read().bisbis().size(),
            static_cast<std::size_t>(kDomains * kNodesPerDomain));

  // First snapshot builds the shared index; the second is two pointer
  // copies of the same frozen objects.
  const model::ViewSnapshot snap = view.snapshot();
  const model::ViewSnapshot again = view.snapshot();
  EXPECT_EQ(view.telemetry().index_builds, 1u);
  EXPECT_EQ(snap.view.get(), again.view.get());
  EXPECT_EQ(snap.index.get(), again.index.get());

  // One embedding against the snapshot: sap1 and sap9 both live in d0
  // (SAPs land round-robin across domains).
  const sg::ServiceGraph request =
      sg::make_chain("svc", "sap1", {"fw-lite"}, "sap9", 5, 1e9);
  const auto mapping = mapping::GreedyMapper().map(
      request, snap, catalog::default_catalog());
  ASSERT_TRUE(mapping.ok()) << mapping.error().to_string();
  EXPECT_EQ(mapping->nf_host.at("fw-lite0"), "d0-bb1");
}

TEST(ScaleSmoke, OrchestratorDeployAndCleanResync) {
  const model::Nffg full = substrate();
  auto ro = std::make_unique<ResourceOrchestrator>(
      "scale-ro", std::make_shared<mapping::GreedyMapper>(),
      catalog::default_catalog());
  for (int d = 0; d < kDomains; ++d) {
    const std::string domain = "d" + std::to_string(d);
    ASSERT_TRUE(ro->add_domain(std::make_unique<AcceptAllAdapter>(
                                   domain,
                                   model::slice_for_domain(full, domain)))
                    .ok());
  }
  ASSERT_TRUE(ro->initialize().ok());

  const auto deployed = ro->deploy(service::prefix_elements(
      sg::make_chain("svc", "sap1", {"fw-lite"}, "sap9", 5, 1e9), "svc"));
  ASSERT_TRUE(deployed.ok()) << deployed.error().to_string();

  // Steady state: every domain rides the stamp fast path — no domain is
  // re-sliced, let alone re-serialized or re-pushed.
  ASSERT_TRUE(ro->resync_domains().ok());
  const std::uint64_t skipped_before =
      ro->metrics().counter("ro.push.skipped_clean");
  ASSERT_TRUE(ro->resync_domains().ok());
  EXPECT_EQ(ro->metrics().counter("ro.push.skipped_clean"),
            skipped_before + kDomains);
}

}  // namespace
}  // namespace unify::core
