// Property tests for the HealthManager circuit breaker: seeded random
// observation/probe sequences across ~1k seeds, with the state-machine
// invariants checked after every single operation (DESIGN.md §10):
//
//   1. monotone trip — with passive breaking enabled, a transient-failure
//      streak reaching the threshold always leaves the circuit open;
//   2. no healthy→down without passing degraded, unless the open was
//      forced (open_circuit);
//   3. the per-domain generation counter never regresses;
//   4. penalty() == 0 exactly when the domain is healthy;
//   5. admits() is consistent with health() (open = down or probing).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/health_manager.h"
#include "util/rng.h"

namespace {

using namespace unify;
using core::DomainHealth;
using core::HealthManager;
using core::HealthPolicy;

constexpr std::size_t kSeeds = 1000;
constexpr std::size_t kStepsPerSeed = 120;
constexpr std::size_t kDomains = 3;

Error transient_error() {
  return Error{ErrorCode::kUnavailable, "connection refused"};
}

Error rejection_error() {
  return Error{ErrorCode::kRejected, "policy rejected the slice"};
}

/// One random op against domain `idx`. Returns true when this op forced
/// the circuit open regardless of the streak (exempt from invariant 2).
bool apply_random_op(HealthManager& manager, Rng& rng, std::size_t idx) {
  switch (rng.next_below(8)) {
    case 0:
    case 1:
    case 2:
      manager.record_failure(idx, transient_error());
      return false;
    case 3:
      manager.record_failure(idx, rejection_error());
      return false;
    case 4:
    case 5:
      manager.record_success(idx);
      return false;
    case 6:
      manager.begin_probe(idx);
      return false;
    default:
      // Rarer active transitions: forced open, probe failure, readmission.
      switch (rng.next_below(3)) {
        case 0:
          return manager.open_circuit(idx, "forced by property test");
        case 1:
          manager.probe_failed(idx, transient_error());
          return false;
        default:
          manager.close_circuit(idx);
          return false;
      }
  }
}

TEST(HealthProperty, InvariantsHoldAcrossRandomSequences) {
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(0x9e3779b97f4a7c15ULL + seed);

    HealthPolicy policy;
    policy.failure_threshold = 2 + static_cast<int>(rng.next_below(4));
    policy.degrade_after =
        1 + static_cast<int>(
                rng.next_below(static_cast<std::size_t>(
                    policy.failure_threshold - 1)));
    policy.enabled = rng.next_below(8) != 0;  // occasionally disabled

    HealthManager manager;
    manager.reset(policy, {"d0", "d1", "d2"});

    std::vector<std::uint64_t> last_generation(kDomains, 0);
    for (std::size_t step = 0; step < kStepsPerSeed; ++step) {
      const std::size_t idx = rng.next_below(kDomains);
      const DomainHealth before = manager.health(idx);
      const bool forced = apply_random_op(manager, rng, idx);
      const DomainHealth after = manager.health(idx);
      const auto& rec = manager.record(idx);

      // 2. healthy never jumps straight to down passively: the passive path
      // degrades at degrade_after (>= 1) strictly before the threshold trip
      // (failure_threshold >= 2 here), so a direct jump means a forced open.
      if (before == DomainHealth::kHealthy && after == DomainHealth::kDown) {
        EXPECT_TRUE(forced)
            << "seed " << seed << " step " << step
            << ": healthy -> down without a forced open_circuit";
      }

      for (std::size_t d = 0; d < kDomains; ++d) {
        const auto& record = manager.record(d);
        // 3. generation counters never regress.
        EXPECT_GE(record.generation, last_generation[d])
            << "seed " << seed << " step " << step << " domain " << d;
        last_generation[d] = record.generation;
        // 4. penalty is zero exactly on healthy domains.
        EXPECT_EQ(manager.penalty(d) == 0.0,
                  manager.health(d) == DomainHealth::kHealthy)
            << "seed " << seed << " step " << step << " domain " << d
            << ": penalty " << manager.penalty(d) << " vs health "
            << core::to_string(manager.health(d));
        // 5. admits() is the open-circuit gate.
        EXPECT_EQ(manager.admits(d),
                  manager.health(d) != DomainHealth::kDown &&
                      manager.health(d) != DomainHealth::kProbing)
            << "seed " << seed << " step " << step << " domain " << d;
      }

      // 1. monotone trip: with passive breaking on, a streak at or past the
      // threshold can only be observed with the circuit already open.
      if (policy.enabled &&
          rec.consecutive_failures >= policy.failure_threshold) {
        EXPECT_FALSE(manager.admits(idx))
            << "seed " << seed << " step " << step << ": streak "
            << rec.consecutive_failures << " >= threshold "
            << policy.failure_threshold << " but circuit still closed";
      }
    }
  }
}

TEST(HealthProperty, DefaultPenaltiesAreOrderedByBadness) {
  // degraded (even at the worst pre-trip streak) < probing < down, so a
  // mapper never prefers a half-open or dead domain over a merely flaky one.
  const HealthPolicy policy;
  const double worst_degraded =
      policy.penalty_per_failure *
      static_cast<double>(policy.failure_threshold - 1);
  EXPECT_GT(policy.penalty_per_failure, 0.0);
  EXPECT_LT(worst_degraded, policy.probing_penalty);
  EXPECT_LT(policy.probing_penalty, policy.down_penalty);
}

TEST(HealthProperty, PenaltyTracksStreakWhileDegraded) {
  HealthPolicy policy;
  policy.failure_threshold = 4;
  policy.degrade_after = 1;
  HealthManager manager;
  manager.reset(policy, {"d0"});

  EXPECT_EQ(manager.penalty(0), 0.0);
  manager.record_failure(0, transient_error());
  EXPECT_EQ(manager.penalty(0), policy.penalty_per_failure);
  manager.record_failure(0, transient_error());
  EXPECT_EQ(manager.penalty(0), 2 * policy.penalty_per_failure);
  // A rejection proves liveness and resets the streak, but the domain stays
  // degraded until a clean success: the penalty floors at one unit.
  manager.record_failure(0, rejection_error());
  EXPECT_EQ(manager.health(0), DomainHealth::kDegraded);
  EXPECT_EQ(manager.penalty(0), policy.penalty_per_failure);
  manager.record_success(0);
  EXPECT_EQ(manager.health(0), DomainHealth::kHealthy);
  EXPECT_EQ(manager.penalty(0), 0.0);
}

TEST(HealthProperty, UnknownIndexHasNoPenalty) {
  HealthManager manager;
  EXPECT_EQ(manager.penalty(7), 0.0);
  manager.reset(HealthPolicy{}, {"d0"});
  EXPECT_EQ(manager.penalty(1), 0.0);
}

}  // namespace
