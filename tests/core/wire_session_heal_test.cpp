// Regression for PR 9's open item: wire sessions ship with reconnect and
// heartbeat armed by default, so a load generator pointed at a real TCP
// server survives the server being killed and restarted. The client's
// ResilientSession (wire_session_options()) must observe the disconnect,
// redial through its factory once the listener is back on the same port,
// and answer get-config again — no client-side restart, no manual rewire.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "core/unify_api.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "proto/net/reactor.h"
#include "proto/net/tcp.h"
#include "proto/resilient_session.h"

namespace unify::core {
namespace {

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg leaf_view(const std::string& bb) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {64, 65536, 800}, 4, 0.05)).ok());
  model::attach_sap(g, "sap1", bb, 0, {1000, 0.1});
  model::attach_sap(g, "sap2", bb, 1, {1000, 0.1});
  return g;
}

/// A killable single-RO TCP server. Each start() runs the full stack on a
/// fresh thread; port 0 on the first start picks an ephemeral port, which
/// stop()/start() reuses so a reconnecting client's redial target stays
/// valid (SO_REUSEADDR makes the rebind immediate).
class KillableServer {
 public:
  ~KillableServer() { stop(); }

  void start() {
    ASSERT_FALSE(thread_.joinable()) << "already running";
    stop_.store(false);
    std::promise<std::uint16_t> port_promise;
    auto port_future = port_promise.get_future();
    thread_ = std::thread([this, &port_promise] { run(port_promise); });
    const std::uint16_t bound = port_future.get();
    ASSERT_NE(bound, 0) << "listen failed";
    port_ = bound;
  }

  void stop() {
    if (!thread_.joinable()) return;
    stop_.store(true);
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void run(std::promise<std::uint16_t>& port_promise) {
    ResourceOrchestrator ro("leaf",
                            std::make_shared<mapping::ChainDpMapper>(),
                            catalog::default_catalog());
    EXPECT_TRUE(ro.add_domain(std::make_unique<AcceptAllAdapter>(
                                  "leaf-infra", leaf_view("leaf-bb")))
                    .ok());
    EXPECT_TRUE(ro.initialize().ok());
    Virtualizer virtualizer(ro, ViewPolicy::kSingleBisBis, "leaf.big");

    proto::net::Reactor reactor;
    std::map<std::uint64_t, std::unique_ptr<UnifyServer>> sessions;
    std::uint64_t next_session = 0;
    auto listener = proto::net::TcpListener::listen(
        reactor, "127.0.0.1", port_,
        [&](std::shared_ptr<proto::net::TcpTransport> conn) {
          const std::uint64_t id = next_session++;
          auto server = std::make_unique<UnifyServer>(
              virtualizer, std::move(conn), "session-" + std::to_string(id));
          server->on_disconnect([&reactor, &sessions, id] {
            reactor.schedule(0, [&sessions, id] { sessions.erase(id); });
          });
          sessions.emplace(id, std::move(server));
        });
    if (!listener.ok()) {
      ADD_FAILURE() << listener.error().to_string();
      port_promise.set_value(0);
      return;
    }
    port_promise.set_value((*listener)->port());
    while (!stop_.load()) reactor.poll(10);
    // Dropping the listener and sessions closes every accepted socket:
    // from the client's side this is the server being killed.
  }

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::uint16_t port_ = 0;
};

/// Polls `reactor` until `done` holds or ~5 s pass.
template <typename Predicate>
bool poll_until(proto::net::Reactor& reactor, Predicate done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    reactor.poll(10);
  }
  return true;
}

TEST(WireSessionHeal, DefaultsArmHeartbeatAndReconnect) {
  const proto::SessionOptions options = proto::wire_session_options();
  EXPECT_TRUE(options.reconnect.enabled);
  EXPECT_EQ(options.reconnect.max_attempts, 0);  // never gives up
  EXPECT_EQ(options.heartbeat.interval_us, 1'000'000);
  EXPECT_EQ(options.heartbeat.miss_threshold, 3);
}

TEST(WireSessionHeal, KilledAndRestartedServerHealsTheSession) {
  KillableServer server;
  server.start();

  proto::net::Reactor reactor;
  auto factory = [&reactor, &server]()
      -> Result<std::shared_ptr<proto::Transport>> {
    auto conn = proto::net::TcpTransport::connect(reactor, "127.0.0.1",
                                                  server.port());
    if (!conn.ok()) return conn.error();
    return std::shared_ptr<proto::Transport>(std::move(*conn));
  };
  proto::ResilientSession session("load-0", reactor, factory,
                                  proto::wire_session_options());
  ASSERT_TRUE(poll_until(reactor, [&] { return session.connected(); }));

  const auto first = session.call_and_wait(
      "get-config", json::Value{json::Object{}}, /*timeout_us=*/5'000'000);
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  ASSERT_NE(first->get("config"), nullptr);

  // Kill the server. The client observes the hangup (every in-flight and
  // future call fails fast with kUnavailable) and enters its backoff loop.
  server.stop();
  ASSERT_TRUE(poll_until(reactor, [&] { return session.disconnects() >= 1; }));
  EXPECT_FALSE(session.connected());
  const auto while_down = session.call_and_wait(
      "get-config", json::Value{json::Object{}}, /*timeout_us=*/100'000);
  ASSERT_FALSE(while_down.ok());
  EXPECT_EQ(while_down.error().code, ErrorCode::kUnavailable);

  // Restart on the same port: the session's own redial loop heals it with
  // no help from the caller.
  server.start();
  ASSERT_TRUE(poll_until(reactor, [&] { return session.connected(); }));
  EXPECT_GE(session.reconnects(), 1u);
  EXPECT_FALSE(session.gave_up());

  const auto healed = session.call_and_wait(
      "get-config", json::Value{json::Object{}}, /*timeout_us=*/5'000'000);
  ASSERT_TRUE(healed.ok()) << healed.error().to_string();
  ASSERT_NE(healed->get("config"), nullptr);
}

}  // namespace
}  // namespace unify::core
