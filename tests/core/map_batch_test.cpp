// Batch deployment front-end: parallel speculative mapping + sequential
// commits must behave exactly like a sequential deploy() loop, stay
// deterministic under contention, and be data-race free (this whole binary
// runs under ThreadSanitizer when ENABLE_TSAN is on).
#include <gtest/gtest.h>

#include "core/resource_orchestrator.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "service/service_layer.h"

namespace unify::core {
namespace {

class FakeAdapter final : public adapters::DomainAdapter {
 public:
  FakeAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}

  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg& desired) override {
    applied_.push_back(desired);
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return applied_.size();
  }

 private:
  std::string name_;
  model::Nffg view_;
  std::vector<model::Nffg> applied_;
};

model::Nffg domain_view(const std::string& bb, const std::string& sap,
                        const std::string& stitch) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {64, 65536, 800}, 8)).ok());
  model::attach_sap(g, sap, bb, 0, {10000, 0.1});
  model::attach_sap(g, stitch, bb, 1, {10000, 0.5});
  return g;
}

std::unique_ptr<ResourceOrchestrator> two_domain_ro() {
  auto ro = std::make_unique<ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  EXPECT_TRUE(ro->add_domain(std::make_unique<FakeAdapter>(
                                 "d1", domain_view("bb1", "sap1", "xp")))
                  .ok());
  EXPECT_TRUE(ro->add_domain(std::make_unique<FakeAdapter>(
                                 "d2", domain_view("bb2", "sap2", "xp")))
                  .ok());
  EXPECT_TRUE(ro->initialize().ok());
  return ro;
}

/// `n` independent chain requests with namespaced NF/link ids (SAPs are
/// shared infrastructure, so only element ids need prefixing).
std::vector<sg::ServiceGraph> independent_requests(int n, double bw) {
  std::vector<sg::ServiceGraph> requests;
  for (int i = 0; i < n; ++i) {
    const std::string id = "svc" + std::to_string(i);
    const std::vector<std::string> types =
        (i % 2 == 0) ? std::vector<std::string>{"nat"}
                     : std::vector<std::string>{"fw-lite", "monitor"};
    requests.push_back(service::prefix_elements(
        sg::make_chain(id, "sap1", types, "sap2", bw, 500), id));
  }
  return requests;
}

TEST(MapBatch, MatchesSequentialDeployOnIndependentRequests) {
  const auto requests = independent_requests(8, 10);

  auto sequential = two_domain_ro();
  for (const sg::ServiceGraph& request : requests) {
    const auto result = sequential->deploy(request);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
  }

  auto batched = two_domain_ro();
  const auto results = batched->map_batch(requests, 4);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].error().to_string();
    EXPECT_EQ(*results[i], requests[i].id());
  }

  // Same deployments, byte-identical mappings, same resulting view.
  ASSERT_EQ(batched->deployments().size(), sequential->deployments().size());
  for (const auto& [id, deployment] : sequential->deployments()) {
    const auto it = batched->deployments().find(id);
    ASSERT_NE(it, batched->deployments().end()) << id;
    EXPECT_EQ(it->second.mapping, deployment.mapping) << id;
  }
  EXPECT_EQ(batched->global_view(), sequential->global_view());
  EXPECT_EQ(batched->metrics().counter("ro.batch_requests"), 8u);
  EXPECT_EQ(batched->metrics().counter("ro.batch_conflicts"), 0u);
}

TEST(MapBatch, ResolvesResourceConflictsDeterministically) {
  // Every chain demands 6 Gbit/s; the SAP attachment links carry 10, so
  // only one request fits: speculative mappings all pass against the
  // snapshot, commits 2..4 hit the verifier and fail their re-map.
  const auto requests = independent_requests(4, 6000);

  const auto run = [&requests] {
    auto ro = two_domain_ro();
    auto results = ro->map_batch(requests, 4);
    return std::make_pair(std::move(results),
                          ro->metrics().counter("ro.batch_conflicts"));
  };

  const auto [first, conflicts] = run();
  ASSERT_EQ(first.size(), 4u);
  EXPECT_TRUE(first[0].ok()) << first[0].error().to_string();
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_FALSE(first[i].ok()) << i;
  }
  EXPECT_GE(conflicts, 3u);

  // Deterministic: a second run ends with exactly the same outcomes,
  // independent of thread scheduling.
  const auto [second, conflicts2] = run();
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].ok(), second[i].ok()) << i;
  }
  EXPECT_EQ(conflicts, conflicts2);
}

TEST(MapBatch, ReportsPerRequestErrorsWithoutPoisoningTheBatch) {
  auto ro = two_domain_ro();
  auto requests = independent_requests(3, 10);
  requests[1] = sg::ServiceGraph{""};  // inadmissible: empty id

  const auto results = ro->map_batch(requests, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(ro->deployments().size(), 2u);
}

TEST(MapBatch, EmptyBatchAndSingleWorkerDegenerateCases) {
  auto ro = two_domain_ro();
  EXPECT_TRUE(ro->map_batch({}, 4).empty());

  const auto requests = independent_requests(3, 10);
  const auto results = ro->map_batch(requests, 1);  // sequential pool
  for (const auto& result : results) {
    EXPECT_TRUE(result.ok());
  }
}

/// TSan target: a large batch on many workers. Correctness assertions are
/// minimal on purpose — the point is exercising the concurrent speculative
/// phase (shared const view, per-slot writes) under the race detector.
TEST(MapBatch, ConcurrentSpeculationIsRaceFree) {
  auto ro = two_domain_ro();
  const auto requests = independent_requests(16, 5);
  const auto results = ro->map_batch(requests, 8);
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << i << ": "
                                 << results[i].error().to_string();
  }
  EXPECT_EQ(ro->deployments().size(), 16u);
}

}  // namespace
}  // namespace unify::core
