// Wire-chaos soak (DESIGN.md §14): 100 concurrent Unify manager sessions
// against one child virtualizer, every client transport wrapped in a
// FaultTransport drawing resets, send-side blackholes, mid-frame
// truncations and latency jitter from a per-session seeded schedule.
// Invariants:
//   - every session converges: each operation either matches the fault-free
//     golden bytes or fails cleanly (kUnavailable / kTimeout) and succeeds
//     on a later attempt — zero wedged sessions, zero give-ups;
//   - no leaked pending calls on any surviving peer;
//   - the child's final state is byte-identical to a fault-free run;
//   - a rerun under the same seed replays bit-identically (schedules,
//     failure counts, final bytes).
// Everything runs over SimClock channels, so the whole soak — timeouts,
// backoff, jitter — is deterministic. WIRE_SEED overrides the seeds:
//
//   WIRE_SEED=1234 ctest -L wire_chaos --output-on-failure
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/config_translate.h"
#include "core/unify_api.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "model/nffg_json.h"
#include "proto/fault_transport.h"
#include "support/seed_env.h"

namespace unify::core {
namespace {

constexpr int kSessions = 100;

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg leaf_view(const std::string& bb, const std::string& sap1,
                      const std::string& sap2) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis(bb, {64, 65536, 800}, 4, 0.05)).ok());
  model::attach_sap(g, sap1, bb, 0, {1000, 0.1});
  model::attach_sap(g, sap2, bb, 1, {1000, 0.1});
  return g;
}

struct LeafDomain {
  explicit LeafDomain(const std::string& name) {
    ro = std::make_unique<ResourceOrchestrator>(
        name, std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    EXPECT_TRUE(
        ro->add_domain(std::make_unique<AcceptAllAdapter>(
                           name + "-infra",
                           leaf_view(name + "-bb", name + "-sap", "xp")))
            .ok());
    EXPECT_TRUE(ro->initialize().ok());
    virtualizer = std::make_unique<Virtualizer>(
        *ro, ViewPolicy::kSingleBisBis, name + ".big");
  }
  std::unique_ptr<ResourceOrchestrator> ro;
  std::unique_ptr<Virtualizer> virtualizer;
};

/// The hostile profile of the soak. No byte corruption here: over a real
/// wire the TCP checksum absorbs it, and a corrupted-but-valid config
/// would legitimately diverge the child — the corruption path is covered
/// by the proto unit/property tests instead.
proto::FaultProfile soak_profile() {
  proto::FaultProfile profile;
  profile.reset_rate = 0.02;
  profile.blackhole_rate = 0.01;
  profile.truncate_rate = 0.01;
  profile.latency_us = 50;
  profile.jitter_us = 200;
  return profile;
}

/// Everything one chaos run produces, for golden + replay comparison.
struct RunOutcome {
  std::string child_final;  ///< the child RO's global view, serialized
  std::vector<std::vector<proto::FaultKind>> schedules;  ///< per session
  std::uint64_t faults = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t clean_failures = 0;
  bool converged = false;
};

RunOutcome run_chaos(std::uint64_t seed, const proto::FaultProfile& profile,
                     const std::string& golden_initial,
                     const std::string& golden_after,
                     const model::Nffg& desired) {
  RunOutcome outcome;
  SimClock clock;
  proto::SimDriver driver(clock);
  LeafDomain leaf("leaf");

  // Per-session seeded injectors: schedules are session-local, so the
  // interleaving of other sessions cannot shift a session's fault pattern.
  std::vector<std::shared_ptr<proto::FaultInjector>> injectors;
  std::vector<std::unique_ptr<UnifyServer>> servers;
  std::vector<std::shared_ptr<proto::Endpoint>> server_ends;
  std::vector<std::unique_ptr<UnifyClientAdapter>> managers;
  for (int i = 0; i < kSessions; ++i) {
    injectors.push_back(std::make_shared<proto::FaultInjector>(
        profile,
        seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(i + 1))));
    auto factory =
        [&, i]() -> Result<std::shared_ptr<proto::Transport>> {
      auto [north, south] = proto::make_channel_pair(clock, 100);
      server_ends.push_back(south);
      servers.push_back(std::make_unique<UnifyServer>(
          *leaf.virtualizer, south, "s" + std::to_string(i)));
      return std::static_pointer_cast<proto::Transport>(
          proto::FaultTransport::wrap(
              north, injectors[static_cast<std::size_t>(i)]));
    };
    managers.push_back(std::make_unique<UnifyClientAdapter>(
        "leaf", driver, std::move(factory), proto::SessionOptions{},
        /*rpc_timeout_us=*/200'000));
  }

  // Drives one operation across all sessions in retry rounds: a failed
  // attempt must be a clean transient, and every session must eventually
  // succeed — anything else is a wedge.
  bool all_converged = true;
  auto drive = [&](const char* what,
                   const std::function<Result<void>(int)>& op) {
    std::vector<bool> done(kSessions, false);
    int remaining = kSessions;
    for (int round = 0; round < 400 && remaining > 0; ++round) {
      for (int i = 0; i < kSessions; ++i) {
        if (done[static_cast<std::size_t>(i)]) continue;
        const auto attempt = op(i);
        if (attempt.ok()) {
          done[static_cast<std::size_t>(i)] = true;
          --remaining;
          continue;
        }
        ++outcome.clean_failures;
        EXPECT_TRUE(attempt.error().code == ErrorCode::kUnavailable ||
                    attempt.error().code == ErrorCode::kTimeout)
            << what << " session " << i
            << " failed uncleanly: " << attempt.error().to_string();
      }
      clock.advance(100'000);  // reconnect backoffs run out here
    }
    EXPECT_EQ(remaining, 0) << what << ": wedged sessions";
    all_converged = all_converged && remaining == 0;
  };

  drive("fetch-initial", [&](int i) -> Result<void> {
    auto view = managers[static_cast<std::size_t>(i)]->fetch_view();
    if (!view.ok()) return view.error();
    EXPECT_EQ(model::to_json(*view).dump(), golden_initial)
        << "session " << i << " read diverged bytes";
    return Result<void>::success();
  });
  drive("edit-config", [&](int i) -> Result<void> {
    return managers[static_cast<std::size_t>(i)]->apply(desired);
  });
  drive("fetch-final", [&](int i) -> Result<void> {
    auto view = managers[static_cast<std::size_t>(i)]->fetch_view();
    if (!view.ok()) return view.error();
    EXPECT_EQ(model::to_json(*view).dump(), golden_after)
        << "session " << i << " post-edit bytes diverged";
    return Result<void>::success();
  });

  for (int i = 0; i < kSessions; ++i) {
    const auto& session = managers[static_cast<std::size_t>(i)]->session();
    EXPECT_FALSE(session.gave_up()) << "session " << i;
    if (const auto* peer = session.peer()) {
      EXPECT_EQ(peer->pending_calls(), 0u)
          << "session " << i << " leaked pending calls";
    }
    outcome.reconnects += session.reconnects();
    outcome.schedules.push_back(
        injectors[static_cast<std::size_t>(i)]->schedule());
    outcome.faults +=
        injectors[static_cast<std::size_t>(i)]->faults_injected();
  }
  outcome.child_final = model::to_json(leaf.ro->global_view()).dump();
  outcome.converged = all_converged;
  return outcome;
}

TEST(WireChaos, HundredFaultySessionsConvergeAndReplayBitIdentically) {
  // Golden bytes from the plain in-memory channel path (no faults).
  std::string golden_initial, golden_after;
  model::Nffg desired{"desired"};
  {
    SimClock clock;
    LeafDomain leaf("leaf");
    auto adapter = make_unify_link(*leaf.virtualizer, clock, "leaf");
    auto view = adapter->fetch_view();
    ASSERT_TRUE(view.ok()) << view.error().to_string();
    golden_initial = model::to_json(*view).dump();
    const sg::ServiceGraph sg =
        sg::make_chain("svc", "leaf-sap", {"nat"}, "xp", 10, 100);
    auto translated = service_graph_to_config(sg, *view, "leaf.big");
    ASSERT_TRUE(translated.ok()) << translated.error().to_string();
    desired = *translated;
    ASSERT_TRUE(adapter->apply(desired).ok());
    auto after = adapter->fetch_view();
    ASSERT_TRUE(after.ok());
    golden_after = model::to_json(*after).dump();
  }
  ASSERT_NE(golden_initial, golden_after);

  // Fault-free reference for the child's final state under 100 sessions.
  const RunOutcome clean = run_chaos(0, proto::FaultProfile{},
                                     golden_initial, golden_after, desired);
  ASSERT_TRUE(clean.converged);
  ASSERT_EQ(clean.faults, 0u);

  for (const std::uint64_t seed :
       test::soak_seeds("WIRE_SEED", {20260809u})) {
    UNIFY_SEED_TRACE("WIRE_SEED", seed);
    const RunOutcome first =
        run_chaos(seed, soak_profile(), golden_initial, golden_after,
                  desired);
    ASSERT_TRUE(first.converged);
    // The profile actually bit: faults fired and sessions reconnected,
    // yet the child ended byte-identical to the fault-free run.
    EXPECT_GT(first.faults, 0u);
    EXPECT_GT(first.reconnects, 0u);
    EXPECT_EQ(first.child_final, clean.child_final);

    // Bit-identical replay under the fixed seed: same fault schedules,
    // same failure count, same final bytes.
    const RunOutcome second =
        run_chaos(seed, soak_profile(), golden_initial, golden_after,
                  desired);
    EXPECT_EQ(first.schedules, second.schedules);
    EXPECT_EQ(first.clean_failures, second.clean_failures);
    EXPECT_EQ(first.child_final, second.child_final);
  }
}

}  // namespace
}  // namespace unify::core
