// Pins the push path's two-tier dirty tracking (DESIGN.md §11) to the
// byte-equality criterion it replaced: a domain's push is skipped exactly
// when the serialized slice is byte-identical to the last acknowledged
// one. The stamp fast path and the content-hash path are exercised
// separately, and every skip/push decision is cross-checked against a
// full to_json comparison.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/resource_orchestrator.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "model/nffg_json.h"
#include "model/nffg_merge.h"
#include "service/service_layer.h"

namespace unify::core {
namespace {

class RecordingAdapter final : public adapters::DomainAdapter {
 public:
  RecordingAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}

  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg& desired) override {
    applied_.push_back(desired);
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return applied_.size();
  }
  [[nodiscard]] const std::vector<model::Nffg>& applied() const noexcept {
    return applied_;
  }

 private:
  std::string name_;
  model::Nffg view_;
  std::vector<model::Nffg> applied_;
};

/// d1 carries sap1 AND sap3 so a chain can live wholly inside it; d2
/// carries sap2. "xp" stitches the domains.
model::Nffg left_view() {
  model::Nffg g{"bb1-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis("bb1", {64, 65536, 800}, 8)).ok());
  model::attach_sap(g, "sap1", "bb1", 0, {10000, 0.1});
  model::attach_sap(g, "xp", "bb1", 1, {10000, 0.5});
  model::attach_sap(g, "sap3", "bb1", 2, {10000, 0.1});
  return g;
}

model::Nffg right_view() {
  model::Nffg g{"bb2-view"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis("bb2", {64, 65536, 800}, 8)).ok());
  model::attach_sap(g, "sap2", "bb2", 0, {10000, 0.1});
  model::attach_sap(g, "xp", "bb2", 1, {10000, 0.5});
  return g;
}

struct Fixture {
  std::unique_ptr<ResourceOrchestrator> ro;
  RecordingAdapter* left = nullptr;
  RecordingAdapter* right = nullptr;

  Fixture() {
    ro = std::make_unique<ResourceOrchestrator>(
        "ro", std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    auto l = std::make_unique<RecordingAdapter>("d1", left_view());
    auto r = std::make_unique<RecordingAdapter>("d2", right_view());
    left = l.get();
    right = r.get();
    EXPECT_TRUE(ro->add_domain(std::move(l)).ok());
    EXPECT_TRUE(ro->add_domain(std::move(r)).ok());
    EXPECT_TRUE(ro->initialize().ok());
  }

  /// The byte-equality criterion the hash tiers stand in for: is the
  /// domain's current slice byte-identical to the last acknowledged push?
  [[nodiscard]] bool byte_clean(const RecordingAdapter& adapter) const {
    if (adapter.applied().empty()) return false;
    return model::to_json_string(model::slice_for_domain(
               ro->global_view(), adapter.domain())) ==
           model::to_json_string(adapter.applied().back());
  }

  [[nodiscard]] std::uint64_t skipped() {
    return ro->metrics().counter("ro.push.skipped_clean");
  }
};

sg::ServiceGraph cross_domain_chain() {
  return service::prefix_elements(
      sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 500), "svc");
}

TEST(HashDirtyTracking, CleanResyncSkipsEveryDomain) {
  Fixture fx;
  ASSERT_TRUE(fx.ro->deploy(cross_domain_chain()).ok());
  const std::size_t left_pushes = fx.left->applied().size();
  const std::size_t right_pushes = fx.right->applied().size();
  ASSERT_GE(left_pushes, 1u);
  ASSERT_GE(right_pushes, 1u);
  // The acked slices match the view the RO pushed from.
  EXPECT_TRUE(fx.byte_clean(*fx.left));
  EXPECT_TRUE(fx.byte_clean(*fx.right));

  // Nothing changed: the stamp fast path skips both domains and nothing
  // reaches the adapters.
  const std::uint64_t skipped_before = fx.skipped();
  ASSERT_TRUE(fx.ro->resync_domains().ok());
  EXPECT_EQ(fx.skipped(), skipped_before + 2);
  EXPECT_EQ(fx.left->applied().size(), left_pushes);
  EXPECT_EQ(fx.right->applied().size(), right_pushes);
}

TEST(HashDirtyTracking, StampBumpWithUnchangedContentSkipsViaHash) {
  Fixture fx;
  ASSERT_TRUE(fx.ro->deploy(cross_domain_chain()).ok());
  ASSERT_TRUE(fx.ro->resync_domains().ok());
  const std::size_t left_pushes = fx.left->applied().size();

  // refresh_domain() re-reads unchanged capacities: it bumps d1's shard
  // stamp (defeating the fast path) while leaving the slice bytes
  // untouched — exactly the case the hash tier exists for.
  ASSERT_TRUE(fx.ro->refresh_domain("d1").ok());
  ASSERT_TRUE(fx.byte_clean(*fx.left));
  const std::uint64_t skipped_before = fx.skipped();
  ASSERT_TRUE(fx.ro->resync_domains().ok());
  EXPECT_EQ(fx.skipped(), skipped_before + 2);
  EXPECT_EQ(fx.left->applied().size(), left_pushes);

  // The hash skip re-armed the stamp fast path: the next resync must not
  // even pay the slice+hash for d1 (same skip counter, no push).
  ASSERT_TRUE(fx.ro->resync_domains().ok());
  EXPECT_EQ(fx.skipped(), skipped_before + 4);
}

TEST(HashDirtyTracking, MutationRepushesExactlyTheTouchedDomains) {
  Fixture fx;
  ASSERT_TRUE(fx.ro->deploy(cross_domain_chain()).ok());
  const std::size_t left_pushes = fx.left->applied().size();
  const std::size_t right_pushes = fx.right->applied().size();

  // A chain wholly inside d1: only d1's slice changes.
  const auto intra = service::prefix_elements(
      sg::make_chain("svc2", "sap1", {"fw-lite"}, "sap3", 10, 500), "svc2");
  ASSERT_TRUE(fx.ro->deploy(intra).ok());
  EXPECT_EQ(fx.left->applied().size(), left_pushes + 1);
  EXPECT_EQ(fx.right->applied().size(), right_pushes);

  // The decision agrees with byte equality on both sides: d1's pushed
  // slice really changed, d2's current slice still matches its last ack.
  EXPECT_NE(model::to_json_string(fx.left->applied().back()),
            model::to_json_string(fx.left->applied()[left_pushes - 1]));
  EXPECT_TRUE(fx.byte_clean(*fx.right));
  EXPECT_TRUE(fx.byte_clean(*fx.left));
}

}  // namespace
}  // namespace unify::core
