#include "util/strings.h"

#include <gtest/gtest.h>

namespace unify::strings {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, RoundTripsSplit) {
  const std::vector<std::string> pieces{"sap1", "fw", "nat", "sap2"};
  EXPECT_EQ(join(pieces, "->"), "sap1->fw->nat->sap2");
  EXPECT_EQ(split(join(pieces, ";"), ';'), pieces);
}

TEST(Join, Empty) { EXPECT_EQ(join({}, ","), ""); }

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("bisbis-3", "bisbis"));
  EXPECT_FALSE(starts_with("bis", "bisbis"));
  EXPECT_TRUE(ends_with("domain.sdn", ".sdn"));
  EXPECT_FALSE(ends_with("sdn", "domain.sdn"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(FormatDouble, IntegralWithoutDecimals) {
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(-17.0), "-17");
  EXPECT_EQ(format_double(0.0), "0");
}

TEST(FormatDouble, Fractional) {
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(1.5), "1.5");
}

}  // namespace
}  // namespace unify::strings
