#include "util/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace unify::log {
namespace {

struct Captured {
  Level level;
  std::string line;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_level(Level::kTrace);
    set_sink([this](Level level, std::string_view line) {
      records_.push_back({level, std::string(line)});
    });
  }
  void TearDown() override {
    set_sink(nullptr);
    set_level(Level::kWarn);
  }
  std::vector<Captured> records_;
};

TEST_F(LogTest, WritesTagAndMessage) {
  write(Level::kInfo, "orch.ro", "mapped 3 NFs");
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].line, "orch.ro: mapped 3 NFs");
  EXPECT_EQ(records_[0].level, Level::kInfo);
}

TEST_F(LogTest, LevelFiltersRecords) {
  set_level(Level::kError);
  write(Level::kInfo, "t", "dropped");
  write(Level::kError, "t", "kept");
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].line, "t: kept");
}

TEST_F(LogTest, MacroStreamsValues) {
  UNIFY_LOG(kDebug, "adapter.sdn") << "installed " << 4 << " flowrules";
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].line, "adapter.sdn: installed 4 flowrules");
}

TEST_F(LogTest, MacroSkipsDisabledLevels) {
  set_level(Level::kWarn);
  UNIFY_LOG(kTrace, "t") << "invisible";
  EXPECT_TRUE(records_.empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(to_string(Level::kTrace), "trace");
  EXPECT_STREQ(to_string(Level::kError), "error");
}

}  // namespace
}  // namespace unify::log
