#include "util/sim_clock.h"

#include <gtest/gtest.h>

#include <vector>

namespace unify {
namespace {

TEST(SimClock, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
}

TEST(SimClock, AdvanceMovesTime) {
  SimClock clock;
  clock.advance(250);
  EXPECT_EQ(clock.now(), 250);
  clock.advance(0);
  EXPECT_EQ(clock.now(), 250);
}

TEST(SimClock, TimerFiresAtDeadline) {
  SimClock clock;
  SimTime fired_at = -1;
  clock.schedule_in(100, [&] { fired_at = clock.now(); });
  clock.advance(99);
  EXPECT_EQ(fired_at, -1);
  clock.advance(1);
  EXPECT_EQ(fired_at, 100);
}

TEST(SimClock, TimersFireInDeadlineOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.schedule_in(30, [&] { order.push_back(3); });
  clock.schedule_in(10, [&] { order.push_back(1); });
  clock.schedule_in(20, [&] { order.push_back(2); });
  clock.advance(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimClock, EqualDeadlinesFifo) {
  SimClock clock;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    clock.schedule_in(10, [&order, i] { order.push_back(i); });
  }
  clock.advance(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClock, TimerSeesAdvancedNow) {
  SimClock clock;
  clock.advance(5);
  SimTime seen = -1;
  clock.schedule_in(10, [&] { seen = clock.now(); });
  clock.advance(20);
  EXPECT_EQ(seen, 15);
  EXPECT_EQ(clock.now(), 25);
}

TEST(SimClock, TimersCanScheduleTimers) {
  SimClock clock;
  std::vector<SimTime> fire_times;
  clock.schedule_in(10, [&] {
    fire_times.push_back(clock.now());
    clock.schedule_in(10, [&] { fire_times.push_back(clock.now()); });
  });
  clock.advance(30);
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 20}));
}

TEST(SimClock, RunUntilIdleDrainsChains) {
  SimClock clock;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) clock.schedule_in(7, chain);
  };
  clock.schedule_in(7, chain);
  const std::size_t fired = clock.run_until_idle();
  EXPECT_EQ(fired, 5u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(clock.now(), 35);
  EXPECT_EQ(clock.pending_timers(), 0u);
}

TEST(SimClock, NegativeDelayClampsToNow) {
  SimClock clock;
  clock.advance(50);
  SimTime fired_at = -1;
  clock.schedule_in(-20, [&] { fired_at = clock.now(); });
  clock.advance(0);
  EXPECT_EQ(fired_at, 50);
}

TEST(SimClock, PendingTimersCount) {
  SimClock clock;
  clock.schedule_in(1, [] {});
  clock.schedule_in(2, [] {});
  EXPECT_EQ(clock.pending_timers(), 2u);
  clock.advance(1);
  EXPECT_EQ(clock.pending_timers(), 1u);
}

}  // namespace
}  // namespace unify
