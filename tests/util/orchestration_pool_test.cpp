// Unit tests for the shared orchestration pool: per-batch joins, caller
// participation, nesting, and the one-pool-per-process telemetry. Runs in
// the concurrency_tests binary (and therefore under TSan when enabled).
#include "util/orchestration_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace unify::util {
namespace {

std::vector<std::function<void()>> counting_tasks(std::size_t n,
                                                  std::atomic<int>& counter) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  return tasks;
}

TEST(OrchestrationPool, RunsEveryTaskExactlyOnce) {
  OrchestrationPool pool(4);
  std::vector<int> hits(64, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { ++hits[i]; });
  }
  const std::size_t runners = pool.run_all(std::move(tasks));
  EXPECT_GE(runners, 1u);
  EXPECT_LE(runners, 4u);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "task " << i;
  }
  EXPECT_EQ(pool.batches(), 1u);
  EXPECT_EQ(pool.tasks_run(), 64u);
}

TEST(OrchestrationPool, EmptyBatchIsANoOp) {
  OrchestrationPool pool(4);
  EXPECT_EQ(pool.run_all({}), 0u);
  EXPECT_FALSE(pool.started());  // no reason to spawn threads
}

TEST(OrchestrationPool, MaxParallelOneRunsInlineOnCaller) {
  OrchestrationPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(8);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < ran_on.size(); ++i) {
    tasks.push_back([&ran_on, i] { ran_on[i] = std::this_thread::get_id(); });
  }
  EXPECT_EQ(pool.run_all(std::move(tasks), 1), 1u);
  for (const auto id : ran_on) EXPECT_EQ(id, caller);
  // Inline batches never touch the lazily spawned threads.
  EXPECT_FALSE(pool.started());
}

TEST(OrchestrationPool, SingleWorkerPoolNeverSpawnsThreads) {
  OrchestrationPool pool(1);
  std::atomic<int> counter{0};
  EXPECT_EQ(pool.run_all(counting_tasks(16, counter)), 1u);
  EXPECT_EQ(counter.load(), 16);
  EXPECT_FALSE(pool.started());
}

TEST(OrchestrationPool, ThreadsSpawnLazilyOnFirstParallelBatch) {
  OrchestrationPool pool(3);
  EXPECT_FALSE(pool.started());
  std::atomic<int> counter{0};
  pool.run_all(counting_tasks(8, counter));
  EXPECT_EQ(counter.load(), 8);
  EXPECT_TRUE(pool.started());
}

TEST(OrchestrationPool, NestedBatchesDoNotDeadlock) {
  // Every outer task fans out an inner batch on the SAME pool — the shape
  // of a service-layer batch whose wave triggers an RO map_batch. Caller
  // participation guarantees progress even with all workers busy.
  OrchestrationPool pool(2);
  std::atomic<int> inner_total{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&pool, &inner_total] {
      pool.run_all(counting_tasks(8, inner_total));
    });
  }
  pool.run_all(std::move(outer));
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(OrchestrationPool, ConcurrentClientsJoinOnlyTheirOwnBatch) {
  // Several threads push batches into one small pool at once; each
  // run_all() must return only after ITS tasks completed, never blocking
  // on another client's queue (the reason wait_idle() wasn't usable).
  OrchestrationPool pool(2);
  constexpr int kClients = 4;
  constexpr int kRounds = 20;
  constexpr std::size_t kTasks = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &failures] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<int> mine{0};
        pool.run_all(counting_tasks(kTasks, mine));
        if (mine.load() != static_cast<int>(kTasks)) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(pool.tasks_run(),
            static_cast<std::uint64_t>(kClients * kRounds) * kTasks);
  EXPECT_EQ(pool.batches(), static_cast<std::uint64_t>(kClients * kRounds));
}

TEST(OrchestrationPool, ProcessPoolIsOneInstance) {
  OrchestrationPool& a = OrchestrationPool::process_pool();
  OrchestrationPool& b = OrchestrationPool::process_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.workers(), 1u);

  // Arbitrarily many batches on the shared instance never construct
  // another pool.
  const std::uint64_t constructed = OrchestrationPool::constructed();
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    a.run_all(counting_tasks(8, counter));
  }
  EXPECT_EQ(counter.load(), 80);
  EXPECT_EQ(OrchestrationPool::constructed(), constructed);
}

}  // namespace
}  // namespace unify::util
