#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace unify::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { ++counter; });
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 3);
  pool.wait_idle();  // idle pool: returns immediately
}

TEST(ThreadPool, ZeroWorkersStillRuns) {
  ThreadPool pool(0);  // clamped to one worker
  EXPECT_GE(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ParallelWritesToDisjointSlotsAreSafe) {
  // The map_batch() usage pattern: N tasks each writing its own slot.
  ThreadPool pool(4);
  std::vector<int> slots(64, 0);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    pool.submit([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  pool.wait_idle();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPool, ClampWorkers) {
  EXPECT_EQ(ThreadPool::clamp_workers(4, 100), 4u);
  EXPECT_EQ(ThreadPool::clamp_workers(8, 3), 3u);   // capped at jobs
  EXPECT_GE(ThreadPool::clamp_workers(0, 100), 1u); // 0 = hardware
  EXPECT_EQ(ThreadPool::clamp_workers(0, 0), 1u);   // never zero
}

}  // namespace
}  // namespace unify::util
