#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace unify {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextIntSingleValueRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_int(5, 5), 5);
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // uniform mean
}

TEST(Rng, NextDoubleRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double(10.0, 20.0);
    EXPECT_GE(d, 10.0);
    EXPECT_LT(d, 20.0);
  }
}

TEST(Rng, BernoulliRoughFrequency) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, ZeroAndOneProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

}  // namespace
}  // namespace unify
