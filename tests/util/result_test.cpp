#include "util/result.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace unify {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Error{ErrorCode::kNotFound, "nf7"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "nf7");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ErrorCodeAndMessageConstructor) {
  Result<std::string> r{ErrorCode::kTimeout, "rpc 12"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().to_string(), "timeout: rpc 12");
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 9);
}

TEST(Result, VoidSuccessAndError) {
  Result<void> good = Result<void>::success();
  EXPECT_TRUE(good.ok());
  Result<void> bad{ErrorCode::kRejected, "domain d1 said no"};
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kRejected);
}

TEST(Result, ArrowOperator) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  EXPECT_EQ(r->size(), 3u);
}

Result<int> half(int x) {
  if (x % 2 != 0) return Error{ErrorCode::kInvalidArgument, "odd"};
  return x / 2;
}

Result<int> quarter(int x) {
  UNIFY_ASSIGN_OR_RETURN(int h, half(x));
  UNIFY_ASSIGN_OR_RETURN(int q, half(h));
  return q;
}

Result<void> check_even(int x) {
  UNIFY_RETURN_IF_ERROR(half(x));
  return Result<void>::success();
}

TEST(Result, AssignOrReturnPropagates) {
  auto ok = quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  auto bad = quarter(6);  // 6/2=3, then 3 is odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kInvalidArgument);
}

TEST(Result, ReturnIfErrorPropagates) {
  EXPECT_TRUE(check_even(4).ok());
  EXPECT_FALSE(check_even(5).ok());
}

TEST(Result, ErrorCodeNames) {
  EXPECT_STREQ(to_string(ErrorCode::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(ErrorCode::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(to_string(ErrorCode::kProtocol), "protocol");
}

TEST(Result, ErrorEquality) {
  Error a{ErrorCode::kNotFound, "x"};
  Error b{ErrorCode::kNotFound, "x"};
  Error c{ErrorCode::kNotFound, "y"};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(MultiError, StartsEmpty) {
  MultiError errors;
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(errors.size(), 0u);
}

TEST(MultiError, SingleEntryPreservesCode) {
  // Callers assert on codes (kRejected vs kUnavailable decides retry and
  // rollback behaviour), so a lone failure must keep its code verbatim.
  MultiError errors;
  errors.add("d1", Error{ErrorCode::kRejected, "says no"});
  const Error e = errors.to_error();
  EXPECT_EQ(e.code, ErrorCode::kRejected);
  EXPECT_EQ(e.message, "[d1] says no");
}

TEST(MultiError, AggregatesAllScopes) {
  MultiError errors;
  errors.add("d1", Error{ErrorCode::kUnavailable, "down"});
  errors.add("d3", Error{ErrorCode::kTimeout, "slow"});
  EXPECT_EQ(errors.size(), 2u);
  const Error e = errors.to_error();
  EXPECT_EQ(e.code, ErrorCode::kUnavailable);  // first entry's code
  EXPECT_NE(e.message.find("2 failures"), std::string::npos);
  EXPECT_NE(e.message.find("[d1]"), std::string::npos);
  EXPECT_NE(e.message.find("[d3]"), std::string::npos);
  EXPECT_NE(e.message.find("timeout"), std::string::npos);
}

TEST(MultiError, EntriesAreInspectable) {
  MultiError errors;
  errors.add("left", Error{ErrorCode::kNotFound, "gone"});
  ASSERT_EQ(errors.entries().size(), 1u);
  EXPECT_EQ(errors.entries().front().first, "left");
  EXPECT_EQ(errors.entries().front().second.code, ErrorCode::kNotFound);
}

}  // namespace
}  // namespace unify
