// Golden equivalence: submitting the Fig. 1 demo services as ONE batch
// must leave the orchestration stack in a byte-identical state to
// submitting them one by one — same deployed NFFG (serialized JSON), same
// per-request mappings, same data-plane behaviour. This pins the whole
// batch pipeline (service layer wave -> merged edit-config -> virtualizer
// component wave -> RO map_batch) to the sequential semantics.
#include <gtest/gtest.h>

#include "model/nffg_json.h"
#include "service/fig1.h"

namespace unify::service {
namespace {

/// The demo waves: three modest chains on distinct routes (no resource
/// contention), ids chosen so the virtualizer's deterministic component
/// order matches the submission order.
std::vector<sg::ServiceGraph> demo_services() {
  return {
      sg::make_chain("a", "sap1", {"firewall", "nat"}, "sap2", 50, 40),
      sg::make_chain("b", "sap2", {"nat"}, "sap3", 20, 60),
      sg::make_chain("c", "sap3", {"monitor"}, "sap1", 10, 60),
  };
}

void settle(Fig1Stack& s) {
  s.clock.run_until_idle();
  ASSERT_TRUE(s.ro->sync_statuses().ok());
  s.clock.run_until_idle();
}

TEST(BatchGolden, BatchEqualsSequentialByteForByte) {
  const auto services = demo_services();

  // Reference: one submit() per service, in order.
  auto sequential = make_fig1_stack();
  ASSERT_TRUE(sequential.ok());
  Fig1Stack& seq = **sequential;
  for (const sg::ServiceGraph& service : services) {
    const auto result = seq.service_layer->submit(service);
    ASSERT_TRUE(result.ok())
        << service.id() << ": " << result.error().to_string();
  }
  settle(seq);

  // Candidate: the same services as one wave.
  auto batched = make_fig1_stack();
  ASSERT_TRUE(batched.ok());
  Fig1Stack& bat = **batched;
  const auto results = bat.service_layer->submit_batch(services);
  ASSERT_EQ(results.size(), services.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << services[i].id() << ": " << results[i].error().to_string();
    EXPECT_EQ(*results[i], services[i].id());
  }
  settle(bat);

  // The deployed global NFFG serializes byte-identically.
  EXPECT_EQ(model::to_json_string(bat.ro->global_view()),
            model::to_json_string(seq.ro->global_view()));

  // Same deployments with byte-identical mappings.
  ASSERT_EQ(bat.ro->deployments().size(), seq.ro->deployments().size());
  for (const auto& [id, deployment] : seq.ro->deployments()) {
    const auto it = bat.ro->deployments().find(id);
    ASSERT_NE(it, bat.ro->deployments().end()) << id;
    EXPECT_EQ(it->second.mapping, deployment.mapping) << id;
  }

  // Both stacks carry traffic end to end on every route, and every
  // request reports the SAME readiness (status semantics are per-domain;
  // equivalence, not absolute readiness, is what batch must preserve).
  for (Fig1Stack* s : {&seq, &bat}) {
    for (const auto& [from, to] : std::vector<std::pair<std::string,
                                                        std::string>>{
             {"sap1", "sap2"}, {"sap2", "sap3"}, {"sap3", "sap1"}}) {
      ASSERT_TRUE(end_to_end_trace(*s, from, to).ok()) << from << "->" << to;
    }
  }
  for (const sg::ServiceGraph& service : services) {
    const auto seq_ready = seq.service_layer->is_ready(service.id());
    const auto bat_ready = bat.service_layer->is_ready(service.id());
    ASSERT_TRUE(seq_ready.ok() && bat_ready.ok()) << service.id();
    EXPECT_EQ(*bat_ready, *seq_ready) << service.id();
  }

  // The wave committed in one push: no fallback, no rollbacks.
  telemetry::Registry& m = bat.service_layer->metrics();
  EXPECT_EQ(m.counter("service.batch.requests"), services.size());
  EXPECT_EQ(m.counter("service.batch.admitted"), services.size());
  EXPECT_EQ(m.counter("service.batch.committed"), services.size());
  EXPECT_EQ(m.counter("service.batch.rolled_back"), 0u);
  EXPECT_EQ(m.counter("service.batch.wave_fallbacks"), 0u);
  ASSERT_NE(m.find_summary("service.batch.wall_ms"), nullptr);

  // Removing the batch-deployed services restores a pristine plane, just
  // like sequential removal does.
  for (Fig1Stack* s : {&seq, &bat}) {
    for (const sg::ServiceGraph& service : services) {
      ASSERT_TRUE(s->service_layer->remove(service.id()).ok()) << service.id();
    }
    s->clock.run_until_idle();
    EXPECT_EQ(s->ro->global_view().stats().nf_count, 0u);
    EXPECT_EQ(s->ro->global_view().stats().flowrule_count, 0u);
  }
  EXPECT_EQ(model::to_json_string(bat.ro->global_view()),
            model::to_json_string(seq.ro->global_view()));
}

TEST(BatchGolden, MixedOutcomeBatchMatchesSequentialSubmits) {
  // A wave with an invalid member (unknown SAP) and an infeasible member
  // (absurd bandwidth): per-request outcomes and the final deployed state
  // must match what a sequential submit() loop produces.
  std::vector<sg::ServiceGraph> services = demo_services();
  services.push_back(
      sg::make_chain("d", "sap1", {"nat"}, "no-such-sap", 10, 60));
  services.push_back(sg::make_chain("e", "sap2", {"nat"}, "sap1", 1e9, 60));

  auto sequential = make_fig1_stack();
  ASSERT_TRUE(sequential.ok());
  Fig1Stack& seq = **sequential;
  std::vector<bool> seq_ok;
  for (const sg::ServiceGraph& service : services) {
    seq_ok.push_back(seq.service_layer->submit(service).ok());
  }
  seq.clock.run_until_idle();

  auto batched = make_fig1_stack();
  ASSERT_TRUE(batched.ok());
  Fig1Stack& bat = **batched;
  const auto results = bat.service_layer->submit_batch(services);
  bat.clock.run_until_idle();

  ASSERT_EQ(results.size(), seq_ok.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].ok(), seq_ok[i]) << services[i].id();
  }
  EXPECT_EQ(model::to_json_string(bat.ro->global_view()),
            model::to_json_string(seq.ro->global_view()));

  // Same bookkeeping as sequential: the validation reject ("d") is never
  // recorded, the commit-time failure ("e") is recorded as failed.
  EXPECT_EQ(bat.service_layer->requests().count("d"), 0u);
  const auto it = bat.service_layer->requests().find("e");
  ASSERT_NE(it, bat.service_layer->requests().end());
  EXPECT_EQ(it->second.state, RequestState::kFailed);
  EXPECT_FALSE(it->second.error.empty());
  telemetry::Registry& m = bat.service_layer->metrics();
  EXPECT_EQ(m.counter("service.batch.requests"), services.size());
  EXPECT_EQ(m.counter("service.batch.admitted"), services.size() - 1);
  EXPECT_EQ(m.counter("service.batch.committed"), 3u);
  EXPECT_EQ(m.counter("service.batch.rolled_back"), 1u);
  EXPECT_EQ(m.counter("service.batch.wave_fallbacks"), 1u);
}

TEST(BatchGolden, BisectionFallbackMatchesSequentialByteForByte) {
  // A larger wave with poison scattered through it: two infeasible members
  // (absurd bandwidth) at non-adjacent positions force the fallback to
  // actually bisect — merged half-waves, recursion, singleton isolation —
  // instead of degenerating into one sequential replay. Outcomes and final
  // state must STILL be byte-identical to a sequential submit() loop.
  const std::vector<std::pair<std::string, std::string>> routes{
      {"sap1", "sap2"}, {"sap2", "sap3"}, {"sap3", "sap1"}};
  std::vector<sg::ServiceGraph> services;
  for (int i = 0; i < 9; ++i) {
    const auto& [from, to] = routes[static_cast<std::size_t>(i) % 3];
    const double bandwidth = (i == 2 || i == 6) ? 1e9 : 5;
    services.push_back(sg::make_chain("w" + std::to_string(i), from,
                                      {i % 2 == 0 ? "nat" : "monitor"}, to,
                                      bandwidth, 60));
  }

  auto sequential = make_fig1_stack();
  ASSERT_TRUE(sequential.ok());
  Fig1Stack& seq = **sequential;
  std::vector<bool> seq_ok;
  for (const sg::ServiceGraph& service : services) {
    seq_ok.push_back(seq.service_layer->submit(service).ok());
  }
  seq.clock.run_until_idle();

  auto batched = make_fig1_stack();
  ASSERT_TRUE(batched.ok());
  Fig1Stack& bat = **batched;
  const auto results = bat.service_layer->submit_batch(services);
  bat.clock.run_until_idle();

  // Per-request outcome parity with the sequential loop: exactly the two
  // poisonous members fail.
  ASSERT_EQ(results.size(), seq_ok.size());
  std::size_t failed = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].ok(), seq_ok[i]) << services[i].id();
    if (!results[i].ok()) ++failed;
  }
  EXPECT_EQ(failed, 2u);

  // Byte-identical deployed state, byte-identical mappings.
  EXPECT_EQ(model::to_json_string(bat.ro->global_view()),
            model::to_json_string(seq.ro->global_view()));
  ASSERT_EQ(bat.ro->deployments().size(), seq.ro->deployments().size());
  for (const auto& [id, deployment] : seq.ro->deployments()) {
    const auto it = bat.ro->deployments().find(id);
    ASSERT_NE(it, bat.ro->deployments().end()) << id;
    EXPECT_EQ(it->second.mapping, deployment.mapping) << id;
  }

  // The fallback went through bisection, not a sequential replay: merged
  // half-wave probes happened, at least one merged sub-wave landed, and
  // the bookkeeping adds up (7 committed, 2 rolled back).
  telemetry::Registry& m = bat.service_layer->metrics();
  EXPECT_EQ(m.counter("service.batch.wave_fallbacks"), 1u);
  EXPECT_GE(m.counter("service.batch.bisect_probes"), 2u);
  EXPECT_GE(m.counter("service.batch.bisect_waves"), 1u);
  EXPECT_EQ(m.counter("service.batch.committed"), 7u);
  EXPECT_EQ(m.counter("service.batch.rolled_back"), 2u);

  // The failed members are recorded exactly like sequential failures.
  for (const std::string id : {"w2", "w6"}) {
    const auto it = bat.service_layer->requests().find(id);
    ASSERT_NE(it, bat.service_layer->requests().end());
    EXPECT_EQ(it->second.state, RequestState::kFailed);
  }
}

}  // namespace
}  // namespace unify::service
