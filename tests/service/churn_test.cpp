// Randomized lifecycle churn over the full Fig. 1 stack: services come and
// go (submit / update / remove) for many rounds while global invariants
// must hold after every operation — the long-running-operation story a
// two-minute conference demo cannot show.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "service/fig1.h"
#include "util/rng.h"

namespace unify::service {
namespace {

const std::vector<std::string> kNfPool{"nat",     "monitor", "fw-lite",
                                       "firewall", "compressor"};
const std::vector<std::pair<std::string, std::string>> kRoutes{
    {"sap1", "sap2"}, {"sap2", "sap3"}, {"sap3", "sap1"}};

sg::ServiceGraph random_service(Rng& rng, const std::string& id,
                                std::size_t route) {
  const int len = static_cast<int>(rng.next_int(1, 2));
  std::vector<std::string> types;
  for (int i = 0; i < len; ++i) {
    types.push_back(kNfPool[rng.next_below(kNfPool.size())]);
  }
  return sg::make_chain(id, kRoutes[route].first, types,
                        kRoutes[route].second,
                        static_cast<double>(rng.next_int(5, 40)), 60);
}

class ChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnTest, InvariantsHoldAcrossRandomLifecycles) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  Rng rng(GetParam());

  // route index -> live request id. Each route has a distinct ingress SAP,
  // so live chains never fight over ingress classification (DESIGN.md §7).
  std::map<std::size_t, std::string> live;
  int sequence = 0;
  int deployed_ops = 0;

  for (int round = 0; round < 60; ++round) {
    const std::size_t route = rng.next_below(kRoutes.size());
    const auto occupant = live.find(route);
    const int action = static_cast<int>(rng.next_int(0, 2));

    if (occupant == live.end()) {
      // Route free: try to deploy.
      const std::string id = "svc" + std::to_string(sequence++);
      const auto submitted =
          s.service_layer->submit(random_service(rng, id, route));
      if (submitted.ok()) {
        live[route] = id;
        ++deployed_ops;
      }
    } else if (action == 0) {
      ASSERT_TRUE(s.service_layer->remove(occupant->second).ok());
      live.erase(occupant);
    } else if (action == 1) {
      // Elastic update: new random shape under the same id.
      const auto updated = s.service_layer->update(
          random_service(rng, occupant->second, route));
      // An infeasible update must keep the previous version running; both
      // outcomes are legal here.
      (void)updated;
    }
    s.clock.run_until_idle();

    // ---- invariants after every operation ----
    const auto problems = s.ro->global_view().validate();
    ASSERT_TRUE(problems.empty())
        << "round " << round << ": " << problems.front();
    // Deployment count at the RO matches the service layer's live set.
    EXPECT_EQ(s.ro->deployments().size(), live.size()) << "round " << round;
    // Every live service still carries traffic end to end.
    for (const auto& [r, id] : live) {
      const auto trace =
          end_to_end_trace(s, kRoutes[r].first, kRoutes[r].second);
      ASSERT_TRUE(trace.ok()) << "round " << round << " service " << id
                              << ": " << trace.error().to_string();
    }
    // Routes without a live service must NOT carry traffic.
    for (std::size_t r = 0; r < kRoutes.size(); ++r) {
      if (live.count(r) != 0) continue;
      EXPECT_FALSE(
          end_to_end_trace(s, kRoutes[r].first, kRoutes[r].second).ok())
          << "round " << round << " ghost path on route " << r;
    }
  }
  // The run must have actually exercised deployments.
  EXPECT_GT(deployed_ops, 5);

  // Final teardown leaves a pristine data plane.
  for (const auto& [r, id] : live) {
    ASSERT_TRUE(s.service_layer->remove(id).ok());
  }
  EXPECT_EQ(s.ro->global_view().stats().nf_count, 0u);
  EXPECT_EQ(s.ro->global_view().stats().flowrule_count, 0u);
  for (const auto& [id, link] : s.ro->global_view().links()) {
    EXPECT_EQ(link.reserved, 0.0) << link.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

}  // namespace
}  // namespace unify::service
