// The production churn soak (`ctest -L churn`): a 10-sim-minute seeded
// scenario — Poisson arrivals, a flash crowd, rolling domain maintenance
// and a migration storm — drives >= 10k requests through the full stack
// (service layer -> unify link -> virtualizer -> RO -> faulty domains)
// with the cross-layer SLO invariants asserted after every pump:
//
//   * no unbounded queue growth (the admission bound holds at all times)
//   * shed-before-deadline-violation (nothing deploys past its deadline)
//   * occupancy conservation (no domain ever sees an overcommitted slice,
//     link reservations never go negative)
//   * heal-never-shrinks (maintenance healing is make-before-break)
//
// The whole run is bit-deterministic per seed; CHURN_SEED overrides the
// seed for replaying a red CI run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "service/churn_driver.h"
#include "support/seed_env.h"

namespace unify::service {
namespace {

constexpr std::size_t kQueueCapacity = 128;

infra::churn::ScenarioSpec soak_spec() {
  infra::churn::ScenarioSpec spec;
  spec.horizon_us = 600'000'000;  // 10 sim-minutes
  spec.arrival_rate_hz = 20;      // ~12k base arrivals over the horizon
  // One sustained flash crowd and one short spike.
  spec.flash_crowds.push_back({120'000'000, 30'000'000, 3.0});
  spec.flash_crowds.push_back({400'000'000, 5'000'000, 6.0});
  // Rolling maintenance: each of the three domains goes down for 20
  // sim-seconds, staggered so exactly one is down at a time.
  infra::churn::add_rolling_maintenance(spec, 200'000'000, 20'000'000,
                                        30'000'000);
  // Migration storms: one during the quiet tail, one right after the
  // maintenance run while the substrate is still settling.
  spec.storms.push_back({300'000'000, 0.3});
  spec.storms.push_back({500'000'000, 0.2});
  return spec;
}

AdmissionPolicy soak_policy() {
  AdmissionPolicy policy;
  policy.queue_capacity = kQueueCapacity;
  policy.max_wave = 32;
  return policy;
}

struct SoakOutcome {
  ChurnRunReport report;
  std::size_t max_queue_seen = 0;
  bool aborted = false;
};

SoakOutcome run_soak(std::uint64_t seed) {
  SoakOutcome outcome;
  ChurnStack stack(3, soak_policy());
  std::size_t tick = 0;
  const auto on_tick = [&](ChurnStack& s, SimTime now,
                           const PumpReport& pumped) {
    (void)pumped;
    ++tick;
    // SLO 1 — bounded queue: the admission bound holds after EVERY pump,
    // flash crowds included.
    const std::size_t depth = s.layer->queue_depth();
    outcome.max_queue_seen = std::max(outcome.max_queue_seen, depth);
    EXPECT_LE(depth, kQueueCapacity) << "queue outgrew its bound at t=" << now;
    // SLO 3 — occupancy conservation, checked incrementally: no domain
    // overcommitted so far, and no link over-released in the global view.
    EXPECT_FALSE(s.overcommit_seen) << "overcommitted slice by t=" << now;
    if (tick % 16 == 0) {  // the full view scan is O(links), sample it
      for (const auto& [id, link] : s.ro->global_view().links()) {
        EXPECT_GE(link.reserved, -1e-9) << "link " << id << " at t=" << now;
      }
    }
    if (::testing::Test::HasFailure()) outcome.aborted = true;
  };
  outcome.report = run_churn(stack, soak_spec(), seed, 1'000'000, on_tick);
  return outcome;
}

// One test covers both contracts — SLOs on the first run, bit-determinism
// against a second identical run — so `ctest -L churn` costs two soak
// executions, not three (the soak dominates the label's wall clock,
// especially under TSan).
TEST(ChurnSoak, TenThousandRequestsMeetSlosAndReplayBitIdentical) {
  for (const std::uint64_t seed :
       unify::test::soak_seeds("CHURN_SEED", {1})) {
    UNIFY_SEED_TRACE("CHURN_SEED", seed);
    const SoakOutcome outcome = run_soak(seed);
    ASSERT_FALSE(outcome.aborted) << "per-tick SLO violated";
    const ChurnRunReport& report = outcome.report;

    // Scale: the scenario really drove >= 10k requests end to end.
    EXPECT_GE(report.arrivals, 10'000u);
    EXPECT_GE(report.deployed, 5'000u);
    EXPECT_GT(report.removed, 0u);
    EXPECT_GT(report.migrations, 0u);

    // SLO 1 — no unbounded queue growth: bounded at every tick, and the
    // overload was real (the bound was actually exercised, so "bounded"
    // is not vacuous).
    EXPECT_LE(report.max_queue_depth, kQueueCapacity);

    // SLO 2 — shed-before-deadline-violation: every arrival carries a
    // deadline <= 5s; anything that could not deploy in time was shed, so
    // no deployed request ever waited longer than the deadline ceiling.
    EXPECT_LE(report.adm_latency_p99_ms, 5000.0);
    EXPECT_GT(report.shed, 0u) << "overload never triggered shedding";
    EXPECT_LT(report.shed_rate, 0.9) << "shedding ate the whole workload";

    // SLO 3 — occupancy conservation.
    EXPECT_FALSE(report.overcommit);

    // SLO 4 — heal-never-shrinks (make-before-break maintenance exits).
    EXPECT_FALSE(report.heal_shrank);

    std::printf(
        "[churn soak] seed=%llu arrivals=%zu deployed=%zu shed=%zu "
        "(rate %.3f) migrations=%zu p50=%.2fms p99=%.2fms max_queue=%zu "
        "peak_deployed=%zu\n",
        static_cast<unsigned long long>(seed), report.arrivals,
        report.deployed, report.shed, report.shed_rate, report.migrations,
        report.adm_latency_p50_ms, report.adm_latency_p99_ms,
        report.max_queue_depth, report.peak_deployed);

    // Same (spec, seed) must reproduce the externally observable end state
    // byte for byte — request states, deployment count, every aggregate.
    const SoakOutcome replay = run_soak(seed);
    ASSERT_FALSE(replay.aborted);
    EXPECT_EQ(replay.report.signature, report.signature);
    EXPECT_EQ(replay.report.arrivals, report.arrivals);
    EXPECT_EQ(replay.report.deployed, report.deployed);
    EXPECT_EQ(replay.report.shed, report.shed);
    EXPECT_EQ(replay.report.migrations, report.migrations);
    EXPECT_EQ(replay.max_queue_seen, outcome.max_queue_seen);
    EXPECT_DOUBLE_EQ(replay.report.adm_latency_p50_ms,
                     report.adm_latency_p50_ms);
    EXPECT_DOUBLE_EQ(replay.report.adm_latency_p99_ms,
                     report.adm_latency_p99_ms);
  }
}

}  // namespace
}  // namespace unify::service
