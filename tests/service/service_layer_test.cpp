#include "service/service_layer.h"

#include <gtest/gtest.h>

#include <set>

#include "adapters/faulty_adapter.h"
#include "core/config_translate.h"
#include "core/resource_orchestrator.h"
#include "core/unify_api.h"
#include "core/virtualizer.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"

namespace unify::service {
namespace {

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

/// Minimal one-RO stack: service layer -> unify -> virtualizer -> RO ->
/// fake infra domain.
struct Stack {
  Stack() {
    model::Nffg view{"infra-view"};
    EXPECT_TRUE(
        view.add_bisbis(model::make_bisbis("bb", {16, 16384, 200}, 4)).ok());
    model::attach_sap(view, "sap1", "bb", 0, {1000, 0.1});
    model::attach_sap(view, "sap2", "bb", 1, {1000, 0.1});
    ro = std::make_unique<core::ResourceOrchestrator>(
        "ro", std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    EXPECT_TRUE(ro->add_domain(std::make_unique<AcceptAllAdapter>(
                                   "infra", std::move(view)))
                    .ok());
    EXPECT_TRUE(ro->initialize().ok());
    virtualizer = std::make_unique<core::Virtualizer>(
        *ro, core::ViewPolicy::kSingleBisBis);
    layer = std::make_unique<ServiceLayer>(
        core::make_unify_link(*virtualizer, clock, "north"));
  }
  SimClock clock;
  std::unique_ptr<core::ResourceOrchestrator> ro;
  std::unique_ptr<core::Virtualizer> virtualizer;
  std::unique_ptr<ServiceLayer> layer;
};

/// Same stack, but with a FaultyAdapter between the service layer and the
/// unify link so push/fetch failures can be injected at the exact seam a
/// lossy control channel would occupy.
struct FaultyStack {
  FaultyStack() {
    model::Nffg view{"infra-view"};
    EXPECT_TRUE(
        view.add_bisbis(model::make_bisbis("bb", {16, 16384, 200}, 4)).ok());
    model::attach_sap(view, "sap1", "bb", 0, {1000, 0.1});
    model::attach_sap(view, "sap2", "bb", 1, {1000, 0.1});
    ro = std::make_unique<core::ResourceOrchestrator>(
        "ro", std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    EXPECT_TRUE(ro->add_domain(std::make_unique<AcceptAllAdapter>(
                                   "infra", std::move(view)))
                    .ok());
    EXPECT_TRUE(ro->initialize().ok());
    virtualizer = std::make_unique<core::Virtualizer>(
        *ro, core::ViewPolicy::kSingleBisBis);
    auto faulty = std::make_unique<adapters::FaultyAdapter>(
        core::make_unify_link(*virtualizer, clock, "north"));
    fault = faulty.get();
    layer = std::make_unique<ServiceLayer>(std::move(faulty));
  }
  SimClock clock;
  std::unique_ptr<core::ResourceOrchestrator> ro;
  std::unique_ptr<core::Virtualizer> virtualizer;
  adapters::FaultyAdapter* fault = nullptr;
  std::unique_ptr<ServiceLayer> layer;
};

TEST(PrefixElements, PrefixesEverythingButSaps) {
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "a", {"nat"}, "b", 10, 50);
  const sg::ServiceGraph prefixed = prefix_elements(sg, "r1");
  EXPECT_TRUE(prefixed.has_sap("a"));
  EXPECT_NE(prefixed.find_nf("r1.nat0"), nullptr);
  EXPECT_EQ(prefixed.find_nf("nat0"), nullptr);
  EXPECT_NE(prefixed.find_link("r1.cl0"), nullptr);
  ASSERT_EQ(prefixed.requirements().size(), 1u);
  EXPECT_EQ(prefixed.requirements()[0].id, "r1.e2e");
  EXPECT_TRUE(prefixed.validate().empty());
}

TEST(ServiceLayer, SubmitDeploysAndTracks) {
  Stack stack;
  const auto id = stack.layer->submit(
      sg::make_chain("svc", "sap1", {"nat", "dpi"}, "sap2", 10, 100));
  ASSERT_TRUE(id.ok()) << id.error().to_string();
  EXPECT_EQ(*id, "svc");
  EXPECT_EQ(stack.layer->requests().at("svc").state,
            RequestState::kDeployed);
  // NFs deployed below under the prefixed ids.
  EXPECT_TRUE(stack.ro->global_view().find_nf("svc.nat0").has_value());
  EXPECT_TRUE(stack.ro->global_view().find_nf("svc.dpi1").has_value());
}

TEST(ServiceLayer, StatusesRollUp) {
  Stack stack;
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  auto statuses = stack.layer->nf_statuses("svc");
  ASSERT_TRUE(statuses.ok()) << statuses.error().to_string();
  ASSERT_EQ(statuses->size(), 1u);
  EXPECT_EQ(statuses->count("nat0"), 1u);  // unprefixed for the user
  auto ready = stack.layer->is_ready("svc");
  ASSERT_TRUE(ready.ok());
  EXPECT_FALSE(*ready);  // fake infra never reports running
}

TEST(ServiceLayer, MultipleIndependentServices) {
  Stack stack;
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("a", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("b", "sap1", {"dpi"}, "sap2", 10,
                                          100))
                  .ok());
  EXPECT_EQ(stack.ro->deployments().size(), 2u);
  EXPECT_TRUE(stack.ro->global_view().find_nf("a.nat0").has_value());
  EXPECT_TRUE(stack.ro->global_view().find_nf("b.dpi0").has_value());

  ASSERT_TRUE(stack.layer->remove("a").ok());
  EXPECT_FALSE(stack.ro->global_view().find_nf("a.nat0").has_value());
  EXPECT_TRUE(stack.ro->global_view().find_nf("b.dpi0").has_value());
  EXPECT_EQ(stack.layer->requests().at("a").state, RequestState::kRemoved);
}

TEST(ServiceLayer, RejectsBadRequests) {
  Stack stack;
  // Unknown SAP.
  auto bad_sap = stack.layer->submit(
      sg::make_chain("x", "ghost", {"nat"}, "sap2", 10, 100));
  ASSERT_FALSE(bad_sap.ok());
  EXPECT_EQ(bad_sap.error().code, ErrorCode::kNotFound);
  // Empty id.
  EXPECT_FALSE(
      stack.layer->submit(sg::make_chain("", "sap1", {}, "sap2", 1, 9)).ok());
  // Duplicate id.
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("dup", "sap1", {}, "sap2", 1, 100))
                  .ok());
  EXPECT_EQ(stack.layer
                ->submit(sg::make_chain("dup", "sap1", {}, "sap2", 1, 100))
                .error()
                .code,
            ErrorCode::kAlreadyExists);
}

TEST(ServiceLayer, FailedDeploymentRollsBack) {
  Stack stack;
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("ok", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  // Infeasible: resource demand beyond the substrate.
  sg::ServiceGraph greedy{"greedy"};
  ASSERT_TRUE(greedy.add_sap("sap1").ok());
  ASSERT_TRUE(greedy.add_sap("sap2").ok());
  ASSERT_TRUE(greedy
                  .add_nf(sg::SgNf{"x", "nat", 2,
                                   model::Resources{9999, 1, 1}})
                  .ok());
  ASSERT_TRUE(
      greedy.add_link(sg::SgLink{"l1", {"sap1", 0}, {"x", 0}, 1}).ok());
  ASSERT_TRUE(
      greedy.add_link(sg::SgLink{"l2", {"x", 1}, {"sap2", 0}, 1}).ok());
  auto failed = stack.layer->submit(greedy);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(stack.layer->requests().at("greedy").state,
            RequestState::kFailed);
  EXPECT_FALSE(stack.layer->requests().at("greedy").error.empty());
  // The earlier service is untouched.
  EXPECT_EQ(stack.ro->deployments().size(), 1u);
  EXPECT_TRUE(stack.ro->global_view().find_nf("ok.nat0").has_value());
  // And the layer still works.
  EXPECT_TRUE(stack.layer
                  ->submit(sg::make_chain("after", "sap1", {"dpi"}, "sap2",
                                          10, 100))
                  .ok());
}

TEST(ServiceLayer, RemoveUnknownFails) {
  Stack stack;
  EXPECT_EQ(stack.layer->remove("nope").error().code, ErrorCode::kNotFound);
  EXPECT_EQ(stack.layer->nf_statuses("nope").error().code,
            ErrorCode::kNotFound);
}

TEST(ServiceLayer, ViewIsSingleBisBis) {
  Stack stack;
  auto view = stack.layer->view();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->bisbis().size(), 1u);
  EXPECT_EQ(view->saps().size(), 2u);
}

// ------------------------------------------------- rollback-failure paths

TEST(ServiceLayer, FailedRestoreSurfacesRollbackFailure) {
  FaultyStack stack;
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("ok", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  // The deployment push AND the rollback push both fail: the layer must
  // say so instead of silently reporting the original error only.
  stack.fault->fail_next(2, ErrorCode::kUnavailable);
  const auto failed = stack.layer->submit(
      sg::make_chain("bad", "sap1", {"dpi"}, "sap2", 10, 100));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::kRollbackFailed);
  EXPECT_NE(failed.error().message.find("restore push failed"),
            std::string::npos);
  EXPECT_EQ(stack.layer->requests().at("bad").state, RequestState::kFailed);
  EXPECT_EQ(stack.layer->metrics().counter("service.rollback_failures"), 1u);

  // The cached view was dropped as suspect: the next operation re-fetches
  // ground truth and the layer keeps working.
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("after", "sap1", {"nat"}, "sap2",
                                          10, 100))
                  .ok());
  EXPECT_TRUE(stack.ro->global_view().find_nf("ok.nat0").has_value());
  EXPECT_TRUE(stack.ro->global_view().find_nf("after.nat0").has_value());
}

TEST(ServiceLayer, UpdateRestoreFailureSurfacesRollbackFailure) {
  FaultyStack stack;
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  stack.fault->fail_next(2, ErrorCode::kTimeout);
  const auto updated = stack.layer->update(
      sg::make_chain("svc", "sap1", {"nat", "dpi"}, "sap2", 10, 100));
  ASSERT_FALSE(updated.ok());
  EXPECT_EQ(updated.error().code, ErrorCode::kRollbackFailed);
  // The books keep the previous version running.
  EXPECT_EQ(stack.layer->requests().at("svc").state, RequestState::kDeployed);
  EXPECT_EQ(stack.layer->requests().at("svc").graph.nfs().size(), 1u);
  // With the channel healthy again the same update goes through.
  ASSERT_TRUE(stack.layer
                  ->update(sg::make_chain("svc", "sap1", {"nat", "dpi"},
                                          "sap2", 10, 100))
                  .ok());
  EXPECT_TRUE(stack.ro->global_view().find_nf("svc.dpi1").has_value());
}

TEST(ServiceLayer, BatchWaveRollbackFailureFailsTheWave) {
  FaultyStack stack;
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("ok", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  stack.fault->fail_next(2, ErrorCode::kUnavailable);
  const auto results = stack.layer->submit_batch(
      {sg::make_chain("a", "sap1", {"nat"}, "sap2", 10, 100),
       sg::make_chain("b", "sap1", {"dpi"}, "sap2", 10, 100)});
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, ErrorCode::kRollbackFailed);
  }
  // The wave never entered the books and the pre-batch service survives.
  EXPECT_EQ(stack.layer->requests().count("a"), 0u);
  EXPECT_EQ(stack.layer->requests().count("b"), 0u);
  EXPECT_EQ(stack.layer->metrics().counter("service.batch.rolled_back"), 2u);
  EXPECT_TRUE(stack.ro->global_view().find_nf("ok.nat0").has_value());
}

TEST(ServiceLayer, SuspectClientProbeRejectsBatchUpFront) {
  FaultyStack stack;
  stack.layer->set_client_suspect_after(1);
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("ok", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  stack.fault->fail_next(2, ErrorCode::kUnavailable);
  ASSERT_FALSE(stack.layer
                   ->submit(sg::make_chain("bad", "sap1", {"nat"}, "sap2",
                                           10, 100))
                   .ok());
  ASSERT_TRUE(stack.layer->view().ok());  // re-fetch before the batch

  // The client is suspect (two consecutive transient failures) and the
  // probe fails too: the wave is rejected before any push is attempted.
  stack.fault->fail_next(1, ErrorCode::kUnavailable);
  const auto rejected = stack.layer->submit_batch(
      {sg::make_chain("c", "sap1", {"nat"}, "sap2", 10, 100)});
  ASSERT_EQ(rejected.size(), 1u);
  ASSERT_FALSE(rejected[0].ok());
  EXPECT_EQ(rejected[0].error().code, ErrorCode::kUnavailable);
  EXPECT_NE(rejected[0].error().message.find("probe"), std::string::npos);
  EXPECT_EQ(stack.layer->metrics().counter("service.health.batches_rejected"),
            1u);
  EXPECT_EQ(stack.layer->requests().count("c"), 0u);

  // Channel recovered: the probe passes and the same wave commits.
  const auto retried = stack.layer->submit_batch(
      {sg::make_chain("c", "sap1", {"nat"}, "sap2", 10, 100)});
  ASSERT_EQ(retried.size(), 1u);
  ASSERT_TRUE(retried[0].ok()) << retried[0].error().to_string();
}

// ------------------------------------------------------------ sync_health

/// Client fake that replays the last pushed configuration and can report
/// chosen NFs as failed — the signal sync_health() consumes.
class StatusClient final : public adapters::DomainAdapter {
 public:
  explicit StatusClient(model::Nffg view) : view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override {
    model::Nffg current = config_.has_value() ? *config_ : view_;
    for (auto& [bb_id, bb] : current.bisbis()) {
      for (auto& [nf_id, nf] : bb.nfs) {
        if (failed_.count(nf_id) != 0) nf.status = model::NfStatus::kFailed;
      }
    }
    return current;
  }
  Result<void> apply(const model::Nffg& desired) override {
    config_ = desired;
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }
  void fail_nf(const std::string& nf_id) { failed_.insert(nf_id); }
  void clear_failures() { failed_.clear(); }
  [[nodiscard]] const model::Nffg& last_config() const { return *config_; }

 private:
  std::string name_ = "status-client";
  model::Nffg view_;
  std::optional<model::Nffg> config_;
  std::set<std::string> failed_;
};

TEST(ServiceLayer, SyncHealthDegradesAndRestoresWithoutTeardown) {
  model::Nffg view{"client-view"};
  ASSERT_TRUE(
      view.add_bisbis(model::make_bisbis("big", {64, 65536, 500}, 4)).ok());
  model::attach_sap(view, "sap1", "big", 0, {1000, 0.1});
  model::attach_sap(view, "sap2", "big", 1, {1000, 0.1});
  auto client = std::make_unique<StatusClient>(std::move(view));
  StatusClient* handle = client.get();
  ServiceLayer layer(std::move(client));

  ASSERT_TRUE(
      layer.submit(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10, 100))
          .ok());
  auto healthy = layer.sync_health();
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy->empty());

  // The layer below reports the NF failed: the request degrades but its
  // configuration is NOT withdrawn — it must survive in every later push
  // so healing below can still find (and fix) it.
  handle->fail_nf("svc.nat0");
  auto degraded = layer.sync_health();
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(*degraded, std::vector<std::string>{"svc"});
  EXPECT_EQ(layer.requests().at("svc").state, RequestState::kDegraded);
  ASSERT_TRUE(
      layer.submit(sg::make_chain("b", "sap1", {"dpi"}, "sap2", 10, 100))
          .ok());
  EXPECT_TRUE(handle->last_config().find_nf("svc.nat0").has_value());

  // The NF recovered: the request flips back to deployed.
  handle->clear_failures();
  auto restored = layer.sync_health();
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
  EXPECT_EQ(layer.requests().at("svc").state, RequestState::kDeployed);
  EXPECT_EQ(layer.metrics().counter("service.health.degraded"), 1u);
  EXPECT_EQ(layer.metrics().counter("service.health.restored"), 1u);
}

}  // namespace
}  // namespace unify::service
