#include "service/service_layer.h"

#include <gtest/gtest.h>

#include "core/config_translate.h"
#include "core/resource_orchestrator.h"
#include "core/unify_api.h"
#include "core/virtualizer.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"

namespace unify::service {
namespace {

class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

/// Minimal one-RO stack: service layer -> unify -> virtualizer -> RO ->
/// fake infra domain.
struct Stack {
  Stack() {
    model::Nffg view{"infra-view"};
    EXPECT_TRUE(
        view.add_bisbis(model::make_bisbis("bb", {16, 16384, 200}, 4)).ok());
    model::attach_sap(view, "sap1", "bb", 0, {1000, 0.1});
    model::attach_sap(view, "sap2", "bb", 1, {1000, 0.1});
    ro = std::make_unique<core::ResourceOrchestrator>(
        "ro", std::make_shared<mapping::ChainDpMapper>(),
        catalog::default_catalog());
    EXPECT_TRUE(ro->add_domain(std::make_unique<AcceptAllAdapter>(
                                   "infra", std::move(view)))
                    .ok());
    EXPECT_TRUE(ro->initialize().ok());
    virtualizer = std::make_unique<core::Virtualizer>(
        *ro, core::ViewPolicy::kSingleBisBis);
    layer = std::make_unique<ServiceLayer>(
        core::make_unify_link(*virtualizer, clock, "north"));
  }
  SimClock clock;
  std::unique_ptr<core::ResourceOrchestrator> ro;
  std::unique_ptr<core::Virtualizer> virtualizer;
  std::unique_ptr<ServiceLayer> layer;
};

TEST(PrefixElements, PrefixesEverythingButSaps) {
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "a", {"nat"}, "b", 10, 50);
  const sg::ServiceGraph prefixed = prefix_elements(sg, "r1");
  EXPECT_TRUE(prefixed.has_sap("a"));
  EXPECT_NE(prefixed.find_nf("r1.nat0"), nullptr);
  EXPECT_EQ(prefixed.find_nf("nat0"), nullptr);
  EXPECT_NE(prefixed.find_link("r1.cl0"), nullptr);
  ASSERT_EQ(prefixed.requirements().size(), 1u);
  EXPECT_EQ(prefixed.requirements()[0].id, "r1.e2e");
  EXPECT_TRUE(prefixed.validate().empty());
}

TEST(ServiceLayer, SubmitDeploysAndTracks) {
  Stack stack;
  const auto id = stack.layer->submit(
      sg::make_chain("svc", "sap1", {"nat", "dpi"}, "sap2", 10, 100));
  ASSERT_TRUE(id.ok()) << id.error().to_string();
  EXPECT_EQ(*id, "svc");
  EXPECT_EQ(stack.layer->requests().at("svc").state,
            RequestState::kDeployed);
  // NFs deployed below under the prefixed ids.
  EXPECT_TRUE(stack.ro->global_view().find_nf("svc.nat0").has_value());
  EXPECT_TRUE(stack.ro->global_view().find_nf("svc.dpi1").has_value());
}

TEST(ServiceLayer, StatusesRollUp) {
  Stack stack;
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  auto statuses = stack.layer->nf_statuses("svc");
  ASSERT_TRUE(statuses.ok()) << statuses.error().to_string();
  ASSERT_EQ(statuses->size(), 1u);
  EXPECT_EQ(statuses->count("nat0"), 1u);  // unprefixed for the user
  auto ready = stack.layer->is_ready("svc");
  ASSERT_TRUE(ready.ok());
  EXPECT_FALSE(*ready);  // fake infra never reports running
}

TEST(ServiceLayer, MultipleIndependentServices) {
  Stack stack;
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("a", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("b", "sap1", {"dpi"}, "sap2", 10,
                                          100))
                  .ok());
  EXPECT_EQ(stack.ro->deployments().size(), 2u);
  EXPECT_TRUE(stack.ro->global_view().find_nf("a.nat0").has_value());
  EXPECT_TRUE(stack.ro->global_view().find_nf("b.dpi0").has_value());

  ASSERT_TRUE(stack.layer->remove("a").ok());
  EXPECT_FALSE(stack.ro->global_view().find_nf("a.nat0").has_value());
  EXPECT_TRUE(stack.ro->global_view().find_nf("b.dpi0").has_value());
  EXPECT_EQ(stack.layer->requests().at("a").state, RequestState::kRemoved);
}

TEST(ServiceLayer, RejectsBadRequests) {
  Stack stack;
  // Unknown SAP.
  auto bad_sap = stack.layer->submit(
      sg::make_chain("x", "ghost", {"nat"}, "sap2", 10, 100));
  ASSERT_FALSE(bad_sap.ok());
  EXPECT_EQ(bad_sap.error().code, ErrorCode::kNotFound);
  // Empty id.
  EXPECT_FALSE(
      stack.layer->submit(sg::make_chain("", "sap1", {}, "sap2", 1, 9)).ok());
  // Duplicate id.
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("dup", "sap1", {}, "sap2", 1, 100))
                  .ok());
  EXPECT_EQ(stack.layer
                ->submit(sg::make_chain("dup", "sap1", {}, "sap2", 1, 100))
                .error()
                .code,
            ErrorCode::kAlreadyExists);
}

TEST(ServiceLayer, FailedDeploymentRollsBack) {
  Stack stack;
  ASSERT_TRUE(stack.layer
                  ->submit(sg::make_chain("ok", "sap1", {"nat"}, "sap2", 10,
                                          100))
                  .ok());
  // Infeasible: resource demand beyond the substrate.
  sg::ServiceGraph greedy{"greedy"};
  ASSERT_TRUE(greedy.add_sap("sap1").ok());
  ASSERT_TRUE(greedy.add_sap("sap2").ok());
  ASSERT_TRUE(greedy
                  .add_nf(sg::SgNf{"x", "nat", 2,
                                   model::Resources{9999, 1, 1}})
                  .ok());
  ASSERT_TRUE(
      greedy.add_link(sg::SgLink{"l1", {"sap1", 0}, {"x", 0}, 1}).ok());
  ASSERT_TRUE(
      greedy.add_link(sg::SgLink{"l2", {"x", 1}, {"sap2", 0}, 1}).ok());
  auto failed = stack.layer->submit(greedy);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(stack.layer->requests().at("greedy").state,
            RequestState::kFailed);
  EXPECT_FALSE(stack.layer->requests().at("greedy").error.empty());
  // The earlier service is untouched.
  EXPECT_EQ(stack.ro->deployments().size(), 1u);
  EXPECT_TRUE(stack.ro->global_view().find_nf("ok.nat0").has_value());
  // And the layer still works.
  EXPECT_TRUE(stack.layer
                  ->submit(sg::make_chain("after", "sap1", {"dpi"}, "sap2",
                                          10, 100))
                  .ok());
}

TEST(ServiceLayer, RemoveUnknownFails) {
  Stack stack;
  EXPECT_EQ(stack.layer->remove("nope").error().code, ErrorCode::kNotFound);
  EXPECT_EQ(stack.layer->nf_statuses("nope").error().code,
            ErrorCode::kNotFound);
}

TEST(ServiceLayer, ViewIsSingleBisBis) {
  Stack stack;
  auto view = stack.layer->view();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->bisbis().size(), 1u);
  EXPECT_EQ(view->saps().size(), 2u);
}

}  // namespace
}  // namespace unify::service
