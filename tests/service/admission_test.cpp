// Unit coverage of the overload-safe admission lifecycle (DESIGN.md §12):
// the bounded AdmissionQueue's dispatch order and displacement rules, and
// the service layer's enqueue()/pump()/remove_batch() state machine —
// shedding, postpone/park on a degraded substrate, readmission on health
// transitions — driven against a fake adapter whose failures are exact.
#include "service/admission.h"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "model/nffg_builder.h"
#include "service/service_layer.h"
#include "sg/service_graph.h"

namespace unify::service {
namespace {

AdmissionEntry entry(const std::string& id, AdmissionClass klass,
                     SimTime deadline, std::uint64_t seq) {
  AdmissionEntry e;
  e.graph = sg::ServiceGraph{id};
  e.klass = klass;
  e.deadline = deadline;
  e.seq = seq;
  return e;
}

TEST(AdmissionQueue, DispatchOrderClassDeadlineSeq) {
  AdmissionQueue queue(8);
  (void)queue.push(entry("new-late", AdmissionClass::kNew, 9000, 0));
  (void)queue.push(entry("heal", AdmissionClass::kHeal, 0, 1));
  (void)queue.push(entry("new-soon", AdmissionClass::kNew, 2000, 2));
  (void)queue.push(entry("reembed", AdmissionClass::kReembed, 5000, 3));
  (void)queue.push(entry("new-nodeadline", AdmissionClass::kNew, 0, 4));

  const auto wave = queue.pop_wave(8);
  ASSERT_EQ(wave.size(), 5u);
  // Class first (heal > reembed > new); within a class earlier deadline
  // first, no deadline last; seq breaks ties.
  EXPECT_EQ(wave[0].graph.id(), "heal");
  EXPECT_EQ(wave[1].graph.id(), "reembed");
  EXPECT_EQ(wave[2].graph.id(), "new-soon");
  EXPECT_EQ(wave[3].graph.id(), "new-late");
  EXPECT_EQ(wave[4].graph.id(), "new-nodeadline");
}

TEST(AdmissionQueue, FifoWithinEqualKeys) {
  AdmissionQueue queue(4);
  (void)queue.push(entry("a", AdmissionClass::kNew, 0, 0));
  (void)queue.push(entry("b", AdmissionClass::kNew, 0, 1));
  (void)queue.push(entry("c", AdmissionClass::kNew, 0, 2));
  const auto wave = queue.pop_wave(4);
  ASSERT_EQ(wave.size(), 3u);
  EXPECT_EQ(wave[0].graph.id(), "a");
  EXPECT_EQ(wave[1].graph.id(), "b");
  EXPECT_EQ(wave[2].graph.id(), "c");
}

TEST(AdmissionQueue, FullQueueRejectsEqualClassNewcomer) {
  AdmissionQueue queue(2);
  (void)queue.push(entry("a", AdmissionClass::kNew, 0, 0));
  (void)queue.push(entry("b", AdmissionClass::kNew, 0, 1));
  const auto pushed = queue.push(entry("c", AdmissionClass::kNew, 0, 2));
  EXPECT_EQ(pushed.outcome, AdmissionQueue::PushOutcome::kRejected);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(queue.contains("a"));
  EXPECT_TRUE(queue.contains("b"));
}

TEST(AdmissionQueue, HigherClassDisplacesLowestTail) {
  AdmissionQueue queue(2);
  (void)queue.push(entry("new1", AdmissionClass::kNew, 1000, 0));
  (void)queue.push(entry("new2", AdmissionClass::kNew, 2000, 1));
  const auto pushed = queue.push(entry("heal", AdmissionClass::kHeal, 0, 2));
  EXPECT_EQ(pushed.outcome, AdmissionQueue::PushOutcome::kDisplaced);
  ASSERT_TRUE(pushed.displaced.has_value());
  // The lowest-urgency tail goes: the later-deadline kNew entry.
  EXPECT_EQ(pushed.displaced->graph.id(), "new2");
  EXPECT_TRUE(queue.contains("heal"));
  EXPECT_TRUE(queue.contains("new1"));
}

TEST(AdmissionQueue, ShedExpiredHonoursMargin) {
  AdmissionQueue queue(8);
  (void)queue.push(entry("expired", AdmissionClass::kNew, 1500, 0));
  (void)queue.push(entry("alive", AdmissionClass::kNew, 5000, 1));
  (void)queue.push(entry("forever", AdmissionClass::kNew, 0, 2));
  std::vector<AdmissionEntry> shed;
  EXPECT_EQ(queue.shed_expired(1000, 1000, shed), 1u);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].graph.id(), "expired");
  EXPECT_EQ(queue.size(), 2u);
}

// -- lifecycle against a fake substrate ------------------------------------

/// Fake substrate with a scriptable per-push outcome sequence: each apply()
/// pops the next scripted result (success once the script is drained), so
/// a test can fail exactly the pushes it means to — e.g. the merged wave
/// and the commit_one retry but not the restores in between.
class ScriptedAdapter final : public adapters::DomainAdapter {
 public:
  ScriptedAdapter() {
    view_ = model::Nffg{"infra-view"};
    EXPECT_TRUE(
        view_.add_bisbis(model::make_bisbis("bb", {16, 16384, 200}, 4)).ok());
    model::attach_sap(view_, "sap1", "bb", 0, {1000, 0.1});
    model::attach_sap(view_, "sap2", "bb", 1, {1000, 0.1});
  }
  void script(std::vector<Result<void>> outcomes) {
    for (auto& outcome : outcomes) script_.push_back(std::move(outcome));
  }
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    if (script_.empty()) return Result<void>::success();
    Result<void> next = std::move(script_.front());
    script_.pop_front();
    return next;
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_ = "infra";
  model::Nffg view_;
  std::deque<Result<void>> script_;
};

constexpr auto kOk = [] { return Result<void>::success(); };
Result<void> fail(ErrorCode code) { return Error{code, "scripted failure"}; }

/// The push sequence of one failed singleton wave: merged push fails,
/// restore lands, the commit_one retry fails, its restore lands — the
/// request's final result carries `code`.
std::vector<Result<void>> singleton_wave_failure(ErrorCode code) {
  return {fail(code), kOk(), fail(code), kOk()};
}

/// Service layer directly over the scripted fake: failure codes injected
/// below are exactly what the lifecycle sees.
struct LifecycleStack {
  explicit LifecycleStack(const AdmissionPolicy& policy = {}) {
    auto scripted = std::make_unique<ScriptedAdapter>();
    fake = scripted.get();
    layer = std::make_unique<ServiceLayer>(std::move(scripted));
    layer->set_admission_policy(policy);
    layer->set_health_source([this] { return below; });
  }
  ScriptedAdapter* fake = nullptr;
  std::unique_ptr<ServiceLayer> layer;
  BelowHealth below;
};

sg::ServiceGraph chain(const std::string& id) {
  return sg::make_chain(id, "sap1", {"nat"}, "sap2", 5, 500);
}

TEST(AdmissionLifecycle, EnqueuePumpDeploys) {
  LifecycleStack stack;
  ASSERT_TRUE(stack.layer->enqueue(chain("a"), 1000).ok());
  ASSERT_TRUE(stack.layer->enqueue(chain("b"), 1200).ok());
  EXPECT_EQ(stack.layer->requests().at("a").state, RequestState::kQueued);
  EXPECT_EQ(stack.layer->queue_depth(), 2u);

  const PumpReport report = stack.layer->pump(5000);
  EXPECT_EQ(report.dispatched, 2u);
  EXPECT_EQ(report.deployed, 2u);
  EXPECT_EQ(stack.layer->requests().at("a").state, RequestState::kDeployed);
  EXPECT_EQ(stack.layer->requests().at("b").state, RequestState::kDeployed);
  EXPECT_EQ(stack.layer->queue_depth(), 0u);
  // Sim-time queue wait is recorded: 4ms and 3.8ms.
  const auto* latency =
      stack.layer->metrics().find_summary("service.admission.latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 2u);
  EXPECT_DOUBLE_EQ(latency->max(), 4.0);
}

TEST(AdmissionLifecycle, DuplicateActiveIdRejectedTerminalReusable) {
  LifecycleStack stack;
  ASSERT_TRUE(stack.layer->enqueue(chain("a"), 0).ok());
  const auto dup = stack.layer->enqueue(chain("a"), 0);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ErrorCode::kAlreadyExists);
  (void)stack.layer->pump(100);
  ASSERT_TRUE(stack.layer->remove("a").ok());
  // kRemoved is terminal: the id is reusable.
  EXPECT_TRUE(stack.layer->enqueue(chain("a"), 200).ok());
}

TEST(AdmissionLifecycle, ShedsBeforeDeadlineViolation) {
  AdmissionPolicy policy;
  policy.dispatch_margin_us = 1000;
  LifecycleStack stack(policy);
  AdmissionOptions tight;
  tight.deadline = 1500;
  ASSERT_TRUE(stack.layer->enqueue(chain("tight"), 0, tight).ok());
  AdmissionOptions loose;
  loose.deadline = 50'000;
  ASSERT_TRUE(stack.layer->enqueue(chain("loose"), 0, loose).ok());

  // At t=1000 the tight deadline (1500) is inside the dispatch margin: it
  // can no longer land in time, so it is shed, never deployed late.
  const PumpReport report = stack.layer->pump(1000);
  EXPECT_EQ(report.shed, 1u);
  EXPECT_EQ(report.deployed, 1u);
  EXPECT_EQ(stack.layer->requests().at("tight").state, RequestState::kShed);
  EXPECT_EQ(stack.layer->requests().at("loose").state,
            RequestState::kDeployed);
  EXPECT_EQ(stack.layer->metrics().counter("service.admission.shed_deadline"),
            1u);
}

TEST(AdmissionLifecycle, QueueBoundShedsLowestClassFirst) {
  AdmissionPolicy policy;
  policy.queue_capacity = 2;
  LifecycleStack stack(policy);
  ASSERT_TRUE(stack.layer->enqueue(chain("n1"), 0).ok());
  ASSERT_TRUE(stack.layer->enqueue(chain("n2"), 0).ok());
  // Same class into a full queue: the newcomer itself is shed.
  const auto rejected = stack.layer->enqueue(chain("n3"), 0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(stack.layer->requests().at("n3").state, RequestState::kShed);
  // A heal-class arrival displaces queued kNew work instead.
  AdmissionOptions heal;
  heal.klass = AdmissionClass::kHeal;
  ASSERT_TRUE(stack.layer->enqueue(chain("h1"), 0, heal).ok());
  EXPECT_EQ(stack.layer->queue_depth(), 2u);
  EXPECT_EQ(stack.layer->requests().at("n2").state, RequestState::kShed);
  EXPECT_EQ(stack.layer->requests().at("h1").state, RequestState::kQueued);
  EXPECT_EQ(
      stack.layer->metrics().counter("service.admission.shed_displaced"), 1u);
}

TEST(AdmissionLifecycle, TransientFailureParksThenHealthTransitionRetries) {
  LifecycleStack stack;
  ASSERT_TRUE(stack.layer->enqueue(chain("a"), 0).ok());
  stack.fake->script(singleton_wave_failure(ErrorCode::kUnavailable));
  PumpReport report = stack.layer->pump(1000);
  EXPECT_EQ(report.postponed, 1u);
  EXPECT_EQ(stack.layer->requests().at("a").state, RequestState::kPostponed);
  EXPECT_EQ(stack.layer->parked_count(), 1u);

  // Same fingerprint, backstop not reached: stays parked.
  report = stack.layer->pump(2000);
  EXPECT_EQ(report.requeued, 0u);
  EXPECT_EQ(stack.layer->parked_count(), 1u);

  // Health transition below: re-queued and deployed the same pump.
  stack.below.fingerprint = 99;
  report = stack.layer->pump(3000);
  EXPECT_EQ(report.requeued, 1u);
  EXPECT_EQ(report.deployed, 1u);
  EXPECT_EQ(stack.layer->requests().at("a").state, RequestState::kDeployed);
  EXPECT_EQ(stack.layer->parked_count(), 0u);
}

TEST(AdmissionLifecycle, CapacityFailureParksOnlyWhileImpaired) {
  LifecycleStack healthy;
  ASSERT_TRUE(healthy.layer->enqueue(chain("a"), 0).ok());
  healthy.fake->script(singleton_wave_failure(ErrorCode::kInfeasible));
  PumpReport report = healthy.layer->pump(1000);
  // Healthy substrate: an infeasible answer is final.
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(healthy.layer->requests().at("a").state, RequestState::kFailed);

  LifecycleStack impaired;
  impaired.below.impaired = true;
  ASSERT_TRUE(impaired.layer->enqueue(chain("a"), 0).ok());
  impaired.fake->script(singleton_wave_failure(ErrorCode::kInfeasible));
  report = impaired.layer->pump(1000);
  // Impaired substrate: the masked capacity may come back — park.
  EXPECT_EQ(report.postponed, 1u);
  EXPECT_EQ(impaired.layer->requests().at("a").state,
            RequestState::kPostponed);
}

TEST(AdmissionLifecycle, PostponeBackstopRetriesWithoutHealthSource) {
  AdmissionPolicy policy;
  policy.postpone_retry_pumps = 2;
  LifecycleStack stack(policy);
  ASSERT_TRUE(stack.layer->enqueue(chain("a"), 0).ok());
  stack.fake->script(singleton_wave_failure(ErrorCode::kUnavailable));
  (void)stack.layer->pump(1000);
  ASSERT_EQ(stack.layer->parked_count(), 1u);
  (void)stack.layer->pump(2000);  // 1 pump parked: below the backstop
  EXPECT_EQ(stack.layer->parked_count(), 1u);
  const PumpReport report = stack.layer->pump(3000);  // backstop reached
  EXPECT_EQ(report.requeued, 1u);
  EXPECT_EQ(report.deployed, 1u);
  EXPECT_EQ(stack.layer->requests().at("a").state, RequestState::kDeployed);
}

TEST(AdmissionLifecycle, DeadlineTicksWhileParked) {
  AdmissionPolicy policy;
  policy.postpone_retry_pumps = 0;  // no backstop: health transitions only
  LifecycleStack stack(policy);
  AdmissionOptions options;
  options.deadline = 10'000;
  ASSERT_TRUE(stack.layer->enqueue(chain("a"), 0, options).ok());
  stack.fake->script(singleton_wave_failure(ErrorCode::kUnavailable));
  (void)stack.layer->pump(1000);
  ASSERT_EQ(stack.layer->requests().at("a").state, RequestState::kPostponed);
  // Parked past its deadline: shed, not retried.
  const PumpReport report = stack.layer->pump(20'000);
  EXPECT_EQ(report.shed, 1u);
  EXPECT_EQ(stack.layer->requests().at("a").state, RequestState::kShed);
  EXPECT_EQ(stack.layer->parked_count(), 0u);
}

TEST(AdmissionLifecycle, RemoveBatchCancelsQueuedAndTearsDownDeployed) {
  LifecycleStack stack;
  ASSERT_TRUE(stack.layer->enqueue(chain("deployed"), 0).ok());
  (void)stack.layer->pump(1000);
  ASSERT_EQ(stack.layer->requests().at("deployed").state,
            RequestState::kDeployed);
  ASSERT_TRUE(stack.layer->enqueue(chain("queued"), 2000).ok());

  const auto results =
      stack.layer->remove_batch({"deployed", "queued", "ghost"});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].error().code, ErrorCode::kNotFound);
  EXPECT_EQ(stack.layer->requests().at("deployed").state,
            RequestState::kRemoved);
  EXPECT_EQ(stack.layer->requests().at("queued").state,
            RequestState::kRemoved);
  EXPECT_EQ(stack.layer->queue_depth(), 0u);
  EXPECT_EQ(stack.layer->metrics().counter("service.admission.cancelled"),
            1u);
  EXPECT_EQ(stack.layer->metrics().counter("service.batch.removed"), 1u);
}

TEST(AdmissionLifecycle, PumpDispatchesHealClassFirst) {
  AdmissionPolicy policy;
  policy.max_wave = 1;  // one dispatch per pump: order becomes observable
  LifecycleStack stack(policy);
  ASSERT_TRUE(stack.layer->enqueue(chain("new"), 0).ok());
  AdmissionOptions heal;
  heal.klass = AdmissionClass::kHeal;
  ASSERT_TRUE(stack.layer->enqueue(chain("heal"), 100, heal).ok());

  (void)stack.layer->pump(1000);
  EXPECT_EQ(stack.layer->requests().at("heal").state, RequestState::kDeployed);
  EXPECT_EQ(stack.layer->requests().at("new").state, RequestState::kQueued);
  (void)stack.layer->pump(2000);
  EXPECT_EQ(stack.layer->requests().at("new").state, RequestState::kDeployed);
}

}  // namespace
}  // namespace unify::service
