// submit_batch under load: wave churn on the full Fig. 1 stack, poisoned
// batch-mates, and concurrent batch clients hammering the one shared
// process pool. Lives in the concurrency_tests binary so it runs under
// `ctest -L concurrency` and a -DENABLE_TSAN=ON build.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "core/resource_orchestrator.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "service/fig1.h"
#include "service/service_layer.h"
#include "util/orchestration_pool.h"
#include "util/rng.h"

namespace unify::service {
namespace {

const std::vector<std::string> kNfPool{"nat", "monitor", "fw-lite",
                                       "firewall", "compressor"};
const std::vector<std::pair<std::string, std::string>> kRoutes{
    {"sap1", "sap2"}, {"sap2", "sap3"}, {"sap3", "sap1"}};

sg::ServiceGraph random_service(Rng& rng, const std::string& id,
                                std::size_t route, double bandwidth) {
  const int len = static_cast<int>(rng.next_int(1, 2));
  std::vector<std::string> types;
  for (int i = 0; i < len; ++i) {
    types.push_back(kNfPool[rng.next_below(kNfPool.size())]);
  }
  return sg::make_chain(id, kRoutes[route].first, types,
                        kRoutes[route].second, bandwidth, 60);
}

class BatchChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchChurnTest, WavesOfBatchesKeepInvariantsAndShareOnePool) {
  // Force the shared pool into existence before measuring: the assertion
  // is that batches never construct ANOTHER pool, however many run.
  (void)util::OrchestrationPool::process_pool();
  const std::uint64_t pools_before = util::OrchestrationPool::constructed();

  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  Rng rng(GetParam());

  std::size_t total_requests = 0;
  std::size_t total_committed = 0;
  std::size_t total_rolled_back = 0;
  std::size_t poisoned_rounds = 0;

  for (int round = 0; round < 8; ++round) {
    // One wave per round: a service on every route; every third round the
    // last route instead carries a poisonous request whose bandwidth no
    // substrate link can satisfy. It must fail alone — its batch-mates
    // deploy exactly as if it had never been submitted.
    const bool poison = (round % 3) == 2;
    std::vector<sg::ServiceGraph> wave;
    std::vector<std::size_t> good_routes;
    for (std::size_t route = 0; route < kRoutes.size(); ++route) {
      const std::string id =
          "w" + std::to_string(round) + "r" + std::to_string(route);
      const bool last = route + 1 == kRoutes.size();
      if (poison && last) {
        wave.push_back(random_service(rng, id, route, 1e9));
      } else {
        wave.push_back(random_service(
            rng, id, route, static_cast<double>(rng.next_int(5, 40))));
        good_routes.push_back(route);
      }
    }
    total_requests += wave.size();
    if (poison) ++poisoned_rounds;

    const auto results = s.service_layer->submit_batch(wave);
    s.clock.run_until_idle();
    ASSERT_EQ(results.size(), wave.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const bool expect_ok = !(poison && i + 1 == wave.size());
      ASSERT_EQ(results[i].ok(), expect_ok)
          << "round " << round << " request " << wave[i].id() << ": "
          << (results[i].ok() ? "ok" : results[i].error().to_string());
      if (results[i].ok()) {
        EXPECT_EQ(*results[i], wave[i].id());
        ++total_committed;
      } else {
        ++total_rolled_back;
      }
    }

    // ---- invariants after every wave ----
    const auto problems = s.ro->global_view().validate();
    ASSERT_TRUE(problems.empty())
        << "round " << round << ": " << problems.front();
    for (const std::size_t route : good_routes) {
      const auto trace =
          end_to_end_trace(s, kRoutes[route].first, kRoutes[route].second);
      ASSERT_TRUE(trace.ok()) << "round " << round << " route " << route
                              << ": " << trace.error().to_string();
    }
    if (poison) {
      const std::size_t dead = kRoutes.size() - 1;
      EXPECT_FALSE(
          end_to_end_trace(s, kRoutes[dead].first, kRoutes[dead].second).ok())
          << "round " << round << " poisoned route carries traffic";
    }

    // Tear the wave down so the next round starts from a clean substrate.
    for (const std::size_t route : good_routes) {
      const std::string id =
          "w" + std::to_string(round) + "r" + std::to_string(route);
      ASSERT_TRUE(s.service_layer->remove(id).ok()) << id;
    }
    s.clock.run_until_idle();
    EXPECT_EQ(s.ro->deployments().size(), 0u) << "round " << round;
  }

  // Pristine data plane after the churn.
  EXPECT_EQ(s.ro->global_view().stats().nf_count, 0u);
  EXPECT_EQ(s.ro->global_view().stats().flowrule_count, 0u);
  for (const auto& [id, link] : s.ro->global_view().links()) {
    EXPECT_EQ(link.reserved, 0.0) << link.id;
  }

  // ---- telemetry: the batch counters add up... ----
  telemetry::Registry& m = s.service_layer->metrics();
  EXPECT_EQ(m.counter("service.batch.requests"), total_requests);
  EXPECT_EQ(m.counter("service.batch.admitted"), total_requests);
  EXPECT_EQ(m.counter("service.batch.committed"), total_committed);
  EXPECT_EQ(m.counter("service.batch.rolled_back"), total_rolled_back);
  EXPECT_EQ(m.counter("service.batch.wave_fallbacks"), poisoned_rounds);
  EXPECT_EQ(total_rolled_back, poisoned_rounds);

  // ...and however many waves ran, nobody constructed a second pool.
  EXPECT_EQ(util::OrchestrationPool::constructed(), pools_before);
  EXPECT_EQ(m.gauge("service.batch.pools_constructed"),
            static_cast<double>(pools_before));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchChurnTest, ::testing::Values(3u, 77u));

// ---------------------------------------------------------------------------
// Concurrent clients: several threads run RO map_batch waves on private
// orchestrators while the main thread drives service-layer batches — all
// of them multiplexed onto the single shared process pool.

class FakeAdapter final : public adapters::DomainAdapter {
 public:
  FakeAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}

  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return 0;
  }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg domain_view(const std::string& bb, const std::string& sap,
                        const std::string& stitch) {
  model::Nffg g{bb + "-view"};
  EXPECT_TRUE(g.add_bisbis(model::make_bisbis(bb, {64, 65536, 800}, 8)).ok());
  model::attach_sap(g, sap, bb, 0, {10000, 0.1});
  model::attach_sap(g, stitch, bb, 1, {10000, 0.5});
  return g;
}

std::unique_ptr<core::ResourceOrchestrator> two_domain_ro() {
  auto ro = std::make_unique<core::ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  EXPECT_TRUE(ro->add_domain(std::make_unique<FakeAdapter>(
                                 "d1", domain_view("bb1", "sap1", "xp")))
                  .ok());
  EXPECT_TRUE(ro->add_domain(std::make_unique<FakeAdapter>(
                                 "d2", domain_view("bb2", "sap2", "xp")))
                  .ok());
  EXPECT_TRUE(ro->initialize().ok());
  return ro;
}

std::vector<sg::ServiceGraph> independent_requests(int n, double bw) {
  std::vector<sg::ServiceGraph> requests;
  for (int i = 0; i < n; ++i) {
    const std::string id = "svc" + std::to_string(i);
    const std::vector<std::string> types =
        (i % 2 == 0) ? std::vector<std::string>{"nat"}
                     : std::vector<std::string>{"fw-lite", "monitor"};
    requests.push_back(service::prefix_elements(
        sg::make_chain(id, "sap1", types, "sap2", bw, 500), id));
  }
  return requests;
}

TEST(BatchConcurrency, ManyClientsOneProcessPool) {
  (void)util::OrchestrationPool::process_pool();
  const std::uint64_t pools_before = util::OrchestrationPool::constructed();

  constexpr int kClients = 3;
  constexpr int kRoundsPerClient = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&failures] {
      for (int round = 0; round < kRoundsPerClient; ++round) {
        auto ro = two_domain_ro();
        const auto requests = independent_requests(8, 5);
        const auto results = ro->map_batch(requests, 4);
        for (const auto& result : results) {
          if (!result.ok()) failures.fetch_add(1);
        }
        if (ro->deployments().size() != requests.size()) failures.fetch_add(1);
      }
    });
  }

  // Meanwhile: service-layer waves on the same shared pool.
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  Rng rng(11);
  for (int round = 0; round < 3; ++round) {
    std::vector<sg::ServiceGraph> wave;
    for (std::size_t route = 0; route < kRoutes.size(); ++route) {
      wave.push_back(random_service(
          rng, "c" + std::to_string(round) + "r" + std::to_string(route),
          route, 10));
    }
    const auto results = s.service_layer->submit_batch(wave);
    s.clock.run_until_idle();
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << i << ": " << results[i].error().to_string();
      ASSERT_TRUE(s.service_layer->remove(*results[i]).ok());
    }
    s.clock.run_until_idle();
  }

  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(util::OrchestrationPool::constructed(), pools_before);
}

}  // namespace
}  // namespace unify::service
