// Fast tier-1 churn smoke: a small seeded scenario (a few hundred
// requests, one flash crowd, one maintenance window, one storm) through
// the full admission stack, with the SLO spot-checks and the determinism
// contract the big `-L churn` soak enforces at scale.
#include "service/churn_driver.h"

#include <gtest/gtest.h>

#include "support/seed_env.h"

namespace unify::service {
namespace {

infra::churn::ScenarioSpec smoke_spec() {
  infra::churn::ScenarioSpec spec;
  spec.horizon_us = 60'000'000;  // 60 sim-seconds
  spec.arrival_rate_hz = 5;
  spec.flash_crowds.push_back({20'000'000, 5'000'000, 4.0});
  spec.maintenance.push_back({35'000'000, 5'000'000, 1});
  spec.storms.push_back({50'000'000, 0.3});
  // Longer-lived services than the default mix, so the storm finds a
  // meaningful live population (~25) to re-embed at t=50s.
  spec.lifetime_min_s = 2.0;
  spec.lifetime_cap_s = 30.0;
  return spec;
}

ChurnRunReport run_once(std::uint64_t seed) {
  AdmissionPolicy policy;
  policy.queue_capacity = 64;
  policy.max_wave = 8;
  ChurnStack stack(3, policy);
  return run_churn(stack, smoke_spec(), seed);
}

TEST(ChurnSmoke, SmallScenarioMeetsSlos) {
  for (const std::uint64_t seed :
       unify::test::soak_seeds("CHURN_SEED", {5})) {
    UNIFY_SEED_TRACE("CHURN_SEED", seed);
    const ChurnRunReport report = run_once(seed);
    EXPECT_GT(report.arrivals, 200u);
    EXPECT_GT(report.deployed, report.arrivals / 2);
    EXPECT_GT(report.removed, 0u);
    EXPECT_GT(report.migrations, 0u);
    // Bounded queue: admission control sheds, the queue never outgrows
    // its bound.
    EXPECT_LE(report.max_queue_depth, 64u);
    // Occupancy conservation: no domain ever saw an overcommitted slice.
    EXPECT_FALSE(report.overcommit);
    // Make-before-break: maintenance healing never shrank placements.
    EXPECT_FALSE(report.heal_shrank);
    // Deadlines were honoured for everything that deployed (arrivals get
    // at most 5s): late requests are shed, never deployed late.
    EXPECT_LE(report.adm_latency_p99_ms, 5000.0);
    EXPECT_GE(report.adm_latency_p50_ms, 0.0);
  }
}

TEST(ChurnSmoke, RunIsDeterministicPerSeed) {
  const std::uint64_t seed =
      unify::test::soak_seeds("CHURN_SEED", {5}).front();
  UNIFY_SEED_TRACE("CHURN_SEED", seed);
  const ChurnRunReport first = run_once(seed);
  const ChurnRunReport second = run_once(seed);
  EXPECT_EQ(first.signature, second.signature);
  EXPECT_EQ(first.arrivals, second.arrivals);
  EXPECT_EQ(first.deployed, second.deployed);
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_DOUBLE_EQ(first.adm_latency_p99_ms, second.adm_latency_p99_ms);
}

}  // namespace
}  // namespace unify::service
