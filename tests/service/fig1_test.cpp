// End-to-end integration over the full Fig. 1 stack: service layer ->
// Unify RPC -> virtualizer -> RO -> four heterogeneous domains, verified
// down to data-plane packet traces across domain boundaries.
#include "service/fig1.h"

#include <gtest/gtest.h>

namespace unify::service {
namespace {

TEST(Fig1, StackAssembles) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok()) << stack.error().to_string();
  Fig1Stack& s = **stack;
  // Four domains merged; stitch SAPs consumed; customer SAPs visible.
  const model::Nffg& view = s.ro->global_view();
  EXPECT_EQ(view.saps().size(), 3u);
  EXPECT_NE(view.find_sap("sap1"), nullptr);
  EXPECT_NE(view.find_sap("sap2"), nullptr);
  EXPECT_NE(view.find_sap("sap3"), nullptr);
  EXPECT_EQ(view.find_sap("xp-emu-sdn"), nullptr);
  // emu: 2 BiS-BiS, sdn: 3, dc: 1, un: 1.
  EXPECT_EQ(view.bisbis().size(), 7u);
  EXPECT_TRUE(view.validate().empty());
  EXPECT_EQ(model::domains_of(view),
            (std::vector<std::string>{"dc", "emu", "sdn", "un"}));
}

TEST(Fig1, DeployChainAcrossDomains) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;

  const auto id = s.service_layer->submit(
      sg::make_chain("svc", "sap1", {"firewall", "nat"}, "sap2", 50, 40));
  ASSERT_TRUE(id.ok()) << id.error().to_string();

  // Let VM boots etc. finish, then sync statuses up the stack.
  s.clock.run_until_idle();
  ASSERT_TRUE(s.ro->sync_statuses().ok());
  auto ready = s.service_layer->is_ready("svc");
  ASSERT_TRUE(ready.ok()) << ready.error().to_string();
  EXPECT_TRUE(*ready);

  // Data plane: a packet injected at sap1 must reach sap2 through every
  // NF of the chain, crossing the stitched domains.
  auto trace = end_to_end_trace(s, "sap1", "sap2");
  ASSERT_TRUE(trace.ok()) << trace.error().to_string();
  // The chain visits firewall components and the NAT somewhere en route.
  std::size_t nf_hops = 0;
  for (const TraceStep& step : *trace) {
    if (step.domain.rfind("nf:", 0) == 0) ++nf_hops;
  }
  // firewall decomposes into 2 components + nat = at least 3 NF traversals.
  EXPECT_GE(nf_hops, 3u);
}

TEST(Fig1, ReverseDirectionAlsoDeploys) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  const auto id = s.service_layer->submit(
      sg::make_chain("rev", "sap2", {"nat"}, "sap1", 20, 40));
  ASSERT_TRUE(id.ok()) << id.error().to_string();
  auto trace = end_to_end_trace(s, "sap2", "sap1");
  ASSERT_TRUE(trace.ok()) << trace.error().to_string();
}

TEST(Fig1, UniversalNodeHostsWhenTargeted) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  // sap3 hangs off the UN: a sap1->sap3 chain must traverse it.
  const auto id = s.service_layer->submit(
      sg::make_chain("to-un", "sap1", {"nat"}, "sap3", 20, 40));
  ASSERT_TRUE(id.ok()) << id.error().to_string();
  auto trace = end_to_end_trace(s, "sap1", "sap3");
  ASSERT_TRUE(trace.ok()) << trace.error().to_string();
}

TEST(Fig1, RemoveCleansDataPlane) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  ASSERT_TRUE(s.service_layer
                  ->submit(sg::make_chain("svc", "sap1", {"nat"}, "sap2", 20,
                                          40))
                  .ok());
  ASSERT_TRUE(end_to_end_trace(s, "sap1", "sap2").ok());
  ASSERT_TRUE(s.service_layer->remove("svc").ok());
  // Flow entries are gone: the packet is dropped at the first switch.
  EXPECT_FALSE(end_to_end_trace(s, "sap1", "sap2").ok());
  // All containers/VMs/processes released.
  EXPECT_EQ(s.ro->global_view().stats().nf_count, 0u);
}

TEST(Fig1, TwoServicesCoexist) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  ASSERT_TRUE(s.service_layer
                  ->submit(sg::make_chain("a", "sap1", {"nat"}, "sap2", 20,
                                          40))
                  .ok());
  ASSERT_TRUE(s.service_layer
                  ->submit(sg::make_chain("b", "sap3", {"monitor"}, "sap2",
                                          10, 40))
                  .ok());
  ASSERT_TRUE(end_to_end_trace(s, "sap1", "sap2").ok());
  ASSERT_TRUE(end_to_end_trace(s, "sap3", "sap2").ok());
  // Removing one leaves the other's data path intact.
  ASSERT_TRUE(s.service_layer->remove("a").ok());
  EXPECT_FALSE(end_to_end_trace(s, "sap1", "sap2").ok());
  EXPECT_TRUE(end_to_end_trace(s, "sap3", "sap2").ok());
}

TEST(Fig1, SdnDomainNeverHostsNfs) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  ASSERT_TRUE(s.service_layer
                  ->submit(sg::make_chain("svc", "sap1",
                                          {"firewall", "nat", "monitor"},
                                          "sap2", 20, 40))
                  .ok());
  for (const auto& [bb_id, bb] : s.ro->global_view().bisbis()) {
    if (bb.domain == "sdn") {
      EXPECT_TRUE(bb.nfs.empty()) << bb_id << " hosts NFs but has no compute";
    }
  }
}

TEST(Fig1, DelayBudgetEnforced) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  // sap1 and sap2 are several ms apart; a sub-millisecond budget must be
  // rejected, an ample one accepted.
  auto too_tight = s.service_layer->submit(
      sg::make_chain("tight", "sap1", {"nat"}, "sap2", 20, 0.2));
  ASSERT_FALSE(too_tight.ok());
  EXPECT_EQ(too_tight.error().code, ErrorCode::kInfeasible);
  EXPECT_TRUE(s.service_layer
                  ->submit(sg::make_chain("ample", "sap1", {"nat"}, "sap2",
                                          20, 50))
                  .ok());
}

TEST(Fig1, BandwidthExhaustionRejects) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  // The emu attachment link for sap1 carries 1000 Mbit/s.
  ASSERT_TRUE(s.service_layer
                  ->submit(sg::make_chain("big", "sap1", {"nat"}, "sap2",
                                          900, 50))
                  .ok());
  auto second = s.service_layer->submit(
      sg::make_chain("big2", "sap1", {"nat"}, "sap2", 900, 50));
  ASSERT_FALSE(second.ok());
  // After removing the first, capacity frees up.
  ASSERT_TRUE(s.service_layer->remove("big").ok());
  EXPECT_TRUE(s.service_layer
                  ->submit(sg::make_chain("big3", "sap1", {"nat"}, "sap2",
                                          900, 50))
                  .ok());
}

TEST(Fig1, ControlPlaneCountersMove) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  ASSERT_TRUE(s.service_layer
                  ->submit(sg::make_chain("svc", "sap1", {"firewall"},
                                          "sap2", 20, 40))
                  .ok());
  // Simulated time advanced (channel latencies + domain operations).
  EXPECT_GT(s.clock.now(), 0);
  // Native operations happened in at least two domains.
  int active_domains = 0;
  active_domains += s.emu->operations() > 0 ? 1 : 0;
  active_domains += s.sdn->flow_ops() > 0 ? 1 : 0;
  active_domains += s.cloud->api_calls() > 0 ? 1 : 0;
  active_domains += s.un->operations() > 0 ? 1 : 0;
  EXPECT_GE(active_domains, 1);
  EXPECT_GT(s.virtualizer->edits(), 0u);
}

TEST(Fig1, AntiAffinitySurvivesTheWholeStack) {
  auto stack = make_fig1_stack();
  ASSERT_TRUE(stack.ok());
  Fig1Stack& s = **stack;
  sg::ServiceGraph sg = sg::make_chain(
      "svc", "sap1", {"firewall", "parental-filter"}, "sap2", 25, 45);
  ASSERT_TRUE(sg.add_constraint({sg::ConstraintKind::kAntiAffinity,
                                 "firewall0", "parental-filter1", ""})
                  .ok());
  ASSERT_TRUE(s.service_layer->submit(sg).ok());
  // The constraint crossed service layer -> RPC -> virtualizer -> RO and
  // was rewritten onto the firewall's decomposed components: no component
  // shares a node with the filter.
  const auto filter_host =
      s.ro->global_view().find_nf("svc.parental-filter1");
  ASSERT_TRUE(filter_host.has_value());
  for (const char* component : {"svc.firewall0.acl", "svc.firewall0.state"}) {
    const auto host = s.ro->global_view().find_nf(component);
    ASSERT_TRUE(host.has_value()) << component;
    EXPECT_NE(host->first, filter_host->first) << component;
  }
  // Chain still carries traffic end to end.
  EXPECT_TRUE(end_to_end_trace(s, "sap1", "sap2").ok());
}

}  // namespace
}  // namespace unify::service
