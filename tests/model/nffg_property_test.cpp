// Property sweeps on the NFFG model: random configuration pairs converge
// under diff/apply, and random NFFGs survive the JSON codec.
#include <gtest/gtest.h>

#include "infra/topologies.h"
#include "model/nffg_builder.h"
#include "model/nffg_diff.h"
#include "model/nffg_json.h"
#include "util/rng.h"

namespace unify::model {
namespace {

/// Random configuration over a fixed 6-node substrate: a handful of NFs on
/// random nodes with intra-node flowrules between their ports.
Nffg random_config(Rng& rng) {
  infra::topo::TopoParams params;
  Nffg g = infra::topo::ring(6, 2, params);
  const int nf_count = static_cast<int>(rng.next_int(0, 6));
  std::vector<std::pair<std::string, std::string>> placed;  // (host, nf)
  for (int i = 0; i < nf_count; ++i) {
    const std::string host = "bb" + std::to_string(rng.next_int(0, 5));
    const std::string nf_id = "nf" + std::to_string(i);
    if (g.place_nf(host, make_nf(nf_id, "firewall",
                                 {1, static_cast<double>(rng.next_int(100, 500)), 1}, 2))
            .ok()) {
      placed.emplace_back(host, nf_id);
    }
  }
  for (std::size_t i = 0; i + 1 < placed.size(); ++i) {
    if (placed[i].first != placed[i + 1].first) continue;
    (void)g.add_flowrule(
        placed[i].first,
        Flowrule{"fr" + std::to_string(i),
                 {placed[i].second, 1},
                 {placed[i + 1].second, 0},
                 rng.next_bool(0.3) ? "tagA" : "",
                 rng.next_bool(0.3) ? "tagB" : "",
                 static_cast<double>(rng.next_int(0, 50))});
  }
  return g;
}

class NffgProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NffgProperty, DiffApplyConverges) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Nffg base = random_config(rng);
    const Nffg target = random_config(rng);
    const auto delta = diff(base, target);
    ASSERT_TRUE(delta.ok()) << delta.error().to_string();
    ASSERT_TRUE(apply(base, *delta).ok());
    // After applying, the re-diff must be empty (configs converged).
    const auto check = diff(base, target);
    ASSERT_TRUE(check.ok());
    EXPECT_TRUE(check->empty()) << "trial " << trial;
  }
}

TEST_P(NffgProperty, EmptyDeltaIsFixpoint) {
  Rng rng(GetParam() ^ 0xF00);
  const Nffg config = random_config(rng);
  const auto delta = diff(config, config);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST_P(NffgProperty, JsonRoundTripExact) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int trial = 0; trial < 10; ++trial) {
    const Nffg original = random_config(rng);
    const auto decoded = nffg_from_json_string(to_json_string(original));
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
    EXPECT_EQ(*decoded, original);
    EXPECT_EQ(to_json_string(*decoded), to_json_string(original));
  }
}

TEST_P(NffgProperty, DeltaJsonRoundTripExact) {
  Rng rng(GetParam() ^ 0xCAFE);
  Nffg base = random_config(rng);
  const Nffg target = random_config(rng);
  const auto delta = diff(base, target);
  ASSERT_TRUE(delta.ok());
  const auto decoded = delta_from_json(delta_to_json(*delta));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(apply(base, *decoded).ok());
  const auto check = diff(base, target);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NffgProperty,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(NffgHints, JsonRoundTripsAndValidates) {
  Nffg g{"h"};
  ASSERT_TRUE(g.add_bisbis(make_bisbis("bb", {1, 1, 1}, 2)).ok());
  attach_sap(g, "a", "bb", 0);
  attach_sap(g, "b", "bb", 1);
  ASSERT_TRUE(g.add_hint(ServiceHint{"h1", "a", "b", 25, 100}).ok());
  ASSERT_TRUE(g.add_hint(ServiceHint{
                   "h2", "b", "a",
                   std::numeric_limits<double>::infinity(), 0})
                  .ok());
  EXPECT_EQ(g.add_hint(ServiceHint{"h1", "a", "b", 1, 1}).error().code,
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(g.add_hint(ServiceHint{"h3", "zz", "b", 1, 1}).error().code,
            ErrorCode::kNotFound);

  const auto decoded = nffg_from_json_string(to_json_string(g));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, g);
  ASSERT_EQ(decoded->hints().size(), 2u);
  EXPECT_EQ(decoded->hints()[0].max_delay, 25);
  EXPECT_EQ(decoded->hints()[1].max_delay,
            std::numeric_limits<double>::infinity());

  Nffg g2 = g;
  ASSERT_TRUE(g2.remove_hint("h1").ok());
  EXPECT_EQ(g2.hints().size(), 1u);
  EXPECT_EQ(g2.remove_hint("h1").error().code, ErrorCode::kNotFound);
  EXPECT_FALSE(g == g2);
}

}  // namespace
}  // namespace unify::model
