// Pins the content_hash() contract (DESIGN.md §11): two NFFGs hash equal
// iff their JSON configs are byte-identical. The push path's dirty
// tracking decides "clean, skip the push" from this hash alone, so any
// serialized field the hash misses would silently strand config changes.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "model/nffg.h"
#include "model/nffg_builder.h"
#include "model/nffg_hash.h"
#include "model/nffg_json.h"

namespace unify::model {
namespace {

/// Small but fully populated graph: every serialized element kind present.
Nffg base_graph() {
  Nffg g{"hash-base"};
  EXPECT_TRUE(g.add_bisbis(make_bisbis("bb1", {8, 8192, 100}, 4, 0.1)).ok());
  EXPECT_TRUE(g.add_bisbis(make_bisbis("bb2", {4, 4096, 50}, 4, 0.2)).ok());
  g.find_bisbis("bb1")->domain = "d1";
  g.find_bisbis("bb2")->domain = "d2";
  g.find_bisbis("bb2")->nf_types = {"nat", "firewall"};
  connect(g, "bb1", 1, "bb2", 1, {1000, 1.5});
  attach_sap(g, "sap1", "bb1", 0, {1000, 0.1});

  NfInstance nf;
  nf.id = "nf1";
  nf.type = "nat";
  nf.requirement = {1, 512, 1};
  nf.ports = {Port{0, "in"}, Port{1, "out"}};
  nf.status = NfStatus::kRunning;
  EXPECT_TRUE(g.place_nf("bb1", std::move(nf)).ok());

  Flowrule rule;
  rule.id = "fr1";
  rule.in = {"bb1", 0};
  rule.out = {"bb1", 1};
  rule.match_tag = "svc:l1";
  rule.set_tag = "svc:l2";
  rule.bandwidth = 100;
  EXPECT_TRUE(g.add_flowrule("bb1", std::move(rule)).ok());
  return g;
}

struct Mutation {
  const char* what;
  std::function<void(Nffg&)> apply;
};

const std::vector<Mutation>& serialized_mutations() {
  static const std::vector<Mutation> mutations = {
      {"graph id", [](Nffg& g) { g.set_id("renamed"); }},
      {"bisbis name", [](Nffg& g) { g.find_bisbis("bb1")->name = "x"; }},
      {"bisbis domain", [](Nffg& g) { g.find_bisbis("bb1")->domain = "dX"; }},
      {"bisbis capacity",
       [](Nffg& g) { g.find_bisbis("bb2")->capacity.cpu += 1; }},
      {"bisbis internal delay",
       [](Nffg& g) { g.find_bisbis("bb2")->internal_delay += 0.05; }},
      {"bisbis nf_types",
       [](Nffg& g) { g.find_bisbis("bb2")->nf_types.push_back("dpi"); }},
      {"bisbis port name",
       [](Nffg& g) { g.find_bisbis("bb1")->ports.front().name = "p"; }},
      {"nf requirement",
       [](Nffg& g) {
         g.find_bisbis("bb1")->nfs.at("nf1").requirement.mem += 1;
       }},
      {"nf status",
       [](Nffg& g) {
         g.find_bisbis("bb1")->nfs.at("nf1").status = NfStatus::kFailed;
       }},
      {"flowrule match tag",
       [](Nffg& g) {
         g.find_bisbis("bb1")->flowrules.front().match_tag = "other";
       }},
      {"flowrule bandwidth",
       [](Nffg& g) {
         g.find_bisbis("bb1")->flowrules.front().bandwidth += 1;
       }},
      {"link bandwidth",
       [](Nffg& g) { g.links().begin()->second.attrs.bandwidth += 1; }},
      {"link delay",
       [](Nffg& g) { g.links().begin()->second.attrs.delay += 0.1; }},
      {"link reserved",
       [](Nffg& g) { g.links().begin()->second.reserved += 10; }},
  };
  return mutations;
}

TEST(NffgHash, EqualGraphsHashEqual) {
  const Nffg a = base_graph();
  const Nffg b = base_graph();
  ASSERT_EQ(to_json_string(a), to_json_string(b));
  EXPECT_EQ(content_hash(a), content_hash(b));
}

TEST(NffgHash, EverySerializedFieldFeedsTheHash) {
  const Nffg base = base_graph();
  const std::uint64_t base_hash = content_hash(base);
  const std::string base_json = to_json_string(base);
  for (const Mutation& m : serialized_mutations()) {
    Nffg mutant = base_graph();
    m.apply(mutant);
    ASSERT_NE(to_json_string(mutant), base_json)
        << m.what << ": mutation is not serialized; fix the test";
    EXPECT_NE(content_hash(mutant), base_hash)
        << m.what << ": serialized change missed by content_hash";
  }
}

TEST(NffgHash, StructuralMutationsChangeTheHash) {
  const Nffg base = base_graph();
  const std::uint64_t base_hash = content_hash(base);

  Nffg grown = base_graph();
  ASSERT_TRUE(grown.add_bisbis(make_bisbis("bb3", {1, 1, 1}, 2)).ok());
  EXPECT_NE(content_hash(grown), base_hash);

  Nffg linked = base_graph();
  // Reverse endpoint order: connect() names links "l-<a>-<b>" and the
  // base graph already owns "l-bb1-bb2".
  connect(linked, "bb2", 2, "bb1", 2, {500, 2.0});
  EXPECT_NE(content_hash(linked), base_hash);

  Nffg with_sap = base_graph();
  attach_sap(with_sap, "sap2", "bb2", 0, {1000, 0.1});
  EXPECT_NE(content_hash(with_sap), base_hash);
}

TEST(NffgHash, HealthPenaltyIsExcluded) {
  // health_penalty is an orchestrator-local annotation to_json() never
  // emits: it must not dirty a slice (DESIGN.md §11).
  const Nffg base = base_graph();
  Nffg biased = base_graph();
  biased.find_bisbis("bb1")->health_penalty = 42.0;
  ASSERT_EQ(to_json_string(biased), to_json_string(base));
  EXPECT_EQ(content_hash(biased), content_hash(base));
}

}  // namespace
}  // namespace unify::model
