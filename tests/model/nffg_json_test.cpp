#include "model/nffg_json.h"

#include <gtest/gtest.h>

#include "model/nffg_builder.h"

namespace unify::model {
namespace {

Nffg rich_graph() {
  Nffg g{"dc-view", "demo"};
  BisBis bb1 = make_bisbis("bb1", {8, 8192, 100}, 4, 0.05);
  bb1.name = "universal-node-1";
  bb1.nf_types = {"firewall", "nat"};
  EXPECT_TRUE(g.add_bisbis(std::move(bb1)).ok());
  EXPECT_TRUE(g.add_bisbis(make_bisbis("bb2", {4, 4096, 50}, 4)).ok());
  connect(g, "bb1", 1, "bb2", 1, {1000, 1.5});
  attach_sap(g, "sap1", "bb1", 0);
  EXPECT_TRUE(
      g.place_nf("bb1", make_nf("fw0", "firewall", {2, 1024, 10}, 2)).ok());
  EXPECT_TRUE(g.add_flowrule("bb1", Flowrule{"r1", {"bb1", 0}, {"fw0", 0},
                                             "", "tag-a", 100})
                  .ok());
  EXPECT_TRUE(g.add_flowrule("bb1", Flowrule{"r2", {"fw0", 1}, {"bb1", 1},
                                             "tag-a", "-", 100})
                  .ok());
  g.find_link("l-bb1-bb2")->reserved = 100;
  return g;
}

TEST(PortRefCodec, RoundTrip) {
  const PortRef ref{"node-7", 3};
  auto parsed = port_ref_from_string(port_ref_to_string(ref));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ref);
}

TEST(PortRefCodec, RejectsMalformed) {
  for (const char* bad : {"", "noport", ":3", "node:", "node:x", "node:3x"}) {
    EXPECT_FALSE(port_ref_from_string(bad).ok()) << bad;
  }
}

TEST(PortRefCodec, LastColonWins) {
  // Node ids may not contain ':', but the parser uses the last colon so a
  // numeric suffix is always the port.
  auto parsed = port_ref_from_string("a:b:2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->node, "a:b");
  EXPECT_EQ(parsed->port, 2);
}

TEST(NffgJson, RoundTripPreservesEverything) {
  const Nffg original = rich_graph();
  const std::string wire = to_json_string(original);
  auto decoded = nffg_from_json_string(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(*decoded, original);
  // And the re-serialization is byte-identical (stable ordering).
  EXPECT_EQ(to_json_string(*decoded), wire);
}

TEST(NffgJson, RoundTripThroughPretty) {
  const Nffg original = rich_graph();
  auto decoded = nffg_from_json_string(to_json(original).dump_pretty());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(NffgJson, EmptyGraph) {
  auto decoded = nffg_from_json_string(to_json_string(Nffg{"empty"}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id(), "empty");
  EXPECT_TRUE(decoded->bisbis().empty());
  EXPECT_TRUE(decoded->saps().empty());
  EXPECT_TRUE(decoded->links().empty());
}

TEST(NffgJson, DecodedGraphValidates) {
  auto decoded = nffg_from_json_string(to_json_string(rich_graph()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->validate().empty());
}

TEST(NffgJson, RejectsNonObject) {
  EXPECT_FALSE(nffg_from_json(json::Value{3}).ok());
  EXPECT_FALSE(nffg_from_json_string("[1,2]").ok());
}

TEST(NffgJson, RejectsBadShape) {
  // nodes must be an array.
  EXPECT_FALSE(nffg_from_json_string(R"({"id":"x","nodes":{}})").ok());
  // link with unknown endpoint.
  const char* dangling =
      R"({"id":"x","links":[{"id":"l","from":"a:0","to":"b:0",)"
      R"("bandwidth":1,"delay":1}]})";
  auto r = nffg_from_json_string(dangling);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  // flowrule with malformed port ref.
  const char* bad_ref =
      R"({"id":"x","nodes":[{"id":"bb","resources":{"cpu":1},)"
      R"("ports":[{"id":0}],"flowrules":[{"id":"r","in":"junk","out":"bb:0"}]}]})";
  EXPECT_FALSE(nffg_from_json_string(bad_ref).ok());
  // unknown NF status.
  const char* bad_status =
      R"({"id":"x","nodes":[{"id":"bb","resources":{"cpu":4},)"
      R"("ports":[{"id":0}],"nfs":[{"id":"n","type":"t","status":"zombie"}]}]})";
  EXPECT_FALSE(nffg_from_json_string(bad_status).ok());
}

TEST(NffgJson, OvercommittedViewStillDecodes) {
  // Serialized operational state may be transiently overcommitted; decode
  // must not reject it (validation is a separate, explicit step).
  Nffg g{"x"};
  ASSERT_TRUE(g.add_bisbis(make_bisbis("bb", {1, 1, 1}, 1)).ok());
  ASSERT_TRUE(g.place_nf("bb", make_nf("big", "t", {50, 0, 0}), true).ok());
  auto decoded = nffg_from_json_string(to_json_string(g));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->validate().empty());
}

TEST(NffgJson, OmitsDefaults) {
  Nffg g{"x"};
  ASSERT_TRUE(g.add_bisbis(make_bisbis("bb", {1, 1, 1}, 1)).ok());
  const std::string wire = to_json_string(g);
  EXPECT_EQ(wire.find("internal_delay"), std::string::npos);
  EXPECT_EQ(wire.find("nf_types"), std::string::npos);
  EXPECT_EQ(wire.find("\"name\""), std::string::npos);
}

}  // namespace
}  // namespace unify::model
