#include "model/nffg_merge.h"

#include <gtest/gtest.h>

#include "model/nffg_builder.h"

namespace unify::model {
namespace {

/// A domain with one BiS-BiS: a customer SAP and optionally a stitching SAP.
Nffg domain_view(const std::string& bb_id, const std::string& customer_sap,
                 const std::string& stitch_sap) {
  Nffg g{bb_id + "-view"};
  EXPECT_TRUE(g.add_bisbis(make_bisbis(bb_id, {8, 8192, 100}, 4)).ok());
  if (!customer_sap.empty()) {
    attach_sap(g, customer_sap, bb_id, 0, {1000, 0.1});
  }
  if (!stitch_sap.empty()) {
    attach_sap(g, stitch_sap, bb_id, 1, {500, 2.0});
  }
  return g;
}

TEST(Merge, SingleDomainPassesThrough) {
  auto merged = merge_views({{"d1", domain_view("bb1", "sap1", "")}});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->bisbis().size(), 1u);
  EXPECT_EQ(merged->saps().size(), 1u);
  EXPECT_EQ(merged->find_bisbis("bb1")->domain, "d1");
  EXPECT_TRUE(merged->validate().empty());
}

TEST(Merge, SharedSapBecomesInterDomainLink) {
  auto merged = merge_views({{"d1", domain_view("bb1", "sap1", "x-point")},
                             {"d2", domain_view("bb2", "sap2", "x-point")}});
  ASSERT_TRUE(merged.ok());
  // Stitching SAP consumed.
  EXPECT_EQ(merged->find_sap("x-point"), nullptr);
  EXPECT_EQ(merged->saps().size(), 2u);
  // Replaced by a bidirectional link pair bb1:1 <-> bb2:1.
  const Link* xd = merged->find_link("xd-x-point");
  ASSERT_NE(xd, nullptr);
  EXPECT_NE(merged->find_link("xd-x-point-back"), nullptr);
  EXPECT_EQ(xd->from.node, "bb1");
  EXPECT_EQ(xd->to.node, "bb2");
  // bandwidth=min(500,500), delay=2+2.
  EXPECT_EQ(xd->attrs.bandwidth, 500);
  EXPECT_EQ(xd->attrs.delay, 4.0);
  EXPECT_TRUE(merged->validate().empty());
}

TEST(Merge, DomainsStamped) {
  auto merged = merge_views({{"sdn", domain_view("bb1", "sap1", "xp")},
                             {"cloud", domain_view("bb2", "sap2", "xp")}});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->find_bisbis("bb1")->domain, "sdn");
  EXPECT_EQ(merged->find_bisbis("bb2")->domain, "cloud");
  EXPECT_EQ(domains_of(*merged),
            (std::vector<std::string>{"cloud", "sdn"}));
}

TEST(Merge, ThreeWaySharedSapRejected) {
  auto merged = merge_views({{"d1", domain_view("bb1", "", "xp")},
                             {"d2", domain_view("bb2", "", "xp")},
                             {"d3", domain_view("bb3", "", "xp")}});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.error().code, ErrorCode::kInvalidArgument);
}

TEST(Merge, DuplicateBisBisIdRejected) {
  auto merged = merge_views({{"d1", domain_view("bb", "sap1", "")},
                             {"d2", domain_view("bb", "sap2", "")}});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.error().code, ErrorCode::kAlreadyExists);
}

TEST(Merge, UnattachedStitchSapRejected) {
  Nffg lonely{"lonely"};
  ASSERT_TRUE(lonely.add_sap(Sap{"xp", ""}).ok());  // SAP with no link
  auto merged =
      merge_views({{"d1", domain_view("bb1", "", "xp")}, {"d2", lonely}});
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.error().message.find("not attached"), std::string::npos);
}

TEST(Merge, AsymmetricStitchAttrs) {
  Nffg d1{"d1"};
  ASSERT_TRUE(d1.add_bisbis(make_bisbis("bb1", {1, 1, 1}, 2)).ok());
  attach_sap(d1, "xp", "bb1", 0, {100, 1.0});
  Nffg d2{"d2"};
  ASSERT_TRUE(d2.add_bisbis(make_bisbis("bb2", {1, 1, 1}, 2)).ok());
  attach_sap(d2, "xp", "bb2", 0, {300, 2.5});
  auto merged = merge_views({{"d1", d1}, {"d2", d2}});
  ASSERT_TRUE(merged.ok());
  const Link* xd = merged->find_link("xd-xp");
  ASSERT_NE(xd, nullptr);
  EXPECT_EQ(xd->attrs.bandwidth, 100);  // min
  EXPECT_EQ(xd->attrs.delay, 3.5);      // sum
}

TEST(Merge, NfsAndFlowrulesSurvive) {
  Nffg d1 = domain_view("bb1", "sap1", "xp");
  ASSERT_TRUE(d1.place_nf("bb1", make_nf("fw", "fw", {1, 1, 1}, 2)).ok());
  ASSERT_TRUE(
      d1.add_flowrule("bb1", Flowrule{"r", {"bb1", 0}, {"fw", 0}, "", "", 0})
          .ok());
  auto merged =
      merge_views({{"d1", d1}, {"d2", domain_view("bb2", "sap2", "xp")}});
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->find_nf("fw").has_value());
  EXPECT_NE(merged->find_bisbis("bb1")->find_flowrule("r"), nullptr);
}

TEST(Slice, ExtractsDomainSubgraph) {
  auto merged = merge_views({{"d1", domain_view("bb1", "sap1", "xp")},
                             {"d2", domain_view("bb2", "sap2", "xp")}});
  ASSERT_TRUE(merged.ok());
  const Nffg s1 = slice_for_domain(*merged, "d1");
  EXPECT_NE(s1.find_bisbis("bb1"), nullptr);
  EXPECT_EQ(s1.find_bisbis("bb2"), nullptr);
  EXPECT_NE(s1.find_sap("sap1"), nullptr);
  EXPECT_EQ(s1.find_sap("sap2"), nullptr);
  // The inter-domain link is not inside either slice.
  EXPECT_EQ(s1.find_link("xd-xp"), nullptr);
  // sap1 attachment links survive.
  EXPECT_NE(s1.find_link("l-sap1"), nullptr);
  EXPECT_NE(s1.find_link("l-sap1-back"), nullptr);
  EXPECT_TRUE(s1.validate().empty());
}

TEST(Slice, UnknownDomainGivesEmpty) {
  auto merged = merge_views({{"d1", domain_view("bb1", "sap1", "")}});
  ASSERT_TRUE(merged.ok());
  const Nffg s = slice_for_domain(*merged, "nope");
  EXPECT_TRUE(s.bisbis().empty());
  EXPECT_TRUE(s.saps().empty());
  EXPECT_TRUE(s.links().empty());
}

}  // namespace
}  // namespace unify::model
