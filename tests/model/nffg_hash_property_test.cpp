// Seeded property sweep over the content_hash() contract (DESIGN.md §11):
// for random NFFGs and random mutations, content_hash(a) == content_hash(b)
// exactly when to_json_string(a) == to_json_string(b) — the hash stands in
// for the serialized config in the push path's dirty tracking, so either
// direction failing would strand config changes or force no-op pushes.
// Orchestrator-local annotations (BisBis::health_penalty) are pinned as
// excluded: they must change neither the JSON nor the hash.
#include "model/nffg_hash.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "infra/topologies.h"
#include "model/nffg_builder.h"
#include "model/nffg_json.h"
#include "util/rng.h"

namespace unify::model {
namespace {

/// Random configuration over a fixed 6-node substrate (the same generator
/// shape nffg_property_test sweeps): NFs on random hosts, intra-node
/// flowrules, occasional SAP.
Nffg random_config(Rng& rng) {
  infra::topo::TopoParams params;
  Nffg g = infra::topo::ring(6, 2, params);
  const int nf_count = static_cast<int>(rng.next_int(0, 6));
  std::vector<std::pair<std::string, std::string>> placed;
  for (int i = 0; i < nf_count; ++i) {
    const std::string host = "bb" + std::to_string(rng.next_int(0, 5));
    const std::string nf_id = "nf" + std::to_string(i);
    if (g.place_nf(host,
                   make_nf(nf_id, rng.next_bool(0.5) ? "nat" : "firewall",
                           {1, static_cast<double>(rng.next_int(100, 500)), 1},
                           2))
            .ok()) {
      placed.emplace_back(host, nf_id);
    }
  }
  for (std::size_t i = 0; i + 1 < placed.size(); ++i) {
    if (placed[i].first != placed[i + 1].first) continue;
    (void)g.add_flowrule(
        placed[i].first,
        Flowrule{"fr" + std::to_string(i),
                 {placed[i].second, 1},
                 {placed[i + 1].second, 0},
                 rng.next_bool(0.3) ? "tagA" : "",
                 rng.next_bool(0.3) ? "tagB" : "",
                 static_cast<double>(rng.next_int(0, 50))});
  }
  if (rng.next_bool(0.5)) {
    attach_sap(g, "sapX", "bb" + std::to_string(rng.next_int(0, 5)), 1,
               {1000, 0.1});
  }
  return g;
}

/// One random in-place mutation; returns false when the graph had nothing
/// to mutate (caller draws another graph).
bool mutate(Nffg& g, Rng& rng) {
  switch (rng.next_below(4)) {
    case 0: {  // resize a random NF's memory requirement
      for (auto& [bb_id, bb] : g.bisbis()) {
        for (auto& [nf_id, nf] : bb.nfs) {
          nf.requirement.mem += 1;
          return true;
        }
      }
      return false;
    }
    case 1: {  // flip an NF status
      for (auto& [bb_id, bb] : g.bisbis()) {
        for (auto& [nf_id, nf] : bb.nfs) {
          nf.status = nf.status == NfStatus::kRunning ? NfStatus::kFailed
                                                      : NfStatus::kRunning;
          return true;
        }
      }
      return false;
    }
    case 2: {  // retag a flowrule
      for (auto& [bb_id, bb] : g.bisbis()) {
        for (auto& rule : bb.flowrules) {
          rule.match_tag = rule.match_tag.empty() ? "mut" : "";
          return true;
        }
      }
      return false;
    }
    default: {  // nudge a link's reserved bandwidth
      for (auto& [id, link] : g.links()) {
        link.reserved += 0.5;
        return true;
      }
      return false;
    }
  }
}

class NffgHashProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NffgHashProperty, HashEqualityMatchesJsonEquality) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Nffg a = random_config(rng);
    // Identical content, independently constructed: equal bytes -> equal
    // hash (no incidental state like insertion order may leak in).
    ASSERT_EQ(to_json_string(a), to_json_string(a));
    const std::uint64_t hash_a = content_hash(a);
    EXPECT_EQ(hash_a, content_hash(a)) << "hash must be pure";

    Nffg b = a;
    EXPECT_EQ(content_hash(b), hash_a) << "copies must hash equal";
    if (!mutate(b, rng)) continue;
    const bool json_equal = to_json_string(a) == to_json_string(b);
    const bool hash_equal = content_hash(b) == hash_a;
    EXPECT_EQ(json_equal, hash_equal)
        << "trial " << trial
        << ": hash and serialized config disagree about equality";
    EXPECT_FALSE(json_equal) << "mutation produced identical JSON";
  }
}

TEST_P(NffgHashProperty, DistinctSeedsRarelyCollide) {
  // 40 random graphs: all serialized configs distinct -> all hashes
  // distinct (a collision here is a generator bug or a broken hash, not
  // 2^-64 bad luck).
  Rng rng(GetParam() ^ 0xD1CE);
  std::vector<std::string> jsons;
  std::vector<std::uint64_t> hashes;
  for (int i = 0; i < 40; ++i) {
    const Nffg g = random_config(rng);
    jsons.push_back(to_json_string(g));
    hashes.push_back(content_hash(g));
  }
  for (std::size_t i = 0; i < jsons.size(); ++i) {
    for (std::size_t j = i + 1; j < jsons.size(); ++j) {
      if (jsons[i] == jsons[j]) {
        EXPECT_EQ(hashes[i], hashes[j]);
      } else {
        EXPECT_NE(hashes[i], hashes[j])
            << "graphs " << i << " and " << j << " collide";
      }
    }
  }
}

TEST_P(NffgHashProperty, HealthPenaltyIsExcludedEverywhere) {
  Rng rng(GetParam() ^ 0xAEA1);
  for (int trial = 0; trial < 10; ++trial) {
    Nffg g = random_config(rng);
    const std::string json_before = to_json_string(g);
    const std::uint64_t hash_before = content_hash(g);
    for (auto& [id, bb] : g.bisbis()) {
      bb.health_penalty += rng.next_double(0.1, 5.0);
    }
    // The annotation is orchestrator-local: serialization ignores it, so
    // the hash must too — otherwise a health flap would dirty every
    // section and defeat the push path's clean-skip.
    EXPECT_EQ(to_json_string(g), json_before);
    EXPECT_EQ(content_hash(g), hash_before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NffgHashProperty,
                         ::testing::Values(1u, 17u, 4242u));

}  // namespace
}  // namespace unify::model
