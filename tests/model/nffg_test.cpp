#include "model/nffg.h"

#include <gtest/gtest.h>

#include "model/nffg_builder.h"

namespace unify::model {
namespace {

Nffg two_node_graph() {
  Nffg g{"g"};
  EXPECT_TRUE(g.add_bisbis(make_bisbis("bb1", {8, 8192, 100}, 4)).ok());
  EXPECT_TRUE(g.add_bisbis(make_bisbis("bb2", {4, 4096, 50}, 4)).ok());
  connect(g, "bb1", 1, "bb2", 1, {1000, 1.0});
  attach_sap(g, "sap1", "bb1", 0);
  attach_sap(g, "sap2", "bb2", 0);
  return g;
}

TEST(Resources, Arithmetic) {
  Resources a{4, 1024, 10};
  Resources b{1, 512, 5};
  EXPECT_EQ(a + b, (Resources{5, 1536, 15}));
  EXPECT_EQ(a - b, (Resources{3, 512, 5}));
  EXPECT_TRUE(a.fits(b));
  EXPECT_FALSE(b.fits(a));
  EXPECT_TRUE(a.fits(a));
  EXPECT_FALSE((a - b).negative());
  EXPECT_TRUE((b - a).negative());
  EXPECT_TRUE(Resources{}.is_zero());
}

TEST(Resources, MaxWith) {
  Resources a{4, 100, 1};
  Resources b{2, 200, 3};
  EXPECT_EQ(a.max_with(b), (Resources{4, 200, 3}));
}

TEST(Resources, ToString) {
  EXPECT_EQ((Resources{4, 2048, 10}).to_string(),
            "cpu=4 mem=2048 storage=10");
}

TEST(PortRef, StringificationAndOrder) {
  PortRef a{"bb1", 2};
  EXPECT_EQ(a.to_string(), "bb1:2");
  EXPECT_TRUE(PortRef{}.empty());
  EXPECT_LT((PortRef{"a", 5}), (PortRef{"b", 0}));
  EXPECT_LT((PortRef{"a", 1}), (PortRef{"a", 2}));
}

TEST(NfStatus, RoundTripsThroughStrings) {
  for (const NfStatus s :
       {NfStatus::kRequested, NfStatus::kDeploying, NfStatus::kRunning,
        NfStatus::kStopped, NfStatus::kFailed}) {
    const auto parsed = nf_status_from_string(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(nf_status_from_string("bogus").has_value());
}

TEST(Nffg, AddAndFindNodes) {
  Nffg g = two_node_graph();
  EXPECT_NE(g.find_bisbis("bb1"), nullptr);
  EXPECT_EQ(g.find_bisbis("nope"), nullptr);
  EXPECT_NE(g.find_sap("sap1"), nullptr);
  EXPECT_TRUE(g.has_node("bb1"));
  EXPECT_TRUE(g.has_node("sap1"));
  EXPECT_FALSE(g.has_node("sap9"));
}

TEST(Nffg, RejectsDuplicateIdsAcrossKinds) {
  Nffg g;
  ASSERT_TRUE(g.add_bisbis(make_bisbis("x", {1, 1, 1}, 1)).ok());
  EXPECT_EQ(g.add_sap(Sap{"x", ""}).error().code, ErrorCode::kAlreadyExists);
  EXPECT_EQ(g.add_bisbis(make_bisbis("x", {1, 1, 1}, 1)).error().code,
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(g.add_bisbis(make_bisbis("", {1, 1, 1}, 1)).error().code,
            ErrorCode::kInvalidArgument);
}

TEST(Nffg, LinkEndpointValidation) {
  Nffg g = two_node_graph();
  // Unknown node.
  EXPECT_EQ(g.add_link(Link{"bad", {"zz", 0}, {"bb1", 0}, {10, 1}, 0})
                .error()
                .code,
            ErrorCode::kNotFound);
  // Port out of range.
  EXPECT_EQ(g.add_link(Link{"bad", {"bb1", 9}, {"bb2", 0}, {10, 1}, 0})
                .error()
                .code,
            ErrorCode::kNotFound);
  // SAP port != 0.
  EXPECT_EQ(g.add_link(Link{"bad", {"sap1", 1}, {"bb1", 0}, {10, 1}, 0})
                .error()
                .code,
            ErrorCode::kInvalidArgument);
  // Negative attrs.
  EXPECT_EQ(g.add_link(Link{"bad", {"bb1", 2}, {"bb2", 2}, {-5, 1}, 0})
                .error()
                .code,
            ErrorCode::kInvalidArgument);
}

TEST(Nffg, BidirectionalLinkCreatesPair) {
  Nffg g = two_node_graph();
  ASSERT_TRUE(g.add_bidirectional_link("extra", {"bb1", 2}, {"bb2", 2},
                                       {500, 2.0})
                  .ok());
  ASSERT_NE(g.find_link("extra"), nullptr);
  ASSERT_NE(g.find_link("extra-back"), nullptr);
  EXPECT_EQ(g.find_link("extra")->from.node, "bb1");
  EXPECT_EQ(g.find_link("extra-back")->from.node, "bb2");
}

TEST(Nffg, BidirectionalLinkAtomicOnFailure) {
  Nffg g = two_node_graph();
  // Second direction collides with an existing id -> first must roll back.
  ASSERT_TRUE(g.add_link(Link{"dup-back", {"bb1", 3}, {"bb2", 3}, {1, 1}, 0})
                  .ok());
  EXPECT_FALSE(
      g.add_bidirectional_link("dup", {"bb1", 2}, {"bb2", 2}, {1, 1}).ok());
  EXPECT_EQ(g.find_link("dup"), nullptr);
}

TEST(Nffg, RemoveBisBisDropsIncidentLinks) {
  Nffg g = two_node_graph();
  const std::size_t before = g.links().size();
  ASSERT_TRUE(g.remove_bisbis("bb2").ok());
  EXPECT_EQ(g.find_bisbis("bb2"), nullptr);
  // bb1<->bb2 pair and sap2<->bb2 pair gone.
  EXPECT_EQ(g.links().size(), before - 4);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Nffg, PlaceNfChecksCapacityAndType) {
  Nffg g = two_node_graph();
  ASSERT_TRUE(g.place_nf("bb1", make_nf("fw", "firewall", {2, 1024, 1})).ok());
  // Capacity exceeded.
  EXPECT_EQ(
      g.place_nf("bb1", make_nf("big", "dpi", {100, 0, 0})).error().code,
      ErrorCode::kResourceExhausted);
  // Duplicate id.
  EXPECT_EQ(
      g.place_nf("bb1", make_nf("fw", "firewall", {1, 1, 1})).error().code,
      ErrorCode::kAlreadyExists);
  // Unsupported type.
  g.find_bisbis("bb2")->nf_types = {"nat"};
  EXPECT_EQ(
      g.place_nf("bb2", make_nf("fw2", "firewall", {1, 1, 1})).error().code,
      ErrorCode::kRejected);
  ASSERT_TRUE(g.place_nf("bb2", make_nf("n1", "nat", {1, 1, 1})).ok());
  // Force overrides both checks.
  EXPECT_TRUE(
      g.place_nf("bb2", make_nf("huge", "dpi", {99, 0, 0}), true).ok());
}

TEST(Nffg, ResidualTracksPlacements) {
  Nffg g = two_node_graph();
  const BisBis* bb = g.find_bisbis("bb1");
  EXPECT_EQ(bb->residual(), (Resources{8, 8192, 100}));
  ASSERT_TRUE(g.place_nf("bb1", make_nf("fw", "fw", {2, 1024, 10})).ok());
  ASSERT_TRUE(g.place_nf("bb1", make_nf("nat", "nat", {1, 512, 5})).ok());
  EXPECT_EQ(bb->allocated(), (Resources{3, 1536, 15}));
  EXPECT_EQ(bb->residual(), (Resources{5, 6656, 85}));
  ASSERT_TRUE(g.remove_nf("bb1", "fw").ok());
  EXPECT_EQ(bb->residual(), (Resources{7, 7680, 95}));
}

TEST(Nffg, FindNfSearchesAllNodes) {
  Nffg g = two_node_graph();
  ASSERT_TRUE(g.place_nf("bb2", make_nf("fw", "fw", {1, 1, 1})).ok());
  const auto found = g.find_nf("fw");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->first, "bb2");
  EXPECT_EQ(found->second->type, "fw");
  EXPECT_FALSE(g.find_nf("nope").has_value());
}

TEST(Nffg, FlowruleEndpointRules) {
  Nffg g = two_node_graph();
  ASSERT_TRUE(g.place_nf("bb1", make_nf("fw", "fw", {1, 1, 1}, 2)).ok());

  // infra port -> NF port: ok.
  EXPECT_TRUE(g.add_flowrule("bb1", Flowrule{"r1", {"bb1", 0}, {"fw", 0},
                                             "", "", 10})
                  .ok());
  // NF port -> infra port: ok.
  EXPECT_TRUE(g.add_flowrule("bb1", Flowrule{"r2", {"fw", 1}, {"bb1", 1},
                                             "", "", 10})
                  .ok());
  // Port of an NF hosted elsewhere: rejected.
  EXPECT_EQ(g.add_flowrule("bb2", Flowrule{"r3", {"fw", 0}, {"bb2", 0}, "",
                                           "", 0})
                .error()
                .code,
            ErrorCode::kInvalidArgument);
  // Unknown rule port on own node.
  EXPECT_EQ(g.add_flowrule("bb1", Flowrule{"r4", {"bb1", 77}, {"fw", 0}, "",
                                           "", 0})
                .error()
                .code,
            ErrorCode::kNotFound);
  // Duplicate rule id.
  EXPECT_EQ(g.add_flowrule("bb1", Flowrule{"r1", {"bb1", 0}, {"fw", 0}, "",
                                           "", 0})
                .error()
                .code,
            ErrorCode::kAlreadyExists);
  // Negative bandwidth.
  EXPECT_EQ(g.add_flowrule("bb1", Flowrule{"r5", {"bb1", 0}, {"fw", 0}, "",
                                           "", -1})
                .error()
                .code,
            ErrorCode::kInvalidArgument);
}

TEST(Nffg, RemoveNfDropsItsFlowrules) {
  Nffg g = two_node_graph();
  ASSERT_TRUE(g.place_nf("bb1", make_nf("fw", "fw", {1, 1, 1}, 2)).ok());
  ASSERT_TRUE(
      g.add_flowrule("bb1", Flowrule{"r1", {"bb1", 0}, {"fw", 0}, "", "", 0})
          .ok());
  ASSERT_TRUE(
      g.add_flowrule("bb1", Flowrule{"keep", {"bb1", 0}, {"bb1", 1}, "", "",
                                     0})
          .ok());
  ASSERT_TRUE(g.remove_nf("bb1", "fw").ok());
  const BisBis* bb = g.find_bisbis("bb1");
  ASSERT_EQ(bb->flowrules.size(), 1u);
  EXPECT_EQ(bb->flowrules[0].id, "keep");
}

TEST(Nffg, RemoveFlowrule) {
  Nffg g = two_node_graph();
  ASSERT_TRUE(
      g.add_flowrule("bb1", Flowrule{"r", {"bb1", 0}, {"bb1", 1}, "", "", 0})
          .ok());
  EXPECT_TRUE(g.remove_flowrule("bb1", "r").ok());
  EXPECT_EQ(g.remove_flowrule("bb1", "r").error().code, ErrorCode::kNotFound);
  EXPECT_EQ(g.remove_flowrule("zz", "r").error().code, ErrorCode::kNotFound);
}

TEST(Nffg, LinksOf) {
  Nffg g = two_node_graph();
  const auto links = g.links_of("bb1");
  // sap1 pair + bb1<->bb2 pair = 4 links touch bb1.
  EXPECT_EQ(links.size(), 4u);
}

TEST(Nffg, StatsAggregates) {
  Nffg g = two_node_graph();
  ASSERT_TRUE(g.place_nf("bb1", make_nf("fw", "fw", {2, 100, 1}, 2)).ok());
  ASSERT_TRUE(
      g.add_flowrule("bb1", Flowrule{"r", {"bb1", 0}, {"fw", 0}, "", "", 0})
          .ok());
  const NffgStats s = g.stats();
  EXPECT_EQ(s.bisbis_count, 2u);
  EXPECT_EQ(s.sap_count, 2u);
  EXPECT_EQ(s.link_count, 6u);
  EXPECT_EQ(s.nf_count, 1u);
  EXPECT_EQ(s.flowrule_count, 1u);
  EXPECT_EQ(s.total_capacity, (Resources{12, 12288, 150}));
  EXPECT_EQ(s.total_allocated, (Resources{2, 100, 1}));
}

TEST(Nffg, EqualityDetectsDifferences) {
  Nffg a = two_node_graph();
  Nffg b = two_node_graph();
  EXPECT_EQ(a, b);
  ASSERT_TRUE(b.place_nf("bb1", make_nf("fw", "fw", {1, 1, 1})).ok());
  EXPECT_FALSE(a == b);
}

TEST(NffgValidate, CleanGraphHasNoProblems) {
  EXPECT_TRUE(two_node_graph().validate().empty());
}

TEST(NffgValidate, DetectsOvercommit) {
  Nffg g = two_node_graph();
  ASSERT_TRUE(g.place_nf("bb1", make_nf("x", "t", {100, 0, 0}), true).ok());
  const auto problems = g.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("overcommitted"), std::string::npos);
}

TEST(NffgValidate, DetectsBandwidthOvercommit) {
  Nffg g = two_node_graph();
  g.find_link("l-bb1-bb2")->reserved = 5000;  // capacity is 1000
  const auto problems = g.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("bandwidth-overcommitted"), std::string::npos);
}

TEST(NffgValidate, DetectsDanglingFlowrulePort) {
  Nffg g = two_node_graph();
  // Bypass add_flowrule checks by mutating directly.
  g.find_bisbis("bb1")->flowrules.push_back(
      Flowrule{"bad", {"ghost", 0}, {"bb1", 0}, "", "", 0});
  const auto problems = g.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unresolvable"), std::string::npos);
}

TEST(NffgValidate, DetectsDuplicatePortsAndRules) {
  Nffg g;
  BisBis bb = make_bisbis("bb", {1, 1, 1}, 2);
  bb.ports.push_back(Port{0, "dup"});
  ASSERT_TRUE(g.add_bisbis(std::move(bb)).ok());
  auto* node = g.find_bisbis("bb");
  node->flowrules.push_back(Flowrule{"r", {"bb", 0}, {"bb", 1}, "", "", 0});
  node->flowrules.push_back(Flowrule{"r", {"bb", 0}, {"bb", 1}, "", "", 0});
  const auto problems = g.validate();
  EXPECT_EQ(problems.size(), 2u);  // duplicate port + duplicate rule id
}

}  // namespace
}  // namespace unify::model
