#include "model/nffg_diff.h"

#include <gtest/gtest.h>

#include "model/nffg_builder.h"

namespace unify::model {
namespace {

Nffg base_graph() {
  Nffg g{"g"};
  EXPECT_TRUE(g.add_bisbis(make_bisbis("bb1", {8, 8192, 100}, 4)).ok());
  EXPECT_TRUE(g.add_bisbis(make_bisbis("bb2", {8, 8192, 100}, 4)).ok());
  connect(g, "bb1", 1, "bb2", 1, {1000, 1});
  attach_sap(g, "sap1", "bb1", 0);
  return g;
}

TEST(Diff, IdenticalGraphsGiveEmptyDelta) {
  Nffg a = base_graph();
  Nffg b = base_graph();
  auto delta = diff(a, b);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
  EXPECT_EQ(delta->size(), 0u);
}

TEST(Diff, DetectsNfAddition) {
  Nffg a = base_graph();
  Nffg b = base_graph();
  ASSERT_TRUE(b.place_nf("bb1", make_nf("fw", "fw", {1, 64, 1})).ok());
  auto delta = diff(a, b);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->nf_placements.size(), 1u);
  EXPECT_EQ(delta->nf_placements[0].bisbis, "bb1");
  EXPECT_EQ(delta->nf_placements[0].nf.id, "fw");
  EXPECT_TRUE(delta->nf_removals.empty());
}

TEST(Diff, DetectsNfRemoval) {
  Nffg a = base_graph();
  ASSERT_TRUE(a.place_nf("bb1", make_nf("fw", "fw", {1, 64, 1})).ok());
  Nffg b = base_graph();
  auto delta = diff(a, b);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->nf_removals.size(), 1u);
  EXPECT_EQ(delta->nf_removals[0].nf_id, "fw");
}

TEST(Diff, ModifiedNfBecomesRemovePlusAdd) {
  Nffg a = base_graph();
  ASSERT_TRUE(a.place_nf("bb1", make_nf("fw", "fw", {1, 64, 1})).ok());
  Nffg b = base_graph();
  ASSERT_TRUE(b.place_nf("bb1", make_nf("fw", "fw", {2, 128, 1})).ok());
  auto delta = diff(a, b);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->nf_removals.size(), 1u);
  EXPECT_EQ(delta->nf_placements.size(), 1u);
  EXPECT_EQ(delta->nf_placements[0].nf.requirement.cpu, 2);
}

TEST(Diff, StatusChangeIsNotConfigChange) {
  Nffg a = base_graph();
  ASSERT_TRUE(a.place_nf("bb1", make_nf("fw", "fw", {1, 64, 1})).ok());
  Nffg b = a;
  b.find_bisbis("bb1")->nfs.at("fw").status = NfStatus::kRunning;
  auto delta = diff(a, b);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(delta->empty());
}

TEST(Diff, FlowruleChanges) {
  Nffg a = base_graph();
  ASSERT_TRUE(
      a.add_flowrule("bb1", Flowrule{"keep", {"bb1", 0}, {"bb1", 1}, "", "",
                                     0})
          .ok());
  ASSERT_TRUE(
      a.add_flowrule("bb1", Flowrule{"mod", {"bb1", 0}, {"bb1", 2}, "", "",
                                     10})
          .ok());
  ASSERT_TRUE(
      a.add_flowrule("bb1", Flowrule{"drop", {"bb1", 2}, {"bb1", 3}, "", "",
                                     0})
          .ok());
  Nffg b = base_graph();
  ASSERT_TRUE(
      b.add_flowrule("bb1", Flowrule{"keep", {"bb1", 0}, {"bb1", 1}, "", "",
                                     0})
          .ok());
  ASSERT_TRUE(
      b.add_flowrule("bb1", Flowrule{"mod", {"bb1", 0}, {"bb1", 2}, "", "",
                                     20})
          .ok());
  ASSERT_TRUE(
      b.add_flowrule("bb1", Flowrule{"new", {"bb1", 1}, {"bb1", 3}, "", "",
                                     0})
          .ok());
  auto delta = diff(a, b);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->rule_removals.size(), 2u);  // mod + drop
  EXPECT_EQ(delta->rule_installs.size(), 2u);  // mod + new
}

TEST(Diff, MismatchedInfrastructureRejected) {
  Nffg a = base_graph();
  Nffg b = base_graph();
  ASSERT_TRUE(b.add_bisbis(make_bisbis("bb3", {1, 1, 1}, 1)).ok());
  EXPECT_EQ(diff(a, b).error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(diff(b, a).error().code, ErrorCode::kInvalidArgument);
}

TEST(Apply, DeltaTransformsBaseIntoTarget) {
  Nffg a = base_graph();
  ASSERT_TRUE(a.place_nf("bb1", make_nf("old", "t", {1, 1, 1}, 2)).ok());
  ASSERT_TRUE(
      a.add_flowrule("bb1", Flowrule{"r-old", {"bb1", 0}, {"old", 0}, "", "",
                                     0})
          .ok());

  Nffg b = base_graph();
  ASSERT_TRUE(b.place_nf("bb2", make_nf("new", "t", {2, 2, 2}, 2)).ok());
  ASSERT_TRUE(
      b.add_flowrule("bb2", Flowrule{"r-new", {"bb2", 0}, {"new", 0}, "", "",
                                     5})
          .ok());

  auto delta = diff(a, b);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(apply(a, *delta).ok());
  // NF sets and flowrules now match (a keeps its own id/name metadata).
  EXPECT_TRUE(a.find_nf("new").has_value());
  EXPECT_FALSE(a.find_nf("old").has_value());
  EXPECT_NE(a.find_bisbis("bb2")->find_flowrule("r-new"), nullptr);
  EXPECT_EQ(a.find_bisbis("bb1")->find_flowrule("r-old"), nullptr);
  // Re-diff is empty.
  auto again = diff(a, b);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

TEST(Apply, FailsOnMissingEntities) {
  Nffg g = base_graph();
  ConfigDelta delta;
  delta.nf_removals.push_back(NfRemoval{"bb1", "ghost"});
  EXPECT_EQ(apply(g, delta).error().code, ErrorCode::kNotFound);
}

TEST(Apply, RespectsCapacityChecks) {
  Nffg g = base_graph();
  ConfigDelta delta;
  delta.nf_placements.push_back(
      NfPlacement{"bb1", make_nf("huge", "t", {999, 0, 0})});
  EXPECT_EQ(apply(g, delta).error().code, ErrorCode::kResourceExhausted);
}

TEST(DeltaJson, RoundTrip) {
  Nffg a = base_graph();
  Nffg b = base_graph();
  ASSERT_TRUE(b.place_nf("bb1", make_nf("fw", "fw", {1, 64, 1}, 2)).ok());
  ASSERT_TRUE(
      b.add_flowrule("bb1", Flowrule{"r", {"bb1", 0}, {"fw", 0}, "in", "out",
                                     7})
          .ok());
  auto delta = diff(a, b);
  ASSERT_TRUE(delta.ok());

  auto decoded = delta_from_json(delta_to_json(*delta));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(apply(a, *decoded).ok());
  auto check = diff(a, b);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->empty());
}

TEST(DeltaJson, EmptyDeltaRoundTrips) {
  auto decoded = delta_from_json(delta_to_json(ConfigDelta{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(DeltaJson, RejectsMalformed) {
  EXPECT_FALSE(delta_from_json(json::Value{1}).ok());
  auto parsed = json::parse(R"({"rule_installs":[{"bisbis":"b"}]})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(delta_from_json(*parsed).ok());  // missing rule body
}

}  // namespace
}  // namespace unify::model
