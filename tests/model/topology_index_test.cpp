#include "model/topology_index.h"

#include <gtest/gtest.h>

#include "model/nffg_builder.h"

namespace unify::model {
namespace {

/// sap1 - bb1 - bb2 - sap2, plus a slower direct detour bb1-bb3-bb2.
Nffg chain_graph() {
  Nffg g{"g"};
  EXPECT_TRUE(
      g.add_bisbis(make_bisbis("bb1", {8, 1024, 10}, 4, 0.1)).ok());
  EXPECT_TRUE(
      g.add_bisbis(make_bisbis("bb2", {8, 1024, 10}, 4, 0.1)).ok());
  EXPECT_TRUE(
      g.add_bisbis(make_bisbis("bb3", {8, 1024, 10}, 4, 0.5)).ok());
  connect(g, "bb1", 1, "bb2", 1, {1000, 1.0});
  connect(g, "bb1", 2, "bb3", 1, {1000, 1.0});
  connect(g, "bb3", 2, "bb2", 2, {1000, 1.0});
  attach_sap(g, "sap1", "bb1", 0, {1000, 0.1});
  attach_sap(g, "sap2", "bb2", 0, {1000, 0.1});
  return g;
}

TEST(TopologyIndex, IndexesAllNodes) {
  Nffg g = chain_graph();
  TopologyIndex index(g);
  EXPECT_EQ(index.graph().node_count(), 5u);   // 3 BiS-BiS + 2 SAPs
  EXPECT_EQ(index.graph().edge_count(), 10u);  // 5 bidirectional pairs
  EXPECT_NE(index.node_of("bb1"), graph::kInvalidId);
  EXPECT_NE(index.node_of("sap1"), graph::kInvalidId);
  EXPECT_EQ(index.node_of("ghost"), graph::kInvalidId);
  EXPECT_EQ(index.id_of(index.node_of("bb2")), "bb2");
}

TEST(TopologyIndex, SapFlagSet) {
  Nffg g = chain_graph();
  TopologyIndex index(g);
  EXPECT_TRUE(index.graph().node(index.node_of("sap1")).is_sap);
  EXPECT_FALSE(index.graph().node(index.node_of("bb1")).is_sap);
}

TEST(TopologyIndex, ShortestPathByDelayPrefersDirect) {
  Nffg g = chain_graph();
  TopologyIndex index(g);
  auto path = graph::shortest_path(
      index.graph().node_capacity(), index.node_of("sap1"),
      index.node_of("sap2"), index.scan_by_delay(0));
  ASSERT_TRUE(path.has_value());
  // sap1 -> bb1 -> bb2 -> sap2 (direct, cheapest).
  ASSERT_EQ(path->nodes.size(), 4u);
  EXPECT_EQ(index.id_of(path->nodes[1]), "bb1");
  EXPECT_EQ(index.id_of(path->nodes[2]), "bb2");
}

TEST(TopologyIndex, BandwidthMaskingForcesDetour) {
  Nffg g = chain_graph();
  // Exhaust the direct bb1->bb2 link.
  g.find_link("l-bb1-bb2")->reserved = 1000;
  TopologyIndex index(g);
  auto path = graph::shortest_path(
      index.graph().node_capacity(), index.node_of("sap1"),
      index.node_of("sap2"), index.scan_by_delay(100));
  ASSERT_TRUE(path.has_value());
  // Must detour through bb3 now.
  ASSERT_EQ(path->nodes.size(), 5u);
  EXPECT_EQ(index.id_of(path->nodes[2]), "bb3");
}

TEST(TopologyIndex, ReservationChangesVisibleWithoutReindex) {
  Nffg g = chain_graph();
  TopologyIndex index(g);
  auto before = graph::shortest_path(
      index.graph().node_capacity(), index.node_of("sap1"),
      index.node_of("sap2"), index.scan_by_delay(500));
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->nodes.size(), 4u);
  // Reserve after the index was built; the scan reads live state.
  g.find_link("l-bb1-bb2")->reserved = 600;
  auto after = graph::shortest_path(
      index.graph().node_capacity(), index.node_of("sap1"),
      index.node_of("sap2"), index.scan_by_delay(500));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->nodes.size(), 5u);  // detour
}

TEST(TopologyIndex, HopScanIgnoresDelay) {
  Nffg g = chain_graph();
  // Make the direct link slow; hop-count routing should still use it.
  g.find_link("l-bb1-bb2")->attrs.delay = 99;
  g.find_link("l-bb1-bb2-back")->attrs.delay = 99;
  TopologyIndex index(g);
  auto path = graph::shortest_path(
      index.graph().node_capacity(), index.node_of("sap1"),
      index.node_of("sap2"), index.scan_by_hops(0));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hop_count(), 3u);
  EXPECT_EQ(path->cost, 3.0);
}

TEST(TopologyIndex, PathDelayAddsInternalDelays) {
  Nffg g = chain_graph();
  TopologyIndex index(g);
  auto path = graph::shortest_path(
      index.graph().node_capacity(), index.node_of("sap1"),
      index.node_of("sap2"), index.scan_by_delay(0));
  ASSERT_TRUE(path.has_value());
  // Links: 0.1 + 1.0 + 0.1 = 1.2; transit nodes bb1, bb2: +0.2.
  EXPECT_NEAR(path_delay(index, *path), 1.4, 1e-9);
}

TEST(TopologyIndex, DelayScanChargesInternalDelayInCost) {
  Nffg g = chain_graph();
  TopologyIndex index(g);
  // Force the detour and check it ranks above direct due to bb3 internal
  // delay: direct cost = 0.1+0.1(bb1) +1.0+0.1(bb2) +0.1 = 1.4; detour cost
  // = 0.1+0.1 +1.0+0.5(bb3) +1.0+0.1(bb2) +0.1 = 2.9.
  auto paths = graph::k_shortest_paths(
      index.graph().node_capacity(), index.node_of("sap1"),
      index.node_of("sap2"), 2, index.scan_by_delay(0));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NEAR(paths[0].cost, 1.4, 1e-9);
  EXPECT_NEAR(paths[1].cost, 2.9, 1e-9);
}

}  // namespace
}  // namespace unify::model
