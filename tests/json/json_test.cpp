#include "json/json.h"

#include <gtest/gtest.h>

namespace unify::json {
namespace {

// ------------------------------------------------------------ value model

TEST(JsonValue, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Type::kNull);
}

TEST(JsonValue, ScalarConstruction) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3.5).is_number());
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_EQ(Value(3.5).as_number(), 3.5);
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(JsonValue, DeepCopy) {
  Object obj;
  obj.set("list", Array{1, 2, 3});
  Value a{std::move(obj)};
  Value b = a;
  b.as_object()["list"].as_array().push_back(Value{4});
  EXPECT_EQ(a.as_object().find("list")->as_array().size(), 3u);
  EXPECT_EQ(b.as_object().find("list")->as_array().size(), 4u);
}

TEST(JsonObject, PreservesInsertionOrder) {
  Object obj;
  obj.set("zulu", 1);
  obj.set("alpha", 2);
  obj.set("mike", 3);
  std::vector<std::string> keys;
  for (const auto& [k, v] : obj) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"zulu", "alpha", "mike"}));
}

TEST(JsonObject, SetOverwritesInPlace) {
  Object obj;
  obj.set("a", 1);
  obj.set("b", 2);
  obj.set("a", 9);
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.find("a")->as_int(), 9);
}

TEST(JsonObject, EraseAndContains) {
  Object obj;
  obj.set("a", 1);
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_TRUE(obj.erase("a"));
  EXPECT_FALSE(obj.contains("a"));
  EXPECT_FALSE(obj.erase("a"));
}

TEST(JsonObject, SubscriptCreatesNull) {
  Object obj;
  Value& v = obj["fresh"];
  EXPECT_TRUE(v.is_null());
  EXPECT_TRUE(obj.contains("fresh"));
}

TEST(JsonValue, EqualityIsOrderInsensitiveForObjects) {
  Object a, b;
  a.set("x", 1);
  a.set("y", 2);
  b.set("y", 2);
  b.set("x", 1);
  EXPECT_EQ(Value{std::move(a)}, Value{std::move(b)});
}

TEST(JsonValue, EqualityIsOrderSensitiveForArrays) {
  EXPECT_NE((Value{Array{1, 2}}), (Value{Array{2, 1}}));
  EXPECT_EQ((Value{Array{1, 2}}), (Value{Array{1, 2}}));
}

TEST(JsonValue, LenientGetters) {
  Object obj;
  obj.set("name", "fw0");
  obj.set("cpu", 4);
  obj.set("up", true);
  Value v{std::move(obj)};
  EXPECT_EQ(v.get_string("name"), "fw0");
  EXPECT_EQ(v.get_int("cpu"), 4);
  EXPECT_TRUE(v.get_bool("up"));
  EXPECT_EQ(v.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(v.get_number("missing", 2.5), 2.5);
  EXPECT_EQ(v.get_int("name", -1), -1);  // wrong type -> fallback
  EXPECT_EQ(Value{3}.get("x"), nullptr);  // non-object
}

// ----------------------------------------------------------------- dump

TEST(JsonDump, Scalars) {
  EXPECT_EQ(Value{}.dump(), "null");
  EXPECT_EQ(Value{true}.dump(), "true");
  EXPECT_EQ(Value{false}.dump(), "false");
  EXPECT_EQ(Value{42}.dump(), "42");
  EXPECT_EQ(Value{2.5}.dump(), "2.5");
  EXPECT_EQ(Value{"hey"}.dump(), "\"hey\"");
}

TEST(JsonDump, EscapesSpecials) {
  EXPECT_EQ(Value{"a\"b\\c\nd"}.dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Value{std::string("\x01", 1)}.dump(), "\"\\u0001\"");
}

TEST(JsonDump, NestedStructure) {
  Object inner;
  inner.set("id", "nf1");
  Object outer;
  outer.set("nfs", Array{Value{std::move(inner)}});
  outer.set("count", 1);
  EXPECT_EQ(Value{std::move(outer)}.dump(),
            R"({"nfs":[{"id":"nf1"}],"count":1})");
}

TEST(JsonDump, EmptyContainers) {
  EXPECT_EQ(Value{Array{}}.dump(), "[]");
  EXPECT_EQ(Value{Object{}}.dump(), "{}");
}

TEST(JsonDump, PrettyIndents) {
  Object obj;
  obj.set("a", 1);
  EXPECT_EQ(Value{std::move(obj)}.dump_pretty(), "{\n  \"a\": 1\n}");
}

// ---------------------------------------------------------------- parse

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->as_bool(), true);
  EXPECT_EQ(parse("false")->as_bool(), false);
  EXPECT_EQ(parse("42")->as_int(), 42);
  EXPECT_EQ(parse("-17")->as_int(), -17);
  EXPECT_EQ(parse("2.5")->as_number(), 2.5);
  EXPECT_EQ(parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(parse("1.5E-2")->as_number(), 0.015);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerated) {
  auto r = parse("  {\n \"a\" : [ 1 , 2 ] }\t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get("a")->as_array().size(), 2u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")")->as_string(), "a\"b");
  EXPECT_EQ(parse(R"("tab\there")")->as_string(), "tab\there");
  EXPECT_EQ(parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(parse(R"("é")")->as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(parse(R"("中")")->as_string(), "\xe4\xb8\xad");  // 中
  EXPECT_EQ(parse(R"("😀")")->as_string(),
            "\xf0\x9f\x98\x80");  // 😀 via surrogate pair
}

TEST(JsonParse, RejectsBadSurrogates) {
  EXPECT_FALSE(parse(R"("\ud83d")").ok());
  EXPECT_FALSE(parse(R"("\ude00")").ok());
  EXPECT_FALSE(parse(R"("\ud83dxx")").ok());
}

TEST(JsonParse, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "01", "1.", "1e", "\"unterminated",
        "{\"a\" 1}", "[1 2]", "{1:2}", "nulll", "[]x", "\"\x01\"", "+1",
        "--1", "1e+"}) {
    EXPECT_FALSE(parse(bad).ok()) << "input: " << bad;
  }
}

TEST(JsonParse, ErrorCarriesOffset) {
  auto r = parse("[1, &]");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kProtocol);
  EXPECT_NE(r.error().message.find("byte 4"), std::string::npos);
}

TEST(JsonParse, DeepNestingGuard) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(parse(deep).ok());
}

TEST(JsonParse, AcceptableNestingWorks) {
  std::string nested(100, '[');
  nested += "5";
  nested += std::string(100, ']');
  EXPECT_TRUE(parse(nested).ok());
}

TEST(JsonRoundTrip, ComplexDocument) {
  const char* doc =
      R"({"id":"bisbis-1","resources":{"cpu":8,"mem":16384,"storage":100.5},)"
      R"("ports":[{"id":0,"sap":"sap1"},{"id":1,"sap":null}],)"
      R"("up":true,"note":"a\nb"})";
  auto first = parse(doc);
  ASSERT_TRUE(first.ok());
  auto second = parse(first->dump());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(first->dump(), second->dump());
}

TEST(JsonRoundTrip, PrettyParsesBack) {
  Object obj;
  obj.set("xs", Array{1, Value{"two"}, Value{Object{}}});
  Value v{std::move(obj)};
  auto r = parse(v.dump_pretty());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, v);
}

// Property-style sweep: numbers round-trip through dump/parse.
class JsonNumberRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(JsonNumberRoundTrip, Exact) {
  const double value = GetParam();
  auto parsed = parse(Value{value}.dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->as_number(), value);
}

INSTANTIATE_TEST_SUITE_P(Values, JsonNumberRoundTrip,
                         ::testing::Values(0.0, 1.0, -1.0, 0.5, -0.25, 1e6,
                                           123456789.0, 3.14159, 1e-6,
                                           42.42));

}  // namespace
}  // namespace unify::json
