// Property-based JSON round-trips: randomly generated documents must
// survive dump -> parse -> dump byte-identically, and the parser must
// never crash on mutated wire bytes (it may only reject them).
#include <gtest/gtest.h>

#include "json/json.h"
#include "util/rng.h"

namespace unify::json {
namespace {

Value random_value(Rng& rng, int depth) {
  const int kind =
      depth <= 0 ? static_cast<int>(rng.next_int(0, 3))   // scalars only
                 : static_cast<int>(rng.next_int(0, 5));
  switch (kind) {
    case 0: return Value{};
    case 1: return Value{rng.next_bool(0.5)};
    case 2: {
      // Integers and one-decimal fractions: both survive the writer's
      // 6-significant-digit formatting exactly.
      if (rng.next_bool(0.5)) {
        return Value{static_cast<double>(rng.next_int(-100000, 100000))};
      }
      return Value{static_cast<double>(rng.next_int(-9999, 9999)) / 10.0};
    }
    case 3: {
      std::string s;
      const int len = static_cast<int>(rng.next_int(0, 12));
      for (int i = 0; i < len; ++i) {
        // Printable ASCII plus the characters needing escapes.
        const char* alphabet =
            "abcXYZ089 _-\"\\\n\t/{}[]:,";
        s += alphabet[rng.next_below(24)];
      }
      return Value{std::move(s)};
    }
    case 4: {
      Array arr;
      const int len = static_cast<int>(rng.next_int(0, 4));
      for (int i = 0; i < len; ++i) {
        arr.push_back(random_value(rng, depth - 1));
      }
      return Value{std::move(arr)};
    }
    default: {
      Object obj;
      const int len = static_cast<int>(rng.next_int(0, 4));
      for (int i = 0; i < len; ++i) {
        obj.set("k" + std::to_string(i), random_value(rng, depth - 1));
      }
      return Value{std::move(obj)};
    }
  }
}

class JsonRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(JsonRoundTripProperty, DumpParseDumpIsStable) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const Value original = random_value(rng, 4);
    const std::string wire = original.dump();
    const auto parsed = parse(wire);
    ASSERT_TRUE(parsed.ok()) << "wire: " << wire;
    EXPECT_EQ(*parsed, original) << "wire: " << wire;
    EXPECT_EQ(parsed->dump(), wire);
    // Pretty form parses back to the same value too.
    const auto pretty = parse(original.dump_pretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(*pretty, original);
  }
}

TEST_P(JsonRoundTripProperty, MutatedWireNeverCrashes) {
  Rng rng(GetParam() ^ 0x5EED);
  for (int trial = 0; trial < 100; ++trial) {
    std::string wire = random_value(rng, 3).dump();
    if (wire.empty()) continue;
    // Flip, delete or insert a random byte.
    const auto pos = rng.next_below(wire.size());
    switch (rng.next_int(0, 2)) {
      case 0:
        wire[pos] = static_cast<char>(rng.next_int(32, 126));
        break;
      case 1:
        wire.erase(pos, 1);
        break;
      default:
        wire.insert(pos, 1, static_cast<char>(rng.next_int(32, 126)));
    }
    const auto parsed = parse(wire);  // outcome free; crash forbidden
    if (parsed.ok()) {
      // Whatever parsed must re-serialize without issues.
      volatile std::size_t sink = parsed->dump().size();
      (void)sink;
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

}  // namespace
}  // namespace unify::json
