#include "sg/sg_json.h"

#include <gtest/gtest.h>

namespace unify::sg {
namespace {

TEST(SgJson, RoundTripChain) {
  ServiceGraph sg =
      make_chain("svc", "sap1", {"firewall", "nat"}, "sap2", 100, 20);
  auto decoded = sg_from_json_string(to_json_string(sg));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(*decoded, sg);
  EXPECT_EQ(to_json_string(*decoded), to_json_string(sg));
}

TEST(SgJson, RoundTripWithOverridesAndInfiniteDelay) {
  ServiceGraph sg{"svc"};
  ASSERT_TRUE(sg.add_sap("a", "ingress").ok());
  ASSERT_TRUE(sg.add_sap("b").ok());
  ASSERT_TRUE(
      sg.add_nf(SgNf{"nf", "dpi", 4, model::Resources{9, 999, 9}}).ok());
  ASSERT_TRUE(sg.add_link(SgLink{"l1", {"a", 0}, {"nf", 0}, 10}).ok());
  ASSERT_TRUE(sg.add_link(SgLink{"l2", {"nf", 1}, {"b", 0}, 10}).ok());
  // No max_delay -> infinity must survive the round trip.
  ASSERT_TRUE(sg.add_requirement(
                    {"r", "a", "b",
                     std::numeric_limits<double>::infinity(), 10})
                  .ok());
  auto decoded = sg_from_json_string(to_json_string(sg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, sg);
  EXPECT_EQ(decoded->requirements()[0].max_delay,
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(decoded->find_nf("nf")->requirement_override,
            (model::Resources{9, 999, 9}));
}

TEST(SgJson, ParsesHandWrittenRequest) {
  const char* doc = R"({
    "id": "customer-7",
    "saps": [{"id":"u"},{"id":"net"}],
    "nfs":  [{"id":"fw","type":"firewall"},
             {"id":"pf","type":"parental-filter","ports":2}],
    "links":[{"id":"c1","from":"u:0","to":"fw:0","bandwidth":50},
             {"id":"c2","from":"fw:1","to":"pf:0","bandwidth":50},
             {"id":"c3","from":"pf:1","to":"net:0","bandwidth":50}],
    "requirements":[{"id":"q","from":"u","to":"net",
                     "max_delay":30,"min_bandwidth":50}]})";
  auto sg = sg_from_json_string(doc);
  ASSERT_TRUE(sg.ok()) << sg.error().to_string();
  EXPECT_TRUE(sg->validate().empty());
  auto seq = sg->nf_sequence_for(sg->requirements()[0]);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, (std::vector<std::string>{"fw", "pf"}));
}

TEST(SgJson, RejectsMalformed) {
  EXPECT_FALSE(sg_from_json_string("3").ok());
  EXPECT_FALSE(sg_from_json_string(R"({"id":"x","nfs":3})").ok());
  // Dangling link endpoint.
  EXPECT_FALSE(sg_from_json_string(
                   R"({"id":"x","links":[{"id":"l","from":"a:0","to":"b:0"}]})")
                   .ok());
  // Requirement on unknown SAP.
  EXPECT_FALSE(
      sg_from_json_string(
          R"({"id":"x","saps":[{"id":"a"}],)"
          R"("requirements":[{"id":"r","from":"a","to":"zz"}]})")
          .ok());
}

TEST(SgJson, EmptyGraphRoundTrips) {
  auto decoded = sg_from_json_string(to_json_string(ServiceGraph{"e"}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id(), "e");
}

}  // namespace
}  // namespace unify::sg
