#include "sg/service_graph.h"

#include <gtest/gtest.h>

namespace unify::sg {
namespace {

ServiceGraph fw_nat_chain() {
  return make_chain("svc", "sap1", {"firewall", "nat"}, "sap2", 100, 20);
}

TEST(ServiceGraph, MakeChainShape) {
  ServiceGraph sg = fw_nat_chain();
  EXPECT_EQ(sg.saps().size(), 2u);
  EXPECT_EQ(sg.nfs().size(), 2u);
  EXPECT_EQ(sg.links().size(), 3u);
  ASSERT_EQ(sg.requirements().size(), 1u);
  EXPECT_EQ(sg.requirements()[0].max_delay, 20);
  EXPECT_EQ(sg.requirements()[0].min_bandwidth, 100);
  EXPECT_TRUE(sg.validate().empty());
  ASSERT_NE(sg.find_nf("firewall0"), nullptr);
  EXPECT_EQ(sg.find_nf("firewall0")->type, "firewall");
  ASSERT_NE(sg.find_nf("nat1"), nullptr);
}

TEST(ServiceGraph, DuplicateIdsRejected) {
  ServiceGraph sg{"s"};
  ASSERT_TRUE(sg.add_sap("a").ok());
  EXPECT_EQ(sg.add_sap("a").error().code, ErrorCode::kAlreadyExists);
  EXPECT_EQ(sg.add_nf(SgNf{"a", "t", 2, {}}).error().code,
            ErrorCode::kAlreadyExists);
  ASSERT_TRUE(sg.add_nf(SgNf{"n", "t", 2, {}}).ok());
  EXPECT_EQ(sg.add_sap("n").error().code, ErrorCode::kAlreadyExists);
}

TEST(ServiceGraph, LinkEndpointChecks) {
  ServiceGraph sg{"s"};
  ASSERT_TRUE(sg.add_sap("sap").ok());
  ASSERT_TRUE(sg.add_nf(SgNf{"nf", "t", 2, {}}).ok());
  // SAP must use port 0.
  EXPECT_EQ(
      sg.add_link(SgLink{"l1", {"sap", 1}, {"nf", 0}, 1}).error().code,
      ErrorCode::kNotFound);
  // NF port out of range.
  EXPECT_EQ(
      sg.add_link(SgLink{"l2", {"sap", 0}, {"nf", 5}, 1}).error().code,
      ErrorCode::kNotFound);
  // Unknown node.
  EXPECT_EQ(
      sg.add_link(SgLink{"l3", {"ghost", 0}, {"nf", 0}, 1}).error().code,
      ErrorCode::kNotFound);
  // Negative bandwidth.
  EXPECT_EQ(
      sg.add_link(SgLink{"l4", {"sap", 0}, {"nf", 0}, -1}).error().code,
      ErrorCode::kInvalidArgument);
  // Valid.
  EXPECT_TRUE(sg.add_link(SgLink{"l5", {"sap", 0}, {"nf", 0}, 1}).ok());
  // Duplicate link id.
  EXPECT_EQ(
      sg.add_link(SgLink{"l5", {"nf", 1}, {"sap", 0}, 1}).error().code,
      ErrorCode::kAlreadyExists);
}

TEST(ServiceGraph, RequirementChecks) {
  ServiceGraph sg{"s"};
  ASSERT_TRUE(sg.add_sap("a").ok());
  ASSERT_TRUE(sg.add_sap("b").ok());
  EXPECT_EQ(sg.add_requirement({"r", "a", "zz", 10, 1}).error().code,
            ErrorCode::kNotFound);
  EXPECT_EQ(sg.add_requirement({"r", "a", "b", -1, 1}).error().code,
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(sg.add_requirement({"r", "a", "b", 10, 1}).ok());
  EXPECT_EQ(sg.add_requirement({"r", "b", "a", 10, 1}).error().code,
            ErrorCode::kAlreadyExists);
}

TEST(ServiceGraph, ChainForWalksLinearChain) {
  ServiceGraph sg = fw_nat_chain();
  auto chain = sg.chain_for(sg.requirements()[0]);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 3u);
  EXPECT_EQ((*chain)[0]->from.node, "sap1");
  EXPECT_EQ((*chain)[2]->to.node, "sap2");

  auto seq = sg.nf_sequence_for(sg.requirements()[0]);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, (std::vector<std::string>{"firewall0", "nat1"}));
}

TEST(ServiceGraph, ChainForFailsWithoutDirectedPath) {
  ServiceGraph sg{"s"};
  ASSERT_TRUE(sg.add_sap("a").ok());
  ASSERT_TRUE(sg.add_sap("b").ok());
  ASSERT_TRUE(sg.add_requirement({"r", "a", "b", 10, 1}).ok());
  auto chain = sg.chain_for(sg.requirements()[0]);
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.error().code, ErrorCode::kInfeasible);
}

TEST(ServiceGraph, ChainForBranchingGraphPicksShortest) {
  // a -> nf1 -> b and a -> nf1 -> nf2 -> b: BFS returns the short one.
  ServiceGraph sg{"s"};
  ASSERT_TRUE(sg.add_sap("a").ok());
  ASSERT_TRUE(sg.add_sap("b").ok());
  ASSERT_TRUE(sg.add_nf(SgNf{"nf1", "t", 3, {}}).ok());
  ASSERT_TRUE(sg.add_nf(SgNf{"nf2", "t", 2, {}}).ok());
  ASSERT_TRUE(sg.add_link(SgLink{"l1", {"a", 0}, {"nf1", 0}, 1}).ok());
  ASSERT_TRUE(sg.add_link(SgLink{"l2", {"nf1", 1}, {"b", 0}, 1}).ok());
  ASSERT_TRUE(sg.add_link(SgLink{"l3", {"nf1", 2}, {"nf2", 0}, 1}).ok());
  ASSERT_TRUE(sg.add_link(SgLink{"l4", {"nf2", 1}, {"b", 0}, 1}).ok());
  ASSERT_TRUE(sg.add_requirement({"r", "a", "b", 10, 1}).ok());
  auto seq = sg.nf_sequence_for(sg.requirements()[0]);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, (std::vector<std::string>{"nf1"}));
}

TEST(ServiceGraph, RemoveNfDropsItsLinks) {
  ServiceGraph sg = fw_nat_chain();
  ASSERT_TRUE(sg.remove_nf("nat1").ok());
  EXPECT_EQ(sg.find_nf("nat1"), nullptr);
  EXPECT_EQ(sg.links().size(), 1u);  // only sap1->firewall0 survives
  EXPECT_EQ(sg.remove_nf("nat1").error().code, ErrorCode::kNotFound);
}

TEST(ServiceGraph, ValidateFindsOrphanNf) {
  ServiceGraph sg{"s"};
  ASSERT_TRUE(sg.add_nf(SgNf{"lonely", "t", 2, {}}).ok());
  const auto problems = sg.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("not on any chain link"), std::string::npos);
}

TEST(ServiceGraph, ReplaceNfRedirectsExternalLinks) {
  ServiceGraph sg = fw_nat_chain();
  // Replace firewall0 by two components a->b.
  std::vector<SgNf> comps{{"firewall0.a", "fw-lite", 2, {}},
                          {"firewall0.b", "fw-stateful", 2, {}}};
  std::vector<SgLink> internal{
      {"firewall0.l0", {"firewall0.a", 1}, {"firewall0.b", 0}, 100}};
  std::map<int, model::PortRef> redirect{
      {0, {"firewall0.a", 0}}, {1, {"firewall0.b", 1}}};
  ASSERT_TRUE(sg.replace_nf("firewall0", comps, internal, redirect).ok());
  EXPECT_EQ(sg.find_nf("firewall0"), nullptr);
  EXPECT_NE(sg.find_nf("firewall0.a"), nullptr);
  EXPECT_TRUE(sg.validate().empty());
  // The chain now traverses three NFs.
  auto seq = sg.nf_sequence_for(sg.requirements()[0]);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, (std::vector<std::string>{"firewall0.a", "firewall0.b",
                                            "nat1"}));
}

TEST(ServiceGraph, ReplaceNfRequiresCompleteRedirect) {
  ServiceGraph sg = fw_nat_chain();
  // Missing redirect for port 1 (used by link to nat1).
  std::map<int, model::PortRef> redirect{{0, {"firewall0.a", 0}}};
  auto r = sg.replace_nf("firewall0", {{"firewall0.a", "fw-lite", 2, {}}},
                         {}, redirect);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  // Graph untouched.
  EXPECT_NE(sg.find_nf("firewall0"), nullptr);
  EXPECT_TRUE(sg.validate().empty());
}

// Property sweep: chains of any length validate and extract correctly.
class ChainLength : public ::testing::TestWithParam<int> {};

TEST_P(ChainLength, ExtractsFullSequence) {
  const int n = GetParam();
  std::vector<std::string> types;
  for (int i = 0; i < n; ++i) types.push_back("nf-type");
  ServiceGraph sg = make_chain("svc", "in", types, "out", 50, 100);
  EXPECT_TRUE(sg.validate().empty());
  EXPECT_EQ(sg.links().size(), static_cast<std::size_t>(n) + 1);
  auto seq = sg.nf_sequence_for(sg.requirements()[0]);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLength,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace unify::sg
