#include <gtest/gtest.h>

#include "adapters/cloud_adapter.h"
#include "adapters/emu_adapter.h"
#include "adapters/sdn_adapter.h"
#include "adapters/un_adapter.h"
#include "model/nffg_builder.h"

namespace unify::adapters {
namespace {

using model::Resources;

// ------------------------------------------------------------ SdnAdapter

struct SdnFixture : ::testing::Test {
  SdnFixture() : net(clock, "sdn") {
    EXPECT_TRUE(net.add_switch("s1", 4).ok());
    EXPECT_TRUE(net.add_switch("s2", 4).ok());
    EXPECT_TRUE(net.connect("s1", 1, "s2", 1, {1000, 1.0}).ok());
    EXPECT_TRUE(net.attach_sap("sapA", "s1", 0, {1000, 0.1}).ok());
  }
  SimClock clock;
  infra::SdnNetwork net;
};

TEST_F(SdnFixture, ViewIsForwardingOnly) {
  SdnAdapter adapter(net);
  auto view = adapter.fetch_view();
  ASSERT_TRUE(view.ok()) << view.error().to_string();
  EXPECT_EQ(view->bisbis().size(), 2u);
  const model::BisBis* s1 = view->find_bisbis("sdn.s1");
  ASSERT_NE(s1, nullptr);
  EXPECT_TRUE(s1->capacity.is_zero());
  EXPECT_EQ(view->saps().size(), 1u);
  // Wires + SAP attachment, both directions.
  EXPECT_EQ(view->links().size(), 4u);
  EXPECT_TRUE(view->validate().empty());
}

TEST_F(SdnFixture, ApplyInstallsFlows) {
  SdnAdapter adapter(net);
  auto view = adapter.fetch_view();
  ASSERT_TRUE(view.ok());
  model::Nffg desired = *view;
  ASSERT_TRUE(desired
                  .add_flowrule("sdn.s1",
                                model::Flowrule{"r1", {"sdn.s1", 0},
                                                {"sdn.s1", 1}, "", "t", 10})
                  .ok());
  ASSERT_TRUE(adapter.apply(desired).ok());
  EXPECT_EQ(net.fabric().find_switch("s1")->entries().size(), 1u);
  EXPECT_EQ(adapter.native_operations(), 1u);
  // Re-applying the same config is a no-op delta.
  ASSERT_TRUE(adapter.apply(desired).ok());
  EXPECT_EQ(adapter.native_operations(), 1u);
  // Removing the rule uninstalls it.
  ASSERT_TRUE(adapter.apply(*view).ok());
  EXPECT_TRUE(net.fabric().find_switch("s1")->entries().empty());
}

TEST_F(SdnFixture, RejectsNfPlacement) {
  SdnAdapter adapter(net);
  auto view = adapter.fetch_view();
  ASSERT_TRUE(view.ok());
  model::Nffg desired = *view;
  ASSERT_TRUE(desired
                  .place_nf("sdn.s1", model::make_nf("nf", "nat", {1, 1, 1}),
                            true)
                  .ok());
  auto r = adapter.apply(desired);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kRejected);
}

// ---------------------------------------------------------- CloudAdapter

struct CloudFixture : ::testing::Test {
  CloudFixture() : cloud(clock, "dc") {
    EXPECT_TRUE(cloud.add_hypervisor("hv1", {8, 8192, 100}).ok());
    EXPECT_TRUE(cloud.add_hypervisor("hv2", {8, 8192, 100}).ok());
    adapter = std::make_unique<CloudAdapter>(cloud);
    adapter->map_sap(0, "sapX", {10000, 0.1});
    adapter->map_sap(1, "sapY", {10000, 0.1});
  }
  SimClock clock;
  infra::Cloud cloud;
  std::unique_ptr<CloudAdapter> adapter;
};

TEST_F(CloudFixture, ViewIsOneBigNode) {
  auto view = adapter->fetch_view();
  ASSERT_TRUE(view.ok()) << view.error().to_string();
  EXPECT_EQ(view->bisbis().size(), 1u);
  const model::BisBis* dc = view->find_bisbis("dc.dc");
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->capacity, (Resources{16, 16384, 200}));
  EXPECT_EQ(view->saps().size(), 2u);
  EXPECT_TRUE(view->validate().empty());
}

TEST_F(CloudFixture, ApplyBootsVmsAndSteers) {
  auto view = adapter->fetch_view();
  ASSERT_TRUE(view.ok());
  model::Nffg desired = *view;
  ASSERT_TRUE(
      desired.place_nf("dc.dc", model::make_nf("fw0", "firewall",
                                               {2, 1024, 4}, 2))
          .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("dc.dc",
                                model::Flowrule{"in", {"dc.dc", 0},
                                                {"fw0", 0}, "", "", 10})
                  .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("dc.dc",
                                model::Flowrule{"out", {"fw0", 1},
                                                {"dc.dc", 1}, "", "", 10})
                  .ok());
  ASSERT_TRUE(adapter->apply(desired).ok());
  ASSERT_NE(cloud.find_vm("fw0"), nullptr);
  EXPECT_EQ(cloud.find_vm("fw0")->image, "firewall");

  // Status flows north once the VM becomes ACTIVE.
  auto early = adapter->fetch_view();
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->find_bisbis("dc.dc")->nfs.at("fw0").status,
            model::NfStatus::kDeploying);
  clock.run_until_idle();
  auto late = adapter->fetch_view();
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->find_bisbis("dc.dc")->nfs.at("fw0").status,
            model::NfStatus::kRunning);

  // Data plane wired ext0 -> fw0:0 and fw0:1 -> ext1.
  auto in_trace = cloud.fabric().trace("ext0");
  EXPECT_EQ(in_trace.egress_endpoint, "fw0:0");
  auto out_trace = cloud.fabric().trace("fw0:1");
  EXPECT_EQ(out_trace.egress_endpoint, "ext1");

  // Teardown.
  ASSERT_TRUE(adapter->apply(*view).ok());
  EXPECT_EQ(cloud.find_vm("fw0")->status, infra::VmStatus::kDeleted);
  EXPECT_TRUE(cloud.fabric().trace("ext0").dropped);
}

TEST_F(CloudFixture, CapacityErrorsSurface) {
  auto view = adapter->fetch_view();
  ASSERT_TRUE(view.ok());
  model::Nffg desired = *view;
  ASSERT_TRUE(desired
                  .place_nf("dc.dc",
                            model::make_nf("huge", "dpi", {100, 1, 1}, 2),
                            true)
                  .ok());
  auto r = adapter->apply(desired);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kResourceExhausted);
}

// ------------------------------------------------------------- UnAdapter

TEST(UnAdapterTest, FullLifecycle) {
  SimClock clock;
  infra::UniversalNode un(clock, "un", {8, 8192, 100});
  UnAdapter adapter(un);
  adapter.map_sap(0, "in", {10000, 0.1});
  adapter.map_sap(1, "out", {10000, 0.1});
  auto view = adapter.fetch_view();
  ASSERT_TRUE(view.ok());
  EXPECT_NE(view->find_bisbis("un.un"), nullptr);

  model::Nffg desired = *view;
  ASSERT_TRUE(
      desired.place_nf("un.un", model::make_nf("nat0", "nat", {1, 512, 1}, 2))
          .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("un.un",
                                model::Flowrule{"i", {"un.un", 0},
                                                {"nat0", 0}, "", "", 5})
                  .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("un.un",
                                model::Flowrule{"o", {"nat0", 1},
                                                {"un.un", 1}, "", "", 5})
                  .ok());
  ASSERT_TRUE(adapter.apply(desired).ok());
  ASSERT_NE(un.find_container("nat0"), nullptr);
  EXPECT_EQ(un.fabric().trace("ext0").egress_endpoint, "nat0:0");

  auto refreshed = adapter.fetch_view();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(refreshed->find_bisbis("un.un")->nfs.at("nat0").status,
            model::NfStatus::kRunning);

  ASSERT_TRUE(adapter.apply(*view).ok());
  EXPECT_EQ(un.find_container("nat0")->status,
            infra::ContainerStatus::kStopped);
}

// ------------------------------------------------------------ EmuAdapter

TEST(EmuAdapterTest, ClickProcessesAndFlows) {
  SimClock clock;
  infra::EmuNetwork emu(clock, "emu");
  ASSERT_TRUE(emu.add_switch("s1", 4, {4, 4096, 50}).ok());
  ASSERT_TRUE(emu.add_switch("s2", 4, {4, 4096, 50}).ok());
  ASSERT_TRUE(emu.connect("s1", 1, "s2", 1, {1000, 0.5}).ok());
  ASSERT_TRUE(emu.attach_sap("sapA", "s1", 0, {1000, 0.1}).ok());

  EmuAdapter adapter(emu);
  auto view = adapter.fetch_view();
  ASSERT_TRUE(view.ok()) << view.error().to_string();
  EXPECT_EQ(view->bisbis().size(), 2u);
  EXPECT_EQ(view->find_bisbis("emu.s1")->capacity,
            (Resources{4, 4096, 50}));

  model::Nffg desired = *view;
  ASSERT_TRUE(
      desired.place_nf("emu.s1", model::make_nf("nf0", "nat", {1, 256, 1}, 2))
          .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("emu.s1",
                                model::Flowrule{"i", {"emu.s1", 0},
                                                {"nf0", 0}, "", "", 5})
                  .ok());
  ASSERT_TRUE(desired
                  .add_flowrule("emu.s1",
                                model::Flowrule{"o", {"nf0", 1},
                                                {"emu.s1", 1}, "", "", 5})
                  .ok());
  ASSERT_TRUE(adapter.apply(desired).ok());
  ASSERT_NE(emu.find_click("nf0"), nullptr);
  EXPECT_EQ(emu.find_click("nf0")->host, "s1");
  // Packet from sapA enters the click process.
  EXPECT_EQ(emu.fabric().trace("sapA").egress_endpoint, "nf0:0");

  ASSERT_TRUE(adapter.apply(*view).ok());
  EXPECT_FALSE(emu.find_click("nf0")->running);
}

TEST(EmuAdapterTest, RuleToMissingClickFails) {
  SimClock clock;
  infra::EmuNetwork emu(clock, "emu");
  ASSERT_TRUE(emu.add_switch("s1", 4, {4, 4096, 50}).ok());
  EmuAdapter adapter(emu);
  auto view = adapter.fetch_view();
  ASSERT_TRUE(view.ok());
  model::Nffg desired = *view;
  // Rule references an NF never placed: the model layer already rejects
  // the flowrule (unresolvable port), so building `desired` fails.
  auto bad = desired.add_flowrule(
      "emu.s1",
      model::Flowrule{"r", {"ghost", 0}, {"emu.s1", 0}, "", "", 0});
  EXPECT_FALSE(bad.ok());
}

TEST(FullReinstallAblation, SameFinalStateMoreOps) {
  SimClock clock;
  infra::UniversalNode un_delta(clock, "a", {8, 8192, 100});
  infra::UniversalNode un_naive(clock, "b", {8, 8192, 100});
  UnAdapter delta(un_delta);
  UnAdapter naive(un_naive);
  naive.set_full_reinstall(true);
  for (UnAdapter* adapter : {&delta, &naive}) {
    adapter->map_sap(0, "in", {1000, 0.1});
    adapter->map_sap(1, "out", {1000, 0.1});
  }
  auto view_delta = delta.fetch_view();
  auto view_naive = naive.fetch_view();
  ASSERT_TRUE(view_delta.ok());
  ASSERT_TRUE(view_naive.ok());

  const auto grow = [](model::Nffg config, const std::string& node, int n) {
    for (int i = 0; i < n; ++i) {
      const std::string nf = "nf" + std::to_string(i);
      EXPECT_TRUE(config
                      .place_nf(node, model::make_nf(nf, "monitor",
                                                     {1, 64, 1}, 2))
                      .ok());
    }
    return config;
  };
  // Apply config with 1 NF, then with 3 NFs (superset).
  ASSERT_TRUE(delta.apply(grow(*view_delta, "a.un", 1)).ok());
  ASSERT_TRUE(naive.apply(grow(*view_naive, "b.un", 1)).ok());
  const std::uint64_t delta_before = delta.native_operations();
  const std::uint64_t naive_before = naive.native_operations();
  ASSERT_TRUE(delta.apply(grow(*view_delta, "a.un", 3)).ok());
  ASSERT_TRUE(naive.apply(grow(*view_naive, "b.un", 3)).ok());

  // Same final state in both domains...
  EXPECT_EQ(un_delta.containers().size(), 3u);
  EXPECT_EQ(un_naive.containers().size(), 3u);
  EXPECT_EQ(un_delta.allocated(), un_naive.allocated());
  // ...but the naive strategy paid for re-creating the surviving NF.
  const std::uint64_t delta_ops = delta.native_operations() - delta_before;
  const std::uint64_t naive_ops = naive.native_operations() - naive_before;
  EXPECT_EQ(delta_ops, 2u);   // the two new containers
  EXPECT_EQ(naive_ops, 4u);   // stop 1 + start 3
}

}  // namespace
}  // namespace unify::adapters
