// The POX control channel: RemoteSdnAdapter (RPC client) against
// PoxController (RPC server) must behave exactly like the in-process
// SdnAdapter — same advertised view, same data-plane effect — with the
// framed channel in between.
#include <gtest/gtest.h>

#include "adapters/pox_controller.h"
#include "adapters/remote_sdn_adapter.h"
#include "adapters/sdn_adapter.h"
#include "model/nffg_builder.h"
#include "proto/channel.h"
#include "proto/openflow.h"

namespace unify::adapters {
namespace {

struct RemoteFixture : ::testing::Test {
  RemoteFixture() : net(clock, "sdn") {
    EXPECT_TRUE(net.add_switch("s1", 4).ok());
    EXPECT_TRUE(net.add_switch("s2", 4).ok());
    EXPECT_TRUE(net.connect("s1", 1, "s2", 1, {1000, 1.0}).ok());
    EXPECT_TRUE(net.attach_sap("sapA", "s1", 0, {1000, 0.1}).ok());
    auto [north, south] = proto::make_channel_pair(clock, 150);
    controller = std::make_unique<PoxController>(net, south);
    adapter = std::make_unique<RemoteSdnAdapter>("sdn", north);
  }
  SimClock clock;
  infra::SdnNetwork net;
  std::unique_ptr<PoxController> controller;
  std::unique_ptr<RemoteSdnAdapter> adapter;
};

TEST(OpenflowCodec, FlowModRoundTrip) {
  proto::openflow::FlowMod msg;
  msg.dpid = "s7";
  msg.command = proto::openflow::FlowModCommand::kAdd;
  msg.entry = infra::FlowEntry{"cookie-1", 2, "red", 3, "-", 5};
  const auto decoded =
      proto::openflow::flow_mod_from_json(proto::openflow::to_json(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->dpid, "s7");
  EXPECT_EQ(decoded->command, proto::openflow::FlowModCommand::kAdd);
  EXPECT_EQ(decoded->entry.id, "cookie-1");
  EXPECT_EQ(decoded->entry.in_port, 2);
  EXPECT_EQ(decoded->entry.match_tag, "red");
  EXPECT_EQ(decoded->entry.out_port, 3);
  EXPECT_EQ(decoded->entry.set_tag, "-");
  EXPECT_EQ(decoded->entry.priority, 5);
}

TEST(OpenflowCodec, RejectsMalformed) {
  EXPECT_FALSE(proto::openflow::flow_mod_from_json(json::Value{3}).ok());
  json::Object no_dpid;
  no_dpid.set("command", "add");
  EXPECT_FALSE(
      proto::openflow::flow_mod_from_json(json::Value{std::move(no_dpid)})
          .ok());
  json::Object bad_cmd;
  bad_cmd.set("dpid", "s1");
  bad_cmd.set("command", "flush");
  EXPECT_FALSE(
      proto::openflow::flow_mod_from_json(json::Value{std::move(bad_cmd)})
          .ok());
}

TEST_F(RemoteFixture, ViewMatchesLocalAdapter) {
  SdnAdapter local(net);
  auto local_view = local.fetch_view();
  auto remote_view = adapter->fetch_view();
  ASSERT_TRUE(local_view.ok());
  ASSERT_TRUE(remote_view.ok()) << remote_view.error().to_string();
  // Same id spaces, same structure (names differ only in the view id).
  remote_view->set_id(local_view->id());
  EXPECT_EQ(*remote_view, *local_view);
}

TEST_F(RemoteFixture, FlowModsCrossTheChannel) {
  auto view = adapter->fetch_view();
  ASSERT_TRUE(view.ok());
  model::Nffg desired = *view;
  ASSERT_TRUE(desired
                  .add_flowrule("sdn.s1",
                                model::Flowrule{"r1", {"sdn.s1", 0},
                                                {"sdn.s1", 1}, "", "t", 10})
                  .ok());
  ASSERT_TRUE(adapter->apply(desired).ok());
  // The entry landed in the switch behind the controller.
  ASSERT_EQ(net.fabric().find_switch("s1")->entries().size(), 1u);
  EXPECT_EQ(net.fabric().find_switch("s1")->entries()[0].set_tag, "t");
  EXPECT_GE(controller->requests_handled(), 2u);  // topology + flow_mod
  // Removal crosses too.
  ASSERT_TRUE(adapter->apply(*view).ok());
  EXPECT_TRUE(net.fabric().find_switch("s1")->entries().empty());
}

TEST_F(RemoteFixture, ControllerErrorsPropagate) {
  auto view = adapter->fetch_view();
  ASSERT_TRUE(view.ok());
  model::Nffg desired = *view;
  ASSERT_TRUE(desired
                  .place_nf("sdn.s1", model::make_nf("nf", "nat", {1, 1, 1}),
                            /*force=*/true)
                  .ok());
  auto r = adapter->apply(desired);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kRejected);
}

TEST_F(RemoteFixture, ChannelLatencyIsCharged) {
  const SimTime before = clock.now();
  ASSERT_TRUE(adapter->fetch_view().ok());
  // One RPC round trip at 150 us each way (plus queued timers).
  EXPECT_GE(clock.now() - before, 300);
}

}  // namespace
}  // namespace unify::adapters
