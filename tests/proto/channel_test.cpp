#include "proto/channel.h"

#include <gtest/gtest.h>

namespace unify::proto {
namespace {

TEST(Channel, DeliversAfterLatency) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 500);
  std::string received;
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  a->send("hello");
  EXPECT_TRUE(received.empty());
  clock.advance(499);
  EXPECT_TRUE(received.empty());
  clock.advance(1);
  EXPECT_EQ(received, "hello");
}

TEST(Channel, BothDirections) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  std::string at_a, at_b;
  a->on_receive([&](std::string_view bytes) { at_a += bytes; });
  b->on_receive([&](std::string_view bytes) { at_b += bytes; });
  a->send("ping");
  b->send("pong");
  clock.run_until_idle();
  EXPECT_EQ(at_a, "pong");
  EXPECT_EQ(at_b, "ping");
}

TEST(Channel, PreservesOrder) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  std::string received;
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  a->send("1");
  a->send("2");
  a->send("3");
  clock.run_until_idle();
  EXPECT_EQ(received, "123");
}

TEST(Channel, FragmentsAtChunkSize) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10, 3);
  std::vector<std::string> chunks;
  b->on_receive([&](std::string_view bytes) { chunks.emplace_back(bytes); });
  a->send("abcdefgh");
  clock.run_until_idle();
  EXPECT_EQ(chunks,
            (std::vector<std::string>{"abc", "def", "gh"}));
}

TEST(Channel, BuffersUntilReceiverInstalled) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  a->send("early");
  clock.run_until_idle();
  std::string received;
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  EXPECT_EQ(received, "early");
}

TEST(Channel, CountersTrackTraffic) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  b->on_receive([](std::string_view) {});
  a->send("12345");
  a->send("67");
  EXPECT_EQ(a->counters().messages_sent, 2u);
  EXPECT_EQ(a->counters().bytes_sent, 7u);
  EXPECT_EQ(b->counters().messages_sent, 0u);
}

TEST(Channel, DisconnectStopsTraffic) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  std::string received;
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  EXPECT_TRUE(a->connected());
  a->disconnect();
  EXPECT_FALSE(a->connected());
  EXPECT_FALSE(b->connected());
  a->send("lost");
  clock.run_until_idle();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(a->counters().messages_sent, 0u);
}

TEST(Channel, InFlightBytesSurviveSenderDestruction) {
  SimClock clock;
  std::string received;
  auto [a, b] = make_channel_pair(clock, 10);
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  a->send("parting gift");
  a.reset();  // sender gone before delivery
  clock.run_until_idle();
  EXPECT_EQ(received, "parting gift");
}

TEST(Channel, DeadReceiverDropsBytesSafely) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  a->send("into the void");
  b.reset();
  clock.run_until_idle();  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace unify::proto
