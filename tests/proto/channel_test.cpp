#include "proto/channel.h"

#include <gtest/gtest.h>

namespace unify::proto {
namespace {

TEST(Channel, DeliversAfterLatency) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 500);
  std::string received;
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  ASSERT_TRUE(a->send("hello").ok());
  EXPECT_TRUE(received.empty());
  clock.advance(499);
  EXPECT_TRUE(received.empty());
  clock.advance(1);
  EXPECT_EQ(received, "hello");
}

TEST(Channel, BothDirections) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  std::string at_a, at_b;
  a->on_receive([&](std::string_view bytes) { at_a += bytes; });
  b->on_receive([&](std::string_view bytes) { at_b += bytes; });
  ASSERT_TRUE(a->send("ping").ok());
  ASSERT_TRUE(b->send("pong").ok());
  clock.run_until_idle();
  EXPECT_EQ(at_a, "pong");
  EXPECT_EQ(at_b, "ping");
}

TEST(Channel, PreservesOrder) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  std::string received;
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  ASSERT_TRUE(a->send("1").ok());
  ASSERT_TRUE(a->send("2").ok());
  ASSERT_TRUE(a->send("3").ok());
  clock.run_until_idle();
  EXPECT_EQ(received, "123");
}

TEST(Channel, FragmentsAtChunkSize) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10, 3);
  std::vector<std::string> chunks;
  b->on_receive([&](std::string_view bytes) { chunks.emplace_back(bytes); });
  ASSERT_TRUE(a->send("abcdefgh").ok());
  clock.run_until_idle();
  EXPECT_EQ(chunks,
            (std::vector<std::string>{"abc", "def", "gh"}));
}

TEST(Channel, BuffersUntilReceiverInstalled) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  ASSERT_TRUE(a->send("early").ok());
  clock.run_until_idle();
  std::string received;
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  EXPECT_EQ(received, "early");
}

TEST(Channel, CountersTrackTraffic) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  b->on_receive([](std::string_view) {});
  ASSERT_TRUE(a->send("12345").ok());
  ASSERT_TRUE(a->send("67").ok());
  EXPECT_EQ(a->counters().messages_sent, 2u);
  EXPECT_EQ(a->counters().bytes_sent, 7u);
  EXPECT_EQ(b->counters().messages_sent, 0u);
  clock.run_until_idle();
  EXPECT_EQ(b->counters().messages_received, 2u);
  EXPECT_EQ(b->counters().bytes_received, 7u);
}

TEST(Channel, DisconnectStopsTraffic) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  std::string received;
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  EXPECT_TRUE(a->connected());
  a->disconnect();
  EXPECT_FALSE(a->connected());
  EXPECT_FALSE(b->connected());
  const auto sent = a->send("lost");
  ASSERT_FALSE(sent.ok());  // sends now report the drop instead of hiding it
  EXPECT_EQ(sent.error().code, ErrorCode::kUnavailable);
  clock.run_until_idle();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(a->counters().messages_sent, 0u);
}

TEST(Channel, DisconnectFiresCloseCallbacksOnce) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  int a_closed = 0;
  int b_closed = 0;
  a->on_close([&] { ++a_closed; });
  b->on_close([&] { ++b_closed; });
  b->disconnect();
  b->disconnect();  // idempotent
  EXPECT_EQ(a_closed, 1);
  EXPECT_EQ(b_closed, 1);
}

TEST(Channel, PeerDestructionFiresCloseCallback) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  bool closed = false;
  a->on_close([&] { closed = true; });
  b.reset();
  EXPECT_TRUE(closed);
  EXPECT_FALSE(a->connected());
}

TEST(Channel, InFlightBytesSurviveSenderDestruction) {
  SimClock clock;
  std::string received;
  auto [a, b] = make_channel_pair(clock, 10);
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  ASSERT_TRUE(a->send("parting gift").ok());
  a.reset();  // sender gone before delivery
  clock.run_until_idle();
  EXPECT_EQ(received, "parting gift");
}

TEST(Channel, DeadReceiverDropsBytesSafely) {
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  ASSERT_TRUE(a->send("into the void").ok());
  b.reset();
  clock.run_until_idle();  // must not crash
  SUCCEED();
}

TEST(Channel, DriverPumpRunsPendingDelivery) {
  // The SimDriver exposes the clock through the Transport interface so
  // transport-agnostic code (RpcPeer::call_and_wait) can make progress.
  SimClock clock;
  auto [a, b] = make_channel_pair(clock, 10);
  std::string received;
  b->on_receive([&](std::string_view bytes) { received += bytes; });
  ASSERT_TRUE(a->send("pumped").ok());
  EXPECT_TRUE(a->driver().pump());   // delivery timer pending -> progress
  EXPECT_EQ(received, "pumped");
  EXPECT_FALSE(a->driver().pump());  // idle
  EXPECT_EQ(a->driver().exclusion_key(), b->driver().exclusion_key());
}

}  // namespace
}  // namespace unify::proto
