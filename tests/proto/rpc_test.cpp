#include "proto/rpc.h"

#include <gtest/gtest.h>

#include "proto/channel.h"

namespace unify::proto {
namespace {

struct RpcFixture : ::testing::Test {
  void SetUp() override {
    auto [a, b] = make_channel_pair(clock, 100);
    ea = a;
    eb = b;
    client = std::make_unique<RpcPeer>(a, "client");
    server = std::make_unique<RpcPeer>(b, "server");
  }
  SimClock clock;
  std::shared_ptr<Endpoint> ea, eb;
  std::unique_ptr<RpcPeer> client;
  std::unique_ptr<RpcPeer> server;
};

TEST_F(RpcFixture, RequestResponse) {
  server->on_request("echo", [](const json::Value& params) {
    return Result<json::Value>{params};
  });
  json::Object params;
  params.set("x", 42);
  auto result = client->call_and_wait("echo", json::Value{std::move(params)});
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->get_int("x"), 42);
  EXPECT_EQ(server->requests_handled(), 1u);
}

TEST_F(RpcFixture, ServerErrorPropagates) {
  server->on_request("fail", [](const json::Value&) -> Result<json::Value> {
    return Error{ErrorCode::kRejected, "nope"};
  });
  auto result = client->call_and_wait("fail", json::Value{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kRejected);
  EXPECT_EQ(result.error().message, "nope");
}

TEST_F(RpcFixture, UnknownMethodIsNotFound) {
  auto result = client->call_and_wait("missing", json::Value{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kNotFound);
}

TEST_F(RpcFixture, TimeoutFiresAgainstMuteServer) {
  // The server peer dies but its endpoint stays up: requests reach a
  // transport nobody reads from, so only the deadline can end the call.
  server.reset();
  auto result = client->call_and_wait("echo", json::Value{}, 5000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kTimeout);
}

TEST_F(RpcFixture, ZeroTimeoutMeansNoTimeout) {
  // timeout_us = 0 never arms a deadline: against a mute server the call
  // stays open until the driver goes idle — kUnavailable, not kTimeout.
  server.reset();
  auto result = client->call_and_wait("echo", json::Value{}, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);
}

TEST_F(RpcFixture, CallOnDisconnectedTransportFailsFast) {
  // The satellite contract: a send status instead of a silent drop.
  eb.reset();
  server.reset();
  bool done_fired = false;
  const auto sent = client->call(
      "echo", json::Value{},
      [&done_fired](Result<json::Value>) { done_fired = true; }, 5000);
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code, ErrorCode::kUnavailable);
  clock.run_until_idle();
  EXPECT_FALSE(done_fired);  // send failed => done never fires

  const auto notified = client->notify("status", json::Value{});
  ASSERT_FALSE(notified.ok());
  EXPECT_EQ(notified.error().code, ErrorCode::kUnavailable);
}

TEST_F(RpcFixture, PendingCallsFailWhenTransportCloses) {
  std::optional<Result<json::Value>> slot;
  ASSERT_TRUE(client
                  ->call("echo", json::Value{},
                         [&slot](Result<json::Value> r) { slot = std::move(r); })
                  .ok());
  ea->disconnect();
  ASSERT_TRUE(slot.has_value());
  ASSERT_FALSE(slot->ok());
  EXPECT_EQ(slot->error().code, ErrorCode::kUnavailable);
}

TEST_F(RpcFixture, DisconnectHookFiresAfterPendingCleanup) {
  bool hook_fired = false;
  bool pending_failed = false;
  client->on_disconnect([&] {
    hook_fired = true;
    EXPECT_TRUE(pending_failed);  // pendings settle before the hook
  });
  ASSERT_TRUE(client
                  ->call("echo", json::Value{},
                         [&pending_failed](Result<json::Value> r) {
                           pending_failed = !r.ok();
                         })
                  .ok());
  ea->disconnect();
  EXPECT_TRUE(hook_fired);
}

TEST_F(RpcFixture, ResponseBeatsTimeout) {
  server->on_request("quick", [](const json::Value&) {
    return Result<json::Value>{json::Value{"ok"}};
  });
  auto result = client->call_and_wait("quick", json::Value{}, 100000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_string(), "ok");
  // The still-pending timeout timer must be harmless.
  clock.run_until_idle();
}

TEST_F(RpcFixture, ConcurrentCallsMatchedById) {
  server->on_request("add", [](const json::Value& params) {
    json::Object out;
    out.set("sum", params.get_number("a") + params.get_number("b"));
    return Result<json::Value>{json::Value{std::move(out)}};
  });
  std::vector<double> sums(3, -1);
  for (int i = 0; i < 3; ++i) {
    json::Object params;
    params.set("a", i);
    params.set("b", 10);
    ASSERT_TRUE(client
                    ->call("add", json::Value{std::move(params)},
                           [&sums, i](Result<json::Value> result) {
                             ASSERT_TRUE(result.ok());
                             sums[static_cast<std::size_t>(i)] =
                                 result->get_number("sum");
                           })
                    .ok());
  }
  clock.run_until_idle();
  EXPECT_EQ(sums, (std::vector<double>{10, 11, 12}));
}

TEST_F(RpcFixture, NotificationsDispatch) {
  int count = 0;
  std::string last;
  server->on_notification("status", [&](const json::Value& params) {
    ++count;
    last = params.get_string("state");
  });
  json::Object params;
  params.set("state", "running");
  ASSERT_TRUE(client->notify("status", json::Value{std::move(params)}).ok());
  clock.run_until_idle();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(last, "running");
  EXPECT_EQ(server->requests_handled(), 0u);  // notifications aren't requests
}

TEST_F(RpcFixture, BidirectionalCalls) {
  server->on_request("down", [](const json::Value&) {
    return Result<json::Value>{json::Value{1}};
  });
  client->on_request("up", [](const json::Value&) {
    return Result<json::Value>{json::Value{2}};
  });
  auto down = client->call_and_wait("down", json::Value{});
  auto up = server->call_and_wait("up", json::Value{});
  ASSERT_TRUE(down.ok());
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(down->as_int(), 1);
  EXPECT_EQ(up->as_int(), 2);
}

TEST_F(RpcFixture, LargeParamsSurviveFragmentation) {
  // Rebuild the channel with tiny chunks to stress framing reassembly.
  auto [a, b] = make_channel_pair(clock, 10, 7);
  client = std::make_unique<RpcPeer>(a, "client");
  server = std::make_unique<RpcPeer>(b, "server");
  server->on_request("len", [](const json::Value& params) {
    return Result<json::Value>{
        json::Value{params.get_string("blob").size()}};
  });
  json::Object params;
  params.set("blob", std::string(10000, 'z'));
  auto result = client->call_and_wait("len", json::Value{std::move(params)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_int(), 10000);
}

TEST_F(RpcFixture, HandlerCanCallBack) {
  // Server handler performing a nested call to the client (recursion
  // across layers, as the RO does towards domains).
  client->on_request("leaf", [](const json::Value&) {
    return Result<json::Value>{json::Value{"leaf-data"}};
  });
  server->on_request("root", [this](const json::Value&) -> Result<json::Value> {
    // Nested call: must not deadlock the single-threaded simulation.
    return server->call_and_wait("leaf", json::Value{});
  });
  auto result = client->call_and_wait("root", json::Value{});
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->as_string(), "leaf-data");
}

// ---------------------------------------------------------------------------
// Malformed-input battery: a hostile or buggy peer writes raw frames at an
// RpcPeer. Every case must leave the peer healthy (subsequent well-formed
// RPCs still work) and be observable via protocol_errors().

struct MalformedFixture : RpcFixture {
  void SetUp() override {
    RpcFixture::SetUp();
    server->on_request("echo", [](const json::Value& params) {
      return Result<json::Value>{params};
    });
    // The attacker speaks raw bytes on the client's endpoint; the client
    // RpcPeer is detached so nothing interprets replies sent back north.
    client.reset();
    attacker = ea;
    attacker->on_receive([this](std::string_view bytes) {
      std::vector<std::string> frames;
      ASSERT_TRUE(attacker_decoder.feed(bytes, frames).ok());
      for (auto& f : frames) replies.push_back(std::move(f));
    });
  }

  void inject(std::string_view payload) {
    ASSERT_TRUE(attacker->send(encode_frame(payload)).ok());
    clock.run_until_idle();
  }

  /// The peer must still answer well-formed traffic after the abuse.
  void expect_still_healthy() {
    const std::size_t before = replies.size();
    inject(R"({"id": 777, "method": "echo", "params": {"ok": true}})");
    ASSERT_EQ(replies.size(), before + 1);
    const auto parsed = json::parse(replies.back());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->get_int("id"), 777);
    EXPECT_NE(parsed->get("result"), nullptr);
  }

  std::shared_ptr<Endpoint> attacker;
  FrameDecoder attacker_decoder;
  std::vector<std::string> replies;
};

TEST_F(MalformedFixture, BadJsonFrameIsCountedAndSkipped) {
  inject("{not json at all");
  EXPECT_EQ(server->protocol_errors(), 1u);
  EXPECT_TRUE(replies.empty());
  expect_still_healthy();
}

TEST_F(MalformedFixture, NonObjectFrameIsIgnored) {
  inject("42");
  inject(R"(["an", "array"])");
  EXPECT_EQ(server->protocol_errors(), 2u);
  EXPECT_TRUE(replies.empty());
  expect_still_healthy();
}

TEST_F(MalformedFixture, MissingIdAndMethodIsIgnored) {
  inject(R"({"params": {"x": 1}})");
  EXPECT_EQ(server->protocol_errors(), 1u);
  EXPECT_TRUE(replies.empty());
  expect_still_healthy();
}

TEST_F(MalformedFixture, NonStringMethodGetsProtocolErrorReply) {
  inject(R"({"id": 5, "method": 12, "params": {}})");
  EXPECT_EQ(server->protocol_errors(), 1u);
  ASSERT_EQ(replies.size(), 1u);
  const auto parsed = json::parse(replies.front());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->get_int("id"), 5);
  const json::Value* error = parsed->get("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->get_string("code"), "protocol");
  expect_still_healthy();
}

TEST_F(MalformedFixture, NonStringMethodWithoutIdIsIgnored) {
  inject(R"({"method": false})");
  EXPECT_EQ(server->protocol_errors(), 1u);
  EXPECT_TRUE(replies.empty());
  expect_still_healthy();
}

TEST_F(MalformedFixture, UnknownMethodGetsErrorReply) {
  inject(R"({"id": 9, "method": "no-such-method"})");
  EXPECT_EQ(server->protocol_errors(), 0u);  // well-formed, just unknown
  ASSERT_EQ(replies.size(), 1u);
  const auto parsed = json::parse(replies.front());
  ASSERT_TRUE(parsed.ok());
  const json::Value* error = parsed->get("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->get_string("code"), "not_found");
  expect_still_healthy();
}

TEST_F(MalformedFixture, ResponseForUnknownIdIsIgnored) {
  inject(R"({"id": 424242, "result": {"made": "up"}})");
  EXPECT_EQ(server->protocol_errors(), 1u);
  EXPECT_TRUE(replies.empty());
  expect_still_healthy();
}

TEST_F(MalformedFixture, DuplicateResponseIdFiresDoneOnce) {
  // The server issues a call south; the attacker answers twice.
  int fired = 0;
  std::string got;
  ASSERT_TRUE(server
                  ->call("probe", json::Value{},
                         [&](Result<json::Value> r) {
                           ++fired;
                           ASSERT_TRUE(r.ok());
                           got = r->as_string();
                         })
                  .ok());
  clock.run_until_idle();
  inject(R"({"id": 1, "result": "first"})");
  inject(R"({"id": 1, "result": "second"})");
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(got, "first");
  EXPECT_EQ(server->protocol_errors(), 1u);  // the duplicate
  expect_still_healthy();
}

TEST_F(MalformedFixture, ResponseWithNeitherResultNorErrorIsProtocolError) {
  std::optional<Result<json::Value>> slot;
  ASSERT_TRUE(server
                  ->call("probe", json::Value{},
                         [&slot](Result<json::Value> r) { slot = std::move(r); })
                  .ok());
  clock.run_until_idle();
  inject(R"({"id": 1})");
  ASSERT_TRUE(slot.has_value());
  ASSERT_FALSE(slot->ok());
  EXPECT_EQ(slot->error().code, ErrorCode::kProtocol);
  expect_still_healthy();
}

TEST_F(MalformedFixture, OversizedFrameDisconnectsTheTransport) {
  // A length prefix beyond kMaxFrameBytes means byte-stream sync is gone:
  // the peer must drop the connection rather than guess.
  std::string header;
  header.push_back(static_cast<char>(0x7F));
  header.push_back(static_cast<char>(0xFF));
  header.push_back(static_cast<char>(0xFF));
  header.push_back(static_cast<char>(0xFF));
  ASSERT_TRUE(attacker->send(header).ok());
  clock.run_until_idle();
  EXPECT_GE(server->protocol_errors(), 1u);
  EXPECT_FALSE(attacker->connected());
}

}  // namespace
}  // namespace unify::proto
