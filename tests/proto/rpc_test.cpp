#include "proto/rpc.h"

#include <gtest/gtest.h>

namespace unify::proto {
namespace {

struct RpcFixture : ::testing::Test {
  void SetUp() override {
    auto [a, b] = make_channel_pair(clock, 100);
    client = std::make_unique<RpcPeer>(a, clock, "client");
    server = std::make_unique<RpcPeer>(b, clock, "server");
  }
  SimClock clock;
  std::unique_ptr<RpcPeer> client;
  std::unique_ptr<RpcPeer> server;
};

TEST_F(RpcFixture, RequestResponse) {
  server->on_request("echo", [](const json::Value& params) {
    return Result<json::Value>{params};
  });
  json::Object params;
  params.set("x", 42);
  auto result = client->call_and_wait("echo", json::Value{std::move(params)});
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->get_int("x"), 42);
  EXPECT_EQ(server->requests_handled(), 1u);
}

TEST_F(RpcFixture, ServerErrorPropagates) {
  server->on_request("fail", [](const json::Value&) -> Result<json::Value> {
    return Error{ErrorCode::kRejected, "nope"};
  });
  auto result = client->call_and_wait("fail", json::Value{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kRejected);
  EXPECT_EQ(result.error().message, "nope");
}

TEST_F(RpcFixture, UnknownMethodIsNotFound) {
  auto result = client->call_and_wait("missing", json::Value{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kNotFound);
}

TEST_F(RpcFixture, TimeoutFiresWithoutServer) {
  // No handler and server silently drops? Handler exists but never returns:
  // simulate by disconnecting the channel first.
  server.reset();
  auto result = client->call_and_wait("echo", json::Value{}, 5000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kTimeout);
}

TEST_F(RpcFixture, ResponseBeatsTimeout) {
  server->on_request("quick", [](const json::Value&) {
    return Result<json::Value>{json::Value{"ok"}};
  });
  auto result = client->call_and_wait("quick", json::Value{}, 100000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_string(), "ok");
  // The still-pending timeout timer must be harmless.
  clock.run_until_idle();
}

TEST_F(RpcFixture, ConcurrentCallsMatchedById) {
  server->on_request("add", [](const json::Value& params) {
    json::Object out;
    out.set("sum", params.get_number("a") + params.get_number("b"));
    return Result<json::Value>{json::Value{std::move(out)}};
  });
  std::vector<double> sums(3, -1);
  for (int i = 0; i < 3; ++i) {
    json::Object params;
    params.set("a", i);
    params.set("b", 10);
    client->call("add", json::Value{std::move(params)},
                 [&sums, i](Result<json::Value> result) {
                   ASSERT_TRUE(result.ok());
                   sums[static_cast<std::size_t>(i)] =
                       result->get_number("sum");
                 });
  }
  clock.run_until_idle();
  EXPECT_EQ(sums, (std::vector<double>{10, 11, 12}));
}

TEST_F(RpcFixture, NotificationsDispatch) {
  int count = 0;
  std::string last;
  server->on_notification("status", [&](const json::Value& params) {
    ++count;
    last = params.get_string("state");
  });
  json::Object params;
  params.set("state", "running");
  client->notify("status", json::Value{std::move(params)});
  clock.run_until_idle();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(last, "running");
  EXPECT_EQ(server->requests_handled(), 0u);  // notifications aren't requests
}

TEST_F(RpcFixture, BidirectionalCalls) {
  server->on_request("down", [](const json::Value&) {
    return Result<json::Value>{json::Value{1}};
  });
  client->on_request("up", [](const json::Value&) {
    return Result<json::Value>{json::Value{2}};
  });
  auto down = client->call_and_wait("down", json::Value{});
  auto up = server->call_and_wait("up", json::Value{});
  ASSERT_TRUE(down.ok());
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(down->as_int(), 1);
  EXPECT_EQ(up->as_int(), 2);
}

TEST_F(RpcFixture, LargeParamsSurviveFragmentation) {
  // Rebuild the channel with tiny chunks to stress framing reassembly.
  auto [a, b] = make_channel_pair(clock, 10, 7);
  client = std::make_unique<RpcPeer>(a, clock, "client");
  server = std::make_unique<RpcPeer>(b, clock, "server");
  server->on_request("len", [](const json::Value& params) {
    return Result<json::Value>{
        json::Value{params.get_string("blob").size()}};
  });
  json::Object params;
  params.set("blob", std::string(10000, 'z'));
  auto result = client->call_and_wait("len", json::Value{std::move(params)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_int(), 10000);
}

TEST_F(RpcFixture, HandlerCanCallBack) {
  // Server handler performing a nested call to the client (recursion
  // across layers, as the RO does towards domains).
  client->on_request("leaf", [](const json::Value&) {
    return Result<json::Value>{json::Value{"leaf-data"}};
  });
  server->on_request("root", [this](const json::Value&) -> Result<json::Value> {
    // Nested call: must not deadlock the single-threaded simulation.
    return server->call_and_wait("leaf", json::Value{});
  });
  auto result = client->call_and_wait("root", json::Value{});
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->as_string(), "leaf-data");
}

}  // namespace
}  // namespace unify::proto
