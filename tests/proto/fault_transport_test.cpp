// Unit tests for the fault-injecting transport decorator: every fault
// kind behaves as specified over the in-memory channel, the schedule is a
// pure function of the seed, and an injector shared across reconnects
// continues (never replays) its schedule.
#include "proto/fault_transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "proto/channel.h"
#include "proto/framing.h"
#include "proto/rpc.h"

namespace unify::proto {
namespace {

FaultProfile only(FaultKind kind, double rate = 1.0) {
  FaultProfile profile;
  switch (kind) {
    case FaultKind::kReset: profile.reset_rate = rate; break;
    case FaultKind::kBlackhole: profile.blackhole_rate = rate; break;
    case FaultKind::kTruncate: profile.truncate_rate = rate; break;
    case FaultKind::kCorrupt: profile.corrupt_rate = rate; break;
    case FaultKind::kNone: break;
  }
  return profile;
}

struct FaultFixture : ::testing::Test {
  /// Wraps the a->b direction; `received` collects what b actually sees.
  std::shared_ptr<FaultTransport> wrap(FaultProfile profile,
                                       std::uint64_t seed = 7) {
    auto [a, b] = make_channel_pair(clock, /*latency_us=*/10);
    ea = a;
    eb = b;
    eb->on_receive([this](std::string_view bytes) {
      received.append(bytes);
    });
    injector = std::make_shared<FaultInjector>(profile, seed);
    return FaultTransport::wrap(a, injector);
  }

  SimClock clock;
  std::shared_ptr<Endpoint> ea, eb;
  std::shared_ptr<FaultInjector> injector;
  std::string received;
};

TEST_F(FaultFixture, CleanProfilePassesBytesThrough) {
  auto faulty = wrap(FaultProfile{});
  ASSERT_TRUE(faulty->send("hello").ok());
  ASSERT_TRUE(faulty->send(" world").ok());
  clock.run_until_idle();
  EXPECT_EQ(received, "hello world");
  EXPECT_EQ(injector->faults_injected(), 0u);
  EXPECT_TRUE(faulty->connected());
}

TEST_F(FaultFixture, ResetSeversTheConnectionAndFailsTheSend) {
  auto faulty = wrap(only(FaultKind::kReset));
  bool closed = false;
  faulty->on_close([&closed] { closed = true; });
  const auto sent = faulty->send("doomed");
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code, ErrorCode::kUnavailable);
  clock.run_until_idle();
  EXPECT_TRUE(received.empty());
  EXPECT_FALSE(faulty->connected());
  EXPECT_TRUE(closed);
  // Further sends fail like on any dead transport.
  EXPECT_EQ(faulty->send("more").error().code, ErrorCode::kUnavailable);
}

TEST_F(FaultFixture, BlackholeReportsSuccessAndDropsTheBytes) {
  auto faulty = wrap(only(FaultKind::kBlackhole));
  ASSERT_TRUE(faulty->send("vanishes").ok());
  clock.run_until_idle();
  EXPECT_TRUE(received.empty());
  // The half-open partition: the connection still looks alive.
  EXPECT_TRUE(faulty->connected());
}

TEST_F(FaultFixture, TruncateLeaksAStrictPrefixThenResets) {
  auto faulty = wrap(only(FaultKind::kTruncate));
  const std::string frame = encode_frame("truncate me please");
  const auto sent = faulty->send(frame);
  ASSERT_FALSE(sent.ok());
  clock.run_until_idle();
  EXPECT_LT(received.size(), frame.size());
  EXPECT_EQ(received, frame.substr(0, received.size()));
  EXPECT_FALSE(faulty->connected());
}

TEST_F(FaultFixture, CorruptFlipsExactlyOneByte) {
  auto faulty = wrap(only(FaultKind::kCorrupt));
  const std::string frame = encode_frame("corrupt me");
  ASSERT_TRUE(faulty->send(frame).ok());
  clock.run_until_idle();
  ASSERT_EQ(received.size(), frame.size());
  int flipped = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (received[i] != frame[i]) ++flipped;
  }
  EXPECT_EQ(flipped, 1);
  EXPECT_TRUE(faulty->connected());
}

TEST_F(FaultFixture, JitterDelaysButNeverReordersTheStream) {
  FaultProfile profile;
  profile.latency_us = 50;
  profile.jitter_us = 5000;  // huge jitter to force timer-order scrambles
  auto faulty = wrap(profile, /*seed=*/99);
  std::string expected;
  for (int i = 0; i < 32; ++i) {
    const std::string chunk = "frame-" + std::to_string(i) + ";";
    expected += chunk;
    ASSERT_TRUE(faulty->send(chunk).ok());
  }
  clock.run_until_idle();
  EXPECT_EQ(received, expected);
}

TEST(FaultInjectorTest, ScheduleIsAPureFunctionOfTheSeed) {
  FaultProfile profile;
  profile.reset_rate = 0.1;
  profile.blackhole_rate = 0.1;
  profile.truncate_rate = 0.1;
  profile.corrupt_rate = 0.1;
  FaultInjector a(profile, 1234), b(profile, 1234), c(profile, 4321);
  for (int i = 0; i < 500; ++i) {
    (void)a.next_fault();
    (void)b.next_fault();
    (void)c.next_fault();
  }
  EXPECT_EQ(a.schedule(), b.schedule());
  EXPECT_NE(a.schedule(), c.schedule());  // astronomically unlikely to tie
  EXPECT_GT(a.faults_injected(), 0u);
}

TEST(FaultInjectorTest, SharedInjectorContinuesAcrossReconnects) {
  // Two transport incarnations over one injector must consume one schedule
  // in sequence — a reconnect continues the fault pattern, never replays
  // it (else a leading reset would loop forever). Blackholes keep every
  // send alive so each of the six sends draws exactly once.
  FaultProfile profile;
  profile.blackhole_rate = 0.5;
  SimClock clock;
  auto injector = std::make_shared<FaultInjector>(profile, 42);

  std::vector<FaultKind> reference;
  {
    FaultInjector ref(profile, 42);
    for (int i = 0; i < 6; ++i) reference.push_back(ref.next_fault());
  }

  auto [a1, b1] = make_channel_pair(clock, 10);
  auto first = FaultTransport::wrap(a1, injector);
  for (int i = 0; i < 3; ++i) (void)first->send("x");

  auto [a2, b2] = make_channel_pair(clock, 10);
  auto second = FaultTransport::wrap(a2, injector);
  for (int i = 0; i < 3; ++i) (void)second->send("y");

  EXPECT_EQ(injector->schedule(), reference);
}

TEST_F(FaultFixture, SendTriggeredResetDeliversTheOutcomeExactlyOnce) {
  // A reset surfacing inside call()'s own send closes the transport while
  // the call is freshly pending: the outcome must arrive through `done`
  // exactly once, with call() reporting success — a caller counting both
  // channels would tally one failure twice.
  auto faulty = wrap(only(FaultKind::kReset));
  RpcPeer client(faulty, "client");
  int outcomes = 0;
  const auto sent = client.call(
      "echo", json::Value{json::Object{}},
      [&](Result<json::Value> reply) {
        ++outcomes;
        ASSERT_FALSE(reply.ok());
        EXPECT_EQ(reply.error().code, ErrorCode::kUnavailable);
      });
  EXPECT_TRUE(sent.ok());
  EXPECT_EQ(outcomes, 1);
  clock.run_until_idle();
  EXPECT_EQ(outcomes, 1);
  EXPECT_EQ(client.pending_calls(), 0u);
}

TEST_F(FaultFixture, RpcNeverWedgesOnACorruptedFrame) {
  // A corrupted request frame reaches the server as garbage: depending on
  // which byte flips, the server ignores it, answers not_found under a
  // mangled method name, or the framing layer kills the connection. The
  // invariant: the call completes with an error and nothing leaks.
  auto faulty = wrap(only(FaultKind::kCorrupt, 0.99));
  RpcPeer client(faulty, "client");
  RpcPeer server(eb, "server");  // replaces the fixture's receive hook
  auto result = client.call_and_wait("echo", json::Value{json::Object{}},
                                     50'000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(client.pending_calls(), 0u);
}

}  // namespace
}  // namespace unify::proto
