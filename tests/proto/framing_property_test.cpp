// Property test for the length-prefixed framing: any payload sequence must
// survive any fragmentation of the byte stream — 1-byte reads, MTU-ish
// chunks, coalesced frames — and it must survive it identically over the
// pure decoder, the in-memory channel and the real TCP loopback transport.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "proto/channel.h"
#include "proto/framing.h"
#include "proto/net/tcp.h"
#include "proto/rpc.h"

namespace unify::proto {
namespace {

std::vector<std::string> random_payloads(std::mt19937& rng, int count) {
  // Sizes spread over the interesting regimes: empty, tiny (header
  // dominates), mid, and multi-chunk large.
  std::uniform_int_distribution<int> regime(0, 3);
  std::uniform_int_distribution<int> tiny(1, 4);
  std::uniform_int_distribution<int> mid(5, 2000);
  std::uniform_int_distribution<int> large(2001, 150000);
  std::uniform_int_distribution<int> byte(0, 255);
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    int size = 0;
    switch (regime(rng)) {
      case 0: size = 0; break;
      case 1: size = tiny(rng); break;
      case 2: size = mid(rng); break;
      default: size = large(rng); break;
    }
    std::string p(static_cast<std::size_t>(size), '\0');
    for (char& c : p) c = static_cast<char>(byte(rng));
    payloads.push_back(std::move(p));
  }
  return payloads;
}

/// Cuts `stream` into random fragments; every cut width down to one byte
/// is possible and several frames may land in one fragment (coalescing).
std::vector<std::string> random_fragments(std::mt19937& rng,
                                          const std::string& stream) {
  std::uniform_int_distribution<int> regime(0, 2);
  std::uniform_int_distribution<std::size_t> tiny(1, 3);
  std::uniform_int_distribution<std::size_t> big(4, 70000);
  std::vector<std::string> fragments;
  std::size_t at = 0;
  while (at < stream.size()) {
    const std::size_t want = regime(rng) == 0 ? tiny(rng) : big(rng);
    const std::size_t take = std::min(want, stream.size() - at);
    fragments.push_back(stream.substr(at, take));
    at += take;
  }
  return fragments;
}

TEST(FramingProperty, DecoderSurvivesRandomFragmentation) {
  std::mt19937 rng(20260809);  // seeded: failures must reproduce
  for (int trial = 0; trial < 20; ++trial) {
    const auto payloads = random_payloads(rng, 12);
    std::string stream;
    for (const auto& p : payloads) stream += encode_frame(p);
    FrameDecoder decoder;
    std::vector<std::string> decoded;
    for (const auto& fragment : random_fragments(rng, stream)) {
      ASSERT_TRUE(decoder.feed(fragment, decoded).ok());
    }
    ASSERT_EQ(decoded, payloads) << "trial " << trial;
    EXPECT_EQ(decoder.pending_bytes(), 0u);
  }
}

/// Shared transport-level property: frame-encode each payload, send it
/// through `tx`, decode at `rx`, pump the pair's driver until everything
/// arrived. The transport under it is free to fragment or coalesce.
void roundtrip_over(Transport& tx, Transport& rx,
                    const std::vector<std::string>& payloads) {
  FrameDecoder decoder;
  std::vector<std::string> decoded;
  rx.on_receive([&](std::string_view bytes) {
    ASSERT_TRUE(decoder.feed(bytes, decoded).ok());
  });
  for (const auto& p : payloads) {
    ASSERT_TRUE(tx.send(encode_frame(p)).ok());
  }
  while (decoded.size() < payloads.size() && tx.driver().pump()) {
  }
  ASSERT_EQ(decoded, payloads);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
  rx.on_receive(nullptr);
}

TEST(FramingProperty, InMemoryChannelAnyChunkSize) {
  std::mt19937 rng(4242);
  const auto payloads = random_payloads(rng, 10);
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{1400}}) {
    SimClock clock;
    auto [a, b] = make_channel_pair(clock, 10, chunk);
    roundtrip_over(*a, *b, payloads);
    roundtrip_over(*b, *a, payloads);  // and the reverse direction
  }
}

TEST(FramingProperty, TcpLoopback) {
  net::Reactor reactor;
  std::shared_ptr<net::TcpTransport> accepted;
  auto listener = net::TcpListener::listen(
      reactor, "127.0.0.1", 0,
      [&accepted](std::shared_ptr<net::TcpTransport> conn) {
        accepted = std::move(conn);
      });
  ASSERT_TRUE(listener.ok()) << listener.error().to_string();
  auto client = net::TcpTransport::connect(reactor, "127.0.0.1",
                                           (*listener)->port());
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  while (accepted == nullptr) reactor.poll(100);

  std::mt19937 rng(90125);
  const auto payloads = random_payloads(rng, 10);
  roundtrip_over(**client, *accepted, payloads);
  roundtrip_over(*accepted, **client, payloads);
}

// ---- Adversarial inputs: the decoder faces a hostile or faulty wire. ----

std::string header_claiming(std::uint32_t length) {
  std::string header(4, '\0');
  header[0] = static_cast<char>(length >> 24);
  header[1] = static_cast<char>(length >> 16);
  header[2] = static_cast<char>(length >> 8);
  header[3] = static_cast<char>(length);
  return header;
}

TEST(FramingAdversarial, OversizedFrameIsRejectedAndPoisons) {
  FrameDecoder decoder;
  std::vector<std::string> out;
  ASSERT_TRUE(decoder.feed(encode_frame("fine"), out).ok());
  const auto poisoned = decoder.feed(header_claiming(kMaxFrameBytes + 1), out);
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.error().code, ErrorCode::kProtocol);
  EXPECT_TRUE(decoder.poisoned());
  // Stream sync is lost for good: even well-formed bytes are refused now.
  EXPECT_FALSE(decoder.feed(encode_frame("late"), out).ok());
  EXPECT_EQ(out, std::vector<std::string>{"fine"});
}

TEST(FramingAdversarial, TruncatedFinalFrameStaysPendingWithoutError) {
  // A connection reset mid-frame (FaultTransport's truncate fault) leaves
  // the decoder holding a partial frame: every completed frame before it
  // must already be out, the dangling tail is pending, and no error fires
  // — the close, not the decoder, reports the failure.
  std::mt19937 rng(777);
  const auto payloads = random_payloads(rng, 6);
  std::string stream;
  for (const auto& p : payloads) stream += encode_frame(p);
  const std::string last = encode_frame("never finishes");
  for (std::size_t cut = 1; cut < last.size(); cut += 7) {
    FrameDecoder decoder;
    std::vector<std::string> decoded;
    ASSERT_TRUE(decoder.feed(stream, decoded).ok());
    ASSERT_TRUE(decoder.feed(last.substr(0, cut), decoded).ok());
    EXPECT_EQ(decoded, payloads) << "cut " << cut;
    EXPECT_EQ(decoder.pending_bytes(), cut);
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(FramingAdversarial, CorruptedLengthPrefixNeverOverreads) {
  // Flip every possible single byte of a frame header. The decoder may
  // misparse downstream bytes or reject the length, but it must never
  // fabricate payload bytes it was not fed and never crash.
  const std::string frames =
      encode_frame("alpha") + encode_frame("beta") + encode_frame("gamma");
  for (std::size_t flip = 0; flip < 4; ++flip) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = frames;
      mutated[flip] = static_cast<char>(mutated[flip] ^ (1 << bit));
      FrameDecoder decoder;
      std::vector<std::string> decoded;
      const auto fed = decoder.feed(mutated, decoded);
      std::size_t decoded_bytes = 0;
      for (const auto& p : decoded) decoded_bytes += p.size() + 4;
      EXPECT_LE(decoded_bytes, mutated.size());
      if (!fed.ok()) {
        EXPECT_EQ(fed.error().code, ErrorCode::kProtocol);
        EXPECT_TRUE(decoder.poisoned());
      } else {
        EXPECT_LE(decoder.pending_bytes(), mutated.size());
      }
    }
  }
}

TEST(FramingAdversarial, OversizedFrameKillsTheChannelRpcSession) {
  // An RpcPeer that receives an impossible length prefix has lost stream
  // sync and must drop the connection rather than stall or over-allocate.
  SimClock clock;
  auto [attacker, victim_end] = make_channel_pair(clock, 10);
  RpcPeer victim(victim_end, "victim");
  ASSERT_TRUE(attacker->send(header_claiming(kMaxFrameBytes + 7)).ok());
  clock.run_until_idle();
  EXPECT_FALSE(victim.transport().connected());
  EXPECT_FALSE(attacker->connected());  // the hangup propagates back
  EXPECT_GE(victim.protocol_errors(), 1u);
}

TEST(FramingAdversarial, OversizedFrameKillsTheTcpRpcSession) {
  net::Reactor reactor;
  std::shared_ptr<net::TcpTransport> accepted;
  auto listener = net::TcpListener::listen(
      reactor, "127.0.0.1", 0,
      [&accepted](std::shared_ptr<net::TcpTransport> conn) {
        accepted = std::move(conn);
      });
  ASSERT_TRUE(listener.ok()) << listener.error().to_string();
  auto client = net::TcpTransport::connect(reactor, "127.0.0.1",
                                           (*listener)->port());
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  while (accepted == nullptr) reactor.poll(100);

  RpcPeer victim(accepted, "victim");
  ASSERT_TRUE((*client)->send(header_claiming(kMaxFrameBytes + 7)).ok());
  for (int i = 0; i < 200 && victim.transport().connected(); ++i) {
    reactor.poll(50);
  }
  EXPECT_FALSE(victim.transport().connected());
  EXPECT_GE(victim.protocol_errors(), 1u);
}

}  // namespace
}  // namespace unify::proto
