#include "proto/framing.h"

#include <gtest/gtest.h>

namespace unify::proto {
namespace {

TEST(Framing, EncodeProducesHeaderPlusPayload) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(frame.substr(4), "abc");
  EXPECT_EQ(frame[0], 0);
  EXPECT_EQ(frame[3], 3);
}

TEST(Framing, RoundTripSingleFrame) {
  FrameDecoder dec;
  std::vector<std::string> out;
  ASSERT_TRUE(dec.feed(encode_frame("payload"), out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "payload");
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(Framing, EmptyPayload) {
  FrameDecoder dec;
  std::vector<std::string> out;
  ASSERT_TRUE(dec.feed(encode_frame(""), out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "");
}

TEST(Framing, CoalescedFrames) {
  FrameDecoder dec;
  std::vector<std::string> out;
  ASSERT_TRUE(dec.feed(encode_frame("one") + encode_frame("two"), out).ok());
  EXPECT_EQ(out, (std::vector<std::string>{"one", "two"}));
}

TEST(Framing, ByteAtATime) {
  const std::string wire = encode_frame("dribble") + encode_frame("x");
  FrameDecoder dec;
  std::vector<std::string> out;
  for (const char c : wire) {
    ASSERT_TRUE(dec.feed(std::string_view(&c, 1), out).ok());
  }
  EXPECT_EQ(out, (std::vector<std::string>{"dribble", "x"}));
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(Framing, SplitInsideHeader) {
  const std::string wire = encode_frame("abcd");
  FrameDecoder dec;
  std::vector<std::string> out;
  ASSERT_TRUE(dec.feed(wire.substr(0, 2), out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(dec.feed(wire.substr(2), out).ok());
  EXPECT_EQ(out, (std::vector<std::string>{"abcd"}));
}

TEST(Framing, OversizedFramePoisons) {
  std::string bad;
  bad.push_back(static_cast<char>(0x7F));  // ~2 GiB length
  bad.append(3, '\0');
  FrameDecoder dec;
  std::vector<std::string> out;
  auto r = dec.feed(bad, out);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kProtocol);
  EXPECT_TRUE(dec.poisoned());
  EXPECT_FALSE(dec.feed("more", out).ok());
}

TEST(Framing, BinaryPayloadSafe) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  FrameDecoder dec;
  std::vector<std::string> out;
  ASSERT_TRUE(dec.feed(encode_frame(payload), out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], payload);
}

}  // namespace
}  // namespace unify::proto
