// Unit tests for the survivable session: fail-fast call semantics between
// transports, capped-backoff reconnection through the factory, give-up
// budgets, and heartbeat-driven detection of half-open partitions — all
// over SimClock channels so every schedule is deterministic.
#include "proto/resilient_session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "proto/channel.h"
#include "proto/fault_transport.h"

namespace unify::proto {
namespace {

json::Value empty_params() { return json::Value{json::Object{}}; }

/// A server end that lives as long as the fixture: each factory call makes
/// a fresh channel pair, parks an echo-serving RpcPeer on the far end and
/// hands the near end to the session.
struct SessionFixture : ::testing::Test {
  ResilientSession::TransportFactory make_factory() {
    return [this]() -> Result<std::shared_ptr<Transport>> {
      ++factory_calls;
      factory_times.push_back(clock.now());
      if (fail_next_connects > 0) {
        --fail_next_connects;
        return Error{ErrorCode::kUnavailable, "refused"};
      }
      auto [a, b] = make_channel_pair(clock, /*latency_us=*/10);
      server_ends.push_back(b);
      auto peer = std::make_unique<RpcPeer>(b, "server");
      peer->on_request("echo", [](const json::Value& params) {
        return Result<json::Value>(params);
      });
      server_peers.push_back(std::move(peer));
      return std::static_pointer_cast<Transport>(a);
    };
  }

  /// Severs the live connection from the server side (RST-style).
  void kill_current_connection() {
    ASSERT_FALSE(server_ends.empty());
    server_ends.back()->disconnect();
  }

  SimClock clock;
  SimDriver driver{clock};
  int factory_calls = 0;
  int fail_next_connects = 0;
  std::vector<SimTime> factory_times;
  std::vector<std::shared_ptr<Endpoint>> server_ends;
  std::vector<std::unique_ptr<RpcPeer>> server_peers;
  std::vector<bool> liveness;  // true = success evidence
};

ResilientSession::LivenessFn collect(std::vector<bool>& into) {
  return [&into](const Result<void>& evidence) {
    into.push_back(evidence.ok());
  };
}

TEST_F(SessionFixture, ConnectsOnConstructionAndEchoes) {
  ResilientSession session("s", driver, make_factory());
  session.on_liveness(collect(liveness));
  ASSERT_TRUE(session.connected());
  EXPECT_EQ(factory_calls, 1);
  auto reply = session.call_and_wait("echo", empty_params(), 100'000);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(session.reconnects(), 0u);
  EXPECT_FALSE(session.gave_up());
}

TEST_F(SessionFixture, DisconnectFailsInFlightThenReconnects) {
  ResilientSession session("s", driver, make_factory());
  session.on_liveness(collect(liveness));

  // An in-flight call sees kUnavailable when the wire dies — never a
  // silent replay.
  Result<json::Value> outcome = Error{ErrorCode::kInternal, "unset"};
  ASSERT_TRUE(session
                  .call("echo", empty_params(),
                        [&outcome](Result<json::Value> r) {
                          outcome = std::move(r);
                        })
                  .ok());
  kill_current_connection();
  clock.advance(1);  // close + deferred teardown
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kUnavailable);

  // Between transports: fail fast, no queueing.
  auto while_down = session.call_and_wait("echo", empty_params());
  ASSERT_FALSE(while_down.ok());
  EXPECT_EQ(while_down.error().code, ErrorCode::kUnavailable);
  EXPECT_FALSE(session.connected());

  // Backoff elapses, the factory supplies a fresh wire, service resumes.
  clock.advance(2'000'000);
  ASSERT_TRUE(session.connected());
  EXPECT_EQ(session.disconnects(), 1u);
  EXPECT_EQ(session.reconnects(), 1u);
  EXPECT_EQ(factory_calls, 2);
  auto reply = session.call_and_wait("echo", empty_params(), 100'000);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();

  // Liveness evidence: the lost session, then the successful reconnect.
  ASSERT_GE(liveness.size(), 2u);
  EXPECT_FALSE(liveness.front());
  EXPECT_TRUE(liveness.back());
}

TEST_F(SessionFixture, BackoffGrowsUntilTheCap) {
  fail_next_connects = 1'000'000;  // never connects
  SessionOptions options;
  options.reconnect.max_attempts = 6;
  options.reconnect.backoff_initial_us = 10'000;
  options.reconnect.backoff_multiplier = 2.0;
  options.reconnect.backoff_cap_us = 50'000;
  options.reconnect.jitter = 0;  // exact delays for this assertion
  ResilientSession session("s", driver, make_factory(), options);
  clock.run_until_idle();  // bounded: the give-up stops the timer chain

  EXPECT_TRUE(session.gave_up());
  EXPECT_EQ(session.connect_failures(), 6u);
  ASSERT_EQ(factory_times.size(), 6u);
  std::vector<SimTime> gaps;
  for (std::size_t i = 1; i < factory_times.size(); ++i) {
    gaps.push_back(factory_times[i] - factory_times[i - 1]);
  }
  EXPECT_EQ(gaps, (std::vector<SimTime>{10'000, 20'000, 40'000, 50'000,
                                        50'000}));

  // A dead session fails fast forever.
  auto reply = session.call_and_wait("echo", empty_params());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kUnavailable);
}

TEST_F(SessionFixture, JitterIsDeterministicPerSeed) {
  auto delays_for = [this](std::uint64_t seed) {
    factory_times.clear();
    factory_calls = 0;
    fail_next_connects = 4;
    SessionOptions options;
    options.reconnect.max_attempts = 4;
    options.reconnect.jitter_seed = seed;
    ResilientSession session("s", driver, make_factory(), options);
    clock.run_until_idle();
    return factory_times;
  };
  const auto a = delays_for(11);
  const SimTime base = clock.now();
  auto b = delays_for(11);
  for (auto& t : b) t -= base;  // rebase: the clock keeps running
  EXPECT_EQ(a, b);
}

TEST_F(SessionFixture, ConnectFailuresFeedLivenessThenRecovery) {
  fail_next_connects = 2;
  ResilientSession session("s", driver, make_factory());
  session.on_liveness(collect(liveness));
  clock.advance(5'000'000);
  ASSERT_TRUE(session.connected());
  EXPECT_EQ(session.connect_failures(), 2u);
  EXPECT_EQ(session.reconnects(), 1u);
  // The constructor's first attempt fails before on_liveness is installed;
  // the second failure and the final success must both be visible.
  ASSERT_GE(liveness.size(), 2u);
  EXPECT_FALSE(liveness[liveness.size() - 2]);
  EXPECT_TRUE(liveness.back());
}

TEST_F(SessionFixture, HeartbeatDetectsHalfOpenPartitionAndRecovers) {
  // First incarnation: a blackhole wire — sends vanish, the connection
  // looks alive. Only the heartbeat can notice. Reconnects get clean wires.
  auto base = make_factory();
  FaultProfile blackhole;
  blackhole.blackhole_rate = 1.0;
  auto injector = std::make_shared<FaultInjector>(blackhole, 7);
  bool first = true;
  ResilientSession::TransportFactory factory =
      [&base, &injector, &first]() -> Result<std::shared_ptr<Transport>> {
    auto inner = base();
    if (!inner.ok() || !first) return inner;
    first = false;
    return std::static_pointer_cast<Transport>(
        FaultTransport::wrap(std::move(*inner), injector));
  };

  SessionOptions options;
  options.heartbeat.interval_us = 100'000;
  options.heartbeat.miss_threshold = 3;
  ResilientSession session("s", driver, std::move(factory), options);
  session.on_liveness(collect(liveness));
  ASSERT_TRUE(session.connected());

  // 3 intervals of silence + ping timeouts + backoff: bounded advance.
  for (int i = 0; i < 100 && session.reconnects() == 0; ++i) {
    clock.advance(100'000);
  }
  EXPECT_GE(session.heartbeats_sent(), 3u);
  EXPECT_GE(session.heartbeat_misses(), 3u);
  EXPECT_EQ(session.disconnects(), 1u);
  EXPECT_EQ(session.reconnects(), 1u);
  ASSERT_TRUE(session.connected());

  // Misses produced failure evidence before the close; recovery reported.
  EXPECT_GE(std::count(liveness.begin(), liveness.end(), false), 3);
  EXPECT_TRUE(liveness.back());

  // The clean second wire answers pings natively: further heartbeats keep
  // the session up without another disconnect.
  const auto disconnects_before = session.disconnects();
  for (int i = 0; i < 10; ++i) clock.advance(100'000);
  EXPECT_EQ(session.disconnects(), disconnects_before);
  EXPECT_TRUE(session.connected());
}

TEST_F(SessionFixture, HeartbeatSkipsSessionsWithInboundTraffic) {
  SessionOptions options;
  options.heartbeat.interval_us = 100'000;
  ResilientSession session("s", driver, make_factory(), options);
  ASSERT_TRUE(session.connected());
  // The server chatters faster than the heartbeat interval: inbound bytes
  // prove liveness and no ping should ever be spent.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        server_peers.back()->notify("nf-status", empty_params()).ok());
    clock.advance(50'000);
  }
  EXPECT_EQ(session.heartbeats_sent(), 0u);
  EXPECT_TRUE(session.connected());
}

TEST_F(SessionFixture, HandlersSurviveReconnect) {
  ResilientSession session("s", driver, make_factory());
  int served = 0;
  session.on_request("probe", [&served](const json::Value&) {
    ++served;
    return Result<json::Value>(json::Value{json::Object{}});
  });

  auto call_from_server = [this]() {
    return server_peers.back()->call_and_wait(
        "probe", json::Value{json::Object{}}, 100'000);
  };
  ASSERT_TRUE(call_from_server().ok());

  kill_current_connection();
  clock.advance(2'000'000);  // backoff + reconnect
  ASSERT_TRUE(session.connected());
  ASSERT_TRUE(call_from_server().ok());  // handler re-installed on the new peer
  EXPECT_EQ(served, 2);
}

TEST_F(SessionFixture, DisabledReconnectStaysDown) {
  SessionOptions options;
  options.reconnect.enabled = false;
  ResilientSession session("s", driver, make_factory(), options);
  ASSERT_TRUE(session.connected());
  kill_current_connection();
  clock.run_until_idle();  // bounded: no reconnect timers get scheduled
  EXPECT_FALSE(session.connected());
  EXPECT_TRUE(session.gave_up());
  EXPECT_EQ(factory_calls, 1);
}

}  // namespace
}  // namespace unify::proto
