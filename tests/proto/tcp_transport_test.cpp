// Unit tests for the epoll reactor and the TCP transport/listener: timers,
// accept, echo traffic, partial-write flushing, graceful close, failure
// modes — and RpcPeer running unchanged over the real wire.
#include "proto/net/tcp.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "proto/rpc.h"

namespace unify::proto::net {
namespace {

/// Loopback pair on one reactor: client connects, listener accepts.
struct TcpPair {
  TcpPair() {
    auto listener_or = TcpListener::listen(
        reactor, "127.0.0.1", 0,
        [this](std::shared_ptr<TcpTransport> conn) {
          server = std::move(conn);
        });
    EXPECT_TRUE(listener_or.ok()) << listener_or.error().to_string();
    listener = std::move(*listener_or);
    auto client_or =
        TcpTransport::connect(reactor, "127.0.0.1", listener->port());
    EXPECT_TRUE(client_or.ok()) << client_or.error().to_string();
    client = std::move(*client_or);
    while (server == nullptr) reactor.poll(100);
  }

  Reactor reactor;
  std::unique_ptr<TcpListener> listener;
  std::shared_ptr<TcpTransport> client;
  std::shared_ptr<TcpTransport> server;
};

TEST(Reactor, TimersFireInDeadlineOrderThenFifo) {
  Reactor reactor;
  std::vector<int> order;
  reactor.schedule(20000, [&] { order.push_back(3); });
  reactor.schedule(1000, [&] { order.push_back(1); });
  reactor.schedule(1000, [&] { order.push_back(2); });  // FIFO among equals
  EXPECT_EQ(reactor.pending_timers(), 3u);
  while (reactor.pump()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(reactor.pending_timers(), 0u);
}

TEST(Reactor, PumpReportsIdle) {
  Reactor reactor;
  EXPECT_FALSE(reactor.pump());  // nothing registered, nothing scheduled
  bool fired = false;
  reactor.schedule(0, [&] { fired = true; });
  EXPECT_TRUE(reactor.pump());
  EXPECT_TRUE(fired);
  EXPECT_FALSE(reactor.pump());
}

TEST(Reactor, TimerScheduledWhileFiringRunsNextBatch) {
  Reactor reactor;
  int generations = 0;
  std::function<void()> chain = [&] {
    if (++generations < 3) reactor.schedule(0, chain);
  };
  reactor.schedule(0, chain);
  while (reactor.pump()) {
  }
  EXPECT_EQ(generations, 3);
}

TEST(TcpTransport, ConnectToClosedPortFails) {
  Reactor reactor;
  // Grab an ephemeral port, then close the listener: nobody listens there.
  std::uint16_t dead_port = 0;
  {
    auto listener = TcpListener::listen(reactor, "127.0.0.1", 0,
                                        [](std::shared_ptr<TcpTransport>) {});
    ASSERT_TRUE(listener.ok());
    dead_port = (*listener)->port();
  }
  auto conn = TcpTransport::connect(reactor, "127.0.0.1", dead_port);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, ErrorCode::kUnavailable);
}

TEST(TcpTransport, BadHostLiteralFails) {
  Reactor reactor;
  auto conn = TcpTransport::connect(reactor, "not-an-ip-literal", 1);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, ErrorCode::kInvalidArgument);
}

TEST(TcpTransport, EchoBothDirections) {
  TcpPair pair;
  std::string at_server, at_client;
  pair.server->on_receive(
      [&](std::string_view bytes) { at_server += bytes; });
  pair.client->on_receive(
      [&](std::string_view bytes) { at_client += bytes; });
  ASSERT_TRUE(pair.client->send("ping").ok());
  ASSERT_TRUE(pair.server->send("pong").ok());
  while (at_server.size() < 4 || at_client.size() < 4) pair.reactor.poll(100);
  EXPECT_EQ(at_server, "ping");
  EXPECT_EQ(at_client, "pong");
  EXPECT_EQ(pair.client->counters().messages_sent, 1u);
  EXPECT_EQ(pair.client->counters().bytes_sent, 4u);
  EXPECT_EQ(pair.client->counters().bytes_received, 4u);
}

TEST(TcpTransport, BacklogBuffersUntilReceiverInstalled) {
  TcpPair pair;
  ASSERT_TRUE(pair.client->send("early bytes").ok());
  // Let the bytes land before anyone asks for them.
  for (int i = 0; i < 50 && pair.server->counters().bytes_received < 11; ++i) {
    pair.reactor.poll(10);
  }
  std::string received;
  pair.server->on_receive([&](std::string_view bytes) { received += bytes; });
  EXPECT_EQ(received, "early bytes");
}

TEST(TcpTransport, LargePayloadSurvivesPartialWrites) {
  // Well beyond any socket buffer: the transport must queue the remainder
  // and drain it on EPOLLOUT.
  TcpPair pair;
  std::string blob(8 * 1024 * 1024, 'x');
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>('a' + (i % 26));
  }
  std::string received;
  pair.server->on_receive([&](std::string_view bytes) { received += bytes; });
  ASSERT_TRUE(pair.client->send(blob).ok());
  while (received.size() < blob.size()) pair.reactor.poll(100);
  EXPECT_EQ(received, blob);
}

TEST(TcpTransport, GracefulCloseFlushesThenSignalsPeer) {
  TcpPair pair;
  std::string received;
  bool server_saw_close = false;
  bool client_saw_close = false;
  pair.server->on_receive([&](std::string_view bytes) { received += bytes; });
  pair.server->on_close([&] { server_saw_close = true; });
  pair.client->on_close([&] { client_saw_close = true; });
  const std::string blob(4 * 1024 * 1024, 'q');
  ASSERT_TRUE(pair.client->send(blob).ok());
  pair.client->disconnect();  // must not drop the queued megabytes
  while (!server_saw_close) pair.reactor.poll(100);
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_TRUE(client_saw_close);
  EXPECT_FALSE(pair.client->connected());
  EXPECT_FALSE(pair.server->connected());
}

TEST(TcpTransport, SendAfterDisconnectFailsFast) {
  TcpPair pair;
  pair.client->disconnect();
  const auto sent = pair.client->send("too late");
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code, ErrorCode::kUnavailable);
}

TEST(TcpTransport, ManyConcurrentConnectionsEcho) {
  Reactor reactor;
  std::vector<std::shared_ptr<TcpTransport>> server_side;
  auto listener = TcpListener::listen(
      reactor, "127.0.0.1", 0,
      [&server_side](std::shared_ptr<TcpTransport> conn) {
        // Echo server: every connection mirrors its input.
        auto* raw = conn.get();
        conn->on_receive([raw](std::string_view bytes) {
          (void)raw->send(std::string(bytes));
        });
        server_side.push_back(std::move(conn));
      });
  ASSERT_TRUE(listener.ok());

  constexpr int kConnections = 32;
  std::vector<std::shared_ptr<TcpTransport>> clients;
  std::vector<std::string> echoed(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    auto conn = TcpTransport::connect(reactor, "127.0.0.1",
                                      (*listener)->port());
    ASSERT_TRUE(conn.ok()) << conn.error().to_string();
    (*conn)->on_receive([&echoed, i](std::string_view bytes) {
      echoed[static_cast<std::size_t>(i)] += bytes;
    });
    clients.push_back(std::move(*conn));
  }
  for (int i = 0; i < kConnections; ++i) {
    ASSERT_TRUE(clients[static_cast<std::size_t>(i)]
                    ->send("hello from " + std::to_string(i))
                    .ok());
  }
  const auto all_echoed = [&] {
    for (int i = 0; i < kConnections; ++i) {
      if (echoed[static_cast<std::size_t>(i)] !=
          "hello from " + std::to_string(i)) {
        return false;
      }
    }
    return true;
  };
  while (!all_echoed()) reactor.poll(100);
  EXPECT_EQ((*listener)->accepted(),
            static_cast<std::uint64_t>(kConnections));
}

TEST(TcpTransport, Ipv6LoopbackEcho) {
  Reactor reactor;
  std::shared_ptr<TcpTransport> server;
  auto listener = TcpListener::listen(
      reactor, "::1", 0,
      [&server](std::shared_ptr<TcpTransport> conn) {
        server = std::move(conn);
      });
  if (!listener.ok()) {
    GTEST_SKIP() << "no IPv6 loopback here: " << listener.error().to_string();
  }
  auto client = TcpTransport::connect(reactor, "::1", (*listener)->port());
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  while (server == nullptr) reactor.poll(100);
  EXPECT_EQ(server->peer_name().rfind("[::1]:", 0), 0u)
      << server->peer_name();

  std::string received;
  server->on_receive([&](std::string_view bytes) { received += bytes; });
  ASSERT_TRUE((*client)->send("over v6").ok());
  while (received.size() < 7) reactor.poll(100);
  EXPECT_EQ(received, "over v6");
}

TEST(TcpTransport, HostnameResolvesWithAddressFamilyFallback) {
  // The listener is v4-only; `localhost` may resolve to ::1 first, so a
  // successful connect proves the candidate loop falls through to the v4
  // address instead of giving up on the first family.
  Reactor reactor;
  std::shared_ptr<TcpTransport> server;
  auto listener = TcpListener::listen(
      reactor, "127.0.0.1", 0,
      [&server](std::shared_ptr<TcpTransport> conn) {
        server = std::move(conn);
      });
  ASSERT_TRUE(listener.ok()) << listener.error().to_string();
  auto client =
      TcpTransport::connect(reactor, "localhost", (*listener)->port());
  if (!client.ok() &&
      client.error().code == ErrorCode::kInvalidArgument) {
    GTEST_SKIP() << "resolver cannot see localhost: "
                 << client.error().to_string();
  }
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  while (server == nullptr) reactor.poll(100);
  std::string received;
  server->on_receive([&](std::string_view bytes) { received += bytes; });
  ASSERT_TRUE((*client)->send("by name").ok());
  while (received.size() < 7) reactor.poll(100);
  EXPECT_EQ(received, "by name");
}

TEST(TcpTransport, Ipv6ListenerRejectsUnreachedFamiliesCleanly) {
  // Connecting to a v6 listener via the v4 loopback must fail with a clean
  // kUnavailable, never hang or crash.
  Reactor reactor;
  auto listener = TcpListener::listen(reactor, "::1", 0,
                                      [](std::shared_ptr<TcpTransport>) {});
  if (!listener.ok()) {
    GTEST_SKIP() << "no IPv6 loopback here: " << listener.error().to_string();
  }
  auto conn =
      TcpTransport::connect(reactor, "127.0.0.1", (*listener)->port());
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, ErrorCode::kUnavailable);
}

TEST(TcpTransport, RpcPeerRunsUnchangedOverTcp) {
  TcpPair pair;
  RpcPeer client(pair.client, "tcp-client");
  RpcPeer server(pair.server, "tcp-server");
  server.on_request("sum", [](const json::Value& params) {
    json::Object out;
    out.set("sum", params.get_number("a") + params.get_number("b"));
    return Result<json::Value>{json::Value{std::move(out)}};
  });
  json::Object params;
  params.set("a", 19);
  params.set("b", 23);
  auto reply = client.call_and_wait("sum", json::Value{std::move(params)});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(reply->get_int("sum"), 42);
}

TEST(TcpTransport, RpcTimeoutFiresOnReactorClock) {
  TcpPair pair;
  RpcPeer client(pair.client, "tcp-client");
  // The server transport exists but nobody answers: a mute peer.
  auto reply = client.call_and_wait("void", json::Value{},
                                    /*timeout_us=*/50000);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kTimeout);
}

TEST(TcpTransport, PeerCloseFailsPendingRpcs) {
  TcpPair pair;
  RpcPeer client(pair.client, "tcp-client");
  std::optional<Result<json::Value>> slot;
  ASSERT_TRUE(client
                  .call("void", json::Value{},
                        [&slot](Result<json::Value> r) { slot = std::move(r); })
                  .ok());
  pair.server->disconnect();
  while (!slot.has_value()) pair.reactor.poll(100);
  ASSERT_FALSE(slot->ok());
  EXPECT_EQ(slot->error().code, ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace unify::proto::net
