#include "graph/graph.h"

#include <gtest/gtest.h>

#include <string>

namespace unify::graph {
namespace {

struct NodeInfo {
  std::string name;
};
struct EdgeInfo {
  double bw = 0;
};
using G = Digraph<NodeInfo, EdgeInfo>;

TEST(Digraph, StartsEmpty) {
  G g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, AddNodesAssignsSequentialIds) {
  G g;
  EXPECT_EQ(g.add_node({"a"}), 0u);
  EXPECT_EQ(g.add_node({"b"}), 1u);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node(0).name, "a");
  EXPECT_EQ(g.node(1).name, "b");
}

TEST(Digraph, AddEdgeConnects) {
  G g;
  const auto a = g.add_node({"a"});
  const auto b = g.add_node({"b"});
  const auto e = g.add_edge(a, b, {10.0});
  EXPECT_EQ(g.edge(e).from, a);
  EXPECT_EQ(g.edge(e).to, b);
  EXPECT_EQ(g.edge(e).data.bw, 10.0);
  ASSERT_EQ(g.out_edges(a).size(), 1u);
  ASSERT_EQ(g.in_edges(b).size(), 1u);
  EXPECT_TRUE(g.out_edges(b).empty());
}

TEST(Digraph, ParallelEdgesAllowed) {
  G g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto e1 = g.add_edge(a, b, {1});
  const auto e2 = g.add_edge(a, b, {2});
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.out_edges(a).size(), 2u);
}

TEST(Digraph, SelfLoop) {
  G g;
  const auto a = g.add_node();
  const auto e = g.add_edge(a, a, {5});
  EXPECT_EQ(g.edge(e).from, a);
  EXPECT_EQ(g.edge(e).to, a);
  EXPECT_EQ(g.out_edges(a).size(), 1u);
  EXPECT_EQ(g.in_edges(a).size(), 1u);
}

TEST(Digraph, RemoveEdge) {
  G g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto e = g.add_edge(a, b);
  g.remove_edge(e);
  EXPECT_FALSE(g.has_edge(e));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.out_edges(a).empty());
  EXPECT_TRUE(g.in_edges(b).empty());
}

TEST(Digraph, RemoveNodeRemovesIncidentEdges) {
  G g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto c = g.add_node();
  const auto ab = g.add_edge(a, b);
  const auto bc = g.add_edge(b, c);
  const auto ca = g.add_edge(c, a);
  g.remove_node(b);
  EXPECT_FALSE(g.has_node(b));
  EXPECT_FALSE(g.has_edge(ab));
  EXPECT_FALSE(g.has_edge(bc));
  EXPECT_TRUE(g.has_edge(ca));
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, RemoveNodeWithSelfLoop) {
  G g;
  const auto a = g.add_node();
  g.add_edge(a, a);
  g.remove_node(a);
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, IdsNotReusedAfterRemoval) {
  G g;
  const auto a = g.add_node({"a"});
  g.remove_node(a);
  const auto b = g.add_node({"b"});
  EXPECT_NE(a, b);
  EXPECT_FALSE(g.has_node(a));
  EXPECT_TRUE(g.has_node(b));
  EXPECT_EQ(g.node_capacity(), 2u);
}

TEST(Digraph, NodeIdsListsOnlyLive) {
  G g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto c = g.add_node();
  g.remove_node(b);
  EXPECT_EQ(g.node_ids(), (std::vector<NodeId>{a, c}));
}

TEST(Digraph, EdgeIdsListsOnlyLive) {
  G g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  const auto e1 = g.add_edge(a, b);
  const auto e2 = g.add_edge(b, a);
  g.remove_edge(e1);
  EXPECT_EQ(g.edge_ids(), (std::vector<EdgeId>{e2}));
}

TEST(Digraph, FindEdge) {
  G g;
  const auto a = g.add_node();
  const auto b = g.add_node();
  EXPECT_FALSE(g.find_edge(a, b).has_value());
  const auto e = g.add_edge(a, b);
  ASSERT_TRUE(g.find_edge(a, b).has_value());
  EXPECT_EQ(*g.find_edge(a, b), e);
  EXPECT_FALSE(g.find_edge(b, a).has_value());
}

TEST(Digraph, MutableNodeAndEdgeData) {
  G g;
  const auto a = g.add_node({"a"});
  const auto b = g.add_node({"b"});
  const auto e = g.add_edge(a, b, {1.0});
  g.node(a).name = "renamed";
  g.edge(e).data.bw = 99.0;
  EXPECT_EQ(g.node(a).name, "renamed");
  EXPECT_EQ(g.edge(e).data.bw, 99.0);
}

}  // namespace
}  // namespace unify::graph
