#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/path_kernel.h"

namespace unify::graph {
namespace {

struct None {};
struct W {
  double w = 1;
};
using G = Digraph<None, W>;

EdgeScanFn weight_scan(const G& g) {
  return scan_digraph(g, [](EdgeId, const G::Edge& e) { return e.data.w; });
}

// Small diamond: 0 -> 1 -> 3 (cost 1+1), 0 -> 2 -> 3 (cost 2+2).
G diamond() {
  G g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, {1});
  g.add_edge(1, 3, {1});
  g.add_edge(0, 2, {2});
  g.add_edge(2, 3, {2});
  return g;
}

TEST(ShortestPath, PicksCheaperBranch) {
  G g = diamond();
  auto p = shortest_path(g.node_capacity(), 0, 3, weight_scan(g));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cost, 2.0);
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(p->hop_count(), 2u);
}

TEST(ShortestPath, SourceEqualsTarget) {
  G g = diamond();
  auto p = shortest_path(g.node_capacity(), 2, 2, weight_scan(g));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cost, 0.0);
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{2}));
  EXPECT_TRUE(p->edges.empty());
}

TEST(ShortestPath, UnreachableReturnsNullopt) {
  G g;
  g.add_node();
  g.add_node();
  EXPECT_FALSE(shortest_path(g.node_capacity(), 0, 1, weight_scan(g)));
}

TEST(ShortestPath, NegativeWeightMasksEdge) {
  G g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, {-1});  // masked: e.g. no residual bandwidth
  EXPECT_FALSE(shortest_path(g.node_capacity(), 0, 1, weight_scan(g)));
}

TEST(ShortestPath, PrefersParallelEdgeWithLowerWeight) {
  G g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, {7});
  const auto cheap = g.add_edge(0, 1, {3});
  auto p = shortest_path(g.node_capacity(), 0, 1, weight_scan(g));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cost, 3.0);
  ASSERT_EQ(p->edges.size(), 1u);
  EXPECT_EQ(p->edges[0], cheap);
}

TEST(ShortestPath, ZeroWeightEdgesUsable) {
  G g;
  for (int i = 0; i < 3; ++i) g.add_node();
  g.add_edge(0, 1, {0});
  g.add_edge(1, 2, {0});
  auto p = shortest_path(g.node_capacity(), 0, 2, weight_scan(g));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cost, 0.0);
  EXPECT_EQ(p->hop_count(), 2u);
}

TEST(ShortestPathTree, DistancesAndReconstruction) {
  G g = diamond();
  auto tree = shortest_path_tree(g.node_capacity(), 0, weight_scan(g));
  EXPECT_EQ(tree.dist[0], 0.0);
  EXPECT_EQ(tree.dist[1], 1.0);
  EXPECT_EQ(tree.dist[2], 2.0);
  EXPECT_EQ(tree.dist[3], 2.0);
  auto p = tree.path_to(0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 1, 3}));
}

TEST(ShortestPathTree, UnreachableIsInf) {
  G g;
  g.add_node();
  g.add_node();
  auto tree = shortest_path_tree(g.node_capacity(), 0, weight_scan(g));
  EXPECT_EQ(tree.dist[1], kInf);
  EXPECT_FALSE(tree.path_to(0, 1).has_value());
}

TEST(KShortest, EnumeratesInCostOrder) {
  G g = diamond();
  auto paths =
      k_shortest_paths(g.node_capacity(), 0, 3, 5, weight_scan(g));
  ASSERT_EQ(paths.size(), 2u);  // only two loopless paths exist
  EXPECT_EQ(paths[0].cost, 2.0);
  EXPECT_EQ(paths[1].cost, 4.0);
  EXPECT_EQ(paths[1].nodes, (std::vector<NodeId>{0, 2, 3}));
}

TEST(KShortest, KLimitsCount) {
  G g = diamond();
  auto paths =
      k_shortest_paths(g.node_capacity(), 0, 3, 1, weight_scan(g));
  EXPECT_EQ(paths.size(), 1u);
  EXPECT_TRUE(
      k_shortest_paths(g.node_capacity(), 0, 3, 0, weight_scan(g)).empty());
}

TEST(KShortest, ParallelEdgesAreDistinctPaths) {
  G g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, {1});
  g.add_edge(0, 1, {2});
  auto paths =
      k_shortest_paths(g.node_capacity(), 0, 1, 5, weight_scan(g));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].cost, 1.0);
  EXPECT_EQ(paths[1].cost, 2.0);
}

TEST(KShortest, GridHasManyPaths) {
  // 3x3 grid, unit weights, top-left to bottom-right.
  G g;
  for (int i = 0; i < 9; ++i) g.add_node();
  auto id = [](int r, int c) { return static_cast<NodeId>(r * 3 + c); };
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) g.add_edge(id(r, c), id(r, c + 1), {1});
      if (r + 1 < 3) g.add_edge(id(r, c), id(r + 1, c), {1});
    }
  }
  auto paths =
      k_shortest_paths(g.node_capacity(), id(0, 0), id(2, 2), 6,
                       weight_scan(g));
  ASSERT_EQ(paths.size(), 6u);  // C(4,2) = 6 monotone lattice paths
  for (const auto& p : paths) EXPECT_EQ(p.cost, 4.0);
  // All paths distinct.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_FALSE(paths[i] == paths[j]);
    }
  }
}

TEST(KShortest, UnreachableGivesEmpty) {
  G g;
  g.add_node();
  g.add_node();
  EXPECT_TRUE(
      k_shortest_paths(g.node_capacity(), 0, 1, 3, weight_scan(g)).empty());
}

TEST(Reachability, ForwardOnly) {
  G g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1, {1});
  g.add_edge(1, 2, {1});
  g.add_edge(3, 0, {1});
  auto seen = reachable_from(g.node_capacity(), 0, weight_scan(g));
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_FALSE(seen[3]);  // only reaches 0 via out-edge, not vice versa
}

TEST(Reachability, MaskedEdgesBlock) {
  G g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1, {-1});
  auto seen = reachable_from(g.node_capacity(), 0, weight_scan(g));
  EXPECT_FALSE(seen[1]);
}

TEST(WeakComponents, GroupsUndirectedly) {
  G g;
  for (int i = 0; i < 5; ++i) g.add_node();
  g.add_edge(0, 1, {1});
  g.add_edge(2, 1, {1});  // 0,1,2 weakly connected
  g.add_edge(3, 4, {1});  // 3,4 another component
  auto scan_out = weight_scan(g);
  auto scan_in = [&g](NodeId node, const EdgeVisitFn& visit) {
    for (const EdgeId e : g.in_edges(node)) {
      visit(e, g.edge(e).from, g.edge(e).data.w);
    }
  };
  auto comp =
      weak_components(g.node_capacity(), g.node_ids(), scan_out, scan_in);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

// Property sweep: on a ring of n nodes with unit weights, the distance from
// 0 to m is min(m, n-m) when edges go both directions.
class RingShortest : public ::testing::TestWithParam<int> {};

TEST_P(RingShortest, DistanceMatchesFormula) {
  const int n = GetParam();
  G g;
  for (int i = 0; i < n; ++i) g.add_node();
  for (int i = 0; i < n; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), {1});
    g.add_edge(static_cast<NodeId>((i + 1) % n), static_cast<NodeId>(i), {1});
  }
  auto tree = shortest_path_tree(g.node_capacity(), 0, weight_scan(g));
  for (int m = 0; m < n; ++m) {
    EXPECT_EQ(tree.dist[m], std::min(m, n - m)) << "n=" << n << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingShortest,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 32));

// --- kernel-direct coverage: the templates in path_kernel.h that the
// EdgeScanFn functions above shim onto.

TEST(PathKernel, TreeExportMatchesShim) {
  G g = diamond();
  PathWorkspace ws;
  shortest_path_tree(ws, g.node_capacity(), 0, weight_scan(g));
  const ShortestPathTree exported =
      export_shortest_path_tree(ws, g.node_capacity());
  const ShortestPathTree shim =
      shortest_path_tree(g.node_capacity(), 0, weight_scan(g));
  EXPECT_EQ(exported.dist, shim.dist);
  EXPECT_EQ(exported.parent_edge, shim.parent_edge);
  EXPECT_EQ(exported.parent_node, shim.parent_node);
  auto p = exported.path_to(0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 1, 3}));
}

TEST(PathKernel, TreeExportMarksUnreachableFromStaleEpochs) {
  // Warm the workspace with a run from 0 (everything reachable), then run
  // from 3 (nothing reachable): stale stamps from the first run must not
  // leak into the export.
  G g = diamond();
  PathWorkspace ws;
  shortest_path_tree(ws, g.node_capacity(), 0, weight_scan(g));
  shortest_path_tree(ws, g.node_capacity(), 3, weight_scan(g));
  const ShortestPathTree tree =
      export_shortest_path_tree(ws, g.node_capacity());
  EXPECT_EQ(tree.dist[3], 0.0);
  for (NodeId v : {NodeId{0}, NodeId{1}, NodeId{2}}) {
    EXPECT_EQ(tree.dist[v], kInf) << "node " << v;
    EXPECT_EQ(tree.parent_edge[v], kInvalidId) << "node " << v;
  }
}

TEST(PathKernel, YenReusesWorkspaceAcrossQueries) {
  G g = diamond();
  PathWorkspace ws;
  // Interleave tree and Yen queries on one workspace; each must be
  // unaffected by the previous run's state.
  for (int round = 0; round < 3; ++round) {
    auto paths =
        k_shortest_paths(ws, g.node_capacity(), 0, 3, 5, weight_scan(g));
    ASSERT_EQ(paths.size(), 2u) << "round " << round;
    EXPECT_EQ(paths[0].cost, 2.0);
    EXPECT_EQ(paths[1].cost, 4.0);
    shortest_path_tree(ws, g.node_capacity(), 1, weight_scan(g));
    const ShortestPathTree tree =
        export_shortest_path_tree(ws, g.node_capacity());
    EXPECT_EQ(tree.dist[3], 1.0) << "round " << round;
    EXPECT_EQ(tree.dist[0], kInf) << "round " << round;
  }
}

TEST(PathKernel, WorkspaceGrowsToLargestCapacity) {
  PathWorkspace ws;
  G small = diamond();
  shortest_path_tree(ws, small.node_capacity(), 0, weight_scan(small));
  EXPECT_EQ(ws.capacity(), small.node_capacity());

  G big;
  for (int i = 0; i < 40; ++i) big.add_node();
  for (int i = 0; i + 1 < 40; ++i) {
    big.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), {1});
  }
  shortest_path_tree(ws, big.node_capacity(), 0, weight_scan(big));
  EXPECT_EQ(ws.capacity(), big.node_capacity());
  const ShortestPathTree tree =
      export_shortest_path_tree(ws, big.node_capacity());
  EXPECT_EQ(tree.dist[39], 39.0);

  // Shrinking back to the small graph keeps the larger arrays but must
  // still bound results by the query's node_capacity.
  shortest_path_tree(ws, small.node_capacity(), 0, weight_scan(small));
  EXPECT_EQ(ws.capacity(), big.node_capacity());
  const ShortestPathTree again =
      export_shortest_path_tree(ws, small.node_capacity());
  EXPECT_EQ(again.dist.size(), small.node_capacity());
  EXPECT_EQ(again.dist[3], 2.0);
}

}  // namespace
}  // namespace unify::graph
