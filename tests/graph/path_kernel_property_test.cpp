// Property pin for the kernel-ported tree/Yen algorithms: on random
// topologies under random route/unroute churn (links get bandwidth
// reserved and released, masking and unmasking edges for a given floor),
// the allocation-free kernel versions of shortest_path_tree and
// k_shortest_paths must return exactly what the legacy EdgeScanFn engine
// returned — same costs, same node/edge sequences, same parents.
//
// The reference implementations below are verbatim ports of the
// pre-kernel MinQueue engine (algorithms.cpp before the port), kept here
// as the independent oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>

#include "graph/graph.h"
#include "graph/path_kernel.h"
#include "util/rng.h"

namespace unify::graph {
namespace {

struct None {};
struct LinkState {
  double delay = 1;
  double capacity = 100;
  double reserved = 0;
};
using G = Digraph<None, LinkState>;

// ---------------------------------------------------------------------------
// Legacy EdgeScanFn engine (reference oracle, pre-kernel implementation).

struct QueueItem {
  double dist;
  NodeId node;
  friend bool operator>(const QueueItem& a, const QueueItem& b) noexcept {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.node > b.node;  // deterministic tie-break
  }
};
using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

ShortestPathTree legacy_tree(std::size_t node_capacity, NodeId source,
                             const EdgeScanFn& scan) {
  ShortestPathTree tree;
  tree.dist.assign(node_capacity, kInf);
  tree.parent_edge.assign(node_capacity, kInvalidId);
  tree.parent_node.assign(node_capacity, kInvalidId);
  if (source >= node_capacity) return tree;

  std::vector<bool> done(node_capacity, false);
  tree.dist[source] = 0;
  MinQueue queue;
  queue.push({0, source});
  while (!queue.empty()) {
    const auto [dist, node] = queue.top();
    queue.pop();
    if (done[node]) continue;
    done[node] = true;
    scan(node, [&](EdgeId edge, NodeId to, double weight) {
      if (weight < 0 || to >= node_capacity || done[to]) return;
      const double candidate = dist + weight;
      if (candidate < tree.dist[to]) {
        tree.dist[to] = candidate;
        tree.parent_edge[to] = edge;
        tree.parent_node[to] = node;
        queue.push({candidate, to});
      }
    });
  }
  return tree;
}

std::optional<Path> legacy_shortest_path(std::size_t node_capacity,
                                         NodeId source, NodeId target,
                                         const EdgeScanFn& scan) {
  const ShortestPathTree tree = legacy_tree(node_capacity, source, scan);
  if (target >= node_capacity) return std::nullopt;
  return tree.path_to(source, target);
}

std::vector<Path> legacy_k_shortest(std::size_t node_capacity, NodeId source,
                                    NodeId target, std::size_t k,
                                    const EdgeScanFn& scan) {
  std::vector<Path> result;
  if (k == 0) return result;

  auto masked_scan = [&](const std::vector<bool>& banned_nodes,
                         const std::set<EdgeId>& banned_edges) {
    return [&, banned_nodes, banned_edges](NodeId node,
                                           const EdgeVisitFn& visit) {
      scan(node, [&](EdgeId edge, NodeId to, double weight) {
        if (banned_edges.count(edge) != 0) return;
        if (to < banned_nodes.size() && banned_nodes[to]) return;
        visit(edge, to, weight);
      });
    };
  };

  auto first = legacy_shortest_path(node_capacity, source, target, scan);
  if (!first) return result;
  result.push_back(std::move(*first));

  auto cmp = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.edges < b.edges;
  };
  std::vector<Path> candidates;

  while (result.size() < k) {
    const Path& prev = result.back();
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur_node = prev.nodes[i];
      std::set<EdgeId> banned_edges;
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(p.nodes.begin(),
                       p.nodes.begin() + static_cast<long>(i) + 1,
                       prev.nodes.begin())) {
          if (i < p.edges.size()) banned_edges.insert(p.edges[i]);
        }
      }
      std::vector<bool> banned_nodes(node_capacity, false);
      for (std::size_t j = 0; j < i; ++j) banned_nodes[prev.nodes[j]] = true;

      auto spur = legacy_shortest_path(node_capacity, spur_node, target,
                                       masked_scan(banned_nodes, banned_edges));
      if (!spur) continue;

      Path total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() + static_cast<long>(i));
      total.edges.assign(prev.edges.begin(),
                         prev.edges.begin() + static_cast<long>(i));
      total.nodes.insert(total.nodes.end(), spur->nodes.begin(),
                         spur->nodes.end());
      total.edges.insert(total.edges.end(), spur->edges.begin(),
                         spur->edges.end());
      double root_cost = 0;
      for (std::size_t j = 0; j < i; ++j) {
        const EdgeId want = prev.edges[j];
        double w = 0;
        scan(prev.nodes[j], [&](EdgeId edge, NodeId, double weight) {
          if (edge == want) w = weight;
        });
        root_cost += w;
      }
      total.cost = root_cost + spur->cost;

      if (std::find(result.begin(), result.end(), total) == result.end() &&
          std::find(candidates.begin(), candidates.end(), total) ==
              candidates.end()) {
        candidates.push_back(std::move(total));
      }
    }
    if (candidates.empty()) break;
    auto best = std::min_element(candidates.begin(), candidates.end(), cmp);
    result.push_back(std::move(*best));
    candidates.erase(best);
  }
  return result;
}

// ---------------------------------------------------------------------------

/// Residual-aware scan, the shape the mapping layer uses: an edge is
/// usable iff its residual bandwidth covers `floor`, otherwise it is
/// masked with a negative weight.
EdgeScanFn residual_scan(const G& g, double floor) {
  return [&g, floor](NodeId node, const EdgeVisitFn& visit) {
    for (const EdgeId e : g.out_edges(node)) {
      const auto& edge = g.edge(e);
      const double residual = edge.data.capacity - edge.data.reserved;
      visit(e, edge.to, residual >= floor ? edge.data.delay : -1.0);
    }
  };
}

G random_graph(Rng& rng, int nodes, int edges) {
  G g;
  for (int i = 0; i < nodes; ++i) g.add_node();
  for (int i = 0; i < edges; ++i) {
    const auto a = static_cast<NodeId>(rng.next_below(nodes));
    const auto b = static_cast<NodeId>(rng.next_below(nodes));
    if (a == b) continue;
    LinkState link;
    link.delay = rng.next_double(0.5, 10.0);
    link.capacity = static_cast<double>(rng.next_int(20, 100));
    g.add_edge(a, b, link);
  }
  return g;
}

void expect_same_path(const Path& kernel, const Path& legacy,
                      const std::string& what) {
  EXPECT_DOUBLE_EQ(kernel.cost, legacy.cost) << what;
  EXPECT_EQ(kernel.nodes, legacy.nodes) << what;
  EXPECT_EQ(kernel.edges, legacy.edges) << what;
}

class KernelPinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelPinProperty, TreeAndYenMatchLegacyUnderChurn) {
  Rng rng(GetParam());
  const int nodes = static_cast<int>(rng.next_int(6, 24));
  const int edges = nodes * static_cast<int>(rng.next_int(2, 4));
  G g = random_graph(rng, nodes, edges);
  if (g.edge_count() == 0) GTEST_SKIP() << "degenerate random draw";

  std::vector<EdgeId> edge_ids;
  for (NodeId n = 0; n < g.node_capacity(); ++n) {
    for (const EdgeId e : g.out_edges(n)) edge_ids.push_back(e);
  }

  PathWorkspace workspace;  // shared across rounds: must stay correct warm
  for (int round = 0; round < 30; ++round) {
    // Route/unroute churn: reserve or release bandwidth on random links,
    // which masks/unmasks them for queries with a high enough floor.
    const EdgeId touched = edge_ids[rng.next_below(edge_ids.size())];
    LinkState& link = g.edge(touched).data;
    if (rng.next_bool(0.6)) {
      link.reserved = std::min(link.capacity,
                               link.reserved + rng.next_double(5, 40));
    } else {
      link.reserved = std::max(0.0, link.reserved - rng.next_double(5, 40));
    }

    const double floor = rng.next_double(0, 60);
    const EdgeScanFn scan = residual_scan(g, floor);
    const auto source = static_cast<NodeId>(rng.next_below(nodes));
    const auto target = static_cast<NodeId>(rng.next_below(nodes));

    // --- shortest_path_tree: kernel vs legacy engine.
    shortest_path_tree(workspace, g.node_capacity(), source, scan);
    const ShortestPathTree kernel_tree =
        export_shortest_path_tree(workspace, g.node_capacity());
    const ShortestPathTree reference =
        legacy_tree(g.node_capacity(), source, scan);
    ASSERT_EQ(kernel_tree.dist, reference.dist) << "round " << round;
    ASSERT_EQ(kernel_tree.parent_edge, reference.parent_edge)
        << "round " << round;
    ASSERT_EQ(kernel_tree.parent_node, reference.parent_node)
        << "round " << round;
    // The public shim must agree with both.
    const ShortestPathTree shim =
        shortest_path_tree(g.node_capacity(), source, scan);
    ASSERT_EQ(shim.dist, reference.dist) << "round " << round;

    // --- k_shortest_paths: kernel vs legacy engine.
    const std::size_t k = 1 + rng.next_below(5);
    const std::vector<Path> kernel_paths = k_shortest_paths(
        workspace, g.node_capacity(), source, target, k, scan);
    const std::vector<Path> legacy_paths =
        legacy_k_shortest(g.node_capacity(), source, target, k, scan);
    ASSERT_EQ(kernel_paths.size(), legacy_paths.size())
        << "round " << round << " src=" << source << " dst=" << target
        << " k=" << k;
    for (std::size_t i = 0; i < kernel_paths.size(); ++i) {
      expect_same_path(kernel_paths[i], legacy_paths[i],
                       "round " + std::to_string(round) + " path " +
                           std::to_string(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPinProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 4242u,
                                           0xBADC0DEu));

}  // namespace
}  // namespace unify::graph
