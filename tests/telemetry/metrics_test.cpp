#include "telemetry/metrics.h"

#include <gtest/gtest.h>

namespace unify::telemetry {
namespace {

TEST(Summary, BasicStatistics) {
  Summary s;
  for (const double v : {4.0, 1.0, 3.0, 2.0}) s.observe(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.sum(), 10.0);
  EXPECT_EQ(s.mean(), 2.5);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.observe(i);
  EXPECT_EQ(s.percentile(0.5), 50.0);
  EXPECT_EQ(s.percentile(0.99), 99.0);
  EXPECT_EQ(s.percentile(1.0), 100.0);
  EXPECT_EQ(s.percentile(0.0), 1.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Registry, CountersAndGauges) {
  Registry r;
  r.add("rpc.calls");
  r.add("rpc.calls", 4);
  EXPECT_EQ(r.counter("rpc.calls"), 5u);
  EXPECT_EQ(r.counter("unknown"), 0u);
  r.set_gauge("util", 0.7);
  EXPECT_EQ(r.gauge("util"), 0.7);
  EXPECT_EQ(r.gauge("unknown"), 0.0);
}

TEST(Registry, MergeFoldsPrivateRegistries) {
  // The batch-deploy pattern: workers fill a local registry, the caller
  // folds it into the long-lived one after joining.
  Registry main;
  main.add("requests", 3);
  main.set_gauge("workers", 2);
  main.summary("latency").observe(10);

  Registry scratch;
  scratch.add("requests", 2);
  scratch.add("conflicts");
  scratch.set_gauge("workers", 4);
  scratch.summary("latency").observe(30);

  main.merge(scratch);
  EXPECT_EQ(main.counter("requests"), 5u);   // counters add up
  EXPECT_EQ(main.counter("conflicts"), 1u);  // new names appear
  EXPECT_EQ(main.gauge("workers"), 4.0);     // gauges take the newer value
  ASSERT_NE(main.find_summary("latency"), nullptr);
  EXPECT_EQ(main.find_summary("latency")->count(), 2u);
  EXPECT_EQ(main.find_summary("latency")->sum(), 40.0);
}

TEST(Summary, MergeAppendsObservations) {
  Summary a;
  a.observe(1);
  a.observe(5);
  Summary b;
  b.observe(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 9.0);
  EXPECT_EQ(a.max(), 5.0);
}

TEST(Registry, SummariesAndReset) {
  Registry r;
  r.summary("latency").observe(5);
  ASSERT_NE(r.find_summary("latency"), nullptr);
  EXPECT_EQ(r.find_summary("latency")->count(), 1u);
  EXPECT_EQ(r.find_summary("none"), nullptr);
  r.reset();
  EXPECT_EQ(r.find_summary("latency"), nullptr);
  EXPECT_EQ(r.counter("rpc.calls"), 0u);
}

TEST(EventLog, RecordsAndFilters) {
  EventLog log;
  log.record(10, "ro", "map start");
  log.record(20, "adapter.sdn", "flow install");
  log.record(30, "ro", "map done");
  EXPECT_EQ(log.events().size(), 3u);
  const auto ro = log.by_component("ro");
  ASSERT_EQ(ro.size(), 2u);
  EXPECT_EQ(ro[1]->what, "map done");
  log.clear();
  EXPECT_TRUE(log.events().empty());
}

}  // namespace
}  // namespace unify::telemetry
