// Seed plumbing for the randomized soaks (chaos, churn): every seed a test
// runs with can be overridden from the environment, and every failure
// names the seed it ran under, so a red CI run is replayable with e.g.
//
//   CHAOS_SEED=1234 ctest -L chaos --output-on-failure
//   CHURN_SEED=1234 ctest -L churn --output-on-failure
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace unify::test {

/// The seeds a soak should run: the env override alone when `env_var`
/// (e.g. "CHURN_SEED") is set and parses, otherwise `defaults`.
inline std::vector<std::uint64_t> soak_seeds(
    const char* env_var, std::vector<std::uint64_t> defaults) {
  const char* raw = std::getenv(env_var);
  if (raw == nullptr || *raw == '\0') return defaults;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw) {
    ADD_FAILURE() << env_var << "='" << raw << "' is not a seed";
    return defaults;
  }
  return {static_cast<std::uint64_t>(parsed)};
}

}  // namespace unify::test

/// Names the active seed in every assertion failure inside the scope, with
/// the replay recipe (the env var to set).
#define UNIFY_SEED_TRACE(env_var, seed)                                \
  SCOPED_TRACE(::testing::Message() << "replay: " << (env_var) << "=" \
                                    << (seed))
