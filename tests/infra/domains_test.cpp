#include <gtest/gtest.h>

#include "infra/cloud.h"
#include "infra/emu_network.h"
#include "infra/sdn_network.h"
#include "infra/universal_node.h"

namespace unify::infra {
namespace {

using model::LinkAttrs;
using model::Resources;

// ------------------------------------------------------------ SdnNetwork

TEST(SdnNetwork, FlowOpsChargeLatency) {
  SimClock clock;
  SdnNetwork net(clock, "sdn1", SdnConfig{500});
  ASSERT_TRUE(net.add_switch("s1", 4).ok());
  ASSERT_TRUE(net.install_flow("s1", FlowEntry{"e", 0, "", 1, "", 0}).ok());
  EXPECT_EQ(clock.now(), 500);
  ASSERT_TRUE(net.remove_flow("s1", "e").ok());
  EXPECT_EQ(clock.now(), 1000);
  EXPECT_EQ(net.flow_ops(), 2u);
  EXPECT_EQ(net.install_flow("zz", FlowEntry{}).error().code,
            ErrorCode::kNotFound);
}

TEST(SdnNetwork, RecordsTopologyForViews) {
  SimClock clock;
  SdnNetwork net(clock, "sdn1");
  ASSERT_TRUE(net.add_switch("s1", 4).ok());
  ASSERT_TRUE(net.add_switch("s2", 4).ok());
  ASSERT_TRUE(net.connect("s1", 1, "s2", 1, {1000, 2.5}).ok());
  ASSERT_TRUE(net.attach_sap("sapA", "s1", 0, {1000, 0.1}).ok());
  ASSERT_EQ(net.wires().size(), 1u);
  EXPECT_EQ(net.wires()[0].attrs.delay, 2.5);
  ASSERT_EQ(net.saps().size(), 1u);
  EXPECT_EQ(net.saps()[0].sap, "sapA");
}

// ----------------------------------------------------------------- Cloud

TEST(Cloud, SchedulerPicksLeastLoaded) {
  SimClock clock;
  Cloud cloud(clock, "dc1");
  ASSERT_TRUE(cloud.add_hypervisor("hv1", {8, 8192, 100}).ok());
  ASSERT_TRUE(cloud.add_hypervisor("hv2", {8, 8192, 100}).ok());
  ASSERT_TRUE(cloud.boot_vm("vm1", "firewall", {4, 1024, 10}, 2).ok());
  ASSERT_TRUE(cloud.boot_vm("vm2", "nat", {1, 512, 5}, 2).ok());
  // vm1 loaded hv1 to 50% cpu, so vm2 must land on hv2.
  EXPECT_NE(cloud.find_vm("vm1")->host, cloud.find_vm("vm2")->host);
}

TEST(Cloud, VmLifecycleAndBootLatency) {
  SimClock clock;
  CloudConfig cfg;
  cfg.vm_boot_us = 1'000'000;
  Cloud cloud(clock, "dc1", cfg);
  ASSERT_TRUE(cloud.add_hypervisor("hv1", {8, 8192, 100}).ok());
  ASSERT_TRUE(cloud.boot_vm("vm1", "dpi", {2, 2048, 8}, 2).ok());
  EXPECT_EQ(cloud.find_vm("vm1")->status, VmStatus::kBuild);
  clock.run_until_idle();
  EXPECT_EQ(cloud.find_vm("vm1")->status, VmStatus::kActive);
  EXPECT_EQ(cloud.total_allocated(), (Resources{2, 2048, 8}));
  ASSERT_TRUE(cloud.delete_vm("vm1").ok());
  EXPECT_EQ(cloud.find_vm("vm1")->status, VmStatus::kDeleted);
  EXPECT_TRUE(cloud.total_allocated().is_zero());
  EXPECT_EQ(cloud.delete_vm("vm1").error().code, ErrorCode::kNotFound);
}

TEST(Cloud, RejectsWhenFull) {
  SimClock clock;
  Cloud cloud(clock, "dc1");
  ASSERT_TRUE(cloud.add_hypervisor("hv1", {2, 2048, 10}).ok());
  ASSERT_TRUE(cloud.boot_vm("vm1", "x", {2, 1024, 5}, 1).ok());
  auto r = cloud.boot_vm("vm2", "x", {1, 512, 1}, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kResourceExhausted);
}

TEST(Cloud, SteeringBetweenExternalAndVm) {
  SimClock clock;
  Cloud cloud(clock, "dc1");
  ASSERT_TRUE(cloud.add_hypervisor("hv1", {8, 8192, 100}).ok());
  ASSERT_TRUE(cloud.boot_vm("vm1", "fw", {1, 512, 1}, 2).ok());
  clock.run_until_idle();
  ASSERT_TRUE(
      cloud.install_steering("r1", "ext0", "", "vm1:0", "chain-a").ok());
  ASSERT_TRUE(
      cloud.install_steering("r2", "vm1:1", "chain-a", "ext1", "-").ok());
  auto trace = cloud.fabric().trace("ext0");
  EXPECT_FALSE(trace.dropped) << trace.drop_reason;
  EXPECT_EQ(trace.egress_endpoint, "vm1:0");
  auto trace2 = cloud.fabric().trace("vm1:1", "chain-a");
  EXPECT_EQ(trace2.egress_endpoint, "ext1");
  EXPECT_EQ(trace2.hops.back().tag_after, "");
  // Unknown endpoint rejected.
  EXPECT_EQ(
      cloud.install_steering("r3", "ext9", "", "vm1:0", "").error().code,
      ErrorCode::kNotFound);
  ASSERT_TRUE(cloud.remove_steering("r1").ok());
}

// --------------------------------------------------------- UniversalNode

TEST(UniversalNode, ContainerLifecycle) {
  SimClock clock;
  UnConfig cfg;
  cfg.container_start_us = 250'000;
  UniversalNode un(clock, "un1", {16, 16384, 100}, cfg);
  ASSERT_TRUE(un.start_container("fw0", "firewall", {2, 1024, 4}, 2).ok());
  EXPECT_EQ(clock.now(), 250'000);
  ASSERT_NE(un.find_container("fw0"), nullptr);
  EXPECT_EQ(un.find_container("fw0")->status, ContainerStatus::kRunning);
  EXPECT_EQ(un.allocated(), (Resources{2, 1024, 4}));
  ASSERT_TRUE(un.stop_container("fw0").ok());
  EXPECT_TRUE(un.allocated().is_zero());
  EXPECT_EQ(un.stop_container("fw0").error().code, ErrorCode::kNotFound);
}

TEST(UniversalNode, CapacityEnforced) {
  SimClock clock;
  UniversalNode un(clock, "un1", {2, 2048, 10});
  ASSERT_TRUE(un.start_container("a", "x", {2, 1024, 4}, 1).ok());
  auto r = un.start_container("b", "x", {1, 512, 1}, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kResourceExhausted);
  // Stopping frees capacity for reuse (new container id).
  ASSERT_TRUE(un.stop_container("a").ok());
  EXPECT_TRUE(un.start_container("b", "x", {1, 512, 1}, 1).ok());
}

TEST(UniversalNode, LsiSteeringTrace) {
  SimClock clock;
  UniversalNode un(clock, "un1", {16, 16384, 100});
  ASSERT_TRUE(un.start_container("fw0", "firewall", {2, 1024, 4}, 2).ok());
  ASSERT_TRUE(un.add_flowrule("r1", "ext0", "", "fw0:0", "").ok());
  ASSERT_TRUE(un.add_flowrule("r2", "fw0:1", "", "ext1", "").ok());
  auto in = un.fabric().trace("ext0");
  EXPECT_EQ(in.egress_endpoint, "fw0:0");
  auto out = un.fabric().trace("fw0:1");
  EXPECT_EQ(out.egress_endpoint, "ext1");
  ASSERT_TRUE(un.remove_flowrule("r1").ok());
  EXPECT_EQ(un.remove_flowrule("zz").error().code, ErrorCode::kNotFound);
}

TEST(UniversalNode, FlowModsAreFast) {
  SimClock clock;
  UniversalNode un(clock, "un1", {16, 16384, 100});
  const SimTime before = clock.now();
  ASSERT_TRUE(un.add_flowrule("r", "ext0", "", "ext1", "").ok());
  EXPECT_EQ(clock.now() - before, 50);  // DPDK-scale, not OpenFlow-scale
}

// ------------------------------------------------------------ EmuNetwork

TEST(EmuNetwork, ClickProcessesRunBesideSwitches) {
  SimClock clock;
  EmuNetwork emu(clock, "mn1");
  ASSERT_TRUE(emu.add_switch("s1", 4, {4, 4096, 20}).ok());
  ASSERT_TRUE(emu.add_switch("s2", 4, {4, 4096, 20}).ok());
  ASSERT_TRUE(emu.connect("s1", 1, "s2", 1, {1000, 1.0}).ok());
  ASSERT_TRUE(emu.attach_sap("sapA", "s1", 0, {1000, 0.1}).ok());

  ASSERT_TRUE(emu.start_click("nf0", "nat", "s1", {1, 256, 1}, 2).ok());
  ASSERT_NE(emu.find_click("nf0"), nullptr);
  EXPECT_TRUE(emu.find_click("nf0")->running);
  EXPECT_EQ(emu.ees().at("s1").allocated, (Resources{1, 256, 1}));

  // NF ports live in the EE port block (after public port 4).
  const auto& ports = emu.find_click("nf0")->switch_ports;
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_GE(ports[0], 4);

  // Steer sapA -> nf0 through the switch.
  ASSERT_TRUE(
      emu.install_flow("s1", FlowEntry{"r", 0, "", ports[0], "", 0}).ok());
  auto trace = emu.fabric().trace("sapA");
  EXPECT_EQ(trace.egress_endpoint, "nf0:0");

  ASSERT_TRUE(emu.stop_click("nf0").ok());
  EXPECT_TRUE(emu.ees().at("s1").allocated.is_zero());
}

TEST(EmuNetwork, EeCapacityAndPortLimits) {
  SimClock clock;
  EmuConfig cfg;
  cfg.ee_ports_per_switch = 2;
  EmuNetwork emu(clock, "mn1", cfg);
  ASSERT_TRUE(emu.add_switch("s1", 2, {2, 1024, 10}).ok());
  // Capacity exceeded.
  EXPECT_EQ(
      emu.start_click("big", "x", "s1", {9, 0, 0}, 1).error().code,
      ErrorCode::kResourceExhausted);
  // Ports exhausted (2 EE ports, ask for 3).
  EXPECT_EQ(
      emu.start_click("wide", "x", "s1", {1, 1, 1}, 3).error().code,
      ErrorCode::kResourceExhausted);
  // Unknown EE.
  EXPECT_EQ(emu.start_click("nf", "x", "zz", {1, 1, 1}, 1).error().code,
            ErrorCode::kNotFound);
}

TEST(EmuNetwork, OperationLatencies) {
  SimClock clock;
  EmuConfig cfg;
  cfg.click_start_us = 120'000;
  cfg.flow_mod_latency_us = 700;
  EmuNetwork emu(clock, "mn1", cfg);
  ASSERT_TRUE(emu.add_switch("s1", 4, {4, 4096, 20}).ok());
  ASSERT_TRUE(emu.start_click("nf0", "nat", "s1", {1, 256, 1}, 2).ok());
  EXPECT_EQ(clock.now(), 120'000);
  ASSERT_TRUE(
      emu.install_flow("s1", FlowEntry{"r", 0, "", 1, "", 0}).ok());
  EXPECT_EQ(clock.now(), 120'700);
  EXPECT_EQ(emu.operations(), 2u);
}

}  // namespace
}  // namespace unify::infra
