#include "infra/topologies.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "model/topology_index.h"

namespace unify::infra::topo {
namespace {

bool fully_reachable(const model::Nffg& g) {
  model::TopologyIndex index(g);
  const auto ids = index.graph().node_ids();
  if (ids.empty()) return true;
  const auto seen = graph::reachable_from(index.graph().node_capacity(),
                                          ids[0], index.scan_by_hops(0));
  for (const auto id : ids) {
    if (!seen[id]) return false;
  }
  return true;
}

TEST(Line, ShapeAndValidity) {
  const model::Nffg g = line(5);
  EXPECT_EQ(g.bisbis().size(), 5u);
  EXPECT_EQ(g.saps().size(), 2u);
  EXPECT_EQ(g.links().size(), (4u + 2u) * 2);  // 4 inter + 2 sap, both dirs
  EXPECT_TRUE(g.validate().empty());
  EXPECT_TRUE(fully_reachable(g));
}

TEST(Line, SingleNode) {
  const model::Nffg g = line(1);
  EXPECT_EQ(g.bisbis().size(), 1u);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_TRUE(fully_reachable(g));
}

TEST(Ring, ShapeAndValidity) {
  const model::Nffg g = ring(6, 3);
  EXPECT_EQ(g.bisbis().size(), 6u);
  EXPECT_EQ(g.saps().size(), 3u);
  EXPECT_EQ(g.links().size(), (6u + 3u) * 2);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_TRUE(fully_reachable(g));
}

TEST(LeafSpine, ShapeAndValidity) {
  const model::Nffg g = leaf_spine(2, 4, 3);
  EXPECT_EQ(g.bisbis().size(), 6u);
  EXPECT_EQ(g.saps().size(), 3u);
  EXPECT_EQ(g.links().size(), (2u * 4u + 3u) * 2);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_TRUE(fully_reachable(g));
  // Spines advertise no compute.
  EXPECT_TRUE(g.find_bisbis("spine0")->capacity.is_zero());
  EXPECT_FALSE(g.find_bisbis("leaf0")->capacity.is_zero());
}

class RandomTopo : public ::testing::TestWithParam<int> {};

TEST_P(RandomTopo, ConnectedAndValid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const model::Nffg g = random_connected(GetParam(), 3.0, 2, rng);
  EXPECT_EQ(g.bisbis().size(), static_cast<std::size_t>(GetParam()));
  EXPECT_EQ(g.saps().size(), 2u);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_TRUE(fully_reachable(g));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTopo,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(RandomTopo, DeterministicPerSeed) {
  Rng rng1(99), rng2(99);
  const model::Nffg a = random_connected(12, 2.5, 2, rng1);
  const model::Nffg b = random_connected(12, 2.5, 2, rng2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace unify::infra::topo
