#include "infra/fabric.h"

#include <gtest/gtest.h>

namespace unify::infra {
namespace {

Fabric two_switches() {
  Fabric f;
  EXPECT_TRUE(f.add_switch("s1", 4).ok());
  EXPECT_TRUE(f.add_switch("s2", 4).ok());
  EXPECT_TRUE(f.connect("s1", 1, "s2", 1).ok());
  EXPECT_TRUE(f.attach("sap1", "s1", 0).ok());
  EXPECT_TRUE(f.attach("sap2", "s2", 0).ok());
  return f;
}

TEST(FlowSwitch, InstallAndLookup) {
  FlowSwitch sw("s", 4);
  ASSERT_TRUE(sw.install(FlowEntry{"e1", 0, "", 1, "", 0}).ok());
  const FlowEntry* hit = sw.lookup(0, "");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->out_port, 1);
  EXPECT_EQ(sw.lookup(2, ""), nullptr);
}

TEST(FlowSwitch, TagMatching) {
  FlowSwitch sw("s", 4);
  ASSERT_TRUE(sw.install(FlowEntry{"tagged", 0, "red", 1, "", 0}).ok());
  ASSERT_TRUE(sw.install(FlowEntry{"wild", 0, "", 2, "", 0}).ok());
  // Exact tag beats nothing special here: both match "red" but priorities
  // equal -> first installed wins only if priority higher; check explicit.
  const FlowEntry* red = sw.lookup(0, "red");
  ASSERT_NE(red, nullptr);
  // Wildcard matches unknown tags.
  const FlowEntry* blue = sw.lookup(0, "blue");
  ASSERT_NE(blue, nullptr);
  EXPECT_EQ(blue->id, "wild");
}

TEST(FlowSwitch, PriorityWins) {
  FlowSwitch sw("s", 4);
  ASSERT_TRUE(sw.install(FlowEntry{"low", 0, "", 1, "", 1}).ok());
  ASSERT_TRUE(sw.install(FlowEntry{"high", 0, "", 2, "", 9}).ok());
  EXPECT_EQ(sw.lookup(0, "")->id, "high");
}

TEST(FlowSwitch, RejectsBadEntries) {
  FlowSwitch sw("s", 2);
  EXPECT_EQ(sw.install(FlowEntry{"", 0, "", 1, "", 0}).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(sw.install(FlowEntry{"e", 5, "", 1, "", 0}).error().code,
            ErrorCode::kInvalidArgument);
  ASSERT_TRUE(sw.install(FlowEntry{"e", 0, "", 1, "", 0}).ok());
  EXPECT_EQ(sw.install(FlowEntry{"e", 1, "", 0, "", 0}).error().code,
            ErrorCode::kAlreadyExists);
  EXPECT_TRUE(sw.remove("e").ok());
  EXPECT_EQ(sw.remove("e").error().code, ErrorCode::kNotFound);
  EXPECT_EQ(sw.stats().flow_mods, 2u);  // only successful install + remove
}

TEST(Fabric, WiringChecks) {
  Fabric f = two_switches();
  // Port already wired.
  EXPECT_EQ(f.connect("s1", 1, "s2", 2).error().code,
            ErrorCode::kAlreadyExists);
  // Attach on wired port.
  EXPECT_EQ(f.attach("x", "s1", 1).error().code, ErrorCode::kAlreadyExists);
  // Unknown switch / port.
  EXPECT_EQ(f.connect("zz", 0, "s2", 2).error().code, ErrorCode::kNotFound);
  EXPECT_EQ(f.attach("y", "s1", 9).error().code,
            ErrorCode::kInvalidArgument);
  // Duplicate endpoint.
  EXPECT_EQ(f.attach("sap1", "s2", 2).error().code,
            ErrorCode::kAlreadyExists);
  ASSERT_TRUE(f.attachment("sap1").has_value());
  EXPECT_EQ(f.attachment("sap1")->first, "s1");
  EXPECT_FALSE(f.attachment("nope").has_value());
}

TEST(FabricTrace, EndToEndAcrossSwitches) {
  Fabric f = two_switches();
  ASSERT_TRUE(
      f.find_switch("s1")->install(FlowEntry{"a", 0, "", 1, "t7", 0}).ok());
  ASSERT_TRUE(
      f.find_switch("s2")->install(FlowEntry{"b", 1, "t7", 0, "-", 0}).ok());
  auto trace = f.trace("sap1");
  EXPECT_FALSE(trace.dropped) << trace.drop_reason;
  EXPECT_EQ(trace.egress_endpoint, "sap2");
  ASSERT_EQ(trace.hops.size(), 2u);
  EXPECT_EQ(trace.hops[0].switch_id, "s1");
  EXPECT_EQ(trace.hops[0].tag_after, "t7");
  EXPECT_EQ(trace.hops[1].tag_after, "");  // stripped at egress
}

TEST(FabricTrace, DropsWithoutMatch) {
  Fabric f = two_switches();
  auto trace = f.trace("sap1");
  EXPECT_TRUE(trace.dropped);
  EXPECT_NE(trace.drop_reason.find("no match"), std::string::npos);
}

TEST(FabricTrace, DropsOnUnconnectedPort) {
  Fabric f = two_switches();
  ASSERT_TRUE(
      f.find_switch("s1")->install(FlowEntry{"a", 0, "", 3, "", 0}).ok());
  auto trace = f.trace("sap1");
  EXPECT_TRUE(trace.dropped);
  EXPECT_NE(trace.drop_reason.find("unconnected"), std::string::npos);
}

TEST(FabricTrace, LoopGuardTrips) {
  Fabric f;
  ASSERT_TRUE(f.add_switch("s1", 4).ok());
  ASSERT_TRUE(f.add_switch("s2", 4).ok());
  ASSERT_TRUE(f.connect("s1", 1, "s2", 1).ok());
  ASSERT_TRUE(f.connect("s1", 2, "s2", 2).ok());
  ASSERT_TRUE(f.attach("in", "s1", 0).ok());
  // s1: in->1; s2: 1->2; s1: 2->1 ... ping-pong forever.
  ASSERT_TRUE(f.find_switch("s1")->install(FlowEntry{"a", 0, "", 1, "", 0}).ok());
  ASSERT_TRUE(f.find_switch("s2")->install(FlowEntry{"b", 1, "", 2, "", 0}).ok());
  ASSERT_TRUE(f.find_switch("s1")->install(FlowEntry{"c", 2, "", 1, "", 0}).ok());
  auto trace = f.trace("in");
  EXPECT_TRUE(trace.dropped);
  EXPECT_NE(trace.drop_reason.find("hop limit"), std::string::npos);
}

TEST(FabricTrace, UnknownAttachment) {
  Fabric f = two_switches();
  auto trace = f.trace("ghost");
  EXPECT_TRUE(trace.dropped);
}

TEST(FabricTrace, TagRewriteMidPath) {
  Fabric f;
  ASSERT_TRUE(f.add_switch("s", 4).ok());
  ASSERT_TRUE(f.attach("a", "s", 0).ok());
  ASSERT_TRUE(f.attach("b", "s", 1).ok());
  ASSERT_TRUE(
      f.find_switch("s")->install(FlowEntry{"r", 0, "old", 1, "new", 0}).ok());
  auto trace = f.trace("a", "old");
  EXPECT_FALSE(trace.dropped);
  EXPECT_EQ(trace.hops[0].tag_after, "new");
  EXPECT_EQ(trace.egress_endpoint, "b");
}

TEST(FabricTrace, CountsPackets) {
  Fabric f = two_switches();
  ASSERT_TRUE(
      f.find_switch("s1")->install(FlowEntry{"a", 0, "", 1, "", 0}).ok());
  ASSERT_TRUE(
      f.find_switch("s2")->install(FlowEntry{"b", 1, "", 0, "", 0}).ok());
  (void)f.trace("sap1");
  (void)f.trace("sap1");
  EXPECT_EQ(f.find_switch("s1")->stats().packets_switched, 2u);
}

}  // namespace
}  // namespace unify::infra
