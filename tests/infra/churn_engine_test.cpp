// The churn scenario engine's contracts: bit-identical replay per (spec,
// seed), ordered timestamps, causally consistent arrival/departure pairs,
// flash crowds that actually raise the arrival rate, storms that migrate
// only live services, and the rolling-maintenance helper's stagger.
#include "infra/churn.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace unify::infra::churn {
namespace {

std::vector<Event> drain(ChurnEngine& engine) {
  std::vector<Event> events;
  while (auto event = engine.next()) events.push_back(*std::move(event));
  return events;
}

std::string serialize(const std::vector<Event>& events) {
  std::ostringstream out;
  for (const Event& e : events) {
    out << e.at << ' ' << to_string(e.kind) << ' ' << e.service_id << ' '
        << e.domain << ' ' << e.deadline << ' ' << e.chain.src_sap << "->"
        << e.chain.dst_sap << " bw=" << e.chain.bandwidth << " nfs=";
    for (const int t : e.chain.nf_types) out << t << ',';
    out << '\n';
  }
  return out.str();
}

ScenarioSpec busy_spec() {
  ScenarioSpec spec;
  spec.horizon_us = 60'000'000;  // 60 sim-seconds
  spec.arrival_rate_hz = 10;
  spec.flash_crowds.push_back({20'000'000, 5'000'000, 4.0});
  add_rolling_maintenance(spec, 30'000'000, 4'000'000, 6'000'000);
  spec.storms.push_back({45'000'000, 0.5});
  return spec;
}

TEST(ChurnEngine, ReplayIsBitIdenticalPerSeed) {
  ChurnEngine first(busy_spec(), 42);
  ChurnEngine second(busy_spec(), 42);
  const auto a = drain(first);
  const auto b = drain(second);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(serialize(a), serialize(b));
  EXPECT_EQ(first.arrivals_generated(), second.arrivals_generated());

  ChurnEngine other(busy_spec(), 43);
  EXPECT_NE(serialize(drain(other)), serialize(a)) << "seed must matter";
}

TEST(ChurnEngine, TimestampsAreOrderedAndBounded) {
  ChurnEngine engine(busy_spec(), 7);
  SimTime last = 0;
  for (const Event& e : drain(engine)) {
    EXPECT_GE(e.at, last);
    EXPECT_LE(e.at, busy_spec().horizon_us);
    last = e.at;
  }
}

TEST(ChurnEngine, ArrivalsDepartInOrderAndOnlyOnce) {
  ChurnEngine engine(busy_spec(), 11);
  std::map<std::string, SimTime> arrived;
  std::set<std::string> departed;
  for (const Event& e : drain(engine)) {
    if (e.kind == EventKind::kArrival) {
      EXPECT_TRUE(arrived.emplace(e.service_id, e.at).second)
          << e.service_id << " arrived twice";
      EXPECT_GT(e.deadline, e.at) << "deadline must follow arrival";
      EXPECT_FALSE(e.chain.nf_types.empty());
      EXPECT_NE(e.chain.src_sap, e.chain.dst_sap);
    } else if (e.kind == EventKind::kDeparture) {
      const auto it = arrived.find(e.service_id);
      ASSERT_NE(it, arrived.end()) << e.service_id << " departed unseen";
      EXPECT_GT(e.at, it->second);
      EXPECT_TRUE(departed.insert(e.service_id).second)
          << e.service_id << " departed twice";
    }
  }
  EXPECT_EQ(arrived.size(), engine.arrivals_generated());
  EXPECT_GT(arrived.size(), 0u);
}

TEST(ChurnEngine, FlashCrowdRaisesArrivalDensity) {
  ScenarioSpec spec;
  spec.horizon_us = 100'000'000;
  spec.arrival_rate_hz = 10;
  spec.flash_crowds.push_back({40'000'000, 20'000'000, 5.0});
  ChurnEngine engine(spec, 3);
  std::size_t inside = 0, before = 0;
  for (const Event& e : drain(engine)) {
    if (e.kind != EventKind::kArrival) continue;
    if (e.at >= 40'000'000 && e.at < 60'000'000) ++inside;
    if (e.at < 20'000'000) ++before;
  }
  // Same window width (20s): ~5x the arrivals inside the crowd. 2x is a
  // generous statistical floor.
  EXPECT_GT(inside, 2 * before);
  EXPECT_GT(before, 0u);
}

TEST(ChurnEngine, MaintenanceWindowsRollAcrossDomains) {
  ScenarioSpec spec;
  spec.horizon_us = 60'000'000;
  spec.arrival_rate_hz = 0;  // maintenance only
  spec.n_domains = 3;
  add_rolling_maintenance(spec, 10'000'000, 4'000'000, 6'000'000);
  ChurnEngine engine(spec, 1);
  const auto events = drain(engine);
  ASSERT_EQ(events.size(), 6u);  // begin+end per domain
  int down = 0;
  std::set<int> domains_seen;
  for (const Event& e : events) {
    if (e.kind == EventKind::kMaintenanceBegin) {
      ++down;
      domains_seen.insert(e.domain);
      // stagger >= window: rolling maintenance means at most one domain
      // down at any instant.
      EXPECT_LE(down, 1) << "overlapping maintenance at " << e.at;
    } else if (e.kind == EventKind::kMaintenanceEnd) {
      --down;
    }
  }
  EXPECT_EQ(domains_seen.size(), 3u);
}

TEST(ChurnEngine, StormMigratesOnlyLiveServicesAtStormTime) {
  ScenarioSpec spec;
  spec.horizon_us = 60'000'000;
  spec.arrival_rate_hz = 10;
  spec.lifetime_min_s = 2;
  spec.lifetime_cap_s = 30;
  spec.storms.push_back({30'000'000, 0.5});
  ChurnEngine engine(spec, 9);
  std::set<std::string> live;
  std::size_t live_at_storm = 0, migrations = 0;
  for (const Event& e : drain(engine)) {
    if (e.kind == EventKind::kMigrate) {
      if (migrations == 0) live_at_storm = live.size();
      ++migrations;
      EXPECT_EQ(e.at, 30'000'000);
      EXPECT_TRUE(live.count(e.service_id))
          << e.service_id << " migrated while not live";
    } else if (e.kind == EventKind::kArrival) {
      live.insert(e.service_id);
    } else if (e.kind == EventKind::kDeparture) {
      live.erase(e.service_id);
    }
  }
  ASSERT_GT(migrations, 0u);
  EXPECT_EQ(migrations, live_at_storm / 2);  // fraction = 0.5
}

TEST(ChurnEngine, LifetimesRespectParetoBounds) {
  ScenarioSpec spec;
  spec.horizon_us = 400'000'000;
  spec.arrival_rate_hz = 5;
  spec.lifetime_min_s = 1;
  spec.lifetime_cap_s = 20;
  ChurnEngine engine(spec, 21);
  std::map<std::string, SimTime> arrived;
  std::size_t departures = 0;
  for (const Event& e : drain(engine)) {
    if (e.kind == EventKind::kArrival) arrived[e.service_id] = e.at;
    if (e.kind != EventKind::kDeparture) continue;
    ++departures;
    const SimTime lifetime = e.at - arrived.at(e.service_id);
    EXPECT_GE(lifetime, 1'000'000);
    EXPECT_LE(lifetime, 20'000'000);
  }
  EXPECT_GT(departures, 100u);
}

}  // namespace
}  // namespace unify::infra::churn
