#include "viz/dot.h"

#include <gtest/gtest.h>

#include "model/nffg_builder.h"

namespace unify::viz {
namespace {

model::Nffg sample_nffg() {
  model::Nffg g{"g"};
  EXPECT_TRUE(
      g.add_bisbis(model::make_bisbis("bb1", {8, 8192, 100}, 4)).ok());
  model::attach_sap(g, "sap1", "bb1", 0);
  EXPECT_TRUE(
      g.place_nf("bb1", model::make_nf("fw", "firewall", {2, 1024, 4}))
          .ok());
  return g;
}

TEST(Dot, NffgContainsAllElements) {
  const std::string dot = to_dot(sample_nffg());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"sap1\""), std::string::npos);
  EXPECT_NE(dot.find("\"bb1\""), std::string::npos);
  EXPECT_NE(dot.find("fw:firewall"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(dot.front(), 'd');
  EXPECT_EQ(dot[dot.size() - 2], '}');
}

TEST(Dot, ServiceGraphContainsChain) {
  const sg::ServiceGraph sg =
      sg::make_chain("svc", "a", {"nat"}, "b", 10, 30);
  const std::string dot = to_dot(sg);
  EXPECT_NE(dot.find("\"nat0\""), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("<=30ms"), std::string::npos);
}

TEST(Dot, EscapesQuotes) {
  model::Nffg g{"we\"ird"};
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("\\\""), std::string::npos);
}

TEST(SummaryTable, ReportsCounts) {
  const std::string table = summary_table(sample_nffg());
  EXPECT_NE(table.find("1 BiS-BiS"), std::string::npos);
  EXPECT_NE(table.find("1 SAPs"), std::string::npos);
  EXPECT_NE(table.find("capacity"), std::string::npos);
}

}  // namespace
}  // namespace unify::viz
