// unify_rod: the resource-orchestration daemon — a real RO process on a
// real wire. The paper's recursive Unify interface (get-config /
// edit-config) served over TCP by the epoll reactor, plus the matching
// load generator.
//
//   ./unify_rod serve [port]
//       Assembles the Fig. 1 multi-domain stack and serves its virtualizer
//       northbound. Every TCP connection is an independent manager session
//       over the shared orchestrator (port defaults to 47000; 0 picks an
//       ephemeral port, printed on stdout). Runs until killed.
//
//   ./unify_rod load <host> <port> [sessions] [rpcs_per_session]
//                    [--faults[=seed]]
//       Opens N concurrent manager sessions and drives M RPCs through each
//       (alternating get-config and converged edit-config), closed-loop
//       per session. Reports throughput, p50/p99 round-trip latency and a
//       per-session failure table; exits non-zero unless every session
//       completed its full RPC budget. --faults wraps every client
//       transport in a seeded FaultTransport (resets, blackholes, jitter)
//       to demo the failure accounting against a healthy server.
//
// Smoke test on one machine:  ./unify_rod serve 47000 &
//                             ./unify_rod load 127.0.0.1 47000 100 20
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/unify_api.h"
#include "proto/fault_transport.h"
#include "proto/net/reactor.h"
#include "proto/net/tcp.h"
#include "proto/resilient_session.h"
#include "proto/rpc.h"
#include "service/fig1.h"

using namespace unify;

namespace {

int serve(std::uint16_t port) {
  auto stack = service::make_fig1_stack();
  if (!stack.ok()) {
    std::fprintf(stderr, "stack assembly failed: %s\n",
                 stack.error().to_string().c_str());
    return 1;
  }
  core::Virtualizer& virtualizer = *(*stack)->virtualizer;

  proto::net::Reactor reactor;
  std::map<std::uint64_t, std::unique_ptr<core::UnifyServer>> sessions;
  std::uint64_t next_session = 0;

  auto listener = proto::net::TcpListener::listen(
      reactor, "0.0.0.0", port,
      [&](std::shared_ptr<proto::net::TcpTransport> conn) {
        const std::uint64_t id = next_session++;
        std::printf("session %llu: %s connected (%zu live)\n",
                    static_cast<unsigned long long>(id),
                    conn->peer_name().c_str(), sessions.size() + 1);
        auto server = std::make_unique<core::UnifyServer>(
            virtualizer, std::move(conn), "session-" + std::to_string(id));
        server->on_disconnect([&reactor, &sessions, id] {
          // Deferred one tick: the hook runs inside the transport's close
          // callback; the session object dies outside it.
          reactor.schedule(0, [&sessions, id] {
            sessions.erase(id);
            std::printf("session %llu: hangup (%zu live)\n",
                        static_cast<unsigned long long>(id), sessions.size());
          });
        });
        sessions.emplace(id, std::move(server));
      });
  if (!listener.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 listener.error().to_string().c_str());
    return 1;
  }
  std::printf("unify_rod serving the Fig.1 orchestrator on port %u\n",
              (*listener)->port());
  std::fflush(stdout);
  for (;;) reactor.poll(-1);
}

/// The --faults demo profile: enough resets and blackholes that a 100x20
/// run visibly loses sessions, plus jitter to spread the RTT tail.
proto::FaultProfile demo_fault_profile() {
  proto::FaultProfile profile;
  profile.reset_rate = 0.01;
  profile.blackhole_rate = 0.005;
  profile.latency_us = 100;
  profile.jitter_us = 1'000;
  return profile;
}

int load(const std::string& host, std::uint16_t port, int session_count,
         int rpcs_per_session, bool inject_faults,
         std::uint64_t fault_seed) {
  using WallClock = std::chrono::steady_clock;

  proto::net::Reactor reactor;
  struct Session {
    std::unique_ptr<proto::ResilientSession> wire;
    json::Value config;  // fetched once, re-pushed by edit-config calls
    int done = 0;
    int failures = 0;
    int retries_left = 0;  ///< shared budget across seeding and firing
    bool active = false;   ///< still owes RPCs and has retries left
    std::string last_error;
    WallClock::time_point sent_at;
  };
  std::vector<Session> sessions(static_cast<std::size_t>(session_count));
  std::size_t index = 0;
  for (auto& session : sessions) {
    // Reconnecting sessions with wire-default heartbeats (PR 9's open
    // item): each owns a factory so a server restart or an injected reset
    // heals transparently — the closed loop below only sees a transient
    // kUnavailable it retries. The fault injector persists across
    // incarnations, so --faults keeps biting reconnected transports.
    std::shared_ptr<proto::FaultInjector> injector;
    if (inject_faults) {
      injector = std::make_shared<proto::FaultInjector>(demo_fault_profile(),
                                                        fault_seed + index);
    }
    auto factory = [&reactor, host, port,
                    injector]() -> Result<std::shared_ptr<proto::Transport>> {
      auto conn = proto::net::TcpTransport::connect(reactor, host, port);
      if (!conn.ok()) return conn.error();
      std::shared_ptr<proto::Transport> wire = std::move(*conn);
      if (injector != nullptr) {
        wire = proto::FaultTransport::wrap(std::move(wire), injector);
      }
      return wire;
    };
    session.wire = std::make_unique<proto::ResilientSession>(
        "load-" + std::to_string(index), reactor, std::move(factory),
        proto::wire_session_options());
    session.retries_left = 5 * rpcs_per_session;
    ++index;
  }

  // Seed every session with the child's current config — the payload the
  // edit-config half of the mix pushes back (a converged no-op for the
  // orchestrator, full parse/serialize cost for the wire). Seeding retries
  // through the session's reconnect loop: under --faults a first-frame
  // reset is expected traffic, not a dead session.
  for (auto& session : sessions) {
    while (session.retries_left > 0) {
      auto reply = session.wire->call_and_wait(
          "get-config", json::Value{json::Object{}},
          /*timeout_us=*/5'000'000);
      if (reply.ok()) {
        session.config = *reply;
        break;
      }
      --session.retries_left;
      ++session.failures;
      session.last_error = reply.error().to_string();
      reactor.poll(10);  // give the reconnect backoff a chance to land
    }
  }

  std::vector<double> rtts_us;
  rtts_us.reserve(static_cast<std::size_t>(session_count) *
                  static_cast<std::size_t>(rpcs_per_session));
  int active = 0;

  // Closed loop per session: completion of one RPC fires the next, so
  // `session_count` requests are always concurrently on the wire. Every
  // call carries a deadline so a blackholed frame cannot wedge the loop; a
  // failed call burns a retry and re-fires after a pause long enough for
  // the session's reconnect to land, instead of abandoning the session.
  std::function<void(Session&)> fire = [&](Session& session) {
    const auto retry_or_abandon = [&](const Error& error) {
      ++session.failures;
      session.last_error = error.to_string();
      if (session.retries_left-- > 0) {
        reactor.schedule(20'000, [&] { fire(session); });
      } else {
        session.active = false;
        --active;
      }
    };
    const bool edit = (session.done % 2) == 1;
    json::Value params = json::Value{json::Object{}};
    if (edit) {
      json::Object p;
      p.set("config", *session.config.get("config"));
      params = json::Value{std::move(p)};
    }
    session.sent_at = WallClock::now();
    const auto sent = session.wire->call(
        edit ? "edit-config" : "get-config", std::move(params),
        [&, retry_or_abandon](Result<json::Value> reply) {
          if (!reply.ok()) {
            retry_or_abandon(reply.error());
            return;
          }
          rtts_us.push_back(std::chrono::duration<double, std::micro>(
                                WallClock::now() - session.sent_at)
                                .count());
          if (++session.done < rpcs_per_session) {
            fire(session);
          } else {
            session.active = false;
            --active;
          }
        },
        /*timeout_us=*/5'000'000);
    if (!sent.ok()) retry_or_abandon(sent.error());
  };

  const auto started = WallClock::now();
  for (auto& session : sessions) {
    if (session.config.is_object()) {
      session.active = true;
      ++active;
      fire(session);
    }
  }
  while (active > 0) reactor.poll(100);
  const double elapsed_s =
      std::chrono::duration<double>(WallClock::now() - started).count();

  // Per-session accounting: a dropped session must never pass silently —
  // anything short of its full RPC budget fails the run.
  int total_failures = 0;
  int incomplete = 0;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& session = sessions[i];
    total_failures += session.failures;
    if (session.done < rpcs_per_session) {
      ++incomplete;
      std::fprintf(stderr,
                   "session %zu: incomplete %d/%d rpcs, %d failures, "
                   "%d retries left, active=%d (%s)\n",
                   i, session.done, rpcs_per_session, session.failures,
                   session.retries_left, session.active ? 1 : 0,
                   session.last_error.empty() ? "no error recorded"
                                              : session.last_error.c_str());
    }
  }

  std::printf(
      "sessions=%d rpcs/session=%d completed=%zu failures=%d "
      "incomplete_sessions=%d%s\n",
      session_count, rpcs_per_session, rtts_us.size(), total_failures,
      incomplete, inject_faults ? " (fault injection on)" : "");
  if (rtts_us.empty()) {
    std::fprintf(stderr, "no RPC completed\n");
    return 1;
  }
  std::sort(rtts_us.begin(), rtts_us.end());
  const auto pct = [&](double p) {
    const auto at = static_cast<std::size_t>(
        p * static_cast<double>(rtts_us.size() - 1));
    return rtts_us[at];
  };
  std::printf("throughput: %.0f rpc/s over %.2f s\n",
              static_cast<double>(rtts_us.size()) / elapsed_s, elapsed_s);
  std::printf("rtt: p50=%.0f us  p99=%.0f us  max=%.0f us\n", pct(0.50),
              pct(0.99), rtts_us.back());
  // Transient failures that the retry loop healed are expected traffic
  // (especially under --faults); only an exhausted session fails the run.
  return incomplete == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "serve") {
    const int port = argc > 2 ? std::atoi(argv[2]) : 47000;
    return serve(static_cast<std::uint16_t>(port));
  }
  if (mode == "load" && argc > 3) {
    bool faults = false;
    std::uint64_t fault_seed = 0x5eed;
    std::vector<std::string> positional;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--faults") {
        faults = true;
      } else if (arg.rfind("--faults=", 0) == 0) {
        faults = true;
        fault_seed = std::strtoull(arg.c_str() + 9, nullptr, 10);
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.size() >= 2) {
      const std::string host = positional[0];
      const int port = std::atoi(positional[1].c_str());
      const int sessions =
          positional.size() > 2 ? std::atoi(positional[2].c_str()) : 100;
      const int rpcs =
          positional.size() > 3 ? std::atoi(positional[3].c_str()) : 20;
      return load(host, static_cast<std::uint16_t>(port), sessions, rpcs,
                  faults, fault_seed);
    }
  }
  std::fprintf(stderr,
               "usage: %s serve [port]\n"
               "       %s load <host> <port> [sessions] [rpcs_per_session]"
               " [--faults[=seed]]\n",
               argv[0], argv[0]);
  return 2;
}
