// Recursive orchestration + NF decomposition (paper showcase iii).
//
// Builds a three-level control hierarchy — two leaf UNIFY domains, each
// with its own RO and single-BiS-BiS virtualizer, stacked under a parent
// RO, with a top virtualizer above that — then deploys a "secure-gw"
// service whose abstract NF decomposes twice (secure-gw -> firewall + ids,
// firewall -> acl + stateful) on the way down. Shows the view each layer
// sees and where the components finally land.
//
// Run: ./recursive_decomposition
#include <cstdio>

#include "core/config_translate.h"
#include "core/unify_api.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "viz/dot.h"

using namespace unify;

namespace {

/// Leaf infrastructure behind a trivial always-accepting adapter.
class AcceptAllAdapter final : public adapters::DomainAdapter {
 public:
  AcceptAllAdapter(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  const std::string& domain() const noexcept override { return name_; }
  Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  std::uint64_t native_operations() const noexcept override { return 0; }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg leaf_infra(const std::string& name, const std::string& sap,
                       double cpu) {
  model::Nffg g{name + "-infra"};
  auto added = g.add_bisbis(
      model::make_bisbis(name + "-bb", {cpu, 16384, 200}, 4, 0.05));
  (void)added;
  model::attach_sap(g, sap, name + "-bb", 0, {1000, 0.1});
  model::attach_sap(g, "xp", name + "-bb", 1, {1000, 0.4});
  return g;
}

struct Leaf {
  std::unique_ptr<core::ResourceOrchestrator> ro;
  std::unique_ptr<core::Virtualizer> virtualizer;
};

Leaf make_leaf(const std::string& name, const std::string& sap, double cpu) {
  Leaf leaf;
  leaf.ro = std::make_unique<core::ResourceOrchestrator>(
      name, std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  (void)leaf.ro->add_domain(
      std::make_unique<AcceptAllAdapter>(name + "-infra",
                                         leaf_infra(name, sap, cpu)));
  (void)leaf.ro->initialize();
  leaf.virtualizer = std::make_unique<core::Virtualizer>(
      *leaf.ro, core::ViewPolicy::kSingleBisBis, name + ".big");
  return leaf;
}

void show_placements(const char* title, const model::Nffg& view) {
  std::printf("%s\n", title);
  bool any = false;
  for (const auto& [bb_id, bb] : view.bisbis()) {
    for (const auto& [nf_id, nf] : bb.nfs) {
      std::printf("    %-28s (%s) on %s\n", nf_id.c_str(), nf.type.c_str(),
                  bb_id.c_str());
      any = true;
    }
  }
  if (!any) std::printf("    (none)\n");
}

}  // namespace

int main() {
  SimClock clock;

  // Level 0: two leaf UNIFY domains.
  Leaf left = make_leaf("left", "sap-l", 16);
  Leaf right = make_leaf("right", "sap-r", 16);

  // Level 1: parent RO stacking both leaves over the Unify interface.
  auto parent = std::make_unique<core::ResourceOrchestrator>(
      "parent", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  if (!parent->add_domain(core::make_unify_link(*left.virtualizer, clock,
                                                "left"))
           .ok() ||
      !parent->add_domain(core::make_unify_link(*right.virtualizer, clock,
                                                "right"))
           .ok() ||
      !parent->initialize().ok()) {
    std::fprintf(stderr, "hierarchy assembly failed\n");
    return 1;
  }
  std::printf("== parent's merged view (two child UNIFY domains) ==\n%s\n",
              viz::summary_table(parent->global_view()).c_str());
  std::printf("%s\n", viz::to_dot(parent->global_view()).c_str());

  // The request: sap-l -> secure-gw -> dpi -> sap-r.
  const sg::ServiceGraph request = sg::make_chain(
      "secure-svc", "sap-l", {"secure-gw", "dpi"}, "sap-r", 100, 60);
  std::printf("== request ==\n%s\n", viz::to_dot(request).c_str());

  const auto id = parent->deploy(request);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 id.error().to_string().c_str());
    return 1;
  }

  // What each layer believes it runs:
  const auto& deployment = parent->deployments().at("secure-svc");
  std::printf("parent expanded the request into %zu NFs using %zu "
              "decomposition combination(s)\n",
              deployment.expanded.nfs().size(),
              static_cast<std::size_t>(
                  parent->metrics().counter("ro.decomposition_combinations")));
  show_placements("  parent-level placements (collapsed children):",
                  parent->global_view());
  show_placements("  left child's own re-orchestrated placements:",
                  left.ro->global_view());
  show_placements("  right child's own re-orchestrated placements:",
                  right.ro->global_view());

  // Tear down through the hierarchy.
  if (!parent->remove("secure-svc").ok()) {
    std::fprintf(stderr, "remove failed\n");
    return 1;
  }
  const std::size_t leftover = left.ro->global_view().stats().nf_count +
                               right.ro->global_view().stats().nf_count;
  std::printf("\nafter teardown both children are empty: %s\n",
              leftover == 0 ? "yes" : "NO");
  std::printf("recursive_decomposition %s\n", leftover == 0 ? "OK" : "FAILED");
  return leftover == 0 ? 0 : 1;
}
