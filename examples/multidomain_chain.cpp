// Multi-domain service lifecycle: several tenants share the unified
// infrastructure; services are deployed, monitored, and torn down while
// the orchestrator keeps the books straight (paper showcase ii).
//
// Demonstrates: multiple concurrent chains, bandwidth accounting on shared
// inter-domain links, rejection under exhaustion, and release on teardown.
//
// Run: ./multidomain_chain
#include <cstdio>

#include "service/fig1.h"
#include "viz/dot.h"

using namespace unify;

namespace {

void print_reservations(const model::Nffg& view) {
  std::printf("  link reservations:\n");
  for (const auto& [id, link] : view.links()) {
    if (link.reserved > 0) {
      std::printf("    %-22s %6.0f / %6.0f Mbit/s\n", id.c_str(),
                  link.reserved, link.attrs.bandwidth);
    }
  }
}

}  // namespace

int main() {
  auto stack = service::make_fig1_stack();
  if (!stack.ok()) {
    std::fprintf(stderr, "stack assembly failed: %s\n",
                 stack.error().to_string().c_str());
    return 1;
  }
  service::Fig1Stack& s = **stack;

  // Tenant A: web security chain sap1 -> firewall -> sap2 @ 400 Mbit/s.
  // Tenant B: monitoring tap sap3 -> monitor -> sap2 @ 200 Mbit/s.
  // Tenant C: CDN edge sap2 -> cdn-edge -> sap3 @ 300 Mbit/s (decomposes
  //           into lb + cache + monitor). Each tenant enters at a distinct
  //           SAP: ingress classification is (port, tag)-based, so chains
  //           sharing an ingress SAP would be indistinguishable (real
  //           deployments put a 5-tuple classifier there; see DESIGN.md).
  struct Tenant {
    const char* id;
    sg::ServiceGraph graph;
  };
  std::vector<Tenant> tenants;
  tenants.push_back(
      {"tenant-a",
       sg::make_chain("tenant-a", "sap1", {"firewall"}, "sap2", 400, 40)});
  tenants.push_back(
      {"tenant-b",
       sg::make_chain("tenant-b", "sap3", {"monitor"}, "sap2", 200, 40)});
  tenants.push_back(
      {"tenant-c",
       sg::make_chain("tenant-c", "sap2", {"cdn-edge"}, "sap3", 300, 60)});

  for (const Tenant& tenant : tenants) {
    const auto id = s.service_layer->submit(tenant.graph);
    std::printf("deploy %-10s : %s\n", tenant.id,
                id.ok() ? "ok" : id.error().to_string().c_str());
    if (!id.ok()) return 1;
  }
  s.clock.run_until_idle();
  (void)s.ro->sync_statuses();

  std::printf("\n== state after 3 tenants ==\n%s",
              viz::summary_table(s.ro->global_view()).c_str());
  print_reservations(s.ro->global_view());

  // All three data paths work simultaneously.
  for (const auto& [from, to] :
       {std::pair{"sap1", "sap2"}, {"sap3", "sap2"}, {"sap2", "sap3"}}) {
    const auto trace = service::end_to_end_trace(s, from, to);
    std::printf("  trace %s -> %s: %s\n", from, to,
                trace.ok() ? "delivered" : trace.error().to_string().c_str());
    if (!trace.ok()) return 1;
  }

  // A fourth tenant asking for more than the remaining sap1 bandwidth is
  // rejected without disturbing the others...
  const auto overload = s.service_layer->submit(
      sg::make_chain("tenant-d", "sap1", {"nat"}, "sap2", 800, 40));
  std::printf("\ndeploy tenant-d (800 Mbit/s on a saturated edge): %s\n",
              overload.ok() ? "UNEXPECTEDLY ACCEPTED"
                            : overload.error().to_string().c_str());
  if (overload.ok()) return 1;

  // ...but fits after tenant A releases its share.
  if (const auto removed = s.service_layer->remove("tenant-a");
      !removed.ok()) {
    std::fprintf(stderr, "remove failed: %s\n",
                 removed.error().to_string().c_str());
    return 1;
  }
  const auto retry = s.service_layer->submit(
      sg::make_chain("tenant-d", "sap1", {"nat"}, "sap2", 800, 40));
  std::printf("deploy tenant-d after tenant-a left: %s\n",
              retry.ok() ? "ok" : retry.error().to_string().c_str());
  if (!retry.ok()) return 1;

  std::printf("\n== final state ==\n%s",
              viz::summary_table(s.ro->global_view()).c_str());
  print_reservations(s.ro->global_view());
  std::printf("\nmultidomain_chain OK\n");
  return 0;
}
