// Embedding playground: compare the pluggable mapping algorithms on the
// same substrate and watch acceptance degrade as load grows.
//
// ESCAPEv2's point (iv): the framework is extensible "with additional plug
// and play components/algorithms, like ... network embedding algorithms".
// This example exercises exactly that seam: the same RO-less mapping call
// with nine interchangeable algorithms.
//
// Run: ./embedding_playground [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "infra/topologies.h"
#include "mapping/annealing_mapper.h"
#include "mapping/backtracking_mapper.h"
#include "mapping/baseline_mappers.h"
#include "mapping/bnb_mapper.h"
#include "mapping/chain_dp_mapper.h"
#include "mapping/greedy_mapper.h"
#include "mapping/list_mapper.h"
#include "mapping/nsga2_mapper.h"

using namespace unify;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  // A 12-node random substrate with two SAPs.
  const model::Nffg substrate = infra::topo::random_connected(12, 3.0, 2, rng);
  const catalog::NfCatalog cat = catalog::default_catalog();
  std::printf("substrate: %zu BiS-BiS, %zu links (seed %llu)\n\n",
              substrate.bisbis().size(), substrate.links().size(),
              static_cast<unsigned long long>(seed));

  std::vector<std::unique_ptr<mapping::Mapper>> mappers;
  mappers.push_back(std::make_unique<mapping::GreedyMapper>());
  mappers.push_back(std::make_unique<mapping::ChainDpMapper>());
  mappers.push_back(std::make_unique<mapping::BacktrackingMapper>());
  mappers.push_back(std::make_unique<mapping::FirstFitMapper>());
  mappers.push_back(std::make_unique<mapping::RandomMapper>());
  mappers.push_back(std::make_unique<mapping::AnnealingMapper>());
  mappers.push_back(std::make_unique<mapping::ListMapper>());
  mappers.push_back(std::make_unique<mapping::Nsga2Mapper>());
  mappers.push_back(std::make_unique<mapping::BnbMapper>());

  std::printf("%-14s | %-9s | %-10s | %-10s | %-8s\n", "mapper", "accepted",
              "delay(ms)", "bw*hops", "nodes");
  std::printf("%s\n", std::string(62, '-').c_str());

  // One chain of growing length until each mapper gives up.
  for (int length = 2; length <= 10; length += 2) {
    std::vector<std::string> nf_types;
    for (int i = 0; i < length; ++i) {
      nf_types.push_back(i % 2 == 0 ? "fw-lite" : "monitor");
    }
    const sg::ServiceGraph sg =
        sg::make_chain("chain" + std::to_string(length), "sap1", nf_types,
                       "sap2", 200, 25);
    std::printf("-- chain of %d NFs --\n", length);
    for (const auto& mapper : mappers) {
      const auto mapping = mapper->map(sg, substrate, cat);
      if (mapping.ok()) {
        double delay = 0;
        for (const auto& [req, d] : mapping->requirement_delay) delay += d;
        std::printf("%-14s | %-9s | %10.2f | %10.0f | %8zu\n",
                    mapper->name().c_str(), "yes", delay,
                    mapping->stats.bandwidth_hops,
                    mapping->stats.nodes_used);
      } else {
        std::printf("%-14s | %-9s | %10s | %10s | %8s\n",
                    mapper->name().c_str(), "no", "-", "-", "-");
      }
    }
  }
  std::printf("\nembedding_playground OK\n");
  return 0;
}
