// View policies and live migration.
//
// Part 1 contrasts the two virtualization policies of the paper's
// delegation spectrum: a *single-BiS-BiS* client delegates placement to
// the orchestrator below, while a *full-view* client sees the real
// topology and pins NFs to nodes itself (the orchestrator only routes).
//
// Part 2 exercises "migration between technologies": a domain drains its
// compute (capacity re-advertised as zero), and `redeploy` moves the
// running NFs to the remaining domain without touching the service's
// identity.
//
// The domains here are plain DomainAdapter implementations defined inline —
// demonstrating the adapter extension seam itself.
//
// Run: ./views_and_migration
#include <cstdio>

#include "core/resource_orchestrator.h"
#include "core/virtualizer.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "viz/dot.h"

using namespace unify;

namespace {

/// Minimal domain: a canned view, swap-able at runtime (drain simulation).
class InlineDomain final : public adapters::DomainAdapter {
 public:
  InlineDomain(std::string name, model::Nffg view)
      : name_(std::move(name)), view_(std::move(view)) {}
  const std::string& domain() const noexcept override { return name_; }
  Result<model::Nffg> fetch_view() override { return view_; }
  Result<void> apply(const model::Nffg&) override {
    return Result<void>::success();
  }
  std::uint64_t native_operations() const noexcept override { return 0; }
  void set_view(model::Nffg view) { view_ = std::move(view); }

 private:
  std::string name_;
  model::Nffg view_;
};

model::Nffg domain_view(const std::string& bb, const std::string& sap,
                        double cpu) {
  model::Nffg g{bb + "-view"};
  auto added = g.add_bisbis(model::make_bisbis(bb, {cpu, 16384, 200}, 4));
  (void)added;
  model::attach_sap(g, sap, bb, 0, {1000, 0.1});
  model::attach_sap(g, "xp", bb, 1, {1000, 0.5});
  return g;
}

void show_placement(const core::ResourceOrchestrator& ro) {
  for (const auto& [bb_id, bb] : ro.global_view().bisbis()) {
    for (const auto& [nf_id, nf] : bb.nfs) {
      std::printf("    %-12s on %s\n", nf_id.c_str(), bb_id.c_str());
    }
  }
}

}  // namespace

int main() {
  auto ro = std::make_unique<core::ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  auto left_owner =
      std::make_unique<InlineDomain>("west", domain_view("bb-west", "sap1", 16));
  auto right_owner =
      std::make_unique<InlineDomain>("east", domain_view("bb-east", "sap2", 16));
  InlineDomain* east = right_owner.get();
  if (!ro->add_domain(std::move(left_owner)).ok() ||
      !ro->add_domain(std::move(right_owner)).ok() ||
      !ro->initialize().ok()) {
    std::fprintf(stderr, "assembly failed\n");
    return 1;
  }

  // ---------------- Part 1: the two view policies -----------------------
  core::Virtualizer collapsed(*ro, core::ViewPolicy::kSingleBisBis);
  core::Virtualizer full(*ro, core::ViewPolicy::kFull);

  auto collapsed_view = collapsed.get_config();
  auto full_view = full.get_config();
  if (!collapsed_view.ok() || !full_view.ok()) return 1;
  std::printf("single-BiS-BiS client sees %zu node(s); full-view client "
              "sees %zu node(s)\n",
              collapsed_view->bisbis().size(), full_view->bisbis().size());

  // The full-view client pins an NF explicitly on the *east* node even
  // though the orchestrator's own mapper would have preferred west
  // (closer to sap1): the client's placement wins.
  model::Nffg pinned = *full_view;
  if (!pinned.place_nf("bb-east",
                       model::make_nf("tenant-nf", "nat", {1, 512, 1}, 2))
           .ok()) {
    return 1;
  }
  (void)pinned.add_flowrule("bb-west",
                            model::Flowrule{"c0", {"bb-west", 0},
                                            {"bb-west", 1}, "", "c0", 5});
  (void)pinned.add_flowrule("bb-east",
                            model::Flowrule{"c0e", {"bb-east", 1},
                                            {"tenant-nf", 0}, "c0", "-", 5});
  (void)pinned.add_flowrule("bb-east",
                            model::Flowrule{"c1", {"tenant-nf", 1},
                                            {"bb-east", 0}, "", "", 5});
  if (!full.edit_config(pinned).ok()) {
    std::fprintf(stderr, "full-view edit-config failed\n");
    return 1;
  }
  std::printf("\nfull-view client pinned its NF:\n");
  show_placement(*ro);

  // Clean up the tenant before part 2.
  if (!full.edit_config(*full_view).ok()) return 1;

  // ---------------- Part 2: drain + migration ---------------------------
  const auto request = ro->deploy(
      sg::make_chain("svc", "sap1", {"firewall"}, "sap2", 20, 100));
  if (!request.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 request.error().to_string().c_str());
    return 1;
  }
  std::printf("\ninitial placement (mapper chose freely):\n");
  show_placement(*ro);

  std::printf("\n== maintenance: east domain drains its compute ==\n");
  east->set_view(domain_view("bb-east", "sap2", /*cpu=*/0));
  if (!ro->refresh_domain("east").ok()) return 1;
  if (!ro->redeploy("svc").ok()) {
    std::fprintf(stderr, "migration failed\n");
    return 1;
  }
  std::printf("after redeploy (NFs moved off the drained node):\n");
  show_placement(*ro);

  for (const auto& [bb_id, bb] : ro->global_view().bisbis()) {
    if (bb_id == "bb-east" && !bb.nfs.empty()) {
      std::fprintf(stderr, "migration left NFs on the drained node!\n");
      return 1;
    }
  }
  std::printf("\nviews_and_migration OK\n");
  return 0;
}
