// Quickstart: deploy one service chain over the full multi-domain stack.
//
// Builds the paper's Fig. 1 setup (emulated network + OpenFlow transport +
// OpenStack DC + Universal Node under one resource orchestrator), submits
// a firewall->NAT chain between two customer SAPs through the service
// layer, waits for the NFs to come up, and proves with a data-plane packet
// trace that traffic is steered through every NF across the domains.
//
// Run: ./quickstart
#include <cstdio>

#include "service/fig1.h"
#include "viz/dot.h"

using namespace unify;

int main() {
  // 1. Assemble the multi-domain stack (Fig. 1 of the paper).
  auto stack = service::make_fig1_stack();
  if (!stack.ok()) {
    std::fprintf(stderr, "stack assembly failed: %s\n",
                 stack.error().to_string().c_str());
    return 1;
  }
  service::Fig1Stack& s = **stack;
  std::printf("== global resource view (merged from 4 domains) ==\n%s\n",
              viz::summary_table(s.ro->global_view()).c_str());

  // 2. Describe the service: sap1 -> firewall -> nat -> sap2, 50 Mbit/s,
  //    at most 40 ms end to end.
  const sg::ServiceGraph request =
      sg::make_chain("demo", "sap1", {"firewall", "nat"}, "sap2",
                     /*bandwidth=*/50, /*max_delay=*/40);
  std::printf("== service request ==\n%s\n", viz::to_dot(request).c_str());

  // 3. Submit through the service layer (Unify RPC -> virtualizer -> RO ->
  //    domain adapters -> infrastructure).
  if (const auto id = s.service_layer->submit(request); !id.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 id.error().to_string().c_str());
    return 1;
  }

  // 4. Let the infrastructure finish (VM boot etc.) and roll statuses up.
  s.clock.run_until_idle();
  (void)s.ro->sync_statuses();
  const auto ready = s.service_layer->is_ready("demo");
  std::printf("service ready: %s (simulated time %.1f ms)\n",
              ready.ok() && *ready ? "yes" : "no",
              static_cast<double>(s.clock.now()) / 1000.0);

  // 5. Verify the data plane: inject a packet at sap1, follow the flow
  //    tables across all domains.
  const auto trace = service::end_to_end_trace(s, "sap1", "sap2");
  if (!trace.ok()) {
    std::fprintf(stderr, "packet trace failed: %s\n",
                 trace.error().to_string().c_str());
    return 1;
  }
  std::printf("\n== packet trace sap1 -> sap2 ==\n");
  for (const service::TraceStep& step : *trace) {
    std::printf("  %-14s %-16s -> %-16s (%zu switch hops, tag '%s')\n",
                step.domain.c_str(), step.ingress_endpoint.c_str(),
                step.egress_endpoint.c_str(), step.switch_hops,
                step.tag_out.c_str());
  }

  // 6. Where did everything land?
  std::printf("\n== placements ==\n");
  for (const auto& [bb_id, bb] : s.ro->global_view().bisbis()) {
    for (const auto& [nf_id, nf] : bb.nfs) {
      std::printf("  %-24s (%s) on %s [%s]\n", nf_id.c_str(),
                  nf.type.c_str(), bb_id.c_str(),
                  model::to_string(nf.status));
    }
  }
  std::printf("\nquickstart OK\n");
  return 0;
}
