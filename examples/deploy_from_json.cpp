// Deploy a service described as JSON on disk — how an external portal or
// CLI would talk to the service layer (the GUI of the paper, minus pixels).
//
// Run: ./deploy_from_json [request.json]
// Without an argument, uses examples/requests/parental_control.json
// relative to the working directory, falling back to a built-in document.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "service/fig1.h"
#include "sg/sg_json.h"
#include "viz/dot.h"

using namespace unify;

namespace {

const char* kFallbackRequest = R"({
  "id": "parental-control",
  "saps": [{"id": "sap1"}, {"id": "sap2"}],
  "nfs": [
    {"id": "fw", "type": "firewall"},
    {"id": "filter", "type": "parental-filter"}
  ],
  "links": [
    {"id": "c1", "from": "sap1:0", "to": "fw:0", "bandwidth": 25},
    {"id": "c2", "from": "fw:1", "to": "filter:0", "bandwidth": 25},
    {"id": "c3", "from": "filter:1", "to": "sap2:0", "bandwidth": 25}
  ],
  "constraints": [
    {"kind": "anti-affinity", "nf": "fw", "peer": "filter"}
  ],
  "requirements": [
    {"id": "e2e", "from": "sap1", "to": "sap2",
     "max_delay": 45, "min_bandwidth": 25}
  ]
})";

std::string load_request(int argc, char** argv) {
  const char* path =
      argc > 1 ? argv[1] : "examples/requests/parental_control.json";
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "note: %s not readable, using built-in request\n",
                 path);
    return kFallbackRequest;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string document = load_request(argc, argv);
  auto request = sg::sg_from_json_string(document);
  if (!request.ok()) {
    std::fprintf(stderr, "bad request document: %s\n",
                 request.error().to_string().c_str());
    return 1;
  }
  std::printf("== parsed request '%s' ==\n%s\n", request->id().c_str(),
              viz::to_dot(*request).c_str());

  auto stack = service::make_fig1_stack();
  if (!stack.ok()) {
    std::fprintf(stderr, "stack assembly failed\n");
    return 1;
  }
  service::Fig1Stack& s = **stack;
  const auto id = s.service_layer->submit(*request);
  if (!id.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 id.error().to_string().c_str());
    return 1;
  }
  s.clock.run_until_idle();
  (void)s.ro->sync_statuses();

  std::printf("deployed; placements:\n");
  for (const auto& [bb_id, bb] : s.ro->global_view().bisbis()) {
    for (const auto& [nf_id, nf] : bb.nfs) {
      std::printf("  %-32s on %-8s [%s]\n", nf_id.c_str(), bb_id.c_str(),
                  model::to_string(nf.status));
    }
  }
  const auto trace = service::end_to_end_trace(s, "sap1", "sap2");
  std::printf("packet trace sap1 -> sap2: %s\n",
              trace.ok() ? "delivered" : trace.error().to_string().c_str());
  if (!trace.ok()) return 1;
  std::printf("deploy_from_json OK\n");
  return 0;
}
