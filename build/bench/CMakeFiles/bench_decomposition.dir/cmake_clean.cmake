file(REMOVE_RECURSE
  "CMakeFiles/bench_decomposition.dir/bench_decomposition.cpp.o"
  "CMakeFiles/bench_decomposition.dir/bench_decomposition.cpp.o.d"
  "bench_decomposition"
  "bench_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
