file(REMOVE_RECURSE
  "CMakeFiles/bench_recursion.dir/bench_recursion.cpp.o"
  "CMakeFiles/bench_recursion.dir/bench_recursion.cpp.o.d"
  "bench_recursion"
  "bench_recursion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recursion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
