# Empty compiler generated dependencies file for bench_recursion.
# This may be replaced when dependencies are built.
