file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol.dir/bench_protocol.cpp.o"
  "CMakeFiles/bench_protocol.dir/bench_protocol.cpp.o.d"
  "bench_protocol"
  "bench_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
