# Empty dependencies file for bench_protocol.
# This may be replaced when dependencies are built.
