file(REMOVE_RECURSE
  "CMakeFiles/bench_deploy.dir/bench_deploy.cpp.o"
  "CMakeFiles/bench_deploy.dir/bench_deploy.cpp.o.d"
  "bench_deploy"
  "bench_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
