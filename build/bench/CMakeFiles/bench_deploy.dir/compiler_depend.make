# Empty compiler generated dependencies file for bench_deploy.
# This may be replaced when dependencies are built.
