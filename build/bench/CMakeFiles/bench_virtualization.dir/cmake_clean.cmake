file(REMOVE_RECURSE
  "CMakeFiles/bench_virtualization.dir/bench_virtualization.cpp.o"
  "CMakeFiles/bench_virtualization.dir/bench_virtualization.cpp.o.d"
  "bench_virtualization"
  "bench_virtualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
