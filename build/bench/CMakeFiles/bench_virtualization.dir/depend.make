# Empty dependencies file for bench_virtualization.
# This may be replaced when dependencies are built.
