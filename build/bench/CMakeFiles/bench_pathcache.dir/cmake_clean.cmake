file(REMOVE_RECURSE
  "CMakeFiles/bench_pathcache.dir/bench_pathcache.cpp.o"
  "CMakeFiles/bench_pathcache.dir/bench_pathcache.cpp.o.d"
  "bench_pathcache"
  "bench_pathcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pathcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
