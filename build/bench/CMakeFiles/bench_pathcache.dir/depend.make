# Empty dependencies file for bench_pathcache.
# This may be replaced when dependencies are built.
