file(REMOVE_RECURSE
  "CMakeFiles/bench_embedding.dir/bench_embedding.cpp.o"
  "CMakeFiles/bench_embedding.dir/bench_embedding.cpp.o.d"
  "bench_embedding"
  "bench_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
