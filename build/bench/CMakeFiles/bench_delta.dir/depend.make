# Empty dependencies file for bench_delta.
# This may be replaced when dependencies are built.
