file(REMOVE_RECURSE
  "CMakeFiles/bench_delta.dir/bench_delta.cpp.o"
  "CMakeFiles/bench_delta.dir/bench_delta.cpp.o.d"
  "bench_delta"
  "bench_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
