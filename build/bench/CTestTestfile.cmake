# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_virtualization_smoke "/root/repo/build/bench/bench_virtualization" "--benchmark_list_tests=true")
set_tests_properties(bench_virtualization_smoke PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;6;add_test;/root/repo/bench/CMakeLists.txt;10;unify_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_deploy_smoke "/root/repo/build/bench/bench_deploy" "--benchmark_list_tests=true")
set_tests_properties(bench_deploy_smoke PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;6;add_test;/root/repo/bench/CMakeLists.txt;11;unify_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_embedding_smoke "/root/repo/build/bench/bench_embedding" "--benchmark_list_tests=true")
set_tests_properties(bench_embedding_smoke PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;6;add_test;/root/repo/bench/CMakeLists.txt;12;unify_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_recursion_smoke "/root/repo/build/bench/bench_recursion" "--benchmark_list_tests=true")
set_tests_properties(bench_recursion_smoke PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;6;add_test;/root/repo/bench/CMakeLists.txt;13;unify_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_decomposition_smoke "/root/repo/build/bench/bench_decomposition" "--benchmark_list_tests=true")
set_tests_properties(bench_decomposition_smoke PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;6;add_test;/root/repo/bench/CMakeLists.txt;14;unify_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_protocol_smoke "/root/repo/build/bench/bench_protocol" "--benchmark_list_tests=true")
set_tests_properties(bench_protocol_smoke PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;6;add_test;/root/repo/bench/CMakeLists.txt;15;unify_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_delta_smoke "/root/repo/build/bench/bench_delta" "--benchmark_list_tests=true")
set_tests_properties(bench_delta_smoke PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;6;add_test;/root/repo/bench/CMakeLists.txt;16;unify_add_bench;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_pathcache_smoke "/root/repo/build/bench/bench_pathcache" "--benchmark_list_tests=true")
set_tests_properties(bench_pathcache_smoke PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;6;add_test;/root/repo/bench/CMakeLists.txt;17;unify_add_bench;/root/repo/bench/CMakeLists.txt;0;")
