# Empty dependencies file for concurrency_tests.
# This may be replaced when dependencies are built.
