file(REMOVE_RECURSE
  "CMakeFiles/concurrency_tests.dir/core/map_batch_test.cpp.o"
  "CMakeFiles/concurrency_tests.dir/core/map_batch_test.cpp.o.d"
  "CMakeFiles/concurrency_tests.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/concurrency_tests.dir/util/thread_pool_test.cpp.o.d"
  "concurrency_tests"
  "concurrency_tests.pdb"
  "concurrency_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
