
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/map_batch_test.cpp" "tests/CMakeFiles/concurrency_tests.dir/core/map_batch_test.cpp.o" "gcc" "tests/CMakeFiles/concurrency_tests.dir/core/map_batch_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/concurrency_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/concurrency_tests.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/unify_core.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/unify_service.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/unify_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/unify_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/adapters/CMakeFiles/unify_adapters.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/unify_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/unify_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/unify_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/unify_model.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/unify_json.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/unify_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unify_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
