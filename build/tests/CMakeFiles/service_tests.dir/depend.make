# Empty dependencies file for service_tests.
# This may be replaced when dependencies are built.
