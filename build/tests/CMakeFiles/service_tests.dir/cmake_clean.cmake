file(REMOVE_RECURSE
  "CMakeFiles/service_tests.dir/service/churn_test.cpp.o"
  "CMakeFiles/service_tests.dir/service/churn_test.cpp.o.d"
  "CMakeFiles/service_tests.dir/service/fig1_test.cpp.o"
  "CMakeFiles/service_tests.dir/service/fig1_test.cpp.o.d"
  "CMakeFiles/service_tests.dir/service/service_layer_test.cpp.o"
  "CMakeFiles/service_tests.dir/service/service_layer_test.cpp.o.d"
  "service_tests"
  "service_tests.pdb"
  "service_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
