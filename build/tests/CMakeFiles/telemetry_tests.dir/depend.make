# Empty dependencies file for telemetry_tests.
# This may be replaced when dependencies are built.
