file(REMOVE_RECURSE
  "CMakeFiles/telemetry_tests.dir/telemetry/metrics_test.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/metrics_test.cpp.o.d"
  "telemetry_tests"
  "telemetry_tests.pdb"
  "telemetry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
