
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/nffg_diff_test.cpp" "tests/CMakeFiles/model_tests.dir/model/nffg_diff_test.cpp.o" "gcc" "tests/CMakeFiles/model_tests.dir/model/nffg_diff_test.cpp.o.d"
  "/root/repo/tests/model/nffg_json_test.cpp" "tests/CMakeFiles/model_tests.dir/model/nffg_json_test.cpp.o" "gcc" "tests/CMakeFiles/model_tests.dir/model/nffg_json_test.cpp.o.d"
  "/root/repo/tests/model/nffg_merge_test.cpp" "tests/CMakeFiles/model_tests.dir/model/nffg_merge_test.cpp.o" "gcc" "tests/CMakeFiles/model_tests.dir/model/nffg_merge_test.cpp.o.d"
  "/root/repo/tests/model/nffg_property_test.cpp" "tests/CMakeFiles/model_tests.dir/model/nffg_property_test.cpp.o" "gcc" "tests/CMakeFiles/model_tests.dir/model/nffg_property_test.cpp.o.d"
  "/root/repo/tests/model/nffg_test.cpp" "tests/CMakeFiles/model_tests.dir/model/nffg_test.cpp.o" "gcc" "tests/CMakeFiles/model_tests.dir/model/nffg_test.cpp.o.d"
  "/root/repo/tests/model/topology_index_test.cpp" "tests/CMakeFiles/model_tests.dir/model/topology_index_test.cpp.o" "gcc" "tests/CMakeFiles/model_tests.dir/model/topology_index_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/unify_model.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/unify_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/unify_json.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/unify_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unify_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
