file(REMOVE_RECURSE
  "CMakeFiles/model_tests.dir/model/nffg_diff_test.cpp.o"
  "CMakeFiles/model_tests.dir/model/nffg_diff_test.cpp.o.d"
  "CMakeFiles/model_tests.dir/model/nffg_json_test.cpp.o"
  "CMakeFiles/model_tests.dir/model/nffg_json_test.cpp.o.d"
  "CMakeFiles/model_tests.dir/model/nffg_merge_test.cpp.o"
  "CMakeFiles/model_tests.dir/model/nffg_merge_test.cpp.o.d"
  "CMakeFiles/model_tests.dir/model/nffg_property_test.cpp.o"
  "CMakeFiles/model_tests.dir/model/nffg_property_test.cpp.o.d"
  "CMakeFiles/model_tests.dir/model/nffg_test.cpp.o"
  "CMakeFiles/model_tests.dir/model/nffg_test.cpp.o.d"
  "CMakeFiles/model_tests.dir/model/topology_index_test.cpp.o"
  "CMakeFiles/model_tests.dir/model/topology_index_test.cpp.o.d"
  "model_tests"
  "model_tests.pdb"
  "model_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
