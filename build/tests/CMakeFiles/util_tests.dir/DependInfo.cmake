
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/result_test.cpp" "tests/CMakeFiles/util_tests.dir/util/result_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/result_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/sim_clock_test.cpp" "tests/CMakeFiles/util_tests.dir/util/sim_clock_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/sim_clock_test.cpp.o.d"
  "/root/repo/tests/util/strings_test.cpp" "tests/CMakeFiles/util_tests.dir/util/strings_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/strings_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
