# Empty dependencies file for json_tests.
# This may be replaced when dependencies are built.
