file(REMOVE_RECURSE
  "CMakeFiles/json_tests.dir/json/json_property_test.cpp.o"
  "CMakeFiles/json_tests.dir/json/json_property_test.cpp.o.d"
  "CMakeFiles/json_tests.dir/json/json_test.cpp.o"
  "CMakeFiles/json_tests.dir/json/json_test.cpp.o.d"
  "json_tests"
  "json_tests.pdb"
  "json_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
