file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/config_translate_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/config_translate_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/orchestrator_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/orchestrator_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/resilience_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/resilience_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/unify_api_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/unify_api_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/virtualizer_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/virtualizer_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
