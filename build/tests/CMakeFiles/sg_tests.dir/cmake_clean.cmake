file(REMOVE_RECURSE
  "CMakeFiles/sg_tests.dir/sg/service_graph_test.cpp.o"
  "CMakeFiles/sg_tests.dir/sg/service_graph_test.cpp.o.d"
  "CMakeFiles/sg_tests.dir/sg/sg_json_test.cpp.o"
  "CMakeFiles/sg_tests.dir/sg/sg_json_test.cpp.o.d"
  "sg_tests"
  "sg_tests.pdb"
  "sg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
