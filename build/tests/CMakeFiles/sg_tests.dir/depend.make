# Empty dependencies file for sg_tests.
# This may be replaced when dependencies are built.
