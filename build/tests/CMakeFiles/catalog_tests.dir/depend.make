# Empty dependencies file for catalog_tests.
# This may be replaced when dependencies are built.
