file(REMOVE_RECURSE
  "CMakeFiles/catalog_tests.dir/catalog/catalog_test.cpp.o"
  "CMakeFiles/catalog_tests.dir/catalog/catalog_test.cpp.o.d"
  "catalog_tests"
  "catalog_tests.pdb"
  "catalog_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
