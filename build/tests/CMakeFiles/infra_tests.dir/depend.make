# Empty dependencies file for infra_tests.
# This may be replaced when dependencies are built.
