file(REMOVE_RECURSE
  "CMakeFiles/infra_tests.dir/infra/domains_test.cpp.o"
  "CMakeFiles/infra_tests.dir/infra/domains_test.cpp.o.d"
  "CMakeFiles/infra_tests.dir/infra/fabric_test.cpp.o"
  "CMakeFiles/infra_tests.dir/infra/fabric_test.cpp.o.d"
  "CMakeFiles/infra_tests.dir/infra/topologies_test.cpp.o"
  "CMakeFiles/infra_tests.dir/infra/topologies_test.cpp.o.d"
  "infra_tests"
  "infra_tests.pdb"
  "infra_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
