file(REMOVE_RECURSE
  "CMakeFiles/graph_tests.dir/graph/algorithms_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/algorithms_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/graph_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/graph_test.cpp.o.d"
  "graph_tests"
  "graph_tests.pdb"
  "graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
