# Empty dependencies file for viz_tests.
# This may be replaced when dependencies are built.
