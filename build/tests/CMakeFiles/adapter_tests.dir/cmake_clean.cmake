file(REMOVE_RECURSE
  "CMakeFiles/adapter_tests.dir/adapters/adapters_test.cpp.o"
  "CMakeFiles/adapter_tests.dir/adapters/adapters_test.cpp.o.d"
  "CMakeFiles/adapter_tests.dir/adapters/remote_sdn_test.cpp.o"
  "CMakeFiles/adapter_tests.dir/adapters/remote_sdn_test.cpp.o.d"
  "adapter_tests"
  "adapter_tests.pdb"
  "adapter_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapter_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
