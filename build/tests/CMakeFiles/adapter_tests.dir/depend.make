# Empty dependencies file for adapter_tests.
# This may be replaced when dependencies are built.
