# Empty dependencies file for proto_tests.
# This may be replaced when dependencies are built.
