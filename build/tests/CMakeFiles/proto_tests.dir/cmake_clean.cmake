file(REMOVE_RECURSE
  "CMakeFiles/proto_tests.dir/proto/channel_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/channel_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/framing_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/framing_test.cpp.o.d"
  "CMakeFiles/proto_tests.dir/proto/rpc_test.cpp.o"
  "CMakeFiles/proto_tests.dir/proto/rpc_test.cpp.o.d"
  "proto_tests"
  "proto_tests.pdb"
  "proto_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
