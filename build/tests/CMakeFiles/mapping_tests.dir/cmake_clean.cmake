file(REMOVE_RECURSE
  "CMakeFiles/mapping_tests.dir/mapping/extensions_test.cpp.o"
  "CMakeFiles/mapping_tests.dir/mapping/extensions_test.cpp.o.d"
  "CMakeFiles/mapping_tests.dir/mapping/mapping_property_test.cpp.o"
  "CMakeFiles/mapping_tests.dir/mapping/mapping_property_test.cpp.o.d"
  "CMakeFiles/mapping_tests.dir/mapping/mapping_test.cpp.o"
  "CMakeFiles/mapping_tests.dir/mapping/mapping_test.cpp.o.d"
  "CMakeFiles/mapping_tests.dir/mapping/path_cache_test.cpp.o"
  "CMakeFiles/mapping_tests.dir/mapping/path_cache_test.cpp.o.d"
  "mapping_tests"
  "mapping_tests.pdb"
  "mapping_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
