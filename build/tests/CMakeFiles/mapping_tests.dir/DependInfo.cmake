
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mapping/extensions_test.cpp" "tests/CMakeFiles/mapping_tests.dir/mapping/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/mapping_tests.dir/mapping/extensions_test.cpp.o.d"
  "/root/repo/tests/mapping/mapping_property_test.cpp" "tests/CMakeFiles/mapping_tests.dir/mapping/mapping_property_test.cpp.o" "gcc" "tests/CMakeFiles/mapping_tests.dir/mapping/mapping_property_test.cpp.o.d"
  "/root/repo/tests/mapping/mapping_test.cpp" "tests/CMakeFiles/mapping_tests.dir/mapping/mapping_test.cpp.o" "gcc" "tests/CMakeFiles/mapping_tests.dir/mapping/mapping_test.cpp.o.d"
  "/root/repo/tests/mapping/path_cache_test.cpp" "tests/CMakeFiles/mapping_tests.dir/mapping/path_cache_test.cpp.o" "gcc" "tests/CMakeFiles/mapping_tests.dir/mapping/path_cache_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapping/CMakeFiles/unify_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/unify_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/unify_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/unify_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/unify_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/unify_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/unify_json.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unify_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
