# Empty dependencies file for mapping_tests.
# This may be replaced when dependencies are built.
