# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/json_tests[1]_include.cmake")
include("/root/repo/build/tests/graph_tests[1]_include.cmake")
include("/root/repo/build/tests/model_tests[1]_include.cmake")
include("/root/repo/build/tests/sg_tests[1]_include.cmake")
include("/root/repo/build/tests/catalog_tests[1]_include.cmake")
include("/root/repo/build/tests/mapping_tests[1]_include.cmake")
include("/root/repo/build/tests/proto_tests[1]_include.cmake")
include("/root/repo/build/tests/infra_tests[1]_include.cmake")
include("/root/repo/build/tests/telemetry_tests[1]_include.cmake")
include("/root/repo/build/tests/adapter_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/service_tests[1]_include.cmake")
include("/root/repo/build/tests/viz_tests[1]_include.cmake")
include("/root/repo/build/tests/concurrency_tests[1]_include.cmake")
