# Empty dependencies file for unify_viz.
# This may be replaced when dependencies are built.
