file(REMOVE_RECURSE
  "CMakeFiles/unify_viz.dir/dot.cpp.o"
  "CMakeFiles/unify_viz.dir/dot.cpp.o.d"
  "libunify_viz.a"
  "libunify_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
