file(REMOVE_RECURSE
  "libunify_viz.a"
)
