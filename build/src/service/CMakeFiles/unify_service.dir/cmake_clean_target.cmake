file(REMOVE_RECURSE
  "libunify_service.a"
)
