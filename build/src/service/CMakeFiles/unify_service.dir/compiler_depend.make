# Empty compiler generated dependencies file for unify_service.
# This may be replaced when dependencies are built.
