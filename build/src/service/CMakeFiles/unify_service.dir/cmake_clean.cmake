file(REMOVE_RECURSE
  "CMakeFiles/unify_service.dir/fig1.cpp.o"
  "CMakeFiles/unify_service.dir/fig1.cpp.o.d"
  "CMakeFiles/unify_service.dir/service_layer.cpp.o"
  "CMakeFiles/unify_service.dir/service_layer.cpp.o.d"
  "libunify_service.a"
  "libunify_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
