# Empty dependencies file for unify_sg.
# This may be replaced when dependencies are built.
