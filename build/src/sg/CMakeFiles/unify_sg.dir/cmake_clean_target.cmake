file(REMOVE_RECURSE
  "libunify_sg.a"
)
