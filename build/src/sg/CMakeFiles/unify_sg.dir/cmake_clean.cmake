file(REMOVE_RECURSE
  "CMakeFiles/unify_sg.dir/service_graph.cpp.o"
  "CMakeFiles/unify_sg.dir/service_graph.cpp.o.d"
  "CMakeFiles/unify_sg.dir/sg_json.cpp.o"
  "CMakeFiles/unify_sg.dir/sg_json.cpp.o.d"
  "libunify_sg.a"
  "libunify_sg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_sg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
