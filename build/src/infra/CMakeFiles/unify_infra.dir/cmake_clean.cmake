file(REMOVE_RECURSE
  "CMakeFiles/unify_infra.dir/cloud.cpp.o"
  "CMakeFiles/unify_infra.dir/cloud.cpp.o.d"
  "CMakeFiles/unify_infra.dir/emu_network.cpp.o"
  "CMakeFiles/unify_infra.dir/emu_network.cpp.o.d"
  "CMakeFiles/unify_infra.dir/fabric.cpp.o"
  "CMakeFiles/unify_infra.dir/fabric.cpp.o.d"
  "CMakeFiles/unify_infra.dir/sdn_network.cpp.o"
  "CMakeFiles/unify_infra.dir/sdn_network.cpp.o.d"
  "CMakeFiles/unify_infra.dir/topologies.cpp.o"
  "CMakeFiles/unify_infra.dir/topologies.cpp.o.d"
  "CMakeFiles/unify_infra.dir/universal_node.cpp.o"
  "CMakeFiles/unify_infra.dir/universal_node.cpp.o.d"
  "libunify_infra.a"
  "libunify_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
