# Empty dependencies file for unify_infra.
# This may be replaced when dependencies are built.
