file(REMOVE_RECURSE
  "libunify_infra.a"
)
