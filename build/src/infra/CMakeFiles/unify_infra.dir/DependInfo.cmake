
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infra/cloud.cpp" "src/infra/CMakeFiles/unify_infra.dir/cloud.cpp.o" "gcc" "src/infra/CMakeFiles/unify_infra.dir/cloud.cpp.o.d"
  "/root/repo/src/infra/emu_network.cpp" "src/infra/CMakeFiles/unify_infra.dir/emu_network.cpp.o" "gcc" "src/infra/CMakeFiles/unify_infra.dir/emu_network.cpp.o.d"
  "/root/repo/src/infra/fabric.cpp" "src/infra/CMakeFiles/unify_infra.dir/fabric.cpp.o" "gcc" "src/infra/CMakeFiles/unify_infra.dir/fabric.cpp.o.d"
  "/root/repo/src/infra/sdn_network.cpp" "src/infra/CMakeFiles/unify_infra.dir/sdn_network.cpp.o" "gcc" "src/infra/CMakeFiles/unify_infra.dir/sdn_network.cpp.o.d"
  "/root/repo/src/infra/topologies.cpp" "src/infra/CMakeFiles/unify_infra.dir/topologies.cpp.o" "gcc" "src/infra/CMakeFiles/unify_infra.dir/topologies.cpp.o.d"
  "/root/repo/src/infra/universal_node.cpp" "src/infra/CMakeFiles/unify_infra.dir/universal_node.cpp.o" "gcc" "src/infra/CMakeFiles/unify_infra.dir/universal_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/unify_model.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unify_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/unify_json.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/unify_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
