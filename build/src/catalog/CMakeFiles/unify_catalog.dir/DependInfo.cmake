
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog_json.cpp" "src/catalog/CMakeFiles/unify_catalog.dir/catalog_json.cpp.o" "gcc" "src/catalog/CMakeFiles/unify_catalog.dir/catalog_json.cpp.o.d"
  "/root/repo/src/catalog/decomposition.cpp" "src/catalog/CMakeFiles/unify_catalog.dir/decomposition.cpp.o" "gcc" "src/catalog/CMakeFiles/unify_catalog.dir/decomposition.cpp.o.d"
  "/root/repo/src/catalog/nf_catalog.cpp" "src/catalog/CMakeFiles/unify_catalog.dir/nf_catalog.cpp.o" "gcc" "src/catalog/CMakeFiles/unify_catalog.dir/nf_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/unify_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/unify_model.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/unify_json.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/unify_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
