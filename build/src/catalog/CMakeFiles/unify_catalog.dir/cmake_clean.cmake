file(REMOVE_RECURSE
  "CMakeFiles/unify_catalog.dir/catalog_json.cpp.o"
  "CMakeFiles/unify_catalog.dir/catalog_json.cpp.o.d"
  "CMakeFiles/unify_catalog.dir/decomposition.cpp.o"
  "CMakeFiles/unify_catalog.dir/decomposition.cpp.o.d"
  "CMakeFiles/unify_catalog.dir/nf_catalog.cpp.o"
  "CMakeFiles/unify_catalog.dir/nf_catalog.cpp.o.d"
  "libunify_catalog.a"
  "libunify_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
