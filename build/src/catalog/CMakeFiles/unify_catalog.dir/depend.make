# Empty dependencies file for unify_catalog.
# This may be replaced when dependencies are built.
