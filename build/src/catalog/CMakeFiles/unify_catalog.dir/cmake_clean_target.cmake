file(REMOVE_RECURSE
  "libunify_catalog.a"
)
