# Empty compiler generated dependencies file for unify_util.
# This may be replaced when dependencies are built.
