file(REMOVE_RECURSE
  "CMakeFiles/unify_util.dir/log.cpp.o"
  "CMakeFiles/unify_util.dir/log.cpp.o.d"
  "CMakeFiles/unify_util.dir/sim_clock.cpp.o"
  "CMakeFiles/unify_util.dir/sim_clock.cpp.o.d"
  "CMakeFiles/unify_util.dir/strings.cpp.o"
  "CMakeFiles/unify_util.dir/strings.cpp.o.d"
  "libunify_util.a"
  "libunify_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
