file(REMOVE_RECURSE
  "libunify_util.a"
)
