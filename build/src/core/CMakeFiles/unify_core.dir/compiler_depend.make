# Empty compiler generated dependencies file for unify_core.
# This may be replaced when dependencies are built.
