file(REMOVE_RECURSE
  "libunify_core.a"
)
