file(REMOVE_RECURSE
  "CMakeFiles/unify_core.dir/config_translate.cpp.o"
  "CMakeFiles/unify_core.dir/config_translate.cpp.o.d"
  "CMakeFiles/unify_core.dir/pinned_mapper.cpp.o"
  "CMakeFiles/unify_core.dir/pinned_mapper.cpp.o.d"
  "CMakeFiles/unify_core.dir/resource_orchestrator.cpp.o"
  "CMakeFiles/unify_core.dir/resource_orchestrator.cpp.o.d"
  "CMakeFiles/unify_core.dir/unify_api.cpp.o"
  "CMakeFiles/unify_core.dir/unify_api.cpp.o.d"
  "CMakeFiles/unify_core.dir/virtualizer.cpp.o"
  "CMakeFiles/unify_core.dir/virtualizer.cpp.o.d"
  "libunify_core.a"
  "libunify_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
