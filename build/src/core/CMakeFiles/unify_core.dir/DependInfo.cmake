
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_translate.cpp" "src/core/CMakeFiles/unify_core.dir/config_translate.cpp.o" "gcc" "src/core/CMakeFiles/unify_core.dir/config_translate.cpp.o.d"
  "/root/repo/src/core/pinned_mapper.cpp" "src/core/CMakeFiles/unify_core.dir/pinned_mapper.cpp.o" "gcc" "src/core/CMakeFiles/unify_core.dir/pinned_mapper.cpp.o.d"
  "/root/repo/src/core/resource_orchestrator.cpp" "src/core/CMakeFiles/unify_core.dir/resource_orchestrator.cpp.o" "gcc" "src/core/CMakeFiles/unify_core.dir/resource_orchestrator.cpp.o.d"
  "/root/repo/src/core/unify_api.cpp" "src/core/CMakeFiles/unify_core.dir/unify_api.cpp.o" "gcc" "src/core/CMakeFiles/unify_core.dir/unify_api.cpp.o.d"
  "/root/repo/src/core/virtualizer.cpp" "src/core/CMakeFiles/unify_core.dir/virtualizer.cpp.o" "gcc" "src/core/CMakeFiles/unify_core.dir/virtualizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/unify_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/unify_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/unify_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/unify_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/adapters/CMakeFiles/unify_adapters.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/unify_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unify_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/unify_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/unify_json.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/unify_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
