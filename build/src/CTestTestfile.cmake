# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("json")
subdirs("graph")
subdirs("model")
subdirs("sg")
subdirs("catalog")
subdirs("mapping")
subdirs("proto")
subdirs("telemetry")
subdirs("infra")
subdirs("adapters")
subdirs("core")
subdirs("service")
subdirs("viz")
