# Empty compiler generated dependencies file for unify_graph.
# This may be replaced when dependencies are built.
