file(REMOVE_RECURSE
  "libunify_graph.a"
)
