file(REMOVE_RECURSE
  "CMakeFiles/unify_graph.dir/algorithms.cpp.o"
  "CMakeFiles/unify_graph.dir/algorithms.cpp.o.d"
  "libunify_graph.a"
  "libunify_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
