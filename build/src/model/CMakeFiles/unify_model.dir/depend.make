# Empty dependencies file for unify_model.
# This may be replaced when dependencies are built.
