
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/nffg.cpp" "src/model/CMakeFiles/unify_model.dir/nffg.cpp.o" "gcc" "src/model/CMakeFiles/unify_model.dir/nffg.cpp.o.d"
  "/root/repo/src/model/nffg_diff.cpp" "src/model/CMakeFiles/unify_model.dir/nffg_diff.cpp.o" "gcc" "src/model/CMakeFiles/unify_model.dir/nffg_diff.cpp.o.d"
  "/root/repo/src/model/nffg_json.cpp" "src/model/CMakeFiles/unify_model.dir/nffg_json.cpp.o" "gcc" "src/model/CMakeFiles/unify_model.dir/nffg_json.cpp.o.d"
  "/root/repo/src/model/nffg_merge.cpp" "src/model/CMakeFiles/unify_model.dir/nffg_merge.cpp.o" "gcc" "src/model/CMakeFiles/unify_model.dir/nffg_merge.cpp.o.d"
  "/root/repo/src/model/nffg_validate.cpp" "src/model/CMakeFiles/unify_model.dir/nffg_validate.cpp.o" "gcc" "src/model/CMakeFiles/unify_model.dir/nffg_validate.cpp.o.d"
  "/root/repo/src/model/topology_index.cpp" "src/model/CMakeFiles/unify_model.dir/topology_index.cpp.o" "gcc" "src/model/CMakeFiles/unify_model.dir/topology_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/unify_json.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/unify_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
