file(REMOVE_RECURSE
  "CMakeFiles/unify_model.dir/nffg.cpp.o"
  "CMakeFiles/unify_model.dir/nffg.cpp.o.d"
  "CMakeFiles/unify_model.dir/nffg_diff.cpp.o"
  "CMakeFiles/unify_model.dir/nffg_diff.cpp.o.d"
  "CMakeFiles/unify_model.dir/nffg_json.cpp.o"
  "CMakeFiles/unify_model.dir/nffg_json.cpp.o.d"
  "CMakeFiles/unify_model.dir/nffg_merge.cpp.o"
  "CMakeFiles/unify_model.dir/nffg_merge.cpp.o.d"
  "CMakeFiles/unify_model.dir/nffg_validate.cpp.o"
  "CMakeFiles/unify_model.dir/nffg_validate.cpp.o.d"
  "CMakeFiles/unify_model.dir/topology_index.cpp.o"
  "CMakeFiles/unify_model.dir/topology_index.cpp.o.d"
  "libunify_model.a"
  "libunify_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
