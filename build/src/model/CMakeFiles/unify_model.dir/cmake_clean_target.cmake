file(REMOVE_RECURSE
  "libunify_model.a"
)
