file(REMOVE_RECURSE
  "CMakeFiles/unify_mapping.dir/annealing_mapper.cpp.o"
  "CMakeFiles/unify_mapping.dir/annealing_mapper.cpp.o.d"
  "CMakeFiles/unify_mapping.dir/backtracking_mapper.cpp.o"
  "CMakeFiles/unify_mapping.dir/backtracking_mapper.cpp.o.d"
  "CMakeFiles/unify_mapping.dir/baseline_mappers.cpp.o"
  "CMakeFiles/unify_mapping.dir/baseline_mappers.cpp.o.d"
  "CMakeFiles/unify_mapping.dir/chain_dp_mapper.cpp.o"
  "CMakeFiles/unify_mapping.dir/chain_dp_mapper.cpp.o.d"
  "CMakeFiles/unify_mapping.dir/context.cpp.o"
  "CMakeFiles/unify_mapping.dir/context.cpp.o.d"
  "CMakeFiles/unify_mapping.dir/decomp_aware_mapper.cpp.o"
  "CMakeFiles/unify_mapping.dir/decomp_aware_mapper.cpp.o.d"
  "CMakeFiles/unify_mapping.dir/greedy_mapper.cpp.o"
  "CMakeFiles/unify_mapping.dir/greedy_mapper.cpp.o.d"
  "CMakeFiles/unify_mapping.dir/mapper.cpp.o"
  "CMakeFiles/unify_mapping.dir/mapper.cpp.o.d"
  "libunify_mapping.a"
  "libunify_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
