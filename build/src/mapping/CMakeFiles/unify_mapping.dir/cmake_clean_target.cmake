file(REMOVE_RECURSE
  "libunify_mapping.a"
)
