
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/annealing_mapper.cpp" "src/mapping/CMakeFiles/unify_mapping.dir/annealing_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/unify_mapping.dir/annealing_mapper.cpp.o.d"
  "/root/repo/src/mapping/backtracking_mapper.cpp" "src/mapping/CMakeFiles/unify_mapping.dir/backtracking_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/unify_mapping.dir/backtracking_mapper.cpp.o.d"
  "/root/repo/src/mapping/baseline_mappers.cpp" "src/mapping/CMakeFiles/unify_mapping.dir/baseline_mappers.cpp.o" "gcc" "src/mapping/CMakeFiles/unify_mapping.dir/baseline_mappers.cpp.o.d"
  "/root/repo/src/mapping/chain_dp_mapper.cpp" "src/mapping/CMakeFiles/unify_mapping.dir/chain_dp_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/unify_mapping.dir/chain_dp_mapper.cpp.o.d"
  "/root/repo/src/mapping/context.cpp" "src/mapping/CMakeFiles/unify_mapping.dir/context.cpp.o" "gcc" "src/mapping/CMakeFiles/unify_mapping.dir/context.cpp.o.d"
  "/root/repo/src/mapping/decomp_aware_mapper.cpp" "src/mapping/CMakeFiles/unify_mapping.dir/decomp_aware_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/unify_mapping.dir/decomp_aware_mapper.cpp.o.d"
  "/root/repo/src/mapping/greedy_mapper.cpp" "src/mapping/CMakeFiles/unify_mapping.dir/greedy_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/unify_mapping.dir/greedy_mapper.cpp.o.d"
  "/root/repo/src/mapping/mapper.cpp" "src/mapping/CMakeFiles/unify_mapping.dir/mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/unify_mapping.dir/mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/unify_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sg/CMakeFiles/unify_sg.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/unify_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/unify_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unify_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/unify_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
