# Empty dependencies file for unify_mapping.
# This may be replaced when dependencies are built.
