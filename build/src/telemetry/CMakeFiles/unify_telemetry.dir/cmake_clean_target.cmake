file(REMOVE_RECURSE
  "libunify_telemetry.a"
)
