# Empty dependencies file for unify_telemetry.
# This may be replaced when dependencies are built.
