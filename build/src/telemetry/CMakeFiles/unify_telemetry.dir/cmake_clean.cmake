file(REMOVE_RECURSE
  "CMakeFiles/unify_telemetry.dir/metrics.cpp.o"
  "CMakeFiles/unify_telemetry.dir/metrics.cpp.o.d"
  "libunify_telemetry.a"
  "libunify_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
