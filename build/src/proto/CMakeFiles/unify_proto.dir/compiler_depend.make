# Empty compiler generated dependencies file for unify_proto.
# This may be replaced when dependencies are built.
