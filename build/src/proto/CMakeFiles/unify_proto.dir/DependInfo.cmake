
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/channel.cpp" "src/proto/CMakeFiles/unify_proto.dir/channel.cpp.o" "gcc" "src/proto/CMakeFiles/unify_proto.dir/channel.cpp.o.d"
  "/root/repo/src/proto/framing.cpp" "src/proto/CMakeFiles/unify_proto.dir/framing.cpp.o" "gcc" "src/proto/CMakeFiles/unify_proto.dir/framing.cpp.o.d"
  "/root/repo/src/proto/openflow.cpp" "src/proto/CMakeFiles/unify_proto.dir/openflow.cpp.o" "gcc" "src/proto/CMakeFiles/unify_proto.dir/openflow.cpp.o.d"
  "/root/repo/src/proto/rpc.cpp" "src/proto/CMakeFiles/unify_proto.dir/rpc.cpp.o" "gcc" "src/proto/CMakeFiles/unify_proto.dir/rpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/unify_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/unify_json.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/unify_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/unify_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/unify_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/unify_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
