file(REMOVE_RECURSE
  "CMakeFiles/unify_proto.dir/channel.cpp.o"
  "CMakeFiles/unify_proto.dir/channel.cpp.o.d"
  "CMakeFiles/unify_proto.dir/framing.cpp.o"
  "CMakeFiles/unify_proto.dir/framing.cpp.o.d"
  "CMakeFiles/unify_proto.dir/openflow.cpp.o"
  "CMakeFiles/unify_proto.dir/openflow.cpp.o.d"
  "CMakeFiles/unify_proto.dir/rpc.cpp.o"
  "CMakeFiles/unify_proto.dir/rpc.cpp.o.d"
  "libunify_proto.a"
  "libunify_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
