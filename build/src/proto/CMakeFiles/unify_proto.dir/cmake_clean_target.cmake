file(REMOVE_RECURSE
  "libunify_proto.a"
)
