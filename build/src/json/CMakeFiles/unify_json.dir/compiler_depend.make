# Empty compiler generated dependencies file for unify_json.
# This may be replaced when dependencies are built.
