file(REMOVE_RECURSE
  "CMakeFiles/unify_json.dir/json.cpp.o"
  "CMakeFiles/unify_json.dir/json.cpp.o.d"
  "libunify_json.a"
  "libunify_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
