file(REMOVE_RECURSE
  "libunify_json.a"
)
