file(REMOVE_RECURSE
  "CMakeFiles/unify_adapters.dir/base_adapter.cpp.o"
  "CMakeFiles/unify_adapters.dir/base_adapter.cpp.o.d"
  "CMakeFiles/unify_adapters.dir/cloud_adapter.cpp.o"
  "CMakeFiles/unify_adapters.dir/cloud_adapter.cpp.o.d"
  "CMakeFiles/unify_adapters.dir/emu_adapter.cpp.o"
  "CMakeFiles/unify_adapters.dir/emu_adapter.cpp.o.d"
  "CMakeFiles/unify_adapters.dir/pox_controller.cpp.o"
  "CMakeFiles/unify_adapters.dir/pox_controller.cpp.o.d"
  "CMakeFiles/unify_adapters.dir/remote_sdn_adapter.cpp.o"
  "CMakeFiles/unify_adapters.dir/remote_sdn_adapter.cpp.o.d"
  "CMakeFiles/unify_adapters.dir/sdn_adapter.cpp.o"
  "CMakeFiles/unify_adapters.dir/sdn_adapter.cpp.o.d"
  "CMakeFiles/unify_adapters.dir/un_adapter.cpp.o"
  "CMakeFiles/unify_adapters.dir/un_adapter.cpp.o.d"
  "libunify_adapters.a"
  "libunify_adapters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unify_adapters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
