file(REMOVE_RECURSE
  "libunify_adapters.a"
)
