# Empty compiler generated dependencies file for unify_adapters.
# This may be replaced when dependencies are built.
