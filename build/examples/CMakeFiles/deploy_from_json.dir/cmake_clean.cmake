file(REMOVE_RECURSE
  "CMakeFiles/deploy_from_json.dir/deploy_from_json.cpp.o"
  "CMakeFiles/deploy_from_json.dir/deploy_from_json.cpp.o.d"
  "deploy_from_json"
  "deploy_from_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_from_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
