# Empty compiler generated dependencies file for deploy_from_json.
# This may be replaced when dependencies are built.
