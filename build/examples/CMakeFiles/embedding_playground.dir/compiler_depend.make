# Empty compiler generated dependencies file for embedding_playground.
# This may be replaced when dependencies are built.
