file(REMOVE_RECURSE
  "CMakeFiles/embedding_playground.dir/embedding_playground.cpp.o"
  "CMakeFiles/embedding_playground.dir/embedding_playground.cpp.o.d"
  "embedding_playground"
  "embedding_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
