# Empty dependencies file for recursive_decomposition.
# This may be replaced when dependencies are built.
