file(REMOVE_RECURSE
  "CMakeFiles/recursive_decomposition.dir/recursive_decomposition.cpp.o"
  "CMakeFiles/recursive_decomposition.dir/recursive_decomposition.cpp.o.d"
  "recursive_decomposition"
  "recursive_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
