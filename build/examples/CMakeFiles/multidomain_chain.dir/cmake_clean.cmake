file(REMOVE_RECURSE
  "CMakeFiles/multidomain_chain.dir/multidomain_chain.cpp.o"
  "CMakeFiles/multidomain_chain.dir/multidomain_chain.cpp.o.d"
  "multidomain_chain"
  "multidomain_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidomain_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
