# Empty compiler generated dependencies file for multidomain_chain.
# This may be replaced when dependencies are built.
