file(REMOVE_RECURSE
  "CMakeFiles/views_and_migration.dir/views_and_migration.cpp.o"
  "CMakeFiles/views_and_migration.dir/views_and_migration.cpp.o.d"
  "views_and_migration"
  "views_and_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/views_and_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
