# Empty compiler generated dependencies file for views_and_migration.
# This may be replaced when dependencies are built.
