// Length-prefixed message framing over the byte-stream channels.
//
// Wire format: 4-byte big-endian payload length, then the payload. The
// decoder is incremental — feed it arbitrary byte fragments and collect
// complete frames — because the simulated channels (like TCP) may split or
// coalesce writes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace unify::proto {

/// Frames larger than this are a protocol violation (64 MiB).
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/// Prepends the length header.
[[nodiscard]] std::string encode_frame(std::string_view payload);

class FrameDecoder {
 public:
  /// Consumes bytes; appends every completed payload to `out`. Returns a
  /// kProtocol error (and poisons the decoder) on an oversized frame.
  Result<void> feed(std::string_view bytes, std::vector<std::string>& out);

  /// Bytes buffered towards the next incomplete frame.
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size();
  }
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

}  // namespace unify::proto
