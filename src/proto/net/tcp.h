// Non-blocking TCP transport + listener over the epoll reactor.
//
// TcpTransport implements the transport concept (proto/transport.h) on a
// connected socket: edge-triggered reads drained until EAGAIN straight
// into the receive callback, writes buffered in a growable output buffer
// flushed opportunistically and on EPOLLOUT, graceful close that flushes
// queued bytes first. TcpListener accepts with a backlog and hands each
// connection out as a ready TcpTransport. The same length-prefixed framing
// and RpcPeer code that runs over the in-memory channels runs here
// unchanged — this is the real wire of the Unify interface.
//
// All objects belong to their reactor's execution domain; see reactor.h.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "proto/net/reactor.h"
#include "proto/transport.h"
#include "util/result.h"

namespace unify::proto::net {

class TcpTransport final : public Transport,
                           public std::enable_shared_from_this<TcpTransport> {
 public:
  /// Connects to host:port (blocking handshake — loopback/LAN use), then
  /// switches the socket non-blocking and registers it with the reactor.
  /// `host` is an IPv4/IPv6 literal or a hostname (getaddrinfo); resolver
  /// candidates are tried in order with address-family fallback.
  static Result<std::shared_ptr<TcpTransport>> connect(
      Reactor& reactor, const std::string& host, std::uint16_t port);

  /// Wraps an already-connected socket (the listener's accept path). Takes
  /// ownership of `fd`.
  static std::shared_ptr<TcpTransport> adopt(Reactor& reactor, int fd);

  ~TcpTransport() override;

  Result<void> send(std::string bytes) override;
  void on_receive(ReceiveFn fn) override;
  void on_close(CloseFn fn) override;
  /// Flushes queued outbound bytes as the socket drains, then closes; an
  /// empty output buffer closes immediately.
  void disconnect() override;
  [[nodiscard]] bool connected() const noexcept override {
    return fd_ >= 0 && !closing_;
  }
  [[nodiscard]] const TransportCounters& counters() const noexcept override {
    return counters_;
  }
  [[nodiscard]] Driver& driver() noexcept override { return *reactor_; }

  /// "127.0.0.1:47112" of the remote end, for logs.
  [[nodiscard]] const std::string& peer_name() const noexcept {
    return peer_name_;
  }

 private:
  explicit TcpTransport(Reactor& reactor, int fd);
  void register_with_reactor();
  void handle_events(std::uint32_t events);
  void drain_read();
  void flush_write();
  void close_now();

  Reactor* reactor_;
  int fd_ = -1;
  std::string peer_name_;
  ReceiveFn receive_;
  CloseFn close_;
  std::string backlog_;   // received before on_receive installed
  std::string out_;       // unsent bytes; head offset avoids O(n²) erases
  std::size_t out_head_ = 0;
  bool closing_ = false;  // graceful close requested, flushing remainder
  TransportCounters counters_;
};

class TcpListener {
 public:
  using AcceptFn = std::function<void(std::shared_ptr<TcpTransport>)>;

  /// Binds host:port (port 0 picks an ephemeral one — see port()) and
  /// accepts with the given backlog; each connection arrives at `fn`
  /// already registered with the reactor. `host` may be an IPv4/IPv6
  /// literal or a hostname; the first resolver candidate is bound.
  static Result<std::unique_ptr<TcpListener>> listen(
      Reactor& reactor, const std::string& host, std::uint16_t port,
      AcceptFn fn, int backlog = 128);

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }

 private:
  TcpListener(Reactor& reactor, int fd, std::uint16_t port, AcceptFn fn);
  void handle_readable();

  Reactor* reactor_;
  int fd_;
  std::uint16_t port_;
  AcceptFn accept_;
  std::uint64_t accepted_ = 0;
};

}  // namespace unify::proto::net
