#include "proto/net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/log.h"

namespace unify::proto::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Compact the output buffer once the consumed prefix crosses this.
constexpr std::size_t kCompactThreshold = 64 * 1024;

Result<void> set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Error{ErrorCode::kInternal,
                 std::string("fcntl(O_NONBLOCK) failed: ") +
                     std::strerror(errno)};
  }
  return Result<void>::success();
}

void set_nodelay(int fd) {
  // Framed request/response traffic: Nagle only adds latency.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::string peer_name_of(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "?";
  }
  char ip[INET6_ADDRSTRLEN] = {};
  if (addr.ss_family == AF_INET6) {
    const auto* v6 = reinterpret_cast<const sockaddr_in6*>(&addr);
    ::inet_ntop(AF_INET6, &v6->sin6_addr, ip, sizeof(ip));
    return "[" + std::string(ip) + "]:" + std::to_string(ntohs(v6->sin6_port));
  }
  const auto* v4 = reinterpret_cast<const sockaddr_in*>(&addr);
  ::inet_ntop(AF_INET, &v4->sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(v4->sin_port));
}

/// One resolved candidate address (getaddrinfo order: v6 and v4 literals
/// resolve to themselves; hostnames may yield several families to try).
struct ResolvedAddr {
  sockaddr_storage addr{};
  socklen_t len = 0;
  int family = AF_UNSPEC;
};

/// Resolves literals (v4 and v6) and hostnames alike. `passive` asks for
/// bindable addresses (AI_PASSIVE wildcard for ""/"*").
Result<std::vector<ResolvedAddr>> resolve(const std::string& host,
                                          std::uint16_t port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  // Numeric-host fast path first: literals must never block on a resolver.
  hints.ai_flags = AI_NUMERICHOST | AI_NUMERICSERV |
                   (passive ? AI_PASSIVE : 0);
  const std::string service = std::to_string(port);
  addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                         service.c_str(), &hints, &results);
  if (rc == EAI_NONAME && !host.empty()) {
    hints.ai_flags &= ~AI_NUMERICHOST;  // a real hostname: resolve it
    rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  }
  if (rc != 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "cannot resolve " + host + ": " + ::gai_strerror(rc)};
  }
  std::vector<ResolvedAddr> out;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family != AF_INET && ai->ai_family != AF_INET6) continue;
    ResolvedAddr resolved;
    std::memcpy(&resolved.addr, ai->ai_addr, ai->ai_addrlen);
    resolved.len = static_cast<socklen_t>(ai->ai_addrlen);
    resolved.family = ai->ai_family;
    out.push_back(resolved);
  }
  ::freeaddrinfo(results);
  if (out.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "no usable address for " + host};
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- transport

TcpTransport::TcpTransport(Reactor& reactor, int fd)
    : reactor_(&reactor), fd_(fd), peer_name_(peer_name_of(fd)) {}

Result<std::shared_ptr<TcpTransport>> TcpTransport::connect(
    Reactor& reactor, const std::string& host, std::uint16_t port) {
  // getaddrinfo handles v4 literals, v6 literals and hostnames uniformly;
  // candidates are tried in resolver order with address-family fallback
  // (e.g. `localhost` resolving to ::1 first falls back to 127.0.0.1 when
  // the listener is v4-only).
  UNIFY_ASSIGN_OR_RETURN(const std::vector<ResolvedAddr> candidates,
                         resolve(host, port, /*passive=*/false));
  Error last{ErrorCode::kUnavailable, "no candidate address"};
  for (const ResolvedAddr& candidate : candidates) {
    const int fd = ::socket(candidate.family, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      last = Error{ErrorCode::kInternal,
                   std::string("socket() failed: ") + std::strerror(errno)};
      continue;
    }
    // Blocking handshake (loopback/LAN: instantaneous), non-blocking after.
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&candidate.addr),
                  candidate.len) != 0) {
      const int err = errno;
      ::close(fd);
      last = Error{ErrorCode::kUnavailable,
                   "connect to " + host + ":" + std::to_string(port) +
                       " failed: " + std::strerror(err)};
      continue;
    }
    if (const auto nb = set_nonblocking(fd); !nb.ok()) {
      ::close(fd);
      return nb.error();
    }
    set_nodelay(fd);
    auto transport =
        std::shared_ptr<TcpTransport>(new TcpTransport(reactor, fd));
    transport->register_with_reactor();
    return transport;
  }
  return last;
}

std::shared_ptr<TcpTransport> TcpTransport::adopt(Reactor& reactor, int fd) {
  (void)set_nonblocking(fd);
  set_nodelay(fd);
  auto transport = std::shared_ptr<TcpTransport>(new TcpTransport(reactor, fd));
  transport->register_with_reactor();
  return transport;
}

TcpTransport::~TcpTransport() {
  // Silent teardown: the owner is discarding the transport, so the close
  // callback (targeting the owner) must not fire.
  close_ = nullptr;
  close_now();
}

void TcpTransport::register_with_reactor() {
  const auto added = reactor_->add_fd(
      fd_, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
      [weak = weak_from_this()](std::uint32_t events) {
        if (auto self = weak.lock()) self->handle_events(events);
      });
  if (!added.ok()) {
    UNIFY_LOG(kError, "proto.net")
        << "register " << peer_name_ << ": " << added.error().to_string();
    ::close(fd_);
    fd_ = -1;
  }
}

Result<void> TcpTransport::send(std::string bytes) {
  if (!connected()) {
    return Error{ErrorCode::kUnavailable,
                 "tcp transport to " + peer_name_ + " disconnected"};
  }
  if (bytes.empty()) return Result<void>::success();
  counters_.messages_sent++;
  counters_.bytes_sent += bytes.size();
  if (out_head_ == out_.size()) {
    out_.clear();
    out_head_ = 0;
  }
  out_.append(bytes);
  flush_write();
  if (fd_ < 0) {
    return Error{ErrorCode::kUnavailable,
                 "tcp transport to " + peer_name_ + " reset mid-send"};
  }
  return Result<void>::success();
}

void TcpTransport::on_receive(ReceiveFn fn) {
  receive_ = std::move(fn);
  if (receive_ && !backlog_.empty()) {
    std::string pending;
    pending.swap(backlog_);
    receive_(pending);
  }
}

void TcpTransport::on_close(CloseFn fn) { close_ = std::move(fn); }

void TcpTransport::disconnect() {
  if (fd_ < 0 || closing_) return;
  if (out_head_ == out_.size()) {
    close_now();
    return;
  }
  closing_ = true;  // flush_write closes once the tail drains
}

void TcpTransport::handle_events(std::uint32_t events) {
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
    drain_read();
  }
  if (fd_ >= 0 && (events & EPOLLOUT)) {
    flush_write();
  }
}

void TcpTransport::drain_read() {
  // Edge-triggered: must drain until EAGAIN or the edge is lost.
  char chunk[kReadChunk];
  while (fd_ >= 0) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      counters_.messages_received++;
      counters_.bytes_received += static_cast<std::uint64_t>(n);
      const std::string_view bytes(chunk, static_cast<std::size_t>(n));
      if (receive_) {
        receive_(bytes);
      } else {
        backlog_.append(bytes);
      }
      continue;
    }
    if (n == 0) {  // orderly remote close
      close_now();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    UNIFY_LOG(kWarn, "proto.net")
        << "read from " << peer_name_ << " failed: " << std::strerror(errno);
    close_now();
    return;
  }
}

void TcpTransport::flush_write() {
  while (fd_ >= 0 && out_head_ < out_.size()) {
    const ssize_t n =
        ::write(fd_, out_.data() + out_head_, out_.size() - out_head_);
    if (n > 0) {
      out_head_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // EPOLLOUT fires when the socket drains (we just armed the edge).
      break;
    }
    if (errno == EINTR) continue;
    UNIFY_LOG(kWarn, "proto.net")
        << "write to " << peer_name_ << " failed: " << std::strerror(errno);
    close_now();
    return;
  }
  if (out_head_ == out_.size()) {
    out_.clear();
    out_head_ = 0;
    if (closing_) close_now();
  } else if (out_head_ >= kCompactThreshold) {
    out_.erase(0, out_head_);
    out_head_ = 0;
  }
}

void TcpTransport::close_now() {
  if (fd_ < 0) return;
  reactor_->del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  closing_ = false;
  if (close_) {
    // Steal the callback first: it may destroy this transport.
    CloseFn fn;
    fn.swap(close_);
    fn();
  }
}

// ----------------------------------------------------------------- listener

TcpListener::TcpListener(Reactor& reactor, int fd, std::uint16_t port,
                         AcceptFn fn)
    : reactor_(&reactor), fd_(fd), port_(port), accept_(std::move(fn)) {}

Result<std::unique_ptr<TcpListener>> TcpListener::listen(
    Reactor& reactor, const std::string& host, std::uint16_t port,
    AcceptFn fn, int backlog) {
  UNIFY_ASSIGN_OR_RETURN(const std::vector<ResolvedAddr> candidates,
                         resolve(host, port, /*passive=*/true));
  const ResolvedAddr& bound = candidates.front();
  const int fd = ::socket(bound.family,
                          SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Error{ErrorCode::kInternal,
                 std::string("socket() failed: ") + std::strerror(errno)};
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&bound.addr), bound.len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Error{ErrorCode::kUnavailable,
                 "bind " + host + ":" + std::to_string(port) +
                     " failed: " + std::strerror(err)};
  }
  sockaddr_storage local{};
  socklen_t len = sizeof(local);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&local), &len);
  const std::uint16_t bound_port =
      local.ss_family == AF_INET6
          ? ntohs(reinterpret_cast<const sockaddr_in6*>(&local)->sin6_port)
          : ntohs(reinterpret_cast<const sockaddr_in*>(&local)->sin_port);
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return Error{ErrorCode::kInternal,
                 std::string("listen() failed: ") + std::strerror(err)};
  }
  auto listener = std::unique_ptr<TcpListener>(
      new TcpListener(reactor, fd, bound_port, std::move(fn)));
  UNIFY_RETURN_IF_ERROR(reactor.add_fd(
      fd, EPOLLIN | EPOLLET,
      [raw = listener.get()](std::uint32_t) { raw->handle_readable(); }));
  return listener;
}

TcpListener::~TcpListener() {
  reactor_->del_fd(fd_);
  ::close(fd_);
}

void TcpListener::handle_readable() {
  // Edge-triggered: accept until EAGAIN so a burst of connections behind
  // one edge is fully drained.
  while (true) {
    const int fd = ::accept4(fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      UNIFY_LOG(kWarn, "proto.net")
          << "accept on :" << port_ << " failed: " << std::strerror(errno);
      return;
    }
    ++accepted_;
    accept_(TcpTransport::adopt(*reactor_, fd));
  }
}

}  // namespace unify::proto::net
