#include "proto/net/reactor.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/log.h"

namespace unify::proto::net {

namespace {
/// Upper bound on one blocking poll so pump() loops stay responsive even
/// when no timer is armed.
constexpr int kMaxBlockMs = 100;
constexpr int kMaxEventsPerPoll = 64;
}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    UNIFY_LOG(kError, "proto.net")
        << "epoll_create1 failed: " << std::strerror(errno);
  }
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::schedule(SimTime delay_us, std::function<void()> fn) {
  if (delay_us < 0) delay_us = 0;
  timers_.push(Timer{Clock::now() + std::chrono::microseconds(delay_us),
                     next_seq_++, std::move(fn)});
}

bool Reactor::pump() {
  if (handlers_.empty() && timers_.empty()) return false;
  poll(kMaxBlockMs);
  return true;
}

int Reactor::timeout_until_next_timer(int timeout_ms) const {
  if (timers_.empty()) return timeout_ms;
  const auto delta = timers_.top().deadline - Clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(delta).count();
  // Round up so a 0.4 ms deadline does not busy-spin at timeout 0.
  int until = ms <= 0 ? 0 : static_cast<int>(ms) + 1;
  if (timeout_ms < 0) return until;
  return until < timeout_ms ? until : timeout_ms;
}

int Reactor::poll(int timeout_ms) {
  int dispatched = 0;
  if (epoll_fd_ >= 0) {
    // With an empty interest set epoll_wait degrades to a plain bounded
    // sleep, which is exactly what a timers-only reactor needs.
    epoll_event events[kMaxEventsPerPoll];
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEventsPerPoll,
                               timeout_until_next_timer(timeout_ms));
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // deregistered mid-dispatch
      const auto handler = it->second;      // keep alive across the call
      (*handler)(events[i].events);
      ++dispatched;
    }
  }
  fire_due_timers();
  return dispatched;
}

void Reactor::fire_due_timers() {
  const auto now = Clock::now();
  // Timers scheduled while firing run in a later batch, exactly like
  // SimClock's semantics for zero-delay reschedules.
  std::vector<std::function<void()>> due;
  while (!timers_.empty() && timers_.top().deadline <= now) {
    due.push_back(std::move(const_cast<Timer&>(timers_.top()).fn));
    timers_.pop();
  }
  for (auto& fn : due) fn();
}

Result<void> Reactor::add_fd(int fd, std::uint32_t events, IoFn fn) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Error{ErrorCode::kInternal,
                 std::string("epoll_ctl(ADD) failed: ") +
                     std::strerror(errno)};
  }
  handlers_[fd] = std::make_shared<IoFn>(std::move(fn));
  return Result<void>::success();
}

Result<void> Reactor::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Error{ErrorCode::kInternal,
                 std::string("epoll_ctl(MOD) failed: ") +
                     std::strerror(errno)};
  }
  return Result<void>::success();
}

void Reactor::del_fd(int fd) {
  if (handlers_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

}  // namespace unify::proto::net
