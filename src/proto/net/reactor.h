// Single-threaded epoll reactor: the real-socket Driver (DESIGN.md §13).
//
// Owns one epoll instance plus a monotonic-clock timer heap and dispatches
// both from poll(). Everything registered with a reactor — listeners,
// connections, timers — runs on whichever thread calls poll()/pump();
// that thread is the reactor's execution domain (exclusion_key() == this),
// and no reactor object is safe to touch from outside it.
//
// Registration is edge-triggered where the owner asks for it (the TCP
// transport does): callbacks must drain until EAGAIN. Callbacks may
// deregister any fd — including their own — mid-dispatch; the reactor
// defers teardown safely.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "proto/transport.h"
#include "util/result.h"

namespace unify::proto::net {

class Reactor final : public Driver {
 public:
  /// Fired with the epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using IoFn = std::function<void(std::uint32_t events)>;

  Reactor();
  ~Reactor() override;
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Driver:
  void schedule(SimTime delay_us, std::function<void()> fn) override;
  /// One poll() bounded by the next timer deadline (capped at 100 ms).
  /// Returns false iff no fds are registered and no timers are pending.
  bool pump() override;
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return this;
  }

  /// Waits up to `timeout_ms` for I/O (-1 = until the next timer or event,
  /// 0 = non-blocking), dispatches ready fds, then fires due timers.
  /// Returns the number of I/O events dispatched.
  int poll(int timeout_ms);

  /// Registers `fd` for `events` (caller picks EPOLLET). One handler per
  /// fd; the reactor never owns the fd.
  Result<void> add_fd(int fd, std::uint32_t events, IoFn fn);
  Result<void> mod_fd(int fd, std::uint32_t events);
  /// Safe to call from inside the fd's own callback.
  void del_fd(int fd);

  [[nodiscard]] std::size_t watched_fds() const noexcept {
    return handlers_.size();
  }
  [[nodiscard]] std::size_t pending_timers() const noexcept {
    return timers_.size();
  }

 private:
  using Clock = std::chrono::steady_clock;
  struct Timer {
    Clock::time_point deadline;
    std::uint64_t seq;  // FIFO among equal deadlines
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Timer& a, const Timer& b) const noexcept {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void fire_due_timers();
  [[nodiscard]] int timeout_until_next_timer(int timeout_ms) const;

  int epoll_fd_ = -1;
  // shared_ptr so a handler erased mid-dispatch stays alive for the frame
  // that is invoking it.
  std::unordered_map<int, std::shared_ptr<IoFn>> handlers_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Timer, std::vector<Timer>, Later> timers_;
};

}  // namespace unify::proto::net
