// Survivable control-plane session: RpcPeer + auto-reconnect + heartbeat.
//
// The paper's Unify interface runs over long-lived NETCONF/OpenFlow-style
// sessions, and the recursive architecture only works if a parent RO
// tolerates a child domain's control channel flapping. A bare RpcPeer dies
// with its transport; ResilientSession owns the peer *and* the policy that
// brings it back (DESIGN.md §14):
//
//   - Disconnect detection: the transport close fails every in-flight call
//     with kUnavailable — never a silent retry, because edit-config is not
//     idempotent from the wire's point of view. Callers see a transient
//     kUnavailable and their own retry/dirty-tracking machinery (push
//     retries + epoch/nffg_hash resync) makes the re-push cheap and exact.
//   - Reconnect: capped exponential backoff with deterministic seeded
//     jitter through a TransportFactory, scheduled on the session's
//     Driver. Handlers are re-installed on the fresh peer; counters
//     aggregate across incarnations.
//   - Heartbeat: driver-scheduled keepalive pings on idle sessions. Every
//     missed ping (and every disconnect / failed connect) is reported
//     through the liveness hook; a miss-threshold trip force-closes the
//     transport so the reconnect path takes over. Wired to a
//     HealthManager, a silently partitioned domain trips its breaker in
//     O(heartbeat interval) instead of O(push deadline).
//
// Threading: like everything over a transport, a session belongs to its
// driver's single-threaded execution domain.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "proto/rpc.h"
#include "proto/transport.h"
#include "util/rng.h"

namespace unify::proto {

struct ReconnectPolicy {
  bool enabled = true;
  /// Consecutive failed connect attempts before the session gives up
  /// permanently (gave_up()); 0 = keep trying forever.
  int max_attempts = 0;
  SimTime backoff_initial_us = 10'000;
  double backoff_multiplier = 2.0;
  SimTime backoff_cap_us = 1'000'000;
  /// Fraction of each backoff delay added as uniform jitter (decorrelates
  /// reconnect storms when many sessions lose one peer together).
  double jitter = 0.2;
  /// Seed of the jitter draw — deterministic like every schedule here.
  std::uint64_t jitter_seed = 0x5eedu;
};

struct HeartbeatPolicy {
  /// Keepalive period on an idle session; 0 disables the heartbeat.
  SimTime interval_us = 0;
  /// Per-ping deadline; 0 = one interval.
  SimTime timeout_us = 0;
  /// Consecutive missed pings that declare the peer dead (the transport is
  /// force-closed and the reconnect path takes over).
  int miss_threshold = 3;
};

struct SessionOptions {
  ReconnectPolicy reconnect;
  HeartbeatPolicy heartbeat;
};

/// Production defaults for sessions on a real wire (unify_rod and every
/// TCP client riding the reactor): reconnect enabled with the standard
/// capped backoff, plus a 1 s heartbeat with a 3-miss threshold so a
/// silently partitioned peer trips liveness in seconds instead of waiting
/// out a push deadline. Simulated/in-process tests arm their own policies
/// explicitly (a heartbeat on a loopback pair is just noise).
[[nodiscard]] SessionOptions wire_session_options() noexcept;

class ResilientSession {
 public:
  /// Produces a fresh connected transport on the session's driver. Called
  /// once per (re)connect attempt; a failure counts towards max_attempts.
  using TransportFactory =
      std::function<Result<std::shared_ptr<Transport>>()>;
  /// Liveness evidence stream: success() for a (re)connect or a heartbeat
  /// ack that cleared misses, an error for every disconnect, failed
  /// connect attempt and missed ping. Feed it to
  /// ResourceOrchestrator::note_domain_liveness to drive the breaker.
  using LivenessFn = std::function<void(const Result<void>&)>;

  /// Connects through `factory` immediately (unless `initial` supplies the
  /// first transport); a failed first attempt enters the backoff loop like
  /// any later one. `driver` is the timer home for backoff and heartbeat
  /// and must be the driver of every transport the factory produces.
  ResilientSession(std::string name, Driver& driver, TransportFactory factory,
                   SessionOptions options = {},
                   std::shared_ptr<Transport> initial = nullptr);
  ~ResilientSession();
  ResilientSession(const ResilientSession&) = delete;
  ResilientSession& operator=(const ResilientSession&) = delete;

  /// Handler registration; stored and re-installed on every reconnect.
  void on_request(std::string method, RpcPeer::Handler handler);
  void on_notification(std::string method,
                       RpcPeer::NotificationHandler handler);
  void on_liveness(LivenessFn fn) { liveness_ = std::move(fn); }

  /// RpcPeer::call while connected; fails fast with kUnavailable while the
  /// session is between transports (callers retry on their own schedule —
  /// a resilient session never replays a request itself).
  Result<void> call(std::string method, json::Value params,
                    RpcPeer::ResponseFn done, SimTime timeout_us = 0);
  Result<json::Value> call_and_wait(std::string method, json::Value params,
                                    SimTime timeout_us = 0);
  Result<void> notify(std::string method, json::Value params);

  [[nodiscard]] bool connected() const noexcept;
  /// True once max_attempts consecutive connect failures exhausted the
  /// reconnect budget: the session is permanently dead.
  [[nodiscard]] bool gave_up() const noexcept { return gave_up_; }
  /// The live peer, or nullptr between transports.
  [[nodiscard]] RpcPeer* peer() noexcept { return peer_.get(); }
  [[nodiscard]] const RpcPeer* peer() const noexcept { return peer_.get(); }
  [[nodiscard]] Driver& driver() noexcept { return *driver_; }

  /// Aggregated over every transport incarnation of this session.
  [[nodiscard]] const TransportCounters& counters() const noexcept;

  [[nodiscard]] std::uint64_t disconnects() const noexcept {
    return disconnects_;
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }
  [[nodiscard]] std::uint64_t connect_failures() const noexcept {
    return connect_failures_;
  }
  [[nodiscard]] std::uint64_t heartbeats_sent() const noexcept {
    return heartbeats_sent_;
  }
  [[nodiscard]] std::uint64_t heartbeat_misses() const noexcept {
    return heartbeat_misses_;
  }

 private:
  void adopt(std::shared_ptr<Transport> transport);
  /// Folds the dying peer's counters and destroys it. Safe only outside
  /// the peer's own callbacks (disconnects defer here via the driver).
  void discard_peer();
  void handle_disconnected();
  void schedule_reconnect();
  void attempt_connect();
  [[nodiscard]] SimTime next_backoff_delay();
  void schedule_heartbeat();
  void heartbeat_tick();
  void report(const Result<void>& evidence);

  std::string name_;
  Driver* driver_;
  TransportFactory factory_;
  SessionOptions options_;
  std::unique_ptr<RpcPeer> peer_;
  std::map<std::string, RpcPeer::Handler> handlers_;
  std::map<std::string, RpcPeer::NotificationHandler> notification_handlers_;
  LivenessFn liveness_;
  Rng jitter_rng_;
  /// Deferred-teardown / timer guard: timers and callbacks hold a weak ref
  /// and go inert once the session is destroyed.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  bool reconnect_pending_ = false;
  bool gave_up_ = false;
  int failed_attempts_ = 0;  ///< consecutive, reset by any success

  bool heartbeat_armed_ = false;
  bool ping_in_flight_ = false;
  int misses_ = 0;
  std::uint64_t idle_watermark_ = 0;  ///< bytes_received at the last tick

  /// Counters of completed transport incarnations; counters() adds the
  /// live peer's on top.
  TransportCounters folded_counters_;
  mutable TransportCounters counters_scratch_;

  std::uint64_t disconnects_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t connect_failures_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t heartbeat_misses_ = 0;
};

}  // namespace unify::proto
