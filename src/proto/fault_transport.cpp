#include "proto/fault_transport.h"

#include <utility>

namespace unify::proto {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kReset: return "reset";
    case FaultKind::kBlackhole: return "blackhole";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kCorrupt: return "corrupt";
  }
  return "?";
}

FaultKind FaultInjector::next_fault() {
  // One uniform draw per send, partitioned by the cumulative rates, keeps
  // the schedule a pure function of the draw index.
  const double u = rng_.next_double();
  double edge = profile_.reset_rate;
  FaultKind kind = FaultKind::kNone;
  if (u < edge) {
    kind = FaultKind::kReset;
  } else if (u < (edge += profile_.blackhole_rate)) {
    kind = FaultKind::kBlackhole;
  } else if (u < (edge += profile_.truncate_rate)) {
    kind = FaultKind::kTruncate;
  } else if (u < (edge += profile_.corrupt_rate)) {
    kind = FaultKind::kCorrupt;
  }
  schedule_.push_back(kind);
  if (kind != FaultKind::kNone) ++faults_injected_;
  return kind;
}

SimTime FaultInjector::next_delay() {
  SimTime delay = profile_.latency_us;
  if (profile_.jitter_us > 0) {
    delay += static_cast<SimTime>(rng_.next_below(
        static_cast<std::uint64_t>(profile_.jitter_us) + 1));
  }
  return delay;
}

std::size_t FaultInjector::next_offset(std::size_t size) {
  if (size == 0) return 0;
  return static_cast<std::size_t>(rng_.next_below(size));
}

std::shared_ptr<FaultTransport> FaultTransport::wrap(
    std::shared_ptr<Transport> inner, std::shared_ptr<FaultInjector> injector) {
  return std::shared_ptr<FaultTransport>(
      new FaultTransport(std::move(inner), std::move(injector)));
}

Result<void> FaultTransport::send(std::string bytes) {
  if (!inner_->connected()) {
    return Error{ErrorCode::kUnavailable, "fault transport disconnected"};
  }
  if (bytes.empty()) return inner_->send(std::move(bytes));

  switch (injector_->next_fault()) {
    case FaultKind::kReset:
      // RST-style: the frame dies with the connection, nothing flushes —
      // including sends still waiting in the delay queue.
      delayed_.clear();
      inner_->disconnect();
      return Error{ErrorCode::kUnavailable, "injected connection reset"};
    case FaultKind::kBlackhole:
      // Half-open partition: the caller believes the send worked.
      return Result<void>::success();
    case FaultKind::kTruncate: {
      // A strict prefix escapes, then the connection resets. The peer's
      // decoder is left holding a dangling partial frame.
      // The prefix bypasses the delay queue: it must be on the wire before
      // the disconnect so the graceful close flushes it to the peer. Any
      // still-delayed earlier sends flush first to keep the stream ordered.
      for (; !delayed_.empty(); delayed_.pop_front()) {
        (void)inner_->send(std::move(delayed_.front()));
      }
      const std::size_t cut = injector_->next_offset(bytes.size());
      if (cut > 0) (void)inner_->send(bytes.substr(0, cut));
      inner_->disconnect();
      return Error{ErrorCode::kUnavailable, "injected mid-frame truncation"};
    }
    case FaultKind::kCorrupt: {
      bytes[injector_->next_offset(bytes.size())] ^= 0x20;
      deliver(std::move(bytes));
      return Result<void>::success();
    }
    case FaultKind::kNone:
      break;
  }
  deliver(std::move(bytes));
  return Result<void>::success();
}

void FaultTransport::deliver(std::string bytes) {
  const SimTime delay = injector_->next_delay();
  if (delay <= 0 && delayed_.empty()) {
    (void)inner_->send(std::move(bytes));
    return;
  }
  // Delayed sends ride the driver so simulated and wall time both work.
  // Each timer releases the *oldest* queued send, never the one it was
  // armed for: two jitter draws may fire out of order, but the bytes still
  // leave in send order — the wire stays an ordered stream, jitter only
  // reshuffles the delays. An undelayed send behind a delayed one queues
  // too, for the same reason. The weak self keeps a torn-down session
  // from resurrecting the wire.
  delayed_.push_back(std::move(bytes));
  driver().schedule(delay, [weak = weak_from_this()] {
    auto self = weak.lock();
    if (self == nullptr || self->delayed_.empty()) return;
    std::string next = std::move(self->delayed_.front());
    self->delayed_.pop_front();
    (void)self->inner_->send(std::move(next));
  });
}

}  // namespace unify::proto
