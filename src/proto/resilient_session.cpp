#include "proto/resilient_session.h"

#include <algorithm>
#include <utility>

#include "util/log.h"

namespace unify::proto {

SessionOptions wire_session_options() noexcept {
  SessionOptions options;
  options.heartbeat.interval_us = 1'000'000;
  options.heartbeat.timeout_us = 0;  // one interval per ping
  options.heartbeat.miss_threshold = 3;
  return options;  // reconnect: the ReconnectPolicy defaults (enabled)
}

ResilientSession::ResilientSession(std::string name, Driver& driver,
                                   TransportFactory factory,
                                   SessionOptions options,
                                   std::shared_ptr<Transport> initial)
    : name_(std::move(name)),
      driver_(&driver),
      factory_(std::move(factory)),
      options_(options),
      jitter_rng_(options.reconnect.jitter_seed) {
  if (initial != nullptr) {
    adopt(std::move(initial));
  } else if (factory_) {
    attempt_connect();
  } else {
    gave_up_ = true;  // nothing to connect with, ever
  }
}

ResilientSession::~ResilientSession() {
  alive_.reset();  // timers and response callbacks go inert
  peer_.reset();
}

void ResilientSession::on_request(std::string method,
                                  RpcPeer::Handler handler) {
  if (peer_ != nullptr) peer_->on_request(method, handler);
  handlers_[std::move(method)] = std::move(handler);
}

void ResilientSession::on_notification(std::string method,
                                       RpcPeer::NotificationHandler handler) {
  if (peer_ != nullptr) peer_->on_notification(method, handler);
  notification_handlers_[std::move(method)] = std::move(handler);
}

Result<void> ResilientSession::call(std::string method, json::Value params,
                                    RpcPeer::ResponseFn done,
                                    SimTime timeout_us) {
  if (peer_ == nullptr) {
    return Error{ErrorCode::kUnavailable,
                 "session " + name_ +
                     (gave_up_ ? " gave up reconnecting" : " reconnecting")};
  }
  return peer_->call(std::move(method), std::move(params), std::move(done),
                     timeout_us);
}

Result<json::Value> ResilientSession::call_and_wait(std::string method,
                                                    json::Value params,
                                                    SimTime timeout_us) {
  if (peer_ == nullptr) {
    return Error{ErrorCode::kUnavailable,
                 "session " + name_ +
                     (gave_up_ ? " gave up reconnecting" : " reconnecting")};
  }
  return peer_->call_and_wait(std::move(method), std::move(params),
                              timeout_us);
}

Result<void> ResilientSession::notify(std::string method, json::Value params) {
  if (peer_ == nullptr) {
    return Error{ErrorCode::kUnavailable, "session " + name_ + " down"};
  }
  return peer_->notify(std::move(method), std::move(params));
}

bool ResilientSession::connected() const noexcept {
  return peer_ != nullptr && peer_->transport().connected();
}

const TransportCounters& ResilientSession::counters() const noexcept {
  counters_scratch_ = folded_counters_;
  if (peer_ != nullptr) {
    const TransportCounters& live = peer_->counters();
    counters_scratch_.messages_sent += live.messages_sent;
    counters_scratch_.bytes_sent += live.bytes_sent;
    counters_scratch_.messages_received += live.messages_received;
    counters_scratch_.bytes_received += live.bytes_received;
  }
  return counters_scratch_;
}

void ResilientSession::adopt(std::shared_ptr<Transport> transport) {
  peer_ = std::make_unique<RpcPeer>(std::move(transport), name_);
  for (const auto& [method, handler] : handlers_) {
    peer_->on_request(method, handler);
  }
  for (const auto& [method, handler] : notification_handlers_) {
    peer_->on_notification(method, handler);
  }
  // The disconnect hook runs inside the transport's close callback with
  // the peer mid-teardown; the session reacts one driver tick later, when
  // destroying the peer is safe.
  peer_->on_disconnect([this, weak = std::weak_ptr<char>(alive_)] {
    driver_->schedule(0, [this, weak] {
      if (!weak.expired()) handle_disconnected();
    });
  });
  failed_attempts_ = 0;
  misses_ = 0;
  ping_in_flight_ = false;
  idle_watermark_ = 0;
  schedule_heartbeat();
}

void ResilientSession::discard_peer() {
  if (peer_ == nullptr) return;
  const TransportCounters& dead = peer_->counters();
  folded_counters_.messages_sent += dead.messages_sent;
  folded_counters_.bytes_sent += dead.bytes_sent;
  folded_counters_.messages_received += dead.messages_received;
  folded_counters_.bytes_received += dead.bytes_received;
  peer_.reset();
}

void ResilientSession::handle_disconnected() {
  if (peer_ == nullptr || peer_->transport().connected()) {
    return;  // already handled, or a stale deferred hook
  }
  ++disconnects_;
  discard_peer();
  report(Error{ErrorCode::kUnavailable, "session " + name_ + " lost"});
  schedule_reconnect();
}

void ResilientSession::schedule_reconnect() {
  const ReconnectPolicy& policy = options_.reconnect;
  if (!policy.enabled || !factory_ || gave_up_ || reconnect_pending_) {
    if (!policy.enabled || !factory_) gave_up_ = true;
    return;
  }
  if (policy.max_attempts > 0 && failed_attempts_ >= policy.max_attempts) {
    gave_up_ = true;
    UNIFY_LOG(kWarn, "proto.session")
        << name_ << ": gave up after " << failed_attempts_
        << " connect attempts";
    return;
  }
  reconnect_pending_ = true;
  driver_->schedule(next_backoff_delay(),
                    [this, weak = std::weak_ptr<char>(alive_)] {
                      if (weak.expired()) return;
                      reconnect_pending_ = false;
                      attempt_connect();
                    });
}

void ResilientSession::attempt_connect() {
  auto transport = factory_();
  if (!transport.ok()) {
    ++connect_failures_;
    ++failed_attempts_;
    report(transport.error());
    schedule_reconnect();
    return;
  }
  if (disconnects_ + connect_failures_ > 0) ++reconnects_;
  adopt(std::move(*transport));
  report(Result<void>::success());
}

SimTime ResilientSession::next_backoff_delay() {
  const ReconnectPolicy& policy = options_.reconnect;
  // failed_attempts_ == 0 (a lost established session) and == 1 (first
  // retry) both wait the initial delay; growth starts at the second retry.
  SimTime delay = policy.backoff_initial_us;
  for (int i = 1; i < failed_attempts_ && delay < policy.backoff_cap_us;
       ++i) {
    delay = static_cast<SimTime>(static_cast<double>(delay) *
                                 policy.backoff_multiplier);
  }
  delay = std::min(delay, policy.backoff_cap_us);
  if (policy.jitter > 0) {
    const auto span = static_cast<std::uint64_t>(
        policy.jitter * static_cast<double>(delay));
    if (span > 0) {
      delay += static_cast<SimTime>(jitter_rng_.next_below(span + 1));
    }
  }
  return delay;
}

void ResilientSession::schedule_heartbeat() {
  const HeartbeatPolicy& policy = options_.heartbeat;
  if (policy.interval_us <= 0 || heartbeat_armed_) return;
  heartbeat_armed_ = true;
  driver_->schedule(policy.interval_us,
                    [this, weak = std::weak_ptr<char>(alive_)] {
                      if (weak.expired()) return;
                      heartbeat_armed_ = false;
                      heartbeat_tick();
                    });
}

void ResilientSession::heartbeat_tick() {
  if (peer_ == nullptr || !peer_->transport().connected()) {
    return;  // the reconnect path re-arms the heartbeat on adopt()
  }
  schedule_heartbeat();
  // Idle detection: inbound bytes since the last tick prove the peer is
  // alive — no ping needed, and any pending miss streak is stale.
  const std::uint64_t seen = peer_->counters().bytes_received;
  if (seen != idle_watermark_) {
    idle_watermark_ = seen;
    misses_ = 0;
    return;
  }
  if (ping_in_flight_) return;  // one probe at a time
  const HeartbeatPolicy& policy = options_.heartbeat;
  const SimTime timeout =
      policy.timeout_us > 0 ? policy.timeout_us : policy.interval_us;
  ++heartbeats_sent_;
  ping_in_flight_ = true;
  const auto sent = peer_->call(
      "ping", json::Value{json::Object{}},
      [this, weak = std::weak_ptr<char>(alive_)](Result<json::Value> reply) {
        if (weak.expired()) return;
        ping_in_flight_ = false;
        if (reply.ok()) {
          const bool recovered = misses_ > 0;
          misses_ = 0;
          if (recovered) report(Result<void>::success());
          return;
        }
        ++heartbeat_misses_;
        ++misses_;
        report(Error{ErrorCode::kUnavailable,
                     "session " + name_ + " missed heartbeat " +
                         std::to_string(misses_) + ": " +
                         reply.error().message});
        if (misses_ >= options_.heartbeat.miss_threshold &&
            peer_ != nullptr) {
          // The peer is silently gone (half-open partition): force the
          // close so the reconnect machinery takes over.
          UNIFY_LOG(kWarn, "proto.session")
              << name_ << ": " << misses_
              << " heartbeats missed, declaring peer dead";
          peer_->transport().disconnect();
        }
      },
      timeout);
  if (!sent.ok()) {
    // Send failure == the transport just died; the close path handles it.
    ping_in_flight_ = false;
  }
}

void ResilientSession::report(const Result<void>& evidence) {
  if (liveness_) liveness_(evidence);
}

}  // namespace unify::proto
