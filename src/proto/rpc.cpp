#include "proto/rpc.h"

#include "util/log.h"

namespace unify::proto {

namespace {

json::Value error_to_json(const Error& error) {
  json::Object o;
  o.set("code", to_string(error.code));
  o.set("message", error.message);
  return json::Value{std::move(o)};
}

Error error_from_json(const json::Value& v) {
  Error e;
  e.message = v.get_string("message");
  const std::string code = v.get_string("code", "internal");
  for (const ErrorCode c :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kAlreadyExists, ErrorCode::kResourceExhausted,
        ErrorCode::kInfeasible, ErrorCode::kUnavailable, ErrorCode::kProtocol,
        ErrorCode::kRejected, ErrorCode::kTimeout, ErrorCode::kInternal}) {
    if (code == to_string(c)) {
      e.code = c;
      break;
    }
  }
  return e;
}

}  // namespace

RpcPeer::RpcPeer(std::shared_ptr<Endpoint> endpoint, SimClock& clock,
                 std::string name)
    : endpoint_(std::move(endpoint)), clock_(&clock), name_(std::move(name)) {
  endpoint_->on_receive(
      [this](std::string_view bytes) { handle_bytes(bytes); });
}

RpcPeer::~RpcPeer() {
  // Stop callbacks into a dead object; in-flight frames will be buffered by
  // the endpoint and dropped with it.
  endpoint_->on_receive(nullptr);
}

void RpcPeer::on_request(std::string method, Handler handler) {
  handlers_[std::move(method)] = std::move(handler);
}

void RpcPeer::on_notification(std::string method,
                              NotificationHandler handler) {
  notification_handlers_[std::move(method)] = std::move(handler);
}

void RpcPeer::call(std::string method, json::Value params, ResponseFn done,
                   SimTime timeout_us) {
  const std::int64_t id = next_id_++;
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  pending_.emplace(id, pending);

  json::Object msg;
  msg.set("id", id);
  msg.set("method", std::move(method));
  msg.set("params", std::move(params));
  send_json(json::Value{std::move(msg)});

  if (timeout_us > 0) {
    clock_->schedule_in(timeout_us, [this, id, pending] {
      if (pending->responded) return;
      pending->responded = true;
      pending_.erase(id);
      pending->done(Error{ErrorCode::kTimeout,
                          "rpc " + std::to_string(id) + " timed out"});
    });
  }
}

void RpcPeer::notify(std::string method, json::Value params) {
  json::Object msg;
  msg.set("method", std::move(method));
  msg.set("params", std::move(params));
  send_json(json::Value{std::move(msg)});
}

Result<json::Value> RpcPeer::call_and_wait(std::string method,
                                           json::Value params,
                                           SimTime timeout_us) {
  std::optional<Result<json::Value>> slot;
  call(std::move(method), std::move(params),
       [&slot](Result<json::Value> result) { slot = std::move(result); },
       timeout_us);
  // Single-threaded simulation: drain timers until the response fires.
  while (!slot.has_value() && clock_->pending_timers() > 0) {
    clock_->run_until_idle();
  }
  if (!slot.has_value()) {
    return Error{ErrorCode::kUnavailable,
                 "no response and no pending timers (peer gone?)"};
  }
  return std::move(*slot);
}

void RpcPeer::send_json(const json::Value& msg) {
  endpoint_->send(encode_frame(msg.dump()));
}

void RpcPeer::handle_bytes(std::string_view bytes) {
  std::vector<std::string> frames;
  if (const auto fed = decoder_.feed(bytes, frames); !fed.ok()) {
    UNIFY_LOG(kError, "proto.rpc")
        << name_ << ": framing error: " << fed.error().to_string();
    return;
  }
  for (const std::string& frame : frames) {
    const auto parsed = json::parse(frame);
    if (!parsed.ok()) {
      UNIFY_LOG(kError, "proto.rpc")
          << name_ << ": bad JSON frame: " << parsed.error().to_string();
      continue;
    }
    handle_message(*parsed);
  }
}

void RpcPeer::handle_message(const json::Value& msg) {
  const json::Value* id = msg.get("id");
  const json::Value* method = msg.get("method");

  if (method != nullptr && method->is_string()) {
    const std::string& name = method->as_string();
    const json::Value* params = msg.get("params");
    static const json::Value kNull;
    const json::Value& p = params != nullptr ? *params : kNull;

    if (id == nullptr) {  // notification
      const auto it = notification_handlers_.find(name);
      if (it != notification_handlers_.end()) it->second(p);
      return;
    }
    ++requests_handled_;
    json::Object reply;
    reply.set("id", *id);
    const auto it = handlers_.find(name);
    if (it == handlers_.end()) {
      reply.set("error", error_to_json(Error{ErrorCode::kNotFound,
                                             "no method " + name}));
    } else {
      auto result = it->second(p);
      if (result.ok()) {
        reply.set("result", std::move(result).value());
      } else {
        reply.set("error", error_to_json(result.error()));
      }
    }
    send_json(json::Value{std::move(reply)});
    return;
  }

  if (id != nullptr && id->is_number()) {  // response
    const auto it = pending_.find(id->as_int());
    if (it == pending_.end()) return;  // late response after timeout
    auto pending = it->second;
    pending_.erase(it);
    if (pending->responded) return;
    pending->responded = true;
    if (const json::Value* error = msg.get("error")) {
      pending->done(error_from_json(*error));
    } else if (const json::Value* result = msg.get("result")) {
      pending->done(*result);
    } else {
      pending->done(Error{ErrorCode::kProtocol,
                          "response carries neither result nor error"});
    }
    return;
  }
  UNIFY_LOG(kWarn, "proto.rpc") << name_ << ": unclassifiable message";
}

}  // namespace unify::proto
