#include "proto/rpc.h"

#include "util/log.h"

namespace unify::proto {

namespace {

json::Value error_to_json(const Error& error) {
  json::Object o;
  o.set("code", to_string(error.code));
  o.set("message", error.message);
  return json::Value{std::move(o)};
}

Error error_from_json(const json::Value& v) {
  Error e;
  e.message = v.get_string("message");
  const std::string code = v.get_string("code", "internal");
  for (const ErrorCode c :
       {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
        ErrorCode::kAlreadyExists, ErrorCode::kResourceExhausted,
        ErrorCode::kInfeasible, ErrorCode::kUnavailable, ErrorCode::kProtocol,
        ErrorCode::kRejected, ErrorCode::kTimeout, ErrorCode::kInternal}) {
    if (code == to_string(c)) {
      e.code = c;
      break;
    }
  }
  return e;
}

}  // namespace

RpcPeer::RpcPeer(std::shared_ptr<Transport> transport, std::string name)
    : transport_(std::move(transport)), name_(std::move(name)) {
  transport_->on_receive(
      [this](std::string_view bytes) { handle_bytes(bytes); });
  transport_->on_close([this] { handle_closed(); });
}

RpcPeer::~RpcPeer() {
  // Stop callbacks into a dead object; in-flight frames will be buffered by
  // the transport and dropped with it.
  transport_->on_receive(nullptr);
  transport_->on_close(nullptr);
}

void RpcPeer::on_request(std::string method, Handler handler) {
  handlers_[std::move(method)] = std::move(handler);
}

void RpcPeer::on_notification(std::string method,
                              NotificationHandler handler) {
  notification_handlers_[std::move(method)] = std::move(handler);
}

void RpcPeer::on_disconnect(std::function<void()> fn) {
  disconnect_hook_ = std::move(fn);
}

Result<void> RpcPeer::call(std::string method, json::Value params,
                           ResponseFn done, SimTime timeout_us) {
  const std::int64_t id = next_id_++;
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  pending_.emplace(id, pending);

  json::Object msg;
  msg.set("id", id);
  msg.set("method", std::move(method));
  msg.set("params", std::move(params));
  if (const auto sent = send_json(json::Value{std::move(msg)}); !sent.ok()) {
    // Exactly-once outcome delivery: if this very send closed the transport
    // (e.g. a connection reset surfaced mid-write), handle_closed() already
    // failed the call through `done` — report success so the caller does
    // not count the same failure twice.
    if (pending->responded) return Result<void>::success();
    pending_.erase(id);
    return sent.error();
  }

  if (timeout_us > 0) {
    // The deadline timer may outlive this peer (the driver is shared);
    // the weak Pending keeps it from touching a dead object.
    driver().schedule(
        timeout_us,
        [this, id, weak = std::weak_ptr<Pending>(pending)] {
          auto alive = weak.lock();
          if (alive == nullptr || alive->responded) return;
          alive->responded = true;
          pending_.erase(id);
          alive->done(Error{ErrorCode::kTimeout,
                            "rpc " + std::to_string(id) + " timed out"});
        });
  }
  return Result<void>::success();
}

Result<void> RpcPeer::notify(std::string method, json::Value params) {
  json::Object msg;
  msg.set("method", std::move(method));
  msg.set("params", std::move(params));
  return send_json(json::Value{std::move(msg)});
}

Result<json::Value> RpcPeer::call_and_wait(std::string method,
                                           json::Value params,
                                           SimTime timeout_us) {
  std::optional<Result<json::Value>> slot;
  UNIFY_RETURN_IF_ERROR(call(
      std::move(method), std::move(params),
      [&slot](Result<json::Value> result) { slot = std::move(result); },
      timeout_us));
  // Pump the driver (simulated timers or the epoll reactor) until the
  // response, the timeout, or a dead-idle driver.
  while (!slot.has_value() && driver().pump()) {
  }
  if (!slot.has_value()) {
    return Error{ErrorCode::kUnavailable,
                 "driver idle with call still open (peer gone?)"};
  }
  return std::move(*slot);
}

Result<void> RpcPeer::send_json(const json::Value& msg) {
  return transport_->send(encode_frame(msg.dump()));
}

void RpcPeer::handle_bytes(std::string_view bytes) {
  std::vector<std::string> frames;
  if (const auto fed = decoder_.feed(bytes, frames); !fed.ok()) {
    // Byte-stream sync is lost: the only honest recovery is to drop the
    // connection (pending calls fail via the close callback).
    UNIFY_LOG(kError, "proto.rpc")
        << name_ << ": framing error, disconnecting: "
        << fed.error().to_string();
    ++protocol_errors_;
    transport_->disconnect();
    return;
  }
  for (const std::string& frame : frames) {
    const auto parsed = json::parse(frame);
    if (!parsed.ok()) {
      UNIFY_LOG(kError, "proto.rpc")
          << name_ << ": bad JSON frame: " << parsed.error().to_string();
      ++protocol_errors_;
      continue;
    }
    handle_message(*parsed);
  }
}

void RpcPeer::handle_message(const json::Value& msg) {
  if (!msg.is_object()) {
    UNIFY_LOG(kWarn, "proto.rpc") << name_ << ": non-object message frame";
    ++protocol_errors_;
    return;
  }
  const json::Value* id = msg.get("id");
  const json::Value* method = msg.get("method");

  if (method != nullptr) {
    if (!method->is_string()) {
      ++protocol_errors_;
      if (id != nullptr && id->is_number()) {
        // Answer so a confused-but-listening caller is not left hanging.
        json::Object reply;
        reply.set("id", *id);
        reply.set("error", error_to_json(Error{ErrorCode::kProtocol,
                                               "method must be a string"}));
        (void)send_json(json::Value{std::move(reply)});
      }
      return;
    }
    const std::string& name = method->as_string();
    const json::Value* params = msg.get("params");
    static const json::Value kNull;
    const json::Value& p = params != nullptr ? *params : kNull;

    if (id == nullptr) {  // notification
      const auto it = notification_handlers_.find(name);
      if (it != notification_handlers_.end()) it->second(p);
      return;
    }
    ++requests_handled_;
    json::Object reply;
    reply.set("id", *id);
    const auto it = handlers_.find(name);
    if (it == handlers_.end()) {
      if (name == "ping") {
        // Built-in liveness probe: every peer is heartbeat-able without
        // registering anything (a real handler above takes precedence).
        reply.set("result", json::Value{json::Object{}});
        (void)send_json(json::Value{std::move(reply)});
        return;
      }
      reply.set("error", error_to_json(Error{ErrorCode::kNotFound,
                                             "no method " + name}));
    } else {
      auto result = it->second(p);
      if (result.ok()) {
        reply.set("result", std::move(result).value());
      } else {
        reply.set("error", error_to_json(result.error()));
      }
    }
    if (const auto sent = send_json(json::Value{std::move(reply)});
        !sent.ok()) {
      UNIFY_LOG(kWarn, "proto.rpc")
          << name_ << ": reply dropped: " << sent.error().to_string();
    }
    return;
  }

  if (id != nullptr && id->is_number()) {  // response
    const auto it = pending_.find(id->as_int());
    if (it == pending_.end()) {
      // Duplicate response id, or a late response after the deadline
      // already failed the call — either way there is nothing to complete.
      UNIFY_LOG(kWarn, "proto.rpc")
          << name_ << ": response for unknown rpc id " << id->as_int();
      ++protocol_errors_;
      return;
    }
    auto pending = it->second;
    pending_.erase(it);
    if (pending->responded) return;
    pending->responded = true;
    if (const json::Value* error = msg.get("error")) {
      pending->done(error_from_json(*error));
    } else if (const json::Value* result = msg.get("result")) {
      pending->done(*result);
    } else {
      pending->done(Error{ErrorCode::kProtocol,
                          "response carries neither result nor error"});
    }
    return;
  }
  UNIFY_LOG(kWarn, "proto.rpc") << name_ << ": unclassifiable message";
  ++protocol_errors_;
}

void RpcPeer::handle_closed() {
  // Fail every pending call exactly once; done callbacks may issue new
  // work, so detach the map first.
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [id, entry] : pending) {
    if (entry->responded) continue;
    entry->responded = true;
    entry->done(Error{ErrorCode::kUnavailable,
                      "transport closed with rpc " + std::to_string(id) +
                          " in flight"});
  }
  if (disconnect_hook_) disconnect_hook_();
}

}  // namespace unify::proto
