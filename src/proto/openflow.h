// OpenFlow-style controller messages (JSON-encoded) for the legacy SDN
// domain: flow-mods and topology discovery, the two primitives the paper's
// POX controller provides to its adapter module.
//
// This is not wire-accurate OpenFlow 1.x; it models the same operations at
// message granularity so the control channel (framing, RPC, latency) is
// exercised end to end.
#pragma once

#include <string>

#include "infra/fabric.h"
#include "json/json.h"
#include "util/result.h"

namespace unify::proto::openflow {

enum class FlowModCommand { kAdd, kDelete };

struct FlowMod {
  std::string dpid;  ///< switch id
  FlowModCommand command = FlowModCommand::kAdd;
  infra::FlowEntry entry;  ///< entry.id doubles as the cookie
};

[[nodiscard]] json::Value to_json(const FlowMod& msg);
[[nodiscard]] Result<FlowMod> flow_mod_from_json(const json::Value& value);

/// Methods exposed by a PoxController over the RPC channel.
inline constexpr const char* kFlowModMethod = "of.flow_mod";
inline constexpr const char* kTopologyMethod = "of.topology";

}  // namespace unify::proto::openflow
