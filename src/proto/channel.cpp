#include "proto/channel.h"

#include <utility>

namespace unify::proto {

void Endpoint::send(std::string bytes) {
  auto peer = peer_weak_.lock();
  if (peer == nullptr || bytes.empty()) return;
  counters_.messages_sent++;
  counters_.bytes_sent += bytes.size();
  const auto schedule = [this, &peer](std::string data) {
    clock_->schedule_in(latency_us_,
                        [weak = peer_weak_, data = std::move(data)] {
                          if (auto p = weak.lock()) p->deliver(data);
                        });
  };
  if (chunk_size_ == 0 || bytes.size() <= chunk_size_) {
    schedule(std::move(bytes));
    return;
  }
  for (std::size_t off = 0; off < bytes.size(); off += chunk_size_) {
    schedule(bytes.substr(off, chunk_size_));
  }
}

void Endpoint::on_receive(ReceiveFn fn) {
  receive_ = std::move(fn);
  if (receive_ && !backlog_.empty()) {
    std::string pending;
    pending.swap(backlog_);
    receive_(pending);
  }
}

void Endpoint::disconnect() {
  if (auto peer = peer_weak_.lock()) {
    peer->peer_weak_.reset();
  }
  peer_weak_.reset();
}

bool Endpoint::connected() const noexcept { return !peer_weak_.expired(); }

void Endpoint::deliver(std::string bytes) {
  if (receive_) {
    receive_(bytes);
  } else {
    backlog_ += bytes;
  }
}

std::pair<std::shared_ptr<Endpoint>, std::shared_ptr<Endpoint>>
make_channel_pair(SimClock& clock, SimTime latency_us,
                  std::size_t chunk_size) {
  auto a = std::make_shared<Endpoint>();
  auto b = std::make_shared<Endpoint>();
  a->clock_ = &clock;
  b->clock_ = &clock;
  a->latency_us_ = latency_us;
  b->latency_us_ = latency_us;
  a->chunk_size_ = chunk_size;
  b->chunk_size_ = chunk_size;
  a->peer_weak_ = b;
  b->peer_weak_ = a;
  return {a, b};
}

}  // namespace unify::proto
