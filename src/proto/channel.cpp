#include "proto/channel.h"

#include <utility>

namespace unify::proto {

Endpoint::~Endpoint() {
  if (auto peer = peer_weak_.lock()) {
    peer->peer_weak_.reset();
    peer->handle_peer_closed();
  }
}

Result<void> Endpoint::send(std::string bytes) {
  auto peer = peer_weak_.lock();
  if (peer == nullptr) {
    return Error{ErrorCode::kUnavailable, "channel disconnected"};
  }
  if (bytes.empty()) return Result<void>::success();
  counters_.messages_sent++;
  counters_.bytes_sent += bytes.size();
  const auto schedule = [this](std::string data) {
    driver_->schedule(latency_us_,
                      [weak = peer_weak_, data = std::move(data)] {
                        if (auto p = weak.lock()) p->deliver(data);
                      });
  };
  if (chunk_size_ == 0 || bytes.size() <= chunk_size_) {
    schedule(std::move(bytes));
    return Result<void>::success();
  }
  for (std::size_t off = 0; off < bytes.size(); off += chunk_size_) {
    schedule(bytes.substr(off, chunk_size_));
  }
  return Result<void>::success();
}

void Endpoint::on_receive(ReceiveFn fn) {
  receive_ = std::move(fn);
  if (receive_ && !backlog_.empty()) {
    std::string pending;
    pending.swap(backlog_);
    receive_(pending);
  }
}

void Endpoint::on_close(CloseFn fn) { close_ = std::move(fn); }

void Endpoint::disconnect() {
  if (auto peer = peer_weak_.lock()) {
    peer->peer_weak_.reset();
    peer->handle_peer_closed();
  }
  peer_weak_.reset();
  handle_peer_closed();
}

bool Endpoint::connected() const noexcept { return !peer_weak_.expired(); }

void Endpoint::handle_peer_closed() {
  if (closed_) return;
  closed_ = true;
  if (close_) close_();
}

void Endpoint::deliver(std::string bytes) {
  counters_.messages_received++;
  counters_.bytes_received += bytes.size();
  if (receive_) {
    receive_(bytes);
  } else {
    backlog_ += bytes;
  }
}

std::pair<std::shared_ptr<Endpoint>, std::shared_ptr<Endpoint>>
make_channel_pair(SimClock& clock, SimTime latency_us,
                  std::size_t chunk_size) {
  auto driver = std::make_shared<SimDriver>(clock);
  auto a = std::make_shared<Endpoint>();
  auto b = std::make_shared<Endpoint>();
  a->driver_ = driver;
  b->driver_ = std::move(driver);
  a->latency_us_ = latency_us;
  b->latency_us_ = latency_us;
  a->chunk_size_ = chunk_size;
  b->chunk_size_ = chunk_size;
  a->peer_weak_ = b;
  b->peer_weak_ = a;
  return {a, b};
}

}  // namespace unify::proto
