// Fault-injecting transport decorator: a hostile wire on demand.
//
// FaultTransport wraps any Transport (in-memory channel or TCP connection)
// and perturbs the send path on a deterministic, seeded schedule: extra
// latency/jitter, abrupt connection resets, send-side blackholes (the
// half-open partition where our bytes vanish but the peer's still arrive),
// mid-frame truncation (a prefix of the frame leaks out before the reset)
// and single-byte corruption. Every chaos invariant in the repo can now run
// against a wire that misbehaves the way real control channels do
// (DESIGN.md §14).
//
// Determinism: all fault decisions are drawn from one seeded Rng owned by a
// FaultInjector, indexed by send count — never by wall-clock time — so a
// schedule replays bit-identically for a fixed seed (the wire-chaos soak
// honours a WIRE_SEED override exactly like CHAOS_SEED/CHURN_SEED). The
// injector is shared across reconnects of one logical session: a new
// FaultTransport wrapped over a fresh connection continues the schedule
// instead of replaying it, so "the first send always dies" loops cannot
// happen unless the profile says so.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "proto/transport.h"
#include "util/rng.h"

namespace unify::proto {

/// What the hostile wire does, as per-send probabilities in [0, 1].
/// Decisions are evaluated in the order reset, blackhole, truncate,
/// corrupt; at most one fault fires per send.
struct FaultProfile {
  /// Abrupt reset: the frame is dropped and the connection is severed
  /// immediately (RST-style — no graceful flush).
  double reset_rate = 0;
  /// Send-side blackhole: send() reports success, the bytes vanish. The
  /// connection stays up — the half-open partition only a heartbeat or an
  /// RPC deadline can detect.
  double blackhole_rate = 0;
  /// Mid-frame truncation: a strict prefix of the frame reaches the peer,
  /// then the connection resets. The peer's decoder is left with a
  /// dangling partial frame.
  double truncate_rate = 0;
  /// Single-byte corruption: one byte of the frame is flipped in place
  /// (frame header or payload alike) and delivered.
  double corrupt_rate = 0;
  /// Fixed extra one-way delay added to every delivered send.
  SimTime latency_us = 0;
  /// Uniform extra delay in [0, jitter_us] on top of latency_us, drawn
  /// per send from the seeded schedule.
  SimTime jitter_us = 0;
};

/// The kinds of send perturbation, for schedules/telemetry.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kReset,
  kBlackhole,
  kTruncate,
  kCorrupt,
};
[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// The seeded fault schedule of one logical session. Owns the Rng and the
/// decision counters; shared (via shared_ptr) by every FaultTransport
/// incarnation of the session so reconnects continue the schedule.
class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile, std::uint64_t seed)
      : profile_(profile), rng_(seed) {}

  /// Draws the next decision. One draw per send, plus one jitter draw when
  /// the send is delivered (delayed/corrupted) — all from the same stream.
  FaultKind next_fault();
  /// Extra delivery delay for a non-dropped send (latency + jitter draw).
  SimTime next_delay();
  /// Offset of the byte to flip / the truncation point for a frame of
  /// `size` bytes.
  std::size_t next_offset(std::size_t size);

  /// Every decision made so far, in order — the replay signature the
  /// wire-chaos soak compares across runs.
  [[nodiscard]] const std::vector<FaultKind>& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return faults_injected_;
  }
  [[nodiscard]] const FaultProfile& profile() const noexcept {
    return profile_;
  }

 private:
  FaultProfile profile_;
  Rng rng_;
  std::vector<FaultKind> schedule_;
  std::uint64_t faults_injected_ = 0;
};

/// Transport decorator applying a FaultInjector's schedule to the send
/// path. The receive path passes through untouched: wrapping one end of a
/// duplex stream perturbs exactly that end's outbound direction, so a pair
/// of injectors can model asymmetric partitions.
class FaultTransport final
    : public Transport,
      public std::enable_shared_from_this<FaultTransport> {
 public:
  /// Wraps `inner`; the injector carries the (shared) fault schedule.
  [[nodiscard]] static std::shared_ptr<FaultTransport> wrap(
      std::shared_ptr<Transport> inner, std::shared_ptr<FaultInjector> injector);

  Result<void> send(std::string bytes) override;
  void on_receive(ReceiveFn fn) override { inner_->on_receive(std::move(fn)); }
  void on_close(CloseFn fn) override { inner_->on_close(std::move(fn)); }
  void disconnect() override { inner_->disconnect(); }
  [[nodiscard]] bool connected() const noexcept override {
    return inner_->connected();
  }
  /// Counters of the wire as the sender believes it behaves: blackholed
  /// and reset sends still count as sent (the caller's bytes left its
  /// hands); what the peer actually saw shows up in its own counters.
  [[nodiscard]] const TransportCounters& counters() const noexcept override {
    return inner_->counters();
  }
  [[nodiscard]] Driver& driver() noexcept override { return inner_->driver(); }

  [[nodiscard]] const FaultInjector& injector() const noexcept {
    return *injector_;
  }

 private:
  FaultTransport(std::shared_ptr<Transport> inner,
                 std::shared_ptr<FaultInjector> injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  /// Sends (possibly after the schedule's delay) on the inner transport.
  void deliver(std::string bytes);

  std::shared_ptr<Transport> inner_;
  std::shared_ptr<FaultInjector> injector_;
  /// Sends awaiting their delivery timer, strictly in send order (each
  /// timer releases the front, so jitter cannot reorder the stream).
  std::deque<std::string> delayed_;
};

}  // namespace unify::proto
