// The transport concept behind every control-plane session (DESIGN.md §13).
//
// The paper's Unify interface runs NETCONF/OpenFlow-style sessions over TCP
// between layers and domains. All session/RPC code in this reproduction is
// written against two small interfaces instead of a concrete wire:
//
//   Transport — a connected, ordered, reliable byte stream (send bytes,
//               receive bytes, observe close). The deterministic in-memory
//               channel (proto/channel.h) and the epoll TCP connection
//               (proto/net/tcp.h) both conform, byte-for-byte compatible
//               with the same length-prefixed framing.
//   Driver    — the timer/deadline provider and event pump the transport's
//               callbacks run on: SimClock for in-memory channels, the
//               epoll reactor for sockets. One deadline path serves both.
//
// Threading: a transport and everything constructed over it (RpcPeer,
// UnifyServer, ...) belong to their driver's single-threaded execution
// domain, identified by Driver::exclusion_key(). Two transports may be
// used concurrently iff their exclusion keys differ.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/sim_clock.h"

namespace unify::proto {

struct TransportCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
};

/// Legacy name from the in-memory-channel era; same struct.
using ChannelCounters = TransportCounters;

/// Timer/deadline provider + event pump. SimClock-backed for in-memory
/// channels, epoll-reactor-backed for sockets.
class Driver {
 public:
  virtual ~Driver() = default;

  /// Runs `fn` once after `delay_us` microseconds of this driver's time
  /// base (simulated time for SimClock, monotonic wall time for the
  /// reactor). delay_us <= 0 means "as soon as possible".
  virtual void schedule(SimTime delay_us, std::function<void()> fn) = 0;

  /// Runs one batch of due work (timers, I/O readiness). Returns false iff
  /// nothing is pending and no future work can arrive — the "wait until
  /// X or the driver goes idle" loops (`RpcPeer::call_and_wait`) terminate
  /// on that. A true return does not promise progress was made, only that
  /// waiting longer could still produce some.
  virtual bool pump() = 0;

  /// Stable key of the single-threaded execution domain this driver's
  /// callbacks run in. Transports sharing a key must never be driven
  /// concurrently (the push fan-out groups adapters by this).
  [[nodiscard]] virtual const void* exclusion_key() const noexcept = 0;
};

/// A connected, ordered, reliable duplex byte stream.
///
/// Buffer ownership: the string_view handed to the receive callback points
/// into transport-owned storage and is valid only for the duration of the
/// callback — copy out anything kept (FrameDecoder does). Bytes passed to
/// send() are owned by the transport from that point on.
class Transport {
 public:
  using ReceiveFn = std::function<void(std::string_view bytes)>;
  using CloseFn = std::function<void()>;

  virtual ~Transport() = default;

  /// Queues bytes for in-order delivery to the peer. Fails with
  /// kUnavailable once the transport is disconnected — callers get a send
  /// status instead of a silent drop.
  virtual Result<void> send(std::string bytes) = 0;

  /// Installs the receive callback (replaces any previous one). Bytes that
  /// arrive while no callback is installed are buffered and flushed on
  /// installation.
  virtual void on_receive(ReceiveFn fn) = 0;

  /// Installs the close callback (replaces any previous one); fires exactly
  /// once, when the transport transitions to disconnected — locally via
  /// disconnect() or remotely (peer closed, connection reset).
  virtual void on_close(CloseFn fn) = 0;

  /// Initiates a graceful close: already-queued outbound bytes are still
  /// flushed where the medium allows, then the stream is severed.
  virtual void disconnect() = 0;

  [[nodiscard]] virtual bool connected() const noexcept = 0;
  [[nodiscard]] virtual const TransportCounters& counters() const noexcept = 0;

  /// The driver whose execution domain this transport lives in. Valid for
  /// the transport's lifetime.
  [[nodiscard]] virtual Driver& driver() noexcept = 0;
};

}  // namespace unify::proto
