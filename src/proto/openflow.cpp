#include "proto/openflow.h"

namespace unify::proto::openflow {

json::Value to_json(const FlowMod& msg) {
  json::Object o;
  o.set("dpid", msg.dpid);
  o.set("command", msg.command == FlowModCommand::kAdd ? "add" : "delete");
  json::Object entry;
  entry.set("cookie", msg.entry.id);
  entry.set("in_port", msg.entry.in_port);
  if (!msg.entry.match_tag.empty()) {
    entry.set("match_tag", msg.entry.match_tag);
  }
  entry.set("out_port", msg.entry.out_port);
  if (!msg.entry.set_tag.empty()) entry.set("set_tag", msg.entry.set_tag);
  if (msg.entry.priority != 0) entry.set("priority", msg.entry.priority);
  o.set("entry", std::move(entry));
  return json::Value{std::move(o)};
}

Result<FlowMod> flow_mod_from_json(const json::Value& value) {
  if (!value.is_object()) {
    return Error{ErrorCode::kProtocol, "flow_mod must be an object"};
  }
  FlowMod msg;
  msg.dpid = value.get_string("dpid");
  if (msg.dpid.empty()) {
    return Error{ErrorCode::kProtocol, "flow_mod missing dpid"};
  }
  const std::string command = value.get_string("command", "add");
  if (command == "add") {
    msg.command = FlowModCommand::kAdd;
  } else if (command == "delete") {
    msg.command = FlowModCommand::kDelete;
  } else {
    return Error{ErrorCode::kProtocol, "unknown flow_mod command " + command};
  }
  const json::Value* entry = value.get("entry");
  if (entry == nullptr || !entry->is_object()) {
    return Error{ErrorCode::kProtocol, "flow_mod missing entry"};
  }
  msg.entry.id = entry->get_string("cookie");
  msg.entry.in_port = static_cast<int>(entry->get_int("in_port"));
  msg.entry.match_tag = entry->get_string("match_tag");
  msg.entry.out_port = static_cast<int>(entry->get_int("out_port"));
  msg.entry.set_tag = entry->get_string("set_tag");
  msg.entry.priority = static_cast<int>(entry->get_int("priority"));
  return msg;
}

}  // namespace unify::proto::openflow
