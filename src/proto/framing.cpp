#include "proto/framing.h"

namespace unify::proto {

std::string encode_frame(std::string_view payload) {
  const auto size = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((size >> 24) & 0xFF));
  out.push_back(static_cast<char>((size >> 16) & 0xFF));
  out.push_back(static_cast<char>((size >> 8) & 0xFF));
  out.push_back(static_cast<char>(size & 0xFF));
  out.append(payload);
  return out;
}

Result<void> FrameDecoder::feed(std::string_view bytes,
                                std::vector<std::string>& out) {
  if (poisoned_) {
    return Error{ErrorCode::kProtocol, "decoder poisoned by earlier error"};
  }
  buffer_.append(bytes);
  while (buffer_.size() >= 4) {
    const auto b = [this](std::size_t i) {
      return static_cast<std::uint32_t>(
          static_cast<unsigned char>(buffer_[i]));
    };
    const std::uint32_t size = (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
    if (size > kMaxFrameBytes) {
      poisoned_ = true;
      return Error{ErrorCode::kProtocol,
                   "frame of " + std::to_string(size) + " bytes exceeds cap"};
    }
    if (buffer_.size() < 4 + static_cast<std::size_t>(size)) break;
    out.push_back(buffer_.substr(4, size));
    buffer_.erase(0, 4 + static_cast<std::size_t>(size));
  }
  return Result<void>::success();
}

}  // namespace unify::proto
