// In-memory byte-stream channels with simulated latency.
//
// The paper's control plane talks NETCONF/OpenFlow/Unify over TCP sessions
// between layers and domains. This reproduction replaces sockets with
// deterministic in-memory duplex channels driven by a SimClock: bytes
// written at one endpoint arrive at the other after the configured one-way
// latency, optionally fragmented to exercise framing code. Counters feed
// the control-plane overhead experiments (E4, E6).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "util/sim_clock.h"

namespace unify::proto {

struct ChannelCounters {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

/// One side of a duplex channel. Obtain pairs via make_channel_pair.
class Endpoint {
 public:
  using ReceiveFn = std::function<void(std::string_view bytes)>;

  /// Sends bytes to the peer; they arrive after the channel latency, in
  /// order, possibly split into `chunk_size` fragments.
  void send(std::string bytes);

  /// Installs the receive callback (replaces any previous one). Bytes that
  /// arrive while no callback is installed are buffered and flushed on
  /// installation.
  void on_receive(ReceiveFn fn);

  [[nodiscard]] const ChannelCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] bool connected() const noexcept;

  /// Severs both directions; in-flight bytes are still delivered as long as
  /// the receiving endpoint stays alive.
  void disconnect();

 private:
  friend std::pair<std::shared_ptr<Endpoint>, std::shared_ptr<Endpoint>>
  make_channel_pair(SimClock& clock, SimTime latency_us,
                    std::size_t chunk_size);

  void deliver(std::string bytes);

  SimClock* clock_ = nullptr;
  SimTime latency_us_ = 0;
  std::size_t chunk_size_ = 0;  // 0 = no fragmentation
  std::weak_ptr<Endpoint> peer_weak_;
  ReceiveFn receive_;
  std::string backlog_;  // bytes received before on_receive installed
  ChannelCounters counters_;
};

/// Creates a connected pair. `latency_us` is the one-way delivery delay in
/// simulated microseconds; `chunk_size` > 0 fragments deliveries.
[[nodiscard]] std::pair<std::shared_ptr<Endpoint>, std::shared_ptr<Endpoint>>
make_channel_pair(SimClock& clock, SimTime latency_us = 100,
                  std::size_t chunk_size = 0);

}  // namespace unify::proto
