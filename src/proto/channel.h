// In-memory byte-stream transport with simulated latency.
//
// The deterministic half of the transport concept (proto/transport.h):
// bytes written at one endpoint arrive at the other after the configured
// one-way latency, in order, optionally fragmented to exercise framing
// code. Driven by a SimClock, so experiments are reproducible and
// independent of host speed. Counters feed the control-plane overhead
// experiments (E4, E6); the real-socket counterpart is proto/net/tcp.h.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "proto/transport.h"
#include "util/sim_clock.h"

namespace unify::proto {

/// Driver over a SimClock: scheduling maps to simulated timers and each
/// pump fires the earliest deadline batch (bounded progress — a periodic
/// heartbeat timer keeps the clock non-idle forever, so draining to idle
/// would never return). The exclusion key is the clock itself — every
/// channel (and adapter) sharing a SimClock belongs to one single-threaded
/// domain.
class SimDriver final : public Driver {
 public:
  explicit SimDriver(SimClock& clock) : clock_(&clock) {}

  void schedule(SimTime delay_us, std::function<void()> fn) override {
    clock_->schedule_in(delay_us, std::move(fn));
  }
  bool pump() override { return clock_->run_next_deadline() > 0; }
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return clock_;
  }

 private:
  SimClock* clock_;
};

/// One side of a simulated duplex channel. Obtain pairs via
/// make_channel_pair.
class Endpoint final : public Transport {
 public:
  /// Destruction counts as a hangup: the surviving peer's close callback
  /// fires, exactly as a TCP peer observes a closed socket.
  ~Endpoint() override;

  Result<void> send(std::string bytes) override;
  void on_receive(ReceiveFn fn) override;
  void on_close(CloseFn fn) override;

  /// Severs both directions (both close callbacks fire); in-flight bytes
  /// are still delivered as long as the receiving endpoint stays alive.
  void disconnect() override;

  [[nodiscard]] bool connected() const noexcept override;
  [[nodiscard]] const TransportCounters& counters() const noexcept override {
    return counters_;
  }
  [[nodiscard]] Driver& driver() noexcept override { return *driver_; }

 private:
  friend std::pair<std::shared_ptr<Endpoint>, std::shared_ptr<Endpoint>>
  make_channel_pair(SimClock& clock, SimTime latency_us,
                    std::size_t chunk_size);

  void deliver(std::string bytes);
  void handle_peer_closed();

  std::shared_ptr<SimDriver> driver_;  // shared by both pair ends
  SimTime latency_us_ = 0;
  std::size_t chunk_size_ = 0;  // 0 = no fragmentation
  std::weak_ptr<Endpoint> peer_weak_;
  ReceiveFn receive_;
  CloseFn close_;
  bool closed_ = false;  // close callback fired (at most once)
  std::string backlog_;  // bytes received before on_receive installed
  TransportCounters counters_;
};

/// Creates a connected pair. `latency_us` is the one-way delivery delay in
/// simulated microseconds; `chunk_size` > 0 fragments deliveries.
[[nodiscard]] std::pair<std::shared_ptr<Endpoint>, std::shared_ptr<Endpoint>>
make_channel_pair(SimClock& clock, SimTime latency_us = 100,
                  std::size_t chunk_size = 0);

}  // namespace unify::proto
