// JSON-RPC peer over any framed transport (proto/transport.h).
//
// Both the recursive Unify interface (manager <-> virtualizer) and the
// domain control channels (NETCONF-style edit-config, OpenFlow-style
// flow-mods) run this protocol in the reproduction, over the in-memory
// simulated channel or a real TCP connection alike. Symmetric: either side
// may expose methods and issue requests.
//
// Wire messages (one JSON object per frame):
//   request       {"id": 7, "method": "edit-config", "params": {...}}
//   response      {"id": 7, "result": {...}}
//   error         {"id": 7, "error": {"code": "rejected", "message": "..."}}
//   notification  {"method": "nf-status", "params": {...}}   (no id)
//
// Robustness: unknown methods are answered with a not_found error frame;
// malformed input (bad JSON, requests without a string method, responses
// with unknown/duplicate ids, frames that are not objects) is ignored and
// counted in protocol_errors() — a misbehaving peer can never crash the
// session or wedge a well-formed one. Every peer answers the "ping"
// method natively (empty result) unless a handler overrides it, so any
// session can be heartbeat-probed (proto/resilient_session.h) without
// per-server plumbing. The single unrecoverable input is a
// framing-level violation (oversized frame): byte-stream sync is lost, so
// the transport is disconnected.
//
// Timeouts: one deadline path for call() and call_and_wait(), scheduled on
// the transport's Driver. timeout_us = 0 means "no timeout": the pending
// call stays open until the response arrives or the transport closes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "json/json.h"
#include "proto/framing.h"
#include "proto/transport.h"
#include "util/result.h"

namespace unify::proto {

class RpcPeer {
 public:
  using Handler = std::function<Result<json::Value>(const json::Value& params)>;
  using NotificationHandler = std::function<void(const json::Value& params)>;
  using ResponseFn = std::function<void(Result<json::Value>)>;

  /// Binds to a transport; the peer must outlive in-flight activity and be
  /// used only from the transport driver's execution domain.
  explicit RpcPeer(std::shared_ptr<Transport> transport,
                   std::string name = "rpc");
  ~RpcPeer();
  RpcPeer(const RpcPeer&) = delete;
  RpcPeer& operator=(const RpcPeer&) = delete;

  /// Registers the server-side method (replaces an existing handler).
  void on_request(std::string method, Handler handler);
  void on_notification(std::string method, NotificationHandler handler);

  /// Fires after this peer's transport closes (pending calls have already
  /// been failed with kUnavailable by then). For server-side session
  /// cleanup; replaces any previous hook.
  void on_disconnect(std::function<void()> fn);

  /// Issues a request. On success `done` fires exactly once — with the
  /// result, with the peer's error, or with kTimeout after `timeout_us`
  /// (0 = no timeout: the call waits for the response or transport close).
  /// On a send failure (disconnected transport) the error is returned and
  /// `done` never fires. The outcome is delivered exactly once either way:
  /// if the send itself closes the transport mid-write, the call fails
  /// through `done` (kUnavailable) and the return value is success.
  Result<void> call(std::string method, json::Value params, ResponseFn done,
                    SimTime timeout_us = 0);

  /// Fire-and-forget notification; reports the send status instead of
  /// silently dropping on a disconnected transport.
  Result<void> notify(std::string method, json::Value params);

  /// Issues the call and pumps the driver until the response lands, the
  /// timeout fires, or the driver goes idle with the call still open
  /// (peer gone — kUnavailable).
  Result<json::Value> call_and_wait(std::string method, json::Value params,
                                    SimTime timeout_us = 0);

  [[nodiscard]] const TransportCounters& counters() const noexcept {
    return transport_->counters();
  }
  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return requests_handled_;
  }
  /// Malformed frames/messages ignored so far (see file comment).
  [[nodiscard]] std::uint64_t protocol_errors() const noexcept {
    return protocol_errors_;
  }
  /// Calls issued but not yet completed (responded / timed out / failed by
  /// a transport close). Must drain to zero on an idle or closed session —
  /// the wire-chaos soak asserts no entry ever leaks.
  [[nodiscard]] std::size_t pending_calls() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] Driver& driver() noexcept { return transport_->driver(); }

 private:
  void handle_bytes(std::string_view bytes);
  void handle_message(const json::Value& msg);
  void handle_closed();
  Result<void> send_json(const json::Value& msg);

  std::shared_ptr<Transport> transport_;
  std::string name_;
  FrameDecoder decoder_;
  std::map<std::string, Handler> handlers_;
  std::map<std::string, NotificationHandler> notification_handlers_;
  std::function<void()> disconnect_hook_;
  struct Pending {
    ResponseFn done;
    bool responded = false;
  };
  std::map<std::int64_t, std::shared_ptr<Pending>> pending_;
  std::int64_t next_id_ = 1;
  std::uint64_t requests_handled_ = 0;
  std::uint64_t protocol_errors_ = 0;
};

}  // namespace unify::proto
