// JSON-RPC peer over a framed channel endpoint.
//
// Both the recursive Unify interface (manager <-> virtualizer) and the
// domain control channels (NETCONF-style edit-config, OpenFlow-style
// flow-mods) run this protocol in the reproduction. Symmetric: either side
// may expose methods and issue requests.
//
// Wire messages (one JSON object per frame):
//   request       {"id": 7, "method": "edit-config", "params": {...}}
//   response      {"id": 7, "result": {...}}
//   error         {"id": 7, "error": {"code": "rejected", "message": "..."}}
//   notification  {"method": "nf-status", "params": {...}}   (no id)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "json/json.h"
#include "proto/channel.h"
#include "proto/framing.h"
#include "util/result.h"

namespace unify::proto {

class RpcPeer {
 public:
  using Handler = std::function<Result<json::Value>(const json::Value& params)>;
  using NotificationHandler = std::function<void(const json::Value& params)>;
  using ResponseFn = std::function<void(Result<json::Value>)>;

  /// Binds to an endpoint; the peer must outlive in-flight activity.
  RpcPeer(std::shared_ptr<Endpoint> endpoint, SimClock& clock,
          std::string name = "rpc");
  ~RpcPeer();
  RpcPeer(const RpcPeer&) = delete;
  RpcPeer& operator=(const RpcPeer&) = delete;

  /// Registers the server-side method (replaces an existing handler).
  void on_request(std::string method, Handler handler);
  void on_notification(std::string method, NotificationHandler handler);

  /// Issues a request; `done` fires exactly once — with the result, with
  /// the peer's error, or with kTimeout after `timeout_us` (0 = no timeout).
  void call(std::string method, json::Value params, ResponseFn done,
            SimTime timeout_us = 0);

  /// Fire-and-forget notification.
  void notify(std::string method, json::Value params);

  /// Convenience for tests/single-threaded orchestration: issues the call
  /// and drives the clock until the response lands (or timeout).
  Result<json::Value> call_and_wait(std::string method, json::Value params,
                                    SimTime timeout_us = 0);

  [[nodiscard]] const ChannelCounters& counters() const noexcept {
    return endpoint_->counters();
  }
  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return requests_handled_;
  }

 private:
  void handle_bytes(std::string_view bytes);
  void handle_message(const json::Value& msg);
  void send_json(const json::Value& msg);

  std::shared_ptr<Endpoint> endpoint_;
  SimClock* clock_;
  std::string name_;
  FrameDecoder decoder_;
  std::map<std::string, Handler> handlers_;
  std::map<std::string, NotificationHandler> notification_handlers_;
  struct Pending {
    ResponseFn done;
    bool responded = false;
  };
  std::map<std::int64_t, std::shared_ptr<Pending>> pending_;
  std::int64_t next_id_ = 1;
  std::uint64_t requests_handled_ = 0;
};

}  // namespace unify::proto
