// Lightweight metrics for the orchestration stack: counters, gauges and
// summaries grouped in a registry, plus an event log keyed by simulated
// time. Benchmarks read these to report per-layer breakdowns (e.g. RPC
// round trips per deployment, experiment E2/E4).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/sim_clock.h"

namespace unify::telemetry {

/// Accumulates double observations; cheap percentile queries for reports.
class Summary {
 public:
  void observe(double value);
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return values_.empty() ? 0 : sum_ / static_cast<double>(values_.size());
  }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// p in [0,1]; nearest-rank. 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  /// Appends every observation of `other` (for folding per-worker
  /// summaries into one).
  void merge(const Summary& other);

 private:
  std::vector<double> values_;
  double sum_ = 0;
};

/// Named counters/gauges/summaries. Not thread-safe by design (the
/// simulation is single-threaded).
class Registry {
 public:
  void add(const std::string& counter, std::uint64_t delta = 1) {
    counters_[counter] += delta;
  }
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  [[nodiscard]] double gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }
  Summary& summary(const std::string& name) { return summaries_[name]; }
  /// Shorthand for summary(name).observe(value) — the admission/churn hot
  /// paths record latencies in one call.
  void observe(const std::string& name, double value) {
    summaries_[name].observe(value);
  }
  [[nodiscard]] const Summary* find_summary(const std::string& name) const {
    const auto it = summaries_.find(name);
    return it == summaries_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }

  /// Folds `other` into this registry: counters add up, gauges take the
  /// other's value, summaries concatenate observations. Used to aggregate
  /// registries filled privately by batch/worker code into the long-lived
  /// one (Registry itself is not thread-safe).
  void merge(const Registry& other) {
    for (const auto& [name, value] : other.counters_) {
      counters_[name] += value;
    }
    for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
    for (const auto& [name, summary] : other.summaries_) {
      summaries_[name].merge(summary);
    }
  }

  void reset() {
    counters_.clear();
    gauges_.clear();
    summaries_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Summary> summaries_;
};

/// Time-stamped structured event trail ("what did the control plane do").
class EventLog {
 public:
  struct Event {
    SimTime at = 0;
    std::string component;
    std::string what;
  };

  void record(SimTime at, std::string component, std::string what) {
    events_.push_back(Event{at, std::move(component), std::move(what)});
  }
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::vector<const Event*> by_component(
      const std::string& component) const;
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace unify::telemetry
