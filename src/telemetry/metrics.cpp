#include "telemetry/metrics.h"

#include <cmath>

namespace unify::telemetry {

void Summary::observe(double value) {
  values_.push_back(value);
  sum_ += value;
}

void Summary::merge(const Summary& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sum_ += other.sum_;
}

double Summary::min() const noexcept {
  return values_.empty()
             ? 0
             : *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const noexcept {
  return values_.empty()
             ? 0
             : *std::max_element(values_.begin(), values_.end());
}

double Summary::percentile(double p) const {
  if (values_.empty()) return 0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

std::vector<const EventLog::Event*> EventLog::by_component(
    const std::string& component) const {
  std::vector<const Event*> out;
  for (const Event& e : events_) {
    if (e.component == component) out.push_back(&e);
  }
  return out;
}

}  // namespace unify::telemetry
