// Graphviz/ASCII rendering of service graphs and NFFGs — the visual half
// of the paper's GUI, reduced to text artifacts the examples print.
#pragma once

#include <string>

#include "model/nffg.h"
#include "sg/service_graph.h"

namespace unify::viz {

/// Graphviz digraph: SAPs as diamonds, BiS-BiS as boxes (with NF sub-rows),
/// links labelled "bw/delay".
[[nodiscard]] std::string to_dot(const model::Nffg& nffg);

/// Graphviz digraph of a service request: SAPs as diamonds, NFs as
/// ellipses, chain links labelled with bandwidth.
[[nodiscard]] std::string to_dot(const sg::ServiceGraph& sg);

/// Fixed-width summary table of an NFFG (nodes, capacity, NFs, rules).
[[nodiscard]] std::string summary_table(const model::Nffg& nffg);

}  // namespace unify::viz
