#include "viz/dot.h"

#include <cstdio>

#include "util/strings.h"

namespace unify::viz {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_dot(const model::Nffg& nffg) {
  std::string out = "digraph " + quoted(nffg.id()) + " {\n";
  out += "  rankdir=LR;\n";
  for (const auto& [sap_id, sap] : nffg.saps()) {
    out += "  " + quoted(sap_id) + " [shape=diamond];\n";
  }
  for (const auto& [bb_id, bb] : nffg.bisbis()) {
    std::string label = bb_id + "\\n" + bb.capacity.to_string();
    for (const auto& [nf_id, nf] : bb.nfs) {
      label += "\\n[" + nf_id + ":" + nf.type + " " +
               model::to_string(nf.status) + "]";
    }
    out += "  " + quoted(bb_id) + " [shape=box,label=" + quoted(label) +
           "];\n";
  }
  for (const auto& [link_id, link] : nffg.links()) {
    char attrs[96];
    std::snprintf(attrs, sizeof(attrs), "%s/%sms",
                  strings::format_double(link.attrs.bandwidth).c_str(),
                  strings::format_double(link.attrs.delay).c_str());
    out += "  " + quoted(link.from.node) + " -> " + quoted(link.to.node) +
           " [label=" + quoted(attrs) + "];\n";
  }
  out += "}\n";
  return out;
}

std::string to_dot(const sg::ServiceGraph& sg) {
  std::string out = "digraph " + quoted(sg.id()) + " {\n";
  out += "  rankdir=LR;\n";
  for (const auto& [sap_id, name] : sg.saps()) {
    out += "  " + quoted(sap_id) + " [shape=diamond];\n";
  }
  for (const auto& [nf_id, nf] : sg.nfs()) {
    out += "  " + quoted(nf_id) + " [shape=ellipse,label=" +
           quoted(nf_id + "\\n(" + nf.type + ")") + "];\n";
  }
  for (const sg::SgLink& link : sg.links()) {
    out += "  " + quoted(link.from.node) + " -> " + quoted(link.to.node) +
           " [label=" + quoted(strings::format_double(link.bandwidth)) +
           "];\n";
  }
  for (const sg::E2eRequirement& req : sg.requirements()) {
    out += "  " + quoted(req.from_sap) + " -> " + quoted(req.to_sap) +
           " [style=dashed,color=red,label=" +
           quoted("<=" + strings::format_double(req.max_delay) + "ms") +
           "];\n";
  }
  out += "}\n";
  return out;
}

std::string summary_table(const model::Nffg& nffg) {
  const model::NffgStats stats = nffg.stats();
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%-24s | %5zu BiS-BiS | %3zu SAPs | %4zu links | %4zu NFs | "
                "%4zu rules\n  capacity: %s\n  allocated: %s\n",
                nffg.id().c_str(), stats.bisbis_count, stats.sap_count,
                stats.link_count, stats.nf_count, stats.flowrule_count,
                stats.total_capacity.to_string().c_str(),
                stats.total_allocated.to_string().c_str());
  return buf;
}

}  // namespace unify::viz
