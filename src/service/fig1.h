// Canned assembly of the paper's Fig. 1 stack: four heterogeneous
// technology domains (Mininet-style emulated network, POX-controlled
// OpenFlow network, OpenStack+ODL data center, Universal Node) behind one
// resource orchestrator, a single-BiS-BiS virtualizer on top, and the
// service layer talking the Unify interface over a simulated channel.
//
// Used by the integration tests, the examples and the benchmarks; also
// provides a cross-domain data-plane packet tracer that walks the four
// switching fabrics, hopping between domains at the stitching points, to
// verify that a deployed chain actually steers traffic end to end.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/resource_orchestrator.h"
#include "core/unify_api.h"
#include "core/virtualizer.h"
#include "infra/cloud.h"
#include "infra/emu_network.h"
#include "infra/fabric.h"
#include "infra/sdn_network.h"
#include "infra/universal_node.h"
#include "service/service_layer.h"
#include "util/sim_clock.h"

namespace unify::service {

struct Fig1Options {
  std::shared_ptr<const mapping::Mapper> mapper;  ///< default: chain-dp
  bool use_decomposition = true;
  SimTime unify_channel_latency_us = 200;
  /// Reach the OpenFlow domain through a PoxController over a framed RPC
  /// channel (the paper's setup) instead of the in-process adapter.
  bool remote_pox = true;
};

/// The assembled stack. Topology:
///
///   sap1 - [emu: s1 - s2] =xp-emu-sdn= [sdn: t1 - t2 - t3]
///            =xp-sdn-dc= [cloud dc] - sap2
///   [sdn: t3] =xp-sdn-un= [universal node] - sap3
struct Fig1Stack {
  SimClock clock;
  std::unique_ptr<infra::EmuNetwork> emu;
  std::unique_ptr<infra::SdnNetwork> sdn;
  std::unique_ptr<infra::Cloud> cloud;
  std::unique_ptr<infra::UniversalNode> un;
  std::unique_ptr<core::ResourceOrchestrator> ro;
  std::unique_ptr<core::Virtualizer> virtualizer;
  std::unique_ptr<ServiceLayer> service_layer;

  /// SAP/stitching endpoint registry for the cross-domain tracer:
  /// sap id -> (fabric, endpoint-name-in-that-fabric) pairs.
  std::map<std::string, std::vector<std::pair<infra::Fabric*, std::string>>>
      sap_endpoints;
  /// Reverse: fabric+endpoint -> sap id.
  std::map<std::pair<infra::Fabric*, std::string>, std::string> endpoint_saps;

  Fig1Stack() = default;
  Fig1Stack(const Fig1Stack&) = delete;
  Fig1Stack& operator=(const Fig1Stack&) = delete;
};

/// Builds and initializes the full stack (RO view merged, service layer
/// connected over the Unify channel).
[[nodiscard]] Result<std::unique_ptr<Fig1Stack>> make_fig1_stack(
    Fig1Options options = {});

/// One hop of a cross-domain trace.
struct TraceStep {
  std::string domain;
  std::string ingress_endpoint;
  std::string egress_endpoint;
  std::string tag_out;
  std::size_t switch_hops = 0;
};

/// Injects a packet at `from_sap` and follows flow entries across domains
/// (handing the tag over at stitching points) until it exits at a customer
/// SAP. Succeeds when that SAP is `expect_sap`.
[[nodiscard]] Result<std::vector<TraceStep>> end_to_end_trace(
    Fig1Stack& stack, const std::string& from_sap,
    const std::string& expect_sap);

}  // namespace unify::service
