// Churn driver: materializes an infra::churn event stream against the full
// orchestration stack (DESIGN.md §12.3).
//
// The driver owns a canonical soak topology — n accept-all domains in a
// line (the chaos topology), each behind a FaultyAdapter, under one RO /
// virtualizer / service layer connected by a framed Unify link — and
// replays a ChurnEngine's events against it: arrivals enqueue(), pump()
// runs on a fixed sim-time cadence, departures coalesce into remove_batch
// waves, migrations re-enqueue live services at re-embed priority, and
// maintenance windows open/heal domain circuits. The same driver backs the
// churn tests (SLO invariants, determinism) and bench_churn (latency /
// shed-rate numbers), so both measure the identical code path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adapters/faulty_adapter.h"
#include "core/resource_orchestrator.h"
#include "core/virtualizer.h"
#include "infra/churn.h"
#include "service/service_layer.h"
#include "util/sim_clock.h"

namespace unify::service {

/// The full soak stack. Built in place (no moves: the layers hold
/// references to the clock and to each other).
struct ChurnStack {
  /// `n_domains` accept-all domains in a line; the admission policy is
  /// applied to the service layer and its health source is wired to the
  /// RO's HealthManager.
  explicit ChurnStack(std::size_t n_domains,
                      const AdmissionPolicy& policy = {});
  ChurnStack(const ChurnStack&) = delete;
  ChurnStack& operator=(const ChurnStack&) = delete;

  SimClock clock;
  std::unique_ptr<core::ResourceOrchestrator> ro;
  std::unique_ptr<core::Virtualizer> virtualizer;
  std::unique_ptr<ServiceLayer> layer;
  std::vector<adapters::FaultyAdapter*> faults;  ///< borrowed, owned by ro
  std::size_t domains = 0;
  /// Set when any accept-all domain was ever asked to apply a slice that
  /// overcommits its capacity (the occupancy-conservation SLO).
  bool overcommit_seen = false;
};

/// Aggregate outcome of one run_churn() pass.
struct ChurnRunReport {
  std::size_t arrivals = 0;    ///< arrival events the engine generated
  std::size_t enqueued = 0;    ///< accepted into the admission queue
  std::size_t deployed = 0;    ///< reached kDeployed via pump()
  std::size_t failed = 0;
  std::size_t shed = 0;        ///< queue bound + displaced + deadline
  std::size_t migrations = 0;  ///< re-embed requests from storms
  std::size_t removed = 0;     ///< departures that tore a service down
  std::size_t pumps = 0;
  std::size_t max_queue_depth = 0;
  std::size_t max_parked = 0;
  std::size_t peak_deployed = 0;  ///< peak live deployments below
  std::size_t live_at_end = 0;    ///< active requests after the run
  double adm_latency_p50_ms = 0;  ///< sim-time enqueue->deploy latency
  double adm_latency_p99_ms = 0;
  double shed_rate = 0;           ///< shed / enqueue attempts
  bool overcommit = false;        ///< any domain ever overcommitted
  /// Set when any heal pass reduced the placed-deployment count or had
  /// released-but-not-replaced capacity in flight (make-before-break SLO).
  bool heal_shrank = false;
  /// Deterministic fingerprint of the externally observable end state;
  /// equal across runs of the same (spec, seed).
  std::string signature;
};

/// Called after every pump with the stack and the current sim-time; tests
/// hang per-step invariant checks here.
using ChurnTickFn =
    std::function<void(ChurnStack& stack, SimTime now,
                       const PumpReport& report)>;

/// Replays the (spec, seed) event stream against `stack`. `pump_period_us`
/// is the admission cadence: departures buffered since the last tick are
/// flushed as one remove_batch, then pump() dispatches one wave. After the
/// horizon the driver quiesces: clears faults, heals every circuit and
/// pumps until the queue and parking lot drain.
ChurnRunReport run_churn(ChurnStack& stack,
                         const infra::churn::ScenarioSpec& spec,
                         std::uint64_t seed,
                         SimTime pump_period_us = 1'000'000,
                         const ChurnTickFn& on_tick = {});

}  // namespace unify::service
