#include "service/admission.h"

#include <algorithm>

namespace unify::service {

const char* to_string(AdmissionClass klass) noexcept {
  switch (klass) {
    case AdmissionClass::kNew:     return "new";
    case AdmissionClass::kReembed: return "reembed";
    case AdmissionClass::kHeal:    return "heal";
  }
  return "unknown";
}

bool dispatch_before(const AdmissionEntry& a, const AdmissionEntry& b) noexcept {
  if (a.klass != b.klass) {
    return static_cast<int>(a.klass) > static_cast<int>(b.klass);
  }
  // Earliest deadline first; "no deadline" is infinitely patient.
  const bool a_dl = a.deadline != 0, b_dl = b.deadline != 0;
  if (a_dl != b_dl) return a_dl;
  if (a_dl && a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.seq < b.seq;
}

AdmissionQueue::PushResult AdmissionQueue::push(AdmissionEntry entry) {
  PushResult result;
  if (entries_.size() >= capacity_) {
    // The tail entry is the lowest-priority work we hold. Displace it only
    // when the newcomer strictly outranks it by CLASS — deadlines and
    // arrival order never justify shedding already-accepted work.
    if (entries_.empty() || entries_.back().klass >= entry.klass) {
      result.outcome = PushOutcome::kRejected;
      return result;
    }
    result.outcome = PushOutcome::kDisplaced;
    result.displaced = std::move(entries_.back());
    entries_.pop_back();
  }
  const auto at = std::upper_bound(entries_.begin(), entries_.end(), entry,
                                   [](const AdmissionEntry& a,
                                      const AdmissionEntry& b) {
                                     return dispatch_before(a, b);
                                   });
  entries_.insert(at, std::move(entry));
  return result;
}

std::size_t AdmissionQueue::shed_expired(SimTime now, SimTime margin,
                                         std::vector<AdmissionEntry>& shed) {
  std::size_t count = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->deadline != 0 && it->deadline <= now + margin) {
      shed.push_back(std::move(*it));
      it = entries_.erase(it);
      ++count;
    } else {
      ++it;
    }
  }
  return count;
}

std::vector<AdmissionEntry> AdmissionQueue::pop_wave(std::size_t max_wave) {
  const std::size_t take = std::min(max_wave, entries_.size());
  std::vector<AdmissionEntry> wave;
  wave.reserve(take);
  std::move(entries_.begin(), entries_.begin() + static_cast<long>(take),
            std::back_inserter(wave));
  entries_.erase(entries_.begin(), entries_.begin() + static_cast<long>(take));
  return wave;
}

std::optional<AdmissionEntry> AdmissionQueue::erase(const std::string& id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->graph.id() == id) {
      AdmissionEntry out = std::move(*it);
      entries_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

bool AdmissionQueue::contains(const std::string& id) const noexcept {
  for (const AdmissionEntry& entry : entries_) {
    if (entry.graph.id() == id) return true;
  }
  return false;
}

}  // namespace unify::service
