// Service layer: where users submit service graphs with bandwidth/delay
// requirements (the programmatic stand-in for the paper's GUI, see
// DESIGN.md §2).
//
// The embedded service orchestrator sees the view its Unify client fetches
// from the layer below — normally a single BiS-BiS, making its own mapping
// task trivial (paper §2) — writes the union of all active services onto
// that view as a configuration, and pushes it with edit-config. Element ids
// are prefixed per request ("<request>.<nf>") so services never collide.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adapters/domain_adapter.h"
#include "service/admission.h"
#include "sg/service_graph.h"
#include "telemetry/metrics.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace unify::util {
class OrchestrationPool;
}  // namespace unify::util

namespace unify::service {

/// Request lifecycle (DESIGN.md §12). The happy path is
/// kQueued -> kAdmitted -> kDeployed -> kRemoved; overload and failure add
///
///   kQueued ----(deadline passed / displaced)----> kShed        (terminal)
///   kAdmitted --(transient substrate failure)----> kPostponed --> kQueued
///   kAdmitted --(validation / infeasible)--------> kFailed      (id reusable)
///   kDeployed <-> kDegraded  (health reconciliation; kept, not torn down)
///
/// kDegraded = the service is still admitted (its config stays in every
/// push, it is NOT torn down) but the layer below reports at least one of
/// its NFs failed — typically stranded on a down domain awaiting healing.
/// kPostponed = parked: the substrate below is impaired, the request waits
/// for a health transition (readmission) instead of burning retries.
enum class RequestState {
  kQueued,     ///< waiting in the bounded admission queue
  kAdmitted,   ///< popped from the queue, wave commit in flight
  kPostponed,  ///< parked on a degraded substrate, retried on readmission
  kShed,       ///< dropped by admission control (queue bound or deadline)
  kDeployed,
  kDegraded,
  kFailed,
  kRemoved,
};
[[nodiscard]] const char* to_string(RequestState state) noexcept;

struct ServiceRequest {
  std::string id;
  sg::ServiceGraph graph;
  RequestState state = RequestState::kDeployed;
  std::string error;  ///< set when state == kFailed / kDegraded / kShed
};

/// Knobs of the overload-safe admission lifecycle (enqueue()/pump()).
struct AdmissionPolicy {
  /// Bound on queued (not yet dispatched) requests; beyond it enqueue()
  /// sheds — lowest class first, the newcomer itself when nothing queued
  /// ranks below it.
  std::size_t queue_capacity = 256;
  /// Requests dispatched per pump() as ONE submit_batch wave.
  std::size_t max_wave = 16;
  /// Sim-time headroom a dispatch needs to land before a deadline (covers
  /// the southbound RPC latency): entries with deadline <= now + margin
  /// are shed instead of dispatched (shed-before-deadline-violation).
  SimTime dispatch_margin_us = 1000;
  /// Without a health source, parked (kPostponed) requests re-enter the
  /// queue after this many pump() calls. With one, they re-enter as soon
  /// as the health fingerprint below moves (and this acts as a backstop).
  int postpone_retry_pumps = 4;
};

/// What the admission lifecycle knows about the substrate below, fed by
/// set_health_source() (normally wired to core::HealthManager).
struct BelowHealth {
  /// Changes exactly on health-state transitions below; parked requests
  /// are retried when it moves (HealthManager::state_fingerprint()).
  std::uint64_t fingerprint = 0;
  /// True while any domain below is degraded/down: capacity-type failures
  /// then park (kPostponed) instead of failing — the capacity may come
  /// back with the domain. False = the substrate is healthy, so an
  /// infeasible request is genuinely infeasible (kFailed).
  bool impaired = false;
};

/// Outcome tally of one pump() pass.
struct PumpReport {
  std::size_t dispatched = 0;  ///< popped from the queue this pass
  std::size_t deployed = 0;
  std::size_t failed = 0;
  std::size_t shed = 0;        ///< deadline-expired before dispatch
  std::size_t postponed = 0;   ///< parked on a transient/impaired failure
  std::size_t requeued = 0;    ///< parked requests re-entering the queue
};

class ServiceLayer {
 public:
  /// `client` speaks the Unify interface to the orchestration layer below
  /// (normally a UnifyClientAdapter; any DomainAdapter works, which also
  /// makes the service layer trivially testable against a fake). `pool`
  /// carries the batch admission work of submit_batch; nullptr selects the
  /// shared process-scoped util::OrchestrationPool — the same pool the RO
  /// below maps batches on, so exactly one pool exists per process.
  explicit ServiceLayer(std::unique_ptr<adapters::DomainAdapter> client,
                        util::OrchestrationPool* pool = nullptr);

  /// Validates and deploys a service request. The request id is the
  /// service graph id. On failure the previous configuration is restored
  /// and the request is recorded as kFailed.
  Result<std::string> submit(const sg::ServiceGraph& request);

  /// Admits, validates and deploys a whole wave of service requests.
  ///
  /// Structural validation fans out on the shared OrchestrationPool, then
  /// the wave is committed optimistically with ONE merged edit-config —
  /// the virtualizer below hands the new services to
  /// ResourceOrchestrator::map_batch, which embeds them in parallel on the
  /// same pool. When the wave push fails (at least one request is
  /// infeasible), the layer falls back to committing the admitted
  /// requests sequentially in request order with per-request rollback, so
  /// a failed request never poisons its batch-mates: the outcome per
  /// request is exactly what a sequential submit() loop would produce.
  ///
  /// Returns one Result per request, index-aligned with `requests`.
  /// Telemetry: service.batch.{requests,admitted,committed,rolled_back}
  /// counters and the service.batch.wall_ms summary in metrics().
  ///
  /// A failed merged wave falls back by BISECTION: the admitted half-waves
  /// are retried as merged pushes in request order, recursing into halves
  /// until the poisonous requests are isolated as singletons — typically
  /// O(bad * log n) pushes instead of n, with outcomes and final state
  /// byte-identical to a sequential submit() loop (batch_golden_test).
  std::vector<Result<std::string>> submit_batch(
      const std::vector<sg::ServiceGraph>& requests);

  // -- overload-safe admission lifecycle (DESIGN.md §12) -----------------

  /// Places a request into the bounded admission queue (state kQueued)
  /// instead of deploying it inline; `now` (sim-time) stamps the arrival
  /// for the admission-latency summary. Fails with kResourceExhausted when
  /// admission control sheds the newcomer (queue full of same-or-higher
  /// class work; recorded as kShed), kAlreadyExists when the id is active
  /// or already queued. Dispatch happens on the next pump().
  Result<void> enqueue(const sg::ServiceGraph& request, SimTime now,
                       const AdmissionOptions& options = {});

  /// One admission pass at sim-time `now`: re-queues parked requests that
  /// are due (health transition below, or the retry backstop), sheds
  /// queued requests whose deadline can no longer be met, then dispatches
  /// up to max_wave requests as one submit_batch wave. Per-request
  /// outcomes: success -> kDeployed; transient substrate failure (or a
  /// capacity failure while the substrate is impaired) -> kPostponed;
  /// anything else -> kFailed. Telemetry: service.admission.* counters
  /// and the service.admission.latency_ms summary (sim-time queue wait of
  /// dispatched requests).
  PumpReport pump(SimTime now);

  /// Tears the service down (pushes the remaining services' config).
  Result<void> remove(const std::string& request_id);

  /// Batch removal with ONE reconciliation push for every active id in
  /// `request_ids` (the churn departure path: N removals cost one push,
  /// not N). Queued/parked ids are cancelled without a push. Results are
  /// index-aligned; on a failed push every flipped state is restored.
  std::vector<Result<void>> remove_batch(
      const std::vector<std::string>& request_ids);

  void set_admission_policy(const AdmissionPolicy& policy) {
    admission_ = policy;
    queue_.set_capacity(policy.queue_capacity);
  }
  [[nodiscard]] const AdmissionPolicy& admission_policy() const noexcept {
    return admission_;
  }
  /// Wires the admission lifecycle to the health of the layers below
  /// (normally {HealthManager::state_fingerprint(), any_unhealthy()}):
  /// parked requests retry on fingerprint transitions, and capacity
  /// failures park instead of failing while `impaired` is true.
  void set_health_source(std::function<BelowHealth()> source) {
    health_source_ = std::move(source);
  }

  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::size_t parked_count() const noexcept {
    return parked_.size();
  }

  /// Replaces a deployed request with a modified graph under the same id
  /// (elastic update). On failure the previous version stays deployed.
  Result<void> update(const sg::ServiceGraph& request);

  [[nodiscard]] const std::map<std::string, ServiceRequest>& requests()
      const noexcept {
    return requests_;
  }

  /// Rolled-up NF statuses of a deployed request, keyed by the user's NF
  /// ids (unprefixed).
  [[nodiscard]] Result<std::map<std::string, model::NfStatus>> nf_statuses(
      const std::string& request_id);

  /// True when every NF of the request reports running.
  [[nodiscard]] Result<bool> is_ready(const std::string& request_id);

  /// The view the service orchestrator works against (fetched lazily).
  [[nodiscard]] Result<model::Nffg> view();

  /// Reconciles request states with the health the layer below reports:
  /// a deployed request with any failed NF flips to kDegraded (kept, not
  /// torn down); a degraded one flips back to kDeployed only when all of
  /// its NFs are present below again and none reports failed (absence of
  /// failure evidence alone is not recovery — a torn-down placement would
  /// otherwise read as healthy). Returns the ids currently degraded.
  Result<std::vector<std::string>> sync_health();

  /// After this many consecutive transient push/fetch failures against the
  /// client, submit_batch() probes the layer below before committing a
  /// wave and rejects the batch up front when the probe fails (cheaper
  /// than pushing a doomed wave and unwinding it). 0 disables.
  void set_client_suspect_after(int failures) noexcept {
    client_suspect_after_ = failures;
  }

  /// Batch/deployment counters (service.batch.*).
  [[nodiscard]] telemetry::Registry& metrics() noexcept { return metrics_; }

 private:
  /// A parked (kPostponed) request: re-queued when the health fingerprint
  /// below moves or after the postpone_retry_pumps backstop.
  struct Parked {
    AdmissionEntry entry;
    std::uint64_t fingerprint = 0;   ///< BelowHealth at park time
    std::uint64_t parked_at_pump = 0;
  };

  Result<void> ensure_view();
  Result<void> push_config();
  /// Bisection fallback of submit_batch: commits `indices` (already
  /// admitted, ascending request order) on top of the current state. A
  /// clean merged push commits the whole sub-wave; a failed one recurses
  /// into halves after restoring, bottoming out in commit_one(). Fills
  /// `results` for every index; returns false when a restore push failed
  /// (kRollbackFailed — the caller stops committing).
  bool commit_wave_bisect(const std::vector<sg::ServiceGraph>& requests,
                          const std::vector<std::size_t>& indices,
                          std::vector<Result<std::string>>& results,
                          std::size_t& committed, std::size_t& rolled_back);
  /// True when `error` should park the request (kPostponed) rather than
  /// fail it: transient transport errors always, capacity errors while the
  /// substrate below reports impaired.
  [[nodiscard]] bool should_postpone(const Error& error,
                                     const BelowHealth& below) const;
  /// Records a terminal admission outcome (kShed/kFailed) for `entry`.
  void record_outcome(const AdmissionEntry& entry, RequestState state,
                      std::string error);
  /// Builds the kRollbackFailed error for a failed restore push: the data
  /// plane may diverge from the books, so the cached view is dropped (next
  /// ensure_view() re-fetches ground truth) and both failures surface.
  Error rollback_failed(const char* op, const Error& original,
                        const Error& restore);
  [[nodiscard]] sg::ServiceGraph merged_active() const;
  /// Pure per-request checks (structure + SAP existence against the
  /// fetched view). Thread-safe; submit_batch runs these on the pool.
  [[nodiscard]] std::optional<Error> validate_request(
      const sg::ServiceGraph& request) const;
  /// Records `request` as deployed and pushes; on failure marks it
  /// kFailed and restores the previous configuration. Assumes admission
  /// and validation already passed.
  Result<std::string> commit_one(const sg::ServiceGraph& request);
  [[nodiscard]] util::OrchestrationPool& pool() const noexcept;

  std::unique_ptr<adapters::DomainAdapter> client_;
  util::OrchestrationPool* pool_;
  std::map<std::string, ServiceRequest> requests_;
  std::optional<model::Nffg> view_;
  std::string big_node_;
  /// Consecutive transient push failures against client_ (reset on any
  /// successful push); drives the pre-batch suspect probe.
  int client_failures_ = 0;
  int client_suspect_after_ = 2;
  // -- admission lifecycle ------------------------------------------------
  AdmissionPolicy admission_;
  AdmissionQueue queue_{admission_.queue_capacity};
  std::vector<Parked> parked_;
  std::function<BelowHealth()> health_source_;
  std::uint64_t admission_seq_ = 0;
  std::uint64_t pump_count_ = 0;
  telemetry::Registry metrics_;
};

/// Clones `graph` with every NF, link and requirement id prefixed by
/// "<prefix>."; SAP ids are left untouched (SAPs are shared
/// infrastructure).
[[nodiscard]] sg::ServiceGraph prefix_elements(const sg::ServiceGraph& graph,
                                               const std::string& prefix);

}  // namespace unify::service
