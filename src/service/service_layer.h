// Service layer: where users submit service graphs with bandwidth/delay
// requirements (the programmatic stand-in for the paper's GUI, see
// DESIGN.md §2).
//
// The embedded service orchestrator sees the view its Unify client fetches
// from the layer below — normally a single BiS-BiS, making its own mapping
// task trivial (paper §2) — writes the union of all active services onto
// that view as a configuration, and pushes it with edit-config. Element ids
// are prefixed per request ("<request>.<nf>") so services never collide.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "adapters/domain_adapter.h"
#include "sg/service_graph.h"
#include "util/result.h"

namespace unify::service {

enum class RequestState { kDeployed, kFailed, kRemoved };
[[nodiscard]] const char* to_string(RequestState state) noexcept;

struct ServiceRequest {
  std::string id;
  sg::ServiceGraph graph;
  RequestState state = RequestState::kDeployed;
  std::string error;  ///< set when state == kFailed
};

class ServiceLayer {
 public:
  /// `client` speaks the Unify interface to the orchestration layer below
  /// (normally a UnifyClientAdapter; any DomainAdapter works, which also
  /// makes the service layer trivially testable against a fake).
  explicit ServiceLayer(std::unique_ptr<adapters::DomainAdapter> client);

  /// Validates and deploys a service request. The request id is the
  /// service graph id. On failure the previous configuration is restored
  /// and the request is recorded as kFailed.
  Result<std::string> submit(const sg::ServiceGraph& request);

  /// Tears the service down (pushes the remaining services' config).
  Result<void> remove(const std::string& request_id);

  /// Replaces a deployed request with a modified graph under the same id
  /// (elastic update). On failure the previous version stays deployed.
  Result<void> update(const sg::ServiceGraph& request);

  [[nodiscard]] const std::map<std::string, ServiceRequest>& requests()
      const noexcept {
    return requests_;
  }

  /// Rolled-up NF statuses of a deployed request, keyed by the user's NF
  /// ids (unprefixed).
  [[nodiscard]] Result<std::map<std::string, model::NfStatus>> nf_statuses(
      const std::string& request_id);

  /// True when every NF of the request reports running.
  [[nodiscard]] Result<bool> is_ready(const std::string& request_id);

  /// The view the service orchestrator works against (fetched lazily).
  [[nodiscard]] Result<model::Nffg> view();

 private:
  Result<void> ensure_view();
  Result<void> push_config();
  [[nodiscard]] sg::ServiceGraph merged_active() const;

  std::unique_ptr<adapters::DomainAdapter> client_;
  std::map<std::string, ServiceRequest> requests_;
  std::optional<model::Nffg> view_;
  std::string big_node_;
};

/// Clones `graph` with every NF, link and requirement id prefixed by
/// "<prefix>."; SAP ids are left untouched (SAPs are shared
/// infrastructure).
[[nodiscard]] sg::ServiceGraph prefix_elements(const sg::ServiceGraph& graph,
                                               const std::string& prefix);

}  // namespace unify::service
