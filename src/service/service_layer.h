// Service layer: where users submit service graphs with bandwidth/delay
// requirements (the programmatic stand-in for the paper's GUI, see
// DESIGN.md §2).
//
// The embedded service orchestrator sees the view its Unify client fetches
// from the layer below — normally a single BiS-BiS, making its own mapping
// task trivial (paper §2) — writes the union of all active services onto
// that view as a configuration, and pushes it with edit-config. Element ids
// are prefixed per request ("<request>.<nf>") so services never collide.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adapters/domain_adapter.h"
#include "sg/service_graph.h"
#include "telemetry/metrics.h"
#include "util/result.h"

namespace unify::util {
class OrchestrationPool;
}  // namespace unify::util

namespace unify::service {

/// kDegraded = the service is still admitted (its config stays in every
/// push, it is NOT torn down) but the layer below reports at least one of
/// its NFs failed — typically stranded on a down domain awaiting healing.
enum class RequestState { kDeployed, kDegraded, kFailed, kRemoved };
[[nodiscard]] const char* to_string(RequestState state) noexcept;

struct ServiceRequest {
  std::string id;
  sg::ServiceGraph graph;
  RequestState state = RequestState::kDeployed;
  std::string error;  ///< set when state == kFailed / kDegraded
};

class ServiceLayer {
 public:
  /// `client` speaks the Unify interface to the orchestration layer below
  /// (normally a UnifyClientAdapter; any DomainAdapter works, which also
  /// makes the service layer trivially testable against a fake). `pool`
  /// carries the batch admission work of submit_batch; nullptr selects the
  /// shared process-scoped util::OrchestrationPool — the same pool the RO
  /// below maps batches on, so exactly one pool exists per process.
  explicit ServiceLayer(std::unique_ptr<adapters::DomainAdapter> client,
                        util::OrchestrationPool* pool = nullptr);

  /// Validates and deploys a service request. The request id is the
  /// service graph id. On failure the previous configuration is restored
  /// and the request is recorded as kFailed.
  Result<std::string> submit(const sg::ServiceGraph& request);

  /// Admits, validates and deploys a whole wave of service requests.
  ///
  /// Structural validation fans out on the shared OrchestrationPool, then
  /// the wave is committed optimistically with ONE merged edit-config —
  /// the virtualizer below hands the new services to
  /// ResourceOrchestrator::map_batch, which embeds them in parallel on the
  /// same pool. When the wave push fails (at least one request is
  /// infeasible), the layer falls back to committing the admitted
  /// requests sequentially in request order with per-request rollback, so
  /// a failed request never poisons its batch-mates: the outcome per
  /// request is exactly what a sequential submit() loop would produce.
  ///
  /// Returns one Result per request, index-aligned with `requests`.
  /// Telemetry: service.batch.{requests,admitted,committed,rolled_back}
  /// counters and the service.batch.wall_ms summary in metrics().
  std::vector<Result<std::string>> submit_batch(
      const std::vector<sg::ServiceGraph>& requests);

  /// Tears the service down (pushes the remaining services' config).
  Result<void> remove(const std::string& request_id);

  /// Replaces a deployed request with a modified graph under the same id
  /// (elastic update). On failure the previous version stays deployed.
  Result<void> update(const sg::ServiceGraph& request);

  [[nodiscard]] const std::map<std::string, ServiceRequest>& requests()
      const noexcept {
    return requests_;
  }

  /// Rolled-up NF statuses of a deployed request, keyed by the user's NF
  /// ids (unprefixed).
  [[nodiscard]] Result<std::map<std::string, model::NfStatus>> nf_statuses(
      const std::string& request_id);

  /// True when every NF of the request reports running.
  [[nodiscard]] Result<bool> is_ready(const std::string& request_id);

  /// The view the service orchestrator works against (fetched lazily).
  [[nodiscard]] Result<model::Nffg> view();

  /// Reconciles request states with the health the layer below reports:
  /// a deployed request with any failed NF flips to kDegraded (kept, not
  /// torn down); a degraded one flips back to kDeployed only when all of
  /// its NFs are present below again and none reports failed (absence of
  /// failure evidence alone is not recovery — a torn-down placement would
  /// otherwise read as healthy). Returns the ids currently degraded.
  Result<std::vector<std::string>> sync_health();

  /// After this many consecutive transient push/fetch failures against the
  /// client, submit_batch() probes the layer below before committing a
  /// wave and rejects the batch up front when the probe fails (cheaper
  /// than pushing a doomed wave and unwinding it). 0 disables.
  void set_client_suspect_after(int failures) noexcept {
    client_suspect_after_ = failures;
  }

  /// Batch/deployment counters (service.batch.*).
  [[nodiscard]] telemetry::Registry& metrics() noexcept { return metrics_; }

 private:
  Result<void> ensure_view();
  Result<void> push_config();
  /// Builds the kRollbackFailed error for a failed restore push: the data
  /// plane may diverge from the books, so the cached view is dropped (next
  /// ensure_view() re-fetches ground truth) and both failures surface.
  Error rollback_failed(const char* op, const Error& original,
                        const Error& restore);
  [[nodiscard]] sg::ServiceGraph merged_active() const;
  /// Pure per-request checks (structure + SAP existence against the
  /// fetched view). Thread-safe; submit_batch runs these on the pool.
  [[nodiscard]] std::optional<Error> validate_request(
      const sg::ServiceGraph& request) const;
  /// Records `request` as deployed and pushes; on failure marks it
  /// kFailed and restores the previous configuration. Assumes admission
  /// and validation already passed.
  Result<std::string> commit_one(const sg::ServiceGraph& request);
  [[nodiscard]] util::OrchestrationPool& pool() const noexcept;

  std::unique_ptr<adapters::DomainAdapter> client_;
  util::OrchestrationPool* pool_;
  std::map<std::string, ServiceRequest> requests_;
  std::optional<model::Nffg> view_;
  std::string big_node_;
  /// Consecutive transient push failures against client_ (reset on any
  /// successful push); drives the pre-batch suspect probe.
  int client_failures_ = 0;
  int client_suspect_after_ = 2;
  telemetry::Registry metrics_;
};

/// Clones `graph` with every NF, link and requirement id prefixed by
/// "<prefix>."; SAP ids are left untouched (SAPs are shared
/// infrastructure).
[[nodiscard]] sg::ServiceGraph prefix_elements(const sg::ServiceGraph& graph,
                                               const std::string& prefix);

}  // namespace unify::service
