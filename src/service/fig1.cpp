#include "service/fig1.h"

#include <cstdlib>

#include "adapters/cloud_adapter.h"
#include "adapters/emu_adapter.h"
#include "adapters/pox_controller.h"
#include "adapters/remote_sdn_adapter.h"
#include "adapters/sdn_adapter.h"
#include "adapters/un_adapter.h"
#include "mapping/chain_dp_mapper.h"

namespace unify::service {

namespace {

using model::LinkAttrs;
using model::Resources;

void register_endpoint(Fig1Stack& stack, const std::string& sap,
                       infra::Fabric* fabric, const std::string& endpoint) {
  stack.sap_endpoints[sap].emplace_back(fabric, endpoint);
  stack.endpoint_saps[{fabric, endpoint}] = sap;
}

}  // namespace

Result<std::unique_ptr<Fig1Stack>> make_fig1_stack(Fig1Options options) {
  auto stack = std::make_unique<Fig1Stack>();
  SimClock& clock = stack->clock;

  // ---- Mininet-style emulated domain: sap1 - s1 - s2 - (xp-emu-sdn)
  stack->emu = std::make_unique<infra::EmuNetwork>(clock, "emu");
  infra::EmuNetwork& emu = *stack->emu;
  UNIFY_RETURN_IF_ERROR(emu.add_switch("s1", 4, Resources{4, 4096, 50}));
  UNIFY_RETURN_IF_ERROR(emu.add_switch("s2", 4, Resources{4, 4096, 50}));
  UNIFY_RETURN_IF_ERROR(emu.connect("s1", 1, "s2", 1, {1000, 0.5}));
  UNIFY_RETURN_IF_ERROR(emu.attach_sap("sap1", "s1", 0, {1000, 0.1}));
  UNIFY_RETURN_IF_ERROR(emu.attach_sap("xp-emu-sdn", "s2", 2, {1000, 0.2}));

  // ---- POX-controlled OpenFlow transport: t1 - t2 - t3
  stack->sdn = std::make_unique<infra::SdnNetwork>(clock, "sdn");
  infra::SdnNetwork& sdn = *stack->sdn;
  for (const char* sw : {"t1", "t2", "t3"}) {
    UNIFY_RETURN_IF_ERROR(sdn.add_switch(sw, 4));
  }
  UNIFY_RETURN_IF_ERROR(sdn.connect("t1", 1, "t2", 1, {10000, 0.8}));
  UNIFY_RETURN_IF_ERROR(sdn.connect("t2", 2, "t3", 1, {10000, 0.8}));
  UNIFY_RETURN_IF_ERROR(sdn.attach_sap("xp-emu-sdn", "t1", 0, {1000, 0.2}));
  UNIFY_RETURN_IF_ERROR(sdn.attach_sap("xp-sdn-dc", "t2", 0, {10000, 0.3}));
  UNIFY_RETURN_IF_ERROR(sdn.attach_sap("xp-sdn-un", "t3", 0, {10000, 0.2}));

  // ---- OpenStack + ODL data center: sap2 on ext1, stitch on ext0
  stack->cloud = std::make_unique<infra::Cloud>(clock, "dc");
  infra::Cloud& cloud = *stack->cloud;
  UNIFY_RETURN_IF_ERROR(cloud.add_hypervisor("hv1", {16, 16384, 200}));
  UNIFY_RETURN_IF_ERROR(cloud.add_hypervisor("hv2", {16, 16384, 200}));

  // ---- Universal Node: sap3 on ext1, stitch on ext0
  stack->un = std::make_unique<infra::UniversalNode>(clock, "un",
                                                     Resources{8, 8192, 100});

  // ---- Adapters
  auto emu_adapter = std::make_unique<adapters::EmuAdapter>(emu);
  std::unique_ptr<adapters::DomainAdapter> sdn_adapter;
  if (options.remote_pox) {
    auto [north, south] = proto::make_channel_pair(clock, 150);
    auto controller = std::make_shared<adapters::PoxController>(sdn, south);
    auto remote =
        std::make_unique<adapters::RemoteSdnAdapter>("sdn", north);
    remote->keep_alive(std::move(controller));
    sdn_adapter = std::move(remote);
  } else {
    sdn_adapter = std::make_unique<adapters::SdnAdapter>(sdn);
  }
  auto cloud_adapter = std::make_unique<adapters::CloudAdapter>(cloud);
  cloud_adapter->map_sap(0, "xp-sdn-dc", {10000, 0.3});
  cloud_adapter->map_sap(1, "sap2", {10000, 0.1});
  auto un_adapter = std::make_unique<adapters::UnAdapter>(*stack->un);
  un_adapter->map_sap(0, "xp-sdn-un", {10000, 0.2});
  un_adapter->map_sap(1, "sap3", {10000, 0.1});

  // ---- Resource orchestrator + virtualizer + service layer
  if (options.mapper == nullptr) {
    options.mapper = std::make_shared<mapping::ChainDpMapper>();
  }
  core::RoOptions ro_options;
  ro_options.use_decomposition = options.use_decomposition;
  stack->ro = std::make_unique<core::ResourceOrchestrator>(
      "ro", options.mapper, catalog::default_catalog(), ro_options);
  UNIFY_RETURN_IF_ERROR(stack->ro->add_domain(std::move(emu_adapter)));
  UNIFY_RETURN_IF_ERROR(stack->ro->add_domain(std::move(sdn_adapter)));
  UNIFY_RETURN_IF_ERROR(stack->ro->add_domain(std::move(cloud_adapter)));
  UNIFY_RETURN_IF_ERROR(stack->ro->add_domain(std::move(un_adapter)));
  UNIFY_RETURN_IF_ERROR(stack->ro->initialize());

  stack->virtualizer = std::make_unique<core::Virtualizer>(
      *stack->ro, core::ViewPolicy::kSingleBisBis);
  stack->service_layer = std::make_unique<ServiceLayer>(core::make_unify_link(
      *stack->virtualizer, clock, "ro-north",
      options.unify_channel_latency_us));

  // ---- Endpoint registry for the cross-domain tracer.
  register_endpoint(*stack, "sap1", &emu.fabric(), "sap1");
  register_endpoint(*stack, "xp-emu-sdn", &emu.fabric(), "xp-emu-sdn");
  register_endpoint(*stack, "xp-emu-sdn", &sdn.fabric(), "xp-emu-sdn");
  register_endpoint(*stack, "xp-sdn-dc", &sdn.fabric(), "xp-sdn-dc");
  register_endpoint(*stack, "xp-sdn-un", &sdn.fabric(), "xp-sdn-un");
  register_endpoint(*stack, "xp-sdn-dc", &cloud.fabric(), "ext0");
  register_endpoint(*stack, "sap2", &cloud.fabric(), "ext1");
  register_endpoint(*stack, "xp-sdn-un", &stack->un->fabric(), "ext0");
  register_endpoint(*stack, "sap3", &stack->un->fabric(), "ext1");

  return stack;
}

Result<std::vector<TraceStep>> end_to_end_trace(Fig1Stack& stack,
                                                const std::string& from_sap,
                                                const std::string& expect_sap) {
  const auto start = stack.sap_endpoints.find(from_sap);
  if (start == stack.sap_endpoints.end() || start->second.size() != 1) {
    return Error{ErrorCode::kInvalidArgument,
                 from_sap + " is not a customer SAP"};
  }
  std::vector<TraceStep> steps;
  infra::Fabric* fabric = start->second[0].first;
  std::string endpoint = start->second[0].second;
  std::string tag;
  for (int hop = 0; hop < 64; ++hop) {
    const auto trace = fabric->trace(endpoint, tag);
    if (trace.dropped) {
      return Error{ErrorCode::kInfeasible,
                   "packet dropped after " + std::to_string(steps.size()) +
                       " domains: " + trace.drop_reason};
    }
    const std::string egress_tag =
        trace.hops.empty() ? tag : trace.hops.back().tag_after;
    const auto sap_it =
        stack.endpoint_saps.find({fabric, trace.egress_endpoint});
    if (sap_it == stack.endpoint_saps.end()) {
      // Delivered into an NF port "name:p": model the NF as pass-through,
      // re-injecting untagged at its next port (chains enter NFs at port p
      // and leave at p+1 by the catalog's convention).
      const auto colon = trace.egress_endpoint.rfind(':');
      if (colon != std::string::npos) {
        const std::string nf = trace.egress_endpoint.substr(0, colon);
        const int port = std::atoi(trace.egress_endpoint.c_str() +
                                   static_cast<long>(colon) + 1);
        const std::string out_port =
            nf + ":" + std::to_string(port + 1);
        if (fabric->attachment(out_port).has_value()) {
          steps.push_back(TraceStep{"nf:" + nf, endpoint, out_port,
                                    egress_tag, trace.hops.size()});
          endpoint = out_port;
          tag.clear();
          continue;
        }
      }
      return Error{ErrorCode::kInfeasible,
                   "trace ended inside a domain at " + trace.egress_endpoint};
    }
    steps.push_back(TraceStep{sap_it->second, endpoint,
                              trace.egress_endpoint, egress_tag,
                              trace.hops.size()});
    const std::string& reached_sap = sap_it->second;
    if (reached_sap == expect_sap) return steps;
    // Stitching point: continue in the peer domain.
    const auto& peers = stack.sap_endpoints.at(reached_sap);
    if (peers.size() != 2) {
      return Error{ErrorCode::kInfeasible,
                   "packet exited at unexpected customer SAP " + reached_sap};
    }
    for (const auto& [peer_fabric, peer_endpoint] : peers) {
      if (peer_fabric != fabric) {
        fabric = peer_fabric;
        endpoint = peer_endpoint;
        break;
      }
    }
    tag = egress_tag;
  }
  return Error{ErrorCode::kInfeasible, "trace exceeded domain-hop limit"};
}

}  // namespace unify::service
