#include "service/service_layer.h"

#include <chrono>
#include <functional>
#include <set>

#include "core/config_translate.h"
#include "util/log.h"
#include "util/orchestration_pool.h"

namespace unify::service {

const char* to_string(RequestState state) noexcept {
  switch (state) {
    case RequestState::kQueued:    return "queued";
    case RequestState::kAdmitted:  return "admitted";
    case RequestState::kPostponed: return "postponed";
    case RequestState::kShed:      return "shed";
    case RequestState::kDeployed:  return "deployed";
    case RequestState::kDegraded:  return "degraded";
    case RequestState::kFailed:    return "failed";
    case RequestState::kRemoved:   return "removed";
  }
  return "unknown";
}

namespace {
/// A request that still owns southbound resources: its config must stay in
/// every push (degraded services are kept running wherever they still run,
/// never torn down by a reconciliation push).
bool is_active(RequestState state) noexcept {
  return state == RequestState::kDeployed || state == RequestState::kDegraded;
}
}  // namespace

sg::ServiceGraph prefix_elements(const sg::ServiceGraph& graph,
                                 const std::string& prefix) {
  sg::ServiceGraph out{graph.id(), graph.name()};
  for (const auto& [sap_id, name] : graph.saps()) {
    (void)out.add_sap(sap_id, name);
  }
  for (const auto& [nf_id, nf] : graph.nfs()) {
    sg::SgNf copy = nf;
    copy.id = prefix + "." + nf_id;
    (void)out.add_nf(std::move(copy));
  }
  const auto map_ref = [&](const model::PortRef& ref) {
    if (graph.has_sap(ref.node)) return ref;
    return model::PortRef{prefix + "." + ref.node, ref.port};
  };
  for (const sg::SgLink& link : graph.links()) {
    (void)out.add_link(sg::SgLink{prefix + "." + link.id, map_ref(link.from),
                                  map_ref(link.to), link.bandwidth});
  }
  for (const sg::E2eRequirement& req : graph.requirements()) {
    sg::E2eRequirement copy = req;
    copy.id = prefix + "." + req.id;
    (void)out.add_requirement(std::move(copy));
  }
  for (const sg::PlacementConstraint& c : graph.constraints()) {
    sg::PlacementConstraint copy = c;
    copy.nf_a = prefix + "." + c.nf_a;
    if (!c.nf_b.empty()) copy.nf_b = prefix + "." + c.nf_b;
    (void)out.add_constraint(std::move(copy));
  }
  return out;
}

ServiceLayer::ServiceLayer(std::unique_ptr<adapters::DomainAdapter> client,
                           util::OrchestrationPool* pool)
    : client_(std::move(client)), pool_(pool) {}

util::OrchestrationPool& ServiceLayer::pool() const noexcept {
  return pool_ != nullptr ? *pool_ : util::OrchestrationPool::process_pool();
}

Result<void> ServiceLayer::ensure_view() {
  if (view_.has_value()) return Result<void>::success();
  UNIFY_ASSIGN_OR_RETURN(model::Nffg view, client_->fetch_view());
  if (view.bisbis().size() != 1) {
    // Multi-node views are fine in principle, but this service
    // orchestrator implements the paper's trivial single-BiS-BiS case.
    return Error{ErrorCode::kInvalidArgument,
                 "service layer expects a single-BiS-BiS view, got " +
                     std::to_string(view.bisbis().size()) + " nodes"};
  }
  // The view is the config BASE: the layer re-derives every active
  // service's NFs, flowrules and hints itself (merged_active), so any the
  // layer below still reports — e.g. on a re-fetch after a failed
  // rollback — must be stripped or the rebuild would collide with them.
  view.clear_service_state();
  big_node_ = view.bisbis().begin()->first;
  view_ = std::move(view);
  return Result<void>::success();
}

Result<model::Nffg> ServiceLayer::view() {
  UNIFY_RETURN_IF_ERROR(ensure_view());
  return *view_;
}

sg::ServiceGraph ServiceLayer::merged_active() const {
  sg::ServiceGraph merged{"active-services"};
  for (const auto& [id, request] : requests_) {
    if (!is_active(request.state)) continue;
    const sg::ServiceGraph prefixed = prefix_elements(request.graph, id);
    for (const auto& [sap_id, name] : prefixed.saps()) {
      if (!merged.has_sap(sap_id)) (void)merged.add_sap(sap_id, name);
    }
    for (const auto& [nf_id, nf] : prefixed.nfs()) {
      (void)merged.add_nf(nf);
    }
    for (const sg::SgLink& link : prefixed.links()) {
      (void)merged.add_link(link);
    }
    for (const sg::E2eRequirement& req : prefixed.requirements()) {
      (void)merged.add_requirement(req);
    }
    for (const sg::PlacementConstraint& c : prefixed.constraints()) {
      (void)merged.add_constraint(c);
    }
  }
  return merged;
}

Result<void> ServiceLayer::push_config() {
  // Re-fetches the view when a failed rollback dropped it (rollback_failed).
  UNIFY_RETURN_IF_ERROR(ensure_view());
  UNIFY_ASSIGN_OR_RETURN(
      const model::Nffg config,
      core::service_graph_to_config(merged_active(), *view_, big_node_));
  // Transactional push: issue the edit-config, then block on the ack. The
  // split buys nothing for a single southbound client yet, but keeps the
  // service layer on the same contract the RO drives its domains with.
  const auto pushed = [&]() -> Result<void> {
    UNIFY_ASSIGN_OR_RETURN(const adapters::PushTicket ticket,
                           client_->begin_apply(config));
    return client_->await(ticket);
  }();
  if (pushed.ok()) {
    client_failures_ = 0;
  } else if (pushed.error().code == ErrorCode::kUnavailable ||
             pushed.error().code == ErrorCode::kTimeout) {
    ++client_failures_;
  }
  return pushed;
}

Error ServiceLayer::rollback_failed(const char* op, const Error& original,
                                    const Error& restore) {
  // The restore push did not land: whatever the layer below is actually
  // running may no longer match merged_active(). Drop the cached view so
  // the next operation re-fetches ground truth, and surface both failures
  // under kRollbackFailed so the caller knows the data plane may diverge.
  view_.reset();
  metrics_.add("service.rollback_failures");
  UNIFY_LOG(kError, "service")
      << op << " rollback push failed: " << restore.to_string();
  return Error{ErrorCode::kRollbackFailed,
               std::string(op) + " failed (" + original.to_string() +
                   ") AND the restore push failed (" + restore.to_string() +
                   "): data plane may diverge from the service books"};
}

std::optional<Error> ServiceLayer::validate_request(
    const sg::ServiceGraph& request) const {
  if (const auto problems = request.validate(); !problems.empty()) {
    return Error{ErrorCode::kInvalidArgument, problems.front()};
  }
  // Every SAP the user references must exist in the view.
  for (const auto& [sap_id, name] : request.saps()) {
    if (view_->find_sap(sap_id) == nullptr) {
      return Error{ErrorCode::kNotFound,
                   "SAP " + sap_id + " unknown to the orchestration layer"};
    }
  }
  return std::nullopt;
}

Result<std::string> ServiceLayer::commit_one(const sg::ServiceGraph& request) {
  requests_.emplace(request.id(), ServiceRequest{request.id(), request,
                                                 RequestState::kDeployed, ""});
  if (const auto pushed = push_config(); !pushed.ok()) {
    // Roll back: mark failed and restore the previous configuration.
    ServiceRequest& failed = requests_.at(request.id());
    failed.state = RequestState::kFailed;
    failed.error = pushed.error().to_string();
    if (const auto restore = push_config(); !restore.ok()) {
      return rollback_failed("deployment", pushed.error(), restore.error());
    }
    return Error{pushed.error().code,
                 "deployment of " + request.id() +
                     " failed: " + pushed.error().message};
  }
  UNIFY_LOG(kInfo, "service") << "request " << request.id() << " deployed";
  return request.id();
}

Result<std::string> ServiceLayer::submit(const sg::ServiceGraph& request) {
  UNIFY_RETURN_IF_ERROR(ensure_view());
  if (request.id().empty()) {
    return Error{ErrorCode::kInvalidArgument, "service graph needs an id"};
  }
  if (const auto it = requests_.find(request.id());
      it != requests_.end()) {
    if (it->second.state == RequestState::kDeployed) {
      return Error{ErrorCode::kAlreadyExists, "request " + request.id()};
    }
    requests_.erase(it);  // failed/removed ids may be reused
  }
  if (auto invalid = validate_request(request); invalid.has_value()) {
    return *std::move(invalid);
  }
  return commit_one(request);
}

std::vector<Result<std::string>> ServiceLayer::submit_batch(
    const std::vector<sg::ServiceGraph>& requests) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<Result<std::string>> results;
  results.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results.emplace_back(Error{ErrorCode::kInternal, "request not processed"});
  }
  if (requests.empty()) return results;
  metrics_.add("service.batch.requests", requests.size());

  if (const auto ready = ensure_view(); !ready.ok()) {
    for (auto& result : results) result = ready.error();
    return results;
  }

  // Phase 1 — admission. Id bookkeeping reads/mutates requests_ and runs
  // inline; the per-request structural validation and SAP checks are pure
  // against the fetched view and fan out on the shared pool.
  std::vector<bool> admitted(requests.size(), false);
  std::vector<std::optional<Error>> invalid(requests.size());
  std::vector<std::function<void()>> checks;
  std::set<std::string> batch_ids;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const sg::ServiceGraph& request = requests[i];
    if (request.id().empty()) {
      results[i] = Error{ErrorCode::kInvalidArgument,
                         "service graph needs an id"};
      continue;
    }
    if (!batch_ids.insert(request.id()).second) {
      results[i] = Error{ErrorCode::kAlreadyExists,
                         "request " + request.id() +
                             " duplicated within the batch"};
      continue;
    }
    if (const auto it = requests_.find(request.id()); it != requests_.end()) {
      if (it->second.state == RequestState::kDeployed) {
        results[i] = Error{ErrorCode::kAlreadyExists, "request " + request.id()};
        continue;
      }
      requests_.erase(it);  // failed/removed ids may be reused
    }
    admitted[i] = true;
    checks.push_back([this, &requests, &invalid, i] {
      invalid[i] = validate_request(requests[i]);
    });
  }
  pool().run_all(std::move(checks));
  std::size_t admitted_count = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!admitted[i]) continue;
    if (invalid[i].has_value()) {
      results[i] = *invalid[i];
      admitted[i] = false;
      continue;
    }
    ++admitted_count;
  }
  metrics_.add("service.batch.admitted", admitted_count);
  metrics_.set_gauge("service.batch.pools_constructed",
                     static_cast<double>(util::OrchestrationPool::constructed()));

  const auto finish = [&] {
    const auto wall = std::chrono::steady_clock::now() - wall_start;
    metrics_.summary("service.batch.wall_ms")
        .observe(std::chrono::duration<double, std::milli>(wall).count());
    return results;
  };
  if (admitted_count == 0) return finish();

  // The layer below has been failing transiently: one cheap probe decides
  // whether to commit the wave at all. Rejecting up front is much cheaper
  // than pushing a doomed merged config and unwinding it per request.
  if (client_suspect_after_ > 0 && client_failures_ >= client_suspect_after_) {
    metrics_.add("service.health.probes");
    if (const auto probed = client_->probe(); !probed.ok()) {
      metrics_.add("service.health.batches_rejected");
      const Error rejected{ErrorCode::kUnavailable,
                           "orchestration layer unhealthy (" +
                               std::to_string(client_failures_) +
                               " consecutive push failures; probe: " +
                               probed.error().to_string() + ")"};
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (admitted[i]) results[i] = rejected;
      }
      return finish();
    }
    client_failures_ = 0;
  }

  // Phase 2 — optimistic wave commit: one merged edit-config carries every
  // admitted request; the virtualizer below deploys the wave's services
  // through ResourceOrchestrator::map_batch (parallel embedding on the
  // same shared pool). Commit order inside the wave is deterministic.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!admitted[i]) continue;
    requests_.emplace(requests[i].id(),
                      ServiceRequest{requests[i].id(), requests[i],
                                     RequestState::kDeployed, ""});
  }
  const auto pushed_wave = push_config();
  if (pushed_wave.ok()) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (admitted[i]) results[i] = requests[i].id();
    }
    metrics_.add("service.batch.committed", admitted_count);
    UNIFY_LOG(kInfo, "service")
        << "batch of " << admitted_count << " requests deployed in one wave";
    return finish();
  }

  // Phase 3 — the wave contains at least one poisonous request. Withdraw
  // it entirely, restore the pre-batch configuration, then BISECT: merged
  // half-waves committed in request order isolate the poison in
  // O(bad * log n) pushes instead of a full per-request sequential replay,
  // with per-request outcomes (and final state, byte for byte) exactly
  // what a sequential submit() loop would produce.
  metrics_.add("service.batch.wave_fallbacks");
  const Error wave_error = pushed_wave.error();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (admitted[i]) requests_.erase(requests[i].id());
  }
  if (const auto restore = push_config(); !restore.ok()) {
    // The pre-batch config did not come back: every admitted request fails
    // with the rollback context instead of entering the bisection fallback
    // against a data plane in an unknown state.
    const Error failure =
        rollback_failed("batch wave", wave_error, restore.error());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (admitted[i]) results[i] = failure;
    }
    metrics_.add("service.batch.rolled_back", admitted_count);
    return finish();
  }
  std::vector<std::size_t> admitted_indices;
  admitted_indices.reserve(admitted_count);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (admitted[i]) admitted_indices.push_back(i);
  }
  std::size_t committed = 0, rolled_back = 0;
  if (!commit_wave_bisect(requests, admitted_indices, results, committed,
                          rolled_back)) {
    // A restore push failed mid-bisection: everything not yet decided
    // fails with the divergence context instead of committing against a
    // data plane in an unknown state.
    const Error aborted{ErrorCode::kRollbackFailed,
                        "batch aborted: a restore push failed mid-fallback "
                        "(data plane may diverge from the service books)"};
    for (const std::size_t i : admitted_indices) {
      if (!results[i].ok() && results[i].error().code == ErrorCode::kInternal) {
        results[i] = aborted;
        ++rolled_back;
      }
    }
  }
  metrics_.add("service.batch.committed", committed);
  metrics_.add("service.batch.rolled_back", rolled_back);
  return finish();
}

bool ServiceLayer::commit_wave_bisect(
    const std::vector<sg::ServiceGraph>& requests,
    const std::vector<std::size_t>& indices,
    std::vector<Result<std::string>>& results, std::size_t& committed,
    std::size_t& rolled_back) {
  // Precondition: a merged push of `indices` as one wave has already
  // failed and the pre-wave configuration is restored — go straight to
  // the ordered halves (re-probing the whole set would always fail again).
  if (indices.size() == 1) {
    const std::size_t i = indices.front();
    results[i] = commit_one(requests[i]);
    ++(results[i].ok() ? committed : rolled_back);
    return true;
  }
  const std::size_t half = indices.size() / 2;
  const std::vector<std::size_t> halves[2] = {
      {indices.begin(), indices.begin() + static_cast<long>(half)},
      {indices.begin() + static_cast<long>(half), indices.end()}};
  for (const std::vector<std::size_t>& part : halves) {
    if (part.size() == 1) {
      const std::size_t i = part.front();
      results[i] = commit_one(requests[i]);
      ++(results[i].ok() ? committed : rolled_back);
      continue;
    }
    // Optimistic merged push of this half on top of the committed state so
    // far (the same commit point a sequential loop would have reached).
    metrics_.add("service.batch.bisect_probes");
    for (const std::size_t i : part) {
      requests_.emplace(requests[i].id(),
                        ServiceRequest{requests[i].id(), requests[i],
                                       RequestState::kDeployed, ""});
    }
    const auto pushed = push_config();
    if (pushed.ok()) {
      for (const std::size_t i : part) results[i] = requests[i].id();
      committed += part.size();
      metrics_.add("service.batch.bisect_waves");
      continue;
    }
    // Withdraw the half, restore, recurse.
    const Error part_error = pushed.error();
    for (const std::size_t i : part) requests_.erase(requests[i].id());
    if (const auto restore = push_config(); !restore.ok()) {
      const Error failure =
          rollback_failed("batch wave", part_error, restore.error());
      for (const std::size_t i : part) results[i] = failure;
      rolled_back += part.size();
      return false;
    }
    if (!commit_wave_bisect(requests, part, results, committed,
                            rolled_back)) {
      return false;
    }
  }
  return true;
}

void ServiceLayer::record_outcome(const AdmissionEntry& entry,
                                  RequestState state, std::string error) {
  ServiceRequest& request = requests_[entry.graph.id()];
  request.id = entry.graph.id();
  request.graph = entry.graph;
  request.state = state;
  request.error = std::move(error);
}

bool ServiceLayer::should_postpone(const Error& error,
                                   const BelowHealth& below) const {
  // Transient transport failures always park: the substrate answered
  // nothing, not "no". Capacity/feasibility failures park only while the
  // health source says the substrate is impaired — masked-out capacity may
  // come back with the domain; on a healthy substrate the same answer is
  // final.
  if (error.code == ErrorCode::kUnavailable ||
      error.code == ErrorCode::kTimeout) {
    return true;
  }
  if (!below.impaired) return false;
  return error.code == ErrorCode::kInfeasible ||
         error.code == ErrorCode::kResourceExhausted ||
         error.code == ErrorCode::kRejected;
}

Result<void> ServiceLayer::enqueue(const sg::ServiceGraph& request,
                                   SimTime now,
                                   const AdmissionOptions& options) {
  if (request.id().empty()) {
    return Error{ErrorCode::kInvalidArgument, "service graph needs an id"};
  }
  if (const auto it = requests_.find(request.id()); it != requests_.end()) {
    switch (it->second.state) {
      case RequestState::kQueued:
      case RequestState::kAdmitted:
      case RequestState::kPostponed:
      case RequestState::kDeployed:
      case RequestState::kDegraded:
        return Error{ErrorCode::kAlreadyExists, "request " + request.id()};
      case RequestState::kShed:
      case RequestState::kFailed:
      case RequestState::kRemoved:
        requests_.erase(it);  // terminal ids may be reused
    }
  }
  metrics_.add("service.admission.enqueued");
  AdmissionEntry entry{request, options.klass, now, options.deadline,
                       admission_seq_++};
  auto pushed = queue_.push(entry);
  if (pushed.outcome == AdmissionQueue::PushOutcome::kRejected) {
    metrics_.add("service.admission.shed_queue_full");
    record_outcome(entry, RequestState::kShed,
                   "shed: admission queue full (" +
                       std::to_string(queue_.capacity()) + ")");
    return Error{ErrorCode::kResourceExhausted,
                 "admission queue full, request " + request.id() + " shed"};
  }
  if (pushed.displaced.has_value()) {
    metrics_.add("service.admission.shed_displaced");
    record_outcome(*pushed.displaced, RequestState::kShed,
                   "shed: displaced by " + request.id() + " (" +
                       std::string(to_string(entry.klass)) + " class)");
  }
  record_outcome(entry, RequestState::kQueued, "");
  return Result<void>::success();
}

PumpReport ServiceLayer::pump(SimTime now) {
  ++pump_count_;
  PumpReport report;
  const BelowHealth below =
      health_source_ ? health_source_() : BelowHealth{};

  // 1. Parked requests: a health transition below (readmission — or a
  //    further kill, either way the world changed) re-queues everything;
  //    the pump-count backstop re-queues long-parked entries even without
  //    a health source. Deadlines keep ticking while parked.
  std::vector<Parked> keep;
  keep.reserve(parked_.size());
  for (Parked& parked : parked_) {
    const std::string id = parked.entry.graph.id();
    if (parked.entry.deadline != 0 &&
        parked.entry.deadline <= now + admission_.dispatch_margin_us) {
      metrics_.add("service.admission.shed_deadline");
      record_outcome(parked.entry, RequestState::kShed,
                     "shed: deadline expired while parked");
      ++report.shed;
      continue;
    }
    const bool transitioned =
        health_source_ && parked.fingerprint != below.fingerprint;
    const bool backstop =
        admission_.postpone_retry_pumps > 0 &&
        pump_count_ - parked.parked_at_pump >=
            static_cast<std::uint64_t>(admission_.postpone_retry_pumps);
    if (!transitioned && !backstop) {
      keep.push_back(std::move(parked));
      continue;
    }
    auto pushed = queue_.push(parked.entry);
    if (pushed.outcome == AdmissionQueue::PushOutcome::kRejected) {
      metrics_.add("service.admission.shed_queue_full");
      record_outcome(parked.entry, RequestState::kShed,
                     "shed: queue full at readmission retry");
      ++report.shed;
      continue;
    }
    if (pushed.displaced.has_value()) {
      metrics_.add("service.admission.shed_displaced");
      record_outcome(*pushed.displaced, RequestState::kShed,
                     "shed: displaced by retried " + id);
      ++report.shed;
    }
    requests_.at(id).state = RequestState::kQueued;
    metrics_.add("service.admission.requeued");
    ++report.requeued;
  }
  parked_ = std::move(keep);

  // 2. Shed-before-deadline-violation: entries that could no longer be
  //    dispatched AND land within their deadline are dropped up front.
  std::vector<AdmissionEntry> expired;
  queue_.shed_expired(now, admission_.dispatch_margin_us, expired);
  for (const AdmissionEntry& entry : expired) {
    metrics_.add("service.admission.shed_deadline");
    record_outcome(entry, RequestState::kShed,
                   "shed: deadline expired before dispatch");
  }
  report.shed += expired.size();

  // 3. Dispatch one bounded wave through submit_batch (merged push with
  //    bisection fallback — the same pipeline inline submissions ride).
  std::vector<AdmissionEntry> wave = queue_.pop_wave(admission_.max_wave);
  report.dispatched = wave.size();
  if (!wave.empty()) {
    metrics_.add("service.admission.dispatched", wave.size());
    std::vector<sg::ServiceGraph> graphs;
    graphs.reserve(wave.size());
    for (const AdmissionEntry& entry : wave) {
      requests_.at(entry.graph.id()).state = RequestState::kAdmitted;
      graphs.push_back(entry.graph);
    }
    const auto results = submit_batch(graphs);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      AdmissionEntry& entry = wave[i];
      if (results[i].ok()) {
        ++report.deployed;
        metrics_.add("service.admission.deployed");
        metrics_.observe(
            "service.admission.latency_ms",
            static_cast<double>(now - entry.enqueued_at) / 1000.0);
      } else if (should_postpone(results[i].error(), below)) {
        ++report.postponed;
        metrics_.add("service.admission.postponed");
        record_outcome(entry, RequestState::kPostponed,
                       results[i].error().to_string());
        parked_.push_back(
            Parked{std::move(entry), below.fingerprint, pump_count_});
      } else {
        ++report.failed;
        metrics_.add("service.admission.failed");
        record_outcome(entry, RequestState::kFailed,
                       results[i].error().to_string());
      }
    }
  }
  metrics_.set_gauge("service.admission.queue_depth",
                     static_cast<double>(queue_.size()));
  metrics_.set_gauge("service.admission.parked",
                     static_cast<double>(parked_.size()));
  return report;
}

std::vector<Result<void>> ServiceLayer::remove_batch(
    const std::vector<std::string>& request_ids) {
  std::vector<Result<void>> results(request_ids.size(),
                                    Result<void>::success());
  // index into request_ids -> state to restore on a failed push
  std::vector<std::pair<std::size_t, RequestState>> flipped;
  for (std::size_t i = 0; i < request_ids.size(); ++i) {
    const std::string& id = request_ids[i];
    const auto it = requests_.find(id);
    if (it == requests_.end()) {
      results[i] = Error{ErrorCode::kNotFound, "active request " + id};
      continue;
    }
    switch (it->second.state) {
      case RequestState::kQueued:
      case RequestState::kPostponed:
        // Cancel: never reached the substrate, no push needed.
        (void)queue_.erase(id);
        for (auto p = parked_.begin(); p != parked_.end(); ++p) {
          if (p->entry.graph.id() == id) {
            parked_.erase(p);
            break;
          }
        }
        it->second.state = RequestState::kRemoved;
        it->second.error.clear();
        metrics_.add("service.admission.cancelled");
        break;
      case RequestState::kDeployed:
      case RequestState::kDegraded:
        flipped.emplace_back(i, it->second.state);
        it->second.state = RequestState::kRemoved;
        break;
      default:
        results[i] = Error{ErrorCode::kNotFound, "active request " + id};
    }
  }
  if (flipped.empty()) return results;
  if (const auto pushed = push_config(); !pushed.ok()) {
    for (const auto& [i, prior] : flipped) {
      requests_.at(request_ids[i]).state = prior;  // keep books consistent
      results[i] = pushed.error();
    }
    return results;
  }
  metrics_.add("service.batch.removed", flipped.size());
  return results;
}

Result<void> ServiceLayer::update(const sg::ServiceGraph& request) {
  UNIFY_RETURN_IF_ERROR(ensure_view());
  const auto it = requests_.find(request.id());
  if (it == requests_.end() ||
      it->second.state != RequestState::kDeployed) {
    return Error{ErrorCode::kNotFound, "active request " + request.id()};
  }
  if (const auto problems = request.validate(); !problems.empty()) {
    return Error{ErrorCode::kInvalidArgument, problems.front()};
  }
  for (const auto& [sap_id, name] : request.saps()) {
    if (view_->find_sap(sap_id) == nullptr) {
      return Error{ErrorCode::kNotFound,
                   "SAP " + sap_id + " unknown to the orchestration layer"};
    }
  }
  const sg::ServiceGraph previous = it->second.graph;
  it->second.graph = request;
  if (const auto pushed = push_config(); !pushed.ok()) {
    it->second.graph = previous;  // keep the old version running
    if (const auto restore = push_config(); !restore.ok()) {
      return rollback_failed("update", pushed.error(), restore.error());
    }
    return Error{pushed.error().code,
                 "update of " + request.id() +
                     " failed (previous version kept): " +
                     pushed.error().message};
  }
  return Result<void>::success();
}

Result<void> ServiceLayer::remove(const std::string& request_id) {
  const auto it = requests_.find(request_id);
  if (it != requests_.end() &&
      (it->second.state == RequestState::kQueued ||
       it->second.state == RequestState::kPostponed)) {
    // Cancel: the request never reached the substrate, no push needed.
    (void)queue_.erase(request_id);
    for (auto p = parked_.begin(); p != parked_.end(); ++p) {
      if (p->entry.graph.id() == request_id) {
        parked_.erase(p);
        break;
      }
    }
    it->second.state = RequestState::kRemoved;
    it->second.error.clear();
    metrics_.add("service.admission.cancelled");
    return Result<void>::success();
  }
  if (it == requests_.end() || !is_active(it->second.state)) {
    return Error{ErrorCode::kNotFound, "active request " + request_id};
  }
  const RequestState before = it->second.state;
  it->second.state = RequestState::kRemoved;
  if (const auto pushed = push_config(); !pushed.ok()) {
    it->second.state = before;  // keep books consistent
    return pushed;
  }
  return Result<void>::success();
}

Result<std::vector<std::string>> ServiceLayer::sync_health() {
  UNIFY_ASSIGN_OR_RETURN(const model::Nffg config, client_->fetch_view());
  // Collect per-request failure evidence from the rolled-up view: any NF
  // with this request's prefix reporting kFailed degrades the request.
  // Present NFs are tracked too: restoring a degraded request needs all of
  // its NFs back in the view, not merely an absence of kFailed evidence (a
  // placement torn down below would otherwise read as "recovered").
  std::set<std::string> failed_requests;
  std::set<std::string> present_nfs;
  for (const auto& [bb_id, bb] : config.bisbis()) {
    for (const auto& [nf_id, nf] : bb.nfs) {
      present_nfs.insert(nf_id);
      if (nf.status != model::NfStatus::kFailed) continue;
      const auto dot = nf_id.find('.');
      if (dot == std::string::npos) continue;
      failed_requests.insert(nf_id.substr(0, dot));
    }
  }
  const auto all_nfs_present = [&](const ServiceRequest& request) {
    for (const auto& [nf_id, nf] : request.graph.nfs()) {
      const std::string exact = request.id + "." + nf_id;
      if (present_nfs.count(exact) != 0) continue;
      // Decomposition installs "<nf>.<component>" instead of "<nf>".
      const std::string expanded = exact + ".";
      const auto it = present_nfs.lower_bound(expanded);
      if (it == present_nfs.end() || !strings::starts_with(*it, expanded)) {
        return false;
      }
    }
    return true;
  };
  std::vector<std::string> degraded;
  for (auto& [id, request] : requests_) {
    if (request.state == RequestState::kDeployed &&
        failed_requests.count(id) != 0) {
      request.state = RequestState::kDegraded;
      request.error = "NF failure reported by the orchestration layer";
      metrics_.add("service.health.degraded");
      UNIFY_LOG(kWarn, "service") << "request " << id << " degraded";
    } else if (request.state == RequestState::kDegraded &&
               failed_requests.count(id) == 0 && all_nfs_present(request)) {
      request.state = RequestState::kDeployed;
      request.error.clear();
      metrics_.add("service.health.restored");
      UNIFY_LOG(kInfo, "service") << "request " << id << " restored";
    }
    if (request.state == RequestState::kDegraded) degraded.push_back(id);
  }
  return degraded;
}

Result<std::map<std::string, model::NfStatus>> ServiceLayer::nf_statuses(
    const std::string& request_id) {
  const auto it = requests_.find(request_id);
  if (it == requests_.end() || !is_active(it->second.state)) {
    return Error{ErrorCode::kNotFound, "active request " + request_id};
  }
  UNIFY_ASSIGN_OR_RETURN(const model::Nffg config, client_->fetch_view());
  std::map<std::string, model::NfStatus> out;
  const std::string prefix = request_id + ".";
  for (const auto& [bb_id, bb] : config.bisbis()) {
    for (const auto& [nf_id, nf] : bb.nfs) {
      if (strings::starts_with(nf_id, prefix)) {
        out.emplace(nf_id.substr(prefix.size()), nf.status);
      }
    }
  }
  return out;
}

Result<bool> ServiceLayer::is_ready(const std::string& request_id) {
  UNIFY_ASSIGN_OR_RETURN(const auto statuses, nf_statuses(request_id));
  for (const auto& [nf, status] : statuses) {
    if (status != model::NfStatus::kRunning) return false;
  }
  return true;
}

}  // namespace unify::service
