#include "service/churn_driver.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "catalog/nf_catalog.h"
#include "core/unify_api.h"
#include "mapping/chain_dp_mapper.h"
#include "model/nffg_builder.h"
#include "sg/service_graph.h"

namespace unify::service {
namespace {

/// The NF type pool churn chains draw from (all in the default catalog).
const std::vector<std::string>& nf_type_pool() {
  static const std::vector<std::string> kPool{"nat", "fw-lite", "dpi"};
  return kPool;
}

/// Accept-all domain that replays the last accepted slice and flags any
/// overcommitted slice it is asked to apply (the occupancy-conservation
/// SLO: make-before-break means no domain ever sees residual < 0).
class AcceptAllDomain final : public adapters::DomainAdapter {
 public:
  AcceptAllDomain(std::string name, model::Nffg view, bool* overcommit)
      : name_(std::move(name)), view_(std::move(view)),
        overcommit_(overcommit) {}
  [[nodiscard]] const std::string& domain() const noexcept override {
    return name_;
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override {
    if (applies_ == 0) return view_;
    return last_applied_;
  }
  Result<void> apply(const model::Nffg& desired) override {
    ++applies_;
    for (const auto& [bb_id, bb] : desired.bisbis()) {
      const model::Resources res = bb.residual();
      if (res.cpu < -1e-9 || res.mem < -1e-9 || res.storage < -1e-9) {
        *overcommit_ = true;
      }
    }
    last_applied_ = desired;
    return Result<void>::success();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return applies_;
  }

 private:
  std::string name_;
  model::Nffg view_;
  model::Nffg last_applied_;
  std::uint64_t applies_ = 0;
  bool* overcommit_;
};

/// Domain i of an n-domain line: customer SAP sap<i>, stitch SAPs
/// x<i-1>/x<i> towards the neighbours (the chaos soak topology).
model::Nffg churn_domain_view(std::size_t i, std::size_t n) {
  const std::string bb = "bb" + std::to_string(i);
  model::Nffg g{bb + "-view"};
  // Sized so the default scenario's steady-state live population (~30
  // chains) fits with headroom: overload then comes from flash crowds and
  // maintenance (exercising the queue bound), not permanent saturation.
  (void)g.add_bisbis(model::make_bisbis(bb, {128, 65536, 1600}, 6));
  model::attach_sap(g, "sap" + std::to_string(i), bb, 0, {1000, 0.1});
  if (i > 0) {
    model::attach_sap(g, "x" + std::to_string(i - 1), bb, 1, {1000, 0.5});
  }
  if (i + 1 < n) {
    model::attach_sap(g, "x" + std::to_string(i), bb, 2, {1000, 0.5});
  }
  return g;
}

/// Turns an abstract ChainSpec into a concrete service graph against the
/// line topology's SAP names and the catalog's NF types.
sg::ServiceGraph materialize(const std::string& id,
                             const infra::churn::ChainSpec& chain,
                             std::size_t n_domains) {
  const auto& pool = nf_type_pool();
  const auto sap = [n_domains](int index) {
    return "sap" + std::to_string(static_cast<std::size_t>(index) % n_domains);
  };
  std::vector<std::string> nfs;
  nfs.reserve(chain.nf_types.size());
  for (const int type : chain.nf_types) {
    nfs.push_back(pool[static_cast<std::size_t>(type) % pool.size()]);
  }
  return sg::make_chain(id, sap(chain.src_sap), nfs, sap(chain.dst_sap),
                        chain.bandwidth, chain.max_delay_ms);
}

}  // namespace

ChurnStack::ChurnStack(std::size_t n_domains, const AdmissionPolicy& policy)
    : domains(n_domains) {
  ro = std::make_unique<core::ResourceOrchestrator>(
      "ro", std::make_shared<mapping::ChainDpMapper>(),
      catalog::default_catalog());
  for (std::size_t i = 0; i < n_domains; ++i) {
    auto faulty = std::make_unique<adapters::FaultyAdapter>(
        std::make_unique<AcceptAllDomain>("d" + std::to_string(i),
                                          churn_domain_view(i, n_domains),
                                          &overcommit_seen));
    faults.push_back(faulty.get());
    (void)ro->add_domain(std::move(faulty));
  }
  (void)ro->initialize();
  virtualizer = std::make_unique<core::Virtualizer>(
      *ro, core::ViewPolicy::kSingleBisBis);
  layer = std::make_unique<ServiceLayer>(
      core::make_unify_link(*virtualizer, clock, "north"));
  layer->set_admission_policy(policy);
  layer->set_health_source([ro = ro.get()] {
    return BelowHealth{ro->health().state_fingerprint(),
                       ro->health().any_unhealthy()};
  });
}

ChurnRunReport run_churn(ChurnStack& stack,
                         const infra::churn::ScenarioSpec& spec,
                         std::uint64_t seed, SimTime pump_period_us,
                         const ChurnTickFn& on_tick) {
  infra::churn::ChurnEngine engine(spec, seed);
  ChurnRunReport report;
  std::vector<std::string> departures;  ///< buffered until the next tick
  // Engine service id -> current layer id: a migration retires the old
  // placement and re-embeds under "<id>m", so later engine events (the
  // departure, another storm) must chase the alias.
  std::map<std::string, std::string> alias;
  SimTime next_pump = pump_period_us;

  // Make-before-break SLO: a heal pass must never reduce the placed
  // deployment count, and never have released-but-not-yet-replaced
  // capacity in flight.
  const auto heal_checked = [&] {
    const std::size_t placed_before = stack.ro->deployments().size();
    const auto healed = stack.ro->heal();
    if (!healed.ok()) return;
    if (stack.ro->deployments().size() < placed_before ||
        healed->max_capacity_dip_cpu > 0.0) {
      report.heal_shrank = true;
    }
  };

  const auto flush_and_pump = [&](SimTime t) {
    if (!departures.empty()) {
      const auto results = stack.layer->remove_batch(departures);
      for (const auto& result : results) {
        if (result.ok()) ++report.removed;
      }
      departures.clear();
    }
    const PumpReport pumped = stack.layer->pump(t);
    ++report.pumps;
    report.deployed += pumped.deployed;
    report.failed += pumped.failed;
    report.max_queue_depth =
        std::max(report.max_queue_depth, stack.layer->queue_depth());
    report.max_parked =
        std::max(report.max_parked, stack.layer->parked_count());
    report.peak_deployed =
        std::max(report.peak_deployed, stack.ro->deployments().size());
    if (on_tick) on_tick(stack, t, pumped);
  };

  while (auto event = engine.next()) {
    while (next_pump <= event->at) {
      flush_and_pump(next_pump);
      next_pump += pump_period_us;
    }
    switch (event->kind) {
      case infra::churn::EventKind::kArrival: {
        const sg::ServiceGraph graph =
            materialize(event->service_id, event->chain, stack.domains);
        AdmissionOptions options;
        options.deadline = event->deadline;
        if (stack.layer->enqueue(graph, event->at, options).ok()) {
          ++report.enqueued;
        }
        break;
      }
      case infra::churn::EventKind::kDeparture: {
        const auto it = alias.find(event->service_id);
        departures.push_back(it == alias.end() ? event->service_id
                                               : it->second);
        if (it != alias.end()) alias.erase(it);
        break;
      }
      case infra::churn::EventKind::kMigrate: {
        const auto it = alias.find(event->service_id);
        const std::string current =
            it == alias.end() ? event->service_id : it->second;
        const auto& requests = stack.layer->requests();
        const auto rit = requests.find(current);
        if (rit == requests.end() ||
            (rit->second.state != RequestState::kDeployed &&
             rit->second.state != RequestState::kDegraded)) {
          break;  // never deployed (shed/failed/queued): nothing to move
        }
        const std::string next_id = current + "m";
        AdmissionOptions options;
        options.klass = AdmissionClass::kReembed;
        options.deadline = event->deadline;
        const sg::ServiceGraph graph =
            materialize(next_id, event->chain, stack.domains);
        if (stack.layer->enqueue(graph, event->at, options).ok()) {
          ++report.migrations;
          departures.push_back(current);
          alias[event->service_id] = next_id;
        }
        break;
      }
      case infra::churn::EventKind::kMaintenanceBegin: {
        const auto d = static_cast<std::size_t>(event->domain);
        if (d >= stack.domains) break;
        stack.faults[d]->set_failure_rate(1.0);
        (void)stack.ro->open_circuit("d" + std::to_string(d), "maintenance");
        break;
      }
      case infra::churn::EventKind::kMaintenanceEnd: {
        const auto d = static_cast<std::size_t>(event->domain);
        if (d >= stack.domains) break;
        stack.faults[d]->set_failure_rate(0.0);
        heal_checked();
        (void)stack.layer->sync_health();
        break;
      }
    }
  }

  // Tail of the horizon, then quiesce: clear every fault, heal every
  // circuit, and pump until the queue and parking lot drain (deadlines
  // shed what can no longer be served).
  while (next_pump <= spec.horizon_us) {
    flush_and_pump(next_pump);
    next_pump += pump_period_us;
  }
  for (adapters::FaultyAdapter* fault : stack.faults) {
    fault->fail_next(0);
    fault->set_failure_rate(0.0);
  }
  for (int round = 0; round < 4 && stack.ro->health().any_open(); ++round) {
    heal_checked();
  }
  (void)stack.layer->sync_health();
  SimTime t = next_pump;
  for (int round = 0;
       round < 64 && (stack.layer->queue_depth() > 0 ||
                      stack.layer->parked_count() > 0 ||
                      !departures.empty());
       ++round) {
    flush_and_pump(t);
    t += pump_period_us;
  }

  report.arrivals = engine.arrivals_generated();
  telemetry::Registry& metrics = stack.layer->metrics();
  report.shed = metrics.counter("service.admission.shed_queue_full") +
                metrics.counter("service.admission.shed_displaced") +
                metrics.counter("service.admission.shed_deadline");
  const std::uint64_t attempts =
      metrics.counter("service.admission.enqueued");
  report.shed_rate = attempts == 0
                         ? 0.0
                         : static_cast<double>(report.shed) /
                               static_cast<double>(attempts);
  if (const telemetry::Summary* latency =
          metrics.find_summary("service.admission.latency_ms")) {
    report.adm_latency_p50_ms = latency->percentile(0.5);
    report.adm_latency_p99_ms = latency->percentile(0.99);
  }
  report.overcommit = stack.overcommit_seen;
  std::size_t live = 0;
  std::ostringstream signature;
  for (const auto& [id, request] : stack.layer->requests()) {
    if (request.state == RequestState::kDeployed ||
        request.state == RequestState::kDegraded) {
      ++live;
    }
    signature << id << '=' << to_string(request.state) << ';';
  }
  report.live_at_end = live;
  signature << "deployments=" << stack.ro->deployments().size()
            << ";arrivals=" << report.arrivals
            << ";deployed=" << metrics.counter("service.admission.deployed")
            << ";shed=" << report.shed
            << ";failed=" << metrics.counter("service.admission.failed");
  report.signature = signature.str();
  return report;
}

}  // namespace unify::service
