// Bounded admission queue for the service layer's request lifecycle
// (DESIGN.md §12).
//
// Production traffic cannot be admitted unconditionally: the queue bounds
// how much work the layer will hold, orders it by priority class (healing
// and re-embed traffic outranks new arrivals — a stranded tenant beats a
// prospective one), and sheds deterministically when either the bound or a
// request's admission deadline is hit. The graft-ng status idiom
// (Ok/Again/Busy/Postpone/Drop/Stop) maps onto the service layer's request
// states: Busy -> shed on a full queue, Drop -> shed on an expired
// deadline, Postpone -> parked on a degraded substrate, Again -> retried
// after a health transition below.
//
// Plain single-threaded bookkeeping, like the rest of the service layer:
// waves fan out on the orchestration pool *below* this queue.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sg/service_graph.h"
#include "util/sim_clock.h"

namespace unify::service {

/// Priority classes, ascending urgency. Heal/re-embed traffic (an already
/// admitted tenant that lost capacity) outranks elastic updates, which
/// outrank brand-new arrivals.
enum class AdmissionClass : int { kNew = 0, kReembed = 1, kHeal = 2 };
[[nodiscard]] const char* to_string(AdmissionClass klass) noexcept;

/// Caller-facing knobs for one enqueue().
struct AdmissionOptions {
  AdmissionClass klass = AdmissionClass::kNew;
  /// Absolute sim-time by which the request must have been dispatched;
  /// past it the request is shed, never deployed late. 0 = no deadline.
  SimTime deadline = 0;
};

/// One queued (or parked) request with its admission bookkeeping.
struct AdmissionEntry {
  sg::ServiceGraph graph;
  AdmissionClass klass = AdmissionClass::kNew;
  SimTime enqueued_at = 0;
  SimTime deadline = 0;  ///< absolute; 0 = none
  std::uint64_t seq = 0;  ///< arrival order, the final tie-break
};

/// Strict-weak dispatch order: higher class first, then earlier deadline
/// (no deadline sorts last within its class), then arrival order.
[[nodiscard]] bool dispatch_before(const AdmissionEntry& a,
                                   const AdmissionEntry& b) noexcept;

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity = 256) : capacity_(capacity) {}

  enum class PushOutcome {
    kAccepted,   ///< queued (queue had room)
    kDisplaced,  ///< queued; a strictly lower-class entry was shed to make room
    kRejected,   ///< full of same-or-higher-class work: the newcomer is shed
  };
  struct PushResult {
    PushOutcome outcome = PushOutcome::kAccepted;
    /// The entry shed to make room, when outcome == kDisplaced.
    std::optional<AdmissionEntry> displaced;
  };

  /// Admits `entry` under the capacity bound. A full queue sheds work
  /// rather than growing: the lowest-priority tail entry is displaced when
  /// the newcomer strictly outranks it (by class), otherwise the newcomer
  /// itself is rejected — overload never evicts more urgent work.
  PushResult push(AdmissionEntry entry);

  /// Moves every entry whose deadline lies at or before `now + margin`
  /// into `shed`: they could no longer be dispatched AND deployed in time,
  /// so they are dropped before they violate their SLO (shed-before-
  /// deadline-violation). Returns the number shed.
  std::size_t shed_expired(SimTime now, SimTime margin,
                           std::vector<AdmissionEntry>& shed);

  /// Pops up to `max_wave` entries in dispatch order.
  std::vector<AdmissionEntry> pop_wave(std::size_t max_wave);

  /// Removes the queued entry for `id` (a cancel / removal of a request
  /// that never dispatched). Returns it when present.
  std::optional<AdmissionEntry> erase(const std::string& id);
  [[nodiscard]] bool contains(const std::string& id) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Rebinds the bound. Entries already over a shrunk bound stay queued —
  /// the bound gates push(), it never drops accepted work retroactively.
  void set_capacity(std::size_t capacity) noexcept { capacity_ = capacity; }

 private:
  /// Kept sorted by dispatch_before; capacity bounds it, so the linear
  /// insert is cheap and the order is trivially deterministic.
  std::vector<AdmissionEntry> entries_;
  std::size_t capacity_;
};

}  // namespace unify::service
