#include "adapters/sdn_adapter.h"

#include "model/nffg_builder.h"

namespace unify::adapters {

std::string SdnAdapter::local(const std::string& node) const {
  const std::string prefix = domain() + ".";
  if (strings::starts_with(node, prefix)) return node.substr(prefix.size());
  return node;
}

Result<model::Nffg> SdnAdapter::build_skeleton() {
  model::Nffg view{domain() + "-view"};
  for (const auto& [sw_id, sw] : net_->fabric().switches()) {
    model::BisBis bb = model::make_bisbis(domain() + "." + sw_id,
                                          model::Resources{}, sw.port_count(),
                                          /*internal_delay=*/0.02);
    bb.domain = domain();
    UNIFY_RETURN_IF_ERROR(view.add_bisbis(std::move(bb)));
  }
  int link_seq = 0;
  for (const auto& wire : net_->wires()) {
    UNIFY_RETURN_IF_ERROR(view.add_bidirectional_link(
        domain() + ".w" + std::to_string(link_seq++),
        model::PortRef{domain() + "." + wire.a, wire.port_a},
        model::PortRef{domain() + "." + wire.b, wire.port_b}, wire.attrs));
  }
  for (const auto& sap : net_->saps()) {
    UNIFY_RETURN_IF_ERROR(view.add_sap(model::Sap{sap.sap, sap.sap}));
    UNIFY_RETURN_IF_ERROR(view.add_bidirectional_link(
        domain() + ".s-" + sap.sap, model::PortRef{sap.sap, 0},
        model::PortRef{domain() + "." + sap.sw, sap.port}, sap.attrs));
  }
  return view;
}

Result<void> SdnAdapter::do_place_nf(const std::string& node,
                                     const model::NfInstance& nf) {
  return Error{ErrorCode::kRejected,
               "SDN domain " + domain() + " is forwarding-only; cannot host " +
                   nf.id + " on " + node};
}

Result<void> SdnAdapter::do_remove_nf(const std::string& node,
                                      const std::string& nf_id) {
  return Error{ErrorCode::kNotFound,
               "no NF " + nf_id + " in forwarding-only domain (" + node + ")"};
}

Result<void> SdnAdapter::do_install_rule(const std::string& node,
                                         const model::Flowrule& rule) {
  // Both endpoints must be the switch's own ports (no NFs here).
  for (const model::PortRef* ref : {&rule.in, &rule.out}) {
    if (ref->node != node) {
      return Error{ErrorCode::kInvalidArgument,
                   "flowrule " + rule.id + " references NF port " +
                       ref->to_string() + " in forwarding-only domain"};
    }
  }
  infra::FlowEntry entry;
  entry.id = rule.id;
  entry.in_port = rule.in.port;
  entry.match_tag = rule.match_tag;
  entry.out_port = rule.out.port;
  entry.set_tag = rule.set_tag;
  return net_->install_flow(local(node), std::move(entry));
}

Result<void> SdnAdapter::do_remove_rule(const std::string& node,
                                        const std::string& rule_id) {
  return net_->remove_flow(local(node), rule_id);
}

}  // namespace unify::adapters
