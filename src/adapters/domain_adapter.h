// Domain adapter interface: the paper's "controller adapter modules".
//
// An adapter owns the translation between the joint NFFG abstraction and
// one technology domain: northbound it advertises the domain as (one or
// more) BiS-BiS nodes; southbound it turns configuration changes into the
// domain's native operations (flow-mods, VM boots, container starts, Click
// processes). The resource orchestrator treats every domain uniformly
// through this interface — that is the paper's core claim.
//
// Southbound pushes are transactional: begin_apply() opens a push for a
// desired config and returns a PushTicket, await() blocks until the domain
// acknowledged (or rejected) it. The base class implements both on top of
// the legacy synchronous apply() hook, so concrete adapters migrate to a
// native split (issue early, collect late) incrementally. view_epoch()
// lets the orchestrator above skip domains whose config cannot have
// drifted since the last acknowledged push.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "model/nffg.h"
#include "util/result.h"

namespace unify::adapters {

/// Opaque handle for one in-flight southbound push transaction.
struct PushTicket {
  std::uint64_t id = 0;
};

class DomainAdapter {
 public:
  virtual ~DomainAdapter() = default;

  /// Stable domain name; doubles as the BiS-BiS id prefix in views.
  [[nodiscard]] virtual const std::string& domain() const noexcept = 0;

  /// Current domain view: topology, capacities, deployed NFs (with live
  /// statuses) and installed flowrules.
  [[nodiscard]] virtual Result<model::Nffg> fetch_view() = 0;

  // -- southbound push transaction ---------------------------------------

  /// Opens a push transaction driving the domain towards `desired` (a
  /// config over this domain's view). At most one transaction may be open
  /// per adapter; a second begin_apply() before await() fails with
  /// kUnavailable. The default implementation records the config and
  /// defers all work to await(); native adapters issue the request here.
  virtual Result<PushTicket> begin_apply(const model::Nffg& desired);

  /// Blocks until the push behind `ticket` completed. Partial failure
  /// leaves the deployed config reflecting what actually succeeded (the
  /// next push computes its delta from that state). Closes the
  /// transaction whatever the outcome.
  virtual Result<void> await(const PushTicket& ticket);

  /// True while a begin_apply() transaction has not been await()-ed.
  /// Virtual so decorators (FaultyAdapter) can forward to the inner
  /// adapter's transaction state instead of their own idle shim.
  [[nodiscard]] virtual bool push_in_flight() const noexcept {
    return pending_.has_value();
  }

  /// Cheap liveness probe used by the health manager to half-open a
  /// tripped circuit. Must not mutate domain state. The default is a
  /// lightweight fetch_view ping (every concrete adapter inherits it);
  /// adapters with a native keepalive can override.
  virtual Result<void> probe();

  /// Monotonic counter that changes whenever the domain's deployed config
  /// may have changed (any apply attempt that reached the domain). The
  /// orchestrator records the epoch alongside the bytes of each
  /// acknowledged slice: a domain is clean — and its push skipped — only
  /// while both still match.
  [[nodiscard]] virtual std::uint64_t view_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Adapters whose operations drive shared single-threaded machinery (a
  /// SimClock-driven channel or infrastructure simulator) return the same
  /// key; the push engine serializes same-key adapters inside one worker
  /// and parallelizes across keys. nullptr = safe to run concurrently
  /// with any other adapter.
  [[nodiscard]] virtual const void* exclusion_key() const noexcept {
    return nullptr;
  }

  /// Legacy synchronous entry point the default begin_apply()/await()
  /// shim wraps: computes the delta against the currently deployed config
  /// and issues native operations, blocking until done.
  virtual Result<void> apply(const model::Nffg& desired) = 0;

  /// Native operations issued so far (flow-mods + lifecycle ops).
  [[nodiscard]] virtual std::uint64_t native_operations() const noexcept = 0;

 protected:
  /// Derived adapters call this whenever their deployed config may have
  /// changed (the default await() shim does it for them).
  void bump_epoch() noexcept {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::uint64_t next_ticket_ = 1;
  std::optional<std::pair<std::uint64_t, model::Nffg>> pending_;
};

}  // namespace unify::adapters
