// Domain adapter interface: the paper's "controller adapter modules".
//
// An adapter owns the translation between the joint NFFG abstraction and
// one technology domain: northbound it advertises the domain as (one or
// more) BiS-BiS nodes; southbound it turns configuration changes into the
// domain's native operations (flow-mods, VM boots, container starts, Click
// processes). The resource orchestrator treats every domain uniformly
// through this interface — that is the paper's core claim.
#pragma once

#include <string>

#include "model/nffg.h"
#include "util/result.h"

namespace unify::adapters {

class DomainAdapter {
 public:
  virtual ~DomainAdapter() = default;

  /// Stable domain name; doubles as the BiS-BiS id prefix in views.
  [[nodiscard]] virtual const std::string& domain() const noexcept = 0;

  /// Current domain view: topology, capacities, deployed NFs (with live
  /// statuses) and installed flowrules.
  [[nodiscard]] virtual Result<model::Nffg> fetch_view() = 0;

  /// Drives the domain towards `desired` (a config over this domain's
  /// view): computes the delta against the currently deployed config and
  /// issues native operations. Partial failure leaves the deployed config
  /// reflecting what actually succeeded.
  virtual Result<void> apply(const model::Nffg& desired) = 0;

  /// Native operations issued so far (flow-mods + lifecycle ops).
  [[nodiscard]] virtual std::uint64_t native_operations() const noexcept = 0;
};

}  // namespace unify::adapters
