#include "adapters/base_adapter.h"

#include "util/log.h"

namespace unify::adapters {

Result<void> BaseAdapter::ensure_initialized() {
  if (initialized_) return Result<void>::success();
  UNIFY_ASSIGN_OR_RETURN(deployed_, build_skeleton());
  initialized_ = true;
  return Result<void>::success();
}

Result<model::Nffg> BaseAdapter::fetch_view() {
  UNIFY_RETURN_IF_ERROR(ensure_initialized());
  UNIFY_RETURN_IF_ERROR(refresh_statuses(deployed_));
  return deployed_;
}

Result<void> BaseAdapter::apply(const model::Nffg& desired) {
  UNIFY_RETURN_IF_ERROR(ensure_initialized());
  model::ConfigDelta delta;
  if (full_reinstall_) {
    // Naive strategy: everything currently deployed is removed, everything
    // desired is installed, regardless of overlap.
    for (const auto& [bb_id, bb] : deployed_.bisbis()) {
      for (const model::Flowrule& fr : bb.flowrules) {
        delta.rule_removals.push_back(model::RuleRemoval{bb_id, fr.id});
      }
      for (const auto& [nf_id, nf] : bb.nfs) {
        delta.nf_removals.push_back(model::NfRemoval{bb_id, nf_id});
      }
    }
    for (const auto& [bb_id, bb] : desired.bisbis()) {
      for (const auto& [nf_id, nf] : bb.nfs) {
        delta.nf_placements.push_back(model::NfPlacement{bb_id, nf});
      }
      for (const model::Flowrule& fr : bb.flowrules) {
        delta.rule_installs.push_back(model::RuleInstall{bb_id, fr});
      }
    }
  } else {
    UNIFY_ASSIGN_OR_RETURN(delta, model::diff(deployed_, desired));
  }
  UNIFY_LOG(kDebug, "adapter") << domain() << ": applying delta of "
                               << delta.size() << " operations";
  // Mark the deployed config as (possibly) changed before issuing ops: a
  // partial failure below must not leave the domain looking clean to the
  // dirty-tracking layer above. No-op deltas stay epoch-stable.
  if (delta.size() > 0) bump_epoch();
  // Removals free resources first; every successful native op is mirrored
  // into deployed_ immediately so a partial failure leaves an accurate
  // record.
  for (const model::RuleRemoval& rr : delta.rule_removals) {
    UNIFY_RETURN_IF_ERROR(do_remove_rule(rr.bisbis, rr.rule_id));
    UNIFY_RETURN_IF_ERROR(deployed_.remove_flowrule(rr.bisbis, rr.rule_id));
  }
  for (const model::NfRemoval& nr : delta.nf_removals) {
    UNIFY_RETURN_IF_ERROR(do_remove_nf(nr.bisbis, nr.nf_id));
    UNIFY_RETURN_IF_ERROR(deployed_.remove_nf(nr.bisbis, nr.nf_id));
  }
  for (const model::NfPlacement& np : delta.nf_placements) {
    UNIFY_RETURN_IF_ERROR(do_place_nf(np.bisbis, np.nf));
    UNIFY_RETURN_IF_ERROR(deployed_.place_nf(np.bisbis, np.nf));
  }
  for (const model::RuleInstall& ri : delta.rule_installs) {
    UNIFY_RETURN_IF_ERROR(do_install_rule(ri.bisbis, ri.rule));
    UNIFY_RETURN_IF_ERROR(deployed_.add_flowrule(ri.bisbis, ri.rule));
  }
  return Result<void>::success();
}

}  // namespace unify::adapters
