// Adapter for the OpenStack + OpenDaylight legacy data center.
//
// The whole DC is advertised as a single BiS-BiS ("<domain>.dc") whose
// capacity is the hypervisor total — the paper's "UNIFY conform local
// orchestrator implemented on top of an OpenStack domain". NFs become VMs
// (nova boot), flowrules become ODL steering pushes on the DC gateway.
#pragma once

#include <map>

#include "adapters/base_adapter.h"
#include "infra/cloud.h"

namespace unify::adapters {

class CloudAdapter final : public BaseAdapter {
 public:
  explicit CloudAdapter(infra::Cloud& cloud) : cloud_(&cloud) {}

  /// Binds external gateway port `ext_port` to SAP `sap_id` in the view.
  /// Call before the first fetch_view/apply.
  void map_sap(int ext_port, const std::string& sap_id,
               model::LinkAttrs attrs);

  [[nodiscard]] const std::string& domain() const noexcept override {
    return cloud_->name();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return cloud_->api_calls();
  }
  /// Serialized with every other adapter driving the same simulated clock.
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return &cloud_->clock();
  }
  [[nodiscard]] std::string bisbis_id() const {
    return domain() + ".dc";
  }

 protected:
  [[nodiscard]] Result<model::Nffg> build_skeleton() override;
  Result<void> refresh_statuses(model::Nffg& view) override;
  Result<void> do_place_nf(const std::string& node,
                           const model::NfInstance& nf) override;
  Result<void> do_remove_nf(const std::string& node,
                            const std::string& nf_id) override;
  Result<void> do_install_rule(const std::string& node,
                               const model::Flowrule& rule) override;
  Result<void> do_remove_rule(const std::string& node,
                              const std::string& rule_id) override;

 private:
  /// Gateway endpoint name for a flowrule port ref.
  [[nodiscard]] Result<std::string> endpoint_of(const model::PortRef& ref,
                                                const std::string& node) const;

  infra::Cloud* cloud_;
  struct SapBinding {
    std::string sap;
    model::LinkAttrs attrs;
  };
  std::map<int, SapBinding> sap_bindings_;  // ext port -> sap
};

}  // namespace unify::adapters
