// Shared adapter machinery: delta-based apply over a tracked deployed
// config. Concrete adapters supply the skeleton view, status refresh and
// the four native operations.
#pragma once

#include "adapters/domain_adapter.h"
#include "model/nffg_diff.h"

namespace unify::adapters {

class BaseAdapter : public DomainAdapter {
 public:
  [[nodiscard]] Result<model::Nffg> fetch_view() override;
  Result<void> apply(const model::Nffg& desired) override;

  /// Ablation switch (DESIGN.md §6.4): when enabled, apply() tears the
  /// whole deployed config down and reinstalls the desired one instead of
  /// computing a delta — the naive strategy the delta design replaces.
  void set_full_reinstall(bool enabled) noexcept {
    full_reinstall_ = enabled;
  }

 protected:
  /// Topology + capacities, no NFs/flowrules. Called once, lazily.
  [[nodiscard]] virtual Result<model::Nffg> build_skeleton() = 0;
  /// Updates NF statuses in `view` from live domain state (default noop).
  virtual Result<void> refresh_statuses(model::Nffg& view) {
    (void)view;
    return Result<void>::success();
  }

  virtual Result<void> do_place_nf(const std::string& node,
                                   const model::NfInstance& nf) = 0;
  virtual Result<void> do_remove_nf(const std::string& node,
                                    const std::string& nf_id) = 0;
  virtual Result<void> do_install_rule(const std::string& node,
                                       const model::Flowrule& rule) = 0;
  virtual Result<void> do_remove_rule(const std::string& node,
                                      const std::string& rule_id) = 0;

  /// Ensures deployed_ exists (builds the skeleton on first use).
  Result<void> ensure_initialized();

  model::Nffg deployed_;
  bool initialized_ = false;
  bool full_reinstall_ = false;
};

}  // namespace unify::adapters
