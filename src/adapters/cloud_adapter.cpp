#include "adapters/cloud_adapter.h"

#include "model/nffg_builder.h"

namespace unify::adapters {

void CloudAdapter::map_sap(int ext_port, const std::string& sap_id,
                           model::LinkAttrs attrs) {
  sap_bindings_[ext_port] = SapBinding{sap_id, attrs};
}

Result<model::Nffg> CloudAdapter::build_skeleton() {
  model::Nffg view{domain() + "-view"};
  model::BisBis bb;
  bb.id = bisbis_id();
  bb.name = domain() + " data center";
  bb.domain = domain();
  bb.capacity = cloud_->total_capacity();
  bb.internal_delay = 0.2;  // DC fabric crossing
  // One BiS-BiS port per external gateway uplink.
  for (int p = 0; p < 4; ++p) bb.ports.push_back(model::Port{p, ""});
  UNIFY_RETURN_IF_ERROR(view.add_bisbis(std::move(bb)));
  for (const auto& [port, binding] : sap_bindings_) {
    UNIFY_RETURN_IF_ERROR(view.add_sap(model::Sap{binding.sap, binding.sap}));
    UNIFY_RETURN_IF_ERROR(view.add_bidirectional_link(
        domain() + ".s-" + binding.sap, model::PortRef{binding.sap, 0},
        model::PortRef{bisbis_id(), port}, binding.attrs));
  }
  return view;
}

Result<void> CloudAdapter::refresh_statuses(model::Nffg& view) {
  model::BisBis* bb = view.find_bisbis(bisbis_id());
  if (bb == nullptr) return Result<void>::success();
  for (auto& [nf_id, nf] : bb->nfs) {
    const infra::Vm* vm = cloud_->find_vm(nf_id);
    if (vm == nullptr) continue;
    switch (vm->status) {
      case infra::VmStatus::kBuild:
        nf.status = model::NfStatus::kDeploying;
        break;
      case infra::VmStatus::kActive:
        nf.status = model::NfStatus::kRunning;
        break;
      case infra::VmStatus::kDeleted:
        nf.status = model::NfStatus::kStopped;
        break;
      case infra::VmStatus::kError:
        nf.status = model::NfStatus::kFailed;
        break;
    }
  }
  return Result<void>::success();
}

Result<void> CloudAdapter::do_place_nf(const std::string& node,
                                       const model::NfInstance& nf) {
  if (node != bisbis_id()) {
    return Error{ErrorCode::kNotFound, "unknown BiS-BiS " + node};
  }
  return cloud_->boot_vm(nf.id, nf.type, nf.requirement,
                         static_cast<int>(nf.ports.size()));
}

Result<void> CloudAdapter::do_remove_nf(const std::string& node,
                                        const std::string& nf_id) {
  (void)node;
  return cloud_->delete_vm(nf_id);
}

Result<std::string> CloudAdapter::endpoint_of(const model::PortRef& ref,
                                              const std::string& node) const {
  if (ref.node == node) {
    return "ext" + std::to_string(ref.port);
  }
  // NF port -> VM NIC endpoint.
  return ref.node + ":" + std::to_string(ref.port);
}

Result<void> CloudAdapter::do_install_rule(const std::string& node,
                                           const model::Flowrule& rule) {
  UNIFY_ASSIGN_OR_RETURN(const std::string from, endpoint_of(rule.in, node));
  UNIFY_ASSIGN_OR_RETURN(const std::string to, endpoint_of(rule.out, node));
  return cloud_->install_steering(rule.id, from, rule.match_tag, to,
                                  rule.set_tag);
}

Result<void> CloudAdapter::do_remove_rule(const std::string& node,
                                          const std::string& rule_id) {
  (void)node;
  return cloud_->remove_steering(rule_id);
}

}  // namespace unify::adapters
