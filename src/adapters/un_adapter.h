// Adapter for the Universal Node: a single BiS-BiS ("<domain>.un") backed
// by the UN local orchestrator — containers for NFs, LSI flowrules for
// steering (paper §2, Universal Node proof of concept).
#pragma once

#include <map>

#include "adapters/base_adapter.h"
#include "infra/universal_node.h"

namespace unify::adapters {

class UnAdapter final : public BaseAdapter {
 public:
  explicit UnAdapter(infra::UniversalNode& un) : un_(&un) {}

  /// Binds external LSI port `ext_port` to SAP `sap_id` in the view.
  void map_sap(int ext_port, const std::string& sap_id,
               model::LinkAttrs attrs);

  [[nodiscard]] const std::string& domain() const noexcept override {
    return un_->name();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return un_->operations();
  }
  /// Serialized with every other adapter driving the same simulated clock.
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return &un_->clock();
  }
  [[nodiscard]] std::string bisbis_id() const { return domain() + ".un"; }

 protected:
  [[nodiscard]] Result<model::Nffg> build_skeleton() override;
  Result<void> refresh_statuses(model::Nffg& view) override;
  Result<void> do_place_nf(const std::string& node,
                           const model::NfInstance& nf) override;
  Result<void> do_remove_nf(const std::string& node,
                            const std::string& nf_id) override;
  Result<void> do_install_rule(const std::string& node,
                               const model::Flowrule& rule) override;
  Result<void> do_remove_rule(const std::string& node,
                              const std::string& rule_id) override;

 private:
  infra::UniversalNode* un_;
  struct SapBinding {
    std::string sap;
    model::LinkAttrs attrs;
  };
  std::map<int, SapBinding> sap_bindings_;
};

}  // namespace unify::adapters
