// Adapter for the Mininet-style emulated domain (Click NFs, NETCONF +
// OpenFlow control). Each switch with its execution environment is a
// BiS-BiS ("<domain>.<switch>") with the EE's compute capacity; NFs become
// Click processes beside the chosen switch.
#pragma once

#include "adapters/base_adapter.h"
#include "infra/emu_network.h"

namespace unify::adapters {

class EmuAdapter final : public BaseAdapter {
 public:
  explicit EmuAdapter(infra::EmuNetwork& emu) : emu_(&emu) {}

  [[nodiscard]] const std::string& domain() const noexcept override {
    return emu_->name();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return emu_->operations();
  }
  /// Serialized with every other adapter driving the same simulated clock.
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return &emu_->clock();
  }

 protected:
  [[nodiscard]] Result<model::Nffg> build_skeleton() override;
  Result<void> do_place_nf(const std::string& node,
                           const model::NfInstance& nf) override;
  Result<void> do_remove_nf(const std::string& node,
                            const std::string& nf_id) override;
  Result<void> do_install_rule(const std::string& node,
                               const model::Flowrule& rule) override;
  Result<void> do_remove_rule(const std::string& node,
                              const std::string& rule_id) override;

 private:
  [[nodiscard]] std::string local(const std::string& node) const;
  /// Maps a flowrule port ref to a raw switch port: the BiS-BiS's own port,
  /// or the switch port a Click process NIC is patched to.
  [[nodiscard]] Result<int> switch_port_of(const model::PortRef& ref,
                                           const std::string& node) const;

  infra::EmuNetwork* emu_;
};

}  // namespace unify::adapters
