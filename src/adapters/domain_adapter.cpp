#include "adapters/domain_adapter.h"

namespace unify::adapters {

Result<PushTicket> DomainAdapter::begin_apply(const model::Nffg& desired) {
  if (pending_.has_value()) {
    return Error{ErrorCode::kUnavailable,
                 "push already in flight in domain " + domain()};
  }
  PushTicket ticket{next_ticket_++};
  pending_.emplace(ticket.id, desired);
  return ticket;
}

Result<void> DomainAdapter::await(const PushTicket& ticket) {
  if (!pending_.has_value()) {
    return Error{ErrorCode::kInvalidArgument,
                 "await without begin_apply in domain " + domain()};
  }
  if (pending_->first != ticket.id) {
    return Error{ErrorCode::kInvalidArgument,
                 "stale push ticket " + std::to_string(ticket.id) +
                     " for domain " + domain()};
  }
  const model::Nffg desired = std::move(pending_->second);
  pending_.reset();
  // Bump whatever the outcome: a partially failed apply may have mutated
  // the domain, so it must not look clean to the orchestrator above.
  auto applied = apply(desired);
  bump_epoch();
  return applied;
}

Result<void> DomainAdapter::probe() {
  // A fetch that answers at all proves the control channel is alive; the
  // fetched view is discarded (readmission re-fetches via resync).
  UNIFY_RETURN_IF_ERROR(fetch_view());
  return Result<void>::success();
}

}  // namespace unify::adapters
