// Fault-injecting decorator around any DomainAdapter: fails the next N
// operations, every n-th operation, or every operation with a seeded
// probability, and can charge a host-time latency per operation. Used to
// test the orchestration stack's behaviour under domain failures (rejected
// configs, unreachable controllers) and to make retry/backoff and
// parallel-push paths measurable deterministically, without
// special-casing the simulators.
#pragma once

#include <chrono>
#include <memory>
#include <thread>

#include "adapters/domain_adapter.h"
#include "util/rng.h"

namespace unify::adapters {

class FaultyAdapter final : public DomainAdapter {
 public:
  explicit FaultyAdapter(std::unique_ptr<DomainAdapter> inner,
                         std::uint64_t seed = 1)
      : inner_(std::move(inner)), rng_(seed) {}

  /// The next `n` apply/fetch operations fail with `code`.
  void fail_next(int n, ErrorCode code = ErrorCode::kUnavailable) {
    fail_next_ = n;
    code_ = code;
  }
  /// Every operation fails independently with this probability.
  void set_failure_rate(double rate) { failure_rate_ = rate; }
  /// Every n-th operation fails with `code` (transient-then-recover: the
  /// operations in between succeed, so a retrying caller converges).
  /// n <= 0 disables.
  void flaky_every(int n, ErrorCode code = ErrorCode::kUnavailable) {
    flaky_every_ = n;
    code_ = code;
  }
  /// Host-time latency charged to every operation, failing or not
  /// (simulates slow southbound control channels; makes sequential vs
  /// parallel push wall-time measurable). 0 disables.
  void set_latency_us(std::int64_t us) { latency_us_ = us; }

  [[nodiscard]] const std::string& domain() const noexcept override {
    return inner_->domain();
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override {
    UNIFY_RETURN_IF_ERROR(maybe_fail("fetch_view"));
    return inner_->fetch_view();
  }
  // Transactional path forwarded natively so fault injection exercises the
  // exact code path real adapters use (latency + fault checks charge on
  // begin_apply — the "issue" side — await only collects).
  Result<PushTicket> begin_apply(const model::Nffg& desired) override {
    UNIFY_RETURN_IF_ERROR(maybe_fail("begin_apply"));
    return inner_->begin_apply(desired);
  }
  Result<void> await(const PushTicket& ticket) override {
    return inner_->await(ticket);
  }
  [[nodiscard]] bool push_in_flight() const noexcept override {
    return inner_->push_in_flight();
  }
  [[nodiscard]] std::uint64_t view_epoch() const noexcept override {
    return inner_->view_epoch();
  }
  Result<void> probe() override {
    UNIFY_RETURN_IF_ERROR(maybe_fail("probe"));
    return inner_->probe();
  }
  /// Legacy sync hook, kept for callers that bypass the ticket API.
  Result<void> apply(const model::Nffg& desired) override {
    UNIFY_RETURN_IF_ERROR(maybe_fail("apply"));
    return inner_->apply(desired);
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return inner_->native_operations();
  }
  /// The decorated adapter's exclusion constraints still hold underneath.
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return inner_->exclusion_key();
  }
  [[nodiscard]] std::uint64_t injected_failures() const noexcept {
    return injected_;
  }
  [[nodiscard]] std::uint64_t operations_seen() const noexcept {
    return operations_;
  }

 private:
  Result<void> maybe_fail(const char* op) {
    ++operations_;
    if (latency_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
    }
    if (fail_next_ > 0) {
      --fail_next_;
      ++injected_;
      return Error{code_, std::string(op) + " failed (injected) in domain " +
                              inner_->domain()};
    }
    if (flaky_every_ > 0 &&
        operations_ % static_cast<std::uint64_t>(flaky_every_) == 0) {
      ++injected_;
      return Error{code_, std::string(op) + " failed (injected, every " +
                              std::to_string(flaky_every_) + "th) in " +
                              inner_->domain()};
    }
    if (failure_rate_ > 0 && rng_.next_bool(failure_rate_)) {
      ++injected_;
      return Error{code_, std::string(op) + " failed (injected, random) in " +
                              inner_->domain()};
    }
    return Result<void>::success();
  }

  std::unique_ptr<DomainAdapter> inner_;
  Rng rng_;
  int fail_next_ = 0;
  int flaky_every_ = 0;
  double failure_rate_ = 0;
  std::int64_t latency_us_ = 0;
  ErrorCode code_ = ErrorCode::kUnavailable;
  std::uint64_t injected_ = 0;
  std::uint64_t operations_ = 0;
};

}  // namespace unify::adapters
