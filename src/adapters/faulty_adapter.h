// Fault-injecting decorator around any DomainAdapter: fails the next N
// operations, or every operation with a seeded probability. Used to test
// the orchestration stack's behaviour under domain failures (rejected
// configs, unreachable controllers) without special-casing the simulators.
#pragma once

#include <memory>

#include "adapters/domain_adapter.h"
#include "util/rng.h"

namespace unify::adapters {

class FaultyAdapter final : public DomainAdapter {
 public:
  explicit FaultyAdapter(std::unique_ptr<DomainAdapter> inner,
                         std::uint64_t seed = 1)
      : inner_(std::move(inner)), rng_(seed) {}

  /// The next `n` apply/fetch operations fail with `code`.
  void fail_next(int n, ErrorCode code = ErrorCode::kUnavailable) {
    fail_next_ = n;
    code_ = code;
  }
  /// Every operation fails independently with this probability.
  void set_failure_rate(double rate) { failure_rate_ = rate; }

  [[nodiscard]] const std::string& domain() const noexcept override {
    return inner_->domain();
  }
  [[nodiscard]] Result<model::Nffg> fetch_view() override {
    UNIFY_RETURN_IF_ERROR(maybe_fail("fetch_view"));
    return inner_->fetch_view();
  }
  Result<void> apply(const model::Nffg& desired) override {
    UNIFY_RETURN_IF_ERROR(maybe_fail("apply"));
    return inner_->apply(desired);
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return inner_->native_operations();
  }
  [[nodiscard]] std::uint64_t injected_failures() const noexcept {
    return injected_;
  }

 private:
  Result<void> maybe_fail(const char* op) {
    if (fail_next_ > 0) {
      --fail_next_;
      ++injected_;
      return Error{code_, std::string(op) + " failed (injected) in domain " +
                              inner_->domain()};
    }
    if (failure_rate_ > 0 && rng_.next_bool(failure_rate_)) {
      ++injected_;
      return Error{code_, std::string(op) + " failed (injected, random) in " +
                              inner_->domain()};
    }
    return Result<void>::success();
  }

  std::unique_ptr<DomainAdapter> inner_;
  Rng rng_;
  int fail_next_ = 0;
  double failure_rate_ = 0;
  ErrorCode code_ = ErrorCode::kUnavailable;
  std::uint64_t injected_ = 0;
};

}  // namespace unify::adapters
