#include "adapters/remote_sdn_adapter.h"

#include "model/nffg_builder.h"
#include "proto/openflow.h"

namespace unify::adapters {

RemoteSdnAdapter::RemoteSdnAdapter(std::string domain_name,
                                   std::shared_ptr<proto::Transport> transport)
    : domain_(std::move(domain_name)),
      peer_(std::move(transport), domain_ + "-of-client"),
      exclusion_key_(peer_.driver().exclusion_key()) {}

std::string RemoteSdnAdapter::local(const std::string& node) const {
  const std::string prefix = domain_ + ".";
  if (strings::starts_with(node, prefix)) return node.substr(prefix.size());
  return node;
}

Result<model::Nffg> RemoteSdnAdapter::build_skeleton() {
  UNIFY_ASSIGN_OR_RETURN(
      const json::Value topo,
      peer_.call_and_wait(proto::openflow::kTopologyMethod,
                          json::Value{json::Object{}}));
  model::Nffg view{domain_ + "-view"};
  const json::Value* switches = topo.get("switches");
  if (switches == nullptr || !switches->is_array()) {
    return Error{ErrorCode::kProtocol, "of.topology missing switches"};
  }
  for (const json::Value& sv : switches->as_array()) {
    model::BisBis bb = model::make_bisbis(
        domain_ + "." + sv.get_string("dpid"), model::Resources{},
        static_cast<int>(sv.get_int("ports")), /*internal_delay=*/0.02);
    bb.domain = domain_;
    UNIFY_RETURN_IF_ERROR(view.add_bisbis(std::move(bb)));
  }
  int link_seq = 0;
  if (const json::Value* wires = topo.get("wires")) {
    if (!wires->is_array()) {
      return Error{ErrorCode::kProtocol, "of.topology wires malformed"};
    }
    for (const json::Value& wv : wires->as_array()) {
      UNIFY_RETURN_IF_ERROR(view.add_bidirectional_link(
          domain_ + ".w" + std::to_string(link_seq++),
          model::PortRef{domain_ + "." + wv.get_string("a"),
                         static_cast<int>(wv.get_int("port_a"))},
          model::PortRef{domain_ + "." + wv.get_string("b"),
                         static_cast<int>(wv.get_int("port_b"))},
          model::LinkAttrs{wv.get_number("bandwidth"),
                           wv.get_number("delay")}));
    }
  }
  if (const json::Value* saps = topo.get("saps")) {
    if (!saps->is_array()) {
      return Error{ErrorCode::kProtocol, "of.topology saps malformed"};
    }
    for (const json::Value& sv : saps->as_array()) {
      const std::string sap = sv.get_string("sap");
      UNIFY_RETURN_IF_ERROR(view.add_sap(model::Sap{sap, sap}));
      UNIFY_RETURN_IF_ERROR(view.add_bidirectional_link(
          domain_ + ".s-" + sap, model::PortRef{sap, 0},
          model::PortRef{domain_ + "." + sv.get_string("switch"),
                         static_cast<int>(sv.get_int("port"))},
          model::LinkAttrs{sv.get_number("bandwidth"),
                           sv.get_number("delay")}));
    }
  }
  return view;
}

Result<void> RemoteSdnAdapter::do_place_nf(const std::string& node,
                                           const model::NfInstance& nf) {
  return Error{ErrorCode::kRejected,
               "SDN domain " + domain_ + " is forwarding-only; cannot host " +
                   nf.id + " on " + node};
}

Result<void> RemoteSdnAdapter::do_remove_nf(const std::string& node,
                                            const std::string& nf_id) {
  return Error{ErrorCode::kNotFound,
               "no NF " + nf_id + " in forwarding-only domain (" + node + ")"};
}

Result<void> RemoteSdnAdapter::send_flow_mod(const std::string& node,
                                             const model::Flowrule& rule,
                                             bool remove) {
  for (const model::PortRef* ref : {&rule.in, &rule.out}) {
    if (ref->node != node) {
      return Error{ErrorCode::kInvalidArgument,
                   "flowrule " + rule.id + " references NF port " +
                       ref->to_string() + " in forwarding-only domain"};
    }
  }
  proto::openflow::FlowMod msg;
  msg.dpid = local(node);
  msg.command = remove ? proto::openflow::FlowModCommand::kDelete
                       : proto::openflow::FlowModCommand::kAdd;
  msg.entry.id = rule.id;
  msg.entry.in_port = rule.in.port;
  msg.entry.match_tag = rule.match_tag;
  msg.entry.out_port = rule.out.port;
  msg.entry.set_tag = rule.set_tag;
  UNIFY_ASSIGN_OR_RETURN(
      const json::Value reply,
      peer_.call_and_wait(proto::openflow::kFlowModMethod,
                          proto::openflow::to_json(msg)));
  (void)reply;
  ++flow_mods_sent_;
  return Result<void>::success();
}

Result<void> RemoteSdnAdapter::do_install_rule(const std::string& node,
                                               const model::Flowrule& rule) {
  return send_flow_mod(node, rule, /*remove=*/false);
}

Result<void> RemoteSdnAdapter::do_remove_rule(const std::string& node,
                                              const std::string& rule_id) {
  model::Flowrule rule;
  rule.id = rule_id;
  rule.in = model::PortRef{node, 0};
  rule.out = model::PortRef{node, 0};
  return send_flow_mod(node, rule, /*remove=*/true);
}

}  // namespace unify::adapters
