// POX-style OpenFlow controller for the legacy SDN domain: owns the
// network's control side and serves two RPC methods over any framed
// transport — topology discovery and flow-mods (proto/openflow.h). The
// corresponding adapter module (adapters/remote_sdn_adapter.h) is a pure
// RPC client, so the domain boundary is a real control channel, as in the
// paper’s prototype.
#pragma once

#include <memory>

#include "infra/sdn_network.h"
#include "proto/rpc.h"

namespace unify::adapters {

class PoxController {
 public:
  /// Serves `net` on `transport`. The network must outlive the controller.
  PoxController(infra::SdnNetwork& net,
                std::shared_ptr<proto::Transport> transport);

  [[nodiscard]] std::uint64_t requests_handled() const noexcept {
    return peer_.requests_handled();
  }

 private:
  infra::SdnNetwork* net_;
  proto::RpcPeer peer_;
};

}  // namespace unify::adapters
