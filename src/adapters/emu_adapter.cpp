#include "adapters/emu_adapter.h"

#include "model/nffg_builder.h"

namespace unify::adapters {

std::string EmuAdapter::local(const std::string& node) const {
  const std::string prefix = domain() + ".";
  if (strings::starts_with(node, prefix)) return node.substr(prefix.size());
  return node;
}

Result<model::Nffg> EmuAdapter::build_skeleton() {
  model::Nffg view{domain() + "-view"};
  for (const auto& [sw_id, ee] : emu_->ees()) {
    const int ports = emu_->public_ports(sw_id);
    model::BisBis bb = model::make_bisbis(domain() + "." + sw_id,
                                          ee.capacity, ports,
                                          /*internal_delay=*/0.1);
    bb.domain = domain();
    UNIFY_RETURN_IF_ERROR(view.add_bisbis(std::move(bb)));
  }
  int link_seq = 0;
  for (const auto& wire : emu_->wires()) {
    UNIFY_RETURN_IF_ERROR(view.add_bidirectional_link(
        domain() + ".w" + std::to_string(link_seq++),
        model::PortRef{domain() + "." + wire.a, wire.port_a},
        model::PortRef{domain() + "." + wire.b, wire.port_b}, wire.attrs));
  }
  for (const auto& sap : emu_->saps()) {
    UNIFY_RETURN_IF_ERROR(view.add_sap(model::Sap{sap.sap, sap.sap}));
    UNIFY_RETURN_IF_ERROR(view.add_bidirectional_link(
        domain() + ".s-" + sap.sap, model::PortRef{sap.sap, 0},
        model::PortRef{domain() + "." + sap.sw, sap.port}, sap.attrs));
  }
  return view;
}

Result<void> EmuAdapter::do_place_nf(const std::string& node,
                                     const model::NfInstance& nf) {
  return emu_->start_click(nf.id, nf.type, local(node), nf.requirement,
                           static_cast<int>(nf.ports.size()));
}

Result<void> EmuAdapter::do_remove_nf(const std::string& node,
                                      const std::string& nf_id) {
  (void)node;
  return emu_->stop_click(nf_id);
}

Result<int> EmuAdapter::switch_port_of(const model::PortRef& ref,
                                       const std::string& node) const {
  if (ref.node == node) return ref.port;
  const infra::ClickProcess* click = emu_->find_click(ref.node);
  if (click == nullptr) {
    return Error{ErrorCode::kNotFound, "click process " + ref.node};
  }
  if (ref.port < 0 ||
      ref.port >= static_cast<int>(click->switch_ports.size())) {
    return Error{ErrorCode::kNotFound,
                 "click port " + ref.to_string() + " out of range"};
  }
  return click->switch_ports[static_cast<std::size_t>(ref.port)];
}

Result<void> EmuAdapter::do_install_rule(const std::string& node,
                                         const model::Flowrule& rule) {
  UNIFY_ASSIGN_OR_RETURN(const int in_port, switch_port_of(rule.in, node));
  UNIFY_ASSIGN_OR_RETURN(const int out_port, switch_port_of(rule.out, node));
  infra::FlowEntry entry;
  entry.id = rule.id;
  entry.in_port = in_port;
  entry.match_tag = rule.match_tag;
  entry.out_port = out_port;
  entry.set_tag = rule.set_tag;
  return emu_->install_flow(local(node), std::move(entry));
}

Result<void> EmuAdapter::do_remove_rule(const std::string& node,
                                        const std::string& rule_id) {
  return emu_->remove_flow(local(node), rule_id);
}

}  // namespace unify::adapters
