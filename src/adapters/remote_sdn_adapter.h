// Adapter for a POX-controlled OpenFlow domain reached over a real control
// channel: topology is discovered with of.topology and flowrules travel as
// of.flow_mod messages through the framed RPC channel — the paper's
// "control of legacy OpenFlow networks is realized by a POX controller and
// a corresponding adapter module", with the channel in between.
//
// Functionally equivalent to SdnAdapter (same view, same semantics); the
// difference is the domain boundary, which E2/E4-style measurements can
// then include.
#pragma once

#include <memory>
#include <vector>

#include "adapters/base_adapter.h"
#include "proto/rpc.h"

namespace unify::adapters {

class RemoteSdnAdapter final : public BaseAdapter {
 public:
  RemoteSdnAdapter(std::string domain_name,
                   std::shared_ptr<proto::Transport> transport);

  [[nodiscard]] const std::string& domain() const noexcept override {
    return domain_;
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return flow_mods_sent_;
  }
  /// Serialized with every other adapter in the same driver domain (the
  /// control channel's RPCs pump it).
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return exclusion_key_;
  }

  /// Ties helper objects' lifetime (e.g. the PoxController) to this
  /// adapter.
  void keep_alive(std::shared_ptr<void> dependency) {
    dependencies_.push_back(std::move(dependency));
  }

 protected:
  [[nodiscard]] Result<model::Nffg> build_skeleton() override;
  Result<void> do_place_nf(const std::string& node,
                           const model::NfInstance& nf) override;
  Result<void> do_remove_nf(const std::string& node,
                            const std::string& nf_id) override;
  Result<void> do_install_rule(const std::string& node,
                               const model::Flowrule& rule) override;
  Result<void> do_remove_rule(const std::string& node,
                              const std::string& rule_id) override;

 private:
  [[nodiscard]] std::string local(const std::string& node) const;
  Result<void> send_flow_mod(const std::string& node,
                             const model::Flowrule& rule, bool remove);

  std::string domain_;
  proto::RpcPeer peer_;
  const void* exclusion_key_;
  std::uint64_t flow_mods_sent_ = 0;
  std::vector<std::shared_ptr<void>> dependencies_;
};

}  // namespace unify::adapters
