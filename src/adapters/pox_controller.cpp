#include "adapters/pox_controller.h"

#include "proto/openflow.h"

namespace unify::adapters {

PoxController::PoxController(infra::SdnNetwork& net,
                             std::shared_ptr<proto::Transport> transport)
    : net_(&net), peer_(std::move(transport), net.name() + "-pox") {
  peer_.on_request(
      proto::openflow::kFlowModMethod,
      [this](const json::Value& params) -> Result<json::Value> {
        UNIFY_ASSIGN_OR_RETURN(const proto::openflow::FlowMod msg,
                               proto::openflow::flow_mod_from_json(params));
        if (msg.command == proto::openflow::FlowModCommand::kAdd) {
          UNIFY_RETURN_IF_ERROR(net_->install_flow(msg.dpid, msg.entry));
        } else {
          UNIFY_RETURN_IF_ERROR(net_->remove_flow(msg.dpid, msg.entry.id));
        }
        return json::Value{json::Object{}};
      });
  peer_.on_request(
      proto::openflow::kTopologyMethod,
      [this](const json::Value&) -> Result<json::Value> {
        json::Object out;
        json::Array switches;
        for (const auto& [id, sw] : net_->fabric().switches()) {
          json::Object o;
          o.set("dpid", id);
          o.set("ports", sw.port_count());
          switches.emplace_back(std::move(o));
        }
        out.set("switches", std::move(switches));
        json::Array wires;
        for (const auto& wire : net_->wires()) {
          json::Object o;
          o.set("a", wire.a);
          o.set("port_a", wire.port_a);
          o.set("b", wire.b);
          o.set("port_b", wire.port_b);
          o.set("bandwidth", wire.attrs.bandwidth);
          o.set("delay", wire.attrs.delay);
          wires.emplace_back(std::move(o));
        }
        out.set("wires", std::move(wires));
        json::Array saps;
        for (const auto& sap : net_->saps()) {
          json::Object o;
          o.set("sap", sap.sap);
          o.set("switch", sap.sw);
          o.set("port", sap.port);
          o.set("bandwidth", sap.attrs.bandwidth);
          o.set("delay", sap.attrs.delay);
          saps.emplace_back(std::move(o));
        }
        out.set("saps", std::move(saps));
        return json::Value{std::move(out)};
      });
}

}  // namespace unify::adapters
