// Adapter for the POX-controlled legacy OpenFlow domain.
//
// Advertises every switch as a compute-less BiS-BiS ("<domain>.<switch>")
// so chains can transit the network but no NF can be placed here.
// Flowrules become OpenFlow flow-mods through the controller.
#pragma once

#include "adapters/base_adapter.h"
#include "infra/sdn_network.h"

namespace unify::adapters {

class SdnAdapter final : public BaseAdapter {
 public:
  /// The network must outlive the adapter.
  explicit SdnAdapter(infra::SdnNetwork& net) : net_(&net) {}

  [[nodiscard]] const std::string& domain() const noexcept override {
    return net_->name();
  }
  [[nodiscard]] std::uint64_t native_operations() const noexcept override {
    return net_->flow_ops();
  }
  /// Serialized with every other adapter driving the same simulated clock.
  [[nodiscard]] const void* exclusion_key() const noexcept override {
    return &net_->clock();
  }

 protected:
  [[nodiscard]] Result<model::Nffg> build_skeleton() override;
  Result<void> do_place_nf(const std::string& node,
                           const model::NfInstance& nf) override;
  Result<void> do_remove_nf(const std::string& node,
                            const std::string& nf_id) override;
  Result<void> do_install_rule(const std::string& node,
                               const model::Flowrule& rule) override;
  Result<void> do_remove_rule(const std::string& node,
                              const std::string& rule_id) override;

 private:
  [[nodiscard]] std::string local(const std::string& node) const;

  infra::SdnNetwork* net_;
};

}  // namespace unify::adapters
