#include "adapters/un_adapter.h"

#include "model/nffg_builder.h"

namespace unify::adapters {

void UnAdapter::map_sap(int ext_port, const std::string& sap_id,
                        model::LinkAttrs attrs) {
  sap_bindings_[ext_port] = SapBinding{sap_id, attrs};
}

Result<model::Nffg> UnAdapter::build_skeleton() {
  model::Nffg view{domain() + "-view"};
  model::BisBis bb;
  bb.id = bisbis_id();
  bb.name = domain() + " universal node";
  bb.domain = domain();
  bb.capacity = un_->capacity();
  bb.internal_delay = 0.01;  // DPDK fast path
  for (int p = 0; p < 4; ++p) bb.ports.push_back(model::Port{p, ""});
  UNIFY_RETURN_IF_ERROR(view.add_bisbis(std::move(bb)));
  for (const auto& [port, binding] : sap_bindings_) {
    UNIFY_RETURN_IF_ERROR(view.add_sap(model::Sap{binding.sap, binding.sap}));
    UNIFY_RETURN_IF_ERROR(view.add_bidirectional_link(
        domain() + ".s-" + binding.sap, model::PortRef{binding.sap, 0},
        model::PortRef{bisbis_id(), port}, binding.attrs));
  }
  return view;
}

Result<void> UnAdapter::refresh_statuses(model::Nffg& view) {
  model::BisBis* bb = view.find_bisbis(bisbis_id());
  if (bb == nullptr) return Result<void>::success();
  for (auto& [nf_id, nf] : bb->nfs) {
    const infra::Container* c = un_->find_container(nf_id);
    if (c == nullptr) continue;
    switch (c->status) {
      case infra::ContainerStatus::kStarting:
        nf.status = model::NfStatus::kDeploying;
        break;
      case infra::ContainerStatus::kRunning:
        nf.status = model::NfStatus::kRunning;
        break;
      case infra::ContainerStatus::kStopped:
        nf.status = model::NfStatus::kStopped;
        break;
    }
  }
  return Result<void>::success();
}

Result<void> UnAdapter::do_place_nf(const std::string& node,
                                    const model::NfInstance& nf) {
  if (node != bisbis_id()) {
    return Error{ErrorCode::kNotFound, "unknown BiS-BiS " + node};
  }
  return un_->start_container(nf.id, nf.type, nf.requirement,
                              static_cast<int>(nf.ports.size()));
}

Result<void> UnAdapter::do_remove_nf(const std::string& node,
                                     const std::string& nf_id) {
  (void)node;
  return un_->stop_container(nf_id);
}

Result<void> UnAdapter::do_install_rule(const std::string& node,
                                        const model::Flowrule& rule) {
  const auto endpoint = [&](const model::PortRef& ref) {
    return ref.node == node ? "ext" + std::to_string(ref.port)
                            : ref.node + ":" + std::to_string(ref.port);
  };
  return un_->add_flowrule(rule.id, endpoint(rule.in), rule.match_tag,
                           endpoint(rule.out), rule.set_tag);
}

Result<void> UnAdapter::do_remove_rule(const std::string& node,
                                       const std::string& rule_id) {
  (void)node;
  return un_->remove_flowrule(rule_id);
}

}  // namespace unify::adapters
