// Path and reachability algorithms over Digraph-shaped data.
//
// The algorithms are decoupled from Digraph<N,E> through a tiny adapter
// (EdgeScanFn) so callers can weight edges by delay, by hop count, or by a
// residual-capacity-aware cost without copying the graph. Edges reported
// with a negative weight are treated as unusable (filtered out), which is
// how mappers mask links without residual bandwidth.
//
// shortest_path, shortest_path_tree and k_shortest_paths here are
// compatibility shims over the allocation-free template kernel in
// path_kernel.h; hot callers (the mapping layer, batch workers) use the
// kernel directly with a concrete scan functor and a reusable
// PathWorkspace.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace unify::graph {

/// Callback receiving (edge id, head node, weight) for each out-edge.
using EdgeVisitFn = std::function<void(EdgeId, NodeId, double)>;

/// Adapter: invoke the visitor for every out-edge of `node`.
using EdgeScanFn = std::function<void(NodeId node, const EdgeVisitFn&)>;

/// A path: total cost, node sequence (front()==source, back()==target) and
/// the edge ids between consecutive nodes (edges.size()+1 == nodes.size()).
struct Path {
  double cost = 0;
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;

  [[nodiscard]] std::size_t hop_count() const noexcept {
    return edges.size();
  }
  friend bool operator==(const Path& a, const Path& b) {
    return a.edges == b.edges && a.nodes == b.nodes;
  }
};

/// Convenience adapter for a Digraph with a per-edge weight functor.
/// `weight(edge_id, edge)` returning < 0 masks the edge.
template <typename NodeData, typename EdgeData, typename WeightFn>
EdgeScanFn scan_digraph(const Digraph<NodeData, EdgeData>& g,
                        WeightFn weight) {
  return [&g, weight](NodeId node, const EdgeVisitFn& visit) {
    for (const EdgeId e : g.out_edges(node)) {
      const auto& edge = g.edge(e);
      visit(e, edge.to, weight(e, edge));
    }
  };
}

/// Dijkstra from `source` to `target`. `node_capacity` bounds node ids
/// (Digraph::node_capacity()). Returns nullopt when unreachable.
[[nodiscard]] std::optional<Path> shortest_path(std::size_t node_capacity,
                                                NodeId source, NodeId target,
                                                const EdgeScanFn& scan);

/// Single-source Dijkstra; dist[target] is +inf when unreachable.
struct ShortestPathTree {
  std::vector<double> dist;        // indexed by node id
  std::vector<EdgeId> parent_edge; // kInvalidId at source / unreachable
  std::vector<NodeId> parent_node; // kInvalidId at source / unreachable

  /// Reconstructs the path to `target`; nullopt when unreachable.
  [[nodiscard]] std::optional<Path> path_to(NodeId source,
                                            NodeId target) const;
};
[[nodiscard]] ShortestPathTree shortest_path_tree(std::size_t node_capacity,
                                                  NodeId source,
                                                  const EdgeScanFn& scan);

/// Yen's algorithm: up to k loopless shortest paths, ascending cost.
[[nodiscard]] std::vector<Path> k_shortest_paths(std::size_t node_capacity,
                                                 NodeId source, NodeId target,
                                                 std::size_t k,
                                                 const EdgeScanFn& scan);

/// BFS reachability (edge weights ignored; masked edges still skipped).
[[nodiscard]] std::vector<bool> reachable_from(std::size_t node_capacity,
                                               NodeId source,
                                               const EdgeScanFn& scan);

/// Weakly-connected components over the union of both edge directions.
/// Returns component index per node id (-1 for ids not in `nodes`).
[[nodiscard]] std::vector<int> weak_components(
    std::size_t node_capacity, const std::vector<NodeId>& nodes,
    const EdgeScanFn& scan_out, const EdgeScanFn& scan_in);

inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace unify::graph
