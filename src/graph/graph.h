// Directed multigraph with typed node/edge payloads.
//
// Used for substrate topologies (switch networks, data centers), the NFFG
// resource model and service graphs. Parallel edges are first-class (two
// links between the same pair of BiS-BiS nodes are common), so edges have
// their own ids. Nodes/edges live in contiguous slots; removal tombstones a
// slot, keeping ids stable — important because mappings hold edge ids.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace unify::graph {

/// Index-like ids. kInvalidId marks "no node/edge".
using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr NodeId kInvalidId = static_cast<NodeId>(-1);

template <typename NodeData, typename EdgeData>
class Digraph {
 public:
  struct Edge {
    NodeId from = kInvalidId;
    NodeId to = kInvalidId;
    EdgeData data{};
  };

  Digraph() = default;

  // ------------------------------------------------------------- nodes

  NodeId add_node(NodeData data = {}) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Slot<NodeData>{std::move(data), true});
    out_edges_.emplace_back();
    in_edges_.emplace_back();
    ++node_count_;
    return id;
  }

  /// Removes the node and all incident edges. Id becomes invalid but is
  /// never reused.
  void remove_node(NodeId id) {
    assert(has_node(id));
    // Copy: remove_edge mutates the adjacency vectors.
    const std::vector<EdgeId> out = out_edges_[id];
    for (const EdgeId e : out) remove_edge(e);
    const std::vector<EdgeId> in = in_edges_[id];
    for (const EdgeId e : in) remove_edge(e);
    nodes_[id].alive = false;
    --node_count_;
  }

  [[nodiscard]] bool has_node(NodeId id) const noexcept {
    return id < nodes_.size() && nodes_[id].alive;
  }

  [[nodiscard]] NodeData& node(NodeId id) {
    assert(has_node(id));
    return nodes_[id].data;
  }
  [[nodiscard]] const NodeData& node(NodeId id) const {
    assert(has_node(id));
    return nodes_[id].data;
  }

  /// Number of live nodes.
  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

  /// Upper bound over all ids ever allocated (for dense arrays indexed by id).
  [[nodiscard]] std::size_t node_capacity() const noexcept {
    return nodes_.size();
  }

  /// Live node ids in ascending order.
  [[nodiscard]] std::vector<NodeId> node_ids() const {
    std::vector<NodeId> out;
    out.reserve(node_count_);
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].alive) out.push_back(id);
    }
    return out;
  }

  // ------------------------------------------------------------- edges

  EdgeId add_edge(NodeId from, NodeId to, EdgeData data = {}) {
    assert(has_node(from) && has_node(to));
    const EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Slot<Edge>{Edge{from, to, std::move(data)}, true});
    out_edges_[from].push_back(id);
    in_edges_[to].push_back(id);
    ++edge_count_;
    return id;
  }

  void remove_edge(EdgeId id) {
    assert(has_edge(id));
    const Edge& e = edges_[id].data;
    erase_value(out_edges_[e.from], id);
    erase_value(in_edges_[e.to], id);
    edges_[id].alive = false;
    --edge_count_;
  }

  [[nodiscard]] bool has_edge(EdgeId id) const noexcept {
    return id < edges_.size() && edges_[id].alive;
  }

  [[nodiscard]] Edge& edge(EdgeId id) {
    assert(has_edge(id));
    return edges_[id].data;
  }
  [[nodiscard]] const Edge& edge(EdgeId id) const {
    assert(has_edge(id));
    return edges_[id].data;
  }

  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }
  [[nodiscard]] std::size_t edge_capacity() const noexcept {
    return edges_.size();
  }

  [[nodiscard]] std::vector<EdgeId> edge_ids() const {
    std::vector<EdgeId> out;
    out.reserve(edge_count_);
    for (EdgeId id = 0; id < edges_.size(); ++id) {
      if (edges_[id].alive) out.push_back(id);
    }
    return out;
  }

  /// Outgoing/incoming edge ids of a node.
  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId id) const {
    assert(has_node(id));
    return out_edges_[id];
  }
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId id) const {
    assert(has_node(id));
    return in_edges_[id];
  }

  /// First live edge from -> to, or nullopt.
  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId from,
                                                NodeId to) const {
    if (!has_node(from)) return std::nullopt;
    for (const EdgeId e : out_edges_[from]) {
      if (edges_[e].data.to == to) return e;
    }
    return std::nullopt;
  }

 private:
  template <typename T>
  struct Slot {
    T data{};
    bool alive = false;
  };

  static void erase_value(std::vector<EdgeId>& vec, EdgeId value) {
    for (auto it = vec.begin(); it != vec.end(); ++it) {
      if (*it == value) {
        vec.erase(it);
        return;
      }
    }
    assert(false && "edge missing from adjacency list");
  }

  std::vector<Slot<NodeData>> nodes_;
  std::vector<Slot<Edge>> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::size_t node_count_ = 0;
  std::size_t edge_count_ = 0;
};

}  // namespace unify::graph
