#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "graph/path_kernel.h"

namespace unify::graph {

namespace {

/// Workspace reused by every EdgeScanFn-based query on this thread; callers
/// that want a private workspace (or a devirtualized scan) use the kernel
/// in path_kernel.h directly.
PathWorkspace& scratch_workspace() {
  thread_local PathWorkspace workspace;
  return workspace;
}

}  // namespace

ShortestPathTree shortest_path_tree(std::size_t node_capacity, NodeId source,
                                    const EdgeScanFn& scan) {
  // Compatibility shim: full Dijkstra on the reusable kernel workspace,
  // exported into the legacy dense representation.
  PathWorkspace& workspace = scratch_workspace();
  shortest_path_tree(workspace, node_capacity, source, scan);
  return export_shortest_path_tree(workspace, node_capacity);
}

std::optional<Path> ShortestPathTree::path_to(NodeId source,
                                              NodeId target) const {
  if (target >= dist.size() || dist[target] == kInf) return std::nullopt;
  Path path;
  path.cost = dist[target];
  NodeId cur = target;
  while (cur != source) {
    path.nodes.push_back(cur);
    path.edges.push_back(parent_edge[cur]);
    cur = parent_node[cur];
  }
  path.nodes.push_back(source);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

std::optional<Path> shortest_path(std::size_t node_capacity, NodeId source,
                                  NodeId target, const EdgeScanFn& scan) {
  // Compatibility shim: same early-exit Dijkstra, run on the reusable
  // kernel workspace.
  return shortest_path(scratch_workspace(), node_capacity, source, target,
                       scan);
}

std::vector<Path> k_shortest_paths(std::size_t node_capacity, NodeId source,
                                   NodeId target, std::size_t k,
                                   const EdgeScanFn& scan) {
  // Compatibility shim over the kernel-templated Yen in path_kernel.h.
  return k_shortest_paths(scratch_workspace(), node_capacity, source, target,
                          k, scan);
}

std::vector<bool> reachable_from(std::size_t node_capacity, NodeId source,
                                 const EdgeScanFn& scan) {
  std::vector<bool> seen(node_capacity, false);
  if (source >= node_capacity) return seen;
  std::queue<NodeId> frontier;
  seen[source] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    scan(node, [&](EdgeId, NodeId to, double weight) {
      if (weight < 0 || to >= node_capacity || seen[to]) return;
      seen[to] = true;
      frontier.push(to);
    });
  }
  return seen;
}

std::vector<int> weak_components(std::size_t node_capacity,
                                 const std::vector<NodeId>& nodes,
                                 const EdgeScanFn& scan_out,
                                 const EdgeScanFn& scan_in) {
  std::vector<int> component(node_capacity, -1);
  int next = 0;
  for (const NodeId root : nodes) {
    if (root >= node_capacity || component[root] != -1) continue;
    const int label = next++;
    std::queue<NodeId> frontier;
    component[root] = label;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId node = frontier.front();
      frontier.pop();
      const auto visit = [&](EdgeId, NodeId other, double) {
        if (other < node_capacity && component[other] == -1) {
          component[other] = label;
          frontier.push(other);
        }
      };
      scan_out(node, visit);
      scan_in(node, visit);
    }
  }
  return component;
}

}  // namespace unify::graph
