#include "graph/algorithms.h"

#include <algorithm>
#include <queue>
#include <set>

#include "graph/path_kernel.h"

namespace unify::graph {

namespace {

struct QueueItem {
  double dist;
  NodeId node;
  friend bool operator>(const QueueItem& a, const QueueItem& b) noexcept {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.node > b.node;  // deterministic tie-break
  }
};

using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

/// Workspace reused by every EdgeScanFn-based query on this thread; callers
/// that want a private workspace (or a devirtualized scan) use the kernel
/// in path_kernel.h directly.
PathWorkspace& scratch_workspace() {
  thread_local PathWorkspace workspace;
  return workspace;
}

}  // namespace

ShortestPathTree shortest_path_tree(std::size_t node_capacity, NodeId source,
                                    const EdgeScanFn& scan) {
  ShortestPathTree tree;
  tree.dist.assign(node_capacity, kInf);
  tree.parent_edge.assign(node_capacity, kInvalidId);
  tree.parent_node.assign(node_capacity, kInvalidId);
  if (source >= node_capacity) return tree;

  std::vector<bool> done(node_capacity, false);
  tree.dist[source] = 0;
  MinQueue queue;
  queue.push({0, source});
  while (!queue.empty()) {
    const auto [dist, node] = queue.top();
    queue.pop();
    if (done[node]) continue;
    done[node] = true;
    scan(node, [&](EdgeId edge, NodeId to, double weight) {
      if (weight < 0 || to >= node_capacity || done[to]) return;
      const double candidate = dist + weight;
      if (candidate < tree.dist[to]) {
        tree.dist[to] = candidate;
        tree.parent_edge[to] = edge;
        tree.parent_node[to] = node;
        queue.push({candidate, to});
      }
    });
  }
  return tree;
}

std::optional<Path> ShortestPathTree::path_to(NodeId source,
                                              NodeId target) const {
  if (target >= dist.size() || dist[target] == kInf) return std::nullopt;
  Path path;
  path.cost = dist[target];
  NodeId cur = target;
  while (cur != source) {
    path.nodes.push_back(cur);
    path.edges.push_back(parent_edge[cur]);
    cur = parent_node[cur];
  }
  path.nodes.push_back(source);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

std::optional<Path> shortest_path(std::size_t node_capacity, NodeId source,
                                  NodeId target, const EdgeScanFn& scan) {
  // Compatibility shim: same early-exit Dijkstra, run on the reusable
  // kernel workspace.
  return shortest_path(scratch_workspace(), node_capacity, source, target,
                       scan);
}

std::vector<Path> k_shortest_paths(std::size_t node_capacity, NodeId source,
                                   NodeId target, std::size_t k,
                                   const EdgeScanFn& scan) {
  std::vector<Path> result;
  if (k == 0) return result;

  auto masked_scan = [&](const std::vector<bool>& banned_nodes,
                         const std::set<EdgeId>& banned_edges) {
    return [&, banned_nodes, banned_edges](NodeId node,
                                           const EdgeVisitFn& visit) {
      scan(node, [&](EdgeId edge, NodeId to, double weight) {
        if (banned_edges.count(edge) != 0) return;
        if (to < banned_nodes.size() && banned_nodes[to]) return;
        visit(edge, to, weight);
      });
    };
  };

  auto first = shortest_path(node_capacity, source, target, scan);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidate pool ordered by cost then edge sequence (deterministic).
  auto cmp = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.edges < b.edges;
  };
  std::vector<Path> candidates;

  while (result.size() < k) {
    const Path& prev = result.back();
    // Deviate at every node of the previous path (classic Yen).
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur_node = prev.nodes[i];
      // Root = prev.nodes[0..i].
      std::set<EdgeId> banned_edges;
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(p.nodes.begin(), p.nodes.begin() + static_cast<long>(i) + 1,
                       prev.nodes.begin())) {
          if (i < p.edges.size()) banned_edges.insert(p.edges[i]);
        }
      }
      std::vector<bool> banned_nodes(node_capacity, false);
      for (std::size_t j = 0; j < i; ++j) banned_nodes[prev.nodes[j]] = true;

      auto spur = shortest_path(node_capacity, spur_node, target,
                                masked_scan(banned_nodes, banned_edges));
      if (!spur) continue;

      Path total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() + static_cast<long>(i));
      total.edges.assign(prev.edges.begin(),
                         prev.edges.begin() + static_cast<long>(i));
      total.nodes.insert(total.nodes.end(), spur->nodes.begin(),
                         spur->nodes.end());
      total.edges.insert(total.edges.end(), spur->edges.begin(),
                         spur->edges.end());
      // Root cost: recompute from the weights seen during the spur search is
      // unavailable; accumulate by re-scanning each root edge.
      double root_cost = 0;
      for (std::size_t j = 0; j < i; ++j) {
        const EdgeId want = prev.edges[j];
        double w = 0;
        scan(prev.nodes[j], [&](EdgeId edge, NodeId, double weight) {
          if (edge == want) w = weight;
        });
        root_cost += w;
      }
      total.cost = root_cost + spur->cost;

      if (std::find(result.begin(), result.end(), total) == result.end() &&
          std::find(candidates.begin(), candidates.end(), total) ==
              candidates.end()) {
        candidates.push_back(std::move(total));
      }
    }
    if (candidates.empty()) break;
    auto best = std::min_element(candidates.begin(), candidates.end(), cmp);
    result.push_back(std::move(*best));
    candidates.erase(best);
  }
  return result;
}

std::vector<bool> reachable_from(std::size_t node_capacity, NodeId source,
                                 const EdgeScanFn& scan) {
  std::vector<bool> seen(node_capacity, false);
  if (source >= node_capacity) return seen;
  std::queue<NodeId> frontier;
  seen[source] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    scan(node, [&](EdgeId, NodeId to, double weight) {
      if (weight < 0 || to >= node_capacity || seen[to]) return;
      seen[to] = true;
      frontier.push(to);
    });
  }
  return seen;
}

std::vector<int> weak_components(std::size_t node_capacity,
                                 const std::vector<NodeId>& nodes,
                                 const EdgeScanFn& scan_out,
                                 const EdgeScanFn& scan_in) {
  std::vector<int> component(node_capacity, -1);
  int next = 0;
  for (const NodeId root : nodes) {
    if (root >= node_capacity || component[root] != -1) continue;
    const int label = next++;
    std::queue<NodeId> frontier;
    component[root] = label;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId node = frontier.front();
      frontier.pop();
      const auto visit = [&](EdgeId, NodeId other, double) {
        if (other < node_capacity && component[other] == -1) {
          component[other] = label;
          frontier.push(other);
        }
      };
      scan_out(node, visit);
      scan_in(node, visit);
    }
  }
  return component;
}

}  // namespace unify::graph
