// Allocation-free shortest-path kernel.
//
// The EdgeScanFn-based engine in algorithms.h pays twice on the embedding
// hot path: every Dijkstra run allocates fresh distance/parent/heap arrays,
// and every edge relaxation goes through two std::function indirections.
// This header provides the fast variant used by the mappers: a template
// over the scan functor (fully inlinable, no virtual dispatch) driving a
// PathWorkspace whose arrays are sized once per substrate and logically
// reset by bumping an epoch counter instead of refilling.
//
// Semantics are identical to graph::shortest_path (same deterministic
// (dist, node) tie-break, same negative-weight edge masking); the
// EdgeScanFn overloads in algorithms.h are thin shims over this kernel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/algorithms.h"

namespace unify::graph {

/// Reusable scratch space for shortest-path runs. Arrays grow to the
/// largest node capacity seen and are never shrunk; per-run reset costs
/// O(1) (an epoch bump) instead of O(nodes). Not thread-safe: use one
/// workspace per thread (mapping Contexts own one each).
class PathWorkspace {
 public:
  /// Per-node search state, valid only while the matching epoch stamp is
  /// current.
  struct NodeState {
    double dist = 0;
    EdgeId parent_edge = kInvalidId;
    NodeId parent_node = kInvalidId;
    std::uint64_t seen = 0;  ///< dist/parents valid iff == epoch
    std::uint64_t done = 0;  ///< node settled iff == epoch
  };

  struct HeapItem {
    double dist;
    NodeId node;
  };

  /// Starts a new search over `node_capacity` node ids.
  void begin(std::size_t node_capacity) {
    if (nodes_.size() < node_capacity) nodes_.resize(node_capacity);
    ++epoch_;
    heap_.clear();
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return nodes_.size(); }

  std::vector<NodeState> nodes_;
  std::vector<HeapItem> heap_;

 private:
  std::uint64_t epoch_ = 0;
};

namespace detail {

/// Heap comparator reproducing the MinQueue ordering of algorithms.cpp:
/// the heap's "largest" element (the one std::pop_heap extracts) is the
/// item with the smallest (dist, node) pair.
struct HeapAfter {
  bool operator()(const PathWorkspace::HeapItem& a,
                  const PathWorkspace::HeapItem& b) const noexcept {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.node > b.node;
  }
};

}  // namespace detail

/// Early-exit Dijkstra from `source` to `target` over `scan`, which must be
/// callable as scan(NodeId, visit) with visit(EdgeId, NodeId to, double
/// weight); negative weights mask edges. Returns nullopt when unreachable.
template <typename ScanFn>
[[nodiscard]] std::optional<Path> shortest_path(PathWorkspace& ws,
                                                std::size_t node_capacity,
                                                NodeId source, NodeId target,
                                                ScanFn&& scan) {
  if (source >= node_capacity || target >= node_capacity) return std::nullopt;
  ws.begin(node_capacity);
  const std::uint64_t epoch = ws.epoch();
  auto& nodes = ws.nodes_;
  auto& heap = ws.heap_;

  nodes[source].dist = 0;
  nodes[source].parent_edge = kInvalidId;
  nodes[source].parent_node = kInvalidId;
  nodes[source].seen = epoch;
  heap.push_back({0, source});

  const detail::HeapAfter after;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    const auto [d, node] = heap.back();
    heap.pop_back();
    if (nodes[node].done == epoch) continue;
    nodes[node].done = epoch;
    if (node == target) break;
    scan(node, [&](EdgeId edge, NodeId to, double weight) {
      if (weight < 0 || to >= node_capacity) return;
      PathWorkspace::NodeState& state = nodes[to];
      if (state.done == epoch) return;
      const double candidate = d + weight;
      if (state.seen != epoch || candidate < state.dist) {
        state.dist = candidate;
        state.parent_edge = edge;
        state.parent_node = node;
        state.seen = epoch;
        heap.push_back({candidate, to});
        std::push_heap(heap.begin(), heap.end(), after);
      }
    });
  }

  if (nodes[target].seen != epoch) return std::nullopt;
  Path path;
  path.cost = nodes[target].dist;
  NodeId cur = target;
  while (cur != source) {
    path.nodes.push_back(cur);
    path.edges.push_back(nodes[cur].parent_edge);
    cur = nodes[cur].parent_node;
  }
  path.nodes.push_back(source);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

/// Single-source Dijkstra (no early exit) into the workspace: after the
/// call, ws.nodes_[v] holds dist/parents for every reachable v (stamped
/// with the current epoch; unstamped nodes are unreachable). Same
/// deterministic (dist, node) tie-break and negative-weight masking as the
/// EdgeScanFn engine it replaces. Use export_shortest_path_tree() to
/// materialize the legacy dense ShortestPathTree, or read the workspace
/// directly on hot paths.
template <typename ScanFn>
void shortest_path_tree(PathWorkspace& ws, std::size_t node_capacity,
                        NodeId source, ScanFn&& scan) {
  ws.begin(node_capacity);
  if (source >= node_capacity) return;
  const std::uint64_t epoch = ws.epoch();
  auto& nodes = ws.nodes_;
  auto& heap = ws.heap_;

  nodes[source].dist = 0;
  nodes[source].parent_edge = kInvalidId;
  nodes[source].parent_node = kInvalidId;
  nodes[source].seen = epoch;
  heap.push_back({0, source});

  const detail::HeapAfter after;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    const auto [d, node] = heap.back();
    heap.pop_back();
    if (nodes[node].done == epoch) continue;
    nodes[node].done = epoch;
    scan(node, [&](EdgeId edge, NodeId to, double weight) {
      if (weight < 0 || to >= node_capacity) return;
      PathWorkspace::NodeState& state = nodes[to];
      if (state.done == epoch) return;
      const double candidate = d + weight;
      if (state.seen != epoch || candidate < state.dist) {
        state.dist = candidate;
        state.parent_edge = edge;
        state.parent_node = node;
        state.seen = epoch;
        heap.push_back({candidate, to});
        std::push_heap(heap.begin(), heap.end(), after);
      }
    });
  }
}

/// Copies the current-epoch search state of `ws` (filled by
/// shortest_path_tree above) into the legacy dense representation.
[[nodiscard]] inline ShortestPathTree export_shortest_path_tree(
    const PathWorkspace& ws, std::size_t node_capacity) {
  ShortestPathTree tree;
  tree.dist.assign(node_capacity, kInf);
  tree.parent_edge.assign(node_capacity, kInvalidId);
  tree.parent_node.assign(node_capacity, kInvalidId);
  const std::uint64_t epoch = ws.epoch();
  for (std::size_t v = 0; v < node_capacity && v < ws.nodes_.size(); ++v) {
    const PathWorkspace::NodeState& state = ws.nodes_[v];
    if (state.seen != epoch) continue;
    tree.dist[v] = state.dist;
    tree.parent_edge[v] = state.parent_edge;
    tree.parent_node[v] = state.parent_node;
  }
  return tree;
}

/// Yen's algorithm on the kernel: up to k loopless shortest paths in
/// ascending cost, byte-identical to the legacy EdgeScanFn
/// k_shortest_paths (same deviation order, candidate dedup and
/// deterministic cost/edge-sequence tie-breaks). Every spur search runs on
/// `ws` with the scan functor fully inlined, so repeated calls inside
/// batch workers reuse one warm workspace.
template <typename ScanFn>
[[nodiscard]] std::vector<Path> k_shortest_paths(PathWorkspace& ws,
                                                 std::size_t node_capacity,
                                                 NodeId source, NodeId target,
                                                 std::size_t k,
                                                 ScanFn&& scan) {
  std::vector<Path> result;
  if (k == 0) return result;

  auto first = shortest_path(ws, node_capacity, source, target, scan);
  if (!first) return result;
  result.push_back(std::move(*first));

  // Candidate pool ordered by cost then edge sequence (deterministic).
  auto cmp = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.edges < b.edges;
  };
  std::vector<Path> candidates;
  std::vector<bool> banned_nodes;
  std::vector<EdgeId> banned_edges;

  while (result.size() < k) {
    const Path& prev = result.back();
    // Deviate at every node of the previous path (classic Yen).
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur_node = prev.nodes[i];
      // Root = prev.nodes[0..i].
      banned_edges.clear();
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(p.nodes.begin(),
                       p.nodes.begin() + static_cast<long>(i) + 1,
                       prev.nodes.begin())) {
          if (i < p.edges.size()) banned_edges.push_back(p.edges[i]);
        }
      }
      banned_nodes.assign(node_capacity, false);
      for (std::size_t j = 0; j < i; ++j) banned_nodes[prev.nodes[j]] = true;

      auto masked = [&](NodeId node, auto&& visit) {
        scan(node, [&](EdgeId edge, NodeId to, double weight) {
          if (std::find(banned_edges.begin(), banned_edges.end(), edge) !=
              banned_edges.end()) {
            return;
          }
          if (to < banned_nodes.size() && banned_nodes[to]) return;
          visit(edge, to, weight);
        });
      };
      auto spur = shortest_path(ws, node_capacity, spur_node, target, masked);
      if (!spur) continue;

      Path total;
      total.nodes.assign(prev.nodes.begin(),
                         prev.nodes.begin() + static_cast<long>(i));
      total.edges.assign(prev.edges.begin(),
                         prev.edges.begin() + static_cast<long>(i));
      total.nodes.insert(total.nodes.end(), spur->nodes.begin(),
                         spur->nodes.end());
      total.edges.insert(total.edges.end(), spur->edges.begin(),
                         spur->edges.end());
      // Root cost: accumulate by re-scanning each root edge (the spur
      // search's weights are not retained).
      double root_cost = 0;
      for (std::size_t j = 0; j < i; ++j) {
        const EdgeId want = prev.edges[j];
        double w = 0;
        scan(prev.nodes[j], [&](EdgeId edge, NodeId, double weight) {
          if (edge == want) w = weight;
        });
        root_cost += w;
      }
      total.cost = root_cost + spur->cost;

      if (std::find(result.begin(), result.end(), total) == result.end() &&
          std::find(candidates.begin(), candidates.end(), total) ==
              candidates.end()) {
        candidates.push_back(std::move(total));
      }
    }
    if (candidates.empty()) break;
    auto best = std::min_element(candidates.begin(), candidates.end(), cmp);
    result.push_back(std::move(*best));
    candidates.erase(best);
  }
  return result;
}

/// Distance-only variant: the cost of the shortest path, kInf when
/// unreachable. Skips path reconstruction, so a query allocates nothing
/// once the workspace is warm.
template <typename ScanFn>
[[nodiscard]] double shortest_distance(PathWorkspace& ws,
                                       std::size_t node_capacity,
                                       NodeId source, NodeId target,
                                       ScanFn&& scan) {
  if (source >= node_capacity || target >= node_capacity) return kInf;
  if (source == target) return 0;
  ws.begin(node_capacity);
  const std::uint64_t epoch = ws.epoch();
  auto& nodes = ws.nodes_;
  auto& heap = ws.heap_;

  nodes[source].dist = 0;
  nodes[source].seen = epoch;
  heap.push_back({0, source});

  const detail::HeapAfter after;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    const auto [d, node] = heap.back();
    heap.pop_back();
    if (nodes[node].done == epoch) continue;
    nodes[node].done = epoch;
    if (node == target) return d;
    scan(node, [&](EdgeId, NodeId to, double weight) {
      if (weight < 0 || to >= node_capacity) return;
      PathWorkspace::NodeState& state = nodes[to];
      if (state.done == epoch) return;
      const double candidate = d + weight;
      if (state.seen != epoch || candidate < state.dist) {
        state.dist = candidate;
        state.seen = epoch;
        heap.push_back({candidate, to});
        std::push_heap(heap.begin(), heap.end(), after);
      }
    });
  }
  return kInf;
}

}  // namespace unify::graph
