// Allocation-free shortest-path kernel.
//
// The EdgeScanFn-based engine in algorithms.h pays twice on the embedding
// hot path: every Dijkstra run allocates fresh distance/parent/heap arrays,
// and every edge relaxation goes through two std::function indirections.
// This header provides the fast variant used by the mappers: a template
// over the scan functor (fully inlinable, no virtual dispatch) driving a
// PathWorkspace whose arrays are sized once per substrate and logically
// reset by bumping an epoch counter instead of refilling.
//
// Semantics are identical to graph::shortest_path (same deterministic
// (dist, node) tie-break, same negative-weight edge masking); the
// EdgeScanFn overloads in algorithms.h are thin shims over this kernel.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/algorithms.h"

namespace unify::graph {

/// Reusable scratch space for shortest-path runs. Arrays grow to the
/// largest node capacity seen and are never shrunk; per-run reset costs
/// O(1) (an epoch bump) instead of O(nodes). Not thread-safe: use one
/// workspace per thread (mapping Contexts own one each).
class PathWorkspace {
 public:
  /// Per-node search state, valid only while the matching epoch stamp is
  /// current.
  struct NodeState {
    double dist = 0;
    EdgeId parent_edge = kInvalidId;
    NodeId parent_node = kInvalidId;
    std::uint64_t seen = 0;  ///< dist/parents valid iff == epoch
    std::uint64_t done = 0;  ///< node settled iff == epoch
  };

  struct HeapItem {
    double dist;
    NodeId node;
  };

  /// Starts a new search over `node_capacity` node ids.
  void begin(std::size_t node_capacity) {
    if (nodes_.size() < node_capacity) nodes_.resize(node_capacity);
    ++epoch_;
    heap_.clear();
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return nodes_.size(); }

  std::vector<NodeState> nodes_;
  std::vector<HeapItem> heap_;

 private:
  std::uint64_t epoch_ = 0;
};

namespace detail {

/// Heap comparator reproducing the MinQueue ordering of algorithms.cpp:
/// the heap's "largest" element (the one std::pop_heap extracts) is the
/// item with the smallest (dist, node) pair.
struct HeapAfter {
  bool operator()(const PathWorkspace::HeapItem& a,
                  const PathWorkspace::HeapItem& b) const noexcept {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.node > b.node;
  }
};

}  // namespace detail

/// Early-exit Dijkstra from `source` to `target` over `scan`, which must be
/// callable as scan(NodeId, visit) with visit(EdgeId, NodeId to, double
/// weight); negative weights mask edges. Returns nullopt when unreachable.
template <typename ScanFn>
[[nodiscard]] std::optional<Path> shortest_path(PathWorkspace& ws,
                                                std::size_t node_capacity,
                                                NodeId source, NodeId target,
                                                ScanFn&& scan) {
  if (source >= node_capacity || target >= node_capacity) return std::nullopt;
  ws.begin(node_capacity);
  const std::uint64_t epoch = ws.epoch();
  auto& nodes = ws.nodes_;
  auto& heap = ws.heap_;

  nodes[source].dist = 0;
  nodes[source].parent_edge = kInvalidId;
  nodes[source].parent_node = kInvalidId;
  nodes[source].seen = epoch;
  heap.push_back({0, source});

  const detail::HeapAfter after;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    const auto [d, node] = heap.back();
    heap.pop_back();
    if (nodes[node].done == epoch) continue;
    nodes[node].done = epoch;
    if (node == target) break;
    scan(node, [&](EdgeId edge, NodeId to, double weight) {
      if (weight < 0 || to >= node_capacity) return;
      PathWorkspace::NodeState& state = nodes[to];
      if (state.done == epoch) return;
      const double candidate = d + weight;
      if (state.seen != epoch || candidate < state.dist) {
        state.dist = candidate;
        state.parent_edge = edge;
        state.parent_node = node;
        state.seen = epoch;
        heap.push_back({candidate, to});
        std::push_heap(heap.begin(), heap.end(), after);
      }
    });
  }

  if (nodes[target].seen != epoch) return std::nullopt;
  Path path;
  path.cost = nodes[target].dist;
  NodeId cur = target;
  while (cur != source) {
    path.nodes.push_back(cur);
    path.edges.push_back(nodes[cur].parent_edge);
    cur = nodes[cur].parent_node;
  }
  path.nodes.push_back(source);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

/// Distance-only variant: the cost of the shortest path, kInf when
/// unreachable. Skips path reconstruction, so a query allocates nothing
/// once the workspace is warm.
template <typename ScanFn>
[[nodiscard]] double shortest_distance(PathWorkspace& ws,
                                       std::size_t node_capacity,
                                       NodeId source, NodeId target,
                                       ScanFn&& scan) {
  if (source >= node_capacity || target >= node_capacity) return kInf;
  if (source == target) return 0;
  ws.begin(node_capacity);
  const std::uint64_t epoch = ws.epoch();
  auto& nodes = ws.nodes_;
  auto& heap = ws.heap_;

  nodes[source].dist = 0;
  nodes[source].seen = epoch;
  heap.push_back({0, source});

  const detail::HeapAfter after;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), after);
    const auto [d, node] = heap.back();
    heap.pop_back();
    if (nodes[node].done == epoch) continue;
    nodes[node].done = epoch;
    if (node == target) return d;
    scan(node, [&](EdgeId, NodeId to, double weight) {
      if (weight < 0 || to >= node_capacity) return;
      PathWorkspace::NodeState& state = nodes[to];
      if (state.done == epoch) return;
      const double candidate = d + weight;
      if (state.seen != epoch || candidate < state.dist) {
        state.dist = candidate;
        state.seen = epoch;
        heap.push_back({candidate, to});
        std::push_heap(heap.begin(), heap.end(), after);
      }
    });
  }
  return kInf;
}

}  // namespace unify::graph
