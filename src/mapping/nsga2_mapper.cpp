#include "mapping/nsga2_mapper.h"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "mapping/context.h"
#include "mapping/greedy_mapper.h"
#include "util/rng.h"

namespace unify::mapping {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Individual {
  std::vector<std::size_t> genes;  ///< candidate index per NF (id order)
  bool feasible = false;
  EmbeddingScore score;
  // NSGA-II bookkeeping, rewritten every sort.
  int rank = 0;
  double crowding = 0;
};

/// Re-synchronizes the persistent context to `placement` (tear routes
/// down, diff placements, re-route, re-check) — same contract as the
/// annealing mapper's helper: the end state depends only on the target
/// placement, so failures need no rollback.
std::optional<Mapping> resync(
    Context& ctx, const std::map<std::string, std::string>& placement) {
  for (const sg::SgLink& link : ctx.sg().links()) ctx.unroute(link.id);
  const std::map<std::string, std::string> current = ctx.placements();
  for (const auto& [nf, host] : current) {
    const auto want = placement.find(nf);
    if (want == placement.end() || want->second != host) ctx.unplace(nf);
  }
  for (const auto& [nf, host] : placement) {
    if (ctx.placements().count(nf) != 0) continue;
    if (!ctx.place(nf, host).ok()) return std::nullopt;
  }
  if (!ctx.route_all().ok()) return std::nullopt;
  if (!ctx.check_requirements().ok()) return std::nullopt;
  return ctx.finish("nsga2");
}

/// Constraint-domination (Deb): feasible beats infeasible; two feasible
/// compare by Pareto dominance on (cost, delay, penalty); two infeasible
/// tie (neither dominates).
bool dominates(const Individual& a, const Individual& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) return false;
  const bool le = a.score.cost <= b.score.cost &&
                  a.score.delay <= b.score.delay &&
                  a.score.penalty <= b.score.penalty;
  const bool lt = a.score.cost < b.score.cost ||
                  a.score.delay < b.score.delay ||
                  a.score.penalty < b.score.penalty;
  return le && lt;
}

/// Fast non-dominated sort + crowding distance; returns indices sorted by
/// (rank asc, crowding desc, index asc) — the NSGA-II survival order.
std::vector<std::size_t> survival_order(std::vector<Individual>& pop) {
  const std::size_t n = pop.size();
  std::vector<std::vector<std::size_t>> dominated(n);
  std::vector<int> dominators(n, 0);
  std::vector<std::vector<std::size_t>> fronts(1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates(pop[i], pop[j])) {
        dominated[i].push_back(j);
      } else if (dominates(pop[j], pop[i])) {
        ++dominators[i];
      }
    }
    if (dominators[i] == 0) {
      pop[i].rank = 0;
      fronts[0].push_back(i);
    }
  }
  for (std::size_t f = 0; f < fronts.size(); ++f) {
    std::vector<std::size_t> next;
    for (const std::size_t i : fronts[f]) {
      for (const std::size_t j : dominated[i]) {
        if (--dominators[j] == 0) {
          pop[j].rank = static_cast<int>(f) + 1;
          next.push_back(j);
        }
      }
    }
    if (!next.empty()) fronts.push_back(std::move(next));
  }

  for (Individual& ind : pop) ind.crowding = 0;
  const auto objective = [](const Individual& ind, int axis) {
    switch (axis) {
      case 0: return ind.score.cost;
      case 1: return ind.score.delay;
      default: return ind.score.penalty;
    }
  };
  for (const auto& front : fronts) {
    for (int axis = 0; axis < 3; ++axis) {
      std::vector<std::size_t> sorted = front;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [&](std::size_t a, std::size_t b) {
                         const double va = objective(pop[a], axis);
                         const double vb = objective(pop[b], axis);
                         if (va != vb) return va < vb;
                         return a < b;
                       });
      pop[sorted.front()].crowding = kInf;
      pop[sorted.back()].crowding = kInf;
      const double span = objective(pop[sorted.back()], axis) -
                          objective(pop[sorted.front()], axis);
      if (span <= 0) continue;
      for (std::size_t k = 1; k + 1 < sorted.size(); ++k) {
        pop[sorted[k]].crowding += (objective(pop[sorted[k + 1]], axis) -
                                    objective(pop[sorted[k - 1]], axis)) /
                                   span;
      }
    }
  }

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&pop](std::size_t a, std::size_t b) {
                     if (pop[a].rank != pop[b].rank) {
                       return pop[a].rank < pop[b].rank;
                     }
                     if (pop[a].crowding != pop[b].crowding) {
                       return pop[a].crowding > pop[b].crowding;
                     }
                     return a < b;
                   });
  return order;
}

}  // namespace

Result<Mapping> Nsga2Mapper::map(const sg::ServiceGraph& sg,
                                 const SubstrateView& substrate,
                                 const catalog::NfCatalog& catalog) const {
  Context ctx(sg, substrate, catalog);
  if (sg.nfs().empty()) {
    UNIFY_RETURN_IF_ERROR(ctx.route_all());
    UNIFY_RETURN_IF_ERROR(ctx.check_requirements());
    return ctx.finish(name());
  }

  // Genome layout: one gene per NF, NF ids in their (sorted) map order;
  // candidate lists computed once on the pristine substrate (capacity of a
  // full placement is re-checked by every resync).
  std::vector<std::string> nf_ids;
  std::vector<std::vector<std::string>> candidates;
  for (const auto& [nf_id, nf] : sg.nfs()) {
    nf_ids.push_back(nf_id);
    candidates.push_back(ctx.candidates(nf));
    if (candidates.back().empty()) {
      return Error{ErrorCode::kInfeasible, "no feasible host for NF " + nf_id};
    }
  }

  const auto placement_of = [&](const std::vector<std::size_t>& genes) {
    std::map<std::string, std::string> placement;
    for (std::size_t g = 0; g < genes.size(); ++g) {
      placement.emplace(nf_ids[g], candidates[g][genes[g]]);
    }
    return placement;
  };

  // The scalar incumbent: best feasible mapping ever evaluated, by
  // (total, delay, penalty) with strict improvement only — deterministic
  // regardless of how the Pareto front evolves.
  std::optional<Mapping> incumbent;
  std::array<double, 3> incumbent_key{kInf, kInf, kInf};
  const auto evaluate = [&](Individual& ind) {
    const auto mapping = resync(ctx, placement_of(ind.genes));
    ind.feasible = mapping.has_value();
    if (!ind.feasible) {
      ind.score = EmbeddingScore{kInf, kInf, kInf};
      return;
    }
    ind.score = score_mapping(*mapping, ctx.base());
    const std::array<double, 3> key{ind.score.total(options_.delay_weight),
                                    ind.score.delay, ind.score.penalty};
    if (key < incumbent_key) {
      incumbent_key = key;
      incumbent = *mapping;
      incumbent->mapper_name = name();
    }
  };

  Rng rng(options_.seed);
  const int population = std::max(2, options_.population);
  const auto random_genes = [&] {
    std::vector<std::size_t> genes(nf_ids.size());
    for (std::size_t g = 0; g < genes.size(); ++g) {
      genes[g] = rng.next_below(candidates[g].size());
    }
    return genes;
  };

  std::vector<Individual> pop;
  pop.reserve(static_cast<std::size_t>(population) * 2);
  // Individual 0: the greedy placement, when it exists — a warm start that
  // anchors the front at a known-feasible point.
  if (const auto seeded = GreedyMapper().map(sg, substrate, catalog);
      seeded.ok()) {
    Individual warm;
    warm.genes.assign(nf_ids.size(), 0);
    bool translated = true;
    for (std::size_t g = 0; g < nf_ids.size(); ++g) {
      const auto host = seeded->nf_host.find(nf_ids[g]);
      const auto at = host == seeded->nf_host.end()
                          ? candidates[g].end()
                          : std::find(candidates[g].begin(),
                                      candidates[g].end(), host->second);
      if (at == candidates[g].end()) {
        translated = false;
        break;
      }
      warm.genes[g] = static_cast<std::size_t>(at - candidates[g].begin());
    }
    if (translated) pop.push_back(std::move(warm));
  }
  while (pop.size() < static_cast<std::size_t>(population)) {
    Individual ind;
    ind.genes = random_genes();
    pop.push_back(std::move(ind));
  }
  for (Individual& ind : pop) {
    if (ScopedMapDeadline::expired()) break;
    evaluate(ind);
  }

  const auto tournament = [&]() -> const Individual& {
    const std::size_t a = rng.next_below(pop.size());
    const std::size_t b = rng.next_below(pop.size());
    if (pop[a].rank != pop[b].rank) {
      return pop[a].rank < pop[b].rank ? pop[a] : pop[b];
    }
    if (pop[a].crowding != pop[b].crowding) {
      return pop[a].crowding > pop[b].crowding ? pop[a] : pop[b];
    }
    return pop[std::min(a, b)];
  };

  for (int gen = 0; gen < options_.generations; ++gen) {
    if (ScopedMapDeadline::expired()) break;
    // Ranks/crowding for parent selection reflect the current population.
    (void)survival_order(pop);
    std::vector<Individual> children;
    children.reserve(static_cast<std::size_t>(population));
    while (children.size() < static_cast<std::size_t>(population)) {
      std::vector<std::size_t> a = tournament().genes;
      std::vector<std::size_t> b = tournament().genes;
      if (rng.next_bool(options_.crossover_rate)) {
        for (std::size_t g = 0; g < a.size(); ++g) {
          if (rng.next_bool(0.5)) std::swap(a[g], b[g]);
        }
      }
      for (std::vector<std::size_t>* genes : {&a, &b}) {
        for (std::size_t g = 0; g < genes->size(); ++g) {
          if (rng.next_bool(options_.mutation_rate)) {
            (*genes)[g] = rng.next_below(candidates[g].size());
          }
        }
        if (children.size() < static_cast<std::size_t>(population)) {
          Individual child;
          child.genes = std::move(*genes);
          children.push_back(std::move(child));
        }
      }
    }
    bool truncated = false;
    for (Individual& child : children) {
      if (ScopedMapDeadline::expired()) {
        truncated = true;
        break;
      }
      evaluate(child);
      pop.push_back(std::move(child));
    }
    // Environmental selection: best `population` of parents + children.
    const std::vector<std::size_t> order = survival_order(pop);
    std::vector<Individual> survivors;
    survivors.reserve(static_cast<std::size_t>(population));
    for (int k = 0; k < population; ++k) {
      survivors.push_back(std::move(pop[order[static_cast<std::size_t>(k)]]));
    }
    pop = std::move(survivors);
    if (truncated) break;
  }

  if (!incumbent.has_value()) {
    if (ScopedMapDeadline::expired()) {
      return Error{ErrorCode::kTimeout,
                   "map deadline expired before a feasible individual"};
    }
    return Error{ErrorCode::kInfeasible,
                 "no feasible placement in " +
                     std::to_string(options_.generations) + " generations"};
  }
  return *incumbent;
}

}  // namespace unify::mapping
