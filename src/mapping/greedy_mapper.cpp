#include "mapping/greedy_mapper.h"

#include <algorithm>
#include <limits>

#include "mapping/context.h"

namespace unify::mapping {

namespace {

/// Cost of placing on `host` when the previous chain element sits at
/// `prev_node`: delay distance plus the node's health penalty first, then
/// prefer emptier nodes, then id for determinism.
struct HostCost {
  double cost;  ///< distance + health penalty
  double utilization;
  std::string host;

  friend bool operator<(const HostCost& a, const HostCost& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    if (a.utilization != b.utilization) return a.utilization < b.utilization;
    return a.host < b.host;
  }
};

}  // namespace

Result<Mapping> GreedyMapper::map(const sg::ServiceGraph& sg,
                                  const SubstrateView& substrate,
                                  const catalog::NfCatalog& catalog) const {
  Context ctx(sg, substrate, catalog);

  const auto place_near = [&](const std::string& nf_id,
                              const std::string& prev_node,
                              double bandwidth) -> Result<void> {
    const sg::SgNf* nf = sg.find_nf(nf_id);
    std::vector<HostCost> costs;
    for (const std::string& host : ctx.candidates(*nf)) {
      const double dist = prev_node.empty()
                              ? 0
                              : ctx.distance(prev_node, host, bandwidth);
      if (dist == std::numeric_limits<double>::infinity()) continue;
      costs.push_back(HostCost{dist + ctx.node_penalty(host),
                               ctx.utilization(host), host});
    }
    if (costs.empty()) {
      return Error{ErrorCode::kInfeasible,
                   "no reachable feasible host for NF " + nf_id};
    }
    std::sort(costs.begin(), costs.end());
    Error last{ErrorCode::kInfeasible, "no candidate accepted " + nf_id};
    for (const HostCost& cost : costs) {
      const auto placed = ctx.place(nf_id, cost.host);
      if (placed.ok()) return Result<void>::success();
      last = placed.error();
    }
    return last;
  };

  // Walk every requirement's chain in order.
  for (const sg::E2eRequirement& req : sg.requirements()) {
    const auto chain = sg.chain_for(req);
    if (!chain.ok()) continue;  // disconnected requirement caught later
    std::string prev_node = req.from_sap;
    for (const sg::SgLink* link : *chain) {
      const std::string& to = link->to.node;
      if (sg.has_sap(to)) continue;
      const auto placed = ctx.node_of(to);
      if (placed.ok()) {
        prev_node = *placed;
        continue;
      }
      UNIFY_RETURN_IF_ERROR(place_near(to, prev_node, link->bandwidth));
      prev_node = *ctx.node_of(to);
    }
  }
  // NFs not on any requirement chain (side branches): nearest to any
  // already-placed neighbour, otherwise least-utilized feasible host.
  for (const auto& [nf_id, nf] : sg.nfs()) {
    if (ctx.node_of(nf_id).ok()) continue;
    std::string anchor;
    double bandwidth = 0;
    for (const sg::SgLink& link : sg.links()) {
      const std::string& peer = link.from.node == nf_id ? link.to.node
                                : link.to.node == nf_id ? link.from.node
                                                        : "";
      if (peer.empty()) continue;
      if (const auto node = ctx.node_of(peer); node.ok()) {
        anchor = *node;
        bandwidth = link.bandwidth;
        break;
      }
    }
    UNIFY_RETURN_IF_ERROR(place_near(nf_id, anchor, bandwidth));
  }

  UNIFY_RETURN_IF_ERROR(ctx.route_all());
  UNIFY_RETURN_IF_ERROR(ctx.check_requirements());
  return ctx.finish(name());
}

}  // namespace unify::mapping
