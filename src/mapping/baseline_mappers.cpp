#include "mapping/baseline_mappers.h"

#include "mapping/context.h"
#include "util/rng.h"

namespace unify::mapping {

Result<Mapping> FirstFitMapper::map(const sg::ServiceGraph& sg,
                                    const SubstrateView& substrate,
                                    const catalog::NfCatalog& catalog) const {
  Context ctx(sg, substrate, catalog);
  for (const auto& [nf_id, nf] : sg.nfs()) {
    const auto cands = ctx.candidates(nf);
    bool placed = false;
    for (const std::string& host : cands) {
      if (ctx.place(nf_id, host).ok()) {
        placed = true;
        break;
      }
    }
    if (!placed) {
      return Error{ErrorCode::kInfeasible, "no feasible host for " + nf_id};
    }
  }
  UNIFY_RETURN_IF_ERROR(ctx.route_all());
  UNIFY_RETURN_IF_ERROR(ctx.check_requirements());
  return ctx.finish(name());
}

Result<Mapping> RandomMapper::map(const sg::ServiceGraph& sg,
                                  const SubstrateView& substrate,
                                  const catalog::NfCatalog& catalog) const {
  Rng rng(options_.seed);
  constexpr int kAttempts = 32;
  Error last{ErrorCode::kInfeasible, "no attempt made"};
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    Context ctx(sg, substrate, catalog);
    bool placed_all = true;
    for (const auto& [nf_id, nf] : sg.nfs()) {
      const auto cands = ctx.candidates(nf);
      if (cands.empty()) {
        last = Error{ErrorCode::kInfeasible, "no feasible host for " + nf_id};
        placed_all = false;
        break;
      }
      const auto pick = cands[rng.next_below(cands.size())];
      if (const auto res = ctx.place(nf_id, pick); !res.ok()) {
        last = res.error();
        placed_all = false;
        break;
      }
    }
    if (!placed_all) continue;
    if (const auto res = ctx.route_all(); !res.ok()) {
      last = res.error();
      continue;
    }
    if (const auto res = ctx.check_requirements(); !res.ok()) {
      last = res.error();
      continue;
    }
    return ctx.finish(name());
  }
  return Error{last.code,
               "random placement failed after " +
                   std::to_string(kAttempts) + " attempts: " + last.message};
}

}  // namespace unify::mapping
