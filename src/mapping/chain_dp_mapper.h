// Delay-optimal linear-chain embedding via dynamic programming (Viterbi
// over host candidates per chain stage).
//
// For each requirement chain sap_in -> nf_1 -> ... -> nf_k -> sap_out the
// mapper computes, stage by stage, the minimum accumulated path delay of
// hosting nf_i on each feasible BiS-BiS, with transition costs equal to the
// current min-delay substrate distance under the link's bandwidth floor.
// This is optimal for a single chain w.r.t. the distance estimates; chains
// are processed sequentially, and inter-chain capacity conflicts are
// resolved by banning the offending (NF, host) pair and re-running the DP.
#pragma once

#include "mapping/mapper.h"

namespace unify::mapping {

class ChainDpMapper final : public Mapper {
 public:
  explicit ChainDpMapper(MapperOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "chain-dp"; }
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  MapperOptions options_;
};

}  // namespace unify::mapping
