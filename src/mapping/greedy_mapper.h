// Greedy chain embedding: walk each requirement's chain and place every NF
// on the feasible host minimizing (distance from the previous chain
// element, utilization, id). Fast and good on meshy substrates; no
// backtracking, so it can miss feasible mappings under tight constraints.
#pragma once

#include "mapping/mapper.h"

namespace unify::mapping {

class GreedyMapper final : public Mapper {
 public:
  explicit GreedyMapper(MapperOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  MapperOptions options_;
};

}  // namespace unify::mapping
