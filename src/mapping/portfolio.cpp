#include "mapping/portfolio.h"

#include <chrono>
#include <functional>
#include <utility>

#include "mapping/annealing_mapper.h"
#include "mapping/backtracking_mapper.h"
#include "mapping/bnb_mapper.h"
#include "mapping/chain_dp_mapper.h"
#include "mapping/greedy_mapper.h"
#include "mapping/list_mapper.h"
#include "mapping/nsga2_mapper.h"
#include "util/orchestration_pool.h"

namespace unify::mapping {

PortfolioMapper::PortfolioMapper(
    std::vector<std::shared_ptr<const Mapper>> racers,
    PortfolioOptions options)
    : racers_(std::move(racers)), options_(options) {}

std::vector<std::shared_ptr<const Mapper>> PortfolioMapper::standard_racers(
    MapperOptions base) {
  AnnealingOptions annealing;
  annealing.seed = base.seed;
  Nsga2Options nsga2;
  nsga2.seed = base.seed;
  BnbOptions bnb;
  bnb.max_nodes = base.max_search_steps;
  std::vector<std::shared_ptr<const Mapper>> racers;
  racers.push_back(std::make_shared<GreedyMapper>(base));
  racers.push_back(std::make_shared<ChainDpMapper>(base));
  racers.push_back(std::make_shared<BacktrackingMapper>(base));
  racers.push_back(std::make_shared<AnnealingMapper>(annealing));
  racers.push_back(std::make_shared<ListMapper>(base));
  racers.push_back(std::make_shared<Nsga2Mapper>(nsga2));
  racers.push_back(std::make_shared<BnbMapper>(bnb));
  return racers;
}

Result<RaceReport> PortfolioMapper::race(
    const sg::ServiceGraph& sg, const SubstrateView& substrate,
    const catalog::NfCatalog& catalog) const {
  if (racers_.empty()) {
    return Error{ErrorCode::kInvalidArgument, "portfolio has no racers"};
  }

  // Speculative fan-out: one lane per racer, each writing only its own
  // slot. Every racer's map() builds a private Context overlay over the
  // shared substrate view, so lanes are independent by construction; the
  // deadline is armed per worker thread around the map() call.
  struct Lane {
    Result<Mapping> mapping = Error{ErrorCode::kInternal, "lane not run"};
    std::int64_t wall_us = 0;
  };
  std::vector<Lane> lanes(racers_.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(racers_.size());
  for (std::size_t i = 0; i < racers_.size(); ++i) {
    tasks.push_back([this, &sg, &substrate, &catalog, &lanes, i] {
      using Clock = std::chrono::steady_clock;
      const auto started = Clock::now();
      {
        ScopedMapDeadline deadline(options_.deadline_us);
        lanes[i].mapping = racers_[i]->map(sg, substrate, catalog);
      }
      lanes[i].wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             Clock::now() - started)
                             .count();
    });
  }
  util::OrchestrationPool& pool = options_.pool != nullptr
                                      ? *options_.pool
                                      : util::OrchestrationPool::process_pool();
  pool.run_all(std::move(tasks));

  // Single winner: min scalar total, ties by (delay, penalty, lane index).
  RaceReport report;
  report.outcomes.reserve(racers_.size());
  for (std::size_t i = 0; i < racers_.size(); ++i) {
    RacerOutcome outcome;
    outcome.mapper = racers_[i]->name();
    outcome.wall_us = lanes[i].wall_us;
    if (lanes[i].mapping.ok()) {
      outcome.feasible = true;
      outcome.score = score_mapping(*lanes[i].mapping, substrate.nffg());
      const bool better =
          report.winner < 0 ||
          [&](const RacerOutcome& leader) {
            const double a = outcome.score.total(options_.delay_weight);
            const double b = leader.score.total(options_.delay_weight);
            if (a != b) return a < b;
            if (outcome.score.delay != leader.score.delay) {
              return outcome.score.delay < leader.score.delay;
            }
            return outcome.score.penalty < leader.score.penalty;
          }(report.outcomes[static_cast<std::size_t>(report.winner)]);
      if (better) {
        report.winner = static_cast<int>(i);
        report.mapping = *lanes[i].mapping;
      }
    } else {
      outcome.deadline_killed =
          lanes[i].mapping.error().code == ErrorCode::kTimeout;
      outcome.error = lanes[i].mapping.error().to_string();
    }
    report.outcomes.push_back(std::move(outcome));
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++races_;
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
      const RacerOutcome& outcome = report.outcomes[i];
      RacerStats& stats = stats_[outcome.mapper];
      ++stats.runs;
      if (static_cast<int>(i) == report.winner) ++stats.wins;
      if (!outcome.feasible) ++stats.infeasible;
      if (outcome.deadline_killed) ++stats.deadline_kills;
      stats.wall_us.push_back(static_cast<double>(outcome.wall_us));
    }
  }

  if (report.winner < 0) {
    // Propagate the most conclusive failure: prefer a racer that proved
    // infeasibility over one the deadline truncated.
    for (const RacerOutcome& outcome : report.outcomes) {
      if (!outcome.deadline_killed) {
        return Error{ErrorCode::kInfeasible,
                     outcome.mapper + ": " + outcome.error};
      }
    }
    return Error{ErrorCode::kTimeout,
                 "every racer hit the portfolio deadline"};
  }
  return report;
}

Result<Mapping> PortfolioMapper::map(const sg::ServiceGraph& sg,
                                     const SubstrateView& substrate,
                                     const catalog::NfCatalog& catalog) const {
  UNIFY_ASSIGN_OR_RETURN(RaceReport report, race(sg, substrate, catalog));
  Mapping mapping = std::move(report.mapping);
  mapping.mapper_name = "portfolio/" + mapping.mapper_name;
  return mapping;
}

void PortfolioMapper::drain_metrics(telemetry::Registry& registry) const {
  std::map<std::string, RacerStats> drained;
  std::uint64_t races = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    drained.swap(stats_);
    races = races_;
    races_ = 0;
  }
  if (races > 0) registry.add("mapping.portfolio.races", races);
  for (const auto& [racer, stats] : drained) {
    const std::string prefix = "mapping.portfolio." + racer + ".";
    if (stats.runs > 0) registry.add(prefix + "runs", stats.runs);
    if (stats.wins > 0) registry.add(prefix + "wins", stats.wins);
    if (stats.infeasible > 0) {
      registry.add(prefix + "infeasible", stats.infeasible);
    }
    if (stats.deadline_kills > 0) {
      registry.add(prefix + "deadline_kills", stats.deadline_kills);
    }
    for (const double wall : stats.wall_us) {
      registry.observe(prefix + "wall_us", wall);
    }
  }
}

}  // namespace unify::mapping
