// Simulated-annealing embedding: start from a greedy placement, then
// iteratively move single NFs to alternative hosts, accepting improvements
// always and regressions with a temperature-scaled probability. Optimizes
// a weighted objective of substrate load (bandwidth x hops) and total
// chain delay.
//
// Slower than greedy but escapes its local minima on substrates where the
// locally-nearest host starves later chain segments; another entry for the
// paper's plug-and-play algorithm seam (E3).
#pragma once

#include "mapping/mapper.h"

namespace unify::mapping {

struct AnnealingOptions {
  int iterations = 400;
  double initial_temperature = 10.0;
  double cooling = 0.99;          ///< temperature *= cooling per iteration
  double delay_weight = 1.0;      ///< objective = bw_hops + w * total_delay
  std::uint64_t seed = 1;
};

class AnnealingMapper final : public Mapper {
 public:
  explicit AnnealingMapper(AnnealingOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string name() const override { return "annealing"; }
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  AnnealingOptions options_;
};

}  // namespace unify::mapping
