#include "mapping/list_mapper.h"

#include <algorithm>
#include <limits>
#include <map>

#include "mapping/context.h"

namespace unify::mapping {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-NF scheduling state: optimistic delay-to-go per candidate host (the
/// PEFT-style OCT column) and the scalar rank ordering the placement list.
struct NfPlan {
  std::vector<std::string> hosts;  ///< candidates, id-ascending
  std::map<std::string, double> oct;  ///< host -> optimistic cost-to-go
  double rank = 0;
};

/// Backward pass over one requirement chain: fills `plans[nf].oct` with the
/// optimistic remaining delay from hosting `nf` on each candidate to the
/// chain's egress SAP. Shared NFs keep the max over chains (conservative:
/// the tighter chain dominates the rank).
Result<void> chain_oct(Context& ctx, const sg::E2eRequirement& req,
                       std::map<std::string, NfPlan>& plans) {
  const auto chain = ctx.sg().chain_for(req);
  if (!chain.ok()) return Result<void>::success();  // caught by route_all
  // Stage i hosts NF chain[i]->to.node; the last link ends at the SAP.
  std::map<std::string, double> next;  // host -> cost-to-go at stage i+1
  next.emplace(req.to_sap, 0.0);
  for (auto it = chain->rbegin(); it != chain->rend(); ++it) {
    const sg::SgLink* link = *it;
    const std::string& nf_id = link->from.node;
    if (ctx.sg().has_sap(nf_id)) break;  // reached the ingress SAP
    if (ScopedMapDeadline::expired()) {
      return Error{ErrorCode::kTimeout, "map deadline expired in rank pass"};
    }
    NfPlan& plan = plans[nf_id];
    if (plan.hosts.empty()) {
      const sg::SgNf* nf = ctx.sg().find_nf(nf_id);
      if (nf == nullptr) {
        return Error{ErrorCode::kInvalidArgument, "unknown NF " + nf_id};
      }
      plan.hosts = ctx.candidates(*nf);
      if (plan.hosts.empty()) {
        return Error{ErrorCode::kInfeasible,
                     "no feasible host for NF " + nf_id};
      }
    }
    std::map<std::string, double> here;
    for (const std::string& host : plan.hosts) {
      double best = kInf;
      for (const auto& [succ, to_go] : next) {
        if (to_go == kInf) continue;
        const double hop = ctx.delay_between(host, succ, link->bandwidth);
        best = std::min(best, hop + to_go);
      }
      here.emplace(host, best);
      auto [slot, inserted] = plan.oct.emplace(host, best);
      if (!inserted) slot->second = std::max(slot->second, best);
    }
    next = std::move(here);
  }
  return Result<void>::success();
}

}  // namespace

Result<Mapping> ListMapper::map(const sg::ServiceGraph& sg,
                                const SubstrateView& substrate,
                                const catalog::NfCatalog& catalog) const {
  Context ctx(sg, substrate, catalog);

  // Rank pass: optimistic cost tables per requirement, ranks as the mean
  // finite cost-to-go over candidates (HEFT's mean-over-processors rank).
  std::map<std::string, NfPlan> plans;
  for (const sg::E2eRequirement& req : sg.requirements()) {
    UNIFY_RETURN_IF_ERROR(chain_oct(ctx, req, plans));
  }
  for (auto& [nf_id, plan] : plans) {
    double sum = 0;
    std::size_t finite = 0;
    for (const auto& [host, to_go] : plan.oct) {
      if (to_go == kInf) continue;
      sum += to_go;
      ++finite;
    }
    // All-infinite means no candidate reaches the egress; keep it ranked
    // first so the reject surfaces immediately instead of after work.
    plan.rank = finite == 0 ? kInf : sum / static_cast<double>(finite);
  }

  // Placement list: descending rank, id as the deterministic tie-break.
  std::vector<std::string> order;
  for (const auto& [nf_id, plan] : plans) order.push_back(nf_id);
  std::stable_sort(order.begin(), order.end(),
                   [&plans](const std::string& a, const std::string& b) {
                     const double ra = plans.at(a).rank;
                     const double rb = plans.at(b).rank;
                     if (ra != rb) return ra > rb;
                     return a < b;
                   });

  // Adjacent SG links of one NF, for the arrival-delay term.
  const auto place_ranked = [&](const std::string& nf_id) -> Result<void> {
    if (ScopedMapDeadline::expired()) {
      return Error{ErrorCode::kTimeout, "map deadline expired placing NFs"};
    }
    const NfPlan& plan = plans.at(nf_id);
    struct Scored {
      double finish;  ///< arrival + cost-to-go + health penalty
      double utilization;
      std::string host;
    };
    std::vector<Scored> scored;
    for (const std::string& host : plan.hosts) {
      // Arrival delay from every already-resolved neighbour (SAP or placed
      // NF) into this host, at each link's bandwidth floor.
      double arrival = 0;
      for (const sg::SgLink& link : sg.links()) {
        const std::string& peer = link.from.node == nf_id ? link.to.node
                                  : link.to.node == nf_id ? link.from.node
                                                          : "";
        if (peer.empty()) continue;
        const auto node = ctx.node_of(peer);
        if (!node.ok()) continue;  // unplaced NF: the OCT term covers it
        const double hop = ctx.delay_between(*node, host, link.bandwidth);
        if (hop == kInf) {
          arrival = kInf;
          break;
        }
        arrival += hop;
      }
      if (arrival == kInf) continue;
      const auto oct = plan.oct.find(host);
      const double to_go =
          oct == plan.oct.end() || oct->second == kInf ? 0 : oct->second;
      scored.push_back(Scored{arrival + to_go + ctx.node_penalty(host),
                              ctx.utilization(host), host});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.finish != b.finish) return a.finish < b.finish;
                if (a.utilization != b.utilization) {
                  return a.utilization < b.utilization;
                }
                return a.host < b.host;
              });
    Error last{ErrorCode::kInfeasible,
               "no reachable feasible host for NF " + nf_id};
    for (const Scored& candidate : scored) {
      const auto placed = ctx.place(nf_id, candidate.host);
      if (placed.ok()) return Result<void>::success();
      last = placed.error();
    }
    return last;
  };

  for (const std::string& nf_id : order) {
    if (ctx.node_of(nf_id).ok()) continue;
    UNIFY_RETURN_IF_ERROR(place_ranked(nf_id));
  }

  // Off-chain NFs (side branches no requirement covers): no rank exists;
  // least-loaded feasible host, nudged next to a placed neighbour when one
  // resolves — same fallback the greedy mapper uses.
  for (const auto& [nf_id, nf] : sg.nfs()) {
    if (ctx.node_of(nf_id).ok()) continue;
    struct Fallback {
      double cost;
      double utilization;
      std::string host;
    };
    std::vector<Fallback> scored;
    for (const std::string& host : ctx.candidates(nf)) {
      double cost = ctx.node_penalty(host);
      for (const sg::SgLink& link : sg.links()) {
        const std::string& peer = link.from.node == nf_id ? link.to.node
                                  : link.to.node == nf_id ? link.from.node
                                                          : "";
        if (peer.empty()) continue;
        if (const auto node = ctx.node_of(peer); node.ok()) {
          cost += ctx.delay_between(*node, host, link.bandwidth);
        }
      }
      if (cost == kInf) continue;
      scored.push_back(Fallback{cost, ctx.utilization(host), host});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Fallback& a, const Fallback& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                if (a.utilization != b.utilization) {
                  return a.utilization < b.utilization;
                }
                return a.host < b.host;
              });
    bool placed_one = false;
    for (const Fallback& candidate : scored) {
      if (ctx.place(nf_id, candidate.host).ok()) {
        placed_one = true;
        break;
      }
    }
    if (!placed_one) {
      return Error{ErrorCode::kInfeasible,
                   "no feasible host for off-chain NF " + nf_id};
    }
  }

  UNIFY_RETURN_IF_ERROR(ctx.route_all());
  UNIFY_RETURN_IF_ERROR(ctx.check_requirements());
  return ctx.finish(name());
}

}  // namespace unify::mapping
