// Shared mapping machinery: placement/routing primitives with undo over a
// borrowed, read-only substrate, used by every Mapper implementation.
//
// The Context never copies the substrate. It reads the base NFFG (and a
// shared topology index, when the caller provides one via SubstrateView —
// the orchestrator's snapshot path) and records its own tentative work in
// overlays: per-host extra allocations for placements and a per-edge extra
// reservation vector for routed bandwidth. That keeps per-request setup
// O(1) instead of O(substrate), which is what lets parallel speculative
// mappers scale on 10^5..10^6-node views — each worker shares one
// immutable snapshot and owns only its overlay.
//
// Path queries (route / distance) run on the allocation-free kernel
// (graph/path_kernel.h) through a devirtualized overlay scan and are
// memoized in a per-Context cache keyed by (src, dst, bandwidth).
// Invalidation follows the monotonicity of reservations: reserving
// bandwidth (route) can only mask edges, so it evicts exactly the entries
// whose path crosses the touched links; releasing bandwidth (unroute) can
// only unmask a link for queries demanding more than its pre-release
// residual — and only entries that actually *saw* that link masked
// (tracked per entry) can improve, so everything else survives the
// release. Hit/miss/invalidation counters are kept in PathCacheStats and
// can be published into a telemetry::Registry.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "catalog/nf_catalog.h"
#include "graph/path_kernel.h"
#include "mapping/mapper.h"
#include "model/nffg.h"
#include "model/topology_index.h"
#include "sg/service_graph.h"
#include "telemetry/metrics.h"
#include "util/result.h"

namespace unify::mapping {

/// Counters of the per-Context path cache.
struct PathCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  ///< entries evicted by route/unroute
};

class Context {
 public:
  /// Borrows the substrate (and its index, when the view carries one);
  /// the substrate is never touched and must outlive the Context.
  Context(const sg::ServiceGraph& sg, const SubstrateView& substrate,
          const catalog::NfCatalog& catalog);

  // The overlays and path cache hold pointers into the borrowed substrate
  // and the (possibly owned) index; moving or copying would dangle them.
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] const sg::ServiceGraph& sg() const noexcept { return *sg_; }
  /// The borrowed base substrate. Read-only: this Context's own
  /// placements and reservations live in overlays, NOT here — use
  /// residual()/utilization()/residual_bandwidth() for live arithmetic.
  [[nodiscard]] const model::Nffg& base() const noexcept { return *base_; }
  /// Legacy alias for base() (pre-overlay callers named the substrate
  /// copy "work").
  [[nodiscard]] const model::Nffg& work() const noexcept { return *base_; }
  [[nodiscard]] const model::TopologyIndex& index() const noexcept {
    return *index_;
  }

  /// Feasible hosts for an NF right now (type support + residual capacity),
  /// ascending by id for determinism.
  [[nodiscard]] std::vector<std::string> candidates(
      const sg::SgNf& nf) const;

  /// Resolved footprint of an SG NF (override or catalog), memoized per
  /// (type, override).
  [[nodiscard]] Result<model::Resources> footprint(const sg::SgNf& nf) const;

  /// Live residual capacity of a host: base residual minus this Context's
  /// overlay allocations.
  [[nodiscard]] model::Resources residual(const std::string& host) const;

  /// Worst-dimension utilization of a host including overlay allocations
  /// (0 = empty, 1 = full). 0 for unknown hosts.
  [[nodiscard]] double utilization(const std::string& host) const;

  /// Live residual bandwidth of a substrate edge: link residual minus
  /// this Context's overlay reservations.
  [[nodiscard]] double residual_bandwidth(graph::EdgeId edge) const noexcept;

  /// Places `nf_id` on `host` (capacity, type and placement constraints
  /// enforced). Undo with unplace.
  Result<void> place(const std::string& nf_id, const std::string& host);

  /// Checks the service graph's placement constraints for (nf, host) given
  /// the placements made so far.
  [[nodiscard]] Result<void> constraint_allows(const std::string& nf_id,
                                               const std::string& host) const;
  void unplace(const std::string& nf_id);

  /// The substrate node an SG endpoint currently resolves to: the SAP
  /// itself, or the host of a placed NF (kUnavailable when unplaced).
  [[nodiscard]] Result<std::string> node_of(const std::string& sg_node) const;

  /// Routes one SG link over the substrate (min-delay path with residual
  /// bandwidth >= link.bandwidth), reserving bandwidth along it. Both
  /// endpoints must resolve. Colocated endpoints yield an empty path.
  Result<PathInfo> route(const sg::SgLink& link);
  /// Releases a routed link's reservations and forgets its path.
  void unroute(const std::string& sg_link_id);
  [[nodiscard]] bool is_routed(const std::string& sg_link_id) const noexcept {
    return paths_.count(sg_link_id) != 0;
  }

  /// Routes every not-yet-routed SG link (used after all placements).
  Result<void> route_all();

  /// Checks every requirement's accumulated chain delay against its bound.
  Result<void> check_requirements() const;

  /// Delay currently accumulated along the chain of `req` (routed links
  /// only).
  [[nodiscard]] double chain_delay(const sg::E2eRequirement& req) const;

  /// Shortest-path cost between two substrate nodes under a bandwidth
  /// floor; +inf when disconnected. The cost is the health-biased scan
  /// weight (delay + head-node penalties), so algorithms ranking on it
  /// steer around degraded domains; true delays come from route().
  [[nodiscard]] double distance(const std::string& from, const std::string& to,
                                double min_bw) const;

  /// True wire delay (link delays + transited internal delays) of the same
  /// min-cost path distance() ranks by; +inf when disconnected. Use this —
  /// not distance() — to check delay bounds: the biased weight may exceed
  /// a budget the actual path satisfies.
  [[nodiscard]] double delay_between(const std::string& from,
                                     const std::string& to,
                                     double min_bw) const;

  /// Health bias of a substrate node (BisBis::health_penalty, 0 for SAPs
  /// and unknown nodes). Mappers add it to node-selection cost so flaky
  /// domains drain before their circuit trips (DESIGN.md §10).
  [[nodiscard]] double node_penalty(const std::string& host) const noexcept;

  /// Current NF placements (nf id -> hosting BiS-BiS).
  [[nodiscard]] const std::map<std::string, std::string>& placements()
      const noexcept {
    return placements_;
  }

  /// Assembles the final Mapping (placements, paths, per-requirement
  /// delays, stats). Call after route_all()+check_requirements() succeed.
  [[nodiscard]] Mapping finish(std::string mapper_name) const;

  [[nodiscard]] const PathCacheStats& path_cache_stats() const noexcept {
    return cache_stats_;
  }
  /// Adds the cache counters to `registry` under
  /// "mapping.path_cache.{hits,misses,invalidations}".
  void publish_cache_metrics(telemetry::Registry& registry) const;

 private:
  /// Cap on masked edges remembered per cache entry; past it the entry
  /// degrades to the conservative "any release may help me" rule.
  static constexpr std::size_t kMaskedEdgeCap = 128;

  /// (src node, dst node, bandwidth floor) -> memoized shortest path.
  using PathKey = std::tuple<graph::NodeId, graph::NodeId, double>;
  struct PathEntry {
    bool reachable = false;
    graph::Path path;  ///< empty when !reachable
    double delay = 0;  ///< path_delay of `path`
    /// Edges seen bandwidth-masked while this entry could still improve:
    /// recorded during the computing Dijkstra (every masked edge scanned
    /// from a settled node) and maintained by route() (edges it newly
    /// masks). A release can only improve this entry through one of
    /// these, so unroute() evicts per entry instead of by global floor.
    std::vector<graph::EdgeId> masked;
    bool masked_overflow = false;  ///< cap hit; treat all edges as masked
  };

  /// Overlay scan for the path kernel: base residual minus overlay
  /// reservations for masking, health-biased weights, and masked-edge
  /// recording into `record`/`overflow` (satellite per-entry
  /// invalidation).
  struct OverlayScan {
    const Context* ctx;
    double min_bw;
    std::vector<graph::EdgeId>* record;
    bool* overflow;

    template <typename Visit>
    void operator()(graph::NodeId node, Visit&& visit) const {
      const auto& graph = ctx->index_->graph();
      for (const graph::EdgeId e : graph.out_edges(node)) {
        const auto& edge = graph.edge(e);
        if (ctx->residual_bandwidth(e) < min_bw) {
          note_masked(e);
          continue;
        }
        visit(e, edge.to, model::TopologyIndex::edge_weight(edge.data));
      }
    }
    void note_masked(graph::EdgeId e) const;
  };

  /// Returns the cached (or freshly computed) shortest path under the
  /// current residuals. The reference is valid until the next route/unroute.
  const PathEntry& cached_path(graph::NodeId from, graph::NodeId to,
                               double min_bw) const;
  /// Route bookkeeping over the cache: evicts entries whose path crosses
  /// any of `edges` (sorted ids) and teaches survivors which of those
  /// edges the reservation newly masked for their floor.
  void apply_reservation_to_cache(const std::vector<graph::EdgeId>& edges);
  /// Unroute bookkeeping: evicts exactly the entries a release on `edge`
  /// (pre-release residual `pre_residual`) could improve — floor above
  /// the pre-release residual AND the edge in their masked set.
  void invalidate_paths_unmasked_by(graph::EdgeId edge, double pre_residual);

  /// Overlay reservation on one edge (0 when untouched). Sorted-vector
  /// lookup; empty() fast path keeps pristine scans at base speed.
  [[nodiscard]] double extra_reserved(graph::EdgeId edge) const noexcept;
  void add_extra_reserved(graph::EdgeId edge, double amount);

  const sg::ServiceGraph* sg_;
  const catalog::NfCatalog* catalog_;
  const model::Nffg* base_;  ///< borrowed, never mutated
  /// Built only when the SubstrateView carries no index (cold path for
  /// standalone mapper calls).
  std::optional<model::TopologyIndex> owned_index_;
  const model::TopologyIndex* index_;  ///< borrowed or &*owned_index_

  // ---- overlays: this Context's tentative work ----
  std::map<std::string, std::string> placements_;     // nf -> host
  std::map<std::string, model::Resources> extra_alloc_;  // host -> resources
  /// (edge, reserved bandwidth), sorted by edge for binary search.
  std::vector<std::pair<graph::EdgeId, double>> extra_reserved_;
  std::map<std::string, PathInfo> paths_;  // sg link -> path
  /// Substrate edges each routed SG link reserved on (for release).
  std::map<std::string, std::vector<graph::EdgeId>> routed_edges_;

  mutable graph::PathWorkspace workspace_;
  mutable std::map<PathKey, PathEntry> path_cache_;
  mutable PathCacheStats cache_stats_;
  /// (type, override cpu/mem/storage) -> resolved footprint.
  mutable std::map<std::tuple<std::string, double, double, double>,
                   model::Resources>
      footprint_cache_;
};

}  // namespace unify::mapping
