// Shared mapping machinery: a mutable working copy of the substrate plus
// placement/routing primitives with undo, used by every Mapper
// implementation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/nf_catalog.h"
#include "mapping/mapper.h"
#include "model/nffg.h"
#include "model/topology_index.h"
#include "sg/service_graph.h"
#include "util/result.h"

namespace unify::mapping {

class Context {
 public:
  /// Copies the substrate; the original is never touched.
  Context(const sg::ServiceGraph& sg, const model::Nffg& substrate,
          const catalog::NfCatalog& catalog);

  [[nodiscard]] const sg::ServiceGraph& sg() const noexcept { return *sg_; }
  [[nodiscard]] const model::Nffg& work() const noexcept { return work_; }
  [[nodiscard]] const model::TopologyIndex& index() const noexcept {
    return *index_;
  }

  /// Feasible hosts for an NF right now (type support + residual capacity),
  /// ascending by id for determinism.
  [[nodiscard]] std::vector<std::string> candidates(
      const sg::SgNf& nf) const;

  /// Resolved footprint of an SG NF (override or catalog).
  [[nodiscard]] Result<model::Resources> footprint(const sg::SgNf& nf) const;

  /// Places `nf_id` on `host` (capacity, type and placement constraints
  /// enforced). Undo with unplace.
  Result<void> place(const std::string& nf_id, const std::string& host);

  /// Checks the service graph's placement constraints for (nf, host) given
  /// the placements made so far.
  [[nodiscard]] Result<void> constraint_allows(const std::string& nf_id,
                                               const std::string& host) const;
  void unplace(const std::string& nf_id);

  /// The substrate node an SG endpoint currently resolves to: the SAP
  /// itself, or the host of a placed NF (kUnavailable when unplaced).
  [[nodiscard]] Result<std::string> node_of(const std::string& sg_node) const;

  /// Routes one SG link over the substrate (min-delay path with residual
  /// bandwidth >= link.bandwidth), reserving bandwidth along it. Both
  /// endpoints must resolve. Colocated endpoints yield an empty path.
  Result<PathInfo> route(const sg::SgLink& link);
  /// Releases a routed link's reservations and forgets its path.
  void unroute(const std::string& sg_link_id);
  [[nodiscard]] bool is_routed(const std::string& sg_link_id) const noexcept {
    return paths_.count(sg_link_id) != 0;
  }

  /// Routes every not-yet-routed SG link (used after all placements).
  Result<void> route_all();

  /// Checks every requirement's accumulated chain delay against its bound.
  Result<void> check_requirements() const;

  /// Delay currently accumulated along the chain of `req` (routed links
  /// only).
  [[nodiscard]] double chain_delay(const sg::E2eRequirement& req) const;

  /// Shortest-path delay between two substrate nodes under a bandwidth
  /// floor; +inf when disconnected. Used by algorithms for cost estimates.
  [[nodiscard]] double distance(const std::string& from, const std::string& to,
                                double min_bw) const;

  /// Assembles the final Mapping (placements, paths, per-requirement
  /// delays, stats). Call after route_all()+check_requirements() succeed.
  [[nodiscard]] Mapping finish(std::string mapper_name) const;

 private:
  const sg::ServiceGraph* sg_;
  const catalog::NfCatalog* catalog_;
  model::Nffg work_;
  std::optional<model::TopologyIndex> index_;  // built over work_
  std::map<std::string, std::string> placements_;  // nf -> host
  std::map<std::string, PathInfo> paths_;          // sg link -> path
};

}  // namespace unify::mapping
