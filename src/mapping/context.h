// Shared mapping machinery: a mutable working copy of the substrate plus
// placement/routing primitives with undo, used by every Mapper
// implementation.
//
// Path queries (route / distance) run on the allocation-free kernel
// (graph/path_kernel.h) through a devirtualized scan and are memoized in a
// per-Context cache keyed by (src, dst, bandwidth). Invalidation follows
// the monotonicity of reservations: reserving bandwidth (route) can only
// mask edges, so it evicts exactly the entries whose path crosses the
// touched links; releasing bandwidth (unroute) can only unmask a link for
// queries demanding more than its pre-release residual, so it evicts the
// entries whose bandwidth floor exceeds the smallest such residual.
// Hit/miss/invalidation counters are kept in PathCacheStats and can be
// published into a telemetry::Registry.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "catalog/nf_catalog.h"
#include "graph/path_kernel.h"
#include "mapping/mapper.h"
#include "model/nffg.h"
#include "model/topology_index.h"
#include "sg/service_graph.h"
#include "telemetry/metrics.h"
#include "util/result.h"

namespace unify::mapping {

/// Counters of the per-Context path cache.
struct PathCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  ///< entries evicted by route/unroute
};

class Context {
 public:
  /// Copies the substrate; the original is never touched.
  Context(const sg::ServiceGraph& sg, const model::Nffg& substrate,
          const catalog::NfCatalog& catalog);

  // The topology index and path cache hold pointers into work_; moving or
  // copying a Context would dangle them.
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] const sg::ServiceGraph& sg() const noexcept { return *sg_; }
  [[nodiscard]] const model::Nffg& work() const noexcept { return work_; }
  [[nodiscard]] const model::TopologyIndex& index() const noexcept {
    return *index_;
  }

  /// Feasible hosts for an NF right now (type support + residual capacity),
  /// ascending by id for determinism.
  [[nodiscard]] std::vector<std::string> candidates(
      const sg::SgNf& nf) const;

  /// Resolved footprint of an SG NF (override or catalog), memoized per
  /// (type, override).
  [[nodiscard]] Result<model::Resources> footprint(const sg::SgNf& nf) const;

  /// Places `nf_id` on `host` (capacity, type and placement constraints
  /// enforced). Undo with unplace.
  Result<void> place(const std::string& nf_id, const std::string& host);

  /// Checks the service graph's placement constraints for (nf, host) given
  /// the placements made so far.
  [[nodiscard]] Result<void> constraint_allows(const std::string& nf_id,
                                               const std::string& host) const;
  void unplace(const std::string& nf_id);

  /// The substrate node an SG endpoint currently resolves to: the SAP
  /// itself, or the host of a placed NF (kUnavailable when unplaced).
  [[nodiscard]] Result<std::string> node_of(const std::string& sg_node) const;

  /// Routes one SG link over the substrate (min-delay path with residual
  /// bandwidth >= link.bandwidth), reserving bandwidth along it. Both
  /// endpoints must resolve. Colocated endpoints yield an empty path.
  Result<PathInfo> route(const sg::SgLink& link);
  /// Releases a routed link's reservations and forgets its path.
  void unroute(const std::string& sg_link_id);
  [[nodiscard]] bool is_routed(const std::string& sg_link_id) const noexcept {
    return paths_.count(sg_link_id) != 0;
  }

  /// Routes every not-yet-routed SG link (used after all placements).
  Result<void> route_all();

  /// Checks every requirement's accumulated chain delay against its bound.
  Result<void> check_requirements() const;

  /// Delay currently accumulated along the chain of `req` (routed links
  /// only).
  [[nodiscard]] double chain_delay(const sg::E2eRequirement& req) const;

  /// Shortest-path delay between two substrate nodes under a bandwidth
  /// floor; +inf when disconnected. Used by algorithms for cost estimates.
  [[nodiscard]] double distance(const std::string& from, const std::string& to,
                                double min_bw) const;

  /// Health bias of a substrate node (BisBis::health_penalty, 0 for SAPs
  /// and unknown nodes). Mappers add it to node-selection cost so flaky
  /// domains drain before their circuit trips (DESIGN.md §10).
  [[nodiscard]] double node_penalty(const std::string& host) const noexcept;

  /// Current NF placements (nf id -> hosting BiS-BiS).
  [[nodiscard]] const std::map<std::string, std::string>& placements()
      const noexcept {
    return placements_;
  }

  /// Assembles the final Mapping (placements, paths, per-requirement
  /// delays, stats). Call after route_all()+check_requirements() succeed.
  [[nodiscard]] Mapping finish(std::string mapper_name) const;

  [[nodiscard]] const PathCacheStats& path_cache_stats() const noexcept {
    return cache_stats_;
  }
  /// Adds the cache counters to `registry` under
  /// "mapping.path_cache.{hits,misses,invalidations}".
  void publish_cache_metrics(telemetry::Registry& registry) const;

 private:
  /// (src node, dst node, bandwidth floor) -> memoized shortest path.
  using PathKey = std::tuple<graph::NodeId, graph::NodeId, double>;
  struct PathEntry {
    bool reachable = false;
    graph::Path path;  ///< empty when !reachable
    double delay = 0;  ///< path_delay of `path`
  };

  /// Returns the cached (or freshly computed) shortest path under the
  /// current residuals. The reference is valid until the next route/unroute.
  const PathEntry& cached_path(graph::NodeId from, graph::NodeId to,
                               double min_bw) const;
  /// Evicts entries whose path crosses any of `edges` (sorted ids).
  void invalidate_paths_crossing(const std::vector<graph::EdgeId>& edges);
  /// Evicts entries whose bandwidth floor exceeds `floor_threshold` —
  /// a release can only unmask a link for queries demanding more than its
  /// pre-release residual; everyone else sees an unchanged masked graph.
  void invalidate_paths_above(double floor_threshold);

  const sg::ServiceGraph* sg_;
  const catalog::NfCatalog* catalog_;
  model::Nffg work_;
  std::optional<model::TopologyIndex> index_;  // built over work_
  std::map<std::string, std::string> placements_;  // nf -> host
  std::map<std::string, PathInfo> paths_;          // sg link -> path

  mutable graph::PathWorkspace workspace_;
  mutable std::map<PathKey, PathEntry> path_cache_;
  mutable PathCacheStats cache_stats_;
  /// (type, override cpu/mem/storage) -> resolved footprint.
  mutable std::map<std::tuple<std::string, double, double, double>,
                   model::Resources>
      footprint_cache_;
};

}  // namespace unify::mapping
