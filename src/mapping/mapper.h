// Mapping (network embedding) of service graphs onto BiS-BiS substrates.
//
// This is the algorithmic task of the paper's resource orchestrator: assign
// each abstract NF to a BiS-BiS and each chain link to a substrate path so
// that compute capacity, link bandwidth and end-to-end delay requirements
// hold. Several interchangeable algorithms implement the Mapper interface
// ("plug and play ... network embedding algorithms", paper §2); the RO
// takes the algorithm as a dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/nf_catalog.h"
#include "model/nffg.h"
#include "model/topology_index.h"
#include "model/view_snapshot.h"
#include "sg/service_graph.h"
#include "util/result.h"

namespace unify::mapping {

/// Read-only substrate a mapper embeds against: a borrowed NFFG plus,
/// optionally, a prebuilt topology index over it (from an orchestrator
/// ViewSnapshot, so parallel speculative mappers share one index instead
/// of each building an O(N) copy). Implicitly constructible from a bare
/// Nffg — call sites holding a plain view keep working — and from a
/// ViewSnapshot. The view must outlive the SubstrateView.
class SubstrateView {
 public:
  /*implicit*/ SubstrateView(const model::Nffg& nffg) noexcept  // NOLINT
      : nffg_(&nffg) {}
  // A temporary Nffg would dangle the moment the full-expression ends
  // (the view is borrowed, not copied) — reject it at compile time.
  SubstrateView(model::Nffg&&) = delete;
  /*implicit*/ SubstrateView(const model::ViewSnapshot& snap) noexcept  // NOLINT
      : nffg_(snap.view.get()), index_(snap.index.get()) {}

  [[nodiscard]] const model::Nffg& nffg() const noexcept { return *nffg_; }
  /// Prebuilt index over nffg(), or nullptr when the caller has none.
  [[nodiscard]] const model::TopologyIndex* index() const noexcept {
    return index_;
  }

 private:
  const model::Nffg* nffg_;
  const model::TopologyIndex* index_ = nullptr;
};

/// The realized path of one service-graph link over the substrate.
/// `links` lists substrate link ids in traversal order; empty when both
/// endpoints resolve to the same node (co-located NFs).
struct PathInfo {
  std::vector<std::string> links;
  double delay = 0;  ///< link delays + transited BiS-BiS internal delays

  friend bool operator==(const PathInfo& a, const PathInfo& b) noexcept {
    return a.links == b.links && a.delay == b.delay;
  }
};

struct MappingStats {
  std::size_t total_hops = 0;       ///< Σ path lengths
  double bandwidth_hops = 0;        ///< Σ bandwidth × hops (substrate load)
  std::size_t nodes_used = 0;       ///< distinct hosting BiS-BiS
  std::size_t nfs_placed = 0;

  friend bool operator==(const MappingStats& a,
                         const MappingStats& b) noexcept = default;
};

/// The result of a mapping: placements + routed paths + verified delays.
struct Mapping {
  std::string mapper_name;
  std::map<std::string, std::string> nf_host;      ///< SG NF -> BiS-BiS
  std::map<std::string, PathInfo> link_paths;      ///< SG link -> path
  std::map<std::string, double> requirement_delay; ///< requirement -> ms
  MappingStats stats;

  friend bool operator==(const Mapping& a, const Mapping& b) = default;
};

struct MapperOptions {
  /// Paths considered per node pair where an algorithm enumerates
  /// alternatives.
  int k_paths = 4;
  /// Hard cap on search-tree nodes for exhaustive algorithms.
  std::size_t max_search_steps = 200000;
  /// Seed for randomized algorithms.
  std::uint64_t seed = 1;
};

/// The canonical embedding objective, shared by every mapper that ranks
/// whole placements (annealing, NSGA-II, branch-and-bound, the portfolio
/// racer): substrate load, end-to-end delay and health bias as separate
/// axes, collapsed to one scalar by total(). Lower is better on every axis.
struct EmbeddingScore {
  double cost = 0;     ///< Σ bandwidth × hops (substrate load)
  double delay = 0;    ///< Σ per-requirement chain delay (ms)
  double penalty = 0;  ///< Σ hosting-node health penalty

  [[nodiscard]] double total(double delay_weight = 1.0) const noexcept {
    return cost + delay_weight * delay + penalty;
  }
  friend bool operator==(const EmbeddingScore& a,
                         const EmbeddingScore& b) noexcept = default;
};

/// Scores a finished mapping against the substrate it was computed on.
[[nodiscard]] EmbeddingScore score_mapping(const Mapping& mapping,
                                           const model::Nffg& substrate);

/// Cooperative wall-clock budget for one Mapper::map() invocation,
/// published through a thread-local so the portfolio racer can bound
/// arbitrary mappers without widening the Mapper interface. Iterative
/// mappers poll expired() at loop boundaries and either return their
/// best-so-far incumbent or fail with kTimeout; a mapper that ignores the
/// deadline merely races on, it cannot corrupt anything. Nests: an inner
/// scope restores the outer deadline on destruction. A deadline makes
/// stochastic mappers nondeterministic by design (the truncation point
/// depends on wall time); the per-seed replay contract holds only for runs
/// without one (DESIGN.md §15).
class ScopedMapDeadline {
 public:
  /// Arms a deadline `budget_us` microseconds from now; <= 0 arms nothing
  /// (expired() keeps answering false).
  explicit ScopedMapDeadline(std::int64_t budget_us);
  ~ScopedMapDeadline();
  ScopedMapDeadline(const ScopedMapDeadline&) = delete;
  ScopedMapDeadline& operator=(const ScopedMapDeadline&) = delete;

  /// True once the innermost armed deadline on this thread has passed.
  [[nodiscard]] static bool expired() noexcept;

 private:
  std::int64_t previous_;  ///< outer scope's deadline, restored on exit
};

/// Strategy interface. Implementations never mutate the substrate; they
/// track their tentative placements and reservations in an overlay
/// (mapping::Context) and report the outcome as a Mapping. The substrate
/// arrives as a SubstrateView so many mapper invocations can speculate in
/// parallel against one immutable snapshot.
class Mapper {
 public:
  virtual ~Mapper() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const = 0;
};

/// Independent feasibility checker: placements exist and fit, paths are
/// continuous and start/end at the right nodes, per-link bandwidth fits the
/// substrate residuals (cumulatively), and requirement delays hold.
/// Intended for tests and for the RO to double-check third-party mappers.
[[nodiscard]] Result<void> verify_mapping(const sg::ServiceGraph& sg,
                                          const model::Nffg& substrate,
                                          const catalog::NfCatalog& catalog,
                                          const Mapping& mapping);

/// Materializes a mapping onto `target` (normally a copy of the substrate
/// the mapping was computed against): places NF instances, installs the
/// tag-switched flowrule chains realizing each SG link, and reserves
/// bandwidth along the paths. Tags are "<sg id>:<sg link id>".
/// `force_placement` skips capacity/type checks — used when re-recording a
/// placement that is already physically running (e.g. restoring after a
/// failed migration onto a view whose advertised capacity shrank).
[[nodiscard]] Result<void> install_mapping(model::Nffg& target,
                                           const sg::ServiceGraph& sg,
                                           const catalog::NfCatalog& catalog,
                                           const Mapping& mapping,
                                           bool force_placement = false);

/// Reverts install_mapping: removes the NFs and flowrules of this mapping
/// and releases the reserved bandwidth.
[[nodiscard]] Result<void> uninstall_mapping(model::Nffg& target,
                                             const sg::ServiceGraph& sg,
                                             const Mapping& mapping);

}  // namespace unify::mapping
