// Baseline mappers for benchmarking: first-fit (no locality awareness) and
// seeded random placement. Both route with the same min-delay path engine
// as the smarter mappers, isolating the placement policy as the variable
// under test (experiment E3).
#pragma once

#include "mapping/mapper.h"

namespace unify::mapping {

/// Places every NF on the first feasible host in id order.
class FirstFitMapper final : public Mapper {
 public:
  explicit FirstFitMapper(MapperOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "first-fit"; }
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  MapperOptions options_;
};

/// Places every NF on a uniformly random feasible host; retries the whole
/// placement until routing + requirements succeed (bounded attempts).
class RandomMapper final : public Mapper {
 public:
  explicit RandomMapper(MapperOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  MapperOptions options_;
};

}  // namespace unify::mapping
