// Exhaustive embedding with pruning: depth-first search over NF placements
// in chain order, routing links as soon as both endpoints resolve and
// backtracking on any routing failure or delay-budget violation.
//
// Finds a feasible mapping whenever one exists within the search budget
// (options.max_search_steps); used as the completeness baseline against
// which greedy/DP acceptance is measured (experiment E3).
#pragma once

#include "mapping/mapper.h"

namespace unify::mapping {

class BacktrackingMapper final : public Mapper {
 public:
  explicit BacktrackingMapper(MapperOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string name() const override { return "backtracking"; }
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  MapperOptions options_;
};

}  // namespace unify::mapping
