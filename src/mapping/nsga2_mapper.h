// NSGA-II multi-objective embedding (Deb et al., 2002) over placement
// vectors.
//
// The genome is one candidate-host index per NF; fitness is the
// three-objective EmbeddingScore (substrate load, end-to-end delay, summed
// health penalty) evaluated by re-syncing a persistent mapping::Context —
// the same resync trick the annealing mapper uses, so a generation costs
// population × (diff placements + route_all), never a substrate copy.
// Selection is binary tournament on (constraint-domination rank, crowding
// distance); feasible individuals always dominate infeasible ones.
// Everything random flows from one seeded Rng, so a given
// (seed, instance) replays byte-identically — the determinism contract of
// DESIGN.md §15 (void under a portfolio deadline, which truncates the run
// at a wall-clock-dependent generation).
//
// The answer handed back through Mapper::map is the best *feasible*
// individual ever evaluated under the scalarized objective
// EmbeddingScore::total(delay_weight) — the front is how the search
// explores, the scalar is how the portfolio compares mappers.
#pragma once

#include "mapping/mapper.h"

namespace unify::mapping {

struct Nsga2Options {
  int population = 24;
  int generations = 24;
  double crossover_rate = 0.9;  ///< per-pair uniform crossover probability
  double mutation_rate = 0.15;  ///< per-gene reroll probability
  double delay_weight = 1.0;    ///< scalarization for the reported winner
  std::uint64_t seed = 1;
};

class Nsga2Mapper final : public Mapper {
 public:
  explicit Nsga2Mapper(Nsga2Options options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "nsga2"; }
  [[nodiscard]] Result<Mapping> map(
      const sg::ServiceGraph& sg, const SubstrateView& substrate,
      const catalog::NfCatalog& catalog) const override;

 private:
  Nsga2Options options_;
};

}  // namespace unify::mapping
